package warplda

import (
	"os"
	"path/filepath"
	"testing"

	"warplda/internal/train"
)

func testModelForPublish(t *testing.T, seed int64) *Model {
	t.Helper()
	cfg := Defaults(4)
	c, err := GenerateLDA(SyntheticConfig{D: 30, V: 40, K: 4, MeanLen: 20, Seed: uint64(seed)})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDeltaPublisherLifecycle(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "news")
	pub, err := NewDeltaPublisher(spec, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := testModelForPublish(t, 1)

	// First publish: full base snapshot + latest pointer, no deltas.
	r1, err := pub.Publish(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Full {
		t.Fatalf("first publish not full: %+v", r1)
	}
	if _, err := os.Stat(filepath.Join(dir, "news@10.bin")); err != nil {
		t.Fatalf("versioned snapshot missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "news.bin")); err != nil {
		t.Fatalf("latest pointer missing: %v", err)
	}

	// Two interval publishes ride the chain.
	m.Cw[0]++
	m.Ck[0]++
	r2, err := pub.Publish(m, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Full || r2.Gen != 1 || r2.Cells != 1 {
		t.Fatalf("second publish: %+v", r2)
	}
	m.Cw[1]++
	m.Ck[1]++
	r3, err := pub.Publish(m, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Full || r3.Gen != 2 {
		t.Fatalf("third publish: %+v", r3)
	}
	if files, _ := train.ListDeltaFiles(dir, "news"); len(files) != 2 {
		t.Fatalf("expected 2 delta files, found %d", len(files))
	}

	// MaxChain = 2 reached: the next publish rebases — deltas removed,
	// fresh base installed, chain restarted.
	m.Cw[2]++
	m.Ck[2]++
	r4, err := pub.Publish(m, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Full {
		t.Fatalf("fourth publish did not rebase: %+v", r4)
	}
	if files, _ := train.ListDeltaFiles(dir, "news"); len(files) != 0 {
		t.Fatalf("rebase left %d delta files behind", len(files))
	}
	if _, err := os.Stat(filepath.Join(dir, "news@40.bin")); err != nil {
		t.Fatalf("rebased snapshot missing: %v", err)
	}
	m.Cw[3]++
	m.Ck[3]++
	r5, err := pub.Publish(m, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r5.Full || r5.Gen != 1 {
		t.Fatalf("post-rebase publish: %+v", r5)
	}
}

func TestDeltaPublisherRejectsBadSpec(t *testing.T) {
	if _, err := NewDeltaPublisher("", 0, 0); err == nil {
		t.Fatal("NewDeltaPublisher accepted an empty spec")
	}
	if _, err := NewDeltaPublisher(filepath.Join(t.TempDir(), "bad name!"), 0, 0); err == nil {
		t.Fatal("NewDeltaPublisher accepted an unservable name")
	}
}
