package warplda

// Incremental publishing facade: the -publish-delta mode of
// cmd/warplda-train and cmd/warplda-coordinator. A DeltaPublisher
// turns a sequence of model snapshots into (a) one full versioned base
// publish and (b) a chain of WARPDLT delta files a serving registry
// folds into the live engine without a full reload — rebasing onto a
// fresh full snapshot whenever the chain grows past MaxChain.

import (
	"fmt"

	"warplda/internal/train"
)

// DeltaPublisher publishes successive snapshots of one model
// incrementally. The first Publish call writes a full versioned
// snapshot (<name>@<iter>.bin + latest pointer, exactly like -publish)
// and starts a delta chain; each later call emits <name>.dlt.<gen>.
// When the chain reaches MaxChain deltas, the next call rebases:
// deltas are deleted first, then a fresh full snapshot is published
// and a new chain starts — the delete-then-repoint order a polling
// registry relies on. Not safe for concurrent use.
type DeltaPublisher struct {
	spec string
	// MaxChain bounds the chain length before a rebase; <= 0 means 16.
	// Longer chains mean cheaper publishes but a longer replay for a
	// registry that starts cold.
	maxChain int
	// Keep is the PruneModelVersions retention applied after every full
	// publish; <= 0 disables pruning.
	keep  int
	chain *train.DeltaChain
}

// NewDeltaPublisher validates the publish spec and returns a publisher
// with an empty chain (the first Publish writes the base).
func NewDeltaPublisher(spec string, maxChain, keep int) (*DeltaPublisher, error) {
	if _, _, err := train.PublishPath(spec); err != nil {
		return nil, err
	}
	if maxChain <= 0 {
		maxChain = 16
	}
	return &DeltaPublisher{spec: spec, maxChain: maxChain, keep: keep}, nil
}

// DeltaPublishResult describes one incremental publish.
type DeltaPublishResult struct {
	// Path is the file installed: the versioned snapshot for a full
	// publish, the delta file otherwise.
	Path string
	// Full reports a base (re)publish; Gen/Cells describe the delta
	// otherwise (Gen is 1-based within the current chain).
	Full  bool
	Gen   int64
	Cells int
}

// Publish installs snapshot m at iteration iter: the base snapshot on
// the first call or on a rebase, a delta file otherwise.
func (p *DeltaPublisher) Publish(m *Model, iter int) (DeltaPublishResult, error) {
	if p.chain != nil && p.chain.Gen() < int64(p.maxChain) {
		r, err := p.chain.Publish(m.Cw, m.Ck, int64(iter), m.LogLik)
		if err != nil {
			return DeltaPublishResult{}, err
		}
		return DeltaPublishResult{Path: r.Path, Gen: r.Gen, Cells: r.Cells}, nil
	}
	// Base publish (first call or rebase). Deltas of any previous chain
	// go away BEFORE the base repoints, so a watcher never pairs the
	// new base with them.
	if _, err := train.RemoveDeltaFiles(p.spec); err != nil {
		return DeltaPublishResult{}, err
	}
	vPath, _, err := train.VersionedPublishPath(p.spec, iter)
	if err != nil {
		return DeltaPublishResult{}, err
	}
	if _, err := m.WriteFile(vPath); err != nil {
		return DeltaPublishResult{}, fmt.Errorf("warplda: publishing base snapshot: %w", err)
	}
	if _, err := train.PublishLatest(p.spec, iter); err != nil {
		return DeltaPublishResult{}, err
	}
	if p.keep > 0 {
		if _, err := train.PrunePublishedVersions(p.spec, p.keep); err != nil {
			return DeltaPublishResult{}, err
		}
	}
	chain, err := train.NewDeltaChain(p.spec, m.V, m.Cfg.K, m.Cw, m.Ck)
	if err != nil {
		return DeltaPublishResult{}, err
	}
	p.chain = chain
	return DeltaPublishResult{Path: vPath, Full: true}, nil
}
