package warplda

import (
	"bytes"
	"math"
	"testing"
)

func apiCorpus(t testing.TB) *Corpus {
	c, err := GenerateLDA(SyntheticConfig{D: 120, V: 150, K: 5, MeanLen: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSamplerAllAlgorithms(t *testing.T) {
	c := apiCorpus(t)
	cfg := Defaults(5)
	for _, name := range Algorithms {
		s, err := NewSampler(name, c, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s.Iterate()
		if got := len(s.Assignments()); got != c.NumDocs() {
			t.Fatalf("%s: %d assignment rows", name, got)
		}
	}
	if _, err := NewSampler("bogus", c, cfg); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestTrainProducesModel(t *testing.T) {
	c := apiCorpus(t)
	cfg := Defaults(5)
	m, err := Train(c, cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.LogLik >= 0 {
		t.Fatalf("log-likelihood %g not negative", m.LogLik)
	}
	var total int64
	for _, ck := range m.Ck {
		total += ck
	}
	if int(total) != c.NumTokens() {
		t.Fatalf("model counts %d tokens, corpus has %d", total, c.NumTokens())
	}
	// Phi rows sum to ~1 over the vocabulary.
	for k := 0; k < cfg.K; k++ {
		var sum float64
		for w := 0; w < c.V; w++ {
			sum += m.Phi(w, k)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("phi_%d sums to %g", k, sum)
		}
	}
}

func TestTopWords(t *testing.T) {
	c := FromText([]string{
		"gopher gopher gopher compiler compiler runtime",
		"gopher compiler runtime runtime runtime",
		"market market price price trade trade",
		"market price trade trade market",
	}, TokenizeOptions{})
	cfg := Defaults(2)
	cfg.Alpha = 0.5
	m, err := Train(c, cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	words := m.TopWords(0, 3)
	if len(words) != 3 {
		t.Fatalf("TopWords returned %d words", len(words))
	}
	// Both topics' top words must come from a single domain each.
	tech := map[string]bool{"gopher": true, "compiler": true, "runtime": true}
	for k := 0; k < 2; k++ {
		top := m.TopWords(k, 3)
		techCount := 0
		for _, w := range top {
			if tech[w] {
				techCount++
			}
		}
		if techCount != 0 && techCount != 3 {
			t.Fatalf("topic %d mixes domains: %v", k, top)
		}
	}
}

func TestTopWordsWithoutVocab(t *testing.T) {
	c := apiCorpus(t)
	m, err := Train(c, Defaults(5), 5)
	if err != nil {
		t.Fatal(err)
	}
	w := m.TopWords(0, 2)
	if len(w) != 2 || w[0] == "" {
		t.Fatalf("TopWords = %v", w)
	}
}

func TestDocTopicsSumsToOne(t *testing.T) {
	c := apiCorpus(t)
	m, err := Train(c, Defaults(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	theta := m.DocTopics(c.Docs[0], 5, 1)
	var sum float64
	for _, p := range theta {
		if p < 0 {
			t.Fatalf("negative theta component %g", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %g", sum)
	}
	// Empty doc: uniform.
	theta = m.DocTopics(nil, 5, 1)
	for _, p := range theta {
		if math.Abs(p-0.2) > 1e-12 {
			t.Fatalf("empty doc theta = %v", theta)
		}
	}
}

func TestTrainSamplerTrace(t *testing.T) {
	c := apiCorpus(t)
	cfg := Defaults(5)
	s, err := NewSampler(WarpLDA, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := TrainSampler(s, c, cfg, 6, 2)
	if len(run.Points) != 3 {
		t.Fatalf("%d eval points, want 3", len(run.Points))
	}
	last := run.Final()
	if last.Iter != 6 || last.LogLik >= 0 || last.TokensSec <= 0 {
		t.Fatalf("bad final point %+v", last)
	}
	if run.Points[0].LogLik >= last.LogLik {
		t.Fatalf("no convergence in trace: %v", run.Points)
	}
	if run.IterToReach(last.LogLik) != last.Iter && run.IterToReach(last.LogLik) == -1 {
		t.Fatal("IterToReach missed its own final point")
	}
	if run.TimeToReach(math.Inf(1)) != -1 {
		t.Fatal("unreachable level reported as reached")
	}
}

func TestUCIRoundTripThroughFacade(t *testing.T) {
	c := apiCorpus(t)
	var buf bytes.Buffer
	if err := WriteUCI(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUCI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTokens() != c.NumTokens() {
		t.Fatal("facade round trip lost tokens")
	}
}

func TestModelCoherence(t *testing.T) {
	// Two planted word blocks: a converged model's topics should score
	// higher coherence than a freshly initialized (random) model's.
	docs := make([]string, 0, 20)
	for i := 0; i < 10; i++ {
		docs = append(docs, "ion atom quark boson ion atom quark boson")
		docs = append(docs, "verse poem rhyme stanza verse poem rhyme stanza")
	}
	c := FromText(docs, TokenizeOptions{})
	cfg := Defaults(2)
	cfg.Alpha = 0.5
	trained, err := Train(c, cfg, 80)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Train(c, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trainedScore, randomScore float64
	for k := 0; k < 2; k++ {
		trainedScore += trained.Coherence(c, k, 4)
		randomScore += random.Coherence(c, k, 4)
	}
	if trainedScore < randomScore {
		t.Fatalf("trained coherence %.3f below random %.3f", trainedScore, randomScore)
	}
}

func TestNewDistributedFacade(t *testing.T) {
	c := apiCorpus(t)
	cfg := Defaults(5)
	s, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := LogLikelihood(c, s, cfg)
	for i := 0; i < 10; i++ {
		s.Iterate()
	}
	if after := LogLikelihood(c, s, cfg); after <= before {
		t.Fatalf("distributed facade did not converge: %.1f -> %.1f", before, after)
	}
}

func TestAsymmetricAlphaThroughFacade(t *testing.T) {
	c := apiCorpus(t)
	cfg := Defaults(5)
	cfg.AlphaVec = []float64{1, 0.5, 0.3, 0.2, 0.1}
	s, err := NewSampler(WarpLDA, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := TrainSampler(s, c, cfg, 10, 5)
	if len(run.Points) != 2 || run.Final().LogLik >= 0 {
		t.Fatalf("asymmetric facade run broken: %+v", run.Points)
	}
	if run.Final().LogLik <= run.Points[0].LogLik {
		t.Fatal("asymmetric facade run did not improve")
	}
}

func TestModelDiagnostics(t *testing.T) {
	c := apiCorpus(t)
	m, err := Train(c, Defaults(5), 15)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Diagnostics()
	if len(d) != 5 {
		t.Fatalf("%d diagnostics", len(d))
	}
	var tokens int64
	for _, x := range d {
		tokens += x.Tokens
		if x.EffectiveWords < 1 || x.EffectiveWords > float64(c.V)+1 {
			t.Fatalf("topic %d effective words %.2f", x.Topic, x.EffectiveWords)
		}
		if x.TopShare < 0 || x.TopShare > 1+1e-9 {
			t.Fatalf("topic %d top share %.3f", x.Topic, x.TopShare)
		}
	}
	if int(tokens) != c.NumTokens() {
		t.Fatalf("diagnostics cover %d tokens, corpus has %d", tokens, c.NumTokens())
	}
}
