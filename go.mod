module warplda

go 1.22
