package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "FORMATS.md"), "see [arch](ARCHITECTURE.md) and [readme](../README.md)\n")
	write(t, filepath.Join(dir, "docs", "ARCHITECTURE.md"), "ok\n")
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"[good](docs/FORMATS.md)",
		"[anchor](docs/FORMATS.md#layout)",
		"[web](https://example.com/x.md)",
		"[frag](#section)",
		"![badge](../../actions/workflows/ci.yml/badge.svg)", // escapes the repo: skipped
		"[rooted](/docs/ARCHITECTURE.md)",                    // root-relative: repo root, not filesystem root
		"[dead](docs/NOPE.md)",
	}, "\n"))

	// The checker resolves repo-escape relative to the process CWD.
	old, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	findings, err := checkMarkdown(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "NOPE.md") {
		t.Fatalf("findings = %q, want exactly the dead NOPE.md link", findings)
	}
}

func TestCheckGodoc(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package demo is documented.
package demo

// Documented is fine.
const Documented = 1

// Exported is fine.
func Exported() {}

func Undocumented() {}

type hidden struct{}

func (hidden) Write() {}

type Missing struct{}
`)
	findings, err := checkGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %q, want Undocumented + Missing", got)
	}
	if !strings.Contains(got[0], "Undocumented") && !strings.Contains(got[1], "Undocumented") {
		t.Fatalf("Undocumented not flagged: %q", got)
	}
	if !strings.Contains(got[0], "Missing") && !strings.Contains(got[1], "Missing") {
		t.Fatalf("type Missing not flagged: %q", got)
	}

	nodoc := t.TempDir()
	write(t, filepath.Join(nodoc, "b.go"), "package nodoc\n")
	findings, err = checkGodoc(nodoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "package comment") {
		t.Fatalf("findings = %q, want the missing package comment", findings)
	}
}
