package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMarkdown(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "FORMATS.md"), strings.Join([]string{
		"## Layout",
		"see [arch](ARCHITECTURE.md) and [readme](../README.md)",
	}, "\n"))
	write(t, filepath.Join(dir, "docs", "ARCHITECTURE.md"), "ok\n")
	write(t, filepath.Join(dir, "README.md"), strings.Join([]string{
		"# Section",
		"[good](docs/FORMATS.md)",
		"[anchor](docs/FORMATS.md#layout)",
		"[web](https://example.com/x.md)",
		"[frag](#section)",
		"![badge](../../actions/workflows/ci.yml/badge.svg)", // escapes the repo: skipped
		"[rooted](/docs/ARCHITECTURE.md)",                    // root-relative: repo root, not filesystem root
		"[dead](docs/NOPE.md)",
		"[deadfrag](#no-such-section)",
		"[deadanchor](docs/FORMATS.md#no-such-heading)",
		"[deadboth](docs/NOPE.md#layout)", // one finding: the file, not the anchor
	}, "\n"))

	// The checker resolves repo-escape relative to the process CWD.
	old, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	findings, err := checkMarkdown(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("findings = %q, want NOPE.md ×2 + the two dead anchors", findings)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"NOPE.md", "#no-such-section", "#no-such-heading"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("findings %q do not mention %s", findings, want)
		}
	}
	if strings.Count(joined, "dead anchor") != 2 {
		t.Fatalf("findings %q: want exactly 2 dead anchors", findings)
	}
}

func TestHeadingAnchors(t *testing.T) {
	doc := strings.Join([]string{
		"# WarpLDA in Go",
		"## Reading `BENCH_<sha>.json`",
		"## Setup",
		"## Setup", // duplicate: GitHub appends -1
		"### A link [inside](x.md) a heading",
		"```sh",
		"# not a heading, a shell comment",
		"```",
		"#NotAHeading (no space after the hashes)",
		"## Trailing hashes ##",
	}, "\n")
	got := headingAnchors(doc)
	want := []string{
		"warplda-in-go",
		"reading-bench_shajson",
		"setup",
		"setup-1",
		"a-link-inside-a-heading",
		"trailing-hashes",
	}
	if len(got) != len(want) {
		t.Fatalf("anchors = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("anchor %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAnchorSlug(t *testing.T) {
	cases := map[string]string{
		"Choosing -threads":          "choosing--threads",
		"Per-thread delta buffers":   "per-thread-delta-buffers",
		"What's in a name?":          "whats-in-a-name",
		"snake_case stays":           "snake_case-stays",
		"Mixed CASE  and+symbols/ok": "mixed-case--andsymbolsok",
	}
	for in, want := range cases {
		if got := anchorSlug(in); got != want {
			t.Errorf("anchorSlug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckGodoc(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package demo is documented.
package demo

// Documented is fine.
const Documented = 1

// Exported is fine.
func Exported() {}

func Undocumented() {}

type hidden struct{}

func (hidden) Write() {}

type Missing struct{}
`)
	findings, err := checkGodoc(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %q, want Undocumented + Missing", got)
	}
	if !strings.Contains(got[0], "Undocumented") && !strings.Contains(got[1], "Undocumented") {
		t.Fatalf("Undocumented not flagged: %q", got)
	}
	if !strings.Contains(got[0], "Missing") && !strings.Contains(got[1], "Missing") {
		t.Fatalf("type Missing not flagged: %q", got)
	}

	nodoc := t.TempDir()
	write(t, filepath.Join(nodoc, "b.go"), "package nodoc\n")
	findings, err = checkGodoc(nodoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "package comment") {
		t.Fatalf("findings = %q, want the missing package comment", findings)
	}
}
