// Command docs-lint is the repository's documentation gate, run by CI.
// It has two checks and no dependencies outside the standard library:
//
//   - Markdown link check (-md): every relative link or image target in
//     the given markdown files/directories must exist on disk (query
//     strings and #fragments are stripped; http(s), mailto and pure
//     #fragment links are skipped). Dead relative links are exactly the
//     rot a format-spec document like docs/FORMATS.md accumulates when
//     files move.
//
//   - Godoc check (-godoc): the named packages (Go import patterns
//     resolved via `go list`-free directory walking of the given dirs)
//     must have a package comment, and every exported top-level
//     identifier must carry a doc comment. This is the `revive`-style
//     exported-ident rule, enforced without pulling in a linter
//     dependency.
//
// Usage:
//
//	docs-lint -md README.md -md docs -md ROADMAP.md
//	docs-lint -godoc internal/cluster -godoc internal/train
//
// Exit status 0 when clean, 1 with findings (one per line), 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set appends one occurrence of the flag.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var md, godoc multiFlag
	flag.Var(&md, "md", "markdown file or directory to link-check (repeatable)")
	flag.Var(&godoc, "godoc", "package directory to doc-comment-check (repeatable)")
	flag.Parse()
	if len(md) == 0 && len(godoc) == 0 {
		fmt.Fprintln(os.Stderr, "docs-lint: nothing to do (pass -md and/or -godoc)")
		flag.Usage()
		os.Exit(2)
	}
	var findings []string
	for _, root := range md {
		fs, err := checkMarkdown(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, dir := range godoc {
		fs, err := checkGodoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docs-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// linkRE matches inline markdown links/images [text](target) — enough
// for this repository's documents; reference-style links are not used.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown link-checks one file, or every *.md under a directory.
func checkMarkdown(root string) ([]string, error) {
	st, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	var files []string
	if st.IsDir() {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{root}
	}
	var findings []string
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if target == "" || strings.HasPrefix(target, "#") ||
					strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				// Strip fragment and query.
				if j := strings.IndexAny(target, "#?"); j >= 0 {
					target = target[:j]
				}
				if target == "" {
					continue
				}
				var resolved string
				switch {
				case strings.HasPrefix(target, "/"):
					// Root-relative, the way GitHub renders it: against the
					// repository root (the lint's working directory), never
					// the machine's filesystem root.
					resolved = filepath.Join(".", target)
				default:
					resolved = filepath.Join(filepath.Dir(file), target)
				}
				// Targets that climb out of the repository (e.g. GitHub's
				// ../../actions/... badge paths) are web-UI routes, not
				// files this checker can know about.
				if rel, err := filepath.Rel(".", resolved); err == nil && (rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))) {
					continue
				}
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: dead relative link %q", file, i+1, m[1]))
				}
			}
		}
	}
	return findings, nil
}

// checkGodoc parses every non-test Go file in dir (one package) and
// reports a missing package comment and exported top-level identifiers
// without doc comments.
func checkGodoc(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			for _, decl := range f.Decls {
				findings = append(findings, checkDecl(fset, name, decl)...)
			}
		}
	}
	return findings, nil
}

// checkDecl reports exported names declared by decl that lack a doc
// comment. Grouped var/const/type specs inherit the group's comment:
// one comment on the block satisfies every exported name inside it,
// matching how godoc renders them.
func checkDecl(fset *token.FileSet, file string, decl ast.Decl) []string {
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", file, p.Line)
	}
	var findings []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && !unexportedRecv(d) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			findings = append(findings, fmt.Sprintf("%s: exported %s %s has no doc comment", pos(d), kind, d.Name.Name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					findings = append(findings, fmt.Sprintf("%s: exported type %s has no doc comment", pos(s), s.Name.Name))
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						findings = append(findings, fmt.Sprintf("%s: exported %s has no doc comment", pos(n), n.Name))
					}
				}
			}
		}
	}
	return findings
}

// unexportedRecv reports whether decl is a method on an unexported
// receiver type — godoc never renders those, so an exported method name
// there (a Write satisfying io.Writer, say) needs no doc comment.
func unexportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}
