// Command docs-lint is the repository's documentation gate, run by CI.
// It has two checks and no dependencies outside the standard library:
//
//   - Markdown link check (-md): every relative link or image target in
//     the given markdown files/directories must exist on disk (query
//     strings are stripped; http(s) and mailto links are skipped), and
//     every #fragment — whether a pure intra-document "#section" link or
//     the fragment of a "file.md#section" link — must name a heading
//     anchor that actually exists in the target document, per GitHub's
//     heading-slug rules. Dead relative links and dead anchors are
//     exactly the rot a format-spec document like docs/FORMATS.md
//     accumulates when files move or sections are renamed.
//
//   - Godoc check (-godoc): the named packages (Go import patterns
//     resolved via `go list`-free directory walking of the given dirs)
//     must have a package comment, and every exported top-level
//     identifier must carry a doc comment. This is the `revive`-style
//     exported-ident rule, enforced without pulling in a linter
//     dependency.
//
// Usage:
//
//	docs-lint -md README.md -md docs -md ROADMAP.md
//	docs-lint -godoc internal/cluster -godoc internal/train
//
// Exit status 0 when clean, 1 with findings (one per line), 2 on usage
// errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set appends one occurrence of the flag.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var md, godoc multiFlag
	flag.Var(&md, "md", "markdown file or directory to link-check (repeatable)")
	flag.Var(&godoc, "godoc", "package directory to doc-comment-check (repeatable)")
	flag.Parse()
	if len(md) == 0 && len(godoc) == 0 {
		fmt.Fprintln(os.Stderr, "docs-lint: nothing to do (pass -md and/or -godoc)")
		flag.Usage()
		os.Exit(2)
	}
	var findings []string
	for _, root := range md {
		fs, err := checkMarkdown(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, dir := range godoc {
		fs, err := checkGodoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docs-lint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docs-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// linkRE matches inline markdown links/images [text](target) — enough
// for this repository's documents; reference-style links are not used.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown link-checks one file, or every *.md under a directory.
func checkMarkdown(root string) ([]string, error) {
	st, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	var files []string
	if st.IsDir() {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{root}
	}
	var findings []string
	anchors := anchorCache{}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if target == "" ||
					strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
					continue
				}
				// Split off the fragment; it is checked against the target
				// document's headings once the file itself resolves.
				var frag string
				if j := strings.IndexByte(target, '#'); j >= 0 {
					target, frag = target[:j], target[j+1:]
				}
				if j := strings.IndexByte(target, '?'); j >= 0 {
					target = target[:j]
				}
				if target == "" {
					// Pure intra-document link: the anchor must exist in the
					// file that contains it.
					if frag != "" && !anchors.has(file, frag) {
						findings = append(findings, fmt.Sprintf("%s:%d: dead anchor %q (no such heading in this file)", file, i+1, m[1]))
					}
					continue
				}
				var resolved string
				switch {
				case strings.HasPrefix(target, "/"):
					// Root-relative, the way GitHub renders it: against the
					// repository root (the lint's working directory), never
					// the machine's filesystem root.
					resolved = filepath.Join(".", target)
				default:
					resolved = filepath.Join(filepath.Dir(file), target)
				}
				// Targets that climb out of the repository (e.g. GitHub's
				// ../../actions/... badge paths) are web-UI routes, not
				// files this checker can know about.
				if rel, err := filepath.Rel(".", resolved); err == nil && (rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator))) {
					continue
				}
				if _, err := os.Stat(resolved); err != nil {
					findings = append(findings, fmt.Sprintf("%s:%d: dead relative link %q", file, i+1, m[1]))
					continue
				}
				if frag != "" && strings.HasSuffix(resolved, ".md") && !anchors.has(resolved, frag) {
					findings = append(findings, fmt.Sprintf("%s:%d: dead anchor %q (no such heading in %s)", file, i+1, m[1], resolved))
				}
			}
		}
	}
	return findings, nil
}

// anchorCache lazily extracts and memoizes the heading anchors of each
// markdown file consulted during a lint run.
type anchorCache map[string]map[string]bool

// has reports whether the markdown file at path defines the anchor. An
// unreadable file yields no anchors (its dead-link finding already
// covers it).
func (c anchorCache) has(path, anchor string) bool {
	set, ok := c[path]
	if !ok {
		set = map[string]bool{}
		if raw, err := os.ReadFile(path); err == nil {
			for _, slug := range headingAnchors(string(raw)) {
				set[slug] = true
			}
		}
		c[path] = set
	}
	return set[anchor]
}

// headingRE matches an ATX heading line; the repo's documents use no
// setext headings.
var headingRE = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

// headingAnchors returns the GitHub anchor slug of every heading in the
// document, in order. Headings inside fenced code blocks are not
// headings (a `# comment` in a shell snippet must not mint an anchor).
func headingAnchors(doc string) []string {
	var slugs []string
	taken := map[string]int{}
	inFence := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimLeft(line, " \t")
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := anchorSlug(m[1])
		// GitHub de-duplicates repeated headings with a -1, -2, ... suffix.
		if n, dup := taken[slug]; dup {
			taken[slug] = n + 1
			slug = fmt.Sprintf("%s-%d", slug, n)
		} else {
			taken[slug] = 1
		}
		slugs = append(slugs, slug)
	}
	return slugs
}

// inlineLinkTextRE rewrites [text](target) to just text, the way GitHub
// slugs headings that contain links.
var inlineLinkTextRE = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`)

// anchorSlug implements GitHub's heading-to-anchor algorithm: drop
// inline-link targets, lowercase, remove every rune that is not a
// letter, digit, space, hyphen or underscore, then turn spaces into
// hyphens. Backticks and other punctuation simply vanish, so
// "## Reading `BENCH_<sha>.json`" slugs to "reading-bench_shajson".
func anchorSlug(heading string) string {
	heading = inlineLinkTextRE.ReplaceAllString(heading, "$1")
	heading = strings.ToLower(heading)
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkGodoc parses every non-test Go file in dir (one package) and
// reports a missing package comment and exported top-level identifiers
// without doc comments.
func checkGodoc(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			for _, decl := range f.Decls {
				findings = append(findings, checkDecl(fset, name, decl)...)
			}
		}
	}
	return findings, nil
}

// checkDecl reports exported names declared by decl that lack a doc
// comment. Grouped var/const/type specs inherit the group's comment:
// one comment on the block satisfies every exported name inside it,
// matching how godoc renders them.
func checkDecl(fset *token.FileSet, file string, decl ast.Decl) []string {
	pos := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", file, p.Line)
	}
	var findings []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && !unexportedRecv(d) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			findings = append(findings, fmt.Sprintf("%s: exported %s %s has no doc comment", pos(d), kind, d.Name.Name))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					findings = append(findings, fmt.Sprintf("%s: exported type %s has no doc comment", pos(s), s.Name.Name))
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						findings = append(findings, fmt.Sprintf("%s: exported %s has no doc comment", pos(n), n.Name))
					}
				}
			}
		}
	}
	return findings
}

// unexportedRecv reports whether decl is a method on an unexported
// receiver type — godoc never renders those, so an exported method name
// there (a Write satisfying io.Writer, say) needs no doc comment.
func unexportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}
