// Command warplda-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	warplda-bench -exp fig5          # one experiment, full size
//	warplda-bench -exp all -quick    # every experiment, reduced size
//	warplda-bench -list              # list experiment ids
//
// Full-size runs take minutes per experiment on one core; quick runs
// finish in seconds each. See EXPERIMENTS.md for the paper-vs-measured
// record of each experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"warplda/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick = flag.Bool("quick", false, "run the reduced-size variant")
		seed  = flag.Uint64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(exp.IDs(), "\n"))
		return
	}
	opts := exp.Options{Quick: *quick, Seed: *seed}
	ids := exp.IDs()
	if *id != "all" {
		ids = []string{*id}
	}
	for _, e := range ids {
		r, err := exp.Run(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warplda-bench: %s: %v\n", e, err)
			os.Exit(1)
		}
		if _, err := r.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "warplda-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
