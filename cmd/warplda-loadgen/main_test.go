package main

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"warplda/internal/hist"
)

func TestParseDocMix(t *testing.T) {
	mix, err := parseDocMix("128:0.3, 16:0.7")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].length != 16 || mix[1].length != 128 {
		t.Fatalf("mix = %+v", mix)
	}
	if math.Abs(mix[0].weight-0.7) > 1e-12 || math.Abs(mix[1].weight-0.3) > 1e-12 {
		t.Fatalf("weights = %+v", mix)
	}

	// Bare lengths weight equally; weights renormalize.
	mix, err = parseDocMix("8,32")
	if err != nil {
		t.Fatal(err)
	}
	if mix[0].weight != 0.5 || mix[1].weight != 0.5 {
		t.Fatalf("mix = %+v", mix)
	}

	for _, bad := range []string{"", "x:1", "16:-1", "0:1", "16:zero"} {
		if _, err := parseDocMix(bad); err == nil {
			t.Errorf("parseDocMix(%q) accepted", bad)
		}
	}
}

func TestSampleLenFollowsMix(t *testing.T) {
	mix, err := parseDocMix("16:0.75,128:0.25")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	short := 0
	const n = 20000
	for i := 0; i < n; i++ {
		switch sampleLen(mix, r) {
		case 16:
			short++
		case 128:
		default:
			t.Fatal("sampled a length not in the mix")
		}
	}
	if frac := float64(short) / n; frac < 0.72 || frac > 0.78 {
		t.Fatalf("short fraction %.3f, want ~0.75", frac)
	}
}

// report builds a Report with the given P99 (µs) and throughput.
func report(p99 int64, rps float64) *Report {
	return &Report{
		GOOS: "linux", GOARCH: "amd64", GoVersion: "go1.24", CPUs: 4,
		OK: 100, ThroughputRPS: rps,
		LatencyUs: hist.Snapshot{Count: 100, P99: p99},
	}
}

func TestGateBudgetsAndBaseline(t *testing.T) {
	rep := report(150_000, 80) // P99 150ms, 80 req/s

	if v := gate(rep, nil, 0, 0, 0.25); len(v) != 0 {
		t.Fatalf("no gates configured, got %v", v)
	}
	if v := gate(rep, nil, 200*time.Millisecond, 50, 0.25); len(v) != 0 {
		t.Fatalf("within budget, got %v", v)
	}
	if v := gate(rep, nil, 100*time.Millisecond, 0, 0.25); len(v) != 1 {
		t.Fatalf("P99 over budget not caught: %v", v)
	}
	if v := gate(rep, nil, 0, 100, 0.25); len(v) != 1 {
		t.Fatalf("throughput under floor not caught: %v", v)
	}

	// Relative gates: 25% worse than baseline on either axis fails.
	base := report(100_000, 120)
	if v := gate(rep, base, 0, 0, 0.25); len(v) != 2 {
		t.Fatalf("want P99 growth + throughput drop violations, got %v", v)
	}
	if v := gate(rep, report(149_000, 81), 0, 0, 0.25); len(v) != 0 {
		t.Fatalf("comparable baseline flagged: %v", v)
	}

	empty := &Report{}
	if v := gate(empty, nil, 0, 0, 0.25); len(v) != 1 {
		t.Fatalf("zero-OK report not flagged: %v", v)
	}
}

func TestEnvMatches(t *testing.T) {
	a, b := report(1, 1), report(1, 1)
	if ok, _ := envMatches(a, b); !ok {
		t.Fatal("identical env mismatched")
	}
	b.CPUs = 16
	if ok, why := envMatches(a, b); ok || why == "" {
		t.Fatal("CPU count mismatch not caught")
	}
}

// fakeServe emulates the warplda-serve surface loadgen touches: POST
// inference (with an optional slow/shed script) and GET /models/{name}.
func fakeServe(t *testing.T, vocab int, handler func(w http.ResponseWriter, r *http.Request) bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	infer := func(w http.ResponseWriter, r *http.Request) {
		if handler != nil && !handler(w, r) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"model":"news","version":1,"topics":[[0.9,0.1]],"top":[0],"took_ms":0.1}`))
	}
	mux.HandleFunc("POST /infer", infer)
	mux.HandleFunc("POST /models/{name}/infer", infer)
	mux.HandleFunc("GET /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"name": r.PathValue("name"), "state": "ready", "v": vocab, "k": 4})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func testConfig(srv *httptest.Server, mode string) *config {
	mix, _ := parseDocMix("4:1")
	return &config{
		url:         srv.URL + "/models/news/infer",
		statsURL:    srv.URL,
		model:       "news",
		mode:        mode,
		concurrency: 2,
		duration:    150 * time.Millisecond,
		mix:         mix,
		mixSpec:     "4:1",
		seed:        1,
		client:      srv.Client(),
	}
}

func TestRunClosedLoopSmoke(t *testing.T) {
	var sawDocs atomic.Bool
	srv := fakeServe(t, 50, func(w http.ResponseWriter, r *http.Request) bool {
		var req struct {
			Docs [][]int32 `json:"docs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err == nil &&
			len(req.Docs) == 1 && len(req.Docs[0]) == 4 {
			ok := true
			for _, id := range req.Docs[0] {
				ok = ok && id >= 0 && id < 50
			}
			if ok {
				sawDocs.Store(true)
			}
		}
		return true
	})
	cfg := testConfig(srv, "closed")
	cfg.vocab = 0 // exercise discovery against GET /models/news
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.vocab != 50 {
		t.Fatalf("discovered vocab = %d, want 50", cfg.vocab)
	}
	if rep.OK == 0 || rep.Requests != rep.OK+rep.Shed+rep.Errors {
		t.Fatalf("report = %+v", rep)
	}
	if rep.LatencyUs.Count != rep.OK || rep.LatencyUs.P99 <= 0 {
		t.Fatalf("latency histogram = %+v, ok = %d", rep.LatencyUs, rep.OK)
	}
	if rep.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", rep.ThroughputRPS)
	}
	if !sawDocs.Load() {
		t.Fatal("server never saw a well-formed single-document request")
	}
}

func TestRunOpenLoopCountsShed(t *testing.T) {
	var reqs atomic.Int64
	srv := fakeServe(t, 50, func(w http.ResponseWriter, r *http.Request) bool {
		if reqs.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"queue full"}`))
			return false
		}
		return true
	})
	cfg := testConfig(srv, "open")
	cfg.vocab = 50
	cfg.rate = 200
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.Shed == 0 {
		t.Fatalf("want both successes and shed requests, got %+v", rep)
	}
	// Shed requests must not pollute the latency quantiles.
	if rep.LatencyUs.Count != rep.OK {
		t.Fatalf("histogram count %d != ok %d", rep.LatencyUs.Count, rep.OK)
	}
}

// TestRunQueryWorkload drives -workload query against a fake /v1 query
// surface and checks the mix exercises all three request kinds with
// well-formed parameters, plus topic-count discovery.
func TestRunQueryWorkload(t *testing.T) {
	var topwords, similar, vocabQ, malformed atomic.Int64
	mux := http.NewServeMux()
	page := []byte(`{"model":"news","version":1,"rows":[],"row_count":0,"truncated":false,"took_ms":0.1}`)
	mux.HandleFunc("GET /v1/models/news/query/topwords", func(w http.ResponseWriter, r *http.Request) {
		topic, err := strconv.Atoi(r.URL.Query().Get("topic"))
		if err != nil || topic < 0 || topic >= 4 || r.URL.Query().Get("limit") != "20" {
			malformed.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		topwords.Add(1)
		w.Write(page)
	})
	mux.HandleFunc("POST /v1/models/news/query/similar", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query []int32   `json:"query"`
			Docs  [][]int32 `json:"docs"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil ||
			len(req.Query) == 0 || len(req.Docs) < 4 || len(req.Docs) > 8 {
			malformed.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		similar.Add(1)
		w.Write(page)
	})
	mux.HandleFunc("GET /v1/models/news/query/vocab", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("prefix") == "" {
			malformed.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		vocabQ.Add(1)
		w.Write(page)
	})
	mux.HandleFunc("POST /models/{name}/infer", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"model":"news","version":1,"topics":[[1]],"top":[0],"took_ms":0.1}`))
	})
	mux.HandleFunc("GET /models/{name}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"name": "news", "state": "ready", "v": 50, "k": 4})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	cfg := testConfig(srv, "closed")
	cfg.workload = "query"
	cfg.vocab = 0 // discovery must fill both V and K
	rep, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.vocab != 50 || cfg.topics != 4 {
		t.Fatalf("discovered (V, K) = (%d, %d), want (50, 4)", cfg.vocab, cfg.topics)
	}
	if n := malformed.Load(); n != 0 {
		t.Fatalf("%d malformed query requests", n)
	}
	if topwords.Load() == 0 || similar.Load() == 0 || vocabQ.Load() == 0 {
		t.Fatalf("mix did not hit every kind: topwords=%d similar=%d vocab=%d",
			topwords.Load(), similar.Load(), vocabQ.Load())
	}
	if rep.Workload != "query" || rep.Errors != 0 || rep.OK == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEnvMatchesWorkload(t *testing.T) {
	a, b := report(1, 1), report(1, 1)
	b.Workload = "query"
	if ok, why := envMatches(a, b); ok || why == "" {
		t.Fatal("workload mismatch not caught")
	}
	a.Workload = "infer" // "" normalizes to infer
	b.Workload = ""
	if ok, _ := envMatches(a, b); !ok {
		t.Fatal("legacy empty workload should compare as infer")
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	srv := fakeServe(t, 50, nil)
	cfg := testConfig(srv, "spiral")
	cfg.vocab = 50
	if _, err := run(cfg); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("err = %v", err)
	}
}
