// Command warplda-loadgen drives HTTP load against a running
// warplda-serve instance and gates CI on serving-latency and
// throughput regressions. It is the serve-path counterpart of
// cmd/bench-ci: where bench-ci gates the sampler's tokens/s, loadgen
// gates the end-to-end request path — admission queue, request
// coalescing, engine dispatch, JSON encode — under realistic
// concurrency.
//
// Two load modes:
//
//   - closed (default): -concurrency workers each keep exactly one
//     request in flight; offered load adapts to the server's speed.
//     Stable, the right mode for regression gating.
//   - open: requests fire at a fixed -rate regardless of completions
//     (in-flight capped at -concurrency; ticks past the cap count as
//     client drops). Shows shedding behavior past saturation.
//
// Documents are synthetic: lengths drawn from the -doc-mix
// distribution, word ids uniform over the target model's vocabulary
// (discovered via GET /models/{name}, or set with -vocab).
// Per-request latency lands in a log-linear histogram (~3% relative
// error, matching the server's own /stats view).
//
// -workload picks the request mix: "infer" (the default) posts
// fold-in documents; "query" exercises the /v1 topic-analytics routes
// with ~60% GET topwords pages, ~25% POST similar searches (a query
// document scored against 4–8 candidates), and ~15% GET vocab slices
// — the streamed, paginated read path rather than the write-heavy
// fold-in path. The query workload requires -model (routes are
// per-model) and discovers the topic count alongside the vocabulary.
//
// Usage:
//
//	warplda-loadgen -url http://localhost:8080 -model news \
//	  -duration 30s -concurrency 8 -doc-mix 16:0.7,128:0.3 \
//	  -out LOAD_$GITHUB_SHA.json \
//	  -baseline ci/load-baseline.json -p99-budget 200ms -gate-min-cpus 4
//
// Gates (all optional, armed only when the runner has at least
// -gate-min-cpus CPUs — latency budgets measured on starved CI
// containers gate noise, not code):
//
//   - -p99-budget: absolute P99 latency ceiling.
//   - -min-throughput: absolute requests/s floor.
//   - -baseline + -max-regression: relative P99/throughput gate against
//     a committed LOAD report, informational when the environment class
//     (GOOS/GOARCH/Go version/CPUs) differs, exactly like bench-ci.
//
// -update-baseline writes the report as the new committed baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warplda/internal/hist"
)

// Report is the LOAD_<sha>.json document.
type Report struct {
	SHA       string `json:"sha,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() on the load-generating side. Latency
	// gates arm against it: P99 measured on a starved runner says
	// nothing about the code (see envMatches and -gate-min-cpus).
	CPUs int `json:"cpus"`

	Mode        string  `json:"mode"`
	Workload    string  `json:"workload,omitempty"`
	Concurrency int     `json:"concurrency"`
	RateRPS     float64 `json:"rate_rps,omitempty"`
	DocMix      string  `json:"doc_mix"`
	Sweeps      int     `json:"sweeps"`
	DurationSec float64 `json:"duration_sec"`

	// Requests = OK + Shed + Errors + Dropped. Shed counts 503s (the
	// server's admission control working as designed); Errors counts
	// everything else non-2xx plus transport failures; Dropped counts
	// open-mode ticks skipped because all -concurrency slots were busy.
	Requests      int64   `json:"requests"`
	OK            int64   `json:"ok"`
	Shed          int64   `json:"shed"`
	Errors        int64   `json:"errors"`
	Dropped       int64   `json:"dropped,omitempty"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// LatencyUs summarizes successful request latency in microseconds.
	LatencyUs hist.Snapshot `json:"latency_us"`
}

// mixEntry is one document length and its sampling weight.
type mixEntry struct {
	length int
	weight float64
}

// parseDocMix parses "LEN:WEIGHT,LEN:WEIGHT,..." ("16:0.7,128:0.3").
// Weights are normalized; a bare "LEN" means weight 1.
func parseDocMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lenStr, wStr, hasW := strings.Cut(part, ":")
		length, err := strconv.Atoi(lenStr)
		if err != nil || length <= 0 {
			return nil, fmt.Errorf("bad doc length %q in mix %q", lenStr, s)
		}
		w := 1.0
		if hasW {
			if w, err = strconv.ParseFloat(wStr, 64); err != nil || w <= 0 {
				return nil, fmt.Errorf("bad weight %q in mix %q", wStr, s)
			}
		}
		mix = append(mix, mixEntry{length, w})
		total += w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty doc mix %q", s)
	}
	for i := range mix {
		mix[i].weight /= total
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].length < mix[j].length })
	return mix, nil
}

// sampleLen draws a document length from the mix.
func sampleLen(mix []mixEntry, r *rand.Rand) int {
	u := r.Float64()
	for _, m := range mix {
		if u < m.weight {
			return m.length
		}
		u -= m.weight
	}
	return mix[len(mix)-1].length
}

// config is one load run, fully resolved (vocabulary discovered).
type config struct {
	url         string // infer endpoint
	statsURL    string // base URL for discovery
	model       string
	mode        string
	workload    string // "infer" or "query"
	topics      int    // K, discovered; query workload only
	concurrency int
	rate        float64
	duration    time.Duration
	warmup      time.Duration
	mix         []mixEntry
	mixSpec     string
	sweeps      int
	vocab       int
	seed        int64
	deadlineMs  int
	client      *http.Client
}

// inferBody builds one request body with n uniform word ids.
func (c *config) inferBody(r *rand.Rand) []byte {
	n := sampleLen(c.mix, r)
	var b bytes.Buffer
	b.WriteString(`{"docs": [[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", r.Intn(c.vocab))
	}
	b.WriteString("]]")
	if c.sweeps > 0 {
		fmt.Fprintf(&b, `, "sweeps": %d`, c.sweeps)
	}
	b.WriteString("}")
	return b.Bytes()
}

// wordList renders n uniform word ids as a JSON array.
func (c *config) wordList(b *bytes.Buffer, n int, r *rand.Rand) {
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", r.Intn(c.vocab))
	}
	b.WriteByte(']')
}

// nextRequest builds one request for the configured workload.
func (c *config) nextRequest(r *rand.Rand) (*http.Request, error) {
	if c.workload == "query" {
		return c.queryRequest(r)
	}
	req, err := http.NewRequest(http.MethodPost, c.url, bytes.NewReader(c.inferBody(r)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return req, nil
}

// queryRequest draws one request from the analytics mix: 60% topwords
// pages, 25% similar searches, 15% vocab slices. Prefixes slice on the
// decimal fallback labels so the mix works against models trained with
// or without a text vocabulary; an empty page is still a full trip
// through the query path.
func (c *config) queryRequest(r *rand.Rand) (*http.Request, error) {
	base := c.statsURL + "/v1/models/" + c.model + "/query"
	switch u := r.Float64(); {
	case u < 0.60:
		return http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/topwords?topic=%d&limit=20", base, r.Intn(c.topics)), nil)
	case u < 0.85:
		var b bytes.Buffer
		b.WriteString(`{"query": `)
		c.wordList(&b, sampleLen(c.mix, r), r)
		b.WriteString(`, "docs": [`)
		for i, n := 0, 4+r.Intn(5); i < n; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			c.wordList(&b, sampleLen(c.mix, r), r)
		}
		b.WriteString("]")
		if c.sweeps > 0 {
			fmt.Fprintf(&b, `, "sweeps": %d`, c.sweeps)
		}
		b.WriteString("}")
		req, err := http.NewRequest(http.MethodPost, base+"/similar", bytes.NewReader(b.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	default:
		return http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/vocab?prefix=%d&limit=50", base, r.Intn(10)), nil)
	}
}

// counters aggregate worker outcomes.
type counters struct {
	requests atomic.Int64
	ok       atomic.Int64
	shed     atomic.Int64
	errors   atomic.Int64
	dropped  atomic.Int64
}

// shoot sends one request and records the outcome. Only successful
// requests land in the latency histogram: shed requests return fast by
// design and would flatter the quantiles.
func shoot(c *config, req *http.Request, h *hist.Histogram, n *counters) {
	n.requests.Add(1)
	if c.deadlineMs > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(c.deadlineMs))
	}
	start := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		n.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		n.ok.Add(1)
		h.Record(time.Since(start).Microseconds())
	case resp.StatusCode == http.StatusServiceUnavailable:
		n.shed.Add(1)
	default:
		n.errors.Add(1)
	}
}

// run executes one load phase (closed or open) for c.duration and
// returns the report. A non-zero warmup runs the same load first and
// discards its numbers, so engine caches and connection pools don't
// pollute the measured window.
func run(c *config) (*Report, error) {
	if c.vocab <= 0 || (c.workload == "query" && c.topics <= 0) {
		if err := discoverModel(c); err != nil {
			return nil, err
		}
	}
	if c.warmup > 0 {
		w := *c
		w.duration, w.warmup = c.warmup, 0
		if _, err := run(&w); err != nil {
			return nil, err
		}
	}
	h := hist.New()
	var n counters
	stop := make(chan struct{})
	var wg sync.WaitGroup
	switch c.mode {
	case "closed":
		for i := 0; i < c.concurrency; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(c.seed + int64(i)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					req, err := c.nextRequest(r)
					if err != nil {
						n.requests.Add(1)
						n.errors.Add(1)
						continue
					}
					shoot(c, req, h, &n)
				}
			}(i)
		}
	case "open":
		if c.rate <= 0 {
			return nil, fmt.Errorf("open mode needs -rate > 0")
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			slots := make(chan struct{}, c.concurrency)
			r := rand.New(rand.NewSource(c.seed))
			t := time.NewTicker(time.Duration(float64(time.Second) / c.rate))
			defer t.Stop()
			var inner sync.WaitGroup
			defer inner.Wait()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
				}
				select {
				case slots <- struct{}{}:
				default:
					// All in-flight slots busy: an open-loop client drop,
					// reported separately from server-side shedding.
					n.dropped.Add(1)
					continue
				}
				req, err := c.nextRequest(r)
				if err != nil {
					n.requests.Add(1)
					n.errors.Add(1)
					<-slots
					continue
				}
				inner.Add(1)
				go func() {
					defer inner.Done()
					defer func() { <-slots }()
					shoot(c, req, h, &n)
				}()
			}
		}()
	default:
		return nil, fmt.Errorf("unknown mode %q (want closed or open)", c.mode)
	}
	start := time.Now()
	time.Sleep(c.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	return &Report{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Mode:          c.mode,
		Workload:      c.workload,
		Concurrency:   c.concurrency,
		RateRPS:       c.rate,
		DocMix:        c.mixSpec,
		Sweeps:        c.sweeps,
		DurationSec:   elapsed,
		Requests:      n.requests.Load(),
		OK:            n.ok.Load(),
		Shed:          n.shed.Load(),
		Errors:        n.errors.Load(),
		Dropped:       n.dropped.Load(),
		ThroughputRPS: float64(n.ok.Load()) / elapsed,
		LatencyUs:     h.Summary(),
	}, nil
}

// discoverModel asks the server for the model's dimensions (V for
// synthetic word ids, K for topwords topic draws). The model may not
// be resident yet (state "available", dimensions absent), so a probe
// inference request forces the load first.
func discoverModel(c *config) error {
	probe, err := http.NewRequest(http.MethodPost, c.url, strings.NewReader(`{"docs": [[0]]}`))
	if err != nil {
		return err
	}
	probe.Header.Set("Content-Type", "application/json")
	if resp, err := c.client.Do(probe); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := c.client.Get(c.statsURL + "/models/" + c.model)
	if err != nil {
		return fmt.Errorf("discovering model dimensions: %w", err)
	}
	defer resp.Body.Close()
	var mi struct {
		V int `json:"v"`
		K int `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mi); err != nil {
		return fmt.Errorf("discovering model dimensions: %w", err)
	}
	if c.vocab <= 0 {
		if mi.V <= 0 {
			return fmt.Errorf("model %q reports no vocabulary size; pass -vocab", c.model)
		}
		c.vocab = mi.V
	}
	if c.workload == "query" && c.topics <= 0 {
		if mi.K <= 0 {
			return fmt.Errorf("model %q reports no topic count; is it resident?", c.model)
		}
		c.topics = mi.K
	}
	return nil
}

// envMatches reports whether the baseline was recorded in a comparable
// environment class, mirroring bench-ci: on mismatch the comparison is
// informational until the baseline is refreshed from this class.
func envMatches(base, cur *Report) (bool, string) {
	switch {
	case workloadOf(base) != workloadOf(cur):
		return false, fmt.Sprintf("baseline workload %q vs %q", workloadOf(base), workloadOf(cur))
	case base.GOOS != cur.GOOS:
		return false, fmt.Sprintf("baseline GOOS %s vs %s", base.GOOS, cur.GOOS)
	case base.GOARCH != cur.GOARCH:
		return false, fmt.Sprintf("baseline GOARCH %s vs %s", base.GOARCH, cur.GOARCH)
	case base.GoVersion != cur.GoVersion:
		return false, fmt.Sprintf("baseline recorded with %s, running %s", base.GoVersion, cur.GoVersion)
	case base.CPUs != cur.CPUs:
		return false, fmt.Sprintf("baseline recorded on %d CPUs, running on %d", base.CPUs, cur.CPUs)
	}
	return true, ""
}

// workloadOf normalizes the workload field: baselines recorded before
// it existed were all infer runs.
func workloadOf(r *Report) string {
	if r.Workload == "" {
		return "infer"
	}
	return r.Workload
}

// gate applies the absolute and baseline gates to rep and returns the
// violations. Baseline may be nil (no relative gate).
func gate(rep, base *Report, p99Budget time.Duration, minThroughput, maxRegress float64) (violations []string) {
	if rep.OK == 0 {
		return []string{"no successful requests: nothing measured"}
	}
	if p99Budget > 0 && rep.LatencyUs.P99 > p99Budget.Microseconds() {
		violations = append(violations, fmt.Sprintf(
			"P99 %.1fms over budget %.1fms",
			float64(rep.LatencyUs.P99)/1000, float64(p99Budget.Microseconds())/1000))
	}
	if minThroughput > 0 && rep.ThroughputRPS < minThroughput {
		violations = append(violations, fmt.Sprintf(
			"throughput %.1f req/s under floor %.1f req/s", rep.ThroughputRPS, minThroughput))
	}
	if base != nil {
		if base.ThroughputRPS > 0 {
			drop := (base.ThroughputRPS - rep.ThroughputRPS) / base.ThroughputRPS
			if drop > maxRegress {
				violations = append(violations, fmt.Sprintf(
					"throughput %.1f req/s is %.1f%% below baseline %.1f req/s (max %.1f%%)",
					rep.ThroughputRPS, drop*100, base.ThroughputRPS, maxRegress*100))
			}
		}
		if base.LatencyUs.P99 > 0 {
			growth := float64(rep.LatencyUs.P99-base.LatencyUs.P99) / float64(base.LatencyUs.P99)
			if growth > maxRegress {
				violations = append(violations, fmt.Sprintf(
					"P99 %.1fms is %.1f%% above baseline %.1fms (max %.1f%%)",
					float64(rep.LatencyUs.P99)/1000, growth*100,
					float64(base.LatencyUs.P99)/1000, maxRegress*100))
			}
		}
	}
	return violations
}

func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "warplda-loadgen: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "base URL of the warplda-serve instance")
		model       = flag.String("model", "", "model name (default: the server's /infer default route)")
		mode        = flag.String("mode", "closed", "load mode: closed (workers, one request in flight each) or open (fixed -rate)")
		workload    = flag.String("workload", "infer", "request mix: infer (fold-in documents) or query (topwords/similar/vocab analytics; requires -model)")
		concurrency = flag.Int("concurrency", 8, "closed: worker count; open: max requests in flight")
		rate        = flag.Float64("rate", 0, "open mode: offered requests per second")
		duration    = flag.Duration("duration", 10*time.Second, "measured load duration")
		warmup      = flag.Duration("warmup", time.Second, "warmup load before measuring (0 disables)")
		docMix      = flag.String("doc-mix", "16:0.7,128:0.3", "document length mix LEN:WEIGHT,...")
		sweeps      = flag.Int("sweeps", 0, "per-request sweep count (0 = server default)")
		vocab       = flag.Int("vocab", 0, "word-id range for synthetic documents (0 = discover via /models/{name})")
		seed        = flag.Int64("seed", 1, "document generator seed")
		deadlineMs  = flag.Int("deadline-ms", 0, "X-Deadline-Ms header on every request (0 = none)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request client timeout")
		out         = flag.String("out", "", "write the LOAD_<sha>.json report here")
		sha         = flag.String("sha", os.Getenv("GITHUB_SHA"), "commit sha recorded in the report")
		baselineF   = flag.String("baseline", "", "committed baseline LOAD report to gate against")
		maxRegress  = flag.Float64("max-regression", 0.25, "maximum fractional P99/throughput regression vs the baseline")
		updateBase  = flag.String("update-baseline", "", "write a fresh baseline report here and exit")
		p99Budget   = flag.Duration("p99-budget", 0, "absolute P99 latency ceiling (0 = off)")
		minThrough  = flag.Float64("min-throughput", 0, "absolute requests/s floor (0 = off)")
		maxErrors   = flag.Int64("max-errors", -1, "fail if failed requests (non-2xx/non-503 plus transport errors) exceed this; -1 = off — always armed, unlike the perf gates")
		gateMinCPUs = flag.Int("gate-min-cpus", 4, "arm the gates only when the runner has at least this many CPUs; below it violations are informational")
	)
	flag.Parse()

	mix, err := parseDocMix(*docMix)
	if err != nil {
		fatal(err)
	}
	switch *workload {
	case "infer":
	case "query":
		if *model == "" {
			fatal(fmt.Errorf("-workload query requires -model (query routes are per-model)"))
		}
	default:
		fatal(fmt.Errorf("unknown workload %q (want infer or query)", *workload))
	}
	inferURL := strings.TrimRight(*url, "/") + "/infer"
	if *model != "" {
		inferURL = strings.TrimRight(*url, "/") + "/models/" + *model + "/infer"
	}
	cfg := &config{
		url:         inferURL,
		statsURL:    strings.TrimRight(*url, "/"),
		model:       *model,
		mode:        *mode,
		workload:    *workload,
		concurrency: *concurrency,
		rate:        *rate,
		duration:    *duration,
		warmup:      *warmup,
		mix:         mix,
		mixSpec:     *docMix,
		sweeps:      *sweeps,
		vocab:       *vocab,
		seed:        *seed,
		deadlineMs:  *deadlineMs,
		client:      &http.Client{Timeout: *timeout},
	}
	if cfg.model == "" {
		cfg.model = "default"
		if cfg.vocab <= 0 {
			fatal(fmt.Errorf("-vocab is required when no -model is named (discovery needs /models/{name})"))
		}
	}

	rep, err := run(cfg)
	if err != nil {
		fatal(err)
	}
	if rep.OK == 0 {
		// Not a gating question: zero successes means the target is down
		// or misconfigured, on any runner size.
		fatal(fmt.Errorf("no successful requests (%d shed, %d errors) — is %s serving?", rep.Shed, rep.Errors, *url))
	}
	if *maxErrors >= 0 && rep.Errors > *maxErrors {
		// Like ok == 0, this arms regardless of runner size: a failed
		// request is a correctness failure (a live refresh broke a
		// response), not a latency measurement. Shed 503s stay exempt —
		// admission control is allowed to say no.
		fatal(fmt.Errorf("%d failed requests (budget %d) — the serve path broke under load", rep.Errors, *maxErrors))
	}
	rep.SHA = *sha
	fmt.Printf("warplda-loadgen: %s %s %d workers, %.1fs: %d ok, %d shed, %d errors, %.1f req/s, P50 %.1fms P95 %.1fms P99 %.1fms\n",
		rep.Mode, workloadOf(rep), rep.Concurrency, rep.DurationSec, rep.OK, rep.Shed, rep.Errors, rep.ThroughputRPS,
		float64(rep.LatencyUs.P50)/1000, float64(rep.LatencyUs.P95)/1000, float64(rep.LatencyUs.P99)/1000)

	if *updateBase != "" {
		if err := writeJSONFile(*updateBase, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("warplda-loadgen: baseline %s updated\n", *updateBase)
		return
	}
	if *out != "" {
		if err := writeJSONFile(*out, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("warplda-loadgen: wrote %s\n", *out)
	}

	var base *Report
	baseComparable := true
	if *baselineF != "" {
		data, err := os.ReadFile(*baselineF)
		if err != nil {
			fatal(err)
		}
		base = &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baselineF, err))
		}
		var why string
		if baseComparable, why = envMatches(base, rep); !baseComparable {
			fmt.Fprintf(os.Stderr, "warplda-loadgen: warning: %s — baseline comparison is informational; refresh with -update-baseline from this environment\n", why)
		}
	}

	violations := gate(rep, base, *p99Budget, *minThrough, *maxRegress)
	if len(violations) == 0 {
		fmt.Println("warplda-loadgen: all gates passed")
		return
	}
	// Arm the gates only on big-enough runners AND a comparable
	// baseline class: a P99 from a starved 1-CPU container measures the
	// scheduler, not the serve path.
	armed := runtime.NumCPU() >= *gateMinCPUs && baseComparable
	for _, v := range violations {
		if armed {
			fmt.Fprintf(os.Stderr, "warplda-loadgen: REGRESSION: %s\n", v)
		} else {
			fmt.Fprintf(os.Stderr, "warplda-loadgen: (not gated) %s\n", v)
		}
	}
	if armed {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "warplda-loadgen: gates informational (runner has %d CPUs, gating needs %d and a comparable baseline)\n",
		runtime.NumCPU(), *gateMinCPUs)
}
