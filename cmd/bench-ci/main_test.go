package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		tp   float64
		unit string
	}{
		{"BenchmarkSampleWarp-8  3  53190112 ns/op  4511071 tokens/s", true, "BenchmarkSampleWarp", 4511071, "tokens/s"},
		{"BenchmarkSampleWarp  1  53190112 ns/op  4511071 tokens/s", true, "BenchmarkSampleWarp", 4511071, "tokens/s"},
		{"BenchmarkFreeze-4  10  1000000 ns/op", true, "BenchmarkFreeze", 1000, "ops/s"},
		{"BenchmarkSampleIngest 	       1	 169525500 ns/op	  12.58 MB/s	 1415330 tokens/s", true, "BenchmarkSampleIngest", 1415330, "tokens/s"},
		{"BenchmarkSampleWarpScaling/threads=4-8  3  20000000 ns/op  12000000 tokens/s", true, "BenchmarkSampleWarpScaling/threads=4", 12000000, "tokens/s"},
		{"BenchmarkSampleWarpScaling/threads=2  3  40000000 ns/op  6000000 tokens/s", true, "BenchmarkSampleWarpScaling/threads=2", 6000000, "tokens/s"},
		{"PASS", false, "", 0, ""},
		{"ok  	warplda	1.046s", false, "", 0, ""},
		{"goos: linux", false, "", 0, ""},
		{"BenchmarkBroken  x  12 ns/op", false, "", 0, ""},
	}
	for _, tc := range cases {
		run, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if run.Name != tc.name {
			t.Errorf("parseBenchLine(%q) name = %q, want %q", tc.line, run.Name, tc.name)
		}
		tp, unit := throughputOf(run)
		if tp != tc.tp || unit != tc.unit {
			t.Errorf("throughputOf(%q) = %v %s, want %v %s", tc.line, tp, unit, tc.tp, tc.unit)
		}
	}
}

// rawStream is a realistic `go test -json` excerpt: framing events,
// result lines split across output events (the padded name is written
// before the benchmark runs, the numbers after) and interleaved across
// packages, three counted runs of one benchmark, and a plain non-JSON
// line (tolerated).
const rawStream = `{"Action":"start","Package":"warplda"}
{"Action":"output","Package":"warplda","Output":"goos: linux\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t"}
{"Action":"output","Package":"warplda/internal/ftree","Output":"BenchmarkSample-8 \t"}
{"Action":"output","Package":"warplda","Output":"       3\t  53190112 ns/op\t   4511071 tokens/s\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t       3\t  60000000 ns/op\t   4000000 tokens/s\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t"}
{"Action":"output","Package":"warplda","Output":"       3\t  50000000 ns/op\t   4800000 tokens/s\n"}
{"Action":"output","Package":"warplda/internal/ftree","Output":" 1000000\t      1052 ns/op\n"}
{"Action":"output","Package":"warplda","Output":"PASS\n"}
BenchmarkPlainLine 	       2	  10000000 ns/op	   99 tokens/s
{"Action":"pass","Package":"warplda"}
`

func TestParseAndSummarize(t *testing.T) {
	runs, err := parseGoTestJSON(strings.NewReader(rawStream))
	if err != nil {
		t.Fatal(err)
	}
	sums := summarize(runs)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries (%+v), want 3", len(sums), sums)
	}
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	warp := byName["BenchmarkSampleWarp"]
	if warp.Runs != 3 {
		t.Errorf("BenchmarkSampleWarp folded %d runs, want 3", warp.Runs)
	}
	if warp.Throughput != 4800000 || warp.NsPerOp != 50000000 {
		t.Errorf("BenchmarkSampleWarp best = %v tokens/s / %v ns/op, want 4800000 / 50000000", warp.Throughput, warp.NsPerOp)
	}
	if ftree := byName["BenchmarkSample"]; ftree.ThroughputUnit != "ops/s" {
		t.Errorf("metric-less benchmark should fall back to ops/s, got %q", ftree.ThroughputUnit)
	}
	if plain := byName["BenchmarkPlainLine"]; plain.Throughput != 99 {
		t.Errorf("plain-text line not parsed: %+v", plain)
	}
}

func TestCompare(t *testing.T) {
	base := []Summary{
		{Name: "A", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "B", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "Gone", Throughput: 500, ThroughputUnit: "tokens/s"},
	}
	cur := []Summary{
		{Name: "A", Throughput: 800, ThroughputUnit: "tokens/s"},  // -20%: within 25%
		{Name: "B", Throughput: 700, ThroughputUnit: "tokens/s"},  // -30%: violation
		{Name: "New", Throughput: 42, ThroughputUnit: "tokens/s"}, // not gated
	}
	violations, warnings := compare(base, cur, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "B:") {
		t.Fatalf("violations = %v, want exactly B", violations)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "Gone") {
		t.Fatalf("warnings = %v, want exactly Gone", warnings)
	}

	// Improvements and equality never fail.
	violations, _ = compare(base[:2], []Summary{
		{Name: "A", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "B", Throughput: 2000, ThroughputUnit: "tokens/s"},
	}, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations %v", violations)
	}
}

func TestCompareUnitMismatch(t *testing.T) {
	base := []Summary{{Name: "A", Throughput: 23, ThroughputUnit: "ops/s"}}
	cur := []Summary{{Name: "A", Throughput: 5.5e6, ThroughputUnit: "tokens/s"}}
	violations, _ := compare(base, cur, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "unit changed") {
		t.Fatalf("unit mismatch not flagged: %v", violations)
	}
}

func TestEnvMatches(t *testing.T) {
	a := Report{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "amd64", CPUs: 8}
	if ok, _ := envMatches(a, a); !ok {
		t.Fatal("identical envs should match")
	}
	for _, b := range []Report{
		{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", CPUs: 8},
		{GoVersion: "go1.22.1", GOOS: "darwin", GOARCH: "amd64", CPUs: 8},
		{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "arm64", CPUs: 8},
		{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "amd64", CPUs: 4},
	} {
		if ok, why := envMatches(a, b); ok || why == "" {
			t.Fatalf("mismatched envs %+v vs %+v not detected", a, b)
		}
	}
}

// scalingFixture is a two-family summary set: one well-formed curve
// (with a deliberately out-of-order input and a GOMAXPROCS-normalized
// naming convention already applied) and one family with no threads=1
// point, plus a non-scaling benchmark that must be ignored.
func scalingFixture() []Summary {
	return []Summary{
		{Name: "BenchmarkSampleWarp", Throughput: 5e6, ThroughputUnit: "tokens/s"},
		{Name: "BenchmarkSampleWarpScaling/threads=4", Throughput: 11e6, ThroughputUnit: "tokens/s"},
		{Name: "BenchmarkSampleWarpScaling/threads=1", Throughput: 5e6, ThroughputUnit: "tokens/s"},
		{Name: "BenchmarkSampleWarpScaling/threads=2", Throughput: 9e6, ThroughputUnit: "tokens/s"},
		{Name: "BenchmarkOrphan/threads=2", Throughput: 100, ThroughputUnit: "ops/s"},
	}
}

func TestScalingCurves(t *testing.T) {
	curves := scalingCurves(scalingFixture())
	if len(curves) != 2 {
		t.Fatalf("got %d curves, want 2: %+v", len(curves), curves)
	}
	if curves[0].Name != "BenchmarkOrphan" || curves[1].Name != "BenchmarkSampleWarpScaling" {
		t.Fatalf("curves not sorted by name: %+v", curves)
	}
	// No threads=1 point: throughput recorded, speedup left at 0.
	if p := curves[0].Points[0]; p.Threads != 2 || p.Speedup != 0 {
		t.Fatalf("orphan curve point = %+v, want threads=2 speedup=0", p)
	}
	warp := curves[1]
	wantThreads := []int{1, 2, 4}
	wantSpeedup := []float64{1, 1.8, 2.2}
	for i, p := range warp.Points {
		if p.Threads != wantThreads[i] || p.Speedup != wantSpeedup[i] {
			t.Fatalf("point %d = %+v, want threads=%d speedup=%g", i, p, wantThreads[i], wantSpeedup[i])
		}
	}
	if got := scalingCurves(nil); len(got) != 0 {
		t.Fatalf("no input produced curves %+v", got)
	}
}

func TestSpeedupFloorsFlag(t *testing.T) {
	f := speedupFloors{}
	for _, s := range []string{"4=2.0", "8 = 3"} {
		if err := f.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if f[4] != 2.0 || f[8] != 3.0 {
		t.Fatalf("floors = %v", f)
	}
	if got := f.String(); got != "4=2,8=3" {
		t.Fatalf("String() = %q", got)
	}
	for _, s := range []string{"", "4", "x=2", "4=", "4=-1", "1=2", "0=2"} {
		if err := f.Set(s); err == nil {
			t.Fatalf("Set(%q) accepted", s)
		}
	}
}

func TestCheckSpeedupFloors(t *testing.T) {
	curves := scalingCurves(scalingFixture())

	// Enough CPUs, floor met at 2, violated at 4 (2.2 < 3.0).
	violations, notes := checkSpeedupFloors(curves, speedupFloors{2: 1.5, 4: 3.0}, 8)
	if len(notes) != 0 {
		t.Fatalf("unexpected notes %v", notes)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "threads=4") {
		t.Fatalf("violations = %v, want exactly the threads=4 floor", violations)
	}

	// Too few CPUs: the gate disarms into a note, never a violation.
	violations, notes = checkSpeedupFloors(curves, speedupFloors{4: 3.0}, 1)
	if len(violations) != 0 {
		t.Fatalf("disarmed gate still fired: %v", violations)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "not armed") {
		t.Fatalf("notes = %v, want a single not-armed note", notes)
	}

	// Curves without a speedup (no threads=1 point) are never gated.
	violations, _ = checkSpeedupFloors(curves[:1], speedupFloors{2: 99}, 8)
	if len(violations) != 0 {
		t.Fatalf("speedup-less curve gated: %v", violations)
	}
}

func TestCompareScaling(t *testing.T) {
	base := []ScalingCurve{{
		Name: "BenchmarkSampleWarpScaling",
		Points: []ScalingPoint{
			{Threads: 1, Speedup: 1},
			{Threads: 2, Speedup: 1.8},
			{Threads: 4, Speedup: 3.0},
		},
	}}
	// Same absolute throughput can hide a scaling collapse: speedup at
	// 4 threads fell 1 - 2.0/3.0 = 33% > 25%.
	cur := []ScalingCurve{{
		Name: "BenchmarkSampleWarpScaling",
		Points: []ScalingPoint{
			{Threads: 1, Speedup: 1},
			{Threads: 2, Speedup: 1.7},
			{Threads: 4, Speedup: 2.0},
		},
	}}
	violations := compareScaling(base, cur, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "threads=4") {
		t.Fatalf("violations = %v, want exactly threads=4", violations)
	}

	// Equal or better scaling passes; missing families are not gated
	// here (compare already warns about vanished benchmarks).
	if v := compareScaling(base, base, 0.25); len(v) != 0 {
		t.Fatalf("identical curves flagged: %v", v)
	}
	if v := compareScaling(base, nil, 0.25); len(v) != 0 {
		t.Fatalf("missing family gated: %v", v)
	}
}
