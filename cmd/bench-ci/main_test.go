package main

import (
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
		name string
		tp   float64
		unit string
	}{
		{"BenchmarkSampleWarp-8  3  53190112 ns/op  4511071 tokens/s", true, "BenchmarkSampleWarp", 4511071, "tokens/s"},
		{"BenchmarkSampleWarp  1  53190112 ns/op  4511071 tokens/s", true, "BenchmarkSampleWarp", 4511071, "tokens/s"},
		{"BenchmarkFreeze-4  10  1000000 ns/op", true, "BenchmarkFreeze", 1000, "ops/s"},
		{"BenchmarkSampleIngest 	       1	 169525500 ns/op	  12.58 MB/s	 1415330 tokens/s", true, "BenchmarkSampleIngest", 1415330, "tokens/s"},
		{"PASS", false, "", 0, ""},
		{"ok  	warplda	1.046s", false, "", 0, ""},
		{"goos: linux", false, "", 0, ""},
		{"BenchmarkBroken  x  12 ns/op", false, "", 0, ""},
	}
	for _, tc := range cases {
		run, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if run.Name != tc.name {
			t.Errorf("parseBenchLine(%q) name = %q, want %q", tc.line, run.Name, tc.name)
		}
		tp, unit := throughputOf(run)
		if tp != tc.tp || unit != tc.unit {
			t.Errorf("throughputOf(%q) = %v %s, want %v %s", tc.line, tp, unit, tc.tp, tc.unit)
		}
	}
}

// rawStream is a realistic `go test -json` excerpt: framing events,
// result lines split across output events (the padded name is written
// before the benchmark runs, the numbers after) and interleaved across
// packages, three counted runs of one benchmark, and a plain non-JSON
// line (tolerated).
const rawStream = `{"Action":"start","Package":"warplda"}
{"Action":"output","Package":"warplda","Output":"goos: linux\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t"}
{"Action":"output","Package":"warplda/internal/ftree","Output":"BenchmarkSample-8 \t"}
{"Action":"output","Package":"warplda","Output":"       3\t  53190112 ns/op\t   4511071 tokens/s\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t       3\t  60000000 ns/op\t   4000000 tokens/s\n"}
{"Action":"output","Package":"warplda","Output":"BenchmarkSampleWarp-8 \t"}
{"Action":"output","Package":"warplda","Output":"       3\t  50000000 ns/op\t   4800000 tokens/s\n"}
{"Action":"output","Package":"warplda/internal/ftree","Output":" 1000000\t      1052 ns/op\n"}
{"Action":"output","Package":"warplda","Output":"PASS\n"}
BenchmarkPlainLine 	       2	  10000000 ns/op	   99 tokens/s
{"Action":"pass","Package":"warplda"}
`

func TestParseAndSummarize(t *testing.T) {
	runs, err := parseGoTestJSON(strings.NewReader(rawStream))
	if err != nil {
		t.Fatal(err)
	}
	sums := summarize(runs)
	if len(sums) != 3 {
		t.Fatalf("got %d summaries (%+v), want 3", len(sums), sums)
	}
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Name] = s
	}
	warp := byName["BenchmarkSampleWarp"]
	if warp.Runs != 3 {
		t.Errorf("BenchmarkSampleWarp folded %d runs, want 3", warp.Runs)
	}
	if warp.Throughput != 4800000 || warp.NsPerOp != 50000000 {
		t.Errorf("BenchmarkSampleWarp best = %v tokens/s / %v ns/op, want 4800000 / 50000000", warp.Throughput, warp.NsPerOp)
	}
	if ftree := byName["BenchmarkSample"]; ftree.ThroughputUnit != "ops/s" {
		t.Errorf("metric-less benchmark should fall back to ops/s, got %q", ftree.ThroughputUnit)
	}
	if plain := byName["BenchmarkPlainLine"]; plain.Throughput != 99 {
		t.Errorf("plain-text line not parsed: %+v", plain)
	}
}

func TestCompare(t *testing.T) {
	base := []Summary{
		{Name: "A", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "B", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "Gone", Throughput: 500, ThroughputUnit: "tokens/s"},
	}
	cur := []Summary{
		{Name: "A", Throughput: 800, ThroughputUnit: "tokens/s"},  // -20%: within 25%
		{Name: "B", Throughput: 700, ThroughputUnit: "tokens/s"},  // -30%: violation
		{Name: "New", Throughput: 42, ThroughputUnit: "tokens/s"}, // not gated
	}
	violations, warnings := compare(base, cur, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "B:") {
		t.Fatalf("violations = %v, want exactly B", violations)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "Gone") {
		t.Fatalf("warnings = %v, want exactly Gone", warnings)
	}

	// Improvements and equality never fail.
	violations, _ = compare(base[:2], []Summary{
		{Name: "A", Throughput: 1000, ThroughputUnit: "tokens/s"},
		{Name: "B", Throughput: 2000, ThroughputUnit: "tokens/s"},
	}, 0.25)
	if len(violations) != 0 {
		t.Fatalf("unexpected violations %v", violations)
	}
}

func TestCompareUnitMismatch(t *testing.T) {
	base := []Summary{{Name: "A", Throughput: 23, ThroughputUnit: "ops/s"}}
	cur := []Summary{{Name: "A", Throughput: 5.5e6, ThroughputUnit: "tokens/s"}}
	violations, _ := compare(base, cur, 0.25)
	if len(violations) != 1 || !strings.Contains(violations[0], "unit changed") {
		t.Fatalf("unit mismatch not flagged: %v", violations)
	}
}

func TestEnvMatches(t *testing.T) {
	a := Report{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "amd64"}
	if ok, _ := envMatches(a, a); !ok {
		t.Fatal("identical envs should match")
	}
	for _, b := range []Report{
		{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64"},
		{GoVersion: "go1.22.1", GOOS: "darwin", GOARCH: "amd64"},
		{GoVersion: "go1.22.1", GOOS: "linux", GOARCH: "arm64"},
	} {
		if ok, why := envMatches(a, b); ok || why == "" {
			t.Fatalf("mismatched envs %+v vs %+v not detected", a, b)
		}
	}
}
