// Command bench-ci post-processes `go test -json -bench` output into a
// benchmark report and gates CI on throughput regressions.
//
// The bench-regression CI job runs
//
//	go test -json -bench=BenchmarkSample -benchtime=3x -count=3 -run '^$' ./... > bench-raw.json
//	bench-ci -in bench-raw.json -out BENCH_$GITHUB_SHA.json \
//	    -baseline ci/bench-baseline.json -max-regression 0.25
//
// which writes the per-commit BENCH_<sha>.json artifact (the repo's
// perf trajectory, one file per commit) and exits non-zero when any
// benchmark's throughput fell more than 25% below the committed
// baseline. Throughput is the benchmark's tokens/s metric when it
// reports one, else ops/s derived from ns/op — higher is better either
// way, so the gate needs no per-benchmark configuration.
//
// Benchmarks named <base>/threads=N (BenchmarkSampleWarpScaling) are
// additionally folded into per-family speedup-vs-threads curves,
// recorded in the report's "scaling" section. Two extra gates apply to
// them: the repeatable -min-speedup THREADS=SPEEDUP flag enforces an
// absolute scaling floor (armed only when the runner has at least
// THREADS CPUs), and when a baseline is supplied, each point's speedup
// is gated against the baseline's speedup at the same thread count —
// so a change that keeps serial throughput but destroys scaling still
// fails. The thread-scaling CI lane runs
//
//	go test -json -bench=BenchmarkSampleWarpScaling -benchtime=3x -count=3 -run '^$' . > scaling-raw.json
//	bench-ci -in scaling-raw.json -out BENCH_SCALING_$GITHUB_SHA.json \
//	    -baseline ci/bench-baseline.json -min-speedup 4=2.0
//
// Refresh the baseline (after a reviewed perf change, or on new
// hardware) with:
//
//	bench-ci -in bench-raw.json -update-baseline ci/bench-baseline.json
//
// Counted runs are folded to the best observation (max throughput, min
// ns/op): benchmarks only get slower through noise, so the best of
// -count runs is the least noisy regression signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchRun is one benchmark result line from one counted run.
type benchRun struct {
	Name    string             // normalized: -cpu suffix stripped
	Iters   int64              //
	Metrics map[string]float64 // "ns/op", "tokens/s", "MB/s", ...
}

// Summary is one benchmark's folded result, as serialized into
// BENCH_<sha>.json and the committed baseline.
type Summary struct {
	Name string `json:"name"`
	// Runs is how many counted runs were folded.
	Runs int `json:"runs"`
	// NsPerOp is the fastest observed iteration time.
	NsPerOp float64 `json:"ns_per_op"`
	// Throughput is the best observed throughput in ThroughputUnit
	// (tokens/s when the benchmark reports it, else ops/s from ns/op).
	Throughput     float64 `json:"throughput"`
	ThroughputUnit string  `json:"throughput_unit"`
}

// Report is the BENCH_<sha>.json document.
type Report struct {
	SHA       string `json:"sha,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU() where the benchmarks ran. Scaling gates
	// arm against it: a 2× floor at 4 threads is meaningless on a
	// 1-core runner, and absolute throughput from a different core
	// count is not comparable either (see envMatches).
	CPUs       int       `json:"cpus"`
	Benchmarks []Summary `json:"benchmarks"`
	// Scaling holds the speedup curves derived from /threads=N
	// sub-benchmark families (see scalingCurves).
	Scaling []ScalingCurve `json:"scaling,omitempty"`
}

// ScalingPoint is one thread count of a scaling curve.
type ScalingPoint struct {
	Threads    int     `json:"threads"`
	Throughput float64 `json:"throughput"`
	// Speedup is Throughput over the curve's threads=1 throughput;
	// 0 when the curve has no threads=1 point to normalize against.
	Speedup float64 `json:"speedup"`
}

// ScalingCurve is the speedup-vs-threads curve of one benchmark family
// named <base>/threads=N, e.g. BenchmarkSampleWarpScaling.
type ScalingCurve struct {
	Name           string         `json:"name"`
	ThroughputUnit string         `json:"throughput_unit"`
	Points         []ScalingPoint `json:"points"`
}

// scalingNameRE matches the sub-benchmark naming convention that marks
// a benchmark as one point of a thread-scaling family.
var scalingNameRE = regexp.MustCompile(`^(.+)/threads=(\d+)$`)

// scalingCurves groups /threads=N summaries into per-family curves,
// sorted by name and ascending thread count, with each point's speedup
// normalized against the family's threads=1 point.
func scalingCurves(sums []Summary) []ScalingCurve {
	byBase := map[string]*ScalingCurve{}
	for _, s := range sums {
		m := scalingNameRE.FindStringSubmatch(s.Name)
		if m == nil {
			continue
		}
		threads, err := strconv.Atoi(m[2])
		if err != nil || threads < 1 {
			continue
		}
		c := byBase[m[1]]
		if c == nil {
			c = &ScalingCurve{Name: m[1], ThroughputUnit: s.ThroughputUnit}
			byBase[m[1]] = c
		}
		c.Points = append(c.Points, ScalingPoint{Threads: threads, Throughput: s.Throughput})
	}
	out := make([]ScalingCurve, 0, len(byBase))
	for _, c := range byBase {
		sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].Threads < c.Points[j].Threads })
		var serial float64
		for _, p := range c.Points {
			if p.Threads == 1 {
				serial = p.Throughput
				break
			}
		}
		if serial > 0 {
			for i := range c.Points {
				c.Points[i].Speedup = c.Points[i].Throughput / serial
			}
		}
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// speedupFloors is the repeatable -min-speedup flag: threads → minimum
// required speedup over the same family's threads=1 point.
type speedupFloors map[int]float64

func (f speedupFloors) String() string {
	parts := make([]string, 0, len(f))
	for t, x := range f {
		parts = append(parts, fmt.Sprintf("%d=%g", t, x))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f speedupFloors) Set(s string) error {
	t, x, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want THREADS=SPEEDUP, got %q", s)
	}
	threads, err := strconv.Atoi(strings.TrimSpace(t))
	if err != nil || threads < 2 {
		return fmt.Errorf("bad thread count in %q", s)
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("bad speedup floor in %q", s)
	}
	f[threads] = min
	return nil
}

// checkSpeedupFloors applies the absolute -min-speedup gates to every
// scaling curve. A floor at T threads only arms when the run had at
// least T CPUs — on a smaller runner it downgrades to a note, because
// the hardware cannot express the speedup no matter how good the code
// is. Curves lacking a threads=1 or threads=T point are skipped.
func checkSpeedupFloors(curves []ScalingCurve, floors speedupFloors, cpus int) (violations, notes []string) {
	threads := make([]int, 0, len(floors))
	for t := range floors {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		min := floors[t]
		if cpus < t {
			notes = append(notes, fmt.Sprintf("min-speedup %d=%.2f not armed: run had %d CPUs", t, min, cpus))
			continue
		}
		for _, c := range curves {
			for _, p := range c.Points {
				if p.Threads != t || p.Speedup == 0 {
					continue
				}
				if p.Speedup < min {
					violations = append(violations, fmt.Sprintf("%s/threads=%d: speedup %.2f× below required %.2f× (%d CPUs)",
						c.Name, t, p.Speedup, min, cpus))
				}
			}
		}
	}
	return violations, notes
}

// compareScaling gates each curve's speedups against the baseline's:
// a point whose speedup fell more than maxRegression below the
// baseline speedup at the same thread count is a scaling regression,
// even if absolute throughput stayed inside the throughput gate. Only
// meaningful when the environments (including CPU count) match; the
// caller is responsible for that check.
func compareScaling(baseline, current []ScalingCurve, maxRegression float64) (violations []string) {
	cur := map[string]ScalingCurve{}
	for _, c := range current {
		cur[c.Name] = c
	}
	for _, base := range baseline {
		got, ok := cur[base.Name]
		if !ok {
			continue // vanished families are already warned about per-benchmark
		}
		speedups := map[int]float64{}
		for _, p := range got.Points {
			speedups[p.Threads] = p.Speedup
		}
		for _, p := range base.Points {
			if p.Threads == 1 || p.Speedup <= 0 {
				continue
			}
			gotSpeedup, ok := speedups[p.Threads]
			if !ok || gotSpeedup <= 0 {
				continue
			}
			drop := 1 - gotSpeedup/p.Speedup
			if drop > maxRegression {
				violations = append(violations, fmt.Sprintf("%s/threads=%d: speedup %.2f×, baseline %.2f× (%.1f%% scaling regression > %.0f%% allowed)",
					base.Name, p.Threads, gotSpeedup, p.Speedup, drop*100, maxRegression*100))
			}
		}
	}
	return violations
}

// testEvent is the subset of `go test -json` events we read. Package
// matters: output events interleave across packages, and one benchmark
// result line arrives split over several events (the padded name is
// written before the benchmark runs, the numbers after), so lines must
// be reassembled per package.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLineRE matches a benchmark result line: name, iteration count,
// then value/unit pairs handled separately.
var benchLineRE = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// parseBenchLine parses "BenchmarkX-8  3  123 ns/op  456 tokens/s".
func parseBenchLine(line string) (benchRun, bool) {
	m := benchLineRE.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return benchRun{}, false
	}
	name := m[1]
	// Strip the -GOMAXPROCS suffix so results are keyed stably across
	// machines with different core counts.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return benchRun{}, false
	}
	run := benchRun{Name: name, Iters: iters, Metrics: map[string]float64{}}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchRun{}, false
		}
		run.Metrics[fields[i+1]] = v
	}
	if len(run.Metrics) == 0 {
		return benchRun{}, false
	}
	return run, true
}

// parseGoTestJSON extracts benchmark runs from a `go test -json`
// stream, reassembling each package's output events into whole lines
// first. Non-JSON lines (plain `go test -bench` output piped in by
// mistake, build noise) are tolerated: anything that looks like a
// benchmark result counts.
func parseGoTestJSON(r io.Reader) ([]benchRun, error) {
	var runs []benchRun
	partial := map[string]string{} // package -> unterminated output tail
	emit := func(pkg, chunk string) {
		text := partial[pkg] + chunk
		for {
			i := strings.IndexByte(text, '\n')
			if i < 0 {
				break
			}
			if run, ok := parseBenchLine(text[:i]); ok {
				runs = append(runs, run)
			}
			text = text[i+1:]
		}
		partial[pkg] = text
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err == nil {
			if ev.Action == "output" {
				emit(ev.Package, ev.Output)
			}
			continue
		}
		if run, ok := parseBenchLine(string(line)); ok {
			runs = append(runs, run)
		}
	}
	for pkg, tail := range partial {
		if run, ok := parseBenchLine(tail); ok {
			runs = append(runs, run)
		}
		delete(partial, pkg)
	}
	return runs, sc.Err()
}

// throughputOf derives the comparable higher-is-better number: an
// explicit tokens/s metric when present, else ops/s.
func throughputOf(run benchRun) (float64, string) {
	if v, ok := run.Metrics["tokens/s"]; ok {
		return v, "tokens/s"
	}
	if ns, ok := run.Metrics["ns/op"]; ok && ns > 0 {
		return 1e9 / ns, "ops/s"
	}
	return 0, ""
}

// summarize folds counted runs into per-benchmark summaries, sorted by
// name for stable diffs.
func summarize(runs []benchRun) []Summary {
	byName := map[string]*Summary{}
	for _, run := range runs {
		tp, unit := throughputOf(run)
		if unit == "" {
			continue
		}
		s := byName[run.Name]
		if s == nil {
			s = &Summary{Name: run.Name, NsPerOp: run.Metrics["ns/op"], Throughput: tp, ThroughputUnit: unit}
			byName[run.Name] = s
		} else {
			if ns := run.Metrics["ns/op"]; ns > 0 && (s.NsPerOp == 0 || ns < s.NsPerOp) {
				s.NsPerOp = ns
			}
			if tp > s.Throughput {
				s.Throughput = tp
			}
		}
		s.Runs++
	}
	out := make([]Summary, 0, len(byName))
	for _, s := range byName {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// compare returns one violation line per benchmark whose throughput
// regressed more than maxRegression (fraction) below the baseline, and
// separate warnings for baseline benchmarks that vanished.
func compare(baseline, current []Summary, maxRegression float64) (violations, warnings []string) {
	cur := map[string]Summary{}
	for _, s := range current {
		cur[s.Name] = s
	}
	for _, base := range baseline {
		got, ok := cur[base.Name]
		if !ok {
			warnings = append(warnings, fmt.Sprintf("%s: in baseline but not in this run (renamed or deleted? refresh the baseline)", base.Name))
			continue
		}
		if got.ThroughputUnit != base.ThroughputUnit {
			// tokens/s vs ops/s are not comparable in either direction: a
			// benchmark that gained or lost its ReportMetric must come with
			// a baseline refresh, not sail through on a nonsense ratio.
			violations = append(violations, fmt.Sprintf("%s: unit changed (%s now, %s in baseline); refresh the baseline",
				base.Name, got.ThroughputUnit, base.ThroughputUnit))
			continue
		}
		if base.Throughput <= 0 {
			continue
		}
		drop := 1 - got.Throughput/base.Throughput
		if drop > maxRegression {
			violations = append(violations, fmt.Sprintf("%s: %.0f %s, baseline %.0f (%.1f%% regression > %.0f%% allowed)",
				base.Name, got.Throughput, got.ThroughputUnit, base.Throughput, drop*100, maxRegression*100))
		}
	}
	return violations, warnings
}

// envMatches reports whether the baseline was recorded in a comparable
// environment. Absolute throughput only gates meaningfully against a
// baseline from the same OS/arch/toolchain class; a mismatch (first CI
// run after a local refresh, a Go upgrade, a runner migration) makes
// the comparison informational until the baseline is refreshed from
// this environment's own BENCH artifact.
func envMatches(base, cur Report) (bool, string) {
	switch {
	case base.GOOS != cur.GOOS:
		return false, fmt.Sprintf("baseline GOOS %s vs %s", base.GOOS, cur.GOOS)
	case base.GOARCH != cur.GOARCH:
		return false, fmt.Sprintf("baseline GOARCH %s vs %s", base.GOARCH, cur.GOARCH)
	case base.GoVersion != cur.GoVersion:
		return false, fmt.Sprintf("baseline recorded with %s, running %s", base.GoVersion, cur.GoVersion)
	case base.CPUs != cur.CPUs:
		// Thread-scaling speedups (and absolute threaded throughput)
		// from different core counts are not comparable.
		return false, fmt.Sprintf("baseline recorded on %d CPUs, running on %d", base.CPUs, cur.CPUs)
	}
	return true, ""
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		in          = flag.String("in", "-", "go test -json output ('-' for stdin)")
		out         = flag.String("out", "", "write the BENCH_<sha>.json report here")
		sha         = flag.String("sha", os.Getenv("GITHUB_SHA"), "commit sha recorded in the report")
		baselineF   = flag.String("baseline", "", "committed baseline report to gate against")
		maxRegress  = flag.Float64("max-regression", 0.25, "maximum allowed fractional throughput regression vs the baseline")
		updateBase  = flag.String("update-baseline", "", "write a fresh baseline report here and exit")
		failOnEmpty = flag.Bool("fail-on-empty", true, "fail when no benchmark results were found in the input")
		floors      = speedupFloors{}
	)
	flag.Var(floors, "min-speedup", "THREADS=SPEEDUP floor for /threads=N scaling families, e.g. 4=2.0; repeatable; armed only when the runner has at least THREADS CPUs")
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	runs, err := parseGoTestJSON(r)
	if err != nil {
		fatal(err)
	}
	summaries := summarize(runs)
	if len(summaries) == 0 && *failOnEmpty {
		fatal(fmt.Errorf("no benchmark results found in %s", *in))
	}
	report := Report{
		SHA:        *sha,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: summaries,
		Scaling:    scalingCurves(summaries),
	}

	if *updateBase != "" {
		if err := writeJSON(*updateBase, report); err != nil {
			fatal(err)
		}
		fmt.Printf("bench-ci: baseline %s updated (%d benchmarks)\n", *updateBase, len(summaries))
		return
	}
	if *out != "" {
		if err := writeJSON(*out, report); err != nil {
			fatal(err)
		}
		fmt.Printf("bench-ci: wrote %s (%d benchmarks)\n", *out, len(summaries))
	}

	// Absolute scaling floors gate independently of any baseline: they
	// assert the parallel code actually scales, not merely that it got
	// no worse. Floors above this runner's core count downgrade to
	// notes — the hardware, not the code, caps the speedup there.
	floorViolations, notes := checkSpeedupFloors(report.Scaling, floors, report.CPUs)
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "bench-ci: note: %s\n", n)
	}
	if len(floors) > 0 && len(report.Scaling) == 0 {
		fmt.Fprintf(os.Stderr, "bench-ci: warning: -min-speedup set but no /threads=N scaling family found in the input\n")
	}
	if len(floorViolations) > 0 {
		for _, v := range floorViolations {
			fmt.Fprintf(os.Stderr, "bench-ci: SCALING: %s\n", v)
		}
		os.Exit(1)
	}

	if *baselineF != "" {
		data, err := os.ReadFile(*baselineF)
		if err != nil {
			fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baselineF, err))
		}
		violations, warnings := compare(base.Benchmarks, summaries, *maxRegress)
		// Older baselines carry no scaling section: derive the curves
		// from their /threads=N summaries so the speedup comparison
		// works against any baseline vintage.
		baseScaling := base.Scaling
		if len(baseScaling) == 0 {
			baseScaling = scalingCurves(base.Benchmarks)
		}
		violations = append(violations, compareScaling(baseScaling, report.Scaling, *maxRegress)...)
		for _, w := range warnings {
			fmt.Fprintf(os.Stderr, "bench-ci: warning: %s\n", w)
		}
		if ok, why := envMatches(base, report); !ok {
			// Different hardware/toolchain class: report, don't gate. The
			// BENCH artifact from this run is the baseline to commit.
			fmt.Fprintf(os.Stderr, "bench-ci: warning: %s — comparison is informational; refresh the baseline from this environment (-update-baseline)\n", why)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "bench-ci: (not gated) %s\n", v)
			}
			return
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "bench-ci: REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("bench-ci: %d benchmarks within %.0f%% of baseline %s\n",
			len(base.Benchmarks), *maxRegress*100, *baselineF)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench-ci: %v\n", err)
	os.Exit(1)
}
