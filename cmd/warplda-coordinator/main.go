// Command warplda-coordinator runs the coordinator side of multi-node
// distributed training (internal/dist): it owns the corpus, partitions
// it across whatever workers register, relays token blocks between
// them, aggregates the per-pass global count deltas, and commits
// sharded checkpoints that double as the recovery log. Workers are
// separate warplda-worker processes connecting over TCP.
//
// Fault tolerance is elastic: a worker dying mid-pass, a worker
// joining mid-run, or this process itself restarting all land on the
// same path — reform the cluster from the newest committed checkpoint
// in -checkpoint-dir. Restarting the coordinator with live workers
// requires no flags beyond the originals; the workers reconnect and
// training resumes where the last checkpoint left it.
//
// Usage:
//
//	warplda-coordinator -corpus docword.nips.txt -topics 100 -iters 200 \
//	    -addr :7077 -min-workers 2 -checkpoint-dir ckpt/
//	warplda-worker -coordinator host:7077   # on each worker machine
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warplda"
	"warplda/internal/corpus"
	"warplda/internal/dist"
	"warplda/internal/sampler"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7077", "listen address for workers")
		corpusPath = flag.String("corpus", "", "UCI bag-of-words file (required)")
		topics     = flag.Int("topics", 100, "number of topics K")
		alpha      = flag.Float64("alpha", 0, "document-topic prior (0 = paper default 50/K)")
		beta       = flag.Float64("beta", 0.01, "topic-word prior")
		m          = flag.Int("m", 2, "MH steps per token")
		iters      = flag.Int("iters", 100, "training iterations (total, including resumed ones)")
		seed       = flag.Uint64("seed", 42, "random seed")
		minWorkers = flag.Int("min-workers", 1, "workers required before an epoch forms")
		ckptDir    = flag.String("checkpoint-dir", "", "sharded checkpoint directory; doubles as the recovery log (required)")
		ckptEvery  = flag.Int("checkpoint-every", 5, "sync interval in iterations: shard collection, evaluation, checkpoint commit")
		ckptKeep   = flag.Int("checkpoint-keep", 3, "keep the newest N checkpoints")
		hbInterval = flag.Duration("heartbeat-interval", time.Second, "worker ping cadence")
		hbTimeout  = flag.Duration("heartbeat-timeout", 30*time.Second, "silence after which a worker is declared dead")
		publish    = flag.String("publish", "", "publish the model after every committed checkpoint as DIR/NAME (e.g. models/news); a serving registry picks up each refresh")
		pubDelta   = flag.Bool("publish-delta", false, "with -publish: emit an incremental WARPDLT delta per checkpoint instead of a full snapshot, rebasing onto a full snapshot every -delta-max-chain deltas")
		deltaChain = flag.Int("delta-max-chain", 16, "with -publish-delta: full-snapshot rebase cadence")
		pubKeep    = flag.Int("publish-keep", 0, "with -publish: keep only the newest N versioned snapshots (0 = keep all)")
	)
	flag.Parse()

	if *corpusPath == "" || *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "warplda-coordinator: -corpus and -checkpoint-dir are required")
		flag.Usage()
		return 2
	}
	if *pubDelta && *publish == "" {
		fmt.Fprintln(os.Stderr, "warplda-coordinator: -publish-delta requires -publish")
		return 2
	}
	if *pubDelta && *deltaChain < 1 {
		fmt.Fprintln(os.Stderr, "warplda-coordinator: -delta-max-chain must be >= 1")
		return 2
	}
	f, err := os.Open(*corpusPath)
	if err != nil {
		return fatal(err)
	}
	c, err := corpus.ReadUCI(f)
	f.Close()
	if err != nil {
		return fatal(err)
	}
	st := c.Stats()
	log.Printf("corpus: %d docs, %d words, %d tokens", st.D, st.V, st.T)

	cfg := sampler.PaperDefaults(*topics)
	cfg.M = *m
	cfg.Seed = *seed
	cfg.Beta = *beta
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	// Publishing rides the sync points: after every committed checkpoint
	// the shadow sampler already holds the globally consistent state, so
	// the hook snapshots it and installs either a full versioned model or
	// one WARPDLT chain link a watching warplda-serve folds in place. A
	// failed publish is logged, never fatal — the next sync retries.
	var onSync func(iter int, s sampler.Sampler)
	if *publish != "" {
		if _, _, err := warplda.PublishModelPath(*publish); err != nil {
			return fatal(err)
		}
		if *pubDelta {
			deltaPub, err := warplda.NewDeltaPublisher(*publish, *deltaChain, *pubKeep)
			if err != nil {
				return fatal(err)
			}
			onSync = func(iter int, s sampler.Sampler) {
				r, err := deltaPub.Publish(warplda.Snapshot(c, s, cfg), iter)
				if err != nil {
					log.Printf("publish at iteration %d: %v", iter, err)
					return
				}
				if r.Full {
					log.Printf("published base snapshot: iter %d -> %s", iter, r.Path)
				} else {
					log.Printf("published delta: iter %d -> %s (gen %d, %d cells)", iter, r.Path, r.Gen, r.Cells)
				}
			}
		} else {
			onSync = func(iter int, s sampler.Sampler) {
				path, err := publishFull(warplda.Snapshot(c, s, cfg), *publish, iter, *pubKeep)
				if err != nil {
					log.Printf("publish at iteration %d: %v", iter, err)
					return
				}
				log.Printf("published model: iter %d -> %s", iter, path)
			}
		}
	}

	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr:              *addr,
		Corpus:            c,
		Cfg:               cfg,
		Iters:             *iters,
		MinWorkers:        *minWorkers,
		CheckpointDir:     *ckptDir,
		CheckpointEvery:   *ckptEvery,
		CheckpointKeep:    *ckptKeep,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
		Logf:              log.Printf,
		OnSync:            onSync,
	})
	if err != nil {
		return fatal(err)
	}
	log.Printf("listening on %s (min %d workers)", co.Addr(), *minWorkers)

	// SIGINT/SIGTERM cancel the serve loop; the newest committed
	// checkpoint already holds everything a restart needs.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	trace, err := co.Serve(ctx)
	if err != nil && ctx.Err() == nil {
		return fatal(err)
	}
	for _, p := range trace.Points {
		log.Printf("iter %4d  elapsed %8.1fs  logLik %.6e  tokens/s %.3e",
			p.Iter, p.Elapsed.Seconds(), p.LogLik, p.TokensSec)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted; resume by restarting with the same -checkpoint-dir")
		return 1
	}
	log.Printf("training complete")
	return 0
}

// publishFull installs m as the versioned snapshot <spec>@<iter>.bin
// and repoints the latest marker at it, in that order — a crash between
// the two leaves the previous version served, never a missing target.
func publishFull(m *warplda.Model, spec string, iter, keep int) (string, error) {
	vPath, _, err := warplda.PublishModelVersionPath(spec, iter)
	if err != nil {
		return "", err
	}
	if _, err := m.WriteFile(vPath); err != nil {
		return "", err
	}
	if _, err := warplda.PublishModelLatest(spec, iter); err != nil {
		return "", err
	}
	if keep > 0 {
		if _, err := warplda.PruneModelVersions(spec, keep); err != nil {
			return "", err
		}
	}
	return vPath, nil
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "warplda-coordinator: %v\n", err)
	return 1
}
