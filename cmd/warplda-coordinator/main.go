// Command warplda-coordinator runs the coordinator side of multi-node
// distributed training (internal/dist): it owns the corpus, partitions
// it across whatever workers register, relays token blocks between
// them, aggregates the per-pass global count deltas, and commits
// sharded checkpoints that double as the recovery log. Workers are
// separate warplda-worker processes connecting over TCP.
//
// Fault tolerance is elastic: a worker dying mid-pass, a worker
// joining mid-run, or this process itself restarting all land on the
// same path — reform the cluster from the newest committed checkpoint
// in -checkpoint-dir. Restarting the coordinator with live workers
// requires no flags beyond the originals; the workers reconnect and
// training resumes where the last checkpoint left it.
//
// Usage:
//
//	warplda-coordinator -corpus docword.nips.txt -topics 100 -iters 200 \
//	    -addr :7077 -min-workers 2 -checkpoint-dir ckpt/
//	warplda-worker -coordinator host:7077   # on each worker machine
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/dist"
	"warplda/internal/sampler"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":7077", "listen address for workers")
		corpusPath = flag.String("corpus", "", "UCI bag-of-words file (required)")
		topics     = flag.Int("topics", 100, "number of topics K")
		alpha      = flag.Float64("alpha", 0, "document-topic prior (0 = paper default 50/K)")
		beta       = flag.Float64("beta", 0.01, "topic-word prior")
		m          = flag.Int("m", 2, "MH steps per token")
		iters      = flag.Int("iters", 100, "training iterations (total, including resumed ones)")
		seed       = flag.Uint64("seed", 42, "random seed")
		minWorkers = flag.Int("min-workers", 1, "workers required before an epoch forms")
		ckptDir    = flag.String("checkpoint-dir", "", "sharded checkpoint directory; doubles as the recovery log (required)")
		ckptEvery  = flag.Int("checkpoint-every", 5, "sync interval in iterations: shard collection, evaluation, checkpoint commit")
		ckptKeep   = flag.Int("checkpoint-keep", 3, "keep the newest N checkpoints")
		hbInterval = flag.Duration("heartbeat-interval", time.Second, "worker ping cadence")
		hbTimeout  = flag.Duration("heartbeat-timeout", 30*time.Second, "silence after which a worker is declared dead")
	)
	flag.Parse()

	if *corpusPath == "" || *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "warplda-coordinator: -corpus and -checkpoint-dir are required")
		flag.Usage()
		return 2
	}
	f, err := os.Open(*corpusPath)
	if err != nil {
		return fatal(err)
	}
	c, err := corpus.ReadUCI(f)
	f.Close()
	if err != nil {
		return fatal(err)
	}
	st := c.Stats()
	log.Printf("corpus: %d docs, %d words, %d tokens", st.D, st.V, st.T)

	cfg := sampler.PaperDefaults(*topics)
	cfg.M = *m
	cfg.Seed = *seed
	cfg.Beta = *beta
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}

	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr:              *addr,
		Corpus:            c,
		Cfg:               cfg,
		Iters:             *iters,
		MinWorkers:        *minWorkers,
		CheckpointDir:     *ckptDir,
		CheckpointEvery:   *ckptEvery,
		CheckpointKeep:    *ckptKeep,
		HeartbeatInterval: *hbInterval,
		HeartbeatTimeout:  *hbTimeout,
		Logf:              log.Printf,
	})
	if err != nil {
		return fatal(err)
	}
	log.Printf("listening on %s (min %d workers)", co.Addr(), *minWorkers)

	// SIGINT/SIGTERM cancel the serve loop; the newest committed
	// checkpoint already holds everything a restart needs.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	trace, err := co.Serve(ctx)
	if err != nil && ctx.Err() == nil {
		return fatal(err)
	}
	for _, p := range trace.Points {
		log.Printf("iter %4d  elapsed %8.1fs  logLik %.6e  tokens/s %.3e",
			p.Iter, p.Elapsed.Seconds(), p.LogLik, p.TokensSec)
	}
	if ctx.Err() != nil {
		log.Printf("interrupted; resume by restarting with the same -checkpoint-dir")
		return 1
	}
	log.Printf("training complete")
	return 0
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "warplda-coordinator: %v\n", err)
	return 1
}
