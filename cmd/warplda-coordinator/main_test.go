// Multi-process failure injection: these tests build the real
// coordinator and worker binaries, run them against each other over
// loopback TCP, and recover from kill -9 — the fault model the elastic
// design promises to absorb without operator intervention.
package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"warplda/internal/cluster"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

// buildBinaries compiles both cluster binaries into dir. The go build
// cache makes repeat builds cheap.
func buildBinaries(t *testing.T, dir string) (coordBin, workerBin string) {
	t.Helper()
	coordBin = filepath.Join(dir, "warplda-coordinator")
	workerBin = filepath.Join(dir, "warplda-worker")
	for bin, pkg := range map[string]string{
		coordBin:  "warplda/cmd/warplda-coordinator",
		workerBin: "warplda/cmd/warplda-worker",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return coordBin, workerBin
}

// writeTestCorpus materializes a synthetic corpus as a UCI file and
// returns its path plus the in-memory corpus for reference runs.
func writeTestCorpus(t *testing.T, dir string) (string, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 300, V: 200, K: 5, MeanLen: 50, Alpha: 0.1, Beta: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "corpus.uci")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteUCI(f, c); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, c
}

// proc wraps a running subprocess, buffering its combined output for
// pattern waits. Output is captured through an io.Writer sink rather
// than pipes: cmd.Wait is then guaranteed to finish copying every byte
// before it returns, so post-exit assertions see the full output.
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd
	done chan error

	mu    sync.Mutex
	buf   []byte
	lines []string
}

func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, done: make(chan error, 1)}
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stdout = (*procSink)(p)
	p.cmd.Stderr = (*procSink)(p)
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	t.Cleanup(func() { p.cmd.Process.Kill(); <-p.done })
	return p
}

// procSink is proc's io.Writer face, splitting output into lines.
type procSink proc

func (s *procSink) Write(b []byte) (int, error) {
	p := (*proc)(s)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	for {
		i := bytes.IndexByte(p.buf, '\n')
		if i < 0 {
			break
		}
		line := string(p.buf[:i])
		p.buf = p.buf[i+1:]
		p.lines = append(p.lines, line)
		p.t.Logf("[%s] %s", p.name, line)
	}
	return len(b), nil
}

// waitFor blocks until some output line contains substr, counting only
// lines at index >= from; it returns the index just past the match so
// callers can wait for REPEATED occurrences.
func (p *proc) waitFor(substr string, from int, timeout time.Duration) int {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.mu.Lock()
		for i := from; i < len(p.lines); i++ {
			if strings.Contains(p.lines[i], substr) {
				p.mu.Unlock()
				return i + 1
			}
		}
		from = len(p.lines)
		p.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
	}
	p.t.Fatalf("%s: no %q within %v", p.name, substr, timeout)
	return 0
}

func (p *proc) kill9() {
	p.t.Logf("kill -9 %s (pid %d)", p.name, p.cmd.Process.Pid)
	p.cmd.Process.Kill()
	<-p.done
	p.done <- nil // keep the cleanup hook's receive from blocking
}

func (p *proc) waitExit(timeout time.Duration) error {
	p.t.Helper()
	select {
	case err := <-p.done:
		p.done <- nil
		return err
	case <-time.After(timeout):
		p.t.Fatalf("%s: still running after %v", p.name, timeout)
		return nil
	}
}

var (
	listenRe = regexp.MustCompile(`listening on (\S+)`)
	logLikRe = regexp.MustCompile(`iter\s+(\d+)\s+elapsed.*logLik (\S+)`)
)

// listenAddr extracts the coordinator's bound address from its logs.
func (p *proc) listenAddr() string {
	p.t.Helper()
	p.waitFor("listening on", 0, 10*time.Second)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, l := range p.lines {
		if m := listenRe.FindStringSubmatch(l); m != nil {
			return m[1]
		}
	}
	p.t.Fatal("no listen address in coordinator output")
	return ""
}

// finalLogLik extracts the trace line for the final iteration from the
// coordinator's exit summary.
func (p *proc) finalLogLik(iter int) float64 {
	p.t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.lines) - 1; i >= 0; i-- {
		m := logLikRe.FindStringSubmatch(p.lines[i])
		if m == nil {
			continue
		}
		if it, _ := strconv.Atoi(m[1]); it != iter {
			continue
		}
		ll, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			p.t.Fatalf("parsing logLik from %q: %v", p.lines[i], err)
		}
		return ll
	}
	p.t.Fatalf("no trace line for iteration %d in coordinator output", iter)
	return 0
}

func refLogLik(t *testing.T, c *corpus.Corpus, p, iters int) float64 {
	t.Helper()
	cfg := sampler.PaperDefaults(5)
	cfg.M = 2
	cfg.Seed = 1234
	d, err := cluster.NewDistributed(c, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		d.Iterate()
	}
	return eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
}

func checkTolerance(t *testing.T, got, want float64) {
	t.Helper()
	if rel := math.Abs(got-want) / math.Abs(want); rel > 0.05 {
		t.Fatalf("log likelihood %v vs reference %v: relative gap %.4f > 0.05", got, want, rel)
	}
}

func coordArgs(corpusPath, ckptDir, addr string, iters int) []string {
	return []string{
		"-addr", addr, "-corpus", corpusPath, "-checkpoint-dir", ckptDir,
		"-topics", "5", "-m", "2", "-seed", "1234", "-iters", fmt.Sprint(iters),
		"-min-workers", "2", "-checkpoint-every", "3", "-checkpoint-keep", "2",
		"-heartbeat-interval", "100ms", "-heartbeat-timeout", "5s",
	}
}

func workerArgs(addr, id string) []string {
	return []string{
		"-coordinator", addr, "-id", id,
		"-retry-backoff", "100ms", "-max-backoff", "500ms", "-max-retries", "200",
		"-read-timeout", "15s", "-write-timeout", "10s",
	}
}

// TestKillWorkerMidRunRecovers is the tentpole's failure-injection
// harness: SIGKILL one of two worker processes mid-run, start a
// replacement, and require the cluster to finish — unattended — with a
// log likelihood inside the elastic tolerance of a single-process run.
func TestKillWorkerMidRunRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process training run")
	}
	dir := t.TempDir()
	coordBin, workerBin := buildBinaries(t, dir)
	corpusPath, c := writeTestCorpus(t, dir)
	const iters = 24
	want := refLogLik(t, c, 2, iters)

	co := startProc(t, "coordinator", coordBin,
		coordArgs(corpusPath, filepath.Join(dir, "ckpt"), "127.0.0.1:0", iters)...)
	addr := co.listenAddr()
	victim := startProc(t, "victim", workerBin, workerArgs(addr, "victim")...)
	startProc(t, "survivor", workerBin, workerArgs(addr, "survivor")...)

	// Let training demonstrably commit a checkpoint, then kill -9 the
	// victim while passes are in flight.
	at := co.waitFor("log likelihood", 0, time.Minute)
	victim.kill9()
	// The coordinator must notice the death and abort the epoch on its
	// own; only then does the replacement arrive.
	at = co.waitFor("reforming from last checkpoint", at, 30*time.Second)
	startProc(t, "replacement", workerBin, workerArgs(addr, "replacement")...)

	if err := co.waitExit(2 * time.Minute); err != nil {
		t.Fatalf("coordinator exited with %v", err)
	}
	checkTolerance(t, co.finalLogLik(iters), want)
}

// TestKillCoordinatorRestartResumes SIGKILLs the coordinator mid-run
// with both workers alive, then restarts it on the same address and
// checkpoint directory: the workers must reconnect on their own and
// training must finish from the last committed checkpoint.
func TestKillCoordinatorRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process training run")
	}
	dir := t.TempDir()
	coordBin, workerBin := buildBinaries(t, dir)
	corpusPath, c := writeTestCorpus(t, dir)
	const iters = 24
	want := refLogLik(t, c, 2, iters)
	ckptDir := filepath.Join(dir, "ckpt")

	co := startProc(t, "coordinator", coordBin,
		coordArgs(corpusPath, ckptDir, "127.0.0.1:0", iters)...)
	addr := co.listenAddr()
	w0 := startProc(t, "w0", workerBin, workerArgs(addr, "w0")...)
	w1 := startProc(t, "w1", workerBin, workerArgs(addr, "w1")...)

	co.waitFor("log likelihood", 0, time.Minute)
	co.kill9()

	// Same address, same checkpoint directory, zero extra flags: restart
	// IS the recovery procedure. The workers' reconnect loops find it.
	co2 := startProc(t, "coordinator-2", coordBin,
		coordArgs(corpusPath, ckptDir, addr, iters)...)
	co2.waitFor("resume from iteration", 0, time.Minute)

	if err := co2.waitExit(2 * time.Minute); err != nil {
		t.Fatalf("restarted coordinator exited with %v", err)
	}
	checkTolerance(t, co2.finalLogLik(iters), want)
	if err := w0.waitExit(30 * time.Second); err != nil {
		t.Errorf("w0 exited with %v", err)
	}
	if err := w1.waitExit(30 * time.Second); err != nil {
		t.Errorf("w1 exited with %v", err)
	}
}
