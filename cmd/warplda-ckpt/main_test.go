package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/cluster"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

// buildCheckpoints produces a realistic retention directory: two
// sharded checkpoints (iterations 2 and 4, written by a 2-worker
// distributed run) plus a hand-assembled single-file checkpoint at
// iteration 6 — the shape a dir reaches when a run is migrated between
// sampler kinds.
func buildCheckpoints(t *testing.T) (string, sampler.Config) {
	t.Helper()
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 60, V: 80, K: 4, MeanLen: 20, Alpha: 0.1, Beta: 0.05, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampler.PaperDefaults(4)
	cfg.M = 2
	cfg.Threads = 2

	dir := t.TempDir()
	d, err := cluster.NewDistributed(c, cfg, cfg.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(d, c, cfg, train.Options{
		Iters: 4, EvalEvery: 2, CheckpointDir: dir, CheckpointEvery: 2, CheckpointKeep: 2,
	}); err != nil {
		t.Fatal(err)
	}

	w, err := core.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := train.Run(w, c, cfg, train.Options{Iters: 6, EvalEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := w.StateTo(&state); err != nil {
		t.Fatal(err)
	}
	ck := &train.Checkpoint{
		Sampler:     w.Name(),
		Cfg:         cfg,
		Iter:        res.Iter,
		Trace:       res.Run,
		Fingerprint: train.CorpusFingerprint(c),
		State:       state.Bytes(),
	}
	if _, err := ck.WriteFile(filepath.Join(dir, "checkpoint-00000006.ckpt")); err != nil {
		t.Fatal(err)
	}
	return dir, cfg
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed alongside fn's error.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	fnErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), fnErr
}

// TestCkptCLI drives every subcommand against one retention directory.
// The corruption subtest mutates the directory, so it runs last.
func TestCkptCLI(t *testing.T) {
	dir, cfg := buildCheckpoints(t)

	t.Run("list", func(t *testing.T) {
		out, err := captureStdout(t, func() error { return cmdList([]string{"-dir", dir}) })
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 4 { // header + 3 checkpoints
			t.Fatalf("list printed %d lines, want 4:\n%s", len(lines), out)
		}
		for _, want := range []string{"ITER", "sharded", "file", "checkpoint-00000006.ckpt"} {
			if !strings.Contains(out, want) {
				t.Fatalf("list output missing %q:\n%s", want, out)
			}
		}
		// Each sharded row reports the worker count as its shard count.
		for _, l := range lines[1:] {
			if strings.Contains(l, "sharded") && !strings.Contains(l, "2") {
				t.Fatalf("sharded row without shard count: %q", l)
			}
		}
	})

	t.Run("verify newest", func(t *testing.T) {
		out, err := captureStdout(t, func() error { return cmdVerify([]string{"-dir", dir}) })
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "iteration    6") || !strings.Contains(out, ": OK") {
			t.Fatalf("verify output:\n%s", out)
		}
	})

	t.Run("verify sharded", func(t *testing.T) {
		out, err := captureStdout(t, func() error { return cmdVerify([]string{"-dir", dir, "-iter", "4"}) })
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{"iteration    4", "shard 0", "shard 1", ": OK"} {
			if !strings.Contains(out, want) {
				t.Fatalf("verify output missing %q:\n%s", want, out)
			}
		}
		if !strings.Contains(out, "K=4") || !strings.Contains(out, "threads=2") {
			t.Fatalf("verify output missing config summary (K=%d threads=%d):\n%s", cfg.K, cfg.Threads, out)
		}
	})

	t.Run("verify missing iteration", func(t *testing.T) {
		if _, err := captureStdout(t, func() error {
			return cmdVerify([]string{"-dir", dir, "-iter", "99"})
		}); err == nil {
			t.Fatal("verify accepted an iteration with no checkpoint")
		}
	})

	t.Run("diff sharded pair", func(t *testing.T) {
		out, err := captureStdout(t, func() error {
			return cmdDiff([]string{"-dir", dir, "-a", "2", "-b", "4"})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "<-- differs") {
			t.Fatalf("diff of distinct iterations flagged nothing:\n%s", out)
		}
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "fingerprint") && strings.Contains(l, "differs") {
				t.Fatalf("same corpus flagged as differing: %q", l)
			}
			if strings.HasPrefix(l, "iteration") && !strings.Contains(l, "differs") {
				t.Fatalf("iterations 2 vs 4 not flagged: %q", l)
			}
		}
	})

	t.Run("diff sharded vs single-file", func(t *testing.T) {
		out, err := captureStdout(t, func() error {
			return cmdDiff([]string{"-dir", dir, "-a", "4", "-b", "6"})
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, "shards") && !strings.Contains(l, "differs") {
				t.Fatalf("shard layouts 2 vs 0 not flagged: %q", l)
			}
		}
	})

	t.Run("corrupt shard body", func(t *testing.T) {
		ck, err := train.ReadManifest(filepath.Join(dir, "checkpoint-00000004"))
		if err != nil {
			t.Fatal(err)
		}
		shard := filepath.Join(ck.Dir, ck.ShardFiles[1])
		raw, err := os.ReadFile(shard)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xff // body byte: size and magic stay intact
		if err := os.WriteFile(shard, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = captureStdout(t, func() error { return cmdVerify([]string{"-dir", dir, "-iter", "4"}) })
		if err == nil {
			t.Fatal("verify accepted a corrupt shard")
		}
		if !strings.Contains(err.Error(), "shard 1") || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corruption error does not name the shard and cause: %v", err)
		}
	})
}

func TestCkptCLIBadArgs(t *testing.T) {
	empty := t.TempDir()
	for name, fn := range map[string]func() error{
		"list no dir":      func() error { return cmdList(nil) },
		"verify no dir":    func() error { return cmdVerify(nil) },
		"diff no dir":      func() error { return cmdDiff([]string{"-a", "1", "-b", "2"}) },
		"diff missing b":   func() error { return cmdDiff([]string{"-dir", empty, "-a", "1"}) },
		"verify empty dir": func() error { return cmdVerify([]string{"-dir", empty}) },
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := captureStdout(t, fn); err == nil {
				t.Fatal("accepted")
			}
		})
	}

	// An empty directory is a valid thing to list: nothing retained yet.
	out, err := captureStdout(t, func() error { return cmdList([]string{"-dir", empty}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no checkpoints") {
		t.Fatalf("list of empty dir: %q", out)
	}
}

// TestCkptDeltas drives the deltas subcommand against a real publish
// target: a base snapshot plus a two-link WARPDLT chain written by the
// production publisher, then the same chain with one corrupted link.
func TestCkptDeltas(t *testing.T) {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 40, V: 50, K: 4, MeanLen: 15, Alpha: 0.1, Beta: 0.05, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampler.PaperDefaults(4)
	cfg.M = 2
	m, err := warplda.Train(c, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	spec := filepath.Join(dir, "news")
	pub, err := warplda.NewDeltaPublisher(spec, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// perturb nudges a few counts so each publish yields non-empty cells.
	perturb := func(salt int32) {
		for i := 0; i < 3; i++ {
			m.Cw[(int(salt)*13+i*7)%len(m.Cw)]++
		}
		for k := range m.Ck {
			m.Ck[k] = 0
		}
		for w := 0; w < m.V; w++ {
			for k := 0; k < m.Cfg.K; k++ {
				m.Ck[k] += int64(m.Cw[w*m.Cfg.K+k])
			}
		}
	}
	if _, err := pub.Publish(m, 5); err != nil { // base
		t.Fatal(err)
	}
	perturb(1)
	if _, err := pub.Publish(m, 6); err != nil { // gen 1
		t.Fatal(err)
	}
	perturb(2)
	r, err := pub.Publish(m, 7) // gen 2
	if err != nil {
		t.Fatal(err)
	}
	if r.Gen != 2 {
		t.Fatalf("second delta has generation %d, want 2", r.Gen)
	}

	out, err := captureStdout(t, func() error { return cmdDeltas([]string{"-publish", spec}) })
	if err != nil {
		t.Fatalf("deltas rejected a healthy chain: %v\n%s", err, out)
	}
	for _, want := range []string{"chain OK: 2 deltas", "GEN", "OK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("deltas output missing %q:\n%s", want, out)
		}
	}

	// One flipped byte in the newest link: that row reports CORRUPT and
	// the command exits non-zero naming the rejected count.
	data, err := os.ReadFile(r.Path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(r.Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = captureStdout(t, func() error { return cmdDeltas([]string{"-publish", spec}) })
	if err == nil {
		t.Fatalf("deltas accepted a corrupt chain:\n%s", out)
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("error does not count the rejected file: %v", err)
	}
	if !strings.Contains(out, "CORRUPT") {
		t.Fatalf("output does not flag the corrupt link:\n%s", out)
	}

	// No deltas at all is healthy: a full-snapshot-only target.
	if _, err := train.RemoveDeltaFiles(spec); err != nil {
		t.Fatal(err)
	}
	out, err = captureStdout(t, func() error { return cmdDeltas([]string{"-publish", spec}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no delta files") {
		t.Fatalf("empty chain: %q", out)
	}
}
