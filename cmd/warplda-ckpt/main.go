// Command warplda-ckpt inspects the checkpoints a training run leaves
// behind (see docs/FORMATS.md for the WARPCKPT, WARPSHRD, and WARPMANI
// layouts):
//
//	warplda-ckpt list   -dir ckpts           # retained checkpoints: iter, kind, shards, bytes
//	warplda-ckpt verify -dir ckpts           # deep-verify the newest checkpoint
//	warplda-ckpt verify -dir ckpts -iter 40  # ... or a specific iteration
//	warplda-ckpt diff   -dir ckpts -a 20 -b 40
//	warplda-ckpt deltas -publish models/news    # inspect the WARPDLT chain
//
// list shows what ListCheckpoints would offer a resuming run. verify
// goes further than resume-time validation does by default: beyond the
// manifest's own CRC and shard presence/size checks, it streams every
// shard file end to end — magic, CRC32 trailer, the manifest's
// recorded CRC (catching a self-consistent shard swapped in from a
// different checkpoint), and the header's iteration / corpus
// fingerprint / position — without restoring any state, so a multi-GB
// checkpoint verifies in O(shard buffer) memory. diff compares two
// checkpoints' envelopes: sampler, config, progress, corpus identity,
// shard layout, and last traced log likelihood.
//
// deltas inspects a publish target's incremental-refresh chain: the
// WARPDLT files -publish-delta leaves next to the base snapshot. Every
// file is fully decoded (CRC, cell ordering, chain fingerprint) and the
// chain is checked end to end against the base model on disk — base
// fingerprint of generation 1, fingerprint linkage between successive
// generations, and filename/header generation agreement — so it answers
// the operational question "would a watching warplda-serve fold these?".
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"text/tabwriter"

	"warplda"
	"warplda/internal/fsio"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "deltas":
		err = cmdDeltas(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "warplda-ckpt: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "warplda-ckpt: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  warplda-ckpt list   -dir <checkpoint-dir>
  warplda-ckpt verify -dir <checkpoint-dir> [-iter N]
  warplda-ckpt diff   -dir <checkpoint-dir> -a N -b N
  warplda-ckpt deltas -publish <model-dir>/<name>
`)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("list: -dir is required")
	}
	entries, err := train.ListCheckpoints(*dir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("no checkpoints")
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ITER\tKIND\tSHARDS\tBYTES\tPATH")
	for _, e := range entries {
		kind, shards := "file", "-"
		if e.Sharded {
			kind = "sharded"
			if ck, err := train.ReadManifest(e.Path); err == nil {
				shards = fmt.Sprint(len(ck.ShardFiles))
			} else {
				shards = "?"
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%s\n", e.Iter, kind, shards, checkpointBytes(e), e.Path)
	}
	return tw.Flush()
}

// checkpointBytes sums a checkpoint's on-disk size (manifest included
// for the sharded shape); 0 if anything is unreadable.
func checkpointBytes(e train.CheckpointEntry) int64 {
	if !e.Sharded {
		st, err := os.Stat(e.Path)
		if err != nil {
			return 0
		}
		return st.Size()
	}
	var total int64
	des, err := os.ReadDir(e.Path)
	if err != nil {
		return 0
	}
	for _, de := range des {
		if info, err := de.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// pick resolves -iter onto one retained checkpoint (the newest when
// unset).
func pick(dir string, iter int) (train.CheckpointEntry, error) {
	entries, err := train.ListCheckpoints(dir)
	if err != nil {
		return train.CheckpointEntry{}, err
	}
	if len(entries) == 0 {
		return train.CheckpointEntry{}, fmt.Errorf("%s: no checkpoints", dir)
	}
	if iter < 0 {
		return entries[len(entries)-1], nil
	}
	for _, e := range entries {
		if e.Iter == iter {
			return e, nil
		}
	}
	return train.CheckpointEntry{}, fmt.Errorf("%s: no checkpoint at iteration %d", dir, iter)
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	iter := fs.Int("iter", -1, "iteration to verify (default: newest)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("verify: -dir is required")
	}
	e, err := pick(*dir, *iter)
	if err != nil {
		return err
	}
	ck, err := loadEnvelope(e)
	if err != nil {
		return err
	}
	printEnvelope(ck)
	if ck.IsSharded() {
		for i := range ck.ShardFiles {
			if err := verifyShard(ck, i); err != nil {
				return fmt.Errorf("shard %d (%s): %w", i, ck.ShardFiles[i], err)
			}
			fmt.Printf("shard %d (%s): %d bytes, crc %08x: OK\n",
				i, ck.ShardFiles[i], ck.ShardSizes[i], ck.ShardCRCs[i])
		}
	}
	fmt.Printf("%s: OK\n", e.Path)
	return nil
}

// loadEnvelope reads a checkpoint's envelope without restoring state:
// train.Load CRC-checks the whole single-file shape; ReadManifest
// CRC-checks the manifest and confirms shard presence/size.
func loadEnvelope(e train.CheckpointEntry) (*train.Checkpoint, error) {
	if e.Sharded {
		return train.ReadManifest(e.Path)
	}
	return train.Load(e.Path)
}

func printEnvelope(ck *train.Checkpoint) {
	fmt.Printf("sampler      %s\n", ck.Sampler)
	fmt.Printf("iteration    %d\n", ck.Iter)
	fmt.Printf("elapsed      %s\n", ck.Elapsed)
	fmt.Printf("config       K=%d alpha=%g beta=%g mh=%d threads=%d seed=%d\n",
		ck.Cfg.K, ck.Cfg.Alpha, ck.Cfg.Beta, ck.Cfg.M, ck.Cfg.Threads, ck.Cfg.Seed)
	fmt.Printf("fingerprint  %08x\n", ck.Fingerprint)
	if n := len(ck.Trace.Points); n > 0 {
		p := ck.Trace.Points[n-1]
		fmt.Printf("last eval    iter=%d logLik=%.6e tokens/s=%.3e\n", p.Iter, p.LogLik, p.TokensSec)
	}
	if ck.IsSharded() {
		fmt.Printf("shards       %d\n", len(ck.ShardFiles))
	}
}

// shardMagic mirrors internal/train's per-shard file magic; the layout
// is pinned by docs/FORMATS.md and the format tests.
const shardMagic = "WARPSHRD\x01"

// verifyShard streams one shard file through the full resume-time
// check sequence (the same one train's lazyShardReader runs before a
// byte reaches the sampler): recorded size, magic, CRC32 trailer over
// the body, the manifest's CRC for this slot, and the header's
// iteration / fingerprint / position fields.
func verifyShard(ck *train.Checkpoint, i int) error {
	f, err := os.Open(filepath.Join(ck.Dir, ck.ShardFiles[i]))
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() != ck.ShardSizes[i] {
		return fmt.Errorf("%d bytes, manifest records %d", st.Size(), ck.ShardSizes[i])
	}
	const headerLen = 4 * 8
	bodyLen := st.Size() - int64(len(shardMagic)) - 4
	if bodyLen < headerLen {
		return fmt.Errorf("not a checkpoint shard file (too short)")
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != shardMagic {
		return fmt.Errorf("not a checkpoint shard file (bad magic)")
	}
	header := make([]byte, headerLen)
	if _, err := io.ReadFull(br, header); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	crc.Write(header)
	if _, err := io.Copy(crc, io.LimitReader(br, bodyLen-headerLen)); err != nil {
		return err
	}
	var trailerBuf [4]byte
	if _, err := io.ReadFull(br, trailerBuf[:]); err != nil {
		return err
	}
	trailer := binary.LittleEndian.Uint32(trailerBuf[:])
	if got := crc.Sum32(); got != trailer {
		return fmt.Errorf("checksum mismatch (file %08x, computed %08x): torn or corrupt file", trailer, got)
	}
	if trailer != ck.ShardCRCs[i] {
		return fmt.Errorf("checksum %08x does not match manifest's %08x: foreign shard file", trailer, ck.ShardCRCs[i])
	}
	d := sampler.NewDec(bytes.NewReader(header))
	iter := d.Int()
	fp := uint32(d.U64())
	idx := d.Int()
	count := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if iter != ck.Iter {
		return fmt.Errorf("written at iteration %d, manifest says %d", iter, ck.Iter)
	}
	if fp != ck.Fingerprint {
		return fmt.Errorf("corpus fingerprint %08x, manifest says %08x", fp, ck.Fingerprint)
	}
	if idx != i || count != len(ck.ShardFiles) {
		return fmt.Errorf("identifies as %d of %d, manifest places it at %d of %d",
			idx, count, i, len(ck.ShardFiles))
	}
	return nil
}

func cmdDeltas(args []string) error {
	fs := flag.NewFlagSet("deltas", flag.ExitOnError)
	spec := fs.String("publish", "", "publish target (<model-dir>/<name>) whose delta chain to inspect")
	fs.Parse(args)
	if *spec == "" {
		return fmt.Errorf("deltas: -publish is required")
	}
	basePath, name, err := train.PublishPath(*spec)
	if err != nil {
		return err
	}
	files, err := train.ListDeltaFiles(filepath.Dir(basePath), name)
	if err != nil {
		return err
	}

	// The chain anchor: the served base snapshot's count fingerprint.
	// A missing/unreadable base is reported but doesn't stop the per-file
	// decode — the deltas may still be individually well-formed.
	var prevFP uint64
	haveBase := false
	if f, err := os.Open(basePath); err == nil {
		m, rerr := warplda.ReadModel(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if rerr != nil {
			fmt.Printf("base %s: UNREADABLE (%v)\n", basePath, rerr)
		} else {
			prevFP = fsio.ModelFingerprint(m.V, m.Cfg.K, m.Cw, m.Ck)
			haveBase = true
			fmt.Printf("base %s: V=%d K=%d iterLogLik=%.6e fingerprint=%016x\n",
				basePath, m.V, m.Cfg.K, m.LogLik, prevFP)
		}
	} else {
		fmt.Printf("base %s: MISSING (%v)\n", basePath, err)
	}
	if len(files) == 0 {
		fmt.Println("no delta files")
		return nil
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GEN\tITER\tCELLS\tBYTES\tBASEFP\tNEWFP\tSTATUS")
	bad := 0
	expectGen := int64(1)
	for _, df := range files {
		status := "OK"
		d, size, rerr := readDeltaFile(df.Path)
		switch {
		case rerr != nil:
			status = fmt.Sprintf("CORRUPT: %v", rerr)
		case d.Gen != df.Gen:
			status = fmt.Sprintf("BAD: header generation %d under a .dlt.%d name", d.Gen, df.Gen)
		case df.Gen != expectGen:
			status = fmt.Sprintf("GAP: expected generation %d next", expectGen)
		case haveBase && d.BaseFP != prevFP:
			status = fmt.Sprintf("BROKEN LINK: base fingerprint %016x, chain stands at %016x", d.BaseFP, prevFP)
		}
		if status != "OK" {
			bad++
			if d == nil {
				fmt.Fprintf(tw, "%d\t-\t-\t-\t-\t-\t%s\n", df.Gen, status)
				continue
			}
		} else {
			prevFP = d.NewFP
			expectGen = df.Gen + 1
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%016x\t%016x\t%s\n",
			df.Gen, d.Iter, len(d.Cells), size, d.BaseFP, d.NewFP, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d delta files would be rejected by a serving registry", bad, len(files))
	}
	fmt.Printf("chain OK: %d deltas, head fingerprint %016x\n", len(files), prevFP)
	return nil
}

// readDeltaFile decodes one WARPDLT file, returning its size for the
// listing.
func readDeltaFile(path string) (*fsio.ModelDelta, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	d, err := fsio.ReadDelta(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, st.Size(), err
	}
	return d, st.Size(), nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	a := fs.Int("a", -1, "first iteration")
	b := fs.Int("b", -1, "second iteration")
	fs.Parse(args)
	if *dir == "" || *a < 0 || *b < 0 {
		return fmt.Errorf("diff: -dir, -a, and -b are required")
	}
	ea, err := pick(*dir, *a)
	if err != nil {
		return err
	}
	eb, err := pick(*dir, *b)
	if err != nil {
		return err
	}
	cka, err := loadEnvelope(ea)
	if err != nil {
		return err
	}
	ckb, err := loadEnvelope(eb)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "FIELD\t@%d\t@%d\n", cka.Iter, ckb.Iter)
	diffRow(tw, "sampler", cka.Sampler, ckb.Sampler)
	diffRow(tw, "iteration", cka.Iter, ckb.Iter)
	diffRow(tw, "elapsed", cka.Elapsed, ckb.Elapsed)
	diffRow(tw, "K", cka.Cfg.K, ckb.Cfg.K)
	diffRow(tw, "alpha", cka.Cfg.Alpha, ckb.Cfg.Alpha)
	diffRow(tw, "beta", cka.Cfg.Beta, ckb.Cfg.Beta)
	diffRow(tw, "mh", cka.Cfg.M, ckb.Cfg.M)
	diffRow(tw, "threads", cka.Cfg.Threads, ckb.Cfg.Threads)
	diffRow(tw, "seed", cka.Cfg.Seed, ckb.Cfg.Seed)
	diffRow(tw, "fingerprint", fmt.Sprintf("%08x", cka.Fingerprint), fmt.Sprintf("%08x", ckb.Fingerprint))
	diffRow(tw, "shards", len(cka.ShardFiles), len(ckb.ShardFiles))
	diffRow(tw, "logLik", lastLL(cka), lastLL(ckb))
	return tw.Flush()
}

// diffRow prints one comparison row, flagging differing values.
func diffRow(w io.Writer, field string, a, b any) {
	marker := ""
	if !reflect.DeepEqual(a, b) {
		marker = "  <-- differs"
	}
	fmt.Fprintf(w, "%s\t%v\t%v%s\n", field, a, b, marker)
}

func lastLL(ck *train.Checkpoint) string {
	if n := len(ck.Trace.Points); n > 0 {
		return fmt.Sprintf("%.6e", ck.Trace.Points[n-1].LogLik)
	}
	return "-"
}
