// Command warplda-worker runs one worker of a multi-node distributed
// training cluster (internal/dist). A worker is a pure compute node:
// it never reads the corpus — it receives its token shard, routing
// tables, and per-pass global counts from the coordinator and runs the
// same phase bodies as the in-process sampler, shipping finished token
// blocks back through the coordinator.
//
// Workers keep no durable state. Killing one (even kill -9) and
// starting a fresh one is the supported recovery procedure: the
// coordinator reforms the cluster from its newest committed checkpoint
// and hands the newcomer a repartitioned shard. A worker that loses its
// coordinator retries with bounded exponential backoff and re-registers
// idempotently under its -id when the coordinator returns.
//
// Usage:
//
//	warplda-worker -coordinator host:7077
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warplda/internal/dist"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		coord   = flag.String("coordinator", "", "coordinator host:port (required)")
		id      = flag.String("id", "", "stable worker identity across reconnects (default: hostname-pid)")
		dialTO  = flag.Duration("dial-timeout", 5*time.Second, "per-attempt connect timeout")
		backoff = flag.Duration("retry-backoff", 200*time.Millisecond, "initial reconnect backoff (doubles up to -max-backoff)")
		maxBack = flag.Duration("max-backoff", 3*time.Second, "reconnect backoff cap")
		retries = flag.Int("max-retries", 60, "consecutive failed connects before giving up")
		readTO  = flag.Duration("read-timeout", 60*time.Second, "per-frame read deadline; expiry means the coordinator is gone and triggers a reconnect")
		writeTO = flag.Duration("write-timeout", 30*time.Second, "per-frame write deadline")
	)
	flag.Parse()

	if *coord == "" {
		fmt.Fprintln(os.Stderr, "warplda-worker: -coordinator is required")
		flag.Usage()
		return 2
	}
	wid := *id
	if wid == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		wid = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	err := dist.RunWorker(ctx, dist.WorkerConfig{
		Coordinator:  *coord,
		ID:           wid,
		DialTimeout:  *dialTO,
		RetryBackoff: *backoff,
		MaxBackoff:   *maxBack,
		MaxRetries:   *retries,
		ReadTimeout:  *readTO,
		WriteTimeout: *writeTO,
		Logf:         log.Printf,
	})
	switch {
	case err == nil:
		log.Printf("worker %s: run complete", wid)
		return 0
	case ctx.Err() != nil:
		log.Printf("worker %s: interrupted", wid)
		return 1
	default:
		fmt.Fprintf(os.Stderr, "warplda-worker: %v\n", err)
		return 1
	}
}
