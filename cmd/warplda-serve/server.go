package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"warplda"
	"warplda/internal/corpus"
)

// ServeOptions configure the HTTP layer around one model.
type ServeOptions struct {
	// Sweeps is the default fold-in sweep count when a request does not
	// set one. 0 means 20.
	Sweeps int
	// MaxSweeps caps the per-request sweep count. 0 means 500.
	MaxSweeps int
	// MaxBatch caps the number of documents per request. 0 means 1024.
	MaxBatch int
	// MaxBodyBytes caps the request body size. 0 means 32 MiB.
	MaxBodyBytes int64
	// Seed is the base RNG seed; per-document seeds are derived from it
	// and the document content, so responses are deterministic.
	Seed uint64
	// Engine options (MH steps, worker-pool size).
	Infer warplda.InferOptions
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 20
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 500
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// inferRequest is the POST /infer body. Exactly one of Docs (token id
// arrays) or Texts (raw text, requires a model vocabulary) must be set.
type inferRequest struct {
	Docs   [][]int32 `json:"docs,omitempty"`
	Texts  []string  `json:"texts,omitempty"`
	Sweeps int       `json:"sweeps,omitempty"`
}

// inferResponse is the POST /infer reply: one topic distribution (and
// its argmax) per input document, in input order.
type inferResponse struct {
	Topics [][]float64 `json:"topics"`
	Top    []int       `json:"top"`
	TookMs float64     `json:"took_ms"`
}

type healthResponse struct {
	Status     string `json:"status"`
	V          int    `json:"v"`
	K          int    `json:"k"`
	HasVocab   bool   `json:"has_vocab"`
	DocsServed int64  `json:"docs_served"`
}

// server owns one model, its prebuilt inference engine, and the
// vocabulary index for text queries.
type server struct {
	model  *warplda.Model
	engine *warplda.InferEngine
	vocab  map[string]int32 // nil when the model has no vocabulary
	opts   ServeOptions
	served atomic.Int64
}

// NewServer builds the /infer + /healthz handler for m. The engine's
// per-word proposal tables are built here, once, so request handling
// never pays the O(V·K) setup cost.
func NewServer(m *warplda.Model, opts ServeOptions) (http.Handler, error) {
	opts = opts.withDefaults()
	eng, err := warplda.NewInferEngine(m, opts.Infer)
	if err != nil {
		return nil, err
	}
	s := &server{model: m, engine: eng, opts: opts}
	if m.Vocab != nil {
		s.vocab = make(map[string]int32, len(m.Vocab))
		for i, w := range m.Vocab {
			s.vocab[w] = int32(i)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux, nil
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		V:          s.model.V,
		K:          s.model.Cfg.K,
		HasVocab:   s.vocab != nil,
		DocsServed: s.served.Load(),
	})
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req inferRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	docs, status, err := s.resolveDocs(&req)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = s.opts.Sweeps
	}
	if sweeps > s.opts.MaxSweeps {
		sweeps = s.opts.MaxSweeps
	}

	start := time.Now()
	topics, err := s.engine.InferBatch(docs, sweeps, s.opts.Seed)
	if err != nil {
		// Word ids out of the model's range are a caller error.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.served.Add(int64(len(docs)))

	top := make([]int, len(topics))
	for i, theta := range topics {
		for k, p := range theta {
			if p > theta[top[i]] {
				top[i] = k
			}
		}
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Topics: topics,
		Top:    top,
		TookMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// resolveDocs turns the request into token-id documents, tokenizing
// Texts against the model vocabulary when needed.
func (s *server) resolveDocs(req *inferRequest) ([][]int32, int, error) {
	switch {
	case req.Docs != nil && req.Texts != nil:
		return nil, http.StatusBadRequest, fmt.Errorf("set either docs or texts, not both")
	case req.Docs != nil:
		if len(req.Docs) > s.opts.MaxBatch {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d docs exceeds limit %d", len(req.Docs), s.opts.MaxBatch)
		}
		return req.Docs, 0, nil
	case req.Texts != nil:
		if s.vocab == nil {
			return nil, http.StatusBadRequest,
				fmt.Errorf("model has no vocabulary; send token ids via docs")
		}
		if len(req.Texts) > s.opts.MaxBatch {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d texts exceeds limit %d", len(req.Texts), s.opts.MaxBatch)
		}
		docs := make([][]int32, len(req.Texts))
		for i, text := range req.Texts {
			// Two-level lookup: a lowercased whitespace field is tried
			// verbatim first, so vocabularies with entries Normalize
			// can't emit (underscored entities like "zzz_new_york" in
			// the UCI NYTimes vocab) still match; otherwise the field
			// gets the character normalization FromText applies at
			// training time, whose stopword/frequency filters the
			// vocabulary lookup subsumes (filtered words never got an
			// id). Out-of-vocabulary words carry no information under
			// the trained Φ̂ and are dropped.
			for _, field := range strings.Fields(strings.ToLower(text)) {
				if id, ok := s.vocab[field]; ok {
					docs[i] = append(docs[i], id)
					continue
				}
				for _, tok := range corpus.Normalize(field) {
					if id, ok := s.vocab[tok]; ok {
						docs[i] = append(docs[i], id)
					}
				}
			}
		}
		return docs, 0, nil
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("empty request: set docs or texts")
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
