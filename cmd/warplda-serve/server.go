package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/hist"
	"warplda/internal/infer"
	"warplda/internal/registry"
)

// ServeOptions configure the HTTP layer over a model registry.
type ServeOptions struct {
	// DefaultModel is the registry model the bare POST /v1/infer route
	// serves. Empty disables that route (404); POST
	// /v1/models/{name}/infer always works.
	DefaultModel string
	// Sweeps is the default fold-in sweep count when a request does not
	// set one. 0 means 20.
	Sweeps int
	// MaxSweeps caps the per-request sweep count. 0 means 500.
	MaxSweeps int
	// MaxBatch caps the number of documents per request. 0 means 1024.
	MaxBatch int
	// MaxBodyBytes caps the request body size. 0 means 32 MiB.
	MaxBodyBytes int64
	// Seed is the base RNG seed; per-document seeds are derived from it
	// and the document content, so responses are deterministic.
	Seed uint64

	// Coalesce routes single-document requests through a per-model
	// batcher that merges concurrent requests into one engine dispatch.
	// Responses are byte-identical to uncoalesced inference (per-document
	// seeds depend only on Seed and the document content, never on batch
	// composition). Multi-document requests always dispatch directly.
	Coalesce bool
	// BatchMax, BatchLinger, and QueueDepth tune the batcher: documents
	// per dispatch (0 = 32), how long a forming batch waits for company
	// (0 = 1ms), and the bounded admission queue beyond which requests
	// are shed with 503 (0 = 256). QueueDepth also bounds the per-model
	// query gate (concurrent analytics queries), Coalesce or not.
	BatchMax    int
	BatchLinger time.Duration
	QueueDepth  int
	// DefaultDeadline is the admission deadline applied to inference and
	// query requests that do not carry an X-Deadline-Ms header. A
	// request whose deadline passes while it waits for admission is shed
	// with 503 + Retry-After instead of consuming engine time the client
	// has already given up on. 0 means no default deadline.
	DefaultDeadline time.Duration

	// QueryDefaultLimit is the page size a query request gets when it
	// does not set limit (0 means 50); QueryMaxLimit caps the requested
	// limit (0 means 500). QueryMaxBytes caps the encoded size of one
	// response's rows array (0 means 1 MiB) — a page that would exceed
	// it is cut short and returns a next_cursor instead.
	QueryDefaultLimit int
	QueryMaxLimit     int
	QueryMaxBytes     int64
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Sweeps <= 0 {
		o.Sweeps = 20
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 500
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.QueryDefaultLimit <= 0 {
		o.QueryDefaultLimit = 50
	}
	if o.QueryMaxLimit <= 0 {
		o.QueryMaxLimit = 500
	}
	if o.QueryMaxBytes <= 0 {
		o.QueryMaxBytes = 1 << 20
	}
	return o
}

// inferRequest is the POST /v1/infer body. Exactly one of Docs (token
// id arrays) or Texts (raw text, requires a model vocabulary) must be
// set.
type inferRequest struct {
	Docs   [][]int32 `json:"docs,omitempty"`
	Texts  []string  `json:"texts,omitempty"`
	Sweeps int       `json:"sweeps,omitempty"`
}

// inferResponse is the infer reply: one topic distribution (and its
// argmax) per input document, in input order, plus which model version
// answered.
type inferResponse struct {
	Model   string      `json:"model"`
	Version int         `json:"version"`
	Topics  [][]float64 `json:"topics"`
	Top     []int       `json:"top"`
	TookMs  float64     `json:"took_ms"`
}

type healthResponse struct {
	Status        string `json:"status"` // "ok" or "draining"
	DefaultModel  string `json:"default_model,omitempty"`
	ModelsReady   int    `json:"models_ready"`
	BytesResident int64  `json:"bytes_resident"`
	MaxBytes      int64  `json:"max_bytes"`
	DocsServed    int64  `json:"docs_served"`
}

// modelsResponse is the GET /v1/models reply.
type modelsResponse struct {
	registry.Stats
	Models []registry.ModelInfo `json:"models"`
}

// batcherInfo is one model's request coalescer in the /v1/stats reply.
type batcherInfo struct {
	infer.BatcherStats
	QueueLen int `json:"queue_len"`
}

// statsResponse is the GET /v1/stats reply: the serving-side view of
// throughput and latency that cmd/warplda-loadgen and dashboards read.
// LatencyUs summarizes successful inference handler time and
// QueryLatencyUs successful query handler time, both in microseconds
// (log-linear histogram quantiles, ~3% relative error).
type statsResponse struct {
	Status         string                     `json:"status"`
	DocsServed     int64                      `json:"docs_served"`
	QueriesServed  int64                      `json:"queries_served"`
	LatencyUs      hist.Snapshot              `json:"latency_us"`
	QueryLatencyUs hist.Snapshot              `json:"query_latency_us"`
	Registry       registry.Stats             `json:"registry"`
	Batchers       map[string]batcherInfo     `json:"batchers,omitempty"`
	QueryGates     map[string]infer.GateStats `json:"query_gates,omitempty"`
}

// Server routes multi-model inference, analytics-query, and admin
// traffic onto a registry. The canonical surface lives under /v1/; the
// pre-versioning paths remain as thin aliases serving byte-identical
// responses (see docs/API.md). It implements http.Handler; Drain flips
// it into the shutting-down state in which inference and query
// requests are refused with 503 while in-flight ones complete.
type Server struct {
	reg      *registry.Registry
	opts     ServeOptions
	mux      *http.ServeMux
	served   atomic.Int64
	queries  atomic.Int64
	draining atomic.Bool

	// latency records successful end-to-end inference handler time and
	// qlatency successful query handler time, both in microseconds,
	// exposed as quantiles on GET /v1/stats.
	latency  *hist.Histogram
	qlatency *hist.Histogram

	// batchers holds one lazily-created request coalescer per model
	// name (only when opts.Coalesce). dispatchWrap, when non-nil, wraps
	// every batcher's dispatch function — a test hook for gating and
	// fault injection; production leaves it nil.
	batchMu      sync.Mutex
	batchers     map[string]*infer.Batcher
	dispatchWrap func(infer.Dispatch) infer.Dispatch

	// gates holds one lazily-created admission gate per model name for
	// the query routes, sharing the batcher's QueueDepth bound and shed
	// semantics (fail fast without a deadline, wait until it otherwise).
	gateMu sync.Mutex
	gates  map[string]*infer.Gate
}

// NewServer builds the HTTP handler over reg. Models load lazily
// through the registry on first request; callers that want fail-fast
// startup behavior acquire the default model before serving, as
// cmd/warplda-serve's main does.
func NewServer(reg *registry.Registry, opts ServeOptions) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	s := &Server{
		reg:      reg,
		opts:     opts.withDefaults(),
		latency:  hist.New(),
		qlatency: hist.New(),
		batchers: make(map[string]*infer.Batcher),
		gates:    make(map[string]*infer.Gate),
	}
	mux := http.NewServeMux()

	// The canonical routes live under /v1; every pre-versioning path is
	// kept as an alias bound to the same handler, so the two surfaces
	// cannot drift apart. Registration happens via aliased(), which
	// mounts "METHOD /v1<path>" and "METHOD <path>" together plus the
	// method-less 405 fallbacks that keep wrong-method requests on the
	// JSON error contract (ServeMux's own 405 is plain text).
	aliased := func(method, path string, h http.HandlerFunc) {
		for _, p := range []string{"/v1" + path, path} {
			mux.HandleFunc(method+" "+p, h)
			p := p
			mux.HandleFunc(p, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Allow", method)
				writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, 0, "use %s %s", method, p)
			})
		}
	}
	aliased("POST", "/infer", func(w http.ResponseWriter, r *http.Request) {
		if s.opts.DefaultModel == "" {
			writeError(w, http.StatusNotFound, codeNotFound, 0,
				"no default model configured; use /v1/models/{name}/infer")
			return
		}
		s.handleInfer(w, r, s.opts.DefaultModel)
	})
	aliased("POST", "/models/{name}/infer", func(w http.ResponseWriter, r *http.Request) {
		s.handleInfer(w, r, r.PathValue("name"))
	})
	aliased("GET", "/models", s.handleModels)
	aliased("GET", "/models/{name}", s.handleModelInfo)
	aliased("GET", "/healthz", s.handleHealth)
	aliased("GET", "/stats", s.handleStats)

	// The analytics query surface is /v1-only (it postdates the API
	// versioning; there is no legacy path to alias).
	for kind, method := range map[string]string{
		"topwords": "GET", "vocab": "GET", "drift": "GET",
		"topdocs": "POST", "similar": "POST",
	} {
		kind, method := kind, method
		path := "/v1/models/{name}/query/" + kind
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			s.handleQuery(w, r, kind)
		})
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, codeMethodNotAllowed, 0, "use %s %s", method, path)
		})
	}
	mux.HandleFunc("/v1/models/{name}/query/{kind}", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound, 0,
			"unknown query kind %q: want topwords, vocab, drift, topdocs, or similar", r.PathValue("kind"))
	})
	// Catch-all so that a path nothing above matched still answers on
	// the JSON error contract instead of ServeMux's plain-text 404.
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound, 0, "no route %s", r.URL.Path)
	})
	s.mux = mux
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain refuses new inference and query work with 503 (admin and
// health stay up, reporting "draining") so load balancers can rotate
// the instance out while http.Server.Shutdown lets in-flight requests
// finish.
func (s *Server) Drain() { s.draining.Store(true) }

// acquire resolves a model name through the registry and maps lifecycle
// errors onto HTTP admission-control semantics: 404 for names that
// don't exist, 503 + Retry-After for transient refusals (mid-load,
// over budget, draining).
func (s *Server) acquire(w http.ResponseWriter, name string) (*registry.Snapshot, bool) {
	snap, err := s.reg.Acquire(name)
	if err == nil {
		return snap, true
	}
	s.writeRegistryError(w, err)
	return nil, false
}

// errBadDocs marks engine-side document validation failures (word ids
// out of the model's range) crossing the batcher boundary, so the
// handler can keep them 400 while registry errors stay 404/503.
var errBadDocs = errors.New("invalid document")

// batcherFor returns the model's request coalescer, creating it on
// first use. The dispatch closure acquires the registry snapshot per
// batch, so a hot swap lands between batches — every document in one
// dispatch is answered by one model version, returned as the tag.
func (s *Server) batcherFor(name string) *infer.Batcher {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	if b := s.batchers[name]; b != nil {
		return b
	}
	dispatch := func(docs [][]int32, sweeps []int) ([][]float64, any, error) {
		snap, err := s.reg.Acquire(name)
		if err != nil {
			return nil, nil, err
		}
		thetas, err := snap.Engine.InferBatchSweeps(docs, sweeps, s.opts.Seed)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", errBadDocs, err)
		}
		return thetas, snap, nil
	}
	if s.dispatchWrap != nil {
		dispatch = s.dispatchWrap(dispatch)
	}
	b := infer.NewBatcher(dispatch, infer.BatcherOptions{
		MaxBatch:   s.opts.BatchMax,
		Linger:     s.opts.BatchLinger,
		QueueDepth: s.opts.QueueDepth,
	})
	s.batchers[name] = b
	return b
}

// gateFor returns the model's query admission gate, creating it on
// first use with the same depth bound as the batcher queue.
func (s *Server) gateFor(name string) *infer.Gate {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	if g := s.gates[name]; g != nil {
		return g
	}
	g := infer.NewGate(s.opts.QueueDepth)
	s.gates[name] = g
	return g
}

// Close drains every request coalescer: admission stops, queued work
// completes. Call after the HTTP server has shut down.
func (s *Server) Close() {
	s.batchMu.Lock()
	batchers := make([]*infer.Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	s.batchMu.Unlock()
	for _, b := range batchers {
		b.Close()
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.reg.RegistryStats()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        status,
		DefaultModel:  s.opts.DefaultModel,
		ModelsReady:   st.Ready,
		BytesResident: st.BytesResident,
		MaxBytes:      st.MaxBytes,
		DocsServed:    s.served.Load(),
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, modelsResponse{
		Stats:  s.reg.RegistryStats(),
		Models: s.reg.List(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	resp := statsResponse{
		Status:         status,
		DocsServed:     s.served.Load(),
		QueriesServed:  s.queries.Load(),
		LatencyUs:      s.latency.Summary(),
		QueryLatencyUs: s.qlatency.Summary(),
		Registry:       s.reg.RegistryStats(),
	}
	s.batchMu.Lock()
	if len(s.batchers) > 0 {
		resp.Batchers = make(map[string]batcherInfo, len(s.batchers))
		for name, b := range s.batchers {
			resp.Batchers[name] = batcherInfo{BatcherStats: b.Stats(), QueueLen: b.QueueLen()}
		}
	}
	s.batchMu.Unlock()
	s.gateMu.Lock()
	if len(s.gates) > 0 {
		resp.QueryGates = make(map[string]infer.GateStats, len(s.gates))
		for name, g := range s.gates {
			resp.QueryGates[name] = g.Stats()
		}
	}
	s.gateMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModelInfo(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	mi, ok := s.reg.Info(name)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, 0, "model not found: %q", name)
		return
	}
	writeJSON(w, http.StatusOK, mi)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request, name string) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, 0, "server is draining")
		return
	}
	var req inferRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge, 0,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "bad request body: %v", err)
		return
	}
	// Acquire after the body parse: bad requests stay 4xx even when the
	// model would also need a load, and parse work never pins a
	// snapshot.
	snap, ok := s.acquire(w, name)
	if !ok {
		return
	}
	docs, status, err := s.resolveDocs(snap, &req)
	if err != nil {
		code := codeBadRequest
		if status == http.StatusRequestEntityTooLarge {
			code = codePayloadTooLarge
		}
		writeError(w, status, code, 0, "%v", err)
		return
	}
	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = s.opts.Sweeps
	}
	if sweeps > s.opts.MaxSweeps {
		sweeps = s.opts.MaxSweeps
	}
	deadline, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}

	start := time.Now()
	version := snap.Version
	var topics [][]float64
	if s.opts.Coalesce && len(docs) == 1 {
		// Single-document requests coalesce: concurrent callers share
		// one engine dispatch. Results are byte-identical to the direct
		// path (per-document seeds ignore batch composition), and the
		// answering snapshot comes back as the tag so the response
		// reports the version that actually served it.
		theta, tag, derr := s.batcherFor(name).Do(docs[0], sweeps, deadline)
		if derr != nil {
			s.writeAdmissionError(w, derr)
			return
		}
		if tsnap, ok := tag.(*registry.Snapshot); ok {
			version = tsnap.Version
		}
		topics = [][]float64{theta}
	} else {
		if !deadline.IsZero() && time.Now().After(deadline) {
			writeError(w, http.StatusServiceUnavailable, codeDeadlineExceeded, time.Second,
				"%v", infer.ErrDeadlineExceeded)
			return
		}
		topics, err = snap.Engine.InferBatch(docs, sweeps, s.opts.Seed)
		if err != nil {
			// Word ids out of the model's range are a caller error.
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
			return
		}
	}
	s.served.Add(int64(len(docs)))
	s.latency.Record(time.Since(start).Microseconds())

	top := make([]int, len(topics))
	for i, theta := range topics {
		for k, p := range theta {
			if p > theta[top[i]] {
				top[i] = k
			}
		}
	}
	writeJSON(w, http.StatusOK, inferResponse{
		Model:   name,
		Version: version,
		Topics:  topics,
		Top:     top,
		TookMs:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

// requestDeadline resolves a request's admission deadline: the
// X-Deadline-Ms header (a client latency budget in milliseconds) wins,
// else the server's DefaultDeadline, else none.
func (s *Server) requestDeadline(r *http.Request) (time.Time, error) {
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			return time.Time{}, fmt.Errorf("bad X-Deadline-Ms %q: want a positive integer", h)
		}
		return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
	}
	if s.opts.DefaultDeadline > 0 {
		return time.Now().Add(s.opts.DefaultDeadline), nil
	}
	return time.Time{}, nil
}

// resolveDocs turns the request into token-id documents, tokenizing
// Texts against the snapshot's vocabulary index when needed.
func (s *Server) resolveDocs(snap *registry.Snapshot, req *inferRequest) ([][]int32, int, error) {
	switch {
	case req.Docs != nil && req.Texts != nil:
		return nil, http.StatusBadRequest, fmt.Errorf("set either docs or texts, not both")
	case req.Docs != nil:
		if len(req.Docs) > s.opts.MaxBatch {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d docs exceeds limit %d", len(req.Docs), s.opts.MaxBatch)
		}
		return req.Docs, 0, nil
	case req.Texts != nil:
		if snap.Vocab == nil {
			return nil, http.StatusBadRequest,
				fmt.Errorf("model has no vocabulary; send token ids via docs")
		}
		if len(req.Texts) > s.opts.MaxBatch {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d texts exceeds limit %d", len(req.Texts), s.opts.MaxBatch)
		}
		docs := make([][]int32, len(req.Texts))
		for i, text := range req.Texts {
			docs[i] = tokenize(snap.Vocab, text)
		}
		return docs, 0, nil
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("empty request: set docs or texts")
	}
}

// tokenize maps raw text onto a model's token ids. Two-level lookup: a
// lowercased whitespace field is tried verbatim first, so vocabularies
// with entries Normalize can't emit (underscored entities like
// "zzz_new_york" in the UCI NYTimes vocab) still match; otherwise the
// field gets the character normalization FromText applies at training
// time, whose stopword/frequency filters the vocabulary lookup
// subsumes (filtered words never got an id). Out-of-vocabulary words
// carry no information under the trained Φ̂ and are dropped.
func tokenize(vocab map[string]int32, text string) []int32 {
	var doc []int32
	for _, field := range strings.Fields(strings.ToLower(text)) {
		if id, ok := vocab[field]; ok {
			doc = append(doc, id)
			continue
		}
		for _, tok := range corpus.Normalize(field) {
			if id, ok := vocab[tok]; ok {
				doc = append(doc, id)
			}
		}
	}
	return doc
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
