package main

import (
	"fmt"
	"net"
	"testing"
	"time"
)

// TestHTTPServerSetsAllTimeouts pins the regression the old server
// shipped with: only ReadHeaderTimeout was set, so a client dribbling
// a request body (a slowloris) could pin a connection and its handler
// goroutine forever.
func TestHTTPServerSetsAllTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", nil, 30*time.Second, 60*time.Second, 120*time.Second)
	if srv.ReadTimeout != 30*time.Second {
		t.Errorf("ReadTimeout = %v", srv.ReadTimeout)
	}
	if srv.WriteTimeout != 60*time.Second {
		t.Errorf("WriteTimeout = %v", srv.WriteTimeout)
	}
	if srv.IdleTimeout != 120*time.Second {
		t.Errorf("IdleTimeout = %v", srv.IdleTimeout)
	}
	if srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v", srv.ReadHeaderTimeout)
	}
}

// TestSlowBodyRequestIsCutOff proves the ReadTimeout actually bites: a
// request whose body arrives one byte at a time must have its
// connection killed by the server shortly after the read deadline, long
// before the body would complete on its own.
func TestSlowBodyRequestIsCutOff(t *testing.T) {
	h, _ := testHandler(t)
	const readTimeout = 250 * time.Millisecond
	srv := newHTTPServer("", h, readTimeout, time.Second, time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	// Headers complete promptly; the declared body would take ~100 s at
	// our dribble rate, so only the server's ReadTimeout can end this.
	_, err = fmt.Fprintf(conn,
		"POST /infer HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 2000\r\n\r\n")
	if err != nil {
		t.Fatal(err)
	}

	// Dribble the body while watching for the server to give up. The
	// read side unblocks (EOF/RST) when the server closes the
	// connection after ReadTimeout.
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 512)
		for {
			if _, err := conn.Read(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	var cutOff bool
	var wrote int
dribble:
	for i := 0; i < 200; i++ {
		select {
		case <-done:
			cutOff = true
			break dribble
		case <-time.After(50 * time.Millisecond):
			if _, err := conn.Write([]byte("[")); err != nil {
				cutOff = true
				break dribble
			}
			wrote++
		}
	}
	elapsed := time.Since(start)
	if !cutOff {
		t.Fatalf("server kept the slow-body connection alive for %v (%d bytes dribbled)", elapsed, wrote)
	}
	// Cut off near the deadline, not after the body limped to an end.
	if elapsed > 5*time.Second {
		t.Fatalf("connection lived %v, want cutoff shortly after ReadTimeout %v", elapsed, readTimeout)
	}
	t.Logf("slow-body connection cut off after %v (%d bytes dribbled)", elapsed, wrote)
}
