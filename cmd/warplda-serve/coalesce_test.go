package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warplda"
	"warplda/internal/infer"
	"warplda/internal/registry"
)

// Tests for the serve-path coalescing and admission-control layer:
// concurrent single-document requests must merge into fewer engine
// dispatches with byte-identical results, overload must shed with
// retryable 503s while health and admin stay responsive, and a drain
// must answer everything already admitted.

func waitUntil(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// doInfer runs one inference request without t.Fatal-ing, so it is safe
// from non-test goroutines. hdr is optional "Key: Value" pairs.
func doInfer(h http.Handler, body string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(body))
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestCoalescingMergesConcurrentRequests is the acceptance test for
// request coalescing: N concurrent single-document HTTP requests are
// answered from fewer than N engine dispatches, and every response is
// byte-identical to what uncoalesced inference produces.
func TestCoalescingMergesConcurrentRequests(t *testing.T) {
	const n = 8
	m := trainTestModel(t)
	s, reg := newTestServer(t, ServeOptions{
		Coalesce:    true,
		BatchLinger: 25 * time.Millisecond, // generous so slow-starting goroutines still coalesce
	}, registry.Options{}, map[string]*warplda.Model{"news": m}, "news")
	t.Cleanup(s.Close)

	docs := make([][]int32, n)
	for i := range docs {
		docs[i] = []int32{int32(i % 8), int32((i + 1) % 8), int32((i + 3) % 8)}
	}
	// Golden answers from a private engine so the serving engine's
	// dispatch counters see only the coalesced traffic.
	golden, err := warplda.NewInferEngine(m, warplda.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := golden.InferBatch(docs, 20, 42) // serve defaults: Sweeps 20, Seed 42
	if err != nil {
		t.Fatal(err)
	}

	snap, err := reg.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	before := snap.Engine.Stats()

	var (
		wg   sync.WaitGroup
		gate = make(chan struct{})
		recs = make([]*httptest.ResponseRecorder, n)
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			recs[i] = doInfer(s, fmt.Sprintf(`{"docs": [[%d,%d,%d]]}`, docs[i][0], docs[i][1], docs[i][2]))
		}(i)
	}
	close(gate)
	wg.Wait()

	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body)
		}
		var resp inferResponse
		if err := decodeBody(rec, &resp); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !reflect.DeepEqual(resp.Topics, [][]float64{want[i]}) {
			t.Fatalf("request %d: coalesced result differs from uncoalesced inference", i)
		}
	}

	after := snap.Engine.Stats()
	if got := after.Docs - before.Docs; got != n {
		t.Fatalf("engine saw %d docs, want %d", got, n)
	}
	if got := after.Dispatches - before.Dispatches; got >= n {
		t.Fatalf("%d requests took %d dispatches; coalescing merged nothing", n, got)
	}

	var st statsResponse
	if rec := getJSON(t, s, "/stats", &st); rec.Code != http.StatusOK {
		t.Fatalf("/stats: %d", rec.Code)
	}
	bi, ok := st.Batchers["news"]
	if !ok {
		t.Fatal("/stats has no batcher entry for news")
	}
	if bi.Submitted != n || bi.BatchedDocs != n {
		t.Fatalf("batcher stats = %+v, want %d submitted and batched", bi, n)
	}
	if st.LatencyUs.Count != n {
		t.Fatalf("latency histogram recorded %d requests, want %d", st.LatencyUs.Count, n)
	}
}

// gateServer builds a coalescing server whose dispatches block until
// release is closed, for deterministic overload tests.
func gateServer(t *testing.T, opts ServeOptions) (*Server, chan struct{}, chan struct{}) {
	t.Helper()
	m := trainTestModel(t)
	opts.Coalesce = true
	s, _ := newTestServer(t, opts, registry.Options{}, map[string]*warplda.Model{"news": m}, "news")
	t.Cleanup(s.Close)
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	s.dispatchWrap = func(d infer.Dispatch) infer.Dispatch {
		return func(docs [][]int32, sweeps []int) ([][]float64, any, error) {
			entered <- struct{}{}
			<-release
			return d(docs, sweeps)
		}
	}
	return s, entered, release
}

func TestQueueFullShedsWhileAdminResponds(t *testing.T) {
	s, entered, release := gateServer(t, ServeOptions{BatchMax: 1, QueueDepth: 2})

	var wg sync.WaitGroup
	var okCount atomic.Int64
	blocked := func() {
		defer wg.Done()
		if rec := doInfer(s, `{"docs": [[0,1,2]]}`); rec.Code == http.StatusOK {
			okCount.Add(1)
		}
	}
	// One request inside the gated dispatch, two saturating the queue.
	wg.Add(1)
	go blocked()
	<-entered
	wg.Add(2)
	go blocked()
	go blocked()
	waitUntil(t, 5*time.Second, "queue to fill", func() bool {
		return s.batcherFor("news").QueueLen() == 2
	})

	// The next request must shed at admission, not wait.
	rec := doInfer(s, `{"docs": [[3,4,5]]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-queue request: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("queue-full 503 has no Retry-After")
	}

	// Health and admin stay responsive while inference is saturated.
	if rec := getJSON(t, s, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("/healthz under saturation: %d", rec.Code)
	}
	if rec := getJSON(t, s, "/models", nil); rec.Code != http.StatusOK {
		t.Fatalf("/models under saturation: %d", rec.Code)
	}
	var st statsResponse
	getJSON(t, s, "/stats", &st)
	if st.Batchers["news"].ShedQueueFull < 1 {
		t.Fatalf("stats = %+v, want ShedQueueFull >= 1", st.Batchers["news"])
	}

	close(release)
	wg.Wait()
	if okCount.Load() != 3 {
		t.Fatalf("%d admitted requests succeeded, want 3", okCount.Load())
	}
}

func TestDeadlineExceededWhileQueued(t *testing.T) {
	s, entered, release := gateServer(t, ServeOptions{BatchMax: 1, QueueDepth: 8})

	var wg sync.WaitGroup
	var first, second *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		first = doInfer(s, `{"docs": [[0,1,2]]}`)
	}()
	<-entered

	// 30ms budget, queued behind the gated dispatch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		second = doInfer(s, `{"docs": [[1,2,3]]}`, "X-Deadline-Ms", "30")
	}()
	waitUntil(t, 5*time.Second, "second request to queue", func() bool {
		return s.batcherFor("news").QueueLen() == 1
	})
	time.Sleep(50 * time.Millisecond) // let its deadline lapse in queue
	close(release)
	wg.Wait()

	if first.Code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", first.Code, first.Body)
	}
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired request: status %d, want 503: %s", second.Code, second.Body)
	}
	if second.Header().Get("Retry-After") == "" {
		t.Fatal("deadline 503 has no Retry-After")
	}
	var st statsResponse
	getJSON(t, s, "/stats", &st)
	if st.Batchers["news"].ShedDeadline < 1 {
		t.Fatalf("stats = %+v, want ShedDeadline >= 1", st.Batchers["news"])
	}

	// A malformed deadline header is the caller's error.
	if rec := doInfer(s, `{"docs": [[0]]}`, "X-Deadline-Ms", "soon"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad deadline header: status %d, want 400", rec.Code)
	}
}

func TestCloseDrainsAdmittedRequests(t *testing.T) {
	s, entered, release := gateServer(t, ServeOptions{BatchMax: 1, QueueDepth: 8})

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 3)
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = doInfer(s, fmt.Sprintf(`{"docs": [[%d,1,2]]}`, i))
		}(i)
	}
	<-entered
	waitUntil(t, 5*time.Second, "requests to queue", func() bool {
		return s.batcherFor("news").QueueLen() == 2
	})

	// Close blocks until the queue drains; the gate must open for it to
	// finish, and everything admitted must still be answered.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	close(release)
	wg.Wait()
	<-closed

	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("admitted request %d dropped by drain: status %d", i, rec.Code)
		}
	}
	// After the drain, coalesced inference refuses new work.
	if rec := doInfer(s, `{"docs": [[0,1]]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close request: status %d, want 503", rec.Code)
	}
}

// TestPublishUnderLoadUsesWarmSnapshot drives steady traffic through a
// coalescing server while a new model version is published train-style
// (versioned file first, atomic latest-pointer swap second) and asserts
// zero failed requests and that the swap was answered from the poller's
// prefetched snapshot — no live request waits on an engine build.
func TestPublishUnderLoadUsesWarmSnapshot(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	saveModel(t, filepath.Join(dir, "news@10.bin"), m)
	if err := os.Symlink("news@10.bin", filepath.Join(dir, "news.bin")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	reg, err := registry.Open(dir, registry.Options{ReloadInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	s, err := NewServer(reg, ServeOptions{DefaultModel: "news", Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		failures atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if rec := doInfer(s, fmt.Sprintf(`{"docs": [[%d,1,2]]}`, w)); rec.Code != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}

	// Publish train-style under load.
	saveModel(t, filepath.Join(dir, "news@20.bin"), trainTestModel(t))
	waitUntil(t, 5*time.Second, "warm prefetch", func() bool {
		return reg.RegistryStats().Prefetched >= 1
	})
	tmp := filepath.Join(dir, ".latest-tmp")
	if err := os.Symlink("news@20.bin", tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "news.bin")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "warm hot swap", func() bool {
		mi, _ := reg.Info("news")
		return mi.Version >= 2
	})
	close(stop)
	wg.Wait()

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed across the publish swap", failures.Load())
	}
	st := reg.RegistryStats()
	if st.PrefetchHits < 1 {
		t.Fatalf("swap paid a cold build: %+v", st)
	}
}
