package main

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"warplda/internal/infer"
	"warplda/internal/registry"
)

// The /v1 error contract: every non-2xx response carries one JSON
// envelope, {"error":{"code","message","retry_after_ms?"}}. The code is
// a stable machine-readable label (clients branch on it; the message is
// for humans and may change); retry_after_ms mirrors the Retry-After
// header on retryable 503s. Legacy alias routes serve byte-identical
// envelopes. The full code list is part of docs/API.md.
const (
	codeBadRequest       = "bad_request"        // 400: malformed body, params, cursor, deadline header
	codeNotFound         = "not_found"          // 404: unknown model, version, or route resource
	codeMethodNotAllowed = "method_not_allowed" // 405: wrong method on a known route
	codePayloadTooLarge  = "payload_too_large"  // 413: body or batch over the configured limits
	codeModelLoading     = "model_loading"      // 503: model is mid-load, retry shortly
	codeOverCapacity     = "over_capacity"      // 503: memory budget refuses another resident model
	codeQueueFull        = "queue_full"         // 503: admission queue full, no deadline to wait under
	codeDeadlineExceeded = "deadline_exceeded"  // 503: deadline passed before the work ran
	codeDraining         = "draining"           // 503: instance is shutting down
	codeInternal         = "internal"           // 500: server-side failure (corrupt model file, ...)
)

// apiError is the envelope body.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMs, when set, tells the client how long to back off; it
	// mirrors the Retry-After header (which HTTP rounds to seconds).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeError writes the uniform error envelope. retryAfter > 0 marks a
// retryable condition: it sets the Retry-After header (ceiling seconds,
// per HTTP) and the envelope's exact retry_after_ms.
func writeError(w http.ResponseWriter, status int, code string, retryAfter time.Duration, format string, args ...any) {
	e := apiError{Code: code, Message: fmt.Sprintf(format, args...)}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		e.RetryAfterMs = retryAfter.Milliseconds()
	}
	writeJSON(w, status, errorEnvelope{Error: e})
}

// writeRegistryError maps a registry lifecycle error onto the HTTP
// admission-control contract: 404 for names that don't exist, 503 +
// Retry-After for transient refusals (mid-load, over budget, draining),
// 500 for server-side breakage.
func (s *Server) writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrNotFound) || errors.Is(err, registry.ErrBadName):
		writeError(w, http.StatusNotFound, codeNotFound, 0, "%v", err)
	case errors.Is(err, registry.ErrLoading):
		writeError(w, http.StatusServiceUnavailable, codeModelLoading, time.Second, "%v", err)
	case errors.Is(err, registry.ErrOverCapacity):
		writeError(w, http.StatusServiceUnavailable, codeOverCapacity, 5*time.Second, "%v", err)
	case errors.Is(err, registry.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeDraining, 0, "server is shutting down")
	default:
		// Unreadable/corrupt model file: the caller named a real model,
		// the server side is broken.
		writeError(w, http.StatusInternalServerError, codeInternal, 0, "%v", err)
	}
}

// writeAdmissionError maps an error from an admission-control component
// (batcher or query gate) onto HTTP: shed conditions are retryable
// 503s, validation failures are the caller's 400, registry lifecycle
// errors keep their usual mapping.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, infer.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, codeQueueFull, time.Second, "%v", err)
	case errors.Is(err, infer.ErrDeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, codeDeadlineExceeded, time.Second, "%v", err)
	case errors.Is(err, infer.ErrBatcherClosed):
		writeError(w, http.StatusServiceUnavailable, codeDraining, 0, "server is draining")
	case errors.Is(err, errBadDocs):
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
	default:
		s.writeRegistryError(w, err)
	}
}
