package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warplda"
	"warplda/internal/registry"
)

// trainStressModel trains a small model with the given K so each
// swapped-in generation is observable by its response dimension.
func trainStressModel(t testing.TB, k int, seed uint64) *warplda.Model {
	t.Helper()
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 40, V: 80, K: k, MeanLen: 25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := warplda.Train(c, warplda.Defaults(k), 10)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHotReloadUnderLoad is the serving-layer torture test: N
// goroutines hammer POST /infer while the model file is atomically
// replaced several times under them. Every response must be a valid
// 200 from SOME complete model generation — never an error, never a
// torn hybrid — and the registry must register every swap. Run under
// -race (CI's short lane does) this also proves the snapshot-swap
// discipline is data-race-free.
func TestHotReloadUnderLoad(t *testing.T) {
	const (
		workers  = 8
		swaps    = 4
		firstK   = 2
		budgetMB = 64
	)
	dir := t.TempDir()
	path := filepath.Join(dir, "live.bin")
	saveModel(t, path, trainStressModel(t, firstK, 1))

	reg, err := registry.Open(dir, registry.Options{
		ReloadInterval: time.Millisecond,
		MaxBytes:       budgetMB << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	sv, err := NewServer(reg, ServeOptions{DefaultModel: "live", Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Load generation 0 before the hammering starts, so every later
	// write is a genuine hot swap of a resident model.
	if _, err := reg.Acquire("live"); err != nil {
		t.Fatal(err)
	}

	// Valid response dimensions: every generation's K. Generation g has
	// K = firstK + g.
	validK := map[int]bool{}
	for g := 0; g <= swaps; g++ {
		validK[firstK+g] = true
	}

	var (
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
		seenK    sync.Map // K -> true, which generations answered
	)
	body := `{"docs": [[0,1,2,3,4,5,6,7],[8,9,10,11]]}`
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(body))
				rec := httptest.NewRecorder()
				sv.ServeHTTP(rec, req)
				requests.Add(1)
				if rec.Code != http.StatusOK {
					failures.Add(1)
					t.Errorf("request failed: %d %s", rec.Code, rec.Body)
					continue
				}
				var resp inferResponse
				if err := decodeBody(rec, &resp); err != nil {
					failures.Add(1)
					t.Errorf("bad response: %v", err)
					continue
				}
				k := len(resp.Topics[0])
				if !validK[k] {
					failures.Add(1)
					t.Errorf("response from unknown model generation: K=%d", k)
				}
				seenK.Store(k, true)
			}
		}()
	}

	// Swap the model under load, waiting for the registry to pick each
	// generation up before writing the next (so every swap happens with
	// requests in flight).
	for g := 1; g <= swaps; g++ {
		k := firstK + g
		saveModel(t, path, trainStressModel(t, k, uint64(g)*17))
		deadline := time.Now().Add(10 * time.Second)
		for {
			mi, ok := reg.Info("live")
			if ok && mi.Version >= g+1 {
				break
			}
			if time.Now().After(deadline) {
				stop.Store(true)
				wg.Wait()
				t.Fatalf("swap %d not picked up (info %+v)", g, mi)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Let requests observe the final generation, then stop.
	time.Sleep(20 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := requests.Load(); n < int64(workers*swaps) {
		t.Fatalf("only %d requests ran — not actually under load", n)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed during hot swaps", n, requests.Load())
	}
	mi, _ := reg.Info("live")
	if mi.Loads < swaps+1 {
		t.Fatalf("only %d loads recorded, want ≥ %d", mi.Loads, swaps+1)
	}
	if st := reg.RegistryStats(); st.BytesResident > st.MaxBytes {
		t.Fatalf("resident %d bytes over budget %d", st.BytesResident, st.MaxBytes)
	}
	var generations int
	seenK.Range(func(_, _ any) bool { generations++; return true })
	if generations < 2 {
		t.Fatalf("requests only ever saw %d generation(s); swaps not exercised under load", generations)
	}
	t.Logf("served %d requests across %d model generations, %d swaps, 0 failures",
		requests.Load(), generations, mi.Loads-1)
}

// TestEvictionsObservableUnderLoad drives the registry past its byte
// budget through the HTTP plane and checks the acceptance invariant:
// resident bytes never exceed the budget and the evictions are visible
// via GET /models.
func TestEvictionsObservableUnderLoad(t *testing.T) {
	m := trainStressModel(t, 2, 3)
	eng, err := warplda.NewInferEngine(m, warplda.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one := m.SizeBytes() + eng.MemoryBytes()

	models := map[string]*warplda.Model{}
	for i := 0; i < 4; i++ {
		models[fmt.Sprintf("m%d", i)] = trainStressModel(t, 2, uint64(40+i))
	}
	// Room for two resident models.
	h, reg := newTestServer(t, ServeOptions{Sweeps: 3},
		registry.Options{MaxBytes: one*2 + one/2}, models, "m0")

	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			rec, _ := postJSON(t, h, fmt.Sprintf("/models/m%d/infer", i), `{"docs": [[0,1,2]]}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d m%d: status %d: %s", round, i, rec.Code, rec.Body)
			}
			if st := reg.RegistryStats(); st.BytesResident > st.MaxBytes {
				t.Fatalf("round %d m%d: resident %d over budget %d", round, i, st.BytesResident, st.MaxBytes)
			}
		}
	}

	var mr modelsResponse
	if rec := getJSON(t, h, "/models", &mr); rec.Code != http.StatusOK {
		t.Fatalf("GET /models: %d", rec.Code)
	}
	var evictions, ready int
	for _, mi := range mr.Models {
		evictions += mi.Evictions
		if mi.State == "ready" {
			ready++
		}
	}
	if evictions == 0 {
		t.Fatalf("no evictions visible in /models despite budget pressure: %+v", mr.Models)
	}
	if ready > 2 {
		t.Fatalf("%d models resident with a two-model budget", ready)
	}
	if mr.Evictions == 0 {
		t.Fatal("registry-wide eviction counter never moved")
	}
}

func decodeBody(rec *httptest.ResponseRecorder, v any) error {
	return json.NewDecoder(rec.Body).Decode(v)
}
