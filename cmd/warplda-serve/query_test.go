package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/query"
	"warplda/internal/registry"
)

// queryPage decodes one streamed query response.
type queryPage struct {
	Model      string          `json:"model"`
	Version    int             `json:"version"`
	Against    string          `json:"against"`
	Rows       json.RawMessage `json:"rows"`
	RowCount   int             `json:"row_count"`
	Truncated  bool            `json:"truncated"`
	NextCursor string          `json:"next_cursor"`
	Error      string          `json:"error"`
	TookMs     float64         `json:"took_ms"`
}

func doQuery(t testing.TB, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, queryPage) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var page queryPage
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatalf("%s: response is not one JSON object: %v\n%s", path, err, rec.Body)
		}
	}
	return rec, page
}

func rowsOf[T any](t testing.TB, page queryPage) []T {
	t.Helper()
	var rows []T
	if err := json.Unmarshal(page.Rows, &rows); err != nil {
		t.Fatalf("decoding rows: %v\n%s", err, page.Rows)
	}
	if len(rows) != page.RowCount {
		t.Fatalf("row_count %d but %d rows decoded", page.RowCount, len(rows))
	}
	return rows
}

func TestQueryTopWordsPagination(t *testing.T) {
	h, _ := testHandler(t)
	// Deep query: the full ranking for topic 0.
	rec, full := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&limit=100", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if full.Model != "news" || full.Version != 1 {
		t.Fatalf("page header = %+v", full)
	}
	fullRows := rowsOf[query.WordRow](t, full)
	// The toy corpus has two 4-word domains; topic 0 holds at least its
	// own domain's words.
	if len(fullRows) < 4 {
		t.Fatalf("topic 0 has only %d ranked words", len(fullRows))
	}
	if full.Truncated {
		t.Fatalf("deep query truncated: %+v", full)
	}
	for i := 1; i < len(fullRows); i++ {
		if fullRows[i].Count > fullRows[i-1].Count {
			t.Fatalf("ranking not descending at %d: %+v", i, fullRows)
		}
	}

	// Page through with limit=2 and splice: identical to the deep query.
	var paged []query.WordRow
	cursor := ""
	for hops := 0; ; hops++ {
		if hops > 20 {
			t.Fatal("pagination did not terminate")
		}
		rec, page := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&limit=2&cursor="+cursor, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", hops, rec.Code, rec.Body)
		}
		paged = append(paged, rowsOf[query.WordRow](t, page)...)
		if !page.Truncated {
			break
		}
		if page.NextCursor == "" {
			t.Fatalf("truncated page without next_cursor: %+v", page)
		}
		cursor = page.NextCursor
	}
	if len(paged) != len(fullRows) {
		t.Fatalf("paged %d rows, deep query %d", len(paged), len(fullRows))
	}
	for i := range fullRows {
		if paged[i] != fullRows[i] {
			t.Fatalf("row %d: paged %+v != deep %+v", i, paged[i], fullRows[i])
		}
	}

	// Cursor past the end: empty page, not truncated, not an error.
	rec, past := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&cursor=500", "")
	if rec.Code != http.StatusOK || past.RowCount != 0 || past.Truncated {
		t.Fatalf("past-end page: status %d, %+v", rec.Code, past)
	}

	// limit=0 falls back to the default page size.
	rec, def := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&limit=0", "")
	if rec.Code != http.StatusOK || def.RowCount == 0 {
		t.Fatalf("limit=0 page: status %d, %+v", rec.Code, def)
	}
}

func TestQueryVocab(t *testing.T) {
	h, _ := testHandler(t)
	rec, page := doQuery(t, h, "GET", "/v1/models/news/query/vocab?prefix=sto", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	rows := rowsOf[query.VocabRow](t, page)
	if len(rows) != 1 || rows[0].Word != "stock" || rows[0].Tokens == 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// Prefix with no matches: empty page, valid JSON, no error.
	rec, page = doQuery(t, h, "GET", "/v1/models/news/query/vocab?prefix=zzz", "")
	if rec.Code != http.StatusOK || page.RowCount != 0 || page.Truncated || page.Error != "" {
		t.Fatalf("empty slice: status %d, %+v", rec.Code, page)
	}
}

func TestQuerySimilarAndTopDocs(t *testing.T) {
	h, _ := testHandler(t)
	body := `{
		"query_text": "stock market bond price stock",
		"texts": [
			"gopher compiler runtime goroutine gopher compiler",
			"stock market price bond stock market",
			"gopher compiler stock market"
		]
	}`
	rec, page := doQuery(t, h, "POST", "/v1/models/news/query/similar", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("similar: status %d: %s", rec.Code, rec.Body)
	}
	simRows := rowsOf[query.SimRow](t, page)
	if len(simRows) != 3 {
		t.Fatalf("similar rows = %+v", simRows)
	}
	if simRows[0].Doc != 1 {
		t.Fatalf("best match doc %d, want the all-finance doc 1: %+v", simRows[0].Doc, simRows)
	}

	// topdocs for the finance topic must rank the finance doc first.
	// Find that topic via the query's own top answer.
	financeTopic := topicOfText(t, h, "stock market price bond")
	tdBody := `{
		"topic": ` + jsonInt(financeTopic) + `,
		"texts": [
			"gopher compiler runtime goroutine",
			"stock market price bond stock market price"
		]
	}`
	rec, page = doQuery(t, h, "POST", "/v1/models/news/query/topdocs", tdBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("topdocs: status %d: %s", rec.Code, rec.Body)
	}
	docRows := rowsOf[query.DocRow](t, page)
	if len(docRows) != 2 || docRows[0].Doc != 1 {
		t.Fatalf("topdocs rows = %+v, want doc 1 first", docRows)
	}
	if docRows[0].Weight <= docRows[1].Weight {
		t.Fatalf("weights not descending: %+v", docRows)
	}

	// Determinism: the same similar request answers identically.
	rec2, page2 := doQuery(t, h, "POST", "/v1/models/news/query/similar", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("repeat similar: status %d", rec2.Code)
	}
	sim2 := rowsOf[query.SimRow](t, page2)
	for i := range simRows {
		if simRows[i] != sim2[i] {
			t.Fatalf("similar not deterministic: %+v vs %+v", simRows[i], sim2[i])
		}
	}
}

// topicOfText asks the infer endpoint which topic dominates a text.
func topicOfText(t testing.TB, h http.Handler, text string) int {
	t.Helper()
	rec, resp := postJSON(t, h, "/v1/infer", `{"texts": ["`+text+`"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer probe: status %d: %s", rec.Code, rec.Body)
	}
	return resp.Top[0]
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestQueryDrift(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{}, registry.Options{},
		map[string]*warplda.Model{"news": m, "prev": trainTestModel(t)}, "news")

	// A model against itself: zero distance, full overlap, one row per
	// topic.
	rec, page := doQuery(t, h, "GET", "/v1/models/news/query/drift?against=news&top=4", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if page.Against != "news" {
		t.Fatalf("page = %+v", page)
	}
	rows := rowsOf[query.DriftRow](t, page)
	if len(rows) != m.Cfg.K {
		t.Fatalf("%d rows, want K=%d", len(rows), m.Cfg.K)
	}
	for _, row := range rows {
		if row.L1 != 0 || row.Overlap != 1 {
			t.Fatalf("self-drift row = %+v", row)
		}
		if len(row.TopA) == 0 || len(row.TopA) != len(row.TopB) {
			t.Fatalf("top sets = %+v", row)
		}
	}

	// Against an independently trained sibling: finite, well-formed rows.
	rec, page = doQuery(t, h, "GET", "/v1/models/news/query/drift?against=prev", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	for _, row := range rowsOf[query.DriftRow](t, page) {
		if row.L1 < 0 || row.Overlap < 0 || row.Overlap > 1 {
			t.Fatalf("drift row out of range: %+v", row)
		}
	}
}

// TestQueryByteBudget pins the byte half of the streaming budget: a
// tiny QueryMaxBytes cuts the page short mid-ranking with a usable
// next_cursor, and the truncated body is still one valid JSON object.
func TestQueryByteBudget(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{QueryMaxBytes: 150}, registry.Options{},
		map[string]*warplda.Model{"news": m}, "news")
	rec, page := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&limit=100", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !page.Truncated || page.NextCursor == "" {
		t.Fatalf("tiny byte budget did not truncate: %+v", page)
	}
	first := rowsOf[query.WordRow](t, page)
	if len(first) == 0 {
		t.Fatal("byte budget admitted zero rows")
	}
	// The cursor resumes exactly after the delivered rows.
	rec, next := doQuery(t, h, "GET",
		"/v1/models/news/query/topwords?topic=0&limit=100&cursor="+page.NextCursor, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("resume: status %d: %s", rec.Code, rec.Body)
	}
	nextRows := rowsOf[query.WordRow](t, next)
	if len(nextRows) == 0 {
		t.Fatalf("resume page empty: %+v", next)
	}
	if nextRows[0].Count > first[len(first)-1].Count {
		t.Fatalf("resume page does not continue the ranking: %+v after %+v", nextRows[0], first[len(first)-1])
	}
}

// TestQueryStatsAndGate pins the observability wiring: queries count
// into queries_served, the latency histogram moves, and the per-model
// gate reports admissions.
func TestQueryStatsAndGate(t *testing.T) {
	h, _ := testHandler(t)
	for i := 0; i < 3; i++ {
		if rec, _ := doQuery(t, h, "GET", "/v1/models/news/query/topwords?topic=0&limit=2", ""); rec.Code != 200 {
			t.Fatalf("query %d: status %d", i, rec.Code)
		}
	}
	var st statsResponse
	rec := getJSON(t, h, "/v1/stats", &st)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	if st.QueriesServed != 3 {
		t.Fatalf("queries_served = %d, want 3", st.QueriesServed)
	}
	if st.QueryLatencyUs.Count != 3 {
		t.Fatalf("query latency count = %d, want 3", st.QueryLatencyUs.Count)
	}
	g, ok := st.QueryGates["news"]
	if !ok || g.Admitted != 3 || g.Active != 0 {
		t.Fatalf("query_gates = %+v", st.QueryGates)
	}
	// Legacy /stats carries the same fields.
	var legacy statsResponse
	if rec := getJSON(t, h, "/stats", &legacy); rec.Code != http.StatusOK || legacy.QueriesServed != 3 {
		t.Fatalf("legacy stats: %+v", legacy)
	}
}

// TestQueryVersionPinning serves a versioned name directly: the drift
// pair (base, base@iter) answers from two distinct pinned snapshots.
func TestQueryVersionPinning(t *testing.T) {
	m := trainTestModel(t)
	dir := t.TempDir()
	saveModel(t, filepath.Join(dir, "news.bin"), m)
	saveModel(t, filepath.Join(dir, "news@7.bin"), trainTestModel(t))
	reg, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	s, err := NewServer(reg, ServeOptions{DefaultModel: "news"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	rec, page := doQuery(t, s, "GET", "/v1/models/news/query/drift?against=news@7", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if page.Against != "news@7" {
		t.Fatalf("page = %+v", page)
	}
	if len(rowsOf[query.DriftRow](t, page)) != m.Cfg.K {
		t.Fatalf("row_count = %d", page.RowCount)
	}

	// The versioned sibling also shows up on the model info route.
	var mi registry.ModelInfo
	if rec := getJSON(t, s, "/v1/models/news", &mi); rec.Code != http.StatusOK {
		t.Fatalf("info: status %d", rec.Code)
	}
	if len(mi.Versions) != 1 || mi.Versions[0].Name != "news@7" || mi.Versions[0].Iter != 7 {
		t.Fatalf("versions = %+v", mi.Versions)
	}
}
