package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"warplda"
	"warplda/internal/registry"
)

// TestEndToEndTrainSaveServePipeline covers the whole production path
// as one flow: train a tiny model, save it the way warplda-train -save
// does, boot the HTTP server over the model directory, query it over
// real HTTP through both routes, and pin the responses to the golden
// answer computed directly on the reloaded snapshot. JSON float64
// round-trips losslessly (shortest-representation encoding), so the
// comparison is exact, not approximate — any drift anywhere in
// train→disk→load→engine→HTTP is a failure.
func TestEndToEndTrainSaveServePipeline(t *testing.T) {
	// 1. Train.
	m := trainTestModel(t)

	// 2. Save, exactly as warplda-train -save does (Model.WriteTo).
	dir := t.TempDir()
	path := filepath.Join(dir, "news.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 3. Boot the server over the model directory.
	reg, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	opts := ServeOptions{DefaultModel: "news", Sweeps: 25}
	sv, err := NewServer(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv)
	defer ts.Close()

	// 4. Golden answer: fold the same docs in directly on a model read
	// back from the same file, with the server's effective parameters.
	queryDocs := [][]int32{{0, 1, 2, 0, 1}, {3, 4, 5, 3}}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := warplda.ReadModel(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := warplda.NewInferEngine(reloaded, warplda.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := eng.InferBatch(queryDocs, opts.Sweeps, opts.withDefaults().Seed)
	if err != nil {
		t.Fatal(err)
	}

	// 5. Query over real HTTP: legacy route and per-model route must
	// both return exactly the golden distributions.
	body := `{"docs": [[0,1,2,0,1],[3,4,5,3]]}`
	for _, route := range []string{"/infer", "/models/news/infer"} {
		resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		var ir inferResponse
		err = json.NewDecoder(resp.Body).Decode(&ir)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", route, resp.StatusCode)
		}
		if !reflect.DeepEqual(ir.Topics, golden) {
			t.Fatalf("%s diverged from golden fold-in:\n got %v\nwant %v", route, ir.Topics, golden)
		}
		if ir.Model != "news" || ir.Version != 1 {
			t.Fatalf("%s answered by %s v%d", route, ir.Model, ir.Version)
		}
	}

	// 6. The admin plane saw all of it.
	resp, err := http.Get(ts.URL + "/models/news")
	if err != nil {
		t.Fatal(err)
	}
	var mi registry.ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&mi)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mi.State != "ready" || mi.Hits != 2 || mi.K != m.Cfg.K || mi.V != m.V {
		t.Fatalf("admin info = %+v", mi)
	}
}

// TestEndToEndGoldenStability pins the pipeline's determinism across
// server instances: two independent boots over the same file must
// answer byte-identically (the serving contract that makes blue/green
// deploys and response caching safe).
func TestEndToEndGoldenStability(t *testing.T) {
	m := trainTestModel(t)
	answers := make([]inferResponse, 2)
	for i := range answers {
		h, _ := newTestServer(t, ServeOptions{Sweeps: 25}, registry.Options{},
			map[string]*warplda.Model{"news": m}, "news")
		rec, resp := postInfer(t, h, `{"texts": ["gopher compiler runtime", "stock market price"]}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("boot %d: status %d: %s", i, rec.Code, rec.Body)
		}
		answers[i] = resp
	}
	if !reflect.DeepEqual(answers[0].Topics, answers[1].Topics) ||
		!reflect.DeepEqual(answers[0].Top, answers[1].Top) {
		t.Fatalf("two boots over the same model file disagree:\n%+v\n%+v", answers[0], answers[1])
	}
}
