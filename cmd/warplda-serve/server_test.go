package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/corpus"
)

func testHandler(t *testing.T) (http.Handler, *warplda.Model) {
	t.Helper()
	docs := make([]string, 0, 40)
	for i := 0; i < 20; i++ {
		docs = append(docs, "gopher compiler runtime goroutine gopher compiler runtime")
		docs = append(docs, "stock market price bond stock market price")
	}
	c := warplda.FromText(docs, warplda.TokenizeOptions{})
	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.2
	m, err := warplda.Train(c, cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewServer(m, ServeOptions{Sweeps: 30, MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	return h, m
}

func postInfer(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, inferResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/infer", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp inferResponse
	if rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return rec, resp
}

func TestInferWithTokenIDs(t *testing.T) {
	h, m := testHandler(t)
	rec, resp := postInfer(t, h, `{"docs": [[0,1,2,0,1], [], [3,4,5,3]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Topics) != 3 || len(resp.Top) != 3 {
		t.Fatalf("got %d topic rows, %d top entries", len(resp.Topics), len(resp.Top))
	}
	for i, theta := range resp.Topics {
		if len(theta) != m.Cfg.K {
			t.Fatalf("doc %d: %d components, want K=%d", i, len(theta), m.Cfg.K)
		}
		var sum float64
		for _, p := range theta {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d: θ̂ sums to %g", i, sum)
		}
	}
	// Empty doc: uniform over K=2.
	if math.Abs(resp.Topics[1][0]-0.5) > 1e-12 {
		t.Fatalf("empty doc θ̂ = %v", resp.Topics[1])
	}
}

func TestInferWithTextsSeparatesDomains(t *testing.T) {
	h, _ := testHandler(t)
	rec, resp := postInfer(t, h,
		`{"texts": ["Gopher compiler, runtime!", "stock market price"], "sweeps": 40}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Top[0] == resp.Top[1] {
		t.Fatalf("tech and finance docs mapped to the same topic: %+v", resp)
	}
}

func TestInferDeterministicResponses(t *testing.T) {
	h, _ := testHandler(t)
	_, a := postInfer(t, h, `{"docs": [[0,1,2,3]]}`)
	_, b := postInfer(t, h, `{"docs": [[0,1,2,3]]}`)
	if !reflect.DeepEqual(a.Topics, b.Topics) {
		t.Fatal("identical requests got different answers")
	}
}

func TestInferRejectsBadRequests(t *testing.T) {
	h, _ := testHandler(t)
	cases := map[string]struct {
		body string
		code int
	}{
		"invalid json":      {`{"docs": [[0,`, http.StatusBadRequest},
		"unknown field":     {`{"documents": [[0]]}`, http.StatusBadRequest},
		"both docs+texts":   {`{"docs": [[0]], "texts": ["x"]}`, http.StatusBadRequest},
		"neither":           {`{}`, http.StatusBadRequest},
		"word out of range": {`{"docs": [[99999]]}`, http.StatusBadRequest},
		"over max batch":    {`{"docs": [[0],[0],[0],[0],[0],[0],[0],[0],[0]]}`, http.StatusRequestEntityTooLarge},
	}
	for name, tc := range cases {
		rec, _ := postInfer(t, h, tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.code, rec.Body)
		}
	}
	// Wrong method.
	req := httptest.NewRequest(http.MethodGet, "/infer", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /infer: status %d", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	h, m := testHandler(t)
	// Serve one batch first so the counter moves.
	postInfer(t, h, `{"docs": [[0,1],[2,3]]}`)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var hr healthResponse
	if err := json.NewDecoder(rec.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.V != m.V || hr.K != m.Cfg.K || !hr.HasVocab {
		t.Fatalf("health = %+v", hr)
	}
	if hr.DocsServed != 2 {
		t.Fatalf("docs_served = %d, want 2", hr.DocsServed)
	}
}

// End-to-end through the serialization format: a model written the way
// warplda-train -save writes it must serve identically after reload.
func TestServeModelRoundTrip(t *testing.T) {
	_, m := testHandler(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := warplda.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewServer(reloaded, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := postInfer(t, h, `{"texts": ["gopher compiler runtime"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Topics) != 1 {
		t.Fatalf("topics = %v", resp.Topics)
	}
}

func TestTextNormalization(t *testing.T) {
	// The server shares corpus.Normalize with training-side FromText so
	// query words land on training vocabulary ids.
	got := corpus.Normalize("Hello, World! 2nd try—foo_bar")
	want := []string{"hello", "world", "2nd", "try", "foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

// Vocabularies loaded from external files (warplda-train -vocab) can
// hold entries corpus.Normalize would split, like UCI's underscored
// entities. The verbatim whitespace-field lookup must match them.
func TestTextsMatchExternalVocabEntities(t *testing.T) {
	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.01 // sharp θ̂ so resolved vs dropped tokens are distinguishable
	m := &warplda.Model{
		Cfg:   cfg,
		V:     3,
		Vocab: []string{"zzz_new_york", "market", "gopher"},
		Cw:    []int32{50, 1, 1, 50, 5, 5}, // word 0 is decisively topic 0
		Ck:    []int64{56, 56},
	}
	h, err := NewServer(m, ServeOptions{Sweeps: 30})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := postInfer(t, h,
		`{"texts": ["Zzz_New_York zzz_new_york ZZZ_NEW_YORK zzz_new_york"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Topics) != 1 {
		t.Fatalf("topics = %v", resp.Topics)
	}
	// If the entity resolved, four topic-0 tokens with α=0.01 force
	// θ̂₀ ≈ 1; if it was dropped as OOV the doc is empty and θ̂ is
	// exactly uniform (0.5).
	if resp.Topics[0][0] < 0.9 {
		t.Fatalf("entity token did not resolve; θ̂ = %v", resp.Topics[0])
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	_, m := testHandler(t)
	h, err := NewServer(m, ServeOptions{MaxBodyBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := postInfer(t, h, `{"docs": [[`+strings.Repeat("0,", 100)+`0]]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", rec.Code, rec.Body)
	}
}
