package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/corpus"
	"warplda/internal/registry"
)

// trainTestModel trains the two-domain toy model every handler test
// serves.
func trainTestModel(t testing.TB) *warplda.Model {
	t.Helper()
	docs := make([]string, 0, 40)
	for i := 0; i < 20; i++ {
		docs = append(docs, "gopher compiler runtime goroutine gopher compiler runtime")
		docs = append(docs, "stock market price bond stock market price")
	}
	c := warplda.FromText(docs, warplda.TokenizeOptions{})
	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.2
	m, err := warplda.Train(c, cfg, 60)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// saveModel writes m to path atomically, the way warplda-train -save
// updates a live model directory.
func saveModel(t testing.TB, path string, m *warplda.Model) {
	t.Helper()
	if _, err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

// newTestServer saves the given models into a fresh registry directory
// and builds a Server over them, with the first name as default model.
func newTestServer(t testing.TB, opts ServeOptions, ropts registry.Options, models map[string]*warplda.Model, def string) (*Server, *registry.Registry) {
	t.Helper()
	dir := t.TempDir()
	for name, m := range models {
		saveModel(t, filepath.Join(dir, name+".bin"), m)
	}
	reg, err := registry.Open(dir, ropts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reg.Close)
	opts.DefaultModel = def
	s, err := NewServer(reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func testHandler(t testing.TB) (*Server, *warplda.Model) {
	t.Helper()
	m := trainTestModel(t)
	s, _ := newTestServer(t, ServeOptions{Sweeps: 30, MaxBatch: 8}, registry.Options{},
		map[string]*warplda.Model{"news": m}, "news")
	return s, m
}

func postJSON(t testing.TB, h http.Handler, path, body string) (*httptest.ResponseRecorder, inferResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp inferResponse
	if rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return rec, resp
}

func postInfer(t testing.TB, h http.Handler, body string) (*httptest.ResponseRecorder, inferResponse) {
	return postJSON(t, h, "/infer", body)
}

func getJSON(t testing.TB, h http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if v != nil && rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return rec
}

func TestInferWithTokenIDs(t *testing.T) {
	h, m := testHandler(t)
	rec, resp := postInfer(t, h, `{"docs": [[0,1,2,0,1], [], [3,4,5,3]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Topics) != 3 || len(resp.Top) != 3 {
		t.Fatalf("got %d topic rows, %d top entries", len(resp.Topics), len(resp.Top))
	}
	if resp.Model != "news" || resp.Version != 1 {
		t.Fatalf("answered by %s v%d, want news v1", resp.Model, resp.Version)
	}
	for i, theta := range resp.Topics {
		if len(theta) != m.Cfg.K {
			t.Fatalf("doc %d: %d components, want K=%d", i, len(theta), m.Cfg.K)
		}
		var sum float64
		for _, p := range theta {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d: θ̂ sums to %g", i, sum)
		}
	}
	// Empty doc: uniform over K=2.
	if math.Abs(resp.Topics[1][0]-0.5) > 1e-12 {
		t.Fatalf("empty doc θ̂ = %v", resp.Topics[1])
	}
}

func TestInferByModelNameMatchesDefaultRoute(t *testing.T) {
	h, _ := testHandler(t)
	_, viaDefault := postInfer(t, h, `{"docs": [[0,1,2,3]]}`)
	rec, viaName := postJSON(t, h, "/models/news/infer", `{"docs": [[0,1,2,3]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if !reflect.DeepEqual(viaDefault.Topics, viaName.Topics) {
		t.Fatal("/infer and /models/news/infer disagree on the same model")
	}
}

func TestInferWithTextsSeparatesDomains(t *testing.T) {
	h, _ := testHandler(t)
	rec, resp := postInfer(t, h,
		`{"texts": ["Gopher compiler, runtime!", "stock market price"], "sweeps": 40}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Top[0] == resp.Top[1] {
		t.Fatalf("tech and finance docs mapped to the same topic: %+v", resp)
	}
}

func TestInferDeterministicResponses(t *testing.T) {
	h, _ := testHandler(t)
	_, a := postInfer(t, h, `{"docs": [[0,1,2,3]]}`)
	_, b := postInfer(t, h, `{"docs": [[0,1,2,3]]}`)
	if !reflect.DeepEqual(a.Topics, b.Topics) {
		t.Fatal("identical requests got different answers")
	}
}

func TestInferRejectsBadRequests(t *testing.T) {
	h, _ := testHandler(t)
	cases := map[string]struct {
		path string
		body string
		code int
	}{
		"invalid json":      {"/infer", `{"docs": [[0,`, http.StatusBadRequest},
		"unknown field":     {"/infer", `{"documents": [[0]]}`, http.StatusBadRequest},
		"both docs+texts":   {"/infer", `{"docs": [[0]], "texts": ["x"]}`, http.StatusBadRequest},
		"neither":           {"/infer", `{}`, http.StatusBadRequest},
		"word out of range": {"/infer", `{"docs": [[99999]]}`, http.StatusBadRequest},
		"over max batch":    {"/infer", `{"docs": [[0],[0],[0],[0],[0],[0],[0],[0],[0]]}`, http.StatusRequestEntityTooLarge},
		"unknown model":     {"/models/nope/infer", `{"docs": [[0]]}`, http.StatusNotFound},
		"traversal name":    {"/models/..%2fnews/infer", `{"docs": [[0]]}`, http.StatusNotFound},
	}
	for name, tc := range cases {
		rec, _ := postJSON(t, h, tc.path, tc.body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", name, rec.Code, tc.code, rec.Body)
		}
	}
	// Wrong method: still on the JSON error contract, with Allow set.
	for path, allow := range map[string]string{
		"/infer":             "POST",
		"/models/news/infer": "POST",
		"/models":            "GET",
		"/models/news":       "GET",
		"/healthz":           "GET",
	} {
		method := http.MethodGet
		if allow == "GET" {
			method = http.MethodPost
		}
		req := httptest.NewRequest(method, path, strings.NewReader("{}"))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d", method, path, rec.Code)
			continue
		}
		if got := rec.Header().Get("Allow"); got != allow {
			t.Errorf("%s %s: Allow = %q, want %q", method, path, got, allow)
		}
		var e errorEnvelope
		if err := json.NewDecoder(rec.Body).Decode(&e); err != nil ||
			e.Error.Code != codeMethodNotAllowed || e.Error.Message == "" {
			t.Errorf("%s %s: 405 body not on the JSON error contract: %v %+v", method, path, err, e)
		}
	}
}

func TestHealthz(t *testing.T) {
	h, _ := testHandler(t)
	// Serve one batch first so the counter moves.
	postInfer(t, h, `{"docs": [[0,1],[2,3]]}`)

	var hr healthResponse
	rec := getJSON(t, h, "/healthz", &hr)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if hr.Status != "ok" || hr.DefaultModel != "news" || hr.ModelsReady != 1 {
		t.Fatalf("health = %+v", hr)
	}
	if hr.DocsServed != 2 {
		t.Fatalf("docs_served = %d, want 2", hr.DocsServed)
	}
	if hr.BytesResident <= 0 {
		t.Fatalf("bytes_resident = %d", hr.BytesResident)
	}
}

func TestModelsAdminEndpoints(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{}, registry.Options{},
		map[string]*warplda.Model{"news": m, "cold": m}, "news")
	postInfer(t, h, `{"docs": [[0,1]]}`)

	var mr modelsResponse
	if rec := getJSON(t, h, "/models", &mr); rec.Code != http.StatusOK {
		t.Fatalf("GET /models: %d", rec.Code)
	}
	if len(mr.Models) != 2 {
		t.Fatalf("models = %+v", mr.Models)
	}
	byName := map[string]registry.ModelInfo{}
	for _, mi := range mr.Models {
		byName[mi.Name] = mi
	}
	if mi := byName["news"]; mi.State != "ready" || mi.K != 2 || mi.Bytes <= 0 || mi.Hits < 1 {
		t.Fatalf("news = %+v", mi)
	}
	if mi := byName["cold"]; mi.State != "available" || mi.Bytes != 0 {
		t.Fatalf("cold = %+v", mi)
	}
	if mr.BytesResident <= 0 || mr.Ready != 1 {
		t.Fatalf("registry stats = %+v", mr.Stats)
	}

	var mi registry.ModelInfo
	if rec := getJSON(t, h, "/models/news", &mi); rec.Code != http.StatusOK {
		t.Fatalf("GET /models/news: %d", rec.Code)
	}
	if mi.State != "ready" || mi.LoadMs <= 0 || mi.LoadedAt == "" {
		t.Fatalf("news info = %+v", mi)
	}
	if rec := getJSON(t, h, "/models/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET /models/nope: %d", rec.Code)
	}
}

func TestDrainRefusesInferenceKeepsAdmin(t *testing.T) {
	h, _ := testHandler(t)
	h.Drain()
	if rec, _ := postInfer(t, h, `{"docs": [[0]]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /infer: status %d, want 503", rec.Code)
	}
	if rec, _ := postJSON(t, h, "/models/news/infer", `{"docs": [[0]]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /models/news/infer: status %d, want 503", rec.Code)
	}
	var hr healthResponse
	if rec := getJSON(t, h, "/healthz", &hr); rec.Code != http.StatusOK || hr.Status != "draining" {
		t.Fatalf("draining health: %d %+v", rec.Code, hr)
	}
	if rec := getJSON(t, h, "/models", nil); rec.Code != http.StatusOK {
		t.Fatalf("draining /models: %d", rec.Code)
	}
}

func TestNoDefaultModel404sLegacyRoute(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{}, registry.Options{},
		map[string]*warplda.Model{"news": m}, "")
	if rec, _ := postInfer(t, h, `{"docs": [[0]]}`); rec.Code != http.StatusNotFound {
		t.Fatalf("legacy route without default: %d, want 404", rec.Code)
	}
	if rec, _ := postJSON(t, h, "/models/news/infer", `{"docs": [[0]]}`); rec.Code != http.StatusOK {
		t.Fatalf("named route: %d, want 200", rec.Code)
	}
}

func TestOverCapacityModelGets503(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{}, registry.Options{MaxBytes: 64},
		map[string]*warplda.Model{"news": m}, "news")
	rec, _ := postInfer(t, h, `{"docs": [[0]]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestTextNormalization(t *testing.T) {
	// The server shares corpus.Normalize with training-side FromText so
	// query words land on training vocabulary ids.
	got := corpus.Normalize("Hello, World! 2nd try—foo_bar")
	want := []string{"hello", "world", "2nd", "try", "foo", "bar"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Normalize = %v, want %v", got, want)
	}
}

// Vocabularies loaded from external files (warplda-train -vocab) can
// hold entries corpus.Normalize would split, like UCI's underscored
// entities. The verbatim whitespace-field lookup must match them.
func TestTextsMatchExternalVocabEntities(t *testing.T) {
	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.01 // sharp θ̂ so resolved vs dropped tokens are distinguishable
	m := &warplda.Model{
		Cfg:   cfg,
		V:     3,
		Vocab: []string{"zzz_new_york", "market", "gopher"},
		Cw:    []int32{50, 1, 1, 50, 5, 5}, // word 0 is decisively topic 0
		Ck:    []int64{56, 56},
	}
	h, _ := newTestServer(t, ServeOptions{Sweeps: 30}, registry.Options{},
		map[string]*warplda.Model{"uci": m}, "uci")
	rec, resp := postInfer(t, h,
		`{"texts": ["Zzz_New_York zzz_new_york ZZZ_NEW_YORK zzz_new_york"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Topics) != 1 {
		t.Fatalf("topics = %v", resp.Topics)
	}
	// If the entity resolved, four topic-0 tokens with α=0.01 force
	// θ̂₀ ≈ 1; if it was dropped as OOV the doc is empty and θ̂ is
	// exactly uniform (0.5).
	if resp.Topics[0][0] < 0.9 {
		t.Fatalf("entity token did not resolve; θ̂ = %v", resp.Topics[0])
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{MaxBodyBytes: 64}, registry.Options{},
		map[string]*warplda.Model{"news": m}, "news")
	rec, _ := postInfer(t, h, `{"docs": [[`+strings.Repeat("0,", 100)+`0]]}`)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", rec.Code, rec.Body)
	}
}
