package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"warplda/internal/query"
	"warplda/internal/registry"
)

// The analytics query surface: GET/POST /v1/models/{name}/query/{kind}.
// Every query is admitted through the model's Gate (same depth bound
// and shed semantics as the infer batcher queue), answered from one
// registry snapshot, and streamed row by row under the configured
// row/byte budgets — a response is never materialized in full. Pages
// link via next_cursor; see docs/API.md for the contract.

// queryRequest is the POST body of the topdocs and similar kinds. The
// candidate set is Docs (token ids) or Texts (tokenized against the
// model vocabulary), exactly one. similar additionally takes the query
// document as Query or QueryText.
type queryRequest struct {
	Docs  [][]int32 `json:"docs,omitempty"`
	Texts []string  `json:"texts,omitempty"`

	Query     []int32 `json:"query,omitempty"`
	QueryText string  `json:"query_text,omitempty"`

	Topic  int    `json:"topic,omitempty"`
	Sweeps int    `json:"sweeps,omitempty"`
	Limit  int    `json:"limit,omitempty"`
	Cursor string `json:"cursor,omitempty"`
}

// page is one request's resolved pagination window.
type page struct {
	limit  int
	cursor int
}

// pageOf resolves limit/cursor strings onto the configured bounds:
// empty limit means QueryDefaultLimit, anything above QueryMaxLimit is
// clamped to it, and the cursor must be a value a previous response's
// next_cursor produced.
func (s *Server) pageOf(limitStr, cursorStr string) (page, error) {
	p := page{limit: s.opts.QueryDefaultLimit}
	if limitStr != "" && limitStr != "0" {
		n, err := strconv.Atoi(limitStr)
		if err != nil || n < 0 {
			return p, fmt.Errorf("bad limit %q: want a non-negative integer", limitStr)
		}
		p.limit = n
	}
	if p.limit == 0 || p.limit > s.opts.QueryMaxLimit {
		p.limit = s.opts.QueryMaxLimit
	}
	cursor, err := query.ParseCursor(cursorStr)
	if err != nil {
		return p, err
	}
	p.cursor = cursor
	return p, nil
}

// depth is the selection depth a paginated top-N query needs: the page
// window plus one probe row so truncation (are there more ranked rows
// behind this page?) is decidable without a second selection pass.
func (p page) depth() int { return p.cursor + p.limit + 1 }

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, kind string) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, codeDraining, 0, "server is draining")
		return
	}
	name := r.PathValue("name")
	deadline, err := s.requestDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	// Admission first: a saturated model sheds cheap and early, before
	// any body parsing or snapshot work. The slot is held until the
	// response has streamed — the gate bounds in-flight queries, not
	// just their setup.
	release, err := s.gateFor(name).Enter(deadline)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer release()

	switch kind {
	case "topwords":
		s.queryTopWords(w, r, name)
	case "vocab":
		s.queryVocab(w, r, name)
	case "drift":
		s.queryDrift(w, r, name)
	case "topdocs", "similar":
		s.queryDocs(w, r, name, kind)
	}
}

func (s *Server) queryTopWords(w http.ResponseWriter, r *http.Request, name string) {
	q := r.URL.Query()
	p, err := s.pageOf(q.Get("limit"), q.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	topic, err := topicParam(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	snap, ok := s.acquire(w, name)
	if !ok {
		return
	}
	start := time.Now()
	it, err := query.TopWords(queryModel(snap), topic, p.depth())
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	streamRows(s, w, name, snap.Version, "", p, it, start)
}

func (s *Server) queryVocab(w http.ResponseWriter, r *http.Request, name string) {
	q := r.URL.Query()
	p, err := s.pageOf(q.Get("limit"), q.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	snap, ok := s.acquire(w, name)
	if !ok {
		return
	}
	start := time.Now()
	it := query.VocabSlice(queryModel(snap), q.Get("prefix"))
	streamRows(s, w, name, snap.Version, "", p, it, start)
}

func (s *Server) queryDrift(w http.ResponseWriter, r *http.Request, name string) {
	q := r.URL.Query()
	p, err := s.pageOf(q.Get("limit"), q.Get("cursor"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	against := q.Get("against")
	if against == "" {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0,
			"drift needs ?against=<model or model@iter> to compare with")
		return
	}
	topM := 10
	if v := q.Get("top"); v != "" {
		topM, err = strconv.Atoi(v)
		if err != nil || topM <= 0 {
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "bad top %q: want a positive integer", v)
			return
		}
	}
	// Pin both versions for the duration: snapshots are immutable, so
	// the comparison is consistent even if either name hot-swaps
	// mid-stream. <base>@<iter> names pin an exact published iteration.
	snapA, ok := s.acquire(w, name)
	if !ok {
		return
	}
	snapB, ok := s.acquire(w, against)
	if !ok {
		return
	}
	start := time.Now()
	it, err := query.Drift(queryModel(snapA), queryModel(snapB), topM)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	extra := fmt.Sprintf(`,"against":%s,"against_version":%d`, mustJSON(against), snapB.Version)
	streamRows(s, w, name, snapA.Version, extra, p, it, start)
}

func (s *Server) queryDocs(w http.ResponseWriter, r *http.Request, name, kind string) {
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge, 0,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "bad request body: %v", err)
		return
	}
	p, err := s.pageOf(strconv.Itoa(req.Limit), req.Cursor)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	snap, ok := s.acquire(w, name)
	if !ok {
		return
	}
	docs, status, err := s.resolveDocs(snap, &inferRequest{Docs: req.Docs, Texts: req.Texts})
	if err != nil {
		code := codeBadRequest
		if status == http.StatusRequestEntityTooLarge {
			code = codePayloadTooLarge
		}
		writeError(w, status, code, 0, "%v", err)
		return
	}
	sweeps := req.Sweeps
	if sweeps <= 0 {
		sweeps = s.opts.Sweeps
	}
	if sweeps > s.opts.MaxSweeps {
		sweeps = s.opts.MaxSweeps
	}
	m := queryModel(snap)
	start := time.Now()
	switch kind {
	case "topdocs":
		it, err := query.TopDocs(m, docs, req.Topic, sweeps, s.opts.Seed, p.depth())
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
			return
		}
		streamRows(s, w, name, snap.Version, "", p, it, start)
	case "similar":
		queryDoc := req.Query
		switch {
		case req.Query != nil && req.QueryText != "":
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "set either query or query_text, not both")
			return
		case req.QueryText != "":
			if snap.Vocab == nil {
				writeError(w, http.StatusBadRequest, codeBadRequest, 0,
					"model has no vocabulary; send token ids via query")
				return
			}
			queryDoc = tokenize(snap.Vocab, req.QueryText)
		case req.Query == nil:
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "similar needs a query document (query or query_text)")
			return
		}
		it, err := query.Similar(m, queryDoc, docs, sweeps, s.opts.Seed, p.depth())
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
			return
		}
		streamRows(s, w, name, snap.Version, "", p, it, start)
	}
}

// queryModel adapts a registry snapshot to the query layer's view.
func queryModel(snap *registry.Snapshot) query.Model {
	return query.Model{Engine: snap.Engine, Vocab: snap.Model.Vocab}
}

// topicParam reads the required ?topic= of topwords.
func topicParam(q url.Values) (int, error) {
	v := q.Get("topic")
	if v == "" {
		return 0, nil // topic 0 is the documented default
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad topic %q: want an integer", v)
	}
	return n, nil
}

// streamRows writes one query page: a fixed header, the rows streamed
// straight from the iterator under the row/byte budget, then the
// pagination footer. The first row is pulled before anything is
// written, so builder-stage validation errors (a bad token id in a
// candidate document, say) still get a clean 400 envelope; after that
// first byte the status is committed and a late iterator error is
// reported in-body via a trailing "error" field.
func streamRows[T any](s *Server, w http.ResponseWriter, model string, version int, extra string, p page, it *query.Iter[T], start time.Time) {
	win := query.Skip(it, p.cursor)
	first, ok := win.Next()
	if err := win.Err(); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, 0, "%v", err)
		return
	}
	rows := win
	if ok {
		rows = prepend(first, win)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"model":%s,"version":%d%s,"rows":`, mustJSON(model), version, extra)
	st, err := query.StreamArray(w, rows, query.Budget{MaxRows: p.limit, MaxBytes: s.opts.QueryMaxBytes})
	fmt.Fprintf(w, `,"row_count":%d,"truncated":%t`, st.Rows, st.Truncated)
	if st.Truncated {
		fmt.Fprintf(w, `,"next_cursor":%s`, mustJSON(query.Cursor(p.cursor+st.Rows)))
	}
	if err != nil {
		fmt.Fprintf(w, `,"error":%s`, mustJSON(err.Error()))
	}
	fmt.Fprintf(w, `,"took_ms":%g}`+"\n", float64(time.Since(start).Microseconds())/1000)
	s.queries.Add(1)
	s.qlatency.Record(time.Since(start).Microseconds())
}

// prepend pushes the peeked row back in front of the iterator.
func prepend[T any](row T, it *query.Iter[T]) *query.Iter[T] {
	sent := false
	return query.NewIter(func() (T, bool, error) {
		if !sent {
			sent = true
			return row, true, nil
		}
		r, ok := it.Next()
		return r, ok, it.Err()
	})
}

// mustJSON renders a string as a JSON literal for hand-assembled
// response framing (strings are the only values framed this way).
func mustJSON(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
