// Command warplda-serve answers topic-inference queries over HTTP
// against a trained model snapshot (written by warplda-train -save).
// Per-word proposal tables are built once at startup; each request
// document is folded in with the O(1)-per-token MH engine, and batches
// are sharded across a worker pool.
//
// Usage:
//
//	warplda-train -corpus corpus.uci -topics 100 -iters 200 -save model.bin
//	warplda-serve -model model.bin -addr :8080
//
// Query with token ids, or with raw text when the model has a
// vocabulary:
//
//	curl -s localhost:8080/infer -d '{"docs": [[0, 5, 7, 5]]}'
//	curl -s localhost:8080/infer -d '{"texts": ["stock market prices"], "sweeps": 30}'
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"warplda"
)

func main() {
	var (
		modelPath = flag.String("model", "", "model snapshot written by warplda-train -save (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		sweeps    = flag.Int("sweeps", 20, "default fold-in sweeps per document")
		mhSteps   = flag.Int("mh", 2, "MH proposal pairs per token per sweep")
		workers   = flag.Int("workers", 0, "inference worker goroutines (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 1024, "maximum documents per request")
		seed      = flag.Uint64("seed", 42, "base RNG seed (responses are deterministic in it)")
	)
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "warplda-serve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		log.Fatalf("warplda-serve: %v", err)
	}
	model, err := warplda.ReadModel(f)
	f.Close()
	if err != nil {
		log.Fatalf("warplda-serve: %v", err)
	}
	log.Printf("model: V=%d K=%d vocab=%v logLik=%.4e",
		model.V, model.Cfg.K, model.Vocab != nil, model.LogLik)

	handler, err := NewServer(model, ServeOptions{
		Sweeps:   *sweeps,
		MaxBatch: *maxBatch,
		Seed:     *seed,
		Infer:    warplda.InferOptions{MHSteps: *mhSteps, Workers: *workers},
	})
	if err != nil {
		log.Fatalf("warplda-serve: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("serving on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("warplda-serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("warplda-serve: shutdown: %v", err)
	}
}
