// Command warplda-serve answers topic-inference queries over HTTP
// against trained model snapshots (written by warplda-train -save).
// It serves many models out of one process: models live in a directory
// (one <name>.bin file or <name>/model.bin subdirectory per model),
// load lazily on first request, are evicted least-recently-used under
// a byte budget, and hot-reload with an atomic swap when their file
// changes on disk — in-flight requests finish on the engine they
// started with. Per-word proposal tables are built once per model
// load; each request document is folded in with the O(1)-per-token MH
// engine, and batches are sharded across a worker pool.
//
// Usage:
//
//	warplda-train -corpus corpus.uci -topics 100 -iters 200 -save models/news.bin
//	warplda-serve -models-dir models -default news -addr :8080
//
// or, single-model (the pre-registry interface, still supported):
//
//	warplda-serve -model models/news.bin -addr :8080
//
// The API is versioned under /v1 (the older unversioned paths remain
// as aliases; see docs/API.md for the full route table, the uniform
// error envelope, and the pagination rules). Infer against the default
// model or any model by name; raw text works when the model was
// trained with a vocabulary:
//
//	curl -s localhost:8080/v1/infer -d '{"docs": [[0, 5, 7, 5]]}'
//	curl -s localhost:8080/v1/models/news/infer -d '{"texts": ["stock market prices"], "sweeps": 30}'
//	curl -s localhost:8080/v1/models          # admin: per-model state, bytes, hits, versions
//	curl -s localhost:8080/v1/models/news     # admin: one model's lifecycle stats
//	curl -s localhost:8080/v1/healthz
//
// Topic-analytics queries stream ranked rows under row/byte budgets
// with cursor pagination:
//
//	curl -s 'localhost:8080/v1/models/news/query/topwords?topic=3&limit=20'
//	curl -s 'localhost:8080/v1/models/news/query/vocab?prefix=sto'
//	curl -s 'localhost:8080/v1/models/news/query/drift?against=news@120'
//	curl -s localhost:8080/v1/models/news/query/similar -d '{"query_text": "bond prices", "texts": ["...", "..."]}'
//	curl -s localhost:8080/v1/models/news/query/topdocs -d '{"topic": 3, "docs": [[0,5,7],[2,2,9]]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"warplda"
	"warplda/internal/registry"
)

func main() {
	var (
		modelPath = flag.String("model", "", "single model snapshot to serve (legacy; alternative to -models-dir)")
		modelsDir = flag.String("models-dir", "", "directory of model snapshots: <name>.bin or <name>/model.bin")
		defModel  = flag.String("default", "", "model name the legacy /infer route serves (default: the only/first model, or the -model file's name)")
		maxBytes  = flag.Int64("max-model-bytes", 0, "LRU byte budget across resident models (0 = unlimited)")
		reloadIv  = flag.Duration("reload-interval", 2*time.Second, "poll period for hot-reloading changed model files (0 disables)")
		addr      = flag.String("addr", ":8080", "listen address")
		sweeps    = flag.Int("sweeps", 20, "default fold-in sweeps per document")
		mhSteps   = flag.Int("mh", 2, "MH proposal pairs per token per sweep")
		workers   = flag.Int("workers", 0, "inference worker goroutines per model (0 = GOMAXPROCS)")
		maxBatch  = flag.Int("max-batch", 1024, "maximum documents per request")
		seed      = flag.Uint64("seed", 42, "base RNG seed (responses are deterministic in it)")
		coalesce  = flag.Bool("coalesce", true, "merge concurrent single-document requests into batched engine dispatches")
		batchMax  = flag.Int("batch-max", 32, "documents per coalesced dispatch")
		linger    = flag.Duration("batch-linger", time.Millisecond, "how long a forming batch waits for more requests")
		queueDep  = flag.Int("queue-depth", 256, "admission queue bound per model; beyond it requests shed with 503")
		deadline  = flag.Duration("default-deadline", 0, "server-side deadline for requests without X-Deadline-Ms (0 = none)")
		qLimit    = flag.Int("query-limit", 50, "default rows per query page when the request sets no limit")
		qMaxLimit = flag.Int("query-max-limit", 500, "hard cap on a query page's row limit")
		qMaxBytes = flag.Int64("query-max-bytes", 1<<20, "byte budget for one query page's rows array")
		readTO    = flag.Duration("read-timeout", 30*time.Second, "max duration for reading a full request, body included")
		writeTO   = flag.Duration("write-timeout", 60*time.Second, "max duration per request including inference; must cover the slowest permitted batch (raise alongside -max-batch/large -sweeps)")
		idleTO    = flag.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
	)
	flag.Parse()

	dir, def, restrict, err := resolveModelSource(*modelPath, *modelsDir, *defModel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warplda-serve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	reg, err := registry.Open(dir, registry.Options{
		MaxBytes:       *maxBytes,
		ReloadInterval: *reloadIv,
		Infer:          warplda.InferOptions{MHSteps: *mhSteps, Workers: *workers},
		Restrict:       restrict,
	})
	if err != nil {
		log.Fatalf("warplda-serve: %v", err)
	}
	if def == "" {
		if names := registryNames(reg); len(names) > 0 {
			def = names[0]
		}
	}
	if def != "" {
		// Fail fast on a broken default model instead of 500ing later.
		snap, err := reg.Acquire(def)
		if err != nil {
			log.Fatalf("warplda-serve: default model: %v", err)
		}
		log.Printf("default model %q: V=%d K=%d vocab=%v bytes=%d logLik=%.4e",
			def, snap.Model.V, snap.Model.Cfg.K, snap.Vocab != nil, snap.Bytes, snap.Model.LogLik)
	}

	sv, err := NewServer(reg, ServeOptions{
		DefaultModel:    def,
		Sweeps:          *sweeps,
		MaxBatch:        *maxBatch,
		Seed:            *seed,
		Coalesce:        *coalesce,
		BatchMax:        *batchMax,
		BatchLinger:     *linger,
		QueueDepth:      *queueDep,
		DefaultDeadline: *deadline,

		QueryDefaultLimit: *qLimit,
		QueryMaxLimit:     *qMaxLimit,
		QueryMaxBytes:     *qMaxBytes,
	})
	if err != nil {
		log.Fatalf("warplda-serve: %v", err)
	}

	srv := newHTTPServer(*addr, sv, *readTO, *writeTO, *idleTO)
	go func() {
		log.Printf("serving %s (default model %q) on %s", dir, def, *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("warplda-serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("draining: refusing new inference requests")
	sv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Close the registry on the error path too: log.Fatalf here would
	// exit with the hot-reload poller's cleanup never run.
	if err := srv.Shutdown(ctx); err != nil {
		sv.Close()
		reg.Close()
		log.Printf("warplda-serve: shutdown: %v", err)
		os.Exit(1)
	}
	sv.Close()
	reg.Close()
	log.Print("drained; bye")
}

// resolveModelSource maps the -model/-models-dir/-default flags onto a
// registry directory, default model name, and name allowlist. Exactly
// one of modelPath and modelsDir must be set; a -model path must be a
// <name>.bin file so the registry can address it by name. Single-file
// mode restricts the registry to exactly that name — pointing at one
// file must not remotely expose its sibling snapshots.
func resolveModelSource(modelPath, modelsDir, defModel string) (dir, def string, restrict []string, err error) {
	switch {
	case modelPath == "" && modelsDir == "":
		return "", "", nil, fmt.Errorf("one of -model or -models-dir is required")
	case modelPath != "" && modelsDir != "":
		return "", "", nil, fmt.Errorf("-model and -models-dir are mutually exclusive")
	case modelPath != "":
		base := filepath.Base(modelPath)
		if !strings.HasSuffix(base, ".bin") {
			return "", "", nil, fmt.Errorf("-model %q must be a .bin file", modelPath)
		}
		name := strings.TrimSuffix(base, ".bin")
		if defModel != "" && defModel != name {
			return "", "", nil, fmt.Errorf("-default %q conflicts with -model %q", defModel, modelPath)
		}
		return filepath.Dir(modelPath), name, []string{name}, nil
	default:
		return modelsDir, defModel, nil, nil
	}
}

// registryNames lists the models currently on disk, for defaulting.
func registryNames(reg *registry.Registry) []string {
	var names []string
	for _, mi := range reg.List() {
		names = append(names, mi.Name)
	}
	return names
}

// newHTTPServer wraps h with the full production timeout set. A server
// with only ReadHeaderTimeout lets one slow-dripping request body pin a
// connection (and its handler goroutine) forever; ReadTimeout bounds
// the whole request read, WriteTimeout the response, IdleTimeout
// keep-alive parking.
func newHTTPServer(addr string, h http.Handler, readTO, writeTO, idleTO time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTO,
		WriteTimeout:      writeTO,
		IdleTimeout:       idleTO,
	}
}
