package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warplda"
	"warplda/internal/registry"
)

// TestServeDeltaStreamEquivalence is the end-to-end refresh-correctness
// gate: a model served through a streamed WARPDLT chain must answer
// /v1 inference and query requests byte-identically to a server that
// loaded a full snapshot republished at the same training iteration.
// The deltas are folded by the registry's poller while request traffic
// runs concurrently (run under -race, this also exercises the fold /
// serve interleaving), so it proves both halves of the tentpole: the
// fold is exact, and it happens off the request path.
func TestServeDeltaStreamEquivalence(t *testing.T) {
	docs := make([]string, 0, 40)
	for i := 0; i < 20; i++ {
		docs = append(docs, "gopher compiler runtime goroutine gopher compiler runtime")
		docs = append(docs, "stock market price bond stock market price")
	}
	c := warplda.FromText(docs, warplda.TokenizeOptions{})
	cfg := warplda.Defaults(2)
	cfg.Alpha = 0.2
	smp, err := warplda.NewSampler(warplda.WarpLDA, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iterate := func(n int) {
		for i := 0; i < n; i++ {
			smp.Iterate()
		}
	}
	iterate(40)

	// Server A: base snapshot at iteration 40, fast-polling registry.
	dirA := t.TempDir()
	spec := filepath.Join(dirA, "news")
	pub, err := warplda.NewDeltaPublisher(spec, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(warplda.Snapshot(c, smp, cfg), 40); err != nil {
		t.Fatal(err)
	}
	regA, err := registry.Open(dirA, registry.Options{ReloadInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(regA.Close)
	srvA, err := NewServer(regA, ServeOptions{Sweeps: 30, MaxBatch: 8, DefaultModel: "news"})
	if err != nil {
		t.Fatal(err)
	}
	// Make the model resident: the poller folds deltas only into served
	// engines.
	if rec, _ := postInfer(t, srvA, `{"docs": [[0,1,2]]}`); rec.Code != http.StatusOK {
		t.Fatalf("warm-up infer: status %d: %s", rec.Code, rec.Body)
	}

	// Stream deltas while concurrent traffic hits the server. Every
	// in-flight response must succeed — a swap never takes the model
	// away mid-stream.
	const nDeltas = 4
	stop := make(chan struct{})
	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var req *http.Request
				if (i+w)%2 == 0 {
					req = httptest.NewRequest(http.MethodPost, "/v1/infer",
						strings.NewReader(`{"texts": ["gopher compiler runtime"]}`))
				} else {
					req = httptest.NewRequest(http.MethodGet, "/v1/models/news/query/topwords?topic=0&limit=5", nil)
				}
				rec := httptest.NewRecorder()
				srvA.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					failed.Add(1)
				}
			}
		}(w)
	}
	// perturb nudges a few counts (keeping Ck consistent with Cw) so an
	// interval where the converged toy sampler happens not to move still
	// produces a non-empty delta — empty deltas would make the
	// equivalence below vacuous.
	perturb := func(m *warplda.Model, salt int) {
		for i := 0; i < 3; i++ {
			m.Cw[(salt*13+i*7)%len(m.Cw)]++
		}
		for k := range m.Ck {
			m.Ck[k] = 0
		}
		for w := 0; w < m.V; w++ {
			for k := 0; k < m.Cfg.K; k++ {
				m.Ck[k] += int64(m.Cw[w*m.Cfg.K+k])
			}
		}
	}
	var final *warplda.Model
	for g := 1; g <= nDeltas; g++ {
		iterate(5)
		final = warplda.Snapshot(c, smp, cfg)
		perturb(final, g)
		r, err := pub.Publish(final, 40+5*g)
		if err != nil {
			t.Fatal(err)
		}
		if r.Full || r.Gen != int64(g) {
			t.Fatalf("publish %d: full=%t generation %d, want delta generation %d", g, r.Full, r.Gen, g)
		}
		if r.Cells == 0 {
			t.Fatalf("delta %d is empty; the equivalence check would be vacuous", g)
		}
		// Let the poller catch this link before the next one lands, so
		// the folds interleave with live traffic instead of batching up.
		deadline := time.Now().Add(5 * time.Second)
		for regA.RegistryStats().DeltasApplied < int64(g) {
			if time.Now().After(deadline) {
				t.Fatalf("poller did not fold delta %d (stats: %+v)", g, regA.RegistryStats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if n := failed.Load(); n > 0 {
		t.Fatalf("%d requests failed while deltas streamed in", n)
	}
	st := regA.RegistryStats()
	if st.DeltasApplied != nDeltas || st.DeltaRejected != 0 {
		t.Fatalf("stats after stream: %+v, want %d applied / 0 rejected", st, nDeltas)
	}
	if st.WordsRebuilt == 0 || st.FoldMs < 0 {
		t.Fatalf("fold accounting missing: %+v", st)
	}

	// Server B: the same final state, but as a full snapshot loaded
	// fresh — the reference the folded server must match byte for byte.
	srvB, _ := newTestServer(t, ServeOptions{Sweeps: 30, MaxBatch: 8}, registry.Options{},
		map[string]*warplda.Model{"news": final}, "news")

	requests := []struct {
		name, method, path, body string
	}{
		{"infer ids", http.MethodPost, "/v1/infer", `{"docs": [[0,1,2,0,1],[3,4,5,3]]}`},
		{"infer texts", http.MethodPost, "/v1/infer", `{"texts": ["gopher compiler runtime goroutine","stock market price"]}`},
		{"infer empty doc", http.MethodPost, "/v1/infer", `{"docs": [[]]}`},
		{"topwords 0", http.MethodGet, "/v1/models/news/query/topwords?topic=0&limit=5", ""},
		{"topwords 1", http.MethodGet, "/v1/models/news/query/topwords?topic=1&limit=5", ""},
		{"vocab", http.MethodGet, "/v1/models/news/query/vocab?limit=10", ""},
		{"topdocs", http.MethodPost, "/v1/models/news/query/topdocs",
			`{"texts": ["gopher compiler","stock market","price bond market"], "topic": 0, "limit": 3}`},
		{"similar", http.MethodPost, "/v1/models/news/query/similar",
			`{"query_text": "gopher runtime", "texts": ["gopher compiler","stock market"], "limit": 2}`},
	}
	for _, rq := range requests {
		t.Run(rq.name, func(t *testing.T) {
			a := normalizedResponse(t, srvA, rq.method, rq.path, rq.body)
			b := normalizedResponse(t, srvB, rq.method, rq.path, rq.body)
			if a != b {
				t.Errorf("folded and fresh servers disagree:\nfolded: %s\nfresh:  %s", a, b)
			}
		})
	}

	// The generation is visible on the wire: the folded server reports
	// the chain position, the fresh load reports 0.
	var miA, miB registry.ModelInfo
	getJSON(t, srvA, "/v1/models/news", &miA)
	getJSON(t, srvB, "/v1/models/news", &miB)
	if miA.Generation != nDeltas {
		t.Errorf("folded server reports generation %d, want %d", miA.Generation, nDeltas)
	}
	if miB.Generation != 0 {
		t.Errorf("fresh server reports generation %d, want 0", miB.Generation)
	}
}

// normalizedResponse performs one request and returns the response body
// with the volatile fields (took_ms timing, version/generation counters
// that legitimately differ between a folded and a freshly loaded
// server) removed, leaving exactly the semantic payload.
func normalizedResponse(t *testing.T, h http.Handler, method, path, body string) string {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", method, path, rec.Code, rec.Body)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	delete(m, "took_ms")
	delete(m, "version")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
