package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/registry"
)

// decodeEnvelope asserts a response carries the uniform error envelope
// and returns it.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) apiError {
	t.Helper()
	var e errorEnvelope
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not the envelope: %v (%s)", err, rec.Body)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", e)
	}
	return e.Error
}

// TestV1ErrorEnvelope pins the /v1 error contract: every failing route
// answers with the same JSON envelope, a stable machine-readable code,
// the right status, and — on retryable 503s — a retry_after_ms that
// mirrors the Retry-After header.
func TestV1ErrorEnvelope(t *testing.T) {
	h, _ := testHandler(t)
	cases := map[string]struct {
		method, path, body string
		header             map[string]string
		status             int
		code               string
	}{
		"bad body":            {"POST", "/v1/infer", `{"docs": `, nil, 400, codeBadRequest},
		"unknown field":       {"POST", "/v1/infer", `{"nope": 1}`, nil, 400, codeBadRequest},
		"empty request":       {"POST", "/v1/infer", `{}`, nil, 400, codeBadRequest},
		"docs and texts":      {"POST", "/v1/infer", `{"docs":[[0]],"texts":["x"]}`, nil, 400, codeBadRequest},
		"word out of range":   {"POST", "/v1/infer", `{"docs": [[99999]]}`, nil, 400, codeBadRequest},
		"bad deadline":        {"POST", "/v1/infer", `{"docs": [[0]]}`, map[string]string{"X-Deadline-Ms": "abc"}, 400, codeBadRequest},
		"over max batch":      {"POST", "/v1/infer", `{"docs": [[0],[0],[0],[0],[0],[0],[0],[0],[0]]}`, nil, 413, codePayloadTooLarge},
		"unknown model":       {"POST", "/v1/models/nope/infer", `{"docs": [[0]]}`, nil, 404, codeNotFound},
		"unknown info":        {"GET", "/v1/models/nope", "", nil, 404, codeNotFound},
		"infer wrong method":  {"GET", "/v1/infer", "", nil, 405, codeMethodNotAllowed},
		"stats wrong method":  {"POST", "/v1/stats", "{}", nil, 405, codeMethodNotAllowed},
		"query wrong method":  {"POST", "/v1/models/news/query/topwords", "{}", nil, 405, codeMethodNotAllowed},
		"query bad kind":      {"GET", "/v1/models/news/query/bogus", "", nil, 404, codeNotFound},
		"query bad topic":     {"GET", "/v1/models/news/query/topwords?topic=99", "", nil, 400, codeBadRequest},
		"query bad cursor":    {"GET", "/v1/models/news/query/topwords?cursor=x", "", nil, 400, codeBadRequest},
		"query bad limit":     {"GET", "/v1/models/news/query/topwords?limit=-2", "", nil, 400, codeBadRequest},
		"query deep cursor":   {"GET", "/v1/models/news/query/topwords?cursor=999999", "", nil, 400, codeBadRequest},
		"drift no against":    {"GET", "/v1/models/news/query/drift", "", nil, 400, codeBadRequest},
		"drift bad against":   {"GET", "/v1/models/news/query/drift?against=nope", "", nil, 404, codeNotFound},
		"similar no query":    {"POST", "/v1/models/news/query/similar", `{"docs":[[0]]}`, nil, 400, codeBadRequest},
		"topdocs bad body":    {"POST", "/v1/models/news/query/topdocs", `{`, nil, 400, codeBadRequest},
		"query unknown model": {"GET", "/v1/models/nope/query/topwords", "", nil, 404, codeNotFound},
		"unknown v1 path":     {"GET", "/v1/bogus", "", nil, 404, codeNotFound},
		"unknown v1 subtree":  {"POST", "/v1/models/news/bogus", "{}", nil, 404, codeNotFound},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			for k, v := range tc.header {
				req.Header.Set(k, v)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", rec.Code, tc.status, rec.Body)
			}
			e := decodeEnvelope(t, rec)
			if e.Code != tc.code {
				t.Fatalf("code %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}
}

// TestV1RetryableEnvelope pins the retry metadata: a draining server
// sheds inference and query work with 503/"draining", and shed
// conditions that set Retry-After mirror it in retry_after_ms.
func TestV1RetryableEnvelope(t *testing.T) {
	h, _ := testHandler(t)
	h.Drain()
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/infer", `{"docs": [[0]]}`},
		{"POST", "/infer", `{"docs": [[0]]}`},
		{"GET", "/v1/models/news/query/topwords", ""},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: status %d, want 503", tc.method, tc.path, rec.Code)
		}
		if e := decodeEnvelope(t, rec); e.Code != codeDraining {
			t.Fatalf("%s %s: code %q, want %q", tc.method, tc.path, e.Code, codeDraining)
		}
	}
}

// TestRetryAfterMirrorsHeader drives a deterministic retryable 503 — a
// registry whose byte budget cannot fit the model — and checks the
// envelope's retry_after_ms agrees with the Retry-After header on both
// the infer and query surfaces.
func TestRetryAfterMirrorsHeader(t *testing.T) {
	m := trainTestModel(t)
	h, _ := newTestServer(t, ServeOptions{}, registry.Options{MaxBytes: 1},
		map[string]*warplda.Model{"news": m}, "news")
	for _, tc := range []struct{ method, path, body string }{
		{"POST", "/v1/infer", `{"docs": [[0]]}`},
		{"GET", "/v1/models/news/query/topwords", ""},
	} {
		req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: status %d, want 503 (%s)", tc.method, tc.path, rec.Code, rec.Body)
		}
		e := decodeEnvelope(t, rec)
		if e.Code != codeOverCapacity {
			t.Fatalf("%s %s: code %q, want %q", tc.method, tc.path, e.Code, codeOverCapacity)
		}
		if e.RetryAfterMs <= 0 {
			t.Fatalf("%s %s: retry_after_ms = %d", tc.method, tc.path, e.RetryAfterMs)
		}
		hdr, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil || int64(hdr)*1000 < e.RetryAfterMs {
			t.Fatalf("%s %s: Retry-After %q does not cover retry_after_ms %d",
				tc.method, tc.path, rec.Header().Get("Retry-After"), e.RetryAfterMs)
		}
	}
}

// TestLegacyAliasParity pins that the pre-versioning paths serve the
// same responses as their /v1 forms: byte-identical admin bodies, and
// identical inference results (took_ms aside, which times each call).
func TestLegacyAliasParity(t *testing.T) {
	h, _ := testHandler(t)
	for _, path := range []string{"/healthz", "/models", "/models/news"} {
		legacy := httptest.NewRecorder()
		h.ServeHTTP(legacy, httptest.NewRequest("GET", path, nil))
		v1 := httptest.NewRecorder()
		h.ServeHTTP(v1, httptest.NewRequest("GET", "/v1"+path, nil))
		if legacy.Code != http.StatusOK || v1.Code != http.StatusOK {
			t.Fatalf("%s: status %d / %d", path, legacy.Code, v1.Code)
		}
		if legacy.Body.String() != v1.Body.String() {
			t.Fatalf("%s: legacy and /v1 bodies differ:\n%s\n%s", path, legacy.Body, v1.Body)
		}
	}

	// Inference parity: deterministic engine, so topics/top must match.
	rec1, legacy := postJSON(t, h, "/models/news/infer", `{"docs": [[0,1,2]]}`)
	rec2, v1 := postJSON(t, h, "/v1/models/news/infer", `{"docs": [[0,1,2]]}`)
	if rec1.Code != 200 || rec2.Code != 200 {
		t.Fatalf("status %d / %d", rec1.Code, rec2.Code)
	}
	legacy.TookMs, v1.TookMs = 0, 0
	if !reflect.DeepEqual(legacy, v1) {
		t.Fatalf("legacy %+v != v1 %+v", legacy, v1)
	}

	// Error parity: same status and code either side.
	for _, p := range []string{"/models/nope/infer", "/v1/models/nope/infer"} {
		rec, _ := postJSON(t, h, p, `{"docs": [[0]]}`)
		if rec.Code != 404 {
			t.Fatalf("%s: status %d", p, rec.Code)
		}
		if e := decodeEnvelope(t, rec); e.Code != codeNotFound {
			t.Fatalf("%s: code %q", p, e.Code)
		}
	}
}
