package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := trainFlags{corpusPath: "c.uci", algo: "warplda", topics: 100, m: 2, iters: 10, threads: 1}
	if err := validateFlags(ok); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*trainFlags)
		wantSub string
	}{
		{"missing corpus", func(f *trainFlags) { f.corpusPath = "" }, "-corpus"},
		{"zero iters", func(f *trainFlags) { f.iters = 0 }, "-iters"},
		{"negative iters", func(f *trainFlags) { f.iters = -5 }, "-iters"},
		{"zero topics", func(f *trainFlags) { f.topics = 0 }, "-topics"},
		{"negative topics", func(f *trainFlags) { f.topics = -1 }, "-topics"},
		{"negative m", func(f *trainFlags) { f.m = -1 }, "-m"},
		{"zero threads", func(f *trainFlags) { f.threads = 0 }, "-threads"},
		{"negative budget", func(f *trainFlags) { f.budget = -time.Second }, "-budget"},
		{"unknown algo", func(f *trainFlags) { f.algo = "vibes" }, "-algo"},
		{"publish without name", func(f *trainFlags) { f.publish = "justaname" }, "publish"},
		{"publish with .bin", func(f *trainFlags) { f.publish = "models/news.bin" }, ".bin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			tc.mutate(&f)
			err := validateFlags(f)
			if err == nil {
				t.Fatalf("%+v accepted", f)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The distributed sampler takes workers via -threads too.
	dist := ok
	dist.algo = "distributed"
	dist.threads = 4
	if err := validateFlags(dist); err != nil {
		t.Fatalf("distributed rejected: %v", err)
	}
	// m = 0 is legal for the non-MH samplers.
	cgs := ok
	cgs.algo = "cgs"
	cgs.m = 0
	if err := validateFlags(cgs); err != nil {
		t.Fatalf("cgs with m=0 rejected: %v", err)
	}
}
