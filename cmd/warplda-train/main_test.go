package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := trainFlags{corpusPath: "c.uci", algo: "warplda", topics: 100, m: 2, iters: 10, threads: 1, checkpointKeep: 1}
	if err := validateFlags(ok); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*trainFlags)
		wantSub string
	}{
		{"missing corpus", func(f *trainFlags) { f.corpusPath = "" }, "-corpus"},
		{"zero iters", func(f *trainFlags) { f.iters = 0 }, "-iters"},
		{"negative iters", func(f *trainFlags) { f.iters = -5 }, "-iters"},
		{"zero topics", func(f *trainFlags) { f.topics = 0 }, "-topics"},
		{"negative topics", func(f *trainFlags) { f.topics = -1 }, "-topics"},
		{"negative m", func(f *trainFlags) { f.m = -1 }, "-m"},
		{"zero threads", func(f *trainFlags) { f.threads = 0 }, "-threads"},
		{"negative budget", func(f *trainFlags) { f.budget = -time.Second }, "-budget"},
		{"zero checkpoint-keep", func(f *trainFlags) { f.checkpointKeep = 0 }, "-checkpoint-keep"},
		{"negative checkpoint-keep", func(f *trainFlags) { f.checkpointKeep = -3 }, "-checkpoint-keep"},
		{"unknown algo", func(f *trainFlags) { f.algo = "vibes" }, "-algo"},
		{"publish without name", func(f *trainFlags) { f.publish = "justaname" }, "publish"},
		{"publish with .bin", func(f *trainFlags) { f.publish = "models/news.bin" }, ".bin"},
		{"publish-delta without publish", func(f *trainFlags) { f.publishDelta = true; f.deltaMaxChain = 16 }, "-publish-delta"},
		{"zero delta-max-chain", func(f *trainFlags) {
			f.publish = "models/news"
			f.publishDelta = true
			f.deltaMaxChain = 0
		}, "-delta-max-chain"},
		{"negative max-resident-mb", func(f *trainFlags) { f.stream = true; f.maxResidentMB = -1 }, "-max-resident-mb"},
		{"corpus-cache without stream", func(f *trainFlags) { f.corpusCache = "cache/" }, "-stream"},
		{"max-resident-mb without stream", func(f *trainFlags) { f.maxResidentMB = 128 }, "-stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok
			tc.mutate(&f)
			err := validateFlags(f)
			if err == nil {
				t.Fatalf("%+v accepted", f)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// The distributed sampler takes workers via -threads too.
	dist := ok
	dist.algo = "distributed"
	dist.threads = 4
	if err := validateFlags(dist); err != nil {
		t.Fatalf("distributed rejected: %v", err)
	}
	// m = 0 is legal for the non-MH samplers.
	cgs := ok
	cgs.algo = "cgs"
	cgs.m = 0
	if err := validateFlags(cgs); err != nil {
		t.Fatalf("cgs with m=0 rejected: %v", err)
	}
	// The full streaming flag set is legal together.
	stream := ok
	stream.stream = true
	stream.corpusCache = "cache/"
	stream.maxResidentMB = 256
	if err := validateFlags(stream); err != nil {
		t.Fatalf("stream flags rejected: %v", err)
	}
}

func TestOpenOrBuildCache(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "c.uci")
	if err := os.WriteFile(src, []byte("2\n3\n3\n1 1 2\n1 3 1\n2 2 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")

	mc, err := openOrBuildCache(src, cacheDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.NumDocs() != 2 || mc.NumWords() != 3 || mc.NumTokens() != 4 {
		t.Fatalf("mapped corpus D=%d V=%d T=%d, want 2/3/4", mc.NumDocs(), mc.NumWords(), mc.NumTokens())
	}
	fp := mc.CorpusFingerprint()
	cachePath := mc.Path()
	mc.Close()

	// Second call must reuse the existing cache (same fingerprint).
	mc2, err := openOrBuildCache(src, cacheDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc2.Path() != cachePath || mc2.CorpusFingerprint() != fp {
		t.Fatalf("reuse opened %s fp %08x, want %s fp %08x", mc2.Path(), mc2.CorpusFingerprint(), cachePath, fp)
	}
	mc2.Close()

	// A torn cache is rebuilt from the source, not trusted.
	data, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cachePath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	mc3, err := openOrBuildCache(src, cacheDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mc3.CorpusFingerprint() != fp {
		t.Fatalf("rebuilt cache fingerprint %08x, want %08x", mc3.CorpusFingerprint(), fp)
	}
	mc3.Close()

	// A source regenerated after the cache was built must trigger a
	// rebuild, not a silent reuse of the stale cache.
	if err := os.WriteFile(src, []byte("1\n2\n1\n1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(src, future, future); err != nil {
		t.Fatal(err)
	}
	mc4, err := openOrBuildCache(src, cacheDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mc4.Close()
	if mc4.CorpusFingerprint() == fp {
		t.Fatal("stale cache reused after the source changed")
	}
	if mc4.NumDocs() != 1 || mc4.NumTokens() != 3 {
		t.Fatalf("rebuilt corpus D=%d T=%d, want 1/3", mc4.NumDocs(), mc4.NumTokens())
	}
}
