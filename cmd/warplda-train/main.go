// Command warplda-train trains an LDA model on a UCI bag-of-words corpus
// with any of the repository's samplers and prints the convergence trace
// and the top words of each topic.
//
// Usage:
//
//	warplda-train -corpus corpus.uci -topics 100 -iters 200 -save model.bin
//	warplda-train -corpus docword.nytimes.txt -vocab vocab.nytimes.txt \
//	    -algo warplda -topics 1000 -m 2 -iters 300 -eval-every 10
//
// Long runs are restartable: with -checkpoint-dir the trainer writes a
// CRC-checksummed, atomically-renamed, iteration-stamped snapshot of
// its complete state every -checkpoint-every iterations (keeping the
// newest -checkpoint-keep of them), and SIGINT/SIGTERM make it finish
// the current iteration, checkpoint, and exit (status 3) instead of
// dying mid-pass. A later invocation with -resume continues the run
// bit-identically — same assignments, same log-likelihood trace — as if
// it had never been interrupted. -budget bounds cumulative sampling
// time the same way.
//
//	warplda-train -corpus c.uci -iters 500 -checkpoint-dir ckpt/
//	^C (or kubectl delete pod, spot preemption, ...)
//	warplda-train -corpus c.uci -iters 500 -checkpoint-dir ckpt/ -resume ckpt/
//
// The warplda and distributed samplers checkpoint *sharded*: each
// worker writes its own shard file, bound by a CRC-trailed manifest
// (docs/FORMATS.md), and resume is elastic — a checkpoint written at
// one -threads count resumes at another, repartitioning the state and
// deterministically reseeding the worker RNG streams (bit-identical
// when the count matches, statistically equivalent and explicitly
// logged when not):
//
//	warplda-train -corpus c.uci -threads 2 -checkpoint-dir ckpt/
//	warplda-train -corpus c.uci -threads 8 -checkpoint-dir ckpt/ -resume ckpt/
//	warplda-train -corpus c.uci -algo distributed -threads 3 -checkpoint-dir ckpt/
//	warplda-train -corpus c.uci -algo distributed -threads 5 -checkpoint-dir ckpt/ -resume ckpt/
//
// Corpora larger than RAM train with -stream: the docword file is
// parsed once in bounded memory (-max-resident-mb) into a checksummed
// .warpcorpus cache (-corpus-cache names the directory; default is next
// to the source), which is then memory-mapped read-only — the token
// array lives in page cache, not heap, and later runs (including
// -resume) reuse the cache without touching the source file. Streaming
// and in-memory runs of the same corpus are bit-identical.
//
//	warplda-train -corpus huge.uci -stream -corpus-cache /fast-ssd/cache -iters 100
//
// A model saved with -save is the snapshot cmd/warplda-serve loads,
// written in the versioned, CRC32-checksummed format (WARPLDA v2) via
// temp-file + atomic rename. -publish <model-dir>/<name> installs the
// snapshot into a warplda-serve model directory twice over: as the
// pinned version <name>@<iter>.bin (servable forever, the rollback
// target) and as the bare <name> via an atomically-swapped "latest"
// pointer, so a running server's hot-reload picks the new model up
// without a restart — the full train→serve pipeline in one flag.
//
// Exit status: 0 on completion, 1 on errors, 2 on usage errors, 3 when
// interrupted or over budget (checkpoint written if -checkpoint-dir was
// given; a second signal aborts immediately with status 130).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"warplda"
)

func main() { os.Exit(run()) }

// trainFlags carries the flag values validateFlags checks (split out so
// the validation is unit-testable).
type trainFlags struct {
	corpusPath     string
	algo           string
	topics         int
	m              int
	iters          int
	threads        int
	budget         time.Duration
	publish        string
	publishKeep    int
	publishDelta   bool
	deltaMaxChain  int
	stream         bool
	corpusCache    string
	maxResidentMB  int
	checkpointKeep int
}

// validateFlags rejects configurations that would previously misbehave
// silently (zero-iteration "runs", zero-topic models, negative MH step
// counts).
func validateFlags(f trainFlags) error {
	if f.corpusPath == "" {
		return fmt.Errorf("-corpus is required")
	}
	if f.iters <= 0 {
		return fmt.Errorf("-iters = %d, want > 0", f.iters)
	}
	if f.topics <= 0 {
		return fmt.Errorf("-topics = %d, want > 0", f.topics)
	}
	if f.m < 0 {
		return fmt.Errorf("-m = %d, want >= 0", f.m)
	}
	if f.threads < 1 {
		return fmt.Errorf("-threads = %d, want >= 1", f.threads)
	}
	if f.budget < 0 {
		return fmt.Errorf("-budget = %v, want >= 0", f.budget)
	}
	if f.maxResidentMB < 0 {
		return fmt.Errorf("-max-resident-mb = %d, want >= 0", f.maxResidentMB)
	}
	if f.checkpointKeep < 1 {
		return fmt.Errorf("-checkpoint-keep = %d, want >= 1", f.checkpointKeep)
	}
	if !f.stream && (f.corpusCache != "" || f.maxResidentMB != 0) {
		return fmt.Errorf("-corpus-cache and -max-resident-mb only apply with -stream")
	}
	if f.publish != "" {
		if _, _, err := warplda.PublishModelPath(f.publish); err != nil {
			return err
		}
	}
	if f.publishKeep < 0 {
		return fmt.Errorf("-publish-keep = %d, want >= 0", f.publishKeep)
	}
	if f.publishKeep > 0 && f.publish == "" {
		return fmt.Errorf("-publish-keep only applies with -publish")
	}
	if f.publishDelta && f.publish == "" {
		return fmt.Errorf("-publish-delta only applies with -publish")
	}
	if f.publishDelta && f.deltaMaxChain < 1 {
		return fmt.Errorf("-delta-max-chain = %d, want >= 1", f.deltaMaxChain)
	}
	known := append(append([]string(nil), warplda.Algorithms...), warplda.Distributed)
	for _, a := range known {
		if f.algo == a {
			return nil
		}
	}
	return fmt.Errorf("-algo = %q, want one of %v", f.algo, known)
}

func run() int {
	var (
		corpusPath = flag.String("corpus", "", "UCI bag-of-words file (required)")
		vocabPath  = flag.String("vocab", "", "optional vocabulary file (one word per line)")
		algo       = flag.String("algo", warplda.WarpLDA, "sampler: warplda|cgs|sparselda|aliaslda|flda|lightlda|distributed")
		topics     = flag.Int("topics", 100, "number of topics K")
		m          = flag.Int("m", 2, "MH steps per token (MH-based samplers)")
		iters      = flag.Int("iters", 100, "training iterations (total, including resumed ones)")
		evalEvery  = flag.Int("eval-every", 10, "log-likelihood evaluation interval")
		threads    = flag.Int("threads", 1, "worker threads/shards (parallel samplers: warplda, distributed)")
		seed       = flag.Uint64("seed", 42, "random seed")
		topWords   = flag.Int("top-words", 10, "top words to print per topic")
		maxTopics  = flag.Int("print-topics", 10, "number of topics to print")
		savePath   = flag.String("save", "", "write the trained model snapshot here (for warplda-serve)")
		ckptDir    = flag.String("checkpoint-dir", "", "write resumable checkpoints into this directory")
		ckptEvery  = flag.Int("checkpoint-every", 10, "checkpoint interval in iterations (<= 0: only at interruption and completion)")
		ckptKeep   = flag.Int("checkpoint-keep", 1, "keep the newest N iteration-stamped checkpoints (older ones are deleted after each successful checkpoint)")
		resumePath = flag.String("resume", "", "resume from this checkpoint file (or its directory); reuses the checkpoint's configuration — pass the same -algo")
		publish    = flag.String("publish", "", "after training, atomically install the model as <model-dir>/<name> for a running warplda-serve")
		pubKeep    = flag.Int("publish-keep", 0, "keep only the newest N published @version snapshots, never the one latest points at (0 = keep all)")
		pubDelta   = flag.Bool("publish-delta", false, "with -publish: publish incrementally during training — a full base snapshot once, then a WARPDLT delta file per -checkpoint-every interval that a watching warplda-serve folds into the live engine")
		deltaChain = flag.Int("delta-max-chain", 16, "with -publish-delta: rebase onto a fresh full snapshot after this many chained deltas")
		budget     = flag.Duration("budget", 0, "wall-clock sampling budget (e.g. 2h30m); 0 = none")
		stream     = flag.Bool("stream", false, "out-of-core ingestion: build (or reuse) a .warpcorpus cache and memory-map it instead of loading the corpus into RAM")
		cacheDir   = flag.String("corpus-cache", "", "directory for the .warpcorpus cache (with -stream; default: the corpus file's directory)")
		maxResMB   = flag.Int("max-resident-mb", 0, "ingestion buffer budget in MiB while building the cache (with -stream; 0 = 64)")
	)
	flag.Parse()

	if err := validateFlags(trainFlags{
		corpusPath: *corpusPath, algo: *algo, topics: *topics, m: *m,
		iters: *iters, threads: *threads, budget: *budget, publish: *publish,
		publishKeep: *pubKeep, publishDelta: *pubDelta, deltaMaxChain: *deltaChain,
		stream: *stream, corpusCache: *cacheDir, maxResidentMB: *maxResMB,
		checkpointKeep: *ckptKeep,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "warplda-train: %v\n", err)
		flag.Usage()
		return 2
	}

	var c warplda.CorpusProvider
	if *stream {
		mc, err := openOrBuildCache(*corpusPath, *cacheDir, *maxResMB)
		if err != nil {
			return fatal(err)
		}
		defer mc.Close()
		c = mc
	} else {
		f, err := os.Open(*corpusPath)
		if err != nil {
			return fatal(err)
		}
		cm, err := warplda.ReadUCI(f)
		f.Close()
		if err != nil {
			return fatal(err)
		}
		c = cm
	}
	var vocab []string
	if *vocabPath != "" {
		vf, err := os.Open(*vocabPath)
		if err != nil {
			return fatal(err)
		}
		vocab, err = warplda.ReadVocab(vf)
		vf.Close()
		if err != nil {
			return fatal(err)
		}
		if len(vocab) != c.NumWords() {
			return fatal(fmt.Errorf("vocab has %d words, corpus declares %d", len(vocab), c.NumWords()))
		}
		if cm, ok := c.(*warplda.Corpus); ok {
			cm.Vocab = vocab
		}
	}
	fmt.Printf("corpus: %s\n", warplda.CorpusStats(c))

	cfg := warplda.Defaults(*topics)
	cfg.M = *m
	cfg.Seed = *seed
	cfg.Threads = *threads

	var resume *warplda.Checkpoint
	if *resumePath != "" {
		ck, err := warplda.LoadCheckpoint(*resumePath)
		if err != nil {
			return fatal(err)
		}
		// The checkpoint is authoritative for the run's hyper-parameters.
		// Unset flags inherit its values; a hyper-parameter flag that was
		// explicitly set AND disagrees with the checkpoint is rejected —
		// silently training with different values than the user asked for
		// would be worse than an error. The one sanctioned exception is
		// -threads against a *sharded* checkpoint: worker topology is
		// exactly what elastic resume may change.
		set := map[string]bool{}
		flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
		elasticThreads := set["threads"] && *threads != ck.Cfg.Threads && ck.IsSharded()
		for _, conflict := range []struct {
			flag string
			bad  bool
			got  any
			want any
		}{
			{"topics", *topics != ck.Cfg.K, *topics, ck.Cfg.K},
			{"m", *m != ck.Cfg.M, *m, ck.Cfg.M},
			{"seed", *seed != ck.Cfg.Seed, *seed, ck.Cfg.Seed},
			{"threads", *threads != ck.Cfg.Threads && !elasticThreads, *threads, ck.Cfg.Threads},
		} {
			if set[conflict.flag] && conflict.bad {
				return fatal(fmt.Errorf("-%s %v conflicts with the checkpoint's %v; drop the flag to resume (checkpoints carry their hyper-parameters; -threads may change only against sharded checkpoints)",
					conflict.flag, conflict.got, conflict.want))
			}
		}
		cfg = ck.Cfg
		if elasticThreads {
			cfg.Threads = *threads
		}
		resume = ck
		fmt.Printf("resuming %s from iteration %d (%s sampling time so far; K=%d M=%d seed=%d threads=%d)\n",
			ck.Sampler, ck.Iter, ck.Elapsed.Round(time.Millisecond),
			cfg.K, cfg.M, cfg.Seed, cfg.Threads)
		if elasticThreads {
			fmt.Fprintf(os.Stderr, "warplda-train: elastic resume: checkpoint has %d workers, run uses %d; state will be rebalanced\n",
				ck.Cfg.Threads, cfg.Threads)
		}
	}

	s, err := warplda.NewSampler(*algo, c, cfg)
	if err != nil {
		return fatal(err)
	}

	// Create the checkpoint directory up front: discovering it is
	// missing at the first mid-run checkpoint would abort the run and
	// lose the progress the flag existed to protect. Same for the
	// publish target's directory — failing after hours of training
	// because the model dir was never created would waste the run.
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fatal(err)
		}
	}
	if *publish != "" {
		path, _, err := warplda.PublishModelPath(*publish)
		if err != nil {
			return fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return fatal(err)
		}
	}

	// First signal: finish the current iteration, checkpoint, exit
	// cleanly. Second signal: abort now.
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "warplda-train: %v: finishing current iteration and checkpointing (signal again to abort)\n", sig)
		close(stop)
		<-sigs
		os.Exit(130)
	}()

	// Incremental publishing: a base snapshot on the first interval,
	// then one WARPDLT delta per -checkpoint-every interval, rebased
	// onto a fresh base every -delta-max-chain links. A failed interval
	// publish is reported but never kills the training run — the next
	// interval (or the final publish) retries.
	var deltaPub *warplda.DeltaPublisher
	lastPublished := -1
	if *pubDelta {
		var err error
		if deltaPub, err = warplda.NewDeltaPublisher(*publish, *deltaChain, *pubKeep); err != nil {
			return fatal(err)
		}
	}
	publishIncremental := func(iter int) {
		model := warplda.Snapshot(c, s, cfg)
		if model.Vocab == nil && vocab != nil {
			model.Vocab = vocab
		}
		r, err := deltaPub.Publish(model, iter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warplda-train: publish at iteration %d: %v\n", iter, err)
			return
		}
		lastPublished = iter
		if r.Full {
			fmt.Printf("published base snapshot: iter %d -> %s\n", iter, r.Path)
		} else {
			fmt.Printf("published delta: iter %d -> %s (gen %d, %d cells)\n", iter, r.Path, r.Gen, r.Cells)
		}
	}

	res, err := warplda.TrainCheckpointed(s, c, cfg, warplda.TrainOptions{
		Iters:           *iters,
		EvalEvery:       *evalEvery,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		CheckpointKeep:  *ckptKeep,
		Budget:          *budget,
		Stop:            stop,
		ResumeFrom:      resume,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "warplda-train: "+format+"\n", args...)
		},
		Progress: func(ev warplda.TrainEvent) {
			if p := ev.Eval; p != nil {
				fmt.Printf("iter %4d  logLik %.6e  time %8.2fs  %6.2f Mtoken/s (interval %6.2f)\n",
					p.Iter, p.LogLik, p.Elapsed.Seconds(), p.TokensSec/1e6, p.IntervalTokensSec/1e6)
			}
			if ev.Checkpoint != "" {
				fmt.Printf("checkpoint: iter %d -> %s\n", ev.Iter, ev.Checkpoint)
			}
			// Progress runs between iterations, so the sampler state is
			// quiescent and snapshotting here is safe.
			if deltaPub != nil && *ckptEvery > 0 && ev.Iter%*ckptEvery == 0 && ev.Iter < ev.Iters {
				publishIncremental(ev.Iter)
			}
		},
	})
	signal.Stop(sigs)
	if err != nil {
		return fatal(err)
	}

	if !res.Completed {
		reason := "interrupted"
		if res.OverBudget {
			reason = fmt.Sprintf("budget of %v exhausted", *budget)
		}
		fmt.Fprintf(os.Stderr, "warplda-train: %s at iteration %d/%d\n", reason, res.Iter, *iters)
		if res.CheckpointPath != "" {
			// Reconstruct the full invocation so copy-pasting it resumes the
			// run exactly: same outputs, same eval schedule, checkpointing
			// still on. Hyper-parameters travel inside the checkpoint.
			cmd := fmt.Sprintf("warplda-train -corpus %s -algo %s -iters %d -eval-every %d -checkpoint-dir %s -checkpoint-every %d",
				*corpusPath, *algo, *iters, *evalEvery, *ckptDir, *ckptEvery)
			if *ckptKeep != 1 {
				cmd += fmt.Sprintf(" -checkpoint-keep %d", *ckptKeep)
			}
			if *vocabPath != "" {
				cmd += " -vocab " + *vocabPath
			}
			if *stream {
				// Resuming with -stream reuses the cache: the checkpoint's
				// fingerprint is validated against the cache header, no
				// source re-read.
				cmd += " -stream"
				if *cacheDir != "" {
					cmd += " -corpus-cache " + *cacheDir
				}
				if *maxResMB != 0 {
					cmd += fmt.Sprintf(" -max-resident-mb %d", *maxResMB)
				}
			}
			// Elapsed sampling time is cumulative across resumes, so after a
			// budget stop the same -budget would halt again immediately —
			// suggest it only for signal interruptions.
			if *budget > 0 && !res.OverBudget {
				cmd += " -budget " + budget.String()
			}
			if *savePath != "" {
				cmd += " -save " + *savePath
			}
			if *publish != "" {
				cmd += " -publish " + *publish
			}
			if *pubDelta {
				cmd += fmt.Sprintf(" -publish-delta -delta-max-chain %d", *deltaChain)
			}
			fmt.Fprintf(os.Stderr, "warplda-train: resume with: %s -resume %s\n", cmd, res.CheckpointPath)
		} else {
			fmt.Fprintln(os.Stderr, "warplda-train: no checkpoint written (set -checkpoint-dir); progress lost")
		}
		return 3
	}

	model := warplda.Snapshot(c, s, cfg)
	if model.Vocab == nil && vocab != nil {
		// A mapped corpus carries no vocabulary; attach the one loaded
		// from -vocab so saved snapshots and topic listings use words.
		model.Vocab = vocab
	}
	if *savePath != "" {
		n, err := model.WriteFile(*savePath)
		if err != nil {
			return fatal(err)
		}
		fmt.Printf("model saved to %s (%d bytes, checksummed snapshot v2)\n", *savePath, n)
	}
	if deltaPub != nil {
		// Delta mode owns the publish target: the final state goes out
		// as one more chain link (or a rebase when the chain is full) so
		// a watching server folds it instead of paying a full reload.
		if res.Iter != lastPublished {
			publishIncremental(res.Iter)
		}
	} else if *publish != "" {
		// The pinned version first (servable forever as <name>@<iter>),
		// then the atomically-swapped "latest" pointer the bare <name>
		// follows — the order matters: a crash between the two leaves the
		// registry serving the previous version, never a missing target.
		vPath, vName, err := warplda.PublishModelVersionPath(*publish, res.Iter)
		if err != nil {
			return fatal(err)
		}
		n, err := model.WriteFile(vPath)
		if err != nil {
			return fatal(err)
		}
		latest, err := warplda.PublishModelLatest(*publish, res.Iter)
		if err != nil {
			return fatal(err)
		}
		_, name, err := warplda.PublishModelPath(*publish)
		if err != nil {
			return fatal(err)
		}
		fmt.Printf("model published as %q (%d bytes) and as latest %q -> %s (a watching warplda-serve hot-reloads it; roll back by re-pointing %s at an older @version)\n",
			vName, n, name, vPath, latest)
		if *pubKeep > 0 {
			pruned, err := warplda.PruneModelVersions(*publish, *pubKeep)
			if err != nil {
				return fatal(err)
			}
			for _, p := range pruned {
				fmt.Printf("pruned old version %s\n", p)
			}
		}
	}
	nTop := *maxTopics
	if nTop > cfg.K {
		nTop = cfg.K
	}
	for k := 0; k < nTop; k++ {
		fmt.Printf("topic %3d:", k)
		for _, w := range model.TopWords(k, *topWords) {
			fmt.Printf(" %s", w)
		}
		fmt.Println()
	}
	return 0
}

// sourceStamp is the source-file identity recorded beside a cache
// (<cache>.src) when it is built: reuse requires the current source to
// match it exactly. Size+mtime catches regeneration in either time
// direction (touch, cp -p restoring an older file, in-place rewrite) —
// the same class of staleness the serving registry guards with
// inode-aware change detection.
func sourceStamp(st os.FileInfo) string {
	return fmt.Sprintf("%d %d\n", st.Size(), st.ModTime().UnixNano())
}

// openOrBuildCache returns the mapped corpus for corpusPath's
// .warpcorpus cache, building the cache from the source file first when
// no valid one exists. A cache that fails to open (missing, torn,
// corrupt, stale format) or whose recorded source identity no longer
// matches the docword file is rebuilt rather than trusted —
// regenerating the source must never leave training silently running
// on the old corpus under the same name.
func openOrBuildCache(corpusPath, cacheDir string, maxResMB int) (*warplda.MappedCorpus, error) {
	cachePath := warplda.CorpusCachePath(corpusPath, cacheDir)
	srcSt, err := os.Stat(corpusPath)
	if err != nil {
		return nil, err
	}
	stampPath := cachePath + ".src"
	if stamp, err := os.ReadFile(stampPath); err != nil || string(stamp) != sourceStamp(srcSt) {
		// No stamp (pre-stamp cache, or a crash between cache rename and
		// stamp write) is treated as stale, not trusted: the cache cannot
		// prove it matches the named source, so it is rebuilt once and
		// stamped. Quiet when the cache itself does not exist yet.
		if _, cerr := os.Stat(cachePath); cerr == nil {
			fmt.Fprintf(os.Stderr, "warplda-train: cannot confirm %s still matches its cache; rebuilding\n", corpusPath)
		}
	} else if mc, err := warplda.OpenMappedCorpus(cachePath); err == nil {
		fmt.Printf("corpus cache: reusing %s (fingerprint %08x)\n", cachePath, mc.CorpusFingerprint())
		return mc, nil
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "warplda-train: rebuilding corpus cache: %v\n", err)
	}
	if cacheDir != "" {
		if err := os.MkdirAll(cacheDir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(corpusPath)
	if err != nil {
		return nil, err
	}
	info, err := warplda.BuildCorpusCache(f, cachePath, warplda.CorpusStreamOptions{
		MaxResidentBytes: int64(maxResMB) << 20,
	})
	f.Close()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(stampPath, []byte(sourceStamp(srcSt)), 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("corpus cache: built %s (%s, fingerprint %08x)\n", cachePath, info.Stats(), info.Fingerprint)
	return warplda.OpenMappedCorpus(cachePath)
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "warplda-train: %v\n", err)
	return 1
}
