// Command warplda-train trains an LDA model on a UCI bag-of-words corpus
// with any of the repository's samplers and prints the convergence trace
// and the top words of each topic.
//
// Usage:
//
//	warplda-train -corpus corpus.uci -topics 100 -iters 200 -save model.bin
//	warplda-train -corpus docword.nytimes.txt -vocab vocab.nytimes.txt \
//	    -algo warplda -topics 1000 -m 2 -iters 300 -eval-every 10
//
// A model saved with -save is the snapshot cmd/warplda-serve loads. It
// is written in the versioned, CRC32-checksummed snapshot format
// (WARPLDA v2) and lands via temp-file + atomic rename, so a serving
// process hot-watching the path can never load a torn write: it either
// sees the old complete file or the new complete file, and anything in
// between fails the checksum and is refused.
package main

import (
	"flag"
	"fmt"
	"os"

	"warplda"
)

func main() {
	var (
		corpusPath = flag.String("corpus", "", "UCI bag-of-words file (required)")
		vocabPath  = flag.String("vocab", "", "optional vocabulary file (one word per line)")
		algo       = flag.String("algo", warplda.WarpLDA, "sampler: warplda|cgs|sparselda|aliaslda|flda|lightlda")
		topics     = flag.Int("topics", 100, "number of topics K")
		m          = flag.Int("m", 2, "MH steps per token (MH-based samplers)")
		iters      = flag.Int("iters", 100, "training iterations")
		evalEvery  = flag.Int("eval-every", 10, "log-likelihood evaluation interval")
		threads    = flag.Int("threads", 1, "worker threads (warplda only)")
		seed       = flag.Uint64("seed", 42, "random seed")
		topWords   = flag.Int("top-words", 10, "top words to print per topic")
		maxTopics  = flag.Int("print-topics", 10, "number of topics to print")
		savePath   = flag.String("save", "", "write the trained model snapshot here (for warplda-serve)")
	)
	flag.Parse()

	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "warplda-train: -corpus is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*corpusPath)
	if err != nil {
		fatal(err)
	}
	c, err := warplda.ReadUCI(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if *vocabPath != "" {
		vf, err := os.Open(*vocabPath)
		if err != nil {
			fatal(err)
		}
		vocab, err := warplda.ReadVocab(vf)
		vf.Close()
		if err != nil {
			fatal(err)
		}
		if len(vocab) != c.V {
			fatal(fmt.Errorf("vocab has %d words, corpus declares %d", len(vocab), c.V))
		}
		c.Vocab = vocab
	}
	fmt.Printf("corpus: %s\n", c.Stats())

	cfg := warplda.Defaults(*topics)
	cfg.M = *m
	cfg.Seed = *seed
	cfg.Threads = *threads
	s, err := warplda.NewSampler(*algo, c, cfg)
	if err != nil {
		fatal(err)
	}

	run := warplda.TrainSampler(s, c, cfg, *iters, *evalEvery)
	for _, p := range run.Points {
		fmt.Printf("iter %4d  logLik %.6e  time %8.2fs  %6.2f Mtoken/s\n",
			p.Iter, p.LogLik, p.Elapsed.Seconds(), p.TokensSec/1e6)
	}

	model := warplda.Snapshot(c, s, cfg)
	if *savePath != "" {
		n, err := model.WriteFile(*savePath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s (%d bytes, checksummed snapshot v2)\n", *savePath, n)
	}
	n := *maxTopics
	if n > *topics {
		n = *topics
	}
	for k := 0; k < n; k++ {
		fmt.Printf("topic %3d:", k)
		for _, w := range model.TopWords(k, *topWords) {
			fmt.Printf(" %s", w)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "warplda-train: %v\n", err)
	os.Exit(1)
}
