// Command lda-gen generates synthetic corpora in the UCI bag-of-words
// format, either from the LDA generative process (topic structure a
// sampler can recover) or with plain Zipf word frequencies (for systems
// experiments).
//
// Usage:
//
//	lda-gen -docs 10000 -vocab 5000 -topics 50 -len 150 -o corpus.uci
//	lda-gen -zipf -docs 10000 -vocab 5000 -len 150 -o zipf.uci
package main

import (
	"flag"
	"fmt"
	"os"

	"warplda/internal/corpus"
)

func main() {
	var (
		docs   = flag.Int("docs", 1000, "number of documents")
		vocab  = flag.Int("vocab", 2000, "vocabulary size")
		topics = flag.Int("topics", 20, "number of generative topics (LDA mode)")
		length = flag.Float64("len", 100, "mean document length")
		alpha  = flag.Float64("alpha", 0.1, "document-topic Dirichlet (LDA mode)")
		beta   = flag.Float64("beta", 0.01, "topic-word Dirichlet (LDA mode)")
		zipf   = flag.Bool("zipf", false, "Zipf mode instead of LDA-generative")
		zipfS  = flag.Float64("zipf-s", 1.0, "Zipf exponent (Zipf mode)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	var c *corpus.Corpus
	if *zipf {
		c = corpus.GenerateZipf(*docs, *vocab, *length, *zipfS, *seed)
	} else {
		var err error
		c, err = corpus.GenerateLDA(corpus.SyntheticConfig{
			D: *docs, V: *vocab, K: *topics, MeanLen: *length,
			Alpha: *alpha, Beta: *beta, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := corpus.WriteUCI(w, c); err != nil {
		fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lda-gen: wrote %s\n", c.Stats())
}
