// Command lda-gen generates synthetic corpora in the UCI bag-of-words
// format, either from the LDA generative process (topic structure a
// sampler can recover) or with plain Zipf word frequencies (for systems
// experiments).
//
// Usage:
//
//	lda-gen -docs 10000 -vocab 5000 -topics 50 -len 150 -o corpus.uci
//	lda-gen -zipf -docs 10000 -vocab 5000 -len 150 -o zipf.uci
//
// With -uci the docword stream is generated without materializing the
// corpus — memory stays O(one document) however large -docs is — so CI
// and tests can synthesize arbitrarily large files (e.g. to exercise
// warplda-train -stream) instead of checking in fixtures. The bytes
// are identical to the materializing path for the same flags.
//
//	lda-gen -uci -zipf -docs 50000000 -vocab 100000 -len 300 -o huge.uci
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"warplda/internal/corpus"
)

// lazyFile defers os.Create until the first Write.
type lazyFile struct {
	path string
	f    *os.File
}

func (l *lazyFile) Write(p []byte) (int, error) {
	if l.f == nil {
		f, err := os.Create(l.path)
		if err != nil {
			return 0, err
		}
		l.f = f
	}
	return l.f.Write(p)
}

func (l *lazyFile) Close() error {
	if l.f == nil {
		return nil
	}
	return l.f.Close()
}

func main() {
	var (
		docs   = flag.Int("docs", 1000, "number of documents")
		vocab  = flag.Int("vocab", 2000, "vocabulary size")
		topics = flag.Int("topics", 20, "number of generative topics (LDA mode)")
		length = flag.Float64("len", 100, "mean document length")
		alpha  = flag.Float64("alpha", 0.1, "document-topic Dirichlet (LDA mode)")
		beta   = flag.Float64("beta", 0.01, "topic-word Dirichlet (LDA mode)")
		zipf   = flag.Bool("zipf", false, "Zipf mode instead of LDA-generative")
		zipfS  = flag.Float64("zipf-s", 1.0, "Zipf exponent (Zipf mode)")
		seed   = flag.Uint64("seed", 1, "random seed")
		uci    = flag.Bool("uci", false, "stream the UCI output without materializing the corpus (constant memory; for arbitrarily large -docs)")
		out    = flag.String("o", "-", "output path ('-' for stdout)")
	)
	flag.Parse()

	// The output file is created lazily, on the first byte written:
	// generation errors (invalid config) must not truncate a
	// pre-existing output file.
	var w io.Writer = os.Stdout
	if *out != "-" {
		lw := &lazyFile{path: *out}
		defer lw.Close()
		w = lw
	}

	ldaCfg := corpus.SyntheticConfig{
		D: *docs, V: *vocab, K: *topics, MeanLen: *length,
		Alpha: *alpha, Beta: *beta, Seed: *seed,
	}

	if *uci {
		var st corpus.Stats
		var err error
		if *zipf {
			st, err = corpus.StreamZipfUCI(w, *docs, *vocab, *length, *zipfS, *seed)
		} else {
			st, err = corpus.StreamLDAUCI(w, ldaCfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lda-gen: wrote %s (streamed)\n", st)
		return
	}

	var c *corpus.Corpus
	if *zipf {
		c = corpus.GenerateZipf(*docs, *vocab, *length, *zipfS, *seed)
	} else {
		var err error
		c, err = corpus.GenerateLDA(ldaCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := corpus.WriteUCI(w, c); err != nil {
		fmt.Fprintf(os.Stderr, "lda-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lda-gen: wrote %s\n", c.Stats())
}
