package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func testCorpus(seed uint64) *corpus.Corpus {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 300, V: 400, K: 8, MeanLen: 50, Alpha: 0.08, Beta: 0.05, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func defaultCfg(k int) sampler.Config {
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	return cfg
}

func TestNewValidates(t *testing.T) {
	c := testCorpus(1)
	if _, err := New(c, sampler.Config{K: 0, Alpha: 1, Beta: 1, M: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := New(c, sampler.Config{K: 4, Alpha: 1, Beta: 1, M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	bad := &corpus.Corpus{V: 2, Docs: [][]int32{{5}}}
	if _, err := New(bad, defaultCfg(4)); err == nil {
		t.Error("invalid corpus accepted")
	}
}

func TestAssignmentsShapeAndRange(t *testing.T) {
	c := testCorpus(2)
	w, err := New(c, defaultCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 3; it++ {
		z := w.Assignments()
		if len(z) != len(c.Docs) {
			t.Fatalf("assignments for %d docs, want %d", len(z), len(c.Docs))
		}
		for d := range z {
			if len(z[d]) != len(c.Docs[d]) {
				t.Fatalf("doc %d: %d assignments for %d tokens", d, len(z[d]), len(c.Docs[d]))
			}
			for _, k := range z[d] {
				if k < 0 || int(k) >= w.K() {
					t.Fatalf("topic %d out of range", k)
				}
			}
		}
		w.Iterate()
	}
}

// countsFromAssignments recomputes ck from scratch.
func countsFromAssignments(z [][]int32, k int) []int32 {
	ck := make([]int32, k)
	for _, zd := range z {
		for _, t := range zd {
			ck[t]++
		}
	}
	return ck
}

func TestGlobalCountsConsistent(t *testing.T) {
	c := testCorpus(3)
	w, err := New(c, defaultCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 4; it++ {
		w.Iterate()
		want := countsFromAssignments(w.Assignments(), 8)
		if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
			t.Fatalf("iteration %d: ck %v, want %v", it, got, want)
		}
	}
}

func TestTokenCountConserved(t *testing.T) {
	c := testCorpus(4)
	w, err := New(c, defaultCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	total := int32(c.NumTokens())
	for it := 0; it < 5; it++ {
		w.Iterate()
		var sum int32
		for _, v := range w.GlobalCounts() {
			sum += v
		}
		if sum != total {
			t.Fatalf("iteration %d: ck sums to %d, want %d", it, sum, total)
		}
	}
}

func TestLikelihoodImproves(t *testing.T) {
	c := testCorpus(5)
	cfg := defaultCfg(8)
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 30; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("log-likelihood did not improve: %.1f -> %.1f", before, after)
	}
	// It must improve substantially, not cosmetically: at least 5% of the
	// gap between random init and zero.
	if after-before < 0.05*math.Abs(before)*0.1 {
		t.Fatalf("improvement %.1f suspiciously small from %.1f", after-before, before)
	}
}

func TestRecoversPlantedStructure(t *testing.T) {
	// Two disjoint word blocks. A correct sampler must assign the blocks
	// to different topics almost perfectly.
	c := &corpus.Corpus{V: 40, Docs: make([][]int32, 60)}
	for d := range c.Docs {
		doc := make([]int32, 40)
		for n := range doc {
			if d%2 == 0 {
				doc[n] = int32(n % 20)
			} else {
				doc[n] = int32(20 + n%20)
			}
		}
		c.Docs[d] = doc
	}
	cfg := sampler.Config{K: 2, Alpha: 0.5, Beta: 0.1, M: 2, Seed: 7}
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		w.Iterate()
	}
	z := w.Assignments()
	agree := 0
	for d := range z {
		// Majority topic of the doc must be uniform within doc class.
		count := [2]int{}
		for _, k := range z[d] {
			count[k]++
		}
		maj := 0
		if count[1] > count[0] {
			maj = 1
		}
		purity := float64(count[maj]) / float64(len(z[d]))
		if purity > 0.9 {
			agree++
		}
	}
	if agree < 50 {
		t.Fatalf("only %d/60 documents converged to a pure topic", agree)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	c := testCorpus(6)
	cfg := defaultCfg(8)
	a, _ := New(c, cfg)
	b, _ := New(c, cfg)
	for i := 0; i < 3; i++ {
		a.Iterate()
		b.Iterate()
	}
	if !reflect.DeepEqual(a.Assignments(), b.Assignments()) {
		t.Fatal("same seed, different trajectories")
	}
	cfg2 := cfg
	cfg2.Seed++
	d, _ := New(c, cfg2)
	d.Iterate()
	a2, _ := New(c, cfg)
	a2.Iterate()
	if reflect.DeepEqual(d.Assignments(), a2.Assignments()) {
		t.Fatal("different seeds, identical trajectory")
	}
}

func TestParallelMatchesInvariants(t *testing.T) {
	c := testCorpus(8)
	cfg := defaultCfg(8)
	cfg.Threads = 4
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		w.Iterate()
	}
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel ck inconsistent: %v vs %v", got, want)
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("parallel run did not converge: %.1f -> %.1f", before, after)
	}
}

func TestHashCounterPathConverges(t *testing.T) {
	c := testCorpus(9)
	cfg := defaultCfg(8)
	w, err := NewWithOptions(c, cfg, Options{ForceHash: true})
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("hash-counter path did not converge: %.1f -> %.1f", before, after)
	}
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatal("hash-counter ck inconsistent")
	}
}

func TestDenseAliasAblationConverges(t *testing.T) {
	c := testCorpus(10)
	cfg := defaultCfg(8)
	w, err := NewWithOptions(c, cfg, Options{DisableSparseAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("dense-alias path did not converge: %.1f -> %.1f", before, after)
	}
}

func TestLargeKUsesHashAndConverges(t *testing.T) {
	c := testCorpus(11)
	cfg := sampler.PaperDefaults(2048) // above DenseThreshold
	cfg.M = 1
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 10; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("large-K run did not converge: %.1f -> %.1f", before, after)
	}
}

func TestEmptyDocsHandled(t *testing.T) {
	c := &corpus.Corpus{V: 5, Docs: [][]int32{{}, {1, 2}, {}, {0, 0, 4}, {}}}
	w, err := New(c, defaultCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w.Iterate()
	}
	z := w.Assignments()
	if len(z[0]) != 0 || len(z[2]) != 0 || len(z[4]) != 0 {
		t.Fatal("empty docs got assignments")
	}
}

func TestContiguousCuts(t *testing.T) {
	cuts := contiguousCuts([]int{5, 5, 5, 5}, 2)
	if !reflect.DeepEqual(cuts, []int{0, 2, 4}) {
		t.Fatalf("cuts = %v", cuts)
	}
	cuts = contiguousCuts([]int{100, 1, 1, 1}, 2)
	if cuts[0] != 0 || cuts[2] != 4 {
		t.Fatalf("cuts = %v", cuts)
	}
	// More parts than items: trailing empty ranges, all indices valid.
	cuts = contiguousCuts([]int{3}, 4)
	if len(cuts) != 5 || cuts[4] != 1 {
		t.Fatalf("cuts = %v", cuts)
	}
}

func BenchmarkIterate(b *testing.B) {
	c := testCorpus(12)
	cfg := defaultCfg(64)
	w, err := New(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

func TestDocProposalAliasAblationConverges(t *testing.T) {
	c := testCorpus(13)
	cfg := defaultCfg(8)
	w, err := NewWithOptions(c, cfg, Options{DocProposalAlias: true})
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("doc-alias path did not converge: %.1f -> %.1f", before, after)
	}
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatal("doc-alias ck inconsistent")
	}
}

func TestShuffledTokensStillRun(t *testing.T) {
	c := testCorpus(14)
	cfg := defaultCfg(8)
	w, err := NewWithOptions(c, cfg, Options{ShuffleTokens: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Iterate()
	}
	// Global counts must still match the assignment multiset.
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatal("shuffled ck inconsistent")
	}
}

func TestAsymmetricAlphaConverges(t *testing.T) {
	c := testCorpus(15)
	cfg := sampler.PaperDefaults(8)
	cfg.M = 2
	cfg.AlphaVec = []float64{2, 1, 0.5, 0.5, 0.2, 0.2, 0.1, 0.1}
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJointAsym(c, w.Assignments(), cfg.AlphaVec, cfg.Beta)
	for i := 0; i < 25; i++ {
		w.Iterate()
	}
	after := eval.LogJointAsym(c, w.Assignments(), cfg.AlphaVec, cfg.Beta)
	if after <= before {
		t.Fatalf("asymmetric run did not converge: %.1f -> %.1f", before, after)
	}
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatal("asymmetric ck inconsistent")
	}
}

func TestAsymmetricAlphaBiasesTopics(t *testing.T) {
	// An extreme prior: topic 0 gets 100x the prior mass of the rest. On
	// a structureless corpus topic 0 must end up clearly over-represented.
	c := corpus.GenerateZipf(200, 300, 40, 0.5, 16)
	cfg := sampler.PaperDefaults(4)
	cfg.M = 2
	cfg.AlphaVec = []float64{10, 0.1, 0.1, 0.1}
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		w.Iterate()
	}
	ck := w.GlobalCounts()
	total := int32(c.NumTokens())
	if float64(ck[0]) < 0.4*float64(total) {
		t.Fatalf("heavy-prior topic holds only %d/%d tokens", ck[0], total)
	}
}

func TestAlphaVecValidation(t *testing.T) {
	c := testCorpus(17)
	cfg := sampler.PaperDefaults(4)
	cfg.AlphaVec = []float64{1, 1} // wrong length
	if _, err := New(c, cfg); err == nil {
		t.Fatal("wrong-length AlphaVec accepted")
	}
	cfg.AlphaVec = []float64{1, 1, -1, 1}
	if _, err := New(c, cfg); err == nil {
		t.Fatal("negative AlphaVec accepted")
	}
}

func TestIntraWordParallelism(t *testing.T) {
	// A corpus with one extremely frequent word (Lw > max(K, 1024)) plus a
	// long tail, run with several threads: the heavy column must take the
	// cooperative path and the sampler must stay consistent and converge.
	c := &corpus.Corpus{V: 50, Docs: make([][]int32, 200)}
	for d := range c.Docs {
		doc := make([]int32, 30)
		for n := range doc {
			if n < 10 {
				doc[n] = 0 // word 0 appears 2000 times total
			} else {
				doc[n] = int32(1 + (d+n)%49)
			}
		}
		c.Docs[d] = doc
	}
	cfg := defaultCfg(8)
	cfg.Threads = 4
	w, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.heavyCols) != 1 || w.heavyCols[0] != 0 {
		t.Fatalf("heavy columns = %v, want [0]", w.heavyCols)
	}
	before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		w.Iterate()
	}
	after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("intra-word path did not converge: %.1f -> %.1f", before, after)
	}
	want := countsFromAssignments(w.Assignments(), cfg.K)
	if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
		t.Fatal("intra-word ck inconsistent")
	}
	// Disabled variant must not classify anything heavy.
	w2, err := NewWithOptions(c, cfg, Options{DisableIntraWord: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.heavyCols) != 0 {
		t.Fatal("DisableIntraWord ignored")
	}
}

// resumePair runs the checkpoint/resume contract for one configuration:
// an uninterrupted 2n-iteration run against an n-iteration run whose
// state is moved into a fresh sampler that runs the remaining n.
func resumePair(t *testing.T, c *corpus.Corpus, cfg sampler.Config, n int) {
	t.Helper()
	mk := func() *Warp {
		w, err := New(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	full, half, fresh := mk(), mk(), mk()
	for i := 0; i < 2*n; i++ {
		full.Iterate()
	}
	for i := 0; i < n; i++ {
		half.Iterate()
	}
	var buf bytes.Buffer
	if err := half.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.GlobalCounts(), half.GlobalCounts()) {
		t.Fatal("global counts differ immediately after restore")
	}
	for i := 0; i < n; i++ {
		fresh.Iterate()
	}
	if !reflect.DeepEqual(fresh.Assignments(), full.Assignments()) {
		t.Fatal("resumed run diverged from uninterrupted run")
	}
	if !reflect.DeepEqual(fresh.GlobalCounts(), full.GlobalCounts()) {
		t.Fatal("resumed global counts diverged")
	}
}

func TestStateResumeBitIdenticalSerial(t *testing.T) {
	resumePair(t, testCorpus(20), defaultCfg(8), 4)
}

func TestStateResumeBitIdenticalThreaded(t *testing.T) {
	cfg := defaultCfg(8)
	cfg.Threads = 3
	resumePair(t, testCorpus(21), cfg, 4)
}

func TestStateResumeBitIdenticalAsymmetricAlpha(t *testing.T) {
	cfg := defaultCfg(6)
	alphas := make([]float64, cfg.K)
	for k := range alphas {
		alphas[k] = 0.05 * float64(k+1)
	}
	cfg.AlphaVec = alphas
	resumePair(t, testCorpus(22), cfg, 3)
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	c := testCorpus(23)
	cfg := defaultCfg(8)
	donor, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	donor.Iterate()
	var buf bytes.Buffer
	if err := donor.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	badCk := append([]byte(nil), blob...)
	// Flip an assignment byte so ck no longer matches the histogram: the
	// payload section starts right after tag(5) + workers(8) + len(8).
	badCk[5+8+8] ^= 1

	cases := []struct {
		name string
		blob []byte
		cfg  sampler.Config
	}{
		{"truncated", blob[:len(blob)-9], cfg},
		{"bad tag", append([]byte("xxxx\x01"), blob[5:]...), cfg},
		{"count mismatch", badCk, cfg},
		{"wrong K", blob, func() sampler.Config { c2 := cfg; c2.K = 9; return c2 }()},
		{"wrong threads", blob, func() sampler.Config { c2 := cfg; c2.Threads = 4; return c2 }()},
	}
	for _, tc := range cases {
		target, err := New(c, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		before := sampler.CopyAssignments(target.Assignments())
		if err := target.RestoreFrom(bytes.NewReader(tc.blob)); err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
			continue
		}
		if !reflect.DeepEqual(before, target.Assignments()) {
			t.Errorf("%s: failed restore mutated assignments", tc.name)
		}
		target.Iterate() // still usable
	}
}
