// Package core implements WarpLDA, the paper's primary contribution: an
// O(1)-per-token Metropolis–Hastings sampler for LDA whose randomly
// accessed memory per document (or word) is O(K).
//
// The sampler realizes the MCEM algorithm of Section 4.2: it seeks a MAP
// estimate of (Θ, Φ) with Z integrated out, alternating an E-step that
// samples every topic assignment from
//
//	q(z_dn = k) ∝ (C_dk + α) (C_wk + β) / (C_k + β̄)        (Eq. 5)
//
// with all counts frozen (delayed update), and an implicit M-step that
// recomputes counts. Freezing the counts is what permits the reordering
// strategy of Section 4.4: proposals for *all* tokens are drawn before
// any acceptance rate is computed, so one full iteration becomes
//
//	word phase  (VisitByColumn): finish the doc-proposal MH chains,
//	            then draw word proposals  — touches only c_w and c_k;
//	doc phase   (VisitByRow):   finish the word-proposal MH chains,
//	            then draw doc proposals   — touches only c_d and c_k,
//
// exactly Algorithm 2 in the paper's appendix. Neither count matrix is
// stored: c_w and c_d are recomputed on the fly for the row/column being
// visited, in a reused buffer that fits in cache.
//
// Threading model (docs/PERFORMANCE.md): work is cut into contiguous
// chunks whose token payloads fit in a per-core L2 budget, assigned to
// workers with the deterministic greedy partitioner; each worker
// accumulates global-count updates into a cache-line-padded per-thread
// delta buffer that is merged exactly once per pass. Columns too heavy
// for one worker go through the staged cooperative passes in heavy.go.
package core

import (
	"fmt"
	"io"
	"sync"

	"warplda/internal/alias"
	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sampler"
	"warplda/internal/sparse"
	"warplda/internal/tcount"
)

// Cache-layout constants of the threaded passes.
const (
	// cacheLineI32 is one 64-byte cache line in int32 units. Per-thread
	// delta buffers are padded to this granularity so no two workers ever
	// write the same line (false sharing).
	cacheLineI32 = 16
	// l2ChunkBytes is the token-payload budget of one work chunk: half of
	// a typical 1 MiB per-core L2, leaving the other half for the row
	// counter, the alias scratch, and the structure arrays.
	l2ChunkBytes = 512 << 10
	// heavyBatchBytes bounds the partial-count scratch of the staged
	// intra-word passes (heavy.go): one batch needs
	// (threads+1)·batch·paddedK int32 of it.
	heavyBatchBytes = 8 << 20
)

// Options tune implementation details of the sampler. The zero value is
// the paper's configuration.
type Options struct {
	// DenseThreshold is the topic count below which per-row counters use
	// a dense array instead of the Section 5.4 hash table. 0 means 1024.
	DenseThreshold int
	// ForceHash forces hash-table counters regardless of K (for the
	// hash-vs-dense ablation).
	ForceHash bool
	// DisableSparseAlias replaces the sparse alias table for the word
	// proposal with a dense K-sized table (ablation; O(K) per word).
	DisableSparseAlias bool
	// DocProposalAlias draws the doc proposal from a per-document sparse
	// alias table over c_d instead of random positioning (the paper's
	// Section 4.3 lists both as O(1) options; positioning avoids the
	// build). Ablation knob.
	DocProposalAlias bool
	// ShuffleTokens randomizes the CSC entry order, defeating the sorted
	// within-column layout of Section 5.2 (cache ablation). Assignments()
	// then reports per-document topic multisets in scrambled token order,
	// so it is for performance measurements only.
	ShuffleTokens bool
	// DisableIntraWord turns off Section 5.4's intra-word parallelism:
	// with multiple threads, columns whose term frequency exceeds
	// max(K, 1024) are by default processed by all workers together
	// through the staged passes in heavy.go, which keeps only one c_w in
	// cache and balances the load the heaviest words would otherwise skew.
	DisableIntraWord bool
}

// Warp is the WarpLDA sampler bound to one corpus. The corpus may be
// any Provider: in-memory, or a memory-mapped .warpcorpus cache whose
// token array lives in page cache instead of heap (corpus.OpenMapped).
type Warp struct {
	cfg  sampler.Config
	opts Options
	c    corpus.Provider

	// m holds one entry per token at (doc, word); the payload is the
	// current assignment z followed by M proposals.
	m *sparse.Matrix

	ck     []int32 // global topic counts, frozen during an iteration
	ckNext []int32 // accumulator for the next iteration's ck

	betaBar  float64
	alphaBar float64
	alphas   []float64    // per-topic prior (symmetric expansion if needed)
	alphaTab *alias.Table // q_doc smoothing part for asymmetric α (nil = uniform)

	workers  []*worker
	ckDeltas []int32 // backing array of the per-worker ckAcc views, padded
	asgBuf   [][]int32

	heavyCols []int      // columns processed with intra-word parallelism
	isHeavy   []bool     // per column
	heavy     *heavyPlan // staged schedule for heavyCols (nil if none)
}

// worker carries the per-goroutine scratch state.
type worker struct {
	r       *rng.RNG
	counter tcount.Counter
	topics  []int32   // nonzero topic ids of the current row
	weights []float64 // matching weights for the alias build
	tab     alias.SparseTable
	dense   alias.Table
	ckAcc   []int32 // view into Warp.ckDeltas, one padded lane per worker

	colChunks [][2]int // column ranges [start, end) owned in the word phase
	rowChunks [][2]int // row ranges owned in the doc phase
}

// New builds a WarpLDA sampler. The corpus must be valid; cfg.M ≥ 1 is
// required (the paper uses M between 1 and 4).
func New(c corpus.Provider, cfg sampler.Config) (*Warp, error) {
	return NewWithOptions(c, cfg, Options{})
}

// NewWithOptions is New with implementation knobs exposed for ablations.
func NewWithOptions(c corpus.Provider, cfg sampler.Config, opts Options) (*Warp, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("core: M = %d, want >= 1", cfg.M)
	}
	if err := corpus.ValidateProvider(c); err != nil {
		return nil, err
	}
	if opts.DenseThreshold <= 0 {
		opts.DenseThreshold = 1024
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}

	w := &Warp{
		cfg:      cfg,
		opts:     opts,
		c:        c,
		ck:       make([]int32, cfg.K),
		ckNext:   make([]int32, cfg.K),
		betaBar:  cfg.Beta * float64(c.NumWords()),
		alphaBar: cfg.AlphaBar(),
		alphas:   cfg.Alphas(),
	}
	if cfg.AlphaVec != nil {
		w.alphaTab = alias.New(cfg.AlphaVec)
	}

	b := sparse.NewBuilder(max(1, c.NumDocs()), c.NumWords(), cfg.M+1)
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		for _, word := range c.Doc(d) {
			b.AddEntry(d, int(word))
		}
	}
	if opts.ShuffleTokens {
		w.m = b.FreezeShuffled(cfg.Seed)
	} else {
		w.m = b.Freeze()
	}

	// Random initialization: z uniform; proposals start equal to z so the
	// first word phase's chains are no-ops.
	r := rng.New(cfg.Seed)
	w.m.VisitByRow(func(_ int, v sparse.RowView) {
		for i := 0; i < v.Len(); i++ {
			data := v.Data(i)
			z := int32(r.Intn(cfg.K))
			for j := range data {
				data[j] = z
			}
			w.ck[z]++
		}
	})

	w.buildWorkers(r)
	return w, nil
}

// buildWorkers derives the whole static thread schedule from the corpus
// and the Config: the per-worker chunk lists, the padded delta buffers,
// and the staged plan for heavy columns. Everything here is
// deterministic in (corpus, Config), which is what lets a restore with
// an unchanged thread count reproduce the saved trajectory bit for bit.
func (w *Warp) buildWorkers(r *rng.RNG) {
	n := w.cfg.Threads
	w.workers = make([]*worker, n)

	// Balance the phase work: columns by term frequency, rows by length.
	tf := corpus.TermFreqsOf(w.c)
	// Section 5.4: the most frequent words (Lw > K) are processed with
	// all workers cooperating; they are excluded from the per-worker
	// chunks by zeroing their weight.
	w.isHeavy = make([]bool, w.c.NumWords())
	if n > 1 && !w.opts.DisableIntraWord {
		threshold := w.cfg.K
		if threshold < 1024 {
			threshold = 1024 // avoid barrier overhead on toy columns
		}
		balanced := make([]int, len(tf))
		copy(balanced, tf)
		for col, f := range tf {
			if f > threshold {
				w.isHeavy[col] = true
				w.heavyCols = append(w.heavyCols, col)
				balanced[col] = 0
			}
		}
		tf = balanced
	}
	dl := make([]int, w.c.NumDocs())
	for d := range dl {
		dl[d] = len(w.c.Doc(d))
	}

	// Per-thread delta buffers: one padded lane per worker carved from a
	// single backing array. The lane stride rounds K up to a cache line
	// and adds one guard line, so no two workers' lanes can share a line
	// whatever the base alignment — the merge in Iterate is the only
	// cross-thread traffic the accumulators generate.
	stride := ckLaneStride(w.cfg.K)
	w.ckDeltas = make([]int32, n*stride)
	for i := 0; i < n; i++ {
		wk := &worker{
			r:     r.Split(),
			ckAcc: w.ckDeltas[i*stride : i*stride+w.cfg.K : i*stride+w.cfg.K],
		}
		if w.opts.ForceHash {
			wk.counter = tcount.NewHash(64)
		} else if w.cfg.K <= w.opts.DenseThreshold {
			wk.counter = tcount.NewDense(w.cfg.K)
		} else {
			wk.counter = tcount.NewHash(256)
		}
		w.workers[i] = wk
	}

	// Work chunks: contiguous ranges sized so one chunk's token payloads
	// fit the L2 budget, greedy-assigned to workers by token weight. A
	// chunk list beats n flat ranges in two ways: the greedy partition
	// balances better than equal-prefix cuts, and a chunk is small enough
	// that its payloads are still cached when the phase revisits them.
	chunkTokens := max(1, l2ChunkBytes/(4*(w.cfg.M+1)))
	colChunks := chunkRanges(tf, chunkTokens, n)
	rowChunks := chunkRanges(dl, chunkTokens, n)
	colOwner := sparse.GreedyPartition(rangeWeights(colChunks, tf), n)
	rowOwner := sparse.GreedyPartition(rangeWeights(rowChunks, dl), n)
	for ci, rg := range colChunks {
		wk := w.workers[colOwner.Assign[ci]]
		wk.colChunks = append(wk.colChunks, rg)
	}
	for ri, rg := range rowChunks {
		wk := w.workers[rowOwner.Assign[ri]]
		wk.rowChunks = append(wk.rowChunks, rg)
	}

	if len(w.heavyCols) > 0 {
		w.heavy = w.buildHeavyPlan()
	}
}

// ckLaneStride is the int32 distance between two workers' delta lanes:
// K rounded up to a whole cache line, plus one guard line.
func ckLaneStride(k int) int {
	return (k+cacheLineI32-1)/cacheLineI32*cacheLineI32 + cacheLineI32
}

// chunkRanges cuts items into contiguous ranges of roughly equal weight,
// at least minChunks of them (so every worker can own work) and enough
// that no range much exceeds budget total weight. Empty ranges are
// dropped; the returned ranges tile [0, len(weights)) exactly.
func chunkRanges(weights []int, budget, minChunks int) [][2]int {
	if len(weights) == 0 {
		return nil
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	n := (total + budget - 1) / budget
	n = max(n, minChunks)
	n = min(n, len(weights))
	n = max(n, 1)
	cuts := contiguousCuts(weights, n)
	ranges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		if cuts[i] < cuts[i+1] {
			ranges = append(ranges, [2]int{cuts[i], cuts[i+1]})
		}
	}
	return ranges
}

// rangeWeights sums weights over each range, for the greedy assignment.
func rangeWeights(ranges [][2]int, weights []int) []int {
	out := make([]int, len(ranges))
	for i, rg := range ranges {
		for j := rg[0]; j < rg[1]; j++ {
			out[i] += weights[j]
		}
	}
	return out
}

// contiguousCuts splits items into n contiguous ranges with roughly equal
// total weight, returning n+1 cut points.
func contiguousCuts(weights []int, n int) []int {
	var total int64
	for _, w := range weights {
		total += int64(w)
	}
	cuts := make([]int, n+1)
	cuts[n] = len(weights)
	var acc int64
	part := 1
	for i := range weights {
		if part < n && acc >= total*int64(part)/int64(n) {
			cuts[part] = i
			part++
		}
		acc += int64(weights[i])
	}
	for ; part < n; part++ {
		cuts[part] = len(weights)
	}
	return cuts
}

// Name implements sampler.Sampler.
func (w *Warp) Name() string { return "WarpLDA" }

// K returns the configured topic count.
func (w *Warp) K() int { return w.cfg.K }

// Iterate implements sampler.Sampler: one word phase then one doc phase,
// after which the global count vector is refreshed (the M-step). The
// per-worker delta buffers are merged exactly once, here — the phases
// themselves never write shared memory.
func (w *Warp) Iterate() {
	if w.heavy != nil {
		w.runHeavy()
	}
	w.runPhase(func(wk *worker) {
		for _, rg := range wk.colChunks {
			for col := rg[0]; col < rg[1]; col++ {
				if !w.isHeavy[col] {
					w.wordColumn(wk, col)
				}
			}
		}
	})
	for _, wk := range w.workers {
		clear(wk.ckAcc)
	}
	w.runPhase(func(wk *worker) {
		for _, rg := range wk.rowChunks {
			for row := rg[0]; row < rg[1]; row++ {
				w.docRow(wk, row)
			}
		}
	})
	// M-step: merge the per-worker delta lanes into the next iteration's
	// ck (the single cross-thread merge point of the pass).
	clear(w.ckNext)
	for _, wk := range w.workers {
		for k, v := range wk.ckAcc {
			w.ckNext[k] += v
		}
	}
	w.ck, w.ckNext = w.ckNext, w.ck
}

func (w *Warp) runPhase(fn func(*worker)) {
	if len(w.workers) == 1 {
		fn(w.workers[0])
		return
	}
	var wg sync.WaitGroup
	for _, wk := range w.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			fn(wk)
		}(wk)
	}
	wg.Wait()
}

// wordColumn processes one word: finish the doc-proposal chains for its
// tokens using the word acceptance rate (Eq. 7, π^doc), then rebuild c_w
// and draw M fresh word proposals per token.
func (w *Warp) wordColumn(wk *worker, col int) {
	v := w.m.Column(col)
	lw := v.Len()
	if lw == 0 {
		return
	}
	beta, betaBar := w.cfg.Beta, w.betaBar
	cw := wk.counter
	resetCounter(cw, w.cfg.K, lw)
	for i := 0; i < lw; i++ {
		cw.Incr(v.Data(i)[0])
	}

	// Accept/reject the proposals drawn in the previous doc phase. c_w
	// stays frozen over the chains (delayed update within the E-step).
	for i := 0; i < lw; i++ {
		data := v.Data(i)
		s := data[0]
		for j := 1; j < len(data); j++ {
			t := data[j]
			if t == s {
				continue
			}
			pi := (float64(cw.Get(t)) + beta) / (float64(cw.Get(s)) + beta) *
				(float64(w.ck[s]) + betaBar) / (float64(w.ck[t]) + betaBar)
			if pi >= 1 || wk.r.Float64() < pi {
				s = t
			}
		}
		data[0] = s
	}

	// Recompute c_w from the updated assignments and build the word
	// proposal sampler q^word ∝ C_wk + β (mixture of the sparse count
	// part and the uniform smoothing part).
	resetCounter(cw, w.cfg.K, lw)
	for i := 0; i < lw; i++ {
		cw.Incr(v.Data(i)[0])
	}

	if w.opts.DisableSparseAlias {
		// Ablation: dense K-sized alias table, O(K) per word.
		weights := growF(&wk.weights, w.cfg.K)
		for k := range weights {
			weights[k] = beta
		}
		cw.NonZero(func(k, c int32) { weights[k] += float64(c) })
		wk.dense.Build(weights)
		for i := 0; i < lw; i++ {
			data := v.Data(i)
			for j := 1; j < len(data); j++ {
				data[j] = int32(wk.dense.Draw(wk.r))
			}
		}
		return
	}

	wk.topics = wk.topics[:0]
	wk.weights = wk.weights[:0]
	cw.NonZero(func(k, c int32) {
		wk.topics = append(wk.topics, k)
		wk.weights = append(wk.weights, float64(c))
	})
	wk.tab.Build(wk.topics, wk.weights)
	// Mixture weight of the count part: ZA = Lw, ZB = Kβ.
	pCount := float64(lw) / (float64(lw) + float64(w.cfg.K)*beta)
	for i := 0; i < lw; i++ {
		data := v.Data(i)
		for j := 1; j < len(data); j++ {
			if wk.r.Float64() < pCount {
				data[j] = wk.tab.Draw(wk.r)
			} else {
				data[j] = int32(wk.r.Intn(w.cfg.K))
			}
		}
	}
}

// docRow processes one document: finish the word-proposal chains using
// the doc acceptance rate (Eq. 7, π^word), draw M fresh doc proposals per
// token by random positioning, and accumulate this document's counts into
// the worker's delta lane.
func (w *Warp) docRow(wk *worker, row int) {
	v := w.m.RowOf(row)
	ld := v.Len()
	if ld == 0 {
		return
	}
	alphas, betaBar := w.alphas, w.betaBar
	cd := wk.counter
	resetCounter(cd, w.cfg.K, ld)
	for i := 0; i < ld; i++ {
		cd.Incr(v.Data(i)[0])
	}

	for i := 0; i < ld; i++ {
		data := v.Data(i)
		s := data[0]
		for j := 1; j < len(data); j++ {
			t := data[j]
			if t == s {
				continue
			}
			pi := (float64(cd.Get(t)) + alphas[t]) / (float64(cd.Get(s)) + alphas[s]) *
				(float64(w.ck[s]) + betaBar) / (float64(w.ck[t]) + betaBar)
			if pi >= 1 || wk.r.Float64() < pi {
				s = t
			}
		}
		data[0] = s
	}

	// Draw doc proposals q^doc ∝ C_dk + α, either by random positioning
	// on the updated assignments (default) or from a rebuilt sparse alias
	// table (ablation): ZA = Ld, ZB = Kα.
	pCount := float64(ld) / (float64(ld) + w.alphaBar)
	if w.opts.DocProposalAlias {
		resetCounter(cd, w.cfg.K, ld)
		for i := 0; i < ld; i++ {
			cd.Incr(v.Data(i)[0])
		}
		wk.topics = wk.topics[:0]
		wk.weights = wk.weights[:0]
		cd.NonZero(func(k, c int32) {
			wk.topics = append(wk.topics, k)
			wk.weights = append(wk.weights, float64(c))
		})
		wk.tab.Build(wk.topics, wk.weights)
		for i := 0; i < ld; i++ {
			data := v.Data(i)
			for j := 1; j < len(data); j++ {
				if wk.r.Float64() < pCount {
					data[j] = wk.tab.Draw(wk.r)
				} else {
					data[j] = w.drawAlphaPart(wk.r)
				}
			}
			wk.ckAcc[data[0]]++
		}
		return
	}
	for i := 0; i < ld; i++ {
		data := v.Data(i)
		for j := 1; j < len(data); j++ {
			if wk.r.Float64() < pCount {
				data[j] = v.Data(wk.r.Intn(ld))[0]
			} else {
				data[j] = w.drawAlphaPart(wk.r)
			}
		}
		wk.ckAcc[data[0]]++
	}
}

// drawAlphaPart samples from the smoothing part of q_doc: uniform for a
// symmetric prior, an alias draw over α for an asymmetric one.
func (w *Warp) drawAlphaPart(r *rng.RNG) int32 {
	if w.alphaTab != nil {
		return int32(w.alphaTab.Draw(r))
	}
	return int32(r.Intn(w.cfg.K))
}

// resetCounter prepares a per-row counter for a row of length l.
func resetCounter(c tcount.Counter, k, l int) {
	if h, ok := c.(*tcount.Hash); ok {
		h.ResetFor(k, l)
		return
	}
	c.Reset()
}

func growF(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

// Assignments implements sampler.Sampler. The returned matrix is aligned
// with the corpus: entry [d][n] is the topic of token n of document d.
// (Row views preserve insertion order, which was token order.)
func (w *Warp) Assignments() [][]int32 {
	if w.asgBuf == nil {
		w.asgBuf = make([][]int32, w.c.NumDocs())
		for d := range w.asgBuf {
			w.asgBuf[d] = make([]int32, len(w.c.Doc(d)))
		}
	}
	w.m.VisitByRow(func(row int, v sparse.RowView) {
		out := w.asgBuf[row]
		for i := 0; i < v.Len(); i++ {
			out[i] = v.Data(i)[0]
		}
	})
	return w.asgBuf
}

// GlobalCounts returns a copy of the current frozen c_k vector.
func (w *Warp) GlobalCounts() []int32 {
	return append([]int32(nil), w.ck...)
}

// warpStateTag versions the serialized state layout of StateTo.
const warpStateTag = "warp\x01"

// StateTo implements sampler.Sampler: it serializes every token's
// payload (assignment + M pending proposals), the frozen global count
// vector, and each worker's RNG stream. Together with the corpus and
// Config (which rebuild all derived structure deterministically) that
// is the sampler's complete mutable state: a fresh Warp restored from
// it continues the chain bit-identically.
func (w *Warp) StateTo(out io.Writer) error {
	e := sampler.NewEnc(out)
	e.Tag(warpStateTag)
	e.Int(len(w.workers))
	e.I32s(w.m.Payloads())
	e.I32s(w.ck)
	for _, wk := range w.workers {
		e.RNG(wk.r)
	}
	return e.Err()
}

// RestoreFrom implements sampler.Sampler. The state must come from a
// Warp over the same corpus and Config (worker count included — the
// RNG streams are per worker). Everything is decoded and validated
// before any live state is replaced, so a corrupt snapshot leaves the
// sampler untouched. For restores across a changed Threads, use the
// sharded form (shard.go) instead.
func (w *Warp) RestoreFrom(in io.Reader) error {
	d := sampler.NewDec(in)
	d.Tag(warpStateTag)
	workers := d.Int()
	if d.Err() == nil && workers != len(w.workers) {
		return fmt.Errorf("core: state has %d workers, sampler has %d (restore with the same Threads)", workers, len(w.workers))
	}
	payload := d.I32sLen("token payloads", len(w.m.Payloads()))
	ck := d.I32sLen("global counts", w.cfg.K)
	rngs := make([][4]uint64, len(w.workers))
	for i := range rngs {
		rngs[i] = d.RNGState()
	}
	d.CheckTopics("token payloads", payload, w.cfg.K)
	if err := d.Err(); err != nil {
		return err
	}
	// ck must be the topic histogram of the current assignments (payload
	// slot 0 of every entry) — anything else is a corrupt or foreign state.
	count := make([]int32, w.cfg.K)
	for i := 0; i < len(payload); i += w.cfg.M + 1 {
		count[payload[i]]++
	}
	for k := range count {
		if count[k] != ck[k] {
			return fmt.Errorf("core: state global counts disagree with assignments at topic %d (%d vs %d)", k, ck[k], count[k])
		}
	}
	copy(w.m.Payloads(), payload)
	copy(w.ck, ck)
	for i, wk := range w.workers {
		wk.r.SetState(rngs[i])
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
