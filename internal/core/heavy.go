// Staged intra-word parallelism (Section 5.4) for heavy columns.
//
// A column whose term frequency exceeds max(K, 1024) would skew any
// per-worker column partition, so all workers cooperate on it. The
// previous implementation processed heavy columns one at a time, with
// two goroutine-spawn barriers per column and the counting and alias
// build serialized on a lead worker — on corpora with thousands of
// heavy words that serial fraction and barrier storm erased the gain
// of adding threads. The plan here restores scalability:
//
//   - heavy columns are processed in batches, so each barrier is
//     amortized over every column in the batch (five barriers per
//     batch instead of two per column);
//   - each column is cut into L2-sized segments that are greedy-
//     partitioned across workers (sparse.GreedyPartition), so no
//     stage has a serial section: counting, chains, recounting,
//     alias builds, and draws all run on all workers;
//   - partial counts live in per-worker cache-line-padded lanes of
//     one backing array, merged by per-column owners — the same
//     false-sharing discipline as the ckAcc delta buffers.
//
// The whole schedule is precomputed once at construction and is
// deterministic in (corpus, Config), preserving bit-exact resume.
package core

import (
	"sync"

	"warplda/internal/alias"
	"warplda/internal/sparse"
)

// heavySeg is one contiguous run of a heavy column's CSC entries,
// processed by a single worker during the staged passes.
type heavySeg struct {
	c      int // column index within the batch
	lo, hi int // entry range within the column view
}

// heavyBatch groups heavy columns whose five staged passes run
// together under shared barriers.
type heavyBatch struct {
	cols   []int        // global column ids
	segs   [][]heavySeg // per worker: owned segments, in schedule order
	colsOf [][]int      // per worker: batch-column indices it merges/builds
}

// heavyPlan is the precomputed schedule plus the reusable scratch the
// staged passes run on. Scratch is sized for the largest batch.
type heavyPlan struct {
	batches []heavyBatch

	stride   int     // padded K: lane distance inside partial and merged
	batchCap int     // max columns per batch
	partial  []int32 // threads × batchCap padded lanes of partial counts
	merged   []int32 // batchCap padded lanes of merged c_w

	// Per batch-column proposal samplers, rebuilt each word phase by the
	// column's owner.
	pCount  []float64
	tabs    []alias.SparseTable
	topics  [][]int32
	weights [][]float64
}

// buildHeavyPlan cuts w.heavyCols into batches and L2-sized segments
// and greedy-assigns both the segments (chain/draw work) and the
// columns (merge/alias work) to workers.
func (w *Warp) buildHeavyPlan() *heavyPlan {
	n := len(w.workers)
	stride := ckLaneStride(w.cfg.K)
	// Bound the partial-count scratch: one batch costs
	// (n+1)·batchCap·stride int32 across partial and merged.
	batchCap := max(1, heavyBatchBytes/4/((n+1)*stride))
	batchCap = min(batchCap, len(w.heavyCols))
	segTokens := max(1, l2ChunkBytes/(4*(w.cfg.M+1)))

	p := &heavyPlan{
		stride:   stride,
		batchCap: batchCap,
		partial:  make([]int32, n*batchCap*stride),
		merged:   make([]int32, batchCap*stride),
		pCount:   make([]float64, batchCap),
		tabs:     make([]alias.SparseTable, batchCap),
		topics:   make([][]int32, batchCap),
		weights:  make([][]float64, batchCap),
	}
	for start := 0; start < len(w.heavyCols); start += batchCap {
		end := min(start+batchCap, len(w.heavyCols))
		cols := w.heavyCols[start:end]
		b := heavyBatch{
			cols:   cols,
			segs:   make([][]heavySeg, n),
			colsOf: make([][]int, n),
		}
		var segs []heavySeg
		var segW []int
		colW := make([]int, len(cols))
		for c, col := range cols {
			lw := w.m.Column(col).Len()
			colW[c] = lw
			for lo := 0; lo < lw; lo += segTokens {
				hi := min(lo+segTokens, lw)
				segs = append(segs, heavySeg{c: c, lo: lo, hi: hi})
				segW = append(segW, hi-lo)
			}
		}
		segOwner := sparse.GreedyPartition(segW, n)
		for i, s := range segs {
			o := segOwner.Assign[i]
			b.segs[o] = append(b.segs[o], s)
		}
		colOwner := sparse.GreedyPartition(colW, n)
		for c := range cols {
			o := colOwner.Assign[c]
			b.colsOf[o] = append(b.colsOf[o], c)
		}
		p.batches = append(p.batches, b)
	}
	return p
}

// parallelWorkers runs fn once per worker and waits: the barrier
// primitive between the staged passes.
func (w *Warp) parallelWorkers(fn func(wi int, wk *worker)) {
	var wg sync.WaitGroup
	for i, wk := range w.workers {
		wg.Add(1)
		go func(i int, wk *worker) {
			defer wg.Done()
			fn(i, wk)
		}(i, wk)
	}
	wg.Wait()
}

// lane returns worker wi's padded partial-count lane for batch column c.
func (p *heavyPlan) lane(wi, c int) []int32 {
	off := (wi*p.batchCap + c) * p.stride
	return p.partial[off : off+p.stride]
}

// mergeInto sums every worker's partial lane for batch column c into
// that column's merged c_w.
func (p *heavyPlan) mergeInto(c, workers, k int) []int32 {
	m := p.merged[c*p.stride : c*p.stride+k]
	clear(m)
	for wi := 0; wi < workers; wi++ {
		part := p.lane(wi, c)
		for t := 0; t < k; t++ {
			m[t] += part[t]
		}
	}
	return m
}

// runHeavy executes the word phase for every heavy column: the same
// chain-then-draw semantics as wordColumn, staged so all workers stay
// busy. c_k stays frozen throughout, and each batch column's c_w is
// frozen over its MH chains exactly as in the serial path.
func (w *Warp) runHeavy() {
	n := len(w.workers)
	K := w.cfg.K
	beta, betaBar := w.cfg.Beta, w.betaBar
	p := w.heavy

	for bi := range p.batches {
		b := &p.batches[bi]

		// Stage 1: partial counts of the current assignments. Each worker
		// writes only its own padded lanes.
		w.parallelWorkers(func(wi int, wk *worker) {
			zeroLanes(p, wi, len(b.cols))
			for _, s := range b.segs[wi] {
				part := p.lane(wi, s.c)
				v := w.m.Column(b.cols[s.c])
				for i := s.lo; i < s.hi; i++ {
					part[v.Data(i)[0]]++
				}
			}
		})

		// Stage 2: per-column owners merge the lanes into c_w.
		w.parallelWorkers(func(wi int, wk *worker) {
			for _, c := range b.colsOf[wi] {
				p.mergeInto(c, n, K)
			}
		})

		// Stage 3: MH chains against the frozen merged counts, then
		// recount the updated assignments into the partial lanes.
		w.parallelWorkers(func(wi int, wk *worker) {
			for _, s := range b.segs[wi] {
				cw := p.merged[s.c*p.stride : s.c*p.stride+K]
				v := w.m.Column(b.cols[s.c])
				for i := s.lo; i < s.hi; i++ {
					data := v.Data(i)
					z := data[0]
					for j := 1; j < len(data); j++ {
						t := data[j]
						if t == z {
							continue
						}
						pi := (float64(cw[t]) + beta) / (float64(cw[z]) + beta) *
							(float64(w.ck[z]) + betaBar) / (float64(w.ck[t]) + betaBar)
						if pi >= 1 || wk.r.Float64() < pi {
							z = t
						}
					}
					data[0] = z
				}
			}
			zeroLanes(p, wi, len(b.cols))
			for _, s := range b.segs[wi] {
				part := p.lane(wi, s.c)
				v := w.m.Column(b.cols[s.c])
				for i := s.lo; i < s.hi; i++ {
					part[v.Data(i)[0]]++
				}
			}
		})

		// Stage 4: merge again and build each column's proposal sampler
		// q^word ∝ C_wk + β (sparse count part + uniform smoothing part).
		w.parallelWorkers(func(wi int, wk *worker) {
			for _, c := range b.colsOf[wi] {
				m := p.mergeInto(c, n, K)
				lw := w.m.Column(b.cols[c]).Len()
				topics := p.topics[c][:0]
				weights := p.weights[c][:0]
				for t := 0; t < K; t++ {
					if m[t] != 0 {
						topics = append(topics, int32(t))
						weights = append(weights, float64(m[t]))
					}
				}
				p.topics[c], p.weights[c] = topics, weights
				p.tabs[c].Build(topics, weights)
				p.pCount[c] = float64(lw) / (float64(lw) + float64(K)*beta)
			}
		})

		// Stage 5: proposal draws. The alias tables are read-only here.
		w.parallelWorkers(func(wi int, wk *worker) {
			for _, s := range b.segs[wi] {
				tab := &p.tabs[s.c]
				pc := p.pCount[s.c]
				v := w.m.Column(b.cols[s.c])
				for i := s.lo; i < s.hi; i++ {
					data := v.Data(i)
					for j := 1; j < len(data); j++ {
						if wk.r.Float64() < pc {
							data[j] = tab.Draw(wk.r)
						} else {
							data[j] = int32(wk.r.Intn(K))
						}
					}
				}
			}
		})
	}
}

// zeroLanes clears worker wi's partial lanes for the first cols batch
// columns.
func zeroLanes(p *heavyPlan, wi, cols int) {
	off := wi * p.batchCap * p.stride
	clear(p.partial[off : off+cols*p.stride])
}
