package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"warplda/internal/eval"
	"warplda/internal/sampler"
)

// shardsOf serializes every shard of w and returns them as readers.
func shardsOf(t *testing.T, w *Warp) []io.Reader {
	t.Helper()
	readers := make([]io.Reader, w.NumShards())
	for i := range readers {
		var buf bytes.Buffer
		if err := w.ShardTo(i, &buf); err != nil {
			t.Fatal(err)
		}
		readers[i] = bytes.NewReader(buf.Bytes())
	}
	return readers
}

func rawShards(t *testing.T, w *Warp) [][]byte {
	t.Helper()
	raw := make([][]byte, w.NumShards())
	for i := range raw {
		var buf bytes.Buffer
		if err := w.ShardTo(i, &buf); err != nil {
			t.Fatal(err)
		}
		raw[i] = buf.Bytes()
	}
	return raw
}

func newThreaded(t *testing.T, seed uint64, threads int) *Warp {
	t.Helper()
	cfg := defaultCfg(8)
	cfg.Threads = threads
	w, err := New(testCorpus(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWarpSameTopologyRestoreIsExact pins the bit-exact half of the
// elastic contract: a sharded round trip with an unchanged thread count
// adopts the saved RNG streams and continues the chain exactly as an
// uninterrupted run.
func TestWarpSameTopologyRestoreIsExact(t *testing.T) {
	for _, threads := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			full := newThreaded(t, 30, threads)
			half := newThreaded(t, 30, threads)
			fresh := newThreaded(t, 30, threads)
			const n = 4
			for i := 0; i < 2*n; i++ {
				full.Iterate()
			}
			for i := 0; i < n; i++ {
				half.Iterate()
			}
			reseeded, err := fresh.RestoreShards(uint64(n), shardsOf(t, half))
			if err != nil {
				t.Fatal(err)
			}
			if reseeded {
				t.Fatal("same-topology restore reported a reseed")
			}
			if !reflect.DeepEqual(fresh.GlobalCounts(), half.GlobalCounts()) {
				t.Fatal("global counts differ immediately after restore")
			}
			for i := 0; i < n; i++ {
				fresh.Iterate()
			}
			if !reflect.DeepEqual(fresh.Assignments(), full.Assignments()) {
				t.Fatal("restored run diverged from uninterrupted run")
			}
		})
	}
}

// TestWarpElasticRestoreAcrossThreadCounts is the elastic resume table:
// shards written under one thread count restore under another. The
// assignments and global counts must carry over exactly; the RNG
// streams are reseeded (reported via the return), and the resumed
// sampler must remain consistent and keep converging.
func TestWarpElasticRestoreAcrossThreadCounts(t *testing.T) {
	cases := []struct{ from, to int }{
		{1, 4},
		{4, 2},
		{2, 3},
		{4, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			donor := newThreaded(t, 31, tc.from)
			for i := 0; i < 5; i++ {
				donor.Iterate()
			}
			target := newThreaded(t, 31, tc.to)
			reseeded, err := target.RestoreShards(5, shardsOf(t, donor))
			if err != nil {
				t.Fatal(err)
			}
			if !reseeded {
				t.Fatalf("restore %d->%d threads did not report a reseed", tc.from, tc.to)
			}
			if !reflect.DeepEqual(target.Assignments(), donor.Assignments()) {
				t.Fatal("assignments not carried over")
			}
			if !reflect.DeepEqual(target.GlobalCounts(), donor.GlobalCounts()) {
				t.Fatal("global counts not carried over")
			}
			// The repartitioned sampler must stay consistent and improve.
			c := testCorpus(31)
			cfg := defaultCfg(8)
			before := eval.LogJoint(c, target.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			for i := 0; i < 15; i++ {
				target.Iterate()
			}
			want := countsFromAssignments(target.Assignments(), cfg.K)
			if got := target.GlobalCounts(); !reflect.DeepEqual(got, want) {
				t.Fatal("ck inconsistent after elastic restore")
			}
			after := eval.LogJoint(c, target.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			if after <= before {
				t.Fatalf("elastically resumed run did not converge: %.1f -> %.1f", before, after)
			}
		})
	}
}

// Distinct salts must derive distinct reseeded streams — two elastic
// resumes of the same checkpoint at different iterations diverge.
func TestWarpElasticReseedDependsOnSalt(t *testing.T) {
	donor := newThreaded(t, 32, 2)
	donor.Iterate()
	a := newThreaded(t, 32, 3)
	b := newThreaded(t, 32, 3)
	if _, err := a.RestoreShards(1, shardsOf(t, donor)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RestoreShards(2, shardsOf(t, donor)); err != nil {
		t.Fatal(err)
	}
	a.Iterate()
	b.Iterate()
	if reflect.DeepEqual(a.Assignments(), b.Assignments()) {
		t.Fatal("different salts produced identical trajectories")
	}
}

// TestWarpRestoreShardsRejectsBadInput is the corruption table for the
// sharded path: every class of damage fails before any live state is
// replaced, and the target stays usable.
func TestWarpRestoreShardsRejectsBadInput(t *testing.T) {
	donor := newThreaded(t, 33, 3)
	donor.Iterate()
	good := rawShards(t, donor)

	cases := []struct {
		name   string
		mutate func([][]byte) [][]byte
	}{
		{"no shards", func(s [][]byte) [][]byte { return nil }},
		{"truncated shard", func(s [][]byte) [][]byte {
			s[1] = s[1][:len(s[1])-5]
			return s
		}},
		{"bad tag", func(s [][]byte) [][]byte {
			s[0] = append([]byte("xxxx\x01"), s[0][5:]...)
			return s
		}},
		{"swapped shards", func(s [][]byte) [][]byte {
			s[0], s[1] = s[1], s[0]
			return s
		}},
		{"missing shard", func(s [][]byte) [][]byte { return s[:2] }},
		{"duplicated shard", func(s [][]byte) [][]byte {
			s[1] = append([]byte(nil), s[0]...)
			return s
		}},
		{"topic out of range", func(s [][]byte) [][]byte {
			// Flip a payload byte to push an assignment far outside [0, K).
			s[0][len(s[0])-3] ^= 0x7f
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := make([][]byte, len(good))
			for i := range cp {
				cp[i] = append([]byte(nil), good[i]...)
			}
			mut := tc.mutate(cp)
			readers := make([]io.Reader, len(mut))
			for i := range mut {
				readers[i] = bytes.NewReader(mut[i])
			}
			target := newThreaded(t, 33, 3)
			before := sampler.CopyAssignments(target.Assignments())
			if _, err := target.RestoreShards(1, readers); err == nil {
				t.Fatal("corrupt shards accepted")
			}
			if !reflect.DeepEqual(before, target.Assignments()) {
				t.Fatal("failed restore mutated the sampler")
			}
			target.Iterate() // must still be usable
		})
	}
}

// Shards from a sampler with a different M are rejected.
func TestWarpRestoreShardsRejectsWrongM(t *testing.T) {
	donor := newThreaded(t, 34, 2)
	cfg := defaultCfg(8)
	cfg.M = 3
	cfg.Threads = 2
	target, err := New(testCorpus(34), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := target.RestoreShards(0, shardsOf(t, donor)); err == nil {
		t.Fatal("shards with mismatched M accepted")
	}
}

func TestWarpShardToBounds(t *testing.T) {
	w := newThreaded(t, 35, 2)
	if err := w.ShardTo(-1, io.Discard); err == nil {
		t.Fatal("negative shard index accepted")
	}
	if err := w.ShardTo(2, io.Discard); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
}
