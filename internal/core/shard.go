// Per-worker shard serialization and elastic restore for Warp.
//
// StateTo/RestoreFrom (warp.go) funnel the whole state through one
// stream and demand an identical worker count on resume. The methods
// here implement sampler.Sharded instead, mirroring the distributed
// sampler's semantics (internal/cluster/shard.go) for the shared-memory
// sampler: each worker serializes the documents it owns in the doc
// phase, and restore accepts ANY saved worker count, because the token
// payloads are keyed by document id rather than by the partition that
// produced them. Worker RNG streams survive bit-exactly when the thread
// count matches (the chunk schedule is deterministic in corpus and
// Config) and are reseeded via rng.Derive when it does not.
package core

import (
	"fmt"
	"io"

	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// warpShardTag versions the per-shard stream layout written by ShardTo.
const warpShardTag = "wshd\x01"

// Compile-time check: Warp supports sharded elastic checkpoints.
var _ sampler.Sharded = (*Warp)(nil)

// NumShards implements sampler.Sharded: one shard per worker. A
// single-threaded Warp is a valid one-shard topology, so every Warp
// checkpoint written through the sharded path can later be resumed
// under any thread count.
func (w *Warp) NumShards() int { return len(w.workers) }

// ShardTo implements sampler.Sharded: worker i's doc-phase row ranges
// and the token payloads of every document in them, plus its RNG
// stream. The stream carries the shard index and total worker count, so
// a shard file restored into the wrong slot — or mixed in from a
// checkpoint of a different topology — is rejected by RestoreShards
// even before the manifest-level checks run. Distinct shards may be
// written concurrently: ShardTo only reads frozen state and worker i's
// RNG.
func (w *Warp) ShardTo(i int, out io.Writer) error {
	if i < 0 || i >= len(w.workers) {
		return fmt.Errorf("core: shard %d of %d", i, len(w.workers))
	}
	wk := w.workers[i]
	e := sampler.NewEnc(out)
	e.Tag(warpShardTag)
	e.Int(i)
	e.Int(len(w.workers))
	e.Int(w.cfg.M)
	e.RNG(wk.r)
	e.Int(len(wk.rowChunks))
	stride := w.cfg.M + 1
	total := 0
	for _, rg := range wk.rowChunks {
		e.Int(rg[0])
		e.Int(rg[1])
		for row := rg[0]; row < rg[1]; row++ {
			total += w.m.RowOf(row).Len() * stride
		}
	}
	// The payload section is streamed in bounded chunks rather than
	// materialized: all shards may serialize concurrently, so per-shard
	// flat copies would cost a full extra state-sized allocation exactly
	// when checkpointing a state near the memory ceiling.
	e.Int(total) // I32s-compatible length prefix
	const chunk = 1 << 15
	buf := make([]int32, 0, chunk)
	for _, rg := range wk.rowChunks {
		for row := rg[0]; row < rg[1]; row++ {
			v := w.m.RowOf(row)
			for t := 0; t < v.Len(); t++ {
				if len(buf)+stride > chunk {
					e.RawI32s(buf)
					buf = buf[:0]
				}
				buf = append(buf, v.Data(t)...)
			}
		}
	}
	if len(buf) > 0 {
		e.RawI32s(buf)
	}
	return e.Err()
}

// RestoreShards implements sampler.Sharded. shards holds the saved
// per-worker streams in worker order; their count is the topology the
// checkpoint was written under and may differ from this sampler's
// Threads. The decoded row ranges must tile the corpus exactly — every
// document once, no overlap — and each document's payloads land at the
// positions the (immutable) matrix structure assigns them, so the
// restored state is independent of which worker owned which rows.
// Everything is validated before any live state is replaced. RNG
// streams are restored exactly when the worker count matches (the
// chunk schedule is deterministic in corpus and Config); otherwise
// every worker wi reseeds from rng.Derive(cfg.Seed, salt, threads, wi)
// and reseeded reports true so the caller can log the loss of
// bit-exactness.
func (w *Warp) RestoreShards(salt uint64, shards []io.Reader) (reseeded bool, err error) {
	oldP := len(shards)
	if oldP < 1 {
		return false, fmt.Errorf("core: restore with %d shards", oldP)
	}
	stride := w.cfg.M + 1
	docs := w.c.NumDocs()
	rngs := make([][4]uint64, oldP)
	full := make([]int32, len(w.m.Payloads()))
	seen := make([]bool, docs)
	covered := 0
	for i, r := range shards {
		dec := sampler.NewDec(r)
		dec.Tag(warpShardTag)
		idx := dec.Int()
		p := dec.Int()
		m := dec.Int()
		if dec.Err() == nil && idx != i {
			return false, fmt.Errorf("core: shard in position %d identifies as shard %d (foreign or reordered shard file)", i, idx)
		}
		if dec.Err() == nil && p != oldP {
			return false, fmt.Errorf("core: shard %d was written under %d workers, restore supplies %d shards", i, p, oldP)
		}
		if dec.Err() == nil && m != w.cfg.M {
			return false, fmt.Errorf("core: shard %d has M=%d, sampler has M=%d", i, m, w.cfg.M)
		}
		rngs[i] = dec.RNGState()
		nChunks := dec.Int()
		if dec.Err() != nil {
			return false, dec.Err()
		}
		if nChunks < 0 || nChunks > docs {
			return false, fmt.Errorf("core: shard %d has implausible %d row ranges", i, nChunks)
		}
		ranges := make([][2]int, nChunks)
		tokens := 0
		for c := range ranges {
			lo, hi := dec.Int(), dec.Int()
			if dec.Err() != nil {
				return false, dec.Err()
			}
			if lo < 0 || lo >= hi || hi > docs {
				return false, fmt.Errorf("core: shard %d row range [%d,%d) outside corpus of %d docs", i, lo, hi, docs)
			}
			for row := lo; row < hi; row++ {
				if seen[row] {
					return false, fmt.Errorf("core: document %d appears in more than one shard", row)
				}
				seen[row] = true
				tokens += w.m.RowOf(row).Len()
			}
			ranges[c] = [2]int{lo, hi}
			covered += hi - lo
		}
		payload := dec.I32sLen("shard token payloads", tokens*stride)
		dec.CheckTopics("shard token payloads", payload, w.cfg.K)
		if err := dec.Err(); err != nil {
			return false, err
		}
		// Scatter the row-ordered payloads to their CSC positions.
		off := 0
		for _, rg := range ranges {
			for row := rg[0]; row < rg[1]; row++ {
				v := w.m.RowOf(row)
				for t := 0; t < v.Len(); t++ {
					pos := v.EntryIndex(t) * stride
					copy(full[pos:pos+stride], payload[off:off+stride])
					off += stride
				}
			}
		}
	}
	if covered != docs {
		return false, fmt.Errorf("core: shards cover %d documents, corpus has %d", covered, docs)
	}

	// Commit: payloads, then the global counts recomputed from the
	// restored assignments (slot 0 of every entry) — the same invariant
	// RestoreFrom checks against an explicit ck section.
	copy(w.m.Payloads(), full)
	ck := make([]int32, w.cfg.K)
	for i := 0; i < len(full); i += stride {
		ck[full[i]]++
	}
	copy(w.ck, ck)
	if oldP == len(w.workers) {
		for i, wk := range w.workers {
			wk.r.SetState(rngs[i])
		}
		return false, nil
	}
	for wi, wk := range w.workers {
		wk.r = rng.Derive(w.cfg.Seed, salt, uint64(len(w.workers)), uint64(wi))
	}
	return true, nil
}
