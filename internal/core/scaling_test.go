package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
)

// TestThreadSweepConvergenceEquivalence runs the 1/2/4/8-thread matrix
// over one corpus: every thread count must keep the count invariants
// and converge to statistically equivalent likelihood — threads change
// the schedule and the RNG streams, never the model.
func TestThreadSweepConvergenceEquivalence(t *testing.T) {
	c := testCorpus(40)
	lls := make(map[int]float64)
	for _, threads := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			cfg := defaultCfg(8)
			cfg.Threads = threads
			w, err := New(c, cfg)
			if err != nil {
				t.Fatal(err)
			}
			before := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			for i := 0; i < 40; i++ {
				w.Iterate()
			}
			want := countsFromAssignments(w.Assignments(), cfg.K)
			if got := w.GlobalCounts(); !reflect.DeepEqual(got, want) {
				t.Fatalf("threads=%d: ck inconsistent", threads)
			}
			after := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			if after <= before {
				t.Fatalf("threads=%d did not converge: %.1f -> %.1f", threads, before, after)
			}
			lls[threads] = after
		})
	}
	base, ok := lls[1]
	if !ok {
		t.Fatal("serial sweep entry missing")
	}
	for threads, ll := range lls {
		if math.Abs(ll-base) > 0.05*math.Abs(base) {
			t.Fatalf("threads=%d converged to %.1f, serial to %.1f (gap over 5%%)", threads, ll, base)
		}
	}
}

// heavyTailCorpus is a corpus with one word frequent enough to take the
// staged intra-word path (Lw > max(K, 1024)) plus a long tail, so a
// threaded run exercises every stage of heavy.go alongside the chunked
// phases.
func heavyTailCorpus() *corpus.Corpus {
	c := &corpus.Corpus{V: 80, Docs: make([][]int32, 240)}
	for d := range c.Docs {
		doc := make([]int32, 32)
		for n := range doc {
			if n < 8 {
				doc[n] = 0 // 1920 occurrences of word 0
			} else {
				doc[n] = int32(1 + (d*7+n)%79)
			}
		}
		c.Docs[d] = doc
	}
	return c
}

// TestThreadedMergeCorrectness locks the per-pass merge down under the
// race detector: after every threaded iteration, the once-per-pass
// merge of the per-thread delta buffers must reproduce exactly the
// invariant the serial path maintains — the global counts equal the
// histogram of the live assignments and conserve the token total. Run
// with -race this also proves the delta buffers, the staged heavy
// passes, and the barriers are free of data races.
func TestThreadedMergeCorrectness(t *testing.T) {
	c := heavyTailCorpus()
	cfg := defaultCfg(8)
	cfg.Threads = 4
	threaded, err := New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(threaded.heavyCols) == 0 {
		t.Fatal("fixture has no heavy column; the staged path is not exercised")
	}
	serial, err := New(c, defaultCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	total := int32(c.NumTokens())
	for it := 0; it < 8; it++ {
		threaded.Iterate()
		serial.Iterate()
		for name, w := range map[string]*Warp{"threaded": threaded, "serial": serial} {
			got := w.GlobalCounts()
			want := countsFromAssignments(w.Assignments(), cfg.K)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iteration %d: %s merged counts %v, assignment histogram %v", it, name, got, want)
			}
			var sum int32
			for _, v := range got {
				sum += v
			}
			if sum != total {
				t.Fatalf("iteration %d: %s counts sum to %d, corpus has %d tokens", it, name, sum, total)
			}
		}
	}
}

// TestChunkRanges pins the chunking helper: ranges tile the input, none
// is empty, and at least minChunks ranges come back when possible.
func TestChunkRanges(t *testing.T) {
	weights := []int{5, 0, 7, 3, 0, 9, 2, 4}
	ranges := chunkRanges(weights, 10, 3)
	if len(ranges) < 3 {
		t.Fatalf("got %d ranges, want >= 3", len(ranges))
	}
	next := 0
	for _, rg := range ranges {
		if rg[0] != next || rg[1] <= rg[0] {
			t.Fatalf("ranges %v do not tile the input", ranges)
		}
		next = rg[1]
	}
	if next != len(weights) {
		t.Fatalf("ranges end at %d, want %d", next, len(weights))
	}
	if got := chunkRanges(nil, 10, 2); got != nil {
		t.Fatalf("empty input produced ranges %v", got)
	}
	// More workers than items: every item still covered exactly once.
	ranges = chunkRanges([]int{1, 1}, 1, 8)
	next = 0
	for _, rg := range ranges {
		if rg[0] != next {
			t.Fatalf("ranges %v do not tile", ranges)
		}
		next = rg[1]
	}
	if next != 2 {
		t.Fatalf("ranges end at %d, want 2", next)
	}
}
