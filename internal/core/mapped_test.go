package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// mappedPair materializes the same UCI stream twice: in memory
// (ReadUCI) and through the out-of-core path (BuildCache + OpenMapped),
// with the cache built under a deliberately tiny resident budget so the
// spill machinery actually runs. Cleanup closes the mapping.
func mappedPair(t *testing.T, c *corpus.Corpus) (*corpus.Corpus, *corpus.MappedCorpus) {
	t.Helper()
	var uci bytes.Buffer
	if err := corpus.WriteUCI(&uci, c); err != nil {
		t.Fatal(err)
	}
	mem, err := corpus.ReadUCI(bytes.NewReader(uci.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "parity"+corpus.CacheExt)
	if _, err := corpus.BuildCache(bytes.NewReader(uci.Bytes()), path, corpus.StreamOptions{MaxResidentBytes: 1}); err != nil {
		t.Fatal(err)
	}
	mapped, err := corpus.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return mem, mapped
}

// TestMappedTrainingParity is the tentpole's acceptance property: a
// WarpLDA run over a memory-mapped corpus whose token array exceeds the
// ingestion budget produces bit-identical assignments to the in-memory
// path, serial and threaded.
func TestMappedTrainingParity(t *testing.T) {
	gen, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 400, V: 500, K: 8, MeanLen: 60, Alpha: 0.1, Beta: 0.01, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	mem, mapped := mappedPair(t, gen)
	if mem.NumTokens()*4 <= 1<<16 {
		t.Fatalf("token array (%d bytes) does not exceed the minimum ingestion buffer", mem.NumTokens()*4)
	}

	for _, threads := range []int{1, 3} {
		cfg := sampler.PaperDefaults(16)
		cfg.M = 2
		cfg.Threads = threads

		a, err := New(mem, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(mapped, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			a.Iterate()
			b.Iterate()
		}
		za, zb := a.Assignments(), b.Assignments()
		for d := range za {
			for n := range za[d] {
				if za[d][n] != zb[d][n] {
					t.Fatalf("threads=%d: assignments diverge at doc %d token %d (%d vs %d)",
						threads, d, n, za[d][n], zb[d][n])
				}
			}
		}
	}
}
