package baselines

import (
	"io"

	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// CGS is the plain collapsed Gibbs sampler of Griffiths & Steyvers
// (2004): for each token it enumerates all K topics of the conditional
//
//	p(z=k | rest) ∝ (C¬_dk + α) (C¬_wk + β) / (C¬_k + β̄)     (Eq. 1)
//
// — O(K) per token, the Table 2 reference row every fast sampler is
// measured against.
type CGS struct {
	*state
	probs []float64
}

// NewCGS builds the sampler with random initialization.
func NewCGS(c *corpus.Corpus, cfg sampler.Config) (*CGS, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	return &CGS{state: st, probs: make([]float64, cfg.K)}, nil
}

// Name implements sampler.Sampler.
func (g *CGS) Name() string { return "CGS" }

const cgsStateTag = "cgs\x01"

// StateTo implements sampler.Sampler. CGS's only mutable state beyond
// the counts (which are pure functions of z) is the assignment matrix
// and the RNG stream.
func (g *CGS) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(cgsStateTag)
	g.encodeBase(e)
	return e.Err()
}

// RestoreFrom implements sampler.Sampler.
func (g *CGS) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(cgsStateTag)
	z, rngState := g.decodeBase(d)
	if err := d.Err(); err != nil {
		return err
	}
	g.commitBase(z, rngState)
	return nil
}

// Iterate implements sampler.Sampler: one document-by-document sweep.
func (g *CGS) Iterate() {
	for d, doc := range g.c.Docs {
		cd := g.cdRow(d)
		for n, w := range doc {
			old := g.z[d][n]
			g.remove(d, w, old)
			cw := g.cwRow(w)
			var sum float64
			for k := 0; k < g.k; k++ {
				p := (float64(cd[k]) + g.alpha) * (float64(cw[k]) + g.beta) /
					(float64(g.ck[k]) + g.betaBar)
				sum += p
				g.probs[k] = sum
			}
			u := g.r.Float64() * sum
			// Cumulative linear scan; the last bucket absorbs rounding.
			t := int32(g.k - 1)
			for k := 0; k < g.k; k++ {
				if u < g.probs[k] {
					t = int32(k)
					break
				}
			}
			g.z[d][n] = t
			g.add(d, w, t)
		}
	}
}
