package baselines

import (
	"io"
	"math"

	"warplda/internal/alias"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// AliasLDA is Li, Ahmed, Ravi & Smola's (KDD 2014) sampler. It splits the
// conditional into
//
//	p(k) ∝ C_dk (C_wk+β)/(C_k+β̄)   [doc part: exact, O(K_d)]
//	     +  α   (C_wk+β)/(C_k+β̄)   [word part: stale alias table, O(1)]
//
// draws from the mixture, and corrects the staleness of the word part
// with a Metropolis–Hastings step. Per-word alias tables are rebuilt
// every K_w draws, amortizing the O(K) build to O(1) per token. The
// stale distribution q_w is kept densely per word — the O(KV) random
// access footprint Table 2 attributes to this algorithm.
type AliasLDA struct {
	*state
	docTopics [][]int32 // non-zero topic list per document

	wordAlias  []*alias.Table
	staleQ     [][]float32 // per word, stale (C_wk+β)/(C_k+β̄)
	staleSum   []float64   // Σ_k staleQ[w][k]
	drawsLeft  []int32     // draws until rebuild
	mhSteps    int
	buildProbs []float64
}

// NewAliasLDA builds the sampler with random initialization.
func NewAliasLDA(c *corpus.Corpus, cfg sampler.Config) (*AliasLDA, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	a := &AliasLDA{
		state:      st,
		wordAlias:  make([]*alias.Table, c.V),
		staleQ:     make([][]float32, c.V),
		staleSum:   make([]float64, c.V),
		drawsLeft:  make([]int32, c.V),
		mhSteps:    cfg.M,
		buildProbs: make([]float64, cfg.K),
	}
	if a.mhSteps < 1 {
		a.mhSteps = 1
	}
	a.docTopics = make([][]int32, c.NumDocs())
	for d := range c.Docs {
		row := st.cdRow(d)
		for k, cnt := range row {
			if cnt > 0 {
				a.docTopics[d] = append(a.docTopics[d], int32(k))
			}
		}
	}
	return a, nil
}

// Name implements sampler.Sampler.
func (a *AliasLDA) Name() string { return "AliasLDA" }

const aliasLDAStateTag = "alia\x01"

// StateTo implements sampler.Sampler. The stale word-proposal machinery
// is real state: staleQ (the distribution each alias table was built
// from — the tables themselves are rebuilt from it on restore),
// staleSum, and the per-word rebuild countdowns, plus the per-document
// non-zero topic lists whose scan order matters for bit-identical
// resume.
func (a *AliasLDA) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(aliasLDAStateTag)
	a.encodeBase(e)
	e.I32Mat(a.docTopics)
	e.I32s(a.drawsLeft)
	for wid := 0; wid < a.c.V; wid++ {
		if a.staleQ[wid] == nil {
			e.Int(0)
			continue
		}
		e.Int(1)
		e.F32s(a.staleQ[wid])
		e.F64(a.staleSum[wid])
	}
	return e.Err()
}

// RestoreFrom implements sampler.Sampler.
func (a *AliasLDA) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(aliasLDAStateTag)
	z, rngState := a.decodeBase(d)
	if d.Err() != nil {
		return d.Err()
	}
	cd := make([]int32, len(a.cd))
	for di := range a.c.Docs {
		for _, t := range z[di] {
			cd[di*a.k+int(t)]++
		}
	}
	docTopics := decodeTopicLists(d, "doc topic lists", cd, a.c.NumDocs(), a.k)
	drawsLeft := d.I32sLen("rebuild countdowns", a.c.V)
	staleQ := make([][]float32, a.c.V)
	staleSum := make([]float64, a.c.V)
	for wid := 0; wid < a.c.V && d.Err() == nil; wid++ {
		switch has := d.Int(); has {
		case 0:
		case 1:
			staleQ[wid] = d.F32sLen("stale word distribution", a.k)
			staleSum[wid] = d.F64()
			// The stale densities are (C+β)/(C_k+β̄) values: strictly
			// positive and finite. A NaN or non-positive entry would feed
			// the MH correction and mixture weights silently.
			for k, q := range staleQ[wid] {
				if !(q > 0) || math.IsInf(float64(q), 0) {
					d.Failf("baselines: corrupt stale density %g for word %d topic %d", q, wid, k)
					break
				}
			}
			if !(staleSum[wid] > 0) || math.IsInf(staleSum[wid], 0) {
				d.Failf("baselines: corrupt stale mass %g for word %d", staleSum[wid], wid)
			}
		default:
			d.Failf("baselines: corrupt stale-table flag %d for word %d", has, wid)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	a.commitBase(z, rngState)
	a.docTopics = docTopics
	a.drawsLeft = drawsLeft
	a.staleQ = staleQ
	a.staleSum = staleSum
	// Rebuild each alias table from its serialized stale distribution —
	// rebuildWord constructs tables from the same float32-rounded values,
	// so the restored tables match the live ones bit for bit.
	for wid := 0; wid < a.c.V; wid++ {
		if staleQ[wid] == nil {
			a.wordAlias[wid] = nil
			continue
		}
		for k := 0; k < a.k; k++ {
			a.buildProbs[k] = float64(staleQ[wid][k])
		}
		if a.wordAlias[wid] == nil {
			a.wordAlias[wid] = &alias.Table{}
		}
		a.wordAlias[wid].Build(a.buildProbs)
	}
	return nil
}

// rebuildWord refreshes word w's stale distribution and alias table.
func (a *AliasLDA) rebuildWord(w int32) {
	if a.staleQ[w] == nil {
		a.staleQ[w] = make([]float32, a.k)
	}
	cw := a.cwRow(w)
	var sum float64
	for k := 0; k < a.k; k++ {
		q := (float64(cw[k]) + a.beta) / (float64(a.ck[k]) + a.betaBar)
		// Build table and normalizer from the float32-rounded value the MH
		// correction will read back from staleQ — and that a checkpoint
		// serializes — so the live table, the correction density, and a
		// table rebuilt on restore are all views of the same distribution.
		qr := float64(float32(q))
		a.staleQ[w][k] = float32(q)
		a.buildProbs[k] = qr
		sum += qr
	}
	if a.wordAlias[w] == nil {
		a.wordAlias[w] = &alias.Table{}
	}
	a.wordAlias[w].Build(a.buildProbs)
	a.staleSum[w] = sum
	// Rebuild after as many draws as the word has non-zero topics, so the
	// amortized build cost stays O(1) per draw.
	n := int32(0)
	for k := 0; k < a.k; k++ {
		if cw[k] > 0 {
			n++
		}
	}
	if n < 4 {
		n = 4
	}
	a.drawsLeft[w] = n
}

// Iterate implements sampler.Sampler: one document-by-document sweep.
func (a *AliasLDA) Iterate() {
	for d, doc := range a.c.Docs {
		cd := a.cdRow(d)
		for n, w := range doc {
			old := a.z[d][n]
			a.remove(d, w, old)
			if cd[old] == 0 {
				a.docTopics[d] = dropTopic(a.docTopics[d], old)
			}
			if a.wordAlias[w] == nil || a.drawsLeft[w] <= 0 {
				a.rebuildWord(w)
			}
			cw := a.cwRow(w)

			cur := old
			for step := 0; step < a.mhSteps; step++ {
				// Doc-part mass (exact, current counts).
				var pd float64
				for _, k := range a.docTopics[d] {
					pd += float64(cd[k]) * (float64(cw[k]) + a.beta) /
						(float64(a.ck[k]) + a.betaBar)
				}
				pw := a.alpha * a.staleSum[w]

				// Draw the proposal from the mixture.
				var t int32
				if a.r.Float64()*(pd+pw) < pd {
					u := a.r.Float64() * pd
					t = a.docTopics[d][len(a.docTopics[d])-1]
					for _, k := range a.docTopics[d] {
						u -= float64(cd[k]) * (float64(cw[k]) + a.beta) /
							(float64(a.ck[k]) + a.betaBar)
						if u <= 0 {
							t = k
							break
						}
					}
				} else {
					t = int32(a.wordAlias[w].Draw(a.r))
					a.drawsLeft[w]--
				}
				if t == cur {
					continue
				}

				// MH correction: target p uses fresh counts; proposal
				// density mixes the fresh doc part with the stale word part.
				pTrue := func(k int32) float64 {
					return (float64(cd[k]) + a.alpha) * (float64(cw[k]) + a.beta) /
						(float64(a.ck[k]) + a.betaBar)
				}
				qProp := func(k int32) float64 {
					return float64(cd[k])*(float64(cw[k])+a.beta)/
						(float64(a.ck[k])+a.betaBar) + a.alpha*float64(a.staleQ[w][k])
				}
				pi := pTrue(t) * qProp(cur) / (pTrue(cur) * qProp(t))
				if pi >= 1 || a.r.Float64() < pi {
					cur = t
				}
			}

			if cd[cur] == 0 {
				a.docTopics[d] = append(a.docTopics[d], cur)
			}
			a.add(d, w, cur)
			a.z[d][n] = cur
		}
	}
}
