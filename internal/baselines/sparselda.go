package baselines

import (
	"io"

	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// SparseLDA is Yao, Mimno & McCallum's (KDD 2009) sparsity-aware sampler.
// It factorizes the CGS conditional into three buckets
//
//	p(k) ∝ C_wk (C_dk+α)/(C_k+β̄)   [q: word bucket,  O(K_w)]
//	     +  β C_dk /(C_k+β̄)         [r: doc bucket,   O(K_d)]
//	     +  α β   /(C_k+β̄)          [s: smoothing,    cached]
//
// and only enumerates the non-zero entries of the sparse rows c_w and
// c_d, giving O(K_d + K_w) per token. The smoothing normalizer s and the
// document normalizer r are maintained incrementally.
type SparseLDA struct {
	*state
	ssum float64 // Σ_k αβ/(C_k+β̄)

	// Sparse views of the count rows, maintained incrementally: non-zero
	// topic lists per word and per document.
	wordTopics [][]int32
	docTopics  [][]int32
}

// NewSparseLDA builds the sampler with random initialization.
func NewSparseLDA(c *corpus.Corpus, cfg sampler.Config) (*SparseLDA, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	s := &SparseLDA{state: st}
	s.wordTopics = make([][]int32, c.V)
	for w := 0; w < c.V; w++ {
		row := st.cwRow(int32(w))
		for k, cnt := range row {
			if cnt > 0 {
				s.wordTopics[w] = append(s.wordTopics[w], int32(k))
			}
		}
	}
	s.docTopics = make([][]int32, c.NumDocs())
	for d := range c.Docs {
		row := st.cdRow(d)
		for k, cnt := range row {
			if cnt > 0 {
				s.docTopics[d] = append(s.docTopics[d], int32(k))
			}
		}
	}
	s.recomputeSSum()
	return s, nil
}

// Name implements sampler.Sampler.
func (s *SparseLDA) Name() string { return "SparseLDA" }

const sparseLDAStateTag = "sprs\x01"

// StateTo implements sampler.Sampler. Beyond the shared base, the
// incrementally maintained non-zero topic lists are state: bucket
// sampling scans them cumulatively, so their *order* (scrambled by
// swap-remove over the run) matters for bit-identical resume. ssum is
// rebuilt at the top of every Iterate and so is not serialized.
func (s *SparseLDA) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(sparseLDAStateTag)
	s.encodeBase(e)
	e.I32Mat(s.docTopics)
	e.I32Mat(s.wordTopics)
	return e.Err()
}

// RestoreFrom implements sampler.Sampler.
func (s *SparseLDA) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(sparseLDAStateTag)
	z, rngState := s.decodeBase(d)
	if d.Err() != nil {
		return d.Err()
	}
	// The topic lists are validated against counts recomputed from the
	// *decoded* z, before anything is committed.
	cd := make([]int32, len(s.cd))
	cw := make([]int32, len(s.cw))
	for di, doc := range s.c.Docs {
		for n, w := range doc {
			t := z[di][n]
			cd[di*s.k+int(t)]++
			cw[int(w)*s.k+int(t)]++
		}
	}
	docTopics := decodeTopicLists(d, "doc topic lists", cd, s.c.NumDocs(), s.k)
	wordTopics := decodeTopicLists(d, "word topic lists", cw, s.c.V, s.k)
	if err := d.Err(); err != nil {
		return err
	}
	s.commitBase(z, rngState)
	s.docTopics = docTopics
	s.wordTopics = wordTopics
	s.recomputeSSum()
	return nil
}

func (s *SparseLDA) recomputeSSum() {
	s.ssum = 0
	for k := 0; k < s.k; k++ {
		s.ssum += s.alpha * s.beta / (float64(s.ck[k]) + s.betaBar)
	}
}

// ckChanged updates ssum for one topic whose global count moved from old
// to new.
func (s *SparseLDA) ckChanged(k int32, old, new int32) {
	s.ssum -= s.alpha * s.beta / (float64(old) + s.betaBar)
	s.ssum += s.alpha * s.beta / (float64(new) + s.betaBar)
}

func dropTopic(list []int32, k int32) []int32 {
	for i, t := range list {
		if t == k {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// Iterate implements sampler.Sampler: one document-by-document sweep.
func (s *SparseLDA) Iterate() {
	// Guard against float drift: rebuild the smoothing sum once per pass.
	s.recomputeSSum()
	for d, doc := range s.c.Docs {
		cd := s.cdRow(d)
		// Document bucket normalizer for this document.
		var rsum float64
		for _, k := range s.docTopics[d] {
			rsum += s.beta * float64(cd[k]) / (float64(s.ck[k]) + s.betaBar)
		}
		for n, w := range doc {
			old := s.z[d][n]
			// Remove the token, updating every incremental quantity.
			oldCk := s.ck[old]
			rsum -= s.beta * float64(cd[old]) / (float64(oldCk) + s.betaBar)
			s.remove(d, w, old)
			s.ckChanged(old, oldCk, s.ck[old])
			rsum += s.beta * float64(cd[old]) / (float64(s.ck[old]) + s.betaBar)
			if cd[old] == 0 {
				s.docTopics[d] = dropTopic(s.docTopics[d], old)
			}
			if s.cwRow(w)[old] == 0 {
				s.wordTopics[w] = dropTopic(s.wordTopics[w], old)
			}

			// Word bucket: O(K_w) enumeration.
			cw := s.cwRow(w)
			var qsum float64
			for _, k := range s.wordTopics[w] {
				qsum += float64(cw[k]) * (float64(cd[k]) + s.alpha) /
					(float64(s.ck[k]) + s.betaBar)
			}

			u := s.r.Float64() * (s.ssum + rsum + qsum)
			var t int32 = -1
			switch {
			case u < qsum:
				for _, k := range s.wordTopics[w] {
					u -= float64(cw[k]) * (float64(cd[k]) + s.alpha) /
						(float64(s.ck[k]) + s.betaBar)
					if u <= 0 {
						t = k
						break
					}
				}
				if t < 0 {
					t = s.wordTopics[w][len(s.wordTopics[w])-1]
				}
			case u < qsum+rsum:
				u -= qsum
				for _, k := range s.docTopics[d] {
					u -= s.beta * float64(cd[k]) / (float64(s.ck[k]) + s.betaBar)
					if u <= 0 {
						t = k
						break
					}
				}
				if t < 0 {
					t = s.docTopics[d][len(s.docTopics[d])-1]
				}
			default:
				u -= qsum + rsum
				for k := 0; k < s.k; k++ {
					u -= s.alpha * s.beta / (float64(s.ck[k]) + s.betaBar)
					if u <= 0 {
						t = int32(k)
						break
					}
				}
				if t < 0 {
					t = int32(s.k - 1)
				}
			}

			// Add the token back with its new topic.
			if cd[t] == 0 {
				s.docTopics[d] = append(s.docTopics[d], t)
			}
			if cw[t] == 0 {
				s.wordTopics[w] = append(s.wordTopics[w], t)
			}
			newCkOld := s.ck[t]
			rsum -= s.beta * float64(cd[t]) / (float64(newCkOld) + s.betaBar)
			s.add(d, w, t)
			s.ckChanged(t, newCkOld, s.ck[t])
			rsum += s.beta * float64(cd[t]) / (float64(s.ck[t]) + s.betaBar)
			s.z[d][n] = t
		}
	}
}
