package baselines

import (
	"io"

	"warplda/internal/corpus"
	"warplda/internal/ftree"
	"warplda/internal/sampler"
)

// FPlusLDA is Yu, Hsieh, Yun, Vishwanathan & Dhillon's (WWW 2015) F+LDA:
// the same factorization as AliasLDA,
//
//	p(k) ∝ C_dk f(k) + α f(k),   f(k) = (C_wk+β)/(C_k+β̄)
//
// but visiting tokens *word-by-word* and sampling the smoothing term
// exactly from an F+ tree over f — no staleness, no MH correction. The
// doc term is an O(K_d) enumeration of the current document's non-zero
// topics, which is the O(DK) random access Table 2 charges to F+LDA.
type FPlusLDA struct {
	*state
	wm        *corpus.WordMajor
	tokenPos  []int32   // per word-major slot, the token index n within its document
	docTopics [][]int32 // non-zero topic list per document
	tree      *ftree.Tree
	buildBuf  []float64
}

// NewFPlusLDA builds the sampler with random initialization.
func NewFPlusLDA(c *corpus.Corpus, cfg sampler.Config) (*FPlusLDA, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	f := &FPlusLDA{state: st, tree: ftree.New(cfg.K)}
	f.wm = corpus.BuildWordMajor(c)
	// Map word-major slots back to (doc, position) so z can be updated.
	f.tokenPos = make([]int32, c.NumTokens())
	next := make([]int32, c.V)
	copy(next, f.wm.Start[:c.V])
	for _, doc := range c.Docs {
		for n, w := range doc {
			f.tokenPos[next[w]] = int32(n)
			next[w]++
		}
	}
	f.docTopics = make([][]int32, c.NumDocs())
	for d := range c.Docs {
		row := st.cdRow(d)
		for k, cnt := range row {
			if cnt > 0 {
				f.docTopics[d] = append(f.docTopics[d], int32(k))
			}
		}
	}
	return f, nil
}

// Name implements sampler.Sampler.
func (f *FPlusLDA) Name() string { return "F+LDA" }

const fldaStateTag = "flda\x01"

// StateTo implements sampler.Sampler. The F+ tree is rebuilt per word
// inside Iterate and the word-major index is immutable, so beyond the
// base only the per-document topic lists (scan order matters) are
// state.
func (f *FPlusLDA) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(fldaStateTag)
	f.encodeBase(e)
	e.I32Mat(f.docTopics)
	return e.Err()
}

// RestoreFrom implements sampler.Sampler.
func (f *FPlusLDA) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(fldaStateTag)
	z, rngState := f.decodeBase(d)
	if d.Err() != nil {
		return d.Err()
	}
	cd := make([]int32, len(f.cd))
	for di := range f.c.Docs {
		for _, t := range z[di] {
			cd[di*f.k+int(t)]++
		}
	}
	docTopics := decodeTopicLists(d, "doc topic lists", cd, f.c.NumDocs(), f.k)
	if err := d.Err(); err != nil {
		return err
	}
	f.commitBase(z, rngState)
	f.docTopics = docTopics
	return nil
}

func (f *FPlusLDA) treeWeight(w int32, k int32) float64 {
	return (float64(f.cwRow(w)[k]) + f.beta) / (float64(f.ck[k]) + f.betaBar)
}

// Iterate implements sampler.Sampler: one word-by-word sweep.
func (f *FPlusLDA) Iterate() {
	for w := int32(0); w < int32(f.c.V); w++ {
		lo, hi := f.wm.Start[w], f.wm.Start[w+1]
		if lo == hi {
			continue
		}
		// Build the F+ tree over f(k) for this word: O(K) bulk build
		// (per-leaf Set would be O(K log K)).
		cw := f.cwRow(w)
		if f.buildBuf == nil {
			f.buildBuf = make([]float64, f.k)
		}
		for k := 0; k < f.k; k++ {
			f.buildBuf[k] = (float64(cw[k]) + f.beta) / (float64(f.ck[k]) + f.betaBar)
		}
		f.tree.Build(f.buildBuf)
		for i := lo; i < hi; i++ {
			d := int(f.wm.DocID[i])
			n := int(f.tokenPos[i])
			old := f.z[d][n]
			f.remove(d, w, old)
			f.tree.Set(int(old), f.treeWeight(w, old))
			cd := f.cdRow(d)
			if cd[old] == 0 {
				f.docTopics[d] = dropTopic(f.docTopics[d], old)
			}

			// Doc part mass via tree lookups on the non-zero doc topics.
			var pd float64
			for _, k := range f.docTopics[d] {
				pd += float64(cd[k]) * f.tree.Get(int(k))
			}
			ps := f.alpha * f.tree.Total()

			var t int32
			if f.r.Float64()*(pd+ps) < pd {
				u := f.r.Float64() * pd
				t = f.docTopics[d][len(f.docTopics[d])-1]
				for _, k := range f.docTopics[d] {
					u -= float64(cd[k]) * f.tree.Get(int(k))
					if u <= 0 {
						t = k
						break
					}
				}
			} else {
				t = int32(f.tree.Sample(f.r))
			}

			if cd[t] == 0 {
				f.docTopics[d] = append(f.docTopics[d], t)
			}
			f.add(d, w, t)
			f.tree.Set(int(t), f.treeWeight(w, t))
			f.z[d][n] = t
		}
	}
}
