package baselines

import (
	"math"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func testCorpus(seed uint64) *corpus.Corpus {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 150, V: 200, K: 6, MeanLen: 40, Alpha: 0.08, Beta: 0.05, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func testCfg(k int) sampler.Config {
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	return cfg
}

// every constructor, behind one signature for table-driven tests.
type consistencyChecker interface {
	sampler.Sampler
	check() error
}

func (g *CGS) check() error       { return g.checkConsistent() }
func (s *SparseLDA) check() error { return s.checkConsistent() }
func (a *AliasLDA) check() error  { return a.checkConsistent() }
func (f *FPlusLDA) check() error  { return f.checkConsistent() }
func (l *LightLDA) check() error  { return l.checkConsistent() }

func allSamplers(t *testing.T, c *corpus.Corpus, cfg sampler.Config) map[string]consistencyChecker {
	t.Helper()
	out := map[string]consistencyChecker{}
	if g, err := NewCGS(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["cgs"] = g
	}
	if s, err := NewSparseLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["sparselda"] = s
	}
	if a, err := NewAliasLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["aliaslda"] = a
	}
	if f, err := NewFPlusLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["flda"] = f
	}
	if l, err := NewLightLDA(c, cfg, LightLDAOptions{}); err != nil {
		t.Fatal(err)
	} else {
		out["lightlda"] = l
	}
	return out
}

func TestCountsStayConsistent(t *testing.T) {
	c := testCorpus(1)
	for name, s := range allSamplers(t, c, testCfg(6)) {
		for it := 0; it < 3; it++ {
			s.Iterate()
			if err := s.check(); err != nil {
				t.Errorf("%s iteration %d: %v", name, it, err)
				break
			}
		}
	}
}

func TestAssignmentsInRange(t *testing.T) {
	c := testCorpus(2)
	cfg := testCfg(6)
	for name, s := range allSamplers(t, c, cfg) {
		s.Iterate()
		z := s.Assignments()
		if len(z) != len(c.Docs) {
			t.Fatalf("%s: wrong doc count", name)
		}
		for d := range z {
			if len(z[d]) != len(c.Docs[d]) {
				t.Fatalf("%s: doc %d length mismatch", name, d)
			}
			for _, k := range z[d] {
				if k < 0 || int(k) >= cfg.K {
					t.Fatalf("%s: topic %d out of range", name, k)
				}
			}
		}
	}
}

func TestAllConverge(t *testing.T) {
	c := testCorpus(3)
	cfg := testCfg(6)
	for name, s := range allSamplers(t, c, cfg) {
		before := eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		for i := 0; i < 15; i++ {
			s.Iterate()
		}
		after := eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		if after <= before {
			t.Errorf("%s: log-likelihood %.1f -> %.1f (no improvement)", name, before, after)
		}
	}
}

// All samplers target (nearly) the same posterior: after enough burn-in
// they should land in the same likelihood band. This is the paper's
// Figure 5 column 1 claim — same final quality.
func TestConvergeToSameBand(t *testing.T) {
	c := testCorpus(4)
	cfg := testCfg(6)
	finals := map[string]float64{}
	for name, s := range allSamplers(t, c, cfg) {
		for i := 0; i < 40; i++ {
			s.Iterate()
		}
		finals[name] = eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	}
	ref := finals["cgs"]
	for name, ll := range finals {
		if math.Abs(ll-ref) > 0.02*math.Abs(ref) {
			t.Errorf("%s final LL %.1f more than 2%% from CGS %.1f", name, ll, ref)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	c := testCorpus(5)
	cfg := testCfg(6)
	a := allSamplers(t, c, cfg)
	b := allSamplers(t, c, cfg)
	for name := range a {
		a[name].Iterate()
		b[name].Iterate()
		if !reflect.DeepEqual(a[name].Assignments(), b[name].Assignments()) {
			t.Errorf("%s: same seed, different trajectory", name)
		}
	}
}

func TestLightLDAVariantsConsistentAndConverge(t *testing.T) {
	c := testCorpus(6)
	cfg := testCfg(6)
	variants := []LightLDAOptions{
		{},
		{DelayWordCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true, SimpleProposal: true},
	}
	names := map[string]bool{}
	for _, opt := range variants {
		l, err := NewLightLDA(c, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		if names[l.Name()] {
			t.Fatalf("duplicate variant tag %q", l.Name())
		}
		names[l.Name()] = true
		before := eval.LogJoint(c, l.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		for i := 0; i < 15; i++ {
			l.Iterate()
			if err := l.checkConsistent(); err != nil {
				t.Fatalf("%s: %v", l.Name(), err)
			}
		}
		after := eval.LogJoint(c, l.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		if after <= before {
			t.Errorf("%s: no improvement %.1f -> %.1f", l.Name(), before, after)
		}
	}
	for _, want := range []string{"LightLDA", "LightLDA+DW", "LightLDA+DW+DD", "LightLDA+DW+DD+SP"} {
		if !names[want] {
			t.Errorf("missing variant %s (have %v)", want, names)
		}
	}
}

func TestSingleTokenDocsAndWords(t *testing.T) {
	// Pathological corpus: singleton docs and hapax words.
	c := &corpus.Corpus{V: 6, Docs: [][]int32{{0}, {1}, {2, 2}, {3, 4, 5}, {}}}
	cfg := testCfg(3)
	for name, s := range allSamplers(t, c, cfg) {
		for i := 0; i < 5; i++ {
			s.Iterate()
			if err := s.check(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	c := testCorpus(7)
	bad := sampler.Config{K: 0, Alpha: 1, Beta: 1}
	if _, err := NewCGS(c, bad); err == nil {
		t.Error("CGS accepted K=0")
	}
	if _, err := NewLightLDA(c, bad, LightLDAOptions{}); err == nil {
		t.Error("LightLDA accepted K=0")
	}
}

func TestStateCheckDetectsCorruption(t *testing.T) {
	c := testCorpus(8)
	g, err := NewCGS(c, testCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	g.cd[0] += 5
	if err := g.checkConsistent(); err == nil {
		t.Fatal("corrupted cd not detected")
	}
}

func TestRemovePanicsBelowZero(t *testing.T) {
	c := &corpus.Corpus{V: 2, Docs: [][]int32{{0}}}
	st, err := newState(c, testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	other := 1 - st.z[0][0]
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	st.remove(0, 0, other)
}

func BenchmarkCGSIterate(b *testing.B)       { benchIterate(b, "cgs") }
func BenchmarkSparseLDAIterate(b *testing.B) { benchIterate(b, "sparselda") }
func BenchmarkAliasLDAIterate(b *testing.B)  { benchIterate(b, "aliaslda") }
func BenchmarkFLDAIterate(b *testing.B)      { benchIterate(b, "flda") }
func BenchmarkLightLDAIterate(b *testing.B)  { benchIterate(b, "lightlda") }

func benchIterate(b *testing.B, name string) {
	c := testCorpus(9)
	t := &testing.T{}
	s := allSamplers(t, c, testCfg(32))[name]
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}
