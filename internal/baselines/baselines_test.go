package baselines

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func testCorpus(seed uint64) *corpus.Corpus {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 150, V: 200, K: 6, MeanLen: 40, Alpha: 0.08, Beta: 0.05, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func testCfg(k int) sampler.Config {
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	return cfg
}

// every constructor, behind one signature for table-driven tests.
type consistencyChecker interface {
	sampler.Sampler
	check() error
}

func (g *CGS) check() error       { return g.checkConsistent() }
func (s *SparseLDA) check() error { return s.checkConsistent() }
func (a *AliasLDA) check() error  { return a.checkConsistent() }
func (f *FPlusLDA) check() error  { return f.checkConsistent() }
func (l *LightLDA) check() error  { return l.checkConsistent() }

func allSamplers(t *testing.T, c *corpus.Corpus, cfg sampler.Config) map[string]consistencyChecker {
	t.Helper()
	out := map[string]consistencyChecker{}
	if g, err := NewCGS(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["cgs"] = g
	}
	if s, err := NewSparseLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["sparselda"] = s
	}
	if a, err := NewAliasLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["aliaslda"] = a
	}
	if f, err := NewFPlusLDA(c, cfg); err != nil {
		t.Fatal(err)
	} else {
		out["flda"] = f
	}
	if l, err := NewLightLDA(c, cfg, LightLDAOptions{}); err != nil {
		t.Fatal(err)
	} else {
		out["lightlda"] = l
	}
	return out
}

func TestCountsStayConsistent(t *testing.T) {
	c := testCorpus(1)
	for name, s := range allSamplers(t, c, testCfg(6)) {
		for it := 0; it < 3; it++ {
			s.Iterate()
			if err := s.check(); err != nil {
				t.Errorf("%s iteration %d: %v", name, it, err)
				break
			}
		}
	}
}

func TestAssignmentsInRange(t *testing.T) {
	c := testCorpus(2)
	cfg := testCfg(6)
	for name, s := range allSamplers(t, c, cfg) {
		s.Iterate()
		z := s.Assignments()
		if len(z) != len(c.Docs) {
			t.Fatalf("%s: wrong doc count", name)
		}
		for d := range z {
			if len(z[d]) != len(c.Docs[d]) {
				t.Fatalf("%s: doc %d length mismatch", name, d)
			}
			for _, k := range z[d] {
				if k < 0 || int(k) >= cfg.K {
					t.Fatalf("%s: topic %d out of range", name, k)
				}
			}
		}
	}
}

func TestAllConverge(t *testing.T) {
	c := testCorpus(3)
	cfg := testCfg(6)
	for name, s := range allSamplers(t, c, cfg) {
		before := eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		for i := 0; i < 15; i++ {
			s.Iterate()
		}
		after := eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		if after <= before {
			t.Errorf("%s: log-likelihood %.1f -> %.1f (no improvement)", name, before, after)
		}
	}
}

// All samplers target (nearly) the same posterior: after enough burn-in
// they should land in the same likelihood band. This is the paper's
// Figure 5 column 1 claim — same final quality.
func TestConvergeToSameBand(t *testing.T) {
	c := testCorpus(4)
	cfg := testCfg(6)
	finals := map[string]float64{}
	for name, s := range allSamplers(t, c, cfg) {
		for i := 0; i < 40; i++ {
			s.Iterate()
		}
		finals[name] = eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	}
	ref := finals["cgs"]
	for name, ll := range finals {
		if math.Abs(ll-ref) > 0.02*math.Abs(ref) {
			t.Errorf("%s final LL %.1f more than 2%% from CGS %.1f", name, ll, ref)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	c := testCorpus(5)
	cfg := testCfg(6)
	a := allSamplers(t, c, cfg)
	b := allSamplers(t, c, cfg)
	for name := range a {
		a[name].Iterate()
		b[name].Iterate()
		if !reflect.DeepEqual(a[name].Assignments(), b[name].Assignments()) {
			t.Errorf("%s: same seed, different trajectory", name)
		}
	}
}

func TestLightLDAVariantsConsistentAndConverge(t *testing.T) {
	c := testCorpus(6)
	cfg := testCfg(6)
	variants := []LightLDAOptions{
		{},
		{DelayWordCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true, SimpleProposal: true},
	}
	names := map[string]bool{}
	for _, opt := range variants {
		l, err := NewLightLDA(c, cfg, opt)
		if err != nil {
			t.Fatal(err)
		}
		if names[l.Name()] {
			t.Fatalf("duplicate variant tag %q", l.Name())
		}
		names[l.Name()] = true
		before := eval.LogJoint(c, l.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		for i := 0; i < 15; i++ {
			l.Iterate()
			if err := l.checkConsistent(); err != nil {
				t.Fatalf("%s: %v", l.Name(), err)
			}
		}
		after := eval.LogJoint(c, l.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
		if after <= before {
			t.Errorf("%s: no improvement %.1f -> %.1f", l.Name(), before, after)
		}
	}
	for _, want := range []string{"LightLDA", "LightLDA+DW", "LightLDA+DW+DD", "LightLDA+DW+DD+SP"} {
		if !names[want] {
			t.Errorf("missing variant %s (have %v)", want, names)
		}
	}
}

func TestSingleTokenDocsAndWords(t *testing.T) {
	// Pathological corpus: singleton docs and hapax words.
	c := &corpus.Corpus{V: 6, Docs: [][]int32{{0}, {1}, {2, 2}, {3, 4, 5}, {}}}
	cfg := testCfg(3)
	for name, s := range allSamplers(t, c, cfg) {
		for i := 0; i < 5; i++ {
			s.Iterate()
			if err := s.check(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	c := testCorpus(7)
	bad := sampler.Config{K: 0, Alpha: 1, Beta: 1}
	if _, err := NewCGS(c, bad); err == nil {
		t.Error("CGS accepted K=0")
	}
	if _, err := NewLightLDA(c, bad, LightLDAOptions{}); err == nil {
		t.Error("LightLDA accepted K=0")
	}
}

func TestStateCheckDetectsCorruption(t *testing.T) {
	c := testCorpus(8)
	g, err := NewCGS(c, testCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	g.cd[0] += 5
	if err := g.checkConsistent(); err == nil {
		t.Fatal("corrupted cd not detected")
	}
}

func TestRemovePanicsBelowZero(t *testing.T) {
	c := &corpus.Corpus{V: 2, Docs: [][]int32{{0}}}
	st, err := newState(c, testCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	other := 1 - st.z[0][0]
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	st.remove(0, 0, other)
}

func BenchmarkCGSIterate(b *testing.B)       { benchIterate(b, "cgs") }
func BenchmarkSparseLDAIterate(b *testing.B) { benchIterate(b, "sparselda") }
func BenchmarkAliasLDAIterate(b *testing.B)  { benchIterate(b, "aliaslda") }
func BenchmarkFLDAIterate(b *testing.B)      { benchIterate(b, "flda") }
func BenchmarkLightLDAIterate(b *testing.B)  { benchIterate(b, "lightlda") }

func benchIterate(b *testing.B, name string) {
	c := testCorpus(9)
	t := &testing.T{}
	s := allSamplers(t, c, testCfg(32))[name]
	tokens := c.NumTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Iterate()
	}
	b.ReportMetric(float64(tokens*b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// TestStateResumeBitIdentical is the checkpoint/resume contract for
// every baseline: N iterations, StateTo, RestoreFrom into a *fresh*
// sampler, N more iterations — and the trajectory must match an
// uninterrupted 2N-iteration run token for token.
func TestStateResumeBitIdentical(t *testing.T) {
	c := testCorpus(9)
	cfg := testCfg(6)
	full := allSamplers(t, c, cfg)
	half := allSamplers(t, c, cfg)
	fresh := allSamplers(t, c, cfg)
	const n = 4
	for name, s := range full {
		for i := 0; i < 2*n; i++ {
			s.Iterate()
		}
		h := half[name]
		for i := 0; i < n; i++ {
			h.Iterate()
		}
		var buf bytes.Buffer
		if err := h.StateTo(&buf); err != nil {
			t.Fatalf("%s: StateTo: %v", name, err)
		}
		f := fresh[name]
		if err := f.RestoreFrom(&buf); err != nil {
			t.Fatalf("%s: RestoreFrom: %v", name, err)
		}
		if err := f.check(); err != nil {
			t.Fatalf("%s: counts inconsistent after restore: %v", name, err)
		}
		for i := 0; i < n; i++ {
			f.Iterate()
		}
		if !reflect.DeepEqual(f.Assignments(), s.Assignments()) {
			t.Errorf("%s: resumed run diverged from uninterrupted run", name)
		}
	}
}

// The LightLDA ablation variants carry extra state (frozen snapshots,
// stale tables on different refresh schedules); each must resume
// bit-identically too.
func TestLightLDAVariantsResumeBitIdentical(t *testing.T) {
	c := testCorpus(10)
	cfg := testCfg(6)
	variants := []LightLDAOptions{
		{},
		{RefreshTokens: 97}, // stock with a short staleness budget
		{DelayWordCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true, SimpleProposal: true},
	}
	const n = 3
	for _, opt := range variants {
		mk := func() *LightLDA {
			l, err := NewLightLDA(c, cfg, opt)
			if err != nil {
				t.Fatal(err)
			}
			return l
		}
		s, h, f := mk(), mk(), mk()
		for i := 0; i < 2*n; i++ {
			s.Iterate()
		}
		for i := 0; i < n; i++ {
			h.Iterate()
		}
		var buf bytes.Buffer
		if err := h.StateTo(&buf); err != nil {
			t.Fatalf("%s: StateTo: %v", h.Name(), err)
		}
		if err := f.RestoreFrom(&buf); err != nil {
			t.Fatalf("%s: RestoreFrom: %v", f.Name(), err)
		}
		for i := 0; i < n; i++ {
			f.Iterate()
		}
		if !reflect.DeepEqual(f.Assignments(), s.Assignments()) {
			t.Errorf("%s (refresh %d): resumed run diverged", s.Name(), opt.RefreshTokens)
		}
	}
}

// A corrupt or mismatched state blob must fail cleanly: error returned,
// sampler untouched and still consistent.
func TestRestoreRejectsCorruptState(t *testing.T) {
	c := testCorpus(11)
	cfg := testCfg(6)
	donor := allSamplers(t, c, cfg)
	for name, s := range donor {
		s.Iterate()
		var buf bytes.Buffer
		if err := s.StateTo(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		blob := buf.Bytes()

		for _, tc := range []struct {
			name string
			blob []byte
			into func() consistencyChecker
		}{
			{"truncated", blob[:len(blob)/2], func() consistencyChecker { return allSamplers(t, c, cfg)[name] }},
			{"wrong tag", append([]byte("xxxx\x01"), blob[5:]...), func() consistencyChecker { return allSamplers(t, c, cfg)[name] }},
			{"wrong K", blob, func() consistencyChecker { return allSamplers(t, c, testCfg(7))[name] }},
		} {
			target := tc.into()
			if err := target.RestoreFrom(bytes.NewReader(tc.blob)); err == nil {
				t.Errorf("%s/%s: corrupt state accepted", name, tc.name)
				continue
			}
			if err := target.check(); err != nil {
				t.Errorf("%s/%s: sampler mutated by failed restore: %v", name, tc.name, err)
			}
			target.Iterate() // must still be usable
			if err := target.check(); err != nil {
				t.Errorf("%s/%s: sampler unusable after failed restore: %v", name, tc.name, err)
			}
		}
	}
}

// Float state (stale densities, proposal weights) must be validated on
// restore too: a CRC-clean blob carrying NaN or non-positive masses
// would silently skew every draw.
func TestRestoreRejectsCorruptFloatState(t *testing.T) {
	c := testCorpus(12)
	cfg := testCfg(6)

	t.Run("aliaslda stale mass", func(t *testing.T) {
		a, err := NewAliasLDA(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a.Iterate()
		for w := range a.staleSum {
			if a.staleQ[w] != nil {
				a.staleSum[w] = math.NaN()
				break
			}
		}
		var buf bytes.Buffer
		if err := a.StateTo(&buf); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewAliasLDA(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(&buf); err == nil {
			t.Fatal("NaN stale mass accepted")
		}
	})
	t.Run("lightlda proposal weight", func(t *testing.T) {
		l, err := NewLightLDA(c, cfg, LightLDAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		l.Iterate()
		for w := range l.words {
			if len(l.words[w].weights) > 0 {
				l.words[w].weights[0] = -1
				break
			}
		}
		var buf bytes.Buffer
		if err := l.StateTo(&buf); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewLightLDA(c, cfg, LightLDAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreFrom(&buf); err == nil {
			t.Fatal("negative proposal weight accepted")
		}
	})
}
