// Package baselines implements every LDA sampler the paper compares
// WarpLDA against (Table 2): plain collapsed Gibbs sampling, SparseLDA,
// AliasLDA, F+LDA and LightLDA — the last with the delayed-update /
// simple-proposal ablation switches of Figure 7.
//
// All five follow the classic CGS state layout the paper analyses: full
// dense count matrices Cd (D×K) and Cw (V×K) plus the global vector ck,
// updated instantly after each token (except where a Figure-7 variant
// delays them). That layout is the point of the comparison: their random
// accesses spread over O(DK)/O(KV) matrices, while WarpLDA's stay in an
// O(K) row.
package baselines

import (
	"fmt"

	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// state is the collapsed-Gibbs bookkeeping shared by all baselines.
type state struct {
	cfg     sampler.Config
	c       *corpus.Corpus
	k       int
	alpha   float64
	beta    float64
	betaBar float64

	z  [][]int32 // current assignments, corpus-shaped
	cd []int32   // D×K row-major document-topic counts
	cw []int32   // V×K row-major word-topic counts
	ck []int32   // K global topic counts
	r  *rng.RNG
}

func newState(c *corpus.Corpus, cfg sampler.Config) (*state, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	d := c.NumDocs()
	s := &state{
		cfg:     cfg,
		c:       c,
		k:       cfg.K,
		alpha:   cfg.Alpha,
		beta:    cfg.Beta,
		betaBar: cfg.Beta * float64(c.V),
		z:       make([][]int32, d),
		cd:      make([]int32, d*cfg.K),
		cw:      make([]int32, c.V*cfg.K),
		ck:      make([]int32, cfg.K),
		r:       rng.New(cfg.Seed),
	}
	for di, doc := range c.Docs {
		s.z[di] = make([]int32, len(doc))
		for n, w := range doc {
			t := int32(s.r.Intn(cfg.K))
			s.z[di][n] = t
			s.cd[di*s.k+int(t)]++
			s.cw[int(w)*s.k+int(t)]++
			s.ck[t]++
		}
	}
	return s, nil
}

// cdRow returns document d's count row.
func (s *state) cdRow(d int) []int32 { return s.cd[d*s.k : (d+1)*s.k] }

// cwRow returns word w's count row.
func (s *state) cwRow(w int32) []int32 { return s.cw[int(w)*s.k : (int(w)+1)*s.k] }

// remove deletes token (d, w) with topic t from all counts.
func (s *state) remove(d int, w, t int32) {
	s.cd[d*s.k+int(t)]--
	s.cw[int(w)*s.k+int(t)]--
	s.ck[t]--
	if s.cd[d*s.k+int(t)] < 0 || s.cw[int(w)*s.k+int(t)] < 0 || s.ck[t] < 0 {
		panic(fmt.Sprintf("baselines: negative count removing topic %d", t))
	}
}

// add inserts token (d, w) with topic t into all counts.
func (s *state) add(d int, w, t int32) {
	s.cd[d*s.k+int(t)]++
	s.cw[int(w)*s.k+int(t)]++
	s.ck[t]++
}

// Assignments implements part of sampler.Sampler for all baselines.
func (s *state) Assignments() [][]int32 { return s.z }

// encodeBase writes the state every baseline shares: the corpus-shaped
// assignment matrix and the RNG stream. The dense count matrices are
// pure functions of z, so they are rebuilt on restore instead of being
// serialized.
func (s *state) encodeBase(e *sampler.Enc) {
	e.Int(s.k)
	e.I32Mat(s.z)
	e.RNG(s.r)
}

// decodeBase reads and validates the shared state without committing
// anything: the returned assignment matrix matches the corpus shape and
// every topic lies in [0, K). Callers commit with commitBase after the
// rest of their blob has validated too.
func (s *state) decodeBase(d *sampler.Dec) (z [][]int32, rngState [4]uint64) {
	if k := d.Int(); d.Err() == nil && k != s.k {
		d.Failf("baselines: state saved with K=%d, sampler has K=%d", k, s.k)
		return nil, rngState
	}
	z = d.I32Mat("assignments")
	rngState = d.RNGState()
	if d.Err() != nil {
		return nil, rngState
	}
	if len(z) != len(s.c.Docs) {
		d.Failf("baselines: state has %d documents, corpus has %d", len(z), len(s.c.Docs))
		return nil, rngState
	}
	for di, doc := range s.c.Docs {
		if len(z[di]) != len(doc) {
			d.Failf("baselines: state document %d has %d tokens, corpus has %d", di, len(z[di]), len(doc))
			return nil, rngState
		}
		d.CheckTopics("assignments", z[di], s.k)
	}
	return z, rngState
}

// commitBase installs a validated assignment matrix and RNG state and
// rebuilds the dense count matrices from scratch.
func (s *state) commitBase(z [][]int32, rngState [4]uint64) {
	s.z = z
	s.r.SetState(rngState)
	clear(s.cd)
	clear(s.cw)
	clear(s.ck)
	for di, doc := range s.c.Docs {
		for n, w := range doc {
			t := s.z[di][n]
			s.cd[di*s.k+int(t)]++
			s.cw[int(w)*s.k+int(t)]++
			s.ck[t]++
		}
	}
}

// decodeTopicLists reads and validates a per-row non-zero topic list
// collection (the incrementally maintained sparse views several
// baselines keep): row counts come from counts (rows × k, row-major),
// and each list must contain exactly that row's non-zero topics, in any
// order — the order is part of the state, because bucket sampling scans
// the list cumulatively. counts must already reflect the restored z.
func decodeTopicLists(d *sampler.Dec, what string, counts []int32, rows, k int) [][]int32 {
	lists := d.I32Mat(what)
	if d.Err() != nil {
		return nil
	}
	if len(lists) != rows {
		d.Failf("baselines: %s has %d rows, want %d", what, len(lists), rows)
		return nil
	}
	seen := make([]bool, k)
	for ri, list := range lists {
		row := counts[ri*k : (ri+1)*k]
		nonzero := 0
		for _, c := range row {
			if c > 0 {
				nonzero++
			}
		}
		if len(list) != nonzero {
			d.Failf("baselines: %s row %d has %d topics, counts have %d non-zero", what, ri, len(list), nonzero)
			return nil
		}
		for _, t := range list {
			if t < 0 || int(t) >= k || row[t] <= 0 || seen[t] {
				d.Failf("baselines: %s row %d lists invalid or duplicate topic %d", what, ri, t)
				return nil
			}
			seen[t] = true
		}
		for _, t := range list {
			seen[t] = false
		}
	}
	return lists
}

// checkConsistent recomputes all counts from z and panics on divergence.
// Used by tests (and cheap enough to call there only).
func (s *state) checkConsistent() error {
	cd := make([]int32, len(s.cd))
	cw := make([]int32, len(s.cw))
	ck := make([]int32, len(s.ck))
	for d, doc := range s.c.Docs {
		for n, w := range doc {
			t := s.z[d][n]
			cd[d*s.k+int(t)]++
			cw[int(w)*s.k+int(t)]++
			ck[t]++
		}
	}
	for i := range cd {
		if cd[i] != s.cd[i] {
			return fmt.Errorf("cd[%d] = %d, want %d", i, s.cd[i], cd[i])
		}
	}
	for i := range cw {
		if cw[i] != s.cw[i] {
			return fmt.Errorf("cw[%d] = %d, want %d", i, s.cw[i], cw[i])
		}
	}
	for i := range ck {
		if ck[i] != s.ck[i] {
			return fmt.Errorf("ck[%d] = %d, want %d", i, s.ck[i], ck[i])
		}
	}
	return nil
}
