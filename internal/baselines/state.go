// Package baselines implements every LDA sampler the paper compares
// WarpLDA against (Table 2): plain collapsed Gibbs sampling, SparseLDA,
// AliasLDA, F+LDA and LightLDA — the last with the delayed-update /
// simple-proposal ablation switches of Figure 7.
//
// All five follow the classic CGS state layout the paper analyses: full
// dense count matrices Cd (D×K) and Cw (V×K) plus the global vector ck,
// updated instantly after each token (except where a Figure-7 variant
// delays them). That layout is the point of the comparison: their random
// accesses spread over O(DK)/O(KV) matrices, while WarpLDA's stay in an
// O(K) row.
package baselines

import (
	"fmt"

	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// state is the collapsed-Gibbs bookkeeping shared by all baselines.
type state struct {
	cfg     sampler.Config
	c       *corpus.Corpus
	k       int
	alpha   float64
	beta    float64
	betaBar float64

	z  [][]int32 // current assignments, corpus-shaped
	cd []int32   // D×K row-major document-topic counts
	cw []int32   // V×K row-major word-topic counts
	ck []int32   // K global topic counts
	r  *rng.RNG
}

func newState(c *corpus.Corpus, cfg sampler.Config) (*state, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	d := c.NumDocs()
	s := &state{
		cfg:     cfg,
		c:       c,
		k:       cfg.K,
		alpha:   cfg.Alpha,
		beta:    cfg.Beta,
		betaBar: cfg.Beta * float64(c.V),
		z:       make([][]int32, d),
		cd:      make([]int32, d*cfg.K),
		cw:      make([]int32, c.V*cfg.K),
		ck:      make([]int32, cfg.K),
		r:       rng.New(cfg.Seed),
	}
	for di, doc := range c.Docs {
		s.z[di] = make([]int32, len(doc))
		for n, w := range doc {
			t := int32(s.r.Intn(cfg.K))
			s.z[di][n] = t
			s.cd[di*s.k+int(t)]++
			s.cw[int(w)*s.k+int(t)]++
			s.ck[t]++
		}
	}
	return s, nil
}

// cdRow returns document d's count row.
func (s *state) cdRow(d int) []int32 { return s.cd[d*s.k : (d+1)*s.k] }

// cwRow returns word w's count row.
func (s *state) cwRow(w int32) []int32 { return s.cw[int(w)*s.k : (int(w)+1)*s.k] }

// remove deletes token (d, w) with topic t from all counts.
func (s *state) remove(d int, w, t int32) {
	s.cd[d*s.k+int(t)]--
	s.cw[int(w)*s.k+int(t)]--
	s.ck[t]--
	if s.cd[d*s.k+int(t)] < 0 || s.cw[int(w)*s.k+int(t)] < 0 || s.ck[t] < 0 {
		panic(fmt.Sprintf("baselines: negative count removing topic %d", t))
	}
}

// add inserts token (d, w) with topic t into all counts.
func (s *state) add(d int, w, t int32) {
	s.cd[d*s.k+int(t)]++
	s.cw[int(w)*s.k+int(t)]++
	s.ck[t]++
}

// Assignments implements part of sampler.Sampler for all baselines.
func (s *state) Assignments() [][]int32 { return s.z }

// checkConsistent recomputes all counts from z and panics on divergence.
// Used by tests (and cheap enough to call there only).
func (s *state) checkConsistent() error {
	cd := make([]int32, len(s.cd))
	cw := make([]int32, len(s.cw))
	ck := make([]int32, len(s.ck))
	for d, doc := range s.c.Docs {
		for n, w := range doc {
			t := s.z[d][n]
			cd[d*s.k+int(t)]++
			cw[int(w)*s.k+int(t)]++
			ck[t]++
		}
	}
	for i := range cd {
		if cd[i] != s.cd[i] {
			return fmt.Errorf("cd[%d] = %d, want %d", i, s.cd[i], cd[i])
		}
	}
	for i := range cw {
		if cw[i] != s.cw[i] {
			return fmt.Errorf("cw[%d] = %d, want %d", i, s.cw[i], cw[i])
		}
	}
	for i := range ck {
		if ck[i] != s.ck[i] {
			return fmt.Errorf("ck[%d] = %d, want %d", i, s.ck[i], ck[i])
		}
	}
	return nil
}
