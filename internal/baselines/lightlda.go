package baselines

import (
	"warplda/internal/alias"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// LightLDAOptions select the Figure-7 ablation variants that bridge from
// stock LightLDA to WarpLDA's MCEM semantics:
//
//	{}                                   → LightLDA (instant updates)
//	{DelayWordCounts}                    → LightLDA+DW
//	{DelayWordCounts, DelayDocCounts}    → LightLDA+DW+DD
//	{DelayWordCounts, DelayDocCounts,
//	 SimpleProposal}                     → LightLDA+DW+DD+SP
type LightLDAOptions struct {
	// DelayWordCounts freezes reads of C_w (and the word-proposal tables)
	// for a whole iteration.
	DelayWordCounts bool
	// DelayDocCounts freezes reads of C_d and c_k for a whole iteration.
	DelayDocCounts bool
	// SimpleProposal replaces q_word ∝ (C_wk+β)/(C_k+β̄) with WarpLDA's
	// q_word ∝ C_wk+β.
	SimpleProposal bool
	// RefreshTokens is the staleness budget of a word's proposal table in
	// tokens for stock LightLDA ("updated every 300 documents"). 0 means
	// 1% of the corpus. Ignored when DelayWordCounts is set.
	RefreshTokens int
}

// wordProp is the cached (stale) word-proposal distribution of one word:
// a sparse alias table over the count part plus the mass split against
// the shared smoothing part.
type wordProp struct {
	topics  []int32
	counts  []int32
	tab     alias.SparseTable
	za      float64 // count-part mass
	builtAt int64   // token clock at build time
}

// LightLDA is Yuan et al.'s (WWW 2015) O(1) Metropolis–Hastings sampler
// with cycle proposals: each token takes M MH step pairs, alternating the
// document proposal q_doc ∝ C_dk+α (sampled by random positioning) and
// the word proposal q_word ∝ (C_wk+β)/(C_k+β̄) (sampled from stale alias
// tables). Counts are updated instantly after every token, which is what
// spreads its random accesses over the O(KV) matrix (Table 2).
type LightLDA struct {
	*state
	opts LightLDAOptions

	words      []wordProp
	smoothTab  alias.Table
	zbSmooth   float64
	ckDenom    []float64 // (c_k+β̄) snapshot backing the stale proposals
	clock      int64
	iterStart  int64
	refresh    int64
	probsBuf   []float64
	mhPairs    int
	cdSnap     []int32 // +DD: frozen C_d
	ckSnap     []int32 // +DD: frozen c_k
	variantTag string
}

// NewLightLDA builds the sampler with random initialization.
func NewLightLDA(c *corpus.Corpus, cfg sampler.Config, opts LightLDAOptions) (*LightLDA, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	l := &LightLDA{
		state:    st,
		opts:     opts,
		words:    make([]wordProp, c.V),
		ckDenom:  make([]float64, cfg.K),
		probsBuf: make([]float64, cfg.K),
		mhPairs:  cfg.M,
	}
	if l.mhPairs < 1 {
		l.mhPairs = 1
	}
	l.refresh = int64(opts.RefreshTokens)
	if l.refresh <= 0 {
		l.refresh = int64(c.NumTokens()/100 + 1)
	}
	l.variantTag = "LightLDA"
	if opts.DelayWordCounts {
		l.variantTag += "+DW"
	}
	if opts.DelayDocCounts {
		l.variantTag += "+DD"
	}
	if opts.SimpleProposal {
		l.variantTag += "+SP"
	}
	for i := range l.words {
		l.words[i].builtAt = -1 << 62
	}
	l.rebuildSmoothing()
	return l, nil
}

// Name implements sampler.Sampler.
func (l *LightLDA) Name() string { return l.variantTag }

// rebuildSmoothing refreshes the shared smoothing alias table and the
// c_k denominator snapshot the stale proposals are built against.
func (l *LightLDA) rebuildSmoothing() {
	var zb float64
	for k := 0; k < l.k; k++ {
		l.ckDenom[k] = float64(l.ck[k]) + l.betaBar
		var q float64
		if l.opts.SimpleProposal {
			q = l.beta
		} else {
			q = l.beta / l.ckDenom[k]
		}
		l.probsBuf[k] = q
		zb += q
	}
	l.smoothTab.Build(l.probsBuf)
	l.zbSmooth = zb
}

// rebuildWord refreshes word w's stale sparse proposal.
func (l *LightLDA) rebuildWord(w int32) {
	wp := &l.words[w]
	wp.topics = wp.topics[:0]
	wp.counts = wp.counts[:0]
	row := l.cwRow(w)
	for k, c := range row {
		if c > 0 {
			wp.topics = append(wp.topics, int32(k))
			wp.counts = append(wp.counts, c)
		}
	}
	var za float64
	weights := make([]float64, len(wp.topics))
	for i, k := range wp.topics {
		var q float64
		if l.opts.SimpleProposal {
			q = float64(wp.counts[i])
		} else {
			q = float64(wp.counts[i]) / l.ckDenom[k]
		}
		weights[i] = q
		za += q
	}
	if len(wp.topics) > 0 {
		wp.tab.Build(wp.topics, weights)
	}
	wp.za = za
	wp.builtAt = l.clock
}

// staleCw returns the word count of topic k as of word w's last rebuild.
// The topic list is ascending (built by a row scan), so binary search.
func (l *LightLDA) staleCw(w int32, k int32) int32 {
	wp := &l.words[w]
	lo, hi := 0, len(wp.topics)
	for lo < hi {
		mid := (lo + hi) / 2
		if wp.topics[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(wp.topics) && wp.topics[lo] == k {
		return wp.counts[lo]
	}
	return 0
}

// qWord evaluates the stale word-proposal density (unnormalized) at k.
func (l *LightLDA) qWord(w, k int32) float64 {
	c := float64(l.staleCw(w, k))
	if l.opts.SimpleProposal {
		return c + l.beta
	}
	return (c + l.beta) / l.ckDenom[k]
}

// drawWord samples from the stale word proposal of w.
func (l *LightLDA) drawWord(w int32) int32 {
	wp := &l.words[w]
	if wp.za > 0 && l.r.Float64()*(wp.za+l.zbSmooth) < wp.za {
		return wp.tab.Draw(l.r)
	}
	return int32(l.smoothTab.Draw(l.r))
}

// Read accessors honoring the delayed-update switches. The live counts
// exclude the current token (it is removed first); the snapshots include
// it — exactly the difference between CGS-style and MCEM-style reads.
func (l *LightLDA) cdGet(d int, k int32) float64 {
	if l.opts.DelayDocCounts {
		return float64(l.cdSnap[d*l.k+int(k)])
	}
	return float64(l.cd[d*l.k+int(k)])
}

func (l *LightLDA) cwGet(w, k int32) float64 {
	if l.opts.DelayWordCounts {
		return float64(l.staleCw(w, k))
	}
	return float64(l.cw[int(w)*l.k+int(k)])
}

func (l *LightLDA) ckGet(k int32) float64 {
	if l.opts.DelayDocCounts {
		return float64(l.ckSnap[k])
	}
	return float64(l.ck[k])
}

// pTarget is the (unnormalized) sampling target at topic k.
func (l *LightLDA) pTarget(d int, w, k int32) float64 {
	return (l.cdGet(d, k) + l.alpha) * (l.cwGet(w, k) + l.beta) /
		(l.ckGet(k) + l.betaBar)
}

// Iterate implements sampler.Sampler: one document-by-document sweep of
// M (doc, word) MH proposal pairs per token.
func (l *LightLDA) Iterate() {
	l.iterStart = l.clock
	l.rebuildSmoothing()
	if l.opts.DelayDocCounts {
		l.cdSnap = append(l.cdSnap[:0], l.cd...)
		l.ckSnap = append(l.ckSnap[:0], l.ck...)
	}
	kAlpha := l.alpha * float64(l.k)
	for d, doc := range l.c.Docs {
		ld := len(doc)
		pDocCount := float64(ld) / (float64(ld) + kAlpha)
		for n, w := range doc {
			old := l.z[d][n]
			l.remove(d, w, old)

			wp := &l.words[w]
			stale := wp.builtAt < l.iterStart
			if !l.opts.DelayWordCounts {
				stale = wp.builtAt <= l.clock-l.refresh
			}
			if stale {
				l.rebuildWord(w)
			}

			cur := old
			for step := 0; step < l.mhPairs; step++ {
				// --- Document proposal ---
				var t int32
				if l.r.Float64() < pDocCount {
					t = l.z[d][l.r.Intn(ld)] // includes the removed token's old topic
				} else {
					t = int32(l.r.Intn(l.k))
				}
				if t != cur {
					// q_doc(k) = C_dk+α with the token included; live counts
					// exclude it, so add the indicator back.
					qd := func(k int32) float64 {
						q := l.cdGet(d, k) + l.alpha
						if !l.opts.DelayDocCounts && k == old {
							q++
						}
						return q
					}
					pi := l.pTarget(d, w, t) * qd(cur) / (l.pTarget(d, w, cur) * qd(t))
					if pi >= 1 || l.r.Float64() < pi {
						cur = t
					}
				}

				// --- Word proposal ---
				t = l.drawWord(w)
				if t != cur {
					pi := l.pTarget(d, w, t) * l.qWord(w, cur) /
						(l.pTarget(d, w, cur) * l.qWord(w, t))
					if pi >= 1 || l.r.Float64() < pi {
						cur = t
					}
				}
			}

			l.add(d, w, cur)
			l.z[d][n] = cur
			l.clock++
		}
	}
}
