package baselines

import (
	"io"
	"math"

	"warplda/internal/alias"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// neverBuilt marks a word whose stale proposal table has not been built
// yet (forces a build on first touch).
const neverBuilt = -1 << 62

// LightLDAOptions select the Figure-7 ablation variants that bridge from
// stock LightLDA to WarpLDA's MCEM semantics:
//
//	{}                                   → LightLDA (instant updates)
//	{DelayWordCounts}                    → LightLDA+DW
//	{DelayWordCounts, DelayDocCounts}    → LightLDA+DW+DD
//	{DelayWordCounts, DelayDocCounts,
//	 SimpleProposal}                     → LightLDA+DW+DD+SP
type LightLDAOptions struct {
	// DelayWordCounts freezes reads of C_w (and the word-proposal tables)
	// for a whole iteration.
	DelayWordCounts bool
	// DelayDocCounts freezes reads of C_d and c_k for a whole iteration.
	DelayDocCounts bool
	// SimpleProposal replaces q_word ∝ (C_wk+β)/(C_k+β̄) with WarpLDA's
	// q_word ∝ C_wk+β.
	SimpleProposal bool
	// RefreshTokens is the staleness budget of a word's proposal table in
	// tokens for stock LightLDA ("updated every 300 documents"). 0 means
	// 1% of the corpus. Ignored when DelayWordCounts is set.
	RefreshTokens int
}

// wordProp is the cached (stale) word-proposal distribution of one word:
// a sparse alias table over the count part plus the mass split against
// the shared smoothing part.
type wordProp struct {
	topics []int32
	counts []int32
	// weights are the alias weights the table was built from. They are
	// kept (rather than recomputed from counts) because they bake in the
	// ckDenom snapshot of the build moment, which a later checkpoint
	// restore could not otherwise reproduce.
	weights []float64
	tab     alias.SparseTable
	za      float64 // count-part mass
	builtAt int64   // token clock at build time
}

// LightLDA is Yuan et al.'s (WWW 2015) O(1) Metropolis–Hastings sampler
// with cycle proposals: each token takes M MH step pairs, alternating the
// document proposal q_doc ∝ C_dk+α (sampled by random positioning) and
// the word proposal q_word ∝ (C_wk+β)/(C_k+β̄) (sampled from stale alias
// tables). Counts are updated instantly after every token, which is what
// spreads its random accesses over the O(KV) matrix (Table 2).
type LightLDA struct {
	*state
	opts LightLDAOptions

	words      []wordProp
	smoothTab  alias.Table
	zbSmooth   float64
	ckDenom    []float64 // (c_k+β̄) snapshot backing the stale proposals
	clock      int64
	iterStart  int64
	refresh    int64
	probsBuf   []float64
	mhPairs    int
	cdSnap     []int32 // +DD: frozen C_d
	ckSnap     []int32 // +DD: frozen c_k
	variantTag string
}

// NewLightLDA builds the sampler with random initialization.
func NewLightLDA(c *corpus.Corpus, cfg sampler.Config, opts LightLDAOptions) (*LightLDA, error) {
	st, err := newState(c, cfg)
	if err != nil {
		return nil, err
	}
	l := &LightLDA{
		state:    st,
		opts:     opts,
		words:    make([]wordProp, c.V),
		ckDenom:  make([]float64, cfg.K),
		probsBuf: make([]float64, cfg.K),
		mhPairs:  cfg.M,
	}
	if l.mhPairs < 1 {
		l.mhPairs = 1
	}
	l.refresh = int64(opts.RefreshTokens)
	if l.refresh <= 0 {
		l.refresh = int64(c.NumTokens()/100 + 1)
	}
	l.variantTag = "LightLDA"
	if opts.DelayWordCounts {
		l.variantTag += "+DW"
	}
	if opts.DelayDocCounts {
		l.variantTag += "+DD"
	}
	if opts.SimpleProposal {
		l.variantTag += "+SP"
	}
	for i := range l.words {
		l.words[i].builtAt = neverBuilt
	}
	l.rebuildSmoothing()
	return l, nil
}

// Name implements sampler.Sampler.
func (l *LightLDA) Name() string { return l.variantTag }

const lightLDAStateTag = "lite\x01"

// StateTo implements sampler.Sampler. Beyond the base, LightLDA's stale
// per-word proposal tables are genuine state: each is serialized as the
// (topics, counts, weights, za, builtAt) it was built from, together
// with the token clock that schedules rebuilds, so stock LightLDA's
// refresh cadence survives a resume exactly. The smoothing table and
// ckDenom snapshot are rebuilt at the top of every Iterate and need no
// serialization.
func (l *LightLDA) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(lightLDAStateTag)
	l.encodeBase(e)
	e.Int(int(l.clock))
	for wid := 0; wid < l.c.V; wid++ {
		wp := &l.words[wid]
		if wp.builtAt == neverBuilt {
			e.Int(0)
			continue
		}
		e.Int(1)
		e.I32s(wp.topics)
		e.I32s(wp.counts)
		e.F64s(wp.weights)
		e.F64(wp.za)
		e.Int(int(wp.builtAt))
	}
	return e.Err()
}

// RestoreFrom implements sampler.Sampler.
func (l *LightLDA) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(lightLDAStateTag)
	z, rngState := l.decodeBase(d)
	clock := int64(d.Int())
	words := make([]wordProp, l.c.V)
	for wid := 0; wid < l.c.V && d.Err() == nil; wid++ {
		wp := &words[wid]
		wp.builtAt = neverBuilt
		switch has := d.Int(); has {
		case 0:
		case 1:
			wp.topics = d.I32s("word proposal topics")
			wp.counts = d.I32sLen("word proposal counts", len(wp.topics))
			wp.weights = d.F64s("word proposal weights")
			wp.za = d.F64()
			wp.builtAt = int64(d.Int())
			d.CheckTopics("word proposal topics", wp.topics, l.k)
			if d.Err() == nil && len(wp.weights) != len(wp.topics) {
				d.Failf("baselines: word %d has %d weights for %d topics", wid, len(wp.weights), len(wp.topics))
			}
			// Proposal weights come from positive counts (optionally over a
			// positive denominator): strictly positive, finite. za is their
			// sum. Corrupt floats would skew every word-proposal draw and
			// acceptance ratio without erroring.
			for i, q := range wp.weights {
				if !(q > 0) || math.IsInf(q, 0) {
					d.Failf("baselines: corrupt proposal weight %g for word %d entry %d", q, wid, i)
					break
				}
			}
			if d.Err() == nil && (!(wp.za >= 0) || math.IsInf(wp.za, 0)) {
				d.Failf("baselines: corrupt proposal mass %g for word %d", wp.za, wid)
			}
			// staleCw binary-searches the topic list; enforce its sort
			// invariant rather than trusting the blob.
			for i := 1; i < len(wp.topics) && d.Err() == nil; i++ {
				if wp.topics[i] <= wp.topics[i-1] {
					d.Failf("baselines: word %d stale topics not ascending", wid)
				}
			}
		default:
			d.Failf("baselines: corrupt word-proposal flag %d for word %d", has, wid)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	l.commitBase(z, rngState)
	l.clock = clock
	l.words = words
	for wid := range l.words {
		wp := &l.words[wid]
		if wp.builtAt != neverBuilt && len(wp.topics) > 0 {
			wp.tab.Build(wp.topics, wp.weights)
		}
	}
	l.rebuildSmoothing()
	return nil
}

// rebuildSmoothing refreshes the shared smoothing alias table and the
// c_k denominator snapshot the stale proposals are built against.
func (l *LightLDA) rebuildSmoothing() {
	var zb float64
	for k := 0; k < l.k; k++ {
		l.ckDenom[k] = float64(l.ck[k]) + l.betaBar
		var q float64
		if l.opts.SimpleProposal {
			q = l.beta
		} else {
			q = l.beta / l.ckDenom[k]
		}
		l.probsBuf[k] = q
		zb += q
	}
	l.smoothTab.Build(l.probsBuf)
	l.zbSmooth = zb
}

// rebuildWord refreshes word w's stale sparse proposal.
func (l *LightLDA) rebuildWord(w int32) {
	wp := &l.words[w]
	wp.topics = wp.topics[:0]
	wp.counts = wp.counts[:0]
	row := l.cwRow(w)
	for k, c := range row {
		if c > 0 {
			wp.topics = append(wp.topics, int32(k))
			wp.counts = append(wp.counts, c)
		}
	}
	var za float64
	wp.weights = wp.weights[:0]
	for i, k := range wp.topics {
		var q float64
		if l.opts.SimpleProposal {
			q = float64(wp.counts[i])
		} else {
			q = float64(wp.counts[i]) / l.ckDenom[k]
		}
		wp.weights = append(wp.weights, q)
		za += q
	}
	if len(wp.topics) > 0 {
		wp.tab.Build(wp.topics, wp.weights)
	}
	wp.za = za
	wp.builtAt = l.clock
}

// staleCw returns the word count of topic k as of word w's last rebuild.
// The topic list is ascending (built by a row scan), so binary search.
func (l *LightLDA) staleCw(w int32, k int32) int32 {
	wp := &l.words[w]
	lo, hi := 0, len(wp.topics)
	for lo < hi {
		mid := (lo + hi) / 2
		if wp.topics[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(wp.topics) && wp.topics[lo] == k {
		return wp.counts[lo]
	}
	return 0
}

// qWord evaluates the stale word-proposal density (unnormalized) at k.
func (l *LightLDA) qWord(w, k int32) float64 {
	c := float64(l.staleCw(w, k))
	if l.opts.SimpleProposal {
		return c + l.beta
	}
	return (c + l.beta) / l.ckDenom[k]
}

// drawWord samples from the stale word proposal of w.
func (l *LightLDA) drawWord(w int32) int32 {
	wp := &l.words[w]
	if wp.za > 0 && l.r.Float64()*(wp.za+l.zbSmooth) < wp.za {
		return wp.tab.Draw(l.r)
	}
	return int32(l.smoothTab.Draw(l.r))
}

// Read accessors honoring the delayed-update switches. The live counts
// exclude the current token (it is removed first); the snapshots include
// it — exactly the difference between CGS-style and MCEM-style reads.
func (l *LightLDA) cdGet(d int, k int32) float64 {
	if l.opts.DelayDocCounts {
		return float64(l.cdSnap[d*l.k+int(k)])
	}
	return float64(l.cd[d*l.k+int(k)])
}

func (l *LightLDA) cwGet(w, k int32) float64 {
	if l.opts.DelayWordCounts {
		return float64(l.staleCw(w, k))
	}
	return float64(l.cw[int(w)*l.k+int(k)])
}

func (l *LightLDA) ckGet(k int32) float64 {
	if l.opts.DelayDocCounts {
		return float64(l.ckSnap[k])
	}
	return float64(l.ck[k])
}

// pTarget is the (unnormalized) sampling target at topic k.
func (l *LightLDA) pTarget(d int, w, k int32) float64 {
	return (l.cdGet(d, k) + l.alpha) * (l.cwGet(w, k) + l.beta) /
		(l.ckGet(k) + l.betaBar)
}

// Iterate implements sampler.Sampler: one document-by-document sweep of
// M (doc, word) MH proposal pairs per token.
func (l *LightLDA) Iterate() {
	l.iterStart = l.clock
	l.rebuildSmoothing()
	if l.opts.DelayDocCounts {
		l.cdSnap = append(l.cdSnap[:0], l.cd...)
		l.ckSnap = append(l.ckSnap[:0], l.ck...)
	}
	kAlpha := l.alpha * float64(l.k)
	for d, doc := range l.c.Docs {
		ld := len(doc)
		pDocCount := float64(ld) / (float64(ld) + kAlpha)
		for n, w := range doc {
			old := l.z[d][n]
			l.remove(d, w, old)

			wp := &l.words[w]
			stale := wp.builtAt < l.iterStart
			if !l.opts.DelayWordCounts {
				stale = wp.builtAt <= l.clock-l.refresh
			}
			if stale {
				l.rebuildWord(w)
			}

			cur := old
			for step := 0; step < l.mhPairs; step++ {
				// --- Document proposal ---
				var t int32
				if l.r.Float64() < pDocCount {
					t = l.z[d][l.r.Intn(ld)] // includes the removed token's old topic
				} else {
					t = int32(l.r.Intn(l.k))
				}
				if t != cur {
					// q_doc(k) = C_dk+α with the token included; live counts
					// exclude it, so add the indicator back.
					qd := func(k int32) float64 {
						q := l.cdGet(d, k) + l.alpha
						if !l.opts.DelayDocCounts && k == old {
							q++
						}
						return q
					}
					pi := l.pTarget(d, w, t) * qd(cur) / (l.pTarget(d, w, cur) * qd(t))
					if pi >= 1 || l.r.Float64() < pi {
						cur = t
					}
				}

				// --- Word proposal ---
				t = l.drawWord(w)
				if t != cur {
					pi := l.pTarget(d, w, t) * l.qWord(w, cur) /
						(l.pTarget(d, w, cur) * l.qWord(w, t))
					if pi >= 1 || l.r.Float64() < pi {
						cur = t
					}
				}
			}

			l.add(d, w, cur)
			l.z[d][n] = cur
			l.clock++
		}
	}
}
