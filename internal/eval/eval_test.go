package eval

import (
	"math"
	"testing"
	"testing/quick"

	"warplda/internal/corpus"
	"warplda/internal/rng"
)

// naiveLogJoint is a direct transcription of the formula using full dense
// count matrices, used as the reference implementation.
func naiveLogJoint(c *corpus.Corpus, z [][]int32, k int, alpha, beta float64) float64 {
	d := len(c.Docs)
	cd := make([][]int32, d)
	for i := range cd {
		cd[i] = make([]int32, k)
	}
	ckw := make([][]int32, k)
	for i := range ckw {
		ckw[i] = make([]int32, c.V)
	}
	ck := make([]int64, k)
	for i, doc := range c.Docs {
		for n, w := range doc {
			t := z[i][n]
			cd[i][t]++
			ckw[t][w]++
			ck[t]++
		}
	}
	lg := func(x float64) float64 { v, _ := math.Lgamma(x); return v }
	alphaBar := alpha * float64(k)
	betaBar := beta * float64(c.V)
	var ll float64
	for i, doc := range c.Docs {
		ll += lg(alphaBar) - lg(alphaBar+float64(len(doc)))
		for t := 0; t < k; t++ {
			ll += lg(alpha+float64(cd[i][t])) - lg(alpha)
		}
	}
	for t := 0; t < k; t++ {
		ll += lg(betaBar) - lg(betaBar+float64(ck[t]))
		for w := 0; w < c.V; w++ {
			ll += lg(beta+float64(ckw[t][w])) - lg(beta)
		}
	}
	return ll
}

func randomAssignments(c *corpus.Corpus, k int, seed uint64) [][]int32 {
	r := rng.New(seed)
	z := make([][]int32, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([]int32, len(doc))
		for n := range doc {
			z[d][n] = int32(r.Intn(k))
		}
	}
	return z
}

func TestMatchesNaive(t *testing.T) {
	c := corpus.GenerateZipf(30, 40, 12, 1.0, 3)
	const k = 7
	z := randomAssignments(c, k, 4)
	got := LogJoint(c, z, k, 0.5, 0.1)
	want := naiveLogJoint(c, z, k, 0.5, 0.1)
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("LogJoint = %.10g, naive = %.10g", got, want)
	}
}

func TestMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := corpus.GenerateZipf(r.Intn(15)+1, r.Intn(20)+2, 8, 1.0, seed)
		k := r.Intn(6) + 2
		z := randomAssignments(c, k, seed+1)
		alpha := 0.05 + r.Float64()
		beta := 0.01 + r.Float64()*0.5
		got := LogJoint(c, z, k, alpha, beta)
		want := naiveLogJoint(c, z, k, alpha, beta)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcentratedBeatsRandom(t *testing.T) {
	// A corpus where topic structure is perfectly recoverable: words 0-9
	// only in docs 0-4, words 10-19 only in docs 5-9.
	c := &corpus.Corpus{V: 20, Docs: make([][]int32, 10)}
	r := rng.New(9)
	for d := 0; d < 10; d++ {
		doc := make([]int32, 30)
		for n := range doc {
			if d < 5 {
				doc[n] = int32(r.Intn(10))
			} else {
				doc[n] = int32(10 + r.Intn(10))
			}
		}
		c.Docs[d] = doc
	}
	const k = 2
	perfect := make([][]int32, 10)
	for d := range perfect {
		perfect[d] = make([]int32, 30)
		for n := range perfect[d] {
			if d >= 5 {
				perfect[d][n] = 1
			}
		}
	}
	random := randomAssignments(c, k, 10)
	lPerfect := LogJoint(c, perfect, k, 0.1, 0.01)
	lRandom := LogJoint(c, random, k, 0.1, 0.01)
	if lPerfect <= lRandom {
		t.Fatalf("perfect clustering LL %.3f not above random %.3f", lPerfect, lRandom)
	}
}

func TestInvariantToTokenOrder(t *testing.T) {
	c := corpus.GenerateZipf(10, 15, 10, 1.0, 5)
	const k = 3
	z := randomAssignments(c, k, 6)
	before := LogJoint(c, z, k, 0.2, 0.05)
	// Reverse tokens (and assignments) of every document: a bag-of-words
	// metric must not change.
	for d := range c.Docs {
		for i, j := 0, len(c.Docs[d])-1; i < j; i, j = i+1, j-1 {
			c.Docs[d][i], c.Docs[d][j] = c.Docs[d][j], c.Docs[d][i]
			z[d][i], z[d][j] = z[d][j], z[d][i]
		}
	}
	after := LogJoint(c, z, k, 0.2, 0.05)
	if math.Abs(before-after) > 1e-9*(1+math.Abs(before)) {
		t.Fatalf("order dependence: %.10g vs %.10g", before, after)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	c := corpus.GenerateZipf(3, 5, 4, 1.0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LogJoint(c, make([][]int32, 1), 2, 0.1, 0.1)
}

func TestPerplexity(t *testing.T) {
	if p := Perplexity(-math.Log(2)*100, 100); math.Abs(p-2) > 1e-9 {
		t.Fatalf("perplexity = %g, want 2", p)
	}
	if !math.IsInf(Perplexity(-1, 0), 1) {
		t.Fatal("zero tokens should give +inf perplexity")
	}
}

func BenchmarkLogJoint(b *testing.B) {
	c := corpus.GenerateZipf(500, 1000, 100, 1.0, 1)
	const k = 64
	z := randomAssignments(c, k, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LogJoint(c, z, k, 0.1, 0.01)
	}
}

func TestLogJointAsymMatchesSymmetric(t *testing.T) {
	c := corpus.GenerateZipf(25, 30, 10, 1.0, 21)
	const k = 5
	z := randomAssignments(c, k, 22)
	sym := LogJoint(c, z, k, 0.3, 0.05)
	vec := make([]float64, k)
	for i := range vec {
		vec[i] = 0.3
	}
	asym := LogJointAsym(c, z, vec, 0.05)
	if math.Abs(sym-asym) > 1e-6*(1+math.Abs(sym)) {
		t.Fatalf("symmetric %.8g vs vectorized %.8g", sym, asym)
	}
}

func TestLogJointAsymPrefersMatchingPrior(t *testing.T) {
	// All tokens on topic 0: a prior concentrated on topic 0 must score
	// higher than one concentrated elsewhere.
	c := corpus.GenerateZipf(10, 12, 8, 1.0, 23)
	z := make([][]int32, len(c.Docs))
	for d := range z {
		z[d] = make([]int32, len(c.Docs[d]))
	}
	matching := LogJointAsym(c, z, []float64{5, 0.1, 0.1}, 0.05)
	mismatched := LogJointAsym(c, z, []float64{0.1, 5, 0.1}, 0.05)
	if matching <= mismatched {
		t.Fatalf("matching prior %.3f not above mismatched %.3f", matching, mismatched)
	}
}
