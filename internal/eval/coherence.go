package eval

import (
	"math"
	"sort"

	"warplda/internal/corpus"
)

// UMassCoherence computes the UMass topic-coherence score (Mimno et al.
// 2011) of one topic given its top words, using document co-occurrence
// statistics from the corpus:
//
//	C = Σ_{i<j} log ( (D(w_i, w_j) + 1) / D(w_j) )
//
// where the top words are ordered by within-topic probability, D(w) is
// the number of documents containing w and D(wi, wj) the number
// containing both. Higher (closer to zero) is better. It is the standard
// automatic check that learned topics are semantically tight, and
// complements the log joint likelihood the paper plots.
func UMassCoherence(c *corpus.Corpus, topWords []int32) float64 {
	if len(topWords) < 2 {
		return 0
	}
	// Document frequencies for the involved words only.
	idx := map[int32]int{}
	for i, w := range topWords {
		idx[w] = i
	}
	n := len(topWords)
	df := make([]float64, n)
	co := make([]float64, n*n)
	seen := make([]bool, n)
	for _, doc := range c.Docs {
		for i := range seen {
			seen[i] = false
		}
		for _, w := range doc {
			if i, ok := idx[w]; ok {
				seen[i] = true
			}
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				continue
			}
			df[i]++
			for j := i + 1; j < n; j++ {
				if seen[j] {
					co[i*n+j]++
				}
			}
		}
	}
	var score float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if df[j] == 0 {
				continue // the later word never appears: skip the pair
			}
			score += math.Log((co[i*n+j] + 1) / df[j])
		}
	}
	return score
}

// TopWordsByCount returns the n most frequent words of topic k according
// to a V×K count matrix (row-major by word), ordered by count descending.
func TopWordsByCount(cw []int32, v, k, topic, n int) []int32 {
	type ws struct {
		w int32
		c int32
	}
	all := make([]ws, v)
	for w := 0; w < v; w++ {
		all[w] = ws{int32(w), cw[w*k+topic]}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].c > all[b].c })
	if n > v {
		n = v
	}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}
