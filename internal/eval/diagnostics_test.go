package eval

import (
	"math"
	"testing"
)

// diagMatrix builds a V×K count matrix with three archetypes:
// topic 0: peaked on word 0; topic 1: uniform over all words; topic 2: empty.
func diagMatrix(v int) []int32 {
	const k = 3
	cw := make([]int32, v*k)
	cw[0*k+0] = 1000 // topic 0: all mass on word 0
	for w := 0; w < v; w++ {
		cw[w*k+1] = 1000 // topic 1: uniform, and heavy enough that the
		// corpus-wide distribution stays near uniform (so the peaked
		// topic genuinely diverges from the background)
	}
	return cw
}

func TestDiagnosticsArchetypes(t *testing.T) {
	const v, k = 50, 3
	d := Diagnostics(diagMatrix(v), v, k, 0.01)
	if len(d) != k {
		t.Fatalf("%d diagnostics, want %d", len(d), k)
	}
	peaked, uniform, empty := d[0], d[1], d[2]

	if peaked.Tokens != 1000 || uniform.Tokens != int64(v)*1000 || empty.Tokens != 0 {
		t.Fatalf("token counts: %d %d %d", peaked.Tokens, uniform.Tokens, empty.Tokens)
	}
	if peaked.DistinctWords != 1 || uniform.DistinctWords != v || empty.DistinctWords != 0 {
		t.Fatalf("distinct words: %d %d %d", peaked.DistinctWords, uniform.DistinctWords, empty.DistinctWords)
	}
	// Effective words: ~1 for peaked, ~V for uniform.
	if peaked.EffectiveWords > 1.5 {
		t.Errorf("peaked effective words %.2f", peaked.EffectiveWords)
	}
	if uniform.EffectiveWords < float64(v)*0.9 {
		t.Errorf("uniform effective words %.2f, want ~%d", uniform.EffectiveWords, v)
	}
	// Top-10 share: ~1 for peaked, ~10/V for uniform.
	if peaked.TopShare < 0.95 {
		t.Errorf("peaked top share %.3f", peaked.TopShare)
	}
	if math.Abs(uniform.TopShare-10.0/float64(v)) > 0.05 {
		t.Errorf("uniform top share %.3f, want ~%.3f", uniform.TopShare, 10.0/float64(v))
	}
	// Corpus distance: the peaked topic diverges from the (mixed) corpus
	// distribution far more than the uniform one.
	if peaked.CorpusDist <= uniform.CorpusDist {
		t.Errorf("corpus distances: peaked %.3f <= uniform %.3f", peaked.CorpusDist, uniform.CorpusDist)
	}
	// KL is non-negative everywhere (up to rounding).
	for _, x := range d {
		if x.CorpusDist < -1e-9 {
			t.Errorf("topic %d negative KL %.3g", x.Topic, x.CorpusDist)
		}
	}
}

func TestDiagnosticsEmptyMatrix(t *testing.T) {
	const v, k = 5, 2
	d := Diagnostics(make([]int32, v*k), v, k, 0.1)
	for _, x := range d {
		if x.Tokens != 0 || x.DistinctWords != 0 {
			t.Fatalf("empty matrix diag %+v", x)
		}
		// Smoothing-only distribution is uniform.
		if math.Abs(x.EffectiveWords-v) > 1e-6 {
			t.Fatalf("empty-topic effective words %.3f", x.EffectiveWords)
		}
		if math.Abs(x.CorpusDist) > 1e-9 {
			t.Fatalf("empty-topic corpus distance %.3g", x.CorpusDist)
		}
	}
}

func TestTopN(t *testing.T) {
	got := topN([]float64{5, 1, 9, 3, 7}, 3)
	var sum float64
	for _, x := range got {
		sum += x
	}
	if len(got) != 3 || sum != 21 { // 9+7+5
		t.Fatalf("topN = %v", got)
	}
	if n := len(topN([]float64{1, 2}, 5)); n != 2 {
		t.Fatalf("overlong topN length %d", n)
	}
}
