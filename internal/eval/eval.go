// Package eval computes the model-quality metric used throughout the
// paper's evaluation: the log joint likelihood
//
//	L = log p(W, Z | α, β)
//	  = Σ_d [ lnΓ(ᾱ) − lnΓ(ᾱ+L_d) + Σ_k lnΓ(α_k+C_dk) − lnΓ(α_k) ]
//	  + Σ_k [ lnΓ(β̄) − lnΓ(β̄+C_k) + Σ_w lnΓ(β+C_kw) − lnΓ(β) ]
//
// (Section 6.1), plus per-token perplexity derived from it. All counts
// are recomputed from the assignment state so the metric is independent
// of any sampler's internal bookkeeping — a sampler with corrupted
// incremental counts cannot hide it from the evaluator.
package eval

import (
	"math"

	"warplda/internal/corpus"
)

// lgamma drops the sign math.Lgamma returns; all arguments here are > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// lgammaCache tabulates lnΓ(base + n) for integer n in [0, size). Counts
// in LDA likelihoods are small non-negative integers offset by a constant
// hyper-parameter, so a table turns most Lgamma calls into a load.
type lgammaCache struct {
	base float64
	tab  []float64
}

func newLgammaCache(base float64, size int) *lgammaCache {
	c := &lgammaCache{base: base, tab: make([]float64, size)}
	for i := range c.tab {
		c.tab[i] = lgamma(base + float64(i))
	}
	return c
}

func (c *lgammaCache) at(n int32) float64 {
	if int(n) < len(c.tab) {
		return c.tab[n]
	}
	return lgamma(c.base + float64(n))
}

// LogJoint computes log p(W, Z | α, β) for symmetric hyper-parameters.
// z[d][n] is the topic of token n of document d and must be shaped
// exactly like the corpus documents with values in [0, K). c may be any
// corpus.Provider — in-memory or memory-mapped.
func LogJoint(c corpus.Provider, z [][]int32, k int, alpha, beta float64) float64 {
	if len(z) != c.NumDocs() {
		panic("eval: z shape mismatch")
	}
	alphaBar := alpha * float64(k)
	betaBar := beta * float64(c.NumWords())

	lgA := newLgammaCache(alpha, 1024)
	lgB := newLgammaCache(beta, 1024)
	lgAlpha := lgamma(alpha)
	lgBeta := lgamma(beta)
	lgAlphaBar := lgamma(alphaBar)

	var ll float64

	// Document side. cd is a dense counter with touched-list reset so the
	// per-document cost is O(L_d), not O(K).
	cd := make([]int32, k)
	var touched []int32
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		doc := c.Doc(d)
		zd := z[d]
		if len(zd) != len(doc) {
			panic("eval: z shape mismatch")
		}
		for _, t := range zd {
			if cd[t] == 0 {
				touched = append(touched, t)
			}
			cd[t]++
		}
		ll += lgAlphaBar - lgamma(alphaBar+float64(len(doc)))
		for _, t := range touched {
			ll += lgA.at(cd[t]) - lgAlpha
			cd[t] = 0
		}
		touched = touched[:0]
	}

	// Word side: scatter topics into word-major order, then one pass per
	// word with the same touched-list trick; accumulate C_k along the way.
	v := c.NumWords()
	wm := corpus.BuildWordMajorOf(c)
	topics := make([]int32, c.NumTokens())
	next := make([]int32, v)
	copy(next, wm.Start[:v])
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		for n, w := range c.Doc(d) {
			topics[next[w]] = z[d][n]
			next[w]++
		}
	}
	ck := make([]int64, k)
	cw := make([]int32, k)
	for w := 0; w < v; w++ {
		col := topics[wm.Start[w]:wm.Start[w+1]]
		for _, t := range col {
			if cw[t] == 0 {
				touched = append(touched, t)
			}
			cw[t]++
			ck[t]++
		}
		for _, t := range touched {
			ll += lgB.at(cw[t]) - lgBeta
			cw[t] = 0
		}
		touched = touched[:0]
	}
	lgBetaBar := lgamma(betaBar)
	for _, c := range ck {
		ll += lgBetaBar - lgamma(betaBar+float64(c))
	}
	return ll
}

// LogJointAsym is LogJoint for an asymmetric document-topic prior: the
// doc-side terms use per-topic α_k (with ᾱ = Σ α_k); the word side is
// unchanged.
func LogJointAsym(c corpus.Provider, z [][]int32, alphas []float64, beta float64) float64 {
	k := len(alphas)
	if len(z) != c.NumDocs() {
		panic("eval: z shape mismatch")
	}
	var alphaBar float64
	lgAlpha := make([]float64, k)
	for t, a := range alphas {
		alphaBar += a
		lgAlpha[t] = lgamma(a)
	}
	lgAlphaBar := lgamma(alphaBar)

	var ll float64
	cd := make([]int32, k)
	var touched []int32
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		doc := c.Doc(d)
		zd := z[d]
		if len(zd) != len(doc) {
			panic("eval: z shape mismatch")
		}
		for _, t := range zd {
			if cd[t] == 0 {
				touched = append(touched, t)
			}
			cd[t]++
		}
		ll += lgAlphaBar - lgamma(alphaBar+float64(len(doc)))
		for _, t := range touched {
			ll += lgamma(alphas[t]+float64(cd[t])) - lgAlpha[t]
			cd[t] = 0
		}
		touched = touched[:0]
	}
	return ll + wordSideLL(c, z, k, beta)
}

// wordSideLL computes the word-topic portion of the joint likelihood
// (identical for symmetric and asymmetric α).
func wordSideLL(c corpus.Provider, z [][]int32, k int, beta float64) float64 {
	v := c.NumWords()
	betaBar := beta * float64(v)
	lgB := newLgammaCache(beta, 1024)
	lgBeta := lgamma(beta)
	wm := corpus.BuildWordMajorOf(c)
	topics := make([]int32, c.NumTokens())
	next := make([]int32, v)
	copy(next, wm.Start[:v])
	for d, nd := 0, c.NumDocs(); d < nd; d++ {
		for n, w := range c.Doc(d) {
			topics[next[w]] = z[d][n]
			next[w]++
		}
	}
	var ll float64
	ck := make([]int64, k)
	cw := make([]int32, k)
	var touched []int32
	for w := 0; w < v; w++ {
		col := topics[wm.Start[w]:wm.Start[w+1]]
		for _, t := range col {
			if cw[t] == 0 {
				touched = append(touched, t)
			}
			cw[t]++
			ck[t]++
		}
		for _, t := range touched {
			ll += lgB.at(cw[t]) - lgBeta
			cw[t] = 0
		}
		touched = touched[:0]
	}
	lgBetaBar := lgamma(betaBar)
	for _, c := range ck {
		ll += lgBetaBar - lgamma(betaBar+float64(c))
	}
	return ll
}

// Perplexity converts a log joint likelihood over nTokens tokens into the
// standard exp(−L/T) perplexity scale.
func Perplexity(logJoint float64, nTokens int) float64 {
	if nTokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logJoint / float64(nTokens))
}
