package eval

import "math"

// TopicDiag holds per-topic health diagnostics, in the spirit of
// MALLET's topic diagnostics: large-scale runs (the paper trains up to a
// million topics) need automatic screening for degenerate topics —
// empty ones, ones dominated by a single word, and ones indistinct from
// the corpus-wide word distribution.
type TopicDiag struct {
	Topic int
	// Tokens assigned to the topic.
	Tokens int64
	// DistinctWords with non-zero count.
	DistinctWords int
	// EffectiveWords is exp(entropy) of the topic's word distribution: 1
	// means one word holds all mass; V means uniform.
	EffectiveWords float64
	// TopShare is the probability mass of the topic's 10 most likely
	// words (close to 1 ⇒ very peaked topic).
	TopShare float64
	// CorpusDist is the KL divergence from the topic's word distribution
	// to the corpus-wide word distribution; near 0 means the topic is an
	// uninformative copy of the background.
	CorpusDist float64
}

// Diagnostics computes TopicDiag for every topic from a V×K word-topic
// count matrix (row-major by word) with smoothing beta.
func Diagnostics(cw []int32, v, k int, beta float64) []TopicDiag {
	// Corpus-wide word distribution (unsmoothed counts, smoothed at use).
	wordTotals := make([]float64, v)
	var corpusTotal float64
	topicTotals := make([]float64, k)
	for w := 0; w < v; w++ {
		for t := 0; t < k; t++ {
			c := float64(cw[w*k+t])
			wordTotals[w] += c
			topicTotals[t] += c
			corpusTotal += c
		}
	}

	out := make([]TopicDiag, k)
	probs := make([]float64, v)
	betaBar := beta * float64(v)
	for t := 0; t < k; t++ {
		d := TopicDiag{Topic: t, Tokens: int64(topicTotals[t])}
		denom := topicTotals[t] + betaBar
		var entropy, kl float64
		for w := 0; w < v; w++ {
			c := float64(cw[w*k+t])
			if c > 0 {
				d.DistinctWords++
			}
			p := (c + beta) / denom
			probs[w] = p
			entropy -= p * math.Log(p)
			q := (wordTotals[w] + beta) / (corpusTotal + betaBar)
			kl += p * math.Log(p/q)
		}
		d.EffectiveWords = math.Exp(entropy)
		d.CorpusDist = kl

		// Mass of the 10 largest probabilities (partial selection).
		top := topN(probs, 10)
		for _, p := range top {
			d.TopShare += p
		}
		out[t] = d
	}
	return out
}

// topN returns the n largest values of s (not sorted), O(len(s)·n) with
// n fixed and small.
func topN(s []float64, n int) []float64 {
	if n > len(s) {
		n = len(s)
	}
	best := make([]float64, 0, n)
	for _, x := range s {
		if len(best) < n {
			best = append(best, x)
			continue
		}
		minI := 0
		for i := 1; i < n; i++ {
			if best[i] < best[minI] {
				minI = i
			}
		}
		if x > best[minI] {
			best[minI] = x
		}
	}
	return best
}
