package eval

import (
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/rng"
)

// coherenceCorpus has two word blocks that always co-occur internally
// and never across blocks.
func coherenceCorpus() *corpus.Corpus {
	c := &corpus.Corpus{V: 8, Docs: make([][]int32, 40)}
	for d := range c.Docs {
		base := int32(0)
		if d%2 == 1 {
			base = 4
		}
		c.Docs[d] = []int32{base, base + 1, base + 2, base + 3}
	}
	return c
}

func TestCoherentTopicBeatsIncoherent(t *testing.T) {
	c := coherenceCorpus()
	coherent := UMassCoherence(c, []int32{0, 1, 2, 3})
	mixed := UMassCoherence(c, []int32{0, 1, 4, 5})
	if coherent <= mixed {
		t.Fatalf("coherent %.3f not above mixed %.3f", coherent, mixed)
	}
	// Fully co-occurring words: every pair contributes log((D+1)/D) > 0.
	if coherent <= 0 {
		t.Fatalf("perfectly co-occurring topic scored %.3f", coherent)
	}
	if mixed >= 0 {
		t.Fatalf("cross-block topic scored %.3f, want negative", mixed)
	}
}

func TestCoherenceEdgeCases(t *testing.T) {
	c := coherenceCorpus()
	if got := UMassCoherence(c, []int32{3}); got != 0 {
		t.Fatalf("single word coherence = %g", got)
	}
	if got := UMassCoherence(c, nil); got != 0 {
		t.Fatalf("empty coherence = %g", got)
	}
	// A word that never occurs: pairs ending at it are skipped.
	c2 := &corpus.Corpus{V: 10, Docs: c.Docs}
	got := UMassCoherence(c2, []int32{0, 9})
	if got != 0 {
		t.Fatalf("absent-word pair contributed %g", got)
	}
}

func TestTopWordsByCount(t *testing.T) {
	const v, k = 5, 2
	cw := make([]int32, v*k)
	// Topic 1 counts: word3=9, word0=5, word4=2, others 0.
	cw[3*k+1] = 9
	cw[0*k+1] = 5
	cw[4*k+1] = 2
	top := TopWordsByCount(cw, v, k, 1, 3)
	if top[0] != 3 || top[1] != 0 || top[2] != 4 {
		t.Fatalf("top = %v", top)
	}
	if got := TopWordsByCount(cw, v, k, 1, 99); len(got) != v {
		t.Fatalf("overlong n returned %d words", len(got))
	}
}

func TestCoherenceOnTrainedStructure(t *testing.T) {
	// Random topic assignments vs the planted blocks of coherenceCorpus:
	// block-word topics must score higher coherence than random word sets.
	c := coherenceCorpus()
	r := rng.New(3)
	randomWords := make([]int32, 4)
	for i := range randomWords {
		randomWords[i] = int32(r.Intn(c.V))
	}
	// The planted topics are the two 4-word blocks.
	block := UMassCoherence(c, []int32{4, 5, 6, 7})
	random := UMassCoherence(c, randomWords)
	if block < random {
		t.Fatalf("block coherence %.3f below random %.3f", block, random)
	}
}
