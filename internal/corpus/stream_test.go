package corpus

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildTestCache writes c as UCI, streams it into a cache under dir,
// and returns the cache path.
func buildTestCache(t *testing.T, c *Corpus, dir string, opts StreamOptions) string {
	t.Helper()
	var uci bytes.Buffer
	if err := WriteUCI(&uci, c); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "corpus"+CacheExt)
	info, err := BuildCache(&uci, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.D != c.NumDocs() || info.V != c.V || info.T != c.NumTokens() {
		t.Fatalf("cache info %+v, corpus D=%d V=%d T=%d", info, c.NumDocs(), c.V, c.NumTokens())
	}
	return path
}

// uciDocsEqual compares documents as multisets per doc: WriteUCI
// aggregates counts and sorts words within a doc, so token order within
// a document is id-sorted on both read paths.
func docsEqual(t *testing.T, a, b Provider) {
	t.Helper()
	if a.NumDocs() != b.NumDocs() || a.NumTokens() != b.NumTokens() || a.NumWords() != b.NumWords() {
		t.Fatalf("shape mismatch: D %d/%d T %d/%d V %d/%d",
			a.NumDocs(), b.NumDocs(), a.NumTokens(), b.NumTokens(), a.NumWords(), b.NumWords())
	}
	for d := 0; d < a.NumDocs(); d++ {
		da, db := a.Doc(d), b.Doc(d)
		if len(da) != len(db) {
			t.Fatalf("doc %d: len %d vs %d", d, len(da), len(db))
		}
		for n := range da {
			if da[n] != db[n] {
				t.Fatalf("doc %d token %d: %d vs %d", d, n, da[n], db[n])
			}
		}
	}
}

func TestBuildCacheRoundTrip(t *testing.T) {
	c, err := GenerateLDA(SyntheticConfig{D: 120, V: 300, K: 8, MeanLen: 40, Alpha: 0.1, Beta: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := buildTestCache(t, c, dir, StreamOptions{})

	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	// The in-memory reference is the same UCI stream read by ReadUCI.
	var uci bytes.Buffer
	if err := WriteUCI(&uci, c); err != nil {
		t.Fatal(err)
	}
	mem, err := ReadUCI(&uci)
	if err != nil {
		t.Fatal(err)
	}

	docsEqual(t, mem, mc)
	if mc.Vocabulary() != nil {
		t.Error("mapped corpus should carry no vocabulary")
	}
	// The header fingerprint must equal the O(T) walk of either view —
	// that equality is what makes checkpoints portable between the
	// in-memory and mapped paths.
	if got, want := mc.CorpusFingerprint(), Fingerprint(mem); got != want {
		t.Errorf("mapped fingerprint %08x, in-memory walk %08x", got, want)
	}
	if got, want := FingerprintOf(mc), Fingerprint(mc); got != want {
		t.Errorf("FingerprintOf fast path %08x, walk of mapped docs %08x", got, want)
	}
	if err := ValidateProvider(mc); err != nil {
		t.Errorf("ValidateProvider(mapped): %v", err)
	}
	if got := StatsOf(mc); got != mem.Stats() {
		t.Errorf("StatsOf(mapped) = %v, want %v", got, mem.Stats())
	}
}

func TestBuildCacheBoundedBuffers(t *testing.T) {
	// A budget far below the corpus size must still work: the bound is
	// on buffers (floored at 64 KiB each), with spills absorbing the
	// overflow through many flushes.
	c, err := GenerateLDA(SyntheticConfig{D: 200, V: 150, K: 4, MeanLen: 60, Alpha: 0.1, Beta: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTokens()*4 < 1<<14 {
		t.Fatalf("corpus too small to exercise spilling: %d tokens", c.NumTokens())
	}
	dir := t.TempDir()
	path := buildTestCache(t, c, dir, StreamOptions{MaxResidentBytes: 1})
	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	var uci bytes.Buffer
	if err := WriteUCI(&uci, c); err != nil {
		t.Fatal(err)
	}
	mem, err := ReadUCI(&uci)
	if err != nil {
		t.Fatal(err)
	}
	docsEqual(t, mem, mc)
	// Spill files must not outlive the build.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "warpcorpus-") {
			t.Errorf("leftover spill file %s", e.Name())
		}
	}
}

func TestBuildCacheEmptyAndGappyDocs(t *testing.T) {
	// Docs 2 and 5 (1-based) have no entries; trailing doc 6 is empty
	// too. The offsets section must give them zero-length views.
	uci := "6\n4\n4\n1 1 2\n3 2 1\n4 1 1\n4 4 3\n"
	path := filepath.Join(t.TempDir(), "gappy"+CacheExt)
	if _, err := BuildCache(strings.NewReader(uci), path, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mem, err := ReadUCI(strings.NewReader(uci))
	if err != nil {
		t.Fatal(err)
	}
	docsEqual(t, mem, mc)
	for _, d := range []int{1, 4, 5} {
		if len(mc.Doc(d)) != 0 {
			t.Errorf("doc %d should be empty, has %d tokens", d, len(mc.Doc(d)))
		}
	}
}

func TestBuildCacheRejectsUnsortedDocs(t *testing.T) {
	uci := "3\n4\n3\n2 1 1\n1 2 1\n3 1 1\n"
	_, err := BuildCache(strings.NewReader(uci), filepath.Join(t.TempDir(), "x"+CacheExt), StreamOptions{})
	if err == nil || !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("want non-decreasing doc id error, got %v", err)
	}
}

func TestBuildCacheFailureLeavesNoCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad"+CacheExt)
	// NNZ mismatch fails the parse after spilling began.
	if _, err := BuildCache(strings.NewReader("2\n4\n5\n1 1 1\n2 2 1\n"), path, StreamOptions{}); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("failed build left a cache file behind (stat err %v)", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		t.Errorf("failed build left %s behind", e.Name())
	}
}

// rewriteTrailer recomputes the CRC trailer after a test doctored the
// body, so validation failures past the checksum can be exercised.
func rewriteTrailer(data []byte) {
	crc := crc32.ChecksumIEEE(data[8 : len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
}

func TestOpenMappedCorruption(t *testing.T) {
	c, err := GenerateLDA(SyntheticConfig{D: 30, V: 50, K: 4, MeanLen: 20, Alpha: 0.1, Beta: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	goodPath := buildTestCache(t, c, t.TempDir(), StreamOptions{})
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	d := c.NumDocs()

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    string
	}{
		{"truncated to empty", func(b []byte) []byte { return b[:0] }, "truncated"},
		{"truncated mid-header", func(b []byte) []byte { return b[:20] }, "truncated"},
		{"truncated mid-offsets", func(b []byte) []byte { return b[:cacheHeaderSize+24] }, "geometry"},
		{"truncated below minimum", func(b []byte) []byte { return b[:cacheHeaderSize+9] }, "truncated"},
		{"truncated before trailer", func(b []byte) []byte { return b[:len(b)-5] }, "geometry"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"stale format version", func(b []byte) []byte { b[7] = 0x02; return b }, "bad magic"},
		{"flipped token byte", func(b []byte) []byte {
			b[cacheHeaderSize+(d+1)*8] ^= 0xFF
			return b
		}, "checksum mismatch"},
		{"flipped trailer byte", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }, "checksum mismatch"},
		{"implausible header D", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:], 1<<62)
			rewriteTrailer(b)
			return b
		}, "implausible"},
		{"zero V", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 0)
			rewriteTrailer(b)
			return b
		}, "implausible"},
		{"geometry mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])+1)
			rewriteTrailer(b)
			return b
		}, "geometry"},
		{"decreasing offsets", func(b []byte) []byte {
			// Swap offsets[1] up past offsets[2] with a valid CRC: caught
			// only by the monotonicity check.
			binary.LittleEndian.PutUint64(b[cacheHeaderSize+8:], uint64(c.NumTokens())+1)
			rewriteTrailer(b)
			return b
		}, "offsets"},
		{"token out of vocabulary", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[cacheHeaderSize+(d+1)*8:], uint32(c.V))
			rewriteTrailer(b)
			return b
		}, "out of"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.corrupt(append([]byte(nil), good...))
			path := filepath.Join(t.TempDir(), "corrupt"+CacheExt)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := OpenMapped(path)
			if err == nil {
				t.Fatal("corrupt cache opened successfully")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// The undoctored file must still open (guards the cases above
	// against accidentally relying on a broken baseline).
	mc, err := OpenMapped(goodPath)
	if err != nil {
		t.Fatalf("pristine cache failed to open: %v", err)
	}
	mc.Close()
}

func TestMappedCloseIdempotent(t *testing.T) {
	c := &Corpus{V: 3, Docs: [][]int32{{0, 1}, {2}}}
	path := buildTestCache(t, c, t.TempDir(), StreamOptions{})
	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestCachePathFor(t *testing.T) {
	if got, want := CachePathFor("/data/nytimes.uci", ""), "/data/nytimes.uci.warpcorpus"; got != want {
		t.Errorf("CachePathFor default dir = %q, want %q", got, want)
	}
	if got, want := CachePathFor("/data/nytimes.uci", "/ssd/cache"), "/ssd/cache/nytimes.uci.warpcorpus"; got != want {
		t.Errorf("CachePathFor explicit dir = %q, want %q", got, want)
	}
}

func TestMaterialize(t *testing.T) {
	c := tinyCorpus()
	if got := Materialize(c); got != c {
		t.Error("Materialize(*Corpus) should return the same pointer")
	}
	path := buildTestCache(t, c, t.TempDir(), StreamOptions{})
	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mat := Materialize(mc)
	docsEqual(t, mc, mat)
	if err := mat.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamUCIMatchesMaterialized pins the lda-gen -uci contract: the
// two-pass streaming generators emit byte-identical UCI to WriteUCI
// over the materialized corpus of the same configuration.
func TestStreamUCIMatchesMaterialized(t *testing.T) {
	cfg := SyntheticConfig{D: 80, V: 120, K: 6, MeanLen: 30, Alpha: 0.1, Beta: 0.01, Seed: 13}

	var streamed bytes.Buffer
	st, err := StreamLDAUCI(&streamed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := GenerateLDA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mat bytes.Buffer
	if err := WriteUCI(&mat, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), mat.Bytes()) {
		t.Fatal("StreamLDAUCI output differs from WriteUCI(GenerateLDA)")
	}
	if st != c.Stats() {
		t.Errorf("streamed stats %v, materialized %v", st, c.Stats())
	}

	streamed.Reset()
	if _, err := StreamZipfUCI(&streamed, 60, 90, 25, 1.1, 5); err != nil {
		t.Fatal(err)
	}
	z := GenerateZipf(60, 90, 25, 1.1, 5)
	mat.Reset()
	if err := WriteUCI(&mat, z); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), mat.Bytes()) {
		t.Fatal("StreamZipfUCI output differs from WriteUCI(GenerateZipf)")
	}

	// A streamed corpus must flow through the whole -stream pipeline:
	// UCI → cache → mapped view equal to the in-memory read.
	path := filepath.Join(t.TempDir(), "gen"+CacheExt)
	if _, err := BuildCache(bytes.NewReader(streamed.Bytes()), path, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	mc, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	mem, err := ReadUCI(bytes.NewReader(streamed.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	docsEqual(t, mem, mc)

	// Invalid config must surface from the streaming path too.
	if _, err := StreamLDAUCI(&streamed, SyntheticConfig{}); err == nil {
		t.Fatal("StreamLDAUCI accepted an invalid config")
	}
}
