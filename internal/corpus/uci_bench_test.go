package corpus

import (
	"bytes"
	"testing"
)

// benchUCIBytes renders a mid-sized Zipf corpus once per process.
var benchUCIBytes []byte

func uciBenchData(b *testing.B) []byte {
	b.Helper()
	if benchUCIBytes == nil {
		c := GenerateZipf(2000, 5000, 100, 1.0, 4)
		var buf bytes.Buffer
		if err := WriteUCI(&buf, c); err != nil {
			b.Fatal(err)
		}
		benchUCIBytes = buf.Bytes()
	}
	return benchUCIBytes
}

// BenchmarkReadUCI measures the materializing read path. Before the
// manual splitter, every entry line cost a strings.Fields []string plus
// three substrings; now per-entry parsing is allocation-free and the
// remaining allocations are the corpus itself (Docs growth).
func BenchmarkReadUCI(b *testing.B) {
	data := uciBenchData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadUCI(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanUCI measures the parse alone (the BuildCache hot loop):
// allocations per op should stay flat at the scanner's fixed buffers
// regardless of corpus size.
func BenchmarkScanUCI(b *testing.B) {
	data := uciBenchData(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scanUCI(bytes.NewReader(data), nil, func(doc, word, count int) error {
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSplitFields(t *testing.T) {
	var f [4]int
	cases := []struct {
		line string
		n    int
		want [4]int
	}{
		{"", 0, [4]int{}},
		{"   \t  \r", 0, [4]int{}},
		{"42", 1, [4]int{42}},
		{"1 2 3", 3, [4]int{1, 2, 3}},
		{"  7\t8  9\r", 3, [4]int{7, 8, 9}},
		{"1 2 3 4", 4, [4]int{1, 2, 3, 4}},
		{"1 2 3 4 5", -1, [4]int{}},
		{"1 -2 3", -1, [4]int{}},
		{"1 2x 3", -1, [4]int{}},
		{"9999999999999999999", -1, [4]int{}}, // overflow guard
	}
	for _, tc := range cases {
		n := splitFields([]byte(tc.line), &f)
		if n != tc.n {
			t.Errorf("splitFields(%q) = %d fields, want %d", tc.line, n, tc.n)
			continue
		}
		for i := 0; i < n; i++ {
			if f[i] != tc.want[i] {
				t.Errorf("splitFields(%q)[%d] = %d, want %d", tc.line, i, f[i], tc.want[i])
			}
		}
	}
}
