package corpus

import (
	"strings"
)

// TokenizeOptions configures FromText. The defaults mirror the paper's
// ClueWeb12 preprocessing: "remove everything except alphabets and
// digits, convert letters to lower case, tokenize the text by space and
// remove stop words".
type TokenizeOptions struct {
	// MinWordLen drops tokens shorter than this many bytes (default 1).
	MinWordLen int
	// Stopwords are dropped after lowercasing. Nil means DefaultStopwords.
	Stopwords map[string]bool
	// MinDocFreq drops words appearing in fewer than this many documents
	// from the vocabulary (default 1 = keep all).
	MinDocFreq int
}

// DefaultStopwords is a small English stopword list sufficient for the
// examples; real deployments would substitute their own.
var DefaultStopwords = toSet(strings.Fields(`
a an and are as at be but by for from had has have he her his i in is it
its not of on or she that the their there they this to was were which will
with you your we our us am do did done so if then than too very can could
would should may might must shall about into over under again more most
other some such no nor only own same s t just don now
`))

func toSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// FromText tokenizes raw documents into a corpus, building a vocabulary.
// Documents that end up empty are kept (as zero-length token lists) so
// document ids are stable.
func FromText(docs []string, opts TokenizeOptions) *Corpus {
	if opts.MinWordLen < 1 {
		opts.MinWordLen = 1
	}
	if opts.Stopwords == nil {
		opts.Stopwords = DefaultStopwords
	}
	if opts.MinDocFreq < 1 {
		opts.MinDocFreq = 1
	}

	tokenized := make([][]string, len(docs))
	docFreq := map[string]int{}
	for d, text := range docs {
		words := tokenize(text, opts)
		tokenized[d] = words
		seen := map[string]bool{}
		for _, w := range words {
			if !seen[w] {
				seen[w] = true
				docFreq[w]++
			}
		}
	}

	// Assign ids in first-appearance order for determinism.
	id := map[string]int32{}
	var vocab []string
	c := &Corpus{Docs: make([][]int32, len(docs))}
	for d, words := range tokenized {
		for _, w := range words {
			if docFreq[w] < opts.MinDocFreq {
				continue
			}
			wid, ok := id[w]
			if !ok {
				wid = int32(len(vocab))
				id[w] = wid
				vocab = append(vocab, w)
			}
			c.Docs[d] = append(c.Docs[d], wid)
		}
	}
	c.V = len(vocab)
	c.Vocab = vocab
	if c.V == 0 {
		c.V = 1 // keep the corpus structurally valid even if all text was stopwords
		c.Vocab = []string{""}
	}
	return c
}

func tokenize(text string, opts TokenizeOptions) []string {
	var words []string
	for _, w := range Normalize(text) {
		if len(w) >= opts.MinWordLen && !opts.Stopwords[w] {
			words = append(words, w)
		}
	}
	return words
}

// Normalize splits text into lowercase alphanumeric runs — the
// character-level normalization every tokenizer in this repository
// (training-side FromText, query-side warplda-serve) must share so
// query words map onto training vocabulary ids. No length, stopword or
// frequency filtering is applied here.
func Normalize(text string) []string {
	var words []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			words = append(words, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			flush()
		}
	}
	flush()
	return words
}
