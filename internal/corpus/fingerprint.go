package corpus

import (
	"encoding/binary"
	"hash"
	"hash/crc32"
)

// Fingerprinted is the fast path FingerprintOf dispatches on: providers
// that already know their fingerprint (a *MappedCorpus reads it from
// the cache header instead of re-walking T tokens) implement it.
type Fingerprinted interface {
	CorpusFingerprint() uint32
}

// FPHasher incrementally computes the corpus identity fingerprint that
// training checkpoints are bound to. The hashed sequence is
//
//	V, D, then per document: len(doc), tokens...
//
// (all as little-endian int64), which pins dimensions, document
// boundaries, and every token: resuming a checkpoint against a
// reordered, truncated, or simply different corpus is caught before any
// sampler state is restored. The streaming cache builder feeds it one
// document at a time, so a cache file can carry the same fingerprint an
// in-memory load of the same source would produce — mapped and
// materialized corpora are checkpoint-interchangeable.
type FPHasher struct {
	crc hash.Hash32
	buf [8]byte
}

// NewFPHasher returns a hasher primed with the corpus dimensions.
func NewFPHasher(v, d int) *FPHasher {
	h := &FPHasher{crc: crc32.NewIEEE()}
	h.putInt(int64(v))
	h.putInt(int64(d))
	return h
}

func (h *FPHasher) putInt(v int64) {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.crc.Write(h.buf[:])
}

// AddDoc hashes the next document (documents must be fed in order).
func (h *FPHasher) AddDoc(tokens []int32) {
	h.putInt(int64(len(tokens)))
	for _, w := range tokens {
		h.putInt(int64(w))
	}
}

// Sum32 returns the fingerprint of everything hashed so far.
func (h *FPHasher) Sum32() uint32 { return h.crc.Sum32() }

// Fingerprint walks p and computes its identity fingerprint. O(T);
// callers fingerprinting repeatedly should use FingerprintOf, which
// lets caching providers answer in O(1).
func Fingerprint(p Provider) uint32 {
	h := NewFPHasher(p.NumWords(), p.NumDocs())
	for d, nd := 0, p.NumDocs(); d < nd; d++ {
		h.AddDoc(p.Doc(d))
	}
	return h.Sum32()
}

// FingerprintOf returns p's identity fingerprint, preferring a
// provider's own cached value (Fingerprinted) over the O(T) walk.
func FingerprintOf(p Provider) uint32 {
	if f, ok := p.(Fingerprinted); ok {
		return f.CorpusFingerprint()
	}
	return Fingerprint(p)
}
