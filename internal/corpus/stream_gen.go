// Streaming synthetic-corpus generation: UCI docword output of
// arbitrary size in O(one document) memory, so CI and tests can
// synthesize corpora far beyond RAM without checking in fixtures
// (cmd/lda-gen -uci).
//
// The UCI header carries NNZ up front, which a single generative pass
// cannot know, so the generators walk the (fully seed-determined)
// generative process twice: pass 1 counts entries, pass 2 emits them.
// The emitted bytes are identical to WriteUCI over the materialized
// corpus of the same configuration.
package corpus

import (
	"bufio"
	"fmt"
	"io"
)

// docEntryWriter aggregates one document's tokens into sorted
// (doc, word, count) UCI entry lines, sharing its scratch state across
// documents. It is the single emission path — WriteUCI (uci.go) and the
// streaming generators below both go through it, which is what keeps
// their outputs byte-identical.
type docEntryWriter struct {
	counts map[int32]int32
	words  []int32
}

func newDocEntryWriter() *docEntryWriter {
	return &docEntryWriter{counts: map[int32]int32{}, words: make([]int32, 0, 64)}
}

// distinct returns the number of distinct words in doc (the document's
// NNZ contribution).
func (e *docEntryWriter) distinct(doc []int32) int {
	clear(e.counts)
	n := 0
	for _, w := range doc {
		if e.counts[w] == 0 {
			n++
		}
		e.counts[w]++
	}
	return n
}

// emit writes doc's entries (1-based ids, words ascending) to bw.
func (e *docEntryWriter) emit(bw *bufio.Writer, d int, doc []int32) error {
	clear(e.counts)
	e.words = e.words[:0]
	for _, w := range doc {
		if e.counts[w] == 0 {
			e.words = append(e.words, w)
		}
		e.counts[w]++
	}
	sortInt32(e.words)
	for _, w := range e.words {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", d+1, w+1, e.counts[w]); err != nil {
			return err
		}
	}
	return nil
}

// streamUCI renders a two-pass generative walk as a UCI stream. walk
// must visit the identical document sequence on every invocation.
func streamUCI(w io.Writer, d, v int, walk func(visit func(d int, doc []int32)) error) (Stats, error) {
	e := newDocEntryWriter()
	nnz, tokens := 0, 0
	if err := walk(func(_ int, doc []int32) {
		nnz += e.distinct(doc)
		tokens += len(doc)
	}); err != nil {
		return Stats{}, err
	}

	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n%d\n%d\n", d, v, nnz); err != nil {
		return Stats{}, err
	}
	var werr error
	if err := walk(func(i int, doc []int32) {
		if werr == nil {
			werr = e.emit(bw, i, doc)
		}
	}); err != nil {
		return Stats{}, err
	}
	if werr != nil {
		return Stats{}, werr
	}
	if err := bw.Flush(); err != nil {
		return Stats{}, err
	}
	return newStats(d, tokens, v), nil
}

// StreamLDAUCI writes a UCI docword stream drawn from the LDA
// generative process without materializing the corpus: memory stays
// O(K·V + one document) however large cfg.D is. Output is
// byte-identical to WriteUCI(GenerateLDA(cfg)).
func StreamLDAUCI(w io.Writer, cfg SyntheticConfig) (Stats, error) {
	return streamUCI(w, cfg.D, cfg.V, func(visit func(int, []int32)) error {
		return visitLDADocs(cfg, visit)
	})
}

// StreamZipfUCI is StreamLDAUCI for the Zipf generator: byte-identical
// to WriteUCI(GenerateZipf(...)) in O(V + one document) memory.
func StreamZipfUCI(w io.Writer, d, v int, meanLen, s float64, seed uint64) (Stats, error) {
	return streamUCI(w, d, v, func(visit func(int, []int32)) error {
		visitZipfDocs(d, v, meanLen, s, seed, visit)
		return nil
	})
}
