package corpus

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"warplda/internal/rng"
)

func tinyCorpus() *Corpus {
	return &Corpus{
		V: 4,
		Docs: [][]int32{
			{0, 1, 1, 3},
			{2},
			{},
			{3, 3, 0},
		},
	}
}

func TestStats(t *testing.T) {
	c := tinyCorpus()
	s := c.Stats()
	if s.D != 4 || s.T != 8 || s.V != 4 {
		t.Fatalf("stats = %+v", s)
	}
	if math.Abs(s.L-2) > 1e-12 {
		t.Fatalf("mean length = %g, want 2", s.L)
	}
}

func TestValidate(t *testing.T) {
	c := tinyCorpus()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
	c.Docs[0][0] = 7
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range word id accepted")
	}
	c = tinyCorpus()
	c.Vocab = []string{"a", "b"}
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched vocab accepted")
	}
}

func TestTermFrequencies(t *testing.T) {
	got := tinyCorpus().TermFrequencies()
	want := []int{2, 2, 1, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tf = %v, want %v", got, want)
	}
}

func TestBuildWordMajor(t *testing.T) {
	c := tinyCorpus()
	wm := BuildWordMajor(c)
	if len(wm.Start) != c.V+1 || len(wm.DocID) != c.NumTokens() {
		t.Fatalf("bad shapes: %d starts, %d tokens", len(wm.Start), len(wm.DocID))
	}
	// Word 3 occurs in doc 0 once and doc 3 twice, sorted by doc id.
	col := wm.DocID[wm.Start[3]:wm.Start[4]]
	if !reflect.DeepEqual(col, []int32{0, 3, 3}) {
		t.Fatalf("word 3 column = %v", col)
	}
	// Columns are sorted by doc id, and token totals agree.
	for w := 0; w < c.V; w++ {
		col := wm.DocID[wm.Start[w]:wm.Start[w+1]]
		for i := 1; i < len(col); i++ {
			if col[i] < col[i-1] {
				t.Fatalf("word %d column not sorted: %v", w, col)
			}
		}
	}
}

func TestWordMajorRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		d := r.Intn(20) + 1
		v := r.Intn(30) + 1
		c := &Corpus{V: v, Docs: make([][]int32, d)}
		for i := range c.Docs {
			n := r.Intn(15)
			doc := make([]int32, n)
			for j := range doc {
				doc[j] = int32(r.Intn(v))
			}
			c.Docs[i] = doc
		}
		wm := BuildWordMajor(c)
		// Reconstruct per-doc word multisets from the word-major view.
		rebuilt := make([]map[int32]int, d)
		for i := range rebuilt {
			rebuilt[i] = map[int32]int{}
		}
		for w := 0; w < v; w++ {
			for _, doc := range wm.DocID[wm.Start[w]:wm.Start[w+1]] {
				rebuilt[doc][int32(w)]++
			}
		}
		for i, doc := range c.Docs {
			want := map[int32]int{}
			for _, w := range doc {
				want[w]++
			}
			if !reflect.DeepEqual(want, rebuilt[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUCIRoundTrip(t *testing.T) {
	c := tinyCorpus()
	var buf bytes.Buffer
	if err := WriteUCI(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUCI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.V != c.V || got.NumDocs() != c.NumDocs() || got.NumTokens() != c.NumTokens() {
		t.Fatalf("round trip changed shape: %+v vs %+v", got.Stats(), c.Stats())
	}
	// Token multisets per document must agree (order may differ).
	for d := range c.Docs {
		want := map[int32]int{}
		for _, w := range c.Docs[d] {
			want[w]++
		}
		gotSet := map[int32]int{}
		for _, w := range got.Docs[d] {
			gotSet[w]++
		}
		if !reflect.DeepEqual(want, gotSet) {
			t.Fatalf("doc %d mismatch: %v vs %v", d, gotSet, want)
		}
	}
}

func TestReadUCIKnown(t *testing.T) {
	in := "2\n3\n3\n1 1 2\n1 3 1\n2 2 5\n"
	c, err := ReadUCI(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDocs() != 2 || c.V != 3 || c.NumTokens() != 8 {
		t.Fatalf("stats: %+v", c.Stats())
	}
	if len(c.Docs[0]) != 3 || len(c.Docs[1]) != 5 {
		t.Fatalf("doc lengths: %d, %d", len(c.Docs[0]), len(c.Docs[1]))
	}
}

func TestReadUCIErrors(t *testing.T) {
	cases := map[string]string{
		"truncated header":  "2\n3\n",
		"bad header":        "x\n3\n3\n",
		"bad entry fields":  "1\n2\n1\n1 1\n",
		"doc out of range":  "1\n2\n1\n2 1 1\n",
		"word out of range": "1\n2\n1\n1 3 1\n",
		"zero count":        "1\n2\n1\n1 1 0\n",
		"nnz mismatch":      "1\n2\n2\n1 1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadUCI(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadVocab(t *testing.T) {
	v, err := ReadVocab(strings.NewReader("apple\nbanana\n\ncherry\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, []string{"apple", "banana", "cherry"}) {
		t.Fatalf("vocab = %v", v)
	}
}

func TestFromText(t *testing.T) {
	docs := []string{
		"The iPhone and iOS: Apple's apple!",
		"Android android ANDROID",
		"the the the", // all stopwords
	}
	c := FromText(docs, TokenizeOptions{})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 3 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	if len(c.Docs[2]) != 0 {
		t.Fatalf("stopword-only doc kept %d tokens", len(c.Docs[2]))
	}
	// "apple" appears twice in doc 0 (Apple's -> apple + s dropped as stopword? 's' is a stopword).
	find := func(word string) int32 {
		for i, w := range c.Vocab {
			if w == word {
				return int32(i)
			}
		}
		return -1
	}
	if find("iphone") < 0 || find("ios") < 0 || find("apple") < 0 || find("android") < 0 {
		t.Fatalf("vocab missing expected words: %v", c.Vocab)
	}
	if find("the") >= 0 {
		t.Fatal("stopword kept in vocab")
	}
	nAndroid := 0
	for _, w := range c.Docs[1] {
		if w == find("android") {
			nAndroid++
		}
	}
	if nAndroid != 3 {
		t.Fatalf("case folding failed: %d android tokens", nAndroid)
	}
}

func TestFromTextMinDocFreq(t *testing.T) {
	docs := []string{"common rare1", "common rare2", "common rare3"}
	c := FromText(docs, TokenizeOptions{MinDocFreq: 2})
	if c.V != 1 || c.Vocab[0] != "common" {
		t.Fatalf("vocab = %v", c.Vocab)
	}
	for d := range c.Docs {
		if len(c.Docs[d]) != 1 {
			t.Fatalf("doc %d has %d tokens", d, len(c.Docs[d]))
		}
	}
}

func TestGenerateLDAShape(t *testing.T) {
	cfg := SyntheticConfig{D: 200, V: 300, K: 5, MeanLen: 40, Alpha: 0.1, Beta: 0.05, Seed: 11}
	c, err := GenerateLDA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.D != 200 || s.V != 300 {
		t.Fatalf("stats = %+v", s)
	}
	if s.L < 30 || s.L > 50 {
		t.Fatalf("mean length %g far from 40", s.L)
	}
}

func TestGenerateLDADeterministic(t *testing.T) {
	cfg := SyntheticConfig{D: 20, V: 50, K: 3, MeanLen: 10, Seed: 5}
	a, _ := GenerateLDA(cfg)
	b, _ := GenerateLDA(cfg)
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Fatal("same seed produced different corpora")
	}
	cfg.Seed = 6
	c, _ := GenerateLDA(cfg)
	if reflect.DeepEqual(a.Docs, c.Docs) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateLDARejectsBadConfig(t *testing.T) {
	if _, err := GenerateLDA(SyntheticConfig{D: 0, V: 1, K: 1, MeanLen: 1}); err == nil {
		t.Fatal("D=0 accepted")
	}
	if _, err := GenerateLDA(SyntheticConfig{D: 1, V: 1, K: 1, MeanLen: 0}); err == nil {
		t.Fatal("MeanLen=0 accepted")
	}
}

func TestGenerateZipfPowerLaw(t *testing.T) {
	c := GenerateZipf(500, 2000, 100, 1.0, 7)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// With s=1 the head of the vocabulary must dominate: the top 5% of
	// words should carry well over a third of the tokens.
	share := c.TopWordsShare(100)
	if share < 0.35 {
		t.Fatalf("top-100 share = %g, expected heavy head", share)
	}
	// And strictly more than a uniform corpus would give them.
	if share < 3*100.0/2000.0 {
		t.Fatalf("share %g not clearly super-uniform", share)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rng.New(13)
	for _, mean := range []float64{3, 40, 120} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(r, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/n)+0.5 {
			t.Errorf("poisson(%g) mean = %g", mean, got)
		}
	}
}

func TestConfigPresetsScale(t *testing.T) {
	for _, cfg := range []SyntheticConfig{NYTimesLike(0.001), PubMedLike(0.0001), ClueWebLike(0.0000005)} {
		if cfg.D < 50 || cfg.V < 100 || cfg.K <= 0 || cfg.MeanLen <= 0 {
			t.Errorf("degenerate preset %+v", cfg)
		}
	}
	// NYTimes keeps its T/D shape regardless of scale.
	if NYTimesLike(0.01).MeanLen != 332 {
		t.Error("NYTimesLike changed document length under scaling")
	}
}
