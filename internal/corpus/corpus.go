// Package corpus provides the document substrate for all experiments:
// the in-memory bag-of-words representation, readers/writers for the UCI
// bag-of-words format the paper's NYTimes and PubMed datasets use, a
// plain-text tokenizer, and synthetic corpus generators (LDA generative
// process, Zipf word frequencies) used as stand-ins for the proprietary
// or web-scale corpora in the paper's evaluation.
package corpus

import (
	"fmt"
	"sort"
)

// Corpus is a tokenized bag-of-words collection. Docs[d] lists the word
// ids (0-based, < V) of the tokens of document d; LDA ignores word order,
// so any ordering is valid. Vocab, when non-nil, maps word id to surface
// form and has length V.
type Corpus struct {
	V     int
	Docs  [][]int32
	Vocab []string
}

// NumDocs returns D, the number of documents.
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// NumTokens returns T, the total number of tokens in the corpus.
func (c *Corpus) NumTokens() int {
	t := 0
	for _, d := range c.Docs {
		t += len(d)
	}
	return t
}

// Stats summarizes a corpus the way the paper's Table 3 does.
type Stats struct {
	D int     // documents
	T int     // tokens
	V int     // vocabulary size
	L float64 // T/D, mean document length
}

// newStats assembles the summary from raw dimensions — the single
// place the mean document length is derived, shared by every Stats
// producer (Corpus, Provider, cache info, streaming generators).
func newStats(d, t, v int) Stats {
	s := Stats{D: d, T: t, V: v}
	if d > 0 {
		s.L = float64(t) / float64(d)
	}
	return s
}

// Stats returns the corpus summary.
func (c *Corpus) Stats() Stats {
	return newStats(c.NumDocs(), c.NumTokens(), c.V)
}

// String formats the stats as a Table-3 style row.
func (s Stats) String() string {
	return fmt.Sprintf("D=%d T=%d V=%d T/D=%.1f", s.D, s.T, s.V, s.L)
}

// Validate checks structural invariants: every word id is in [0, V) and,
// if Vocab is set, len(Vocab) == V. It returns a descriptive error on the
// first violation.
func (c *Corpus) Validate() error {
	if c.V <= 0 {
		return fmt.Errorf("corpus: V = %d, want > 0", c.V)
	}
	if c.Vocab != nil && len(c.Vocab) != c.V {
		return fmt.Errorf("corpus: len(Vocab) = %d, want V = %d", len(c.Vocab), c.V)
	}
	for d, doc := range c.Docs {
		for n, w := range doc {
			if w < 0 || int(w) >= c.V {
				return fmt.Errorf("corpus: doc %d token %d: word id %d out of [0,%d)", d, n, w, c.V)
			}
		}
	}
	return nil
}

// TermFrequencies returns Lw for every word: the number of tokens of each
// word in the corpus (the column sizes of the paper's topic-assignment
// matrix X).
func (c *Corpus) TermFrequencies() []int {
	tf := make([]int, c.V)
	for _, doc := range c.Docs {
		for _, w := range doc {
			tf[w]++
		}
	}
	return tf
}

// WordMajor is the word-by-word (CSC) view of a corpus: for each word w,
// Tokens[Start[w]:Start[w+1]] lists the documents of w's occurrences,
// sorted by document id. Word-ordered samplers (F+LDA) and WarpLDA's
// column phase iterate this view.
type WordMajor struct {
	Start []int32 // length V+1
	DocID []int32 // length T, document of each occurrence
}

// BuildWordMajor constructs the word-major view in O(T + V) by counting
// sort, which also guarantees the per-column sort by document id the
// paper's Section 5.2 relies on for cache-line reuse.
func BuildWordMajor(c *Corpus) *WordMajor { return BuildWordMajorOf(c) }

// TopWordsShare returns the fraction of all tokens contributed by the n
// most frequent words — the power-law statistic the paper quotes for
// ClueWeb12 ("the first 10,000 words attribute to 80% of the entries").
func (c *Corpus) TopWordsShare(n int) float64 {
	tf := c.TermFrequencies()
	sort.Sort(sort.Reverse(sort.IntSlice(tf)))
	if n > len(tf) {
		n = len(tf)
	}
	top := 0
	for _, f := range tf[:n] {
		top += f
	}
	t := c.NumTokens()
	if t == 0 {
		return 0
	}
	return float64(top) / float64(t)
}
