package corpus

import "fmt"

// Provider is the read-only document-access contract every consumer of a
// corpus (samplers, evaluators, the training orchestrator) works
// against. The in-memory *Corpus satisfies it trivially; *MappedCorpus
// satisfies it over a memory-mapped on-disk cache, so the token arrays
// of a corpus larger than RAM live in page cache instead of heap.
//
// Doc returns the tokens of one document as a view into the provider's
// backing storage: callers must not mutate or retain it across provider
// lifetime (for a mapped corpus the memory disappears at Close).
type Provider interface {
	// NumDocs returns D, the number of documents.
	NumDocs() int
	// NumTokens returns T, the total token count.
	NumTokens() int
	// NumWords returns V, the vocabulary size.
	NumWords() int
	// Doc returns the word ids of document d's tokens, in token order.
	Doc(d int) []int32
	// Vocabulary returns the id→surface-form table, or nil when the
	// corpus carries no vocabulary.
	Vocabulary() []string
}

// NumWords implements Provider.
func (c *Corpus) NumWords() int { return c.V }

// Doc implements Provider.
func (c *Corpus) Doc(d int) []int32 { return c.Docs[d] }

// Vocabulary implements Provider.
func (c *Corpus) Vocabulary() []string { return c.Vocab }

// Materialize returns an in-memory *Corpus with the provider's
// documents. A *Corpus is returned as-is (no copy); anything else is
// copied document by document — which re-inflates an out-of-core corpus
// into heap, so callers should reserve it for algorithms that genuinely
// need [][]int32 (the baseline samplers).
func Materialize(p Provider) *Corpus {
	if c, ok := p.(*Corpus); ok {
		return c
	}
	docs := make([][]int32, p.NumDocs())
	for d := range docs {
		docs[d] = append([]int32(nil), p.Doc(d)...)
	}
	return &Corpus{V: p.NumWords(), Docs: docs, Vocab: p.Vocabulary()}
}

// StatsOf returns the Table-3 style summary of any provider.
func StatsOf(p Provider) Stats {
	return newStats(p.NumDocs(), p.NumTokens(), p.NumWords())
}

// TermFreqsOf returns Lw for every word of any provider (the column
// sizes of the paper's topic-assignment matrix X).
func TermFreqsOf(p Provider) []int {
	tf := make([]int, p.NumWords())
	for d, nd := 0, p.NumDocs(); d < nd; d++ {
		for _, w := range p.Doc(d) {
			tf[w]++
		}
	}
	return tf
}

// ValidateProvider checks that every token's word id is within
// [0, NumWords): the invariant samplers index count arrays by. A
// *Corpus delegates to its own Validate; a *MappedCorpus was fully
// validated (checksum and bounds) when opened, so it answers without
// another O(T) pass.
func ValidateProvider(p Provider) error {
	if v, ok := p.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return checkBounds(p)
}

// checkBounds is the generic O(T) word-id bounds check.
func checkBounds(p Provider) error {
	v := p.NumWords()
	if v <= 0 {
		return fmt.Errorf("corpus: V = %d, want > 0", v)
	}
	for d, nd := 0, p.NumDocs(); d < nd; d++ {
		for n, w := range p.Doc(d) {
			if w < 0 || int(w) >= v {
				return fmt.Errorf("corpus: doc %d token %d: word id %d out of [0,%d)", d, n, w, v)
			}
		}
	}
	return nil
}

// BuildWordMajorOf is BuildWordMajor over any provider: the word-major
// (CSC) view with per-column entries sorted by document id.
func BuildWordMajorOf(p Provider) *WordMajor {
	tf := TermFreqsOf(p)
	v := p.NumWords()
	start := make([]int32, v+1)
	for w := 0; w < v; w++ {
		start[w+1] = start[w] + int32(tf[w])
	}
	docID := make([]int32, p.NumTokens())
	next := make([]int32, v)
	copy(next, start[:v])
	for d, nd := 0, p.NumDocs(); d < nd; d++ {
		for _, w := range p.Doc(d) {
			docID[next[w]] = int32(d)
			next[w]++
		}
	}
	return &WordMajor{Start: start, DocID: docID}
}
