package corpus

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadUCI parses the UCI machine-learning-repository bag-of-words format
// (the distribution format of the paper's NYTimes and PubMed datasets):
//
//	D
//	W
//	NNZ
//	docID wordID count        (NNZ lines, ids are 1-based)
//
// Each (doc, word, count) triple expands to count tokens. Blank lines are
// ignored. Word and document ids beyond the declared bounds are an error.
func ReadUCI(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var header [3]int
	for i := 0; i < 3; {
		if !sc.Scan() {
			return nil, fmt.Errorf("corpus: truncated UCI header: %w", scanErr(sc))
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("corpus: UCI header line %d: %v", i+1, err)
		}
		header[i] = v
		i++
	}
	d, w, nnz := header[0], header[1], header[2]
	if d < 0 || w <= 0 || nnz < 0 {
		return nil, fmt.Errorf("corpus: invalid UCI header D=%d W=%d NNZ=%d", d, w, nnz)
	}

	c := &Corpus{V: w, Docs: make([][]int32, d)}
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("corpus: UCI entry %q: want 3 fields", line)
		}
		doc, err1 := strconv.Atoi(f[0])
		word, err2 := strconv.Atoi(f[1])
		count, err3 := strconv.Atoi(f[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("corpus: UCI entry %q: non-integer field", line)
		}
		if doc < 1 || doc > d {
			return nil, fmt.Errorf("corpus: doc id %d out of [1,%d]", doc, d)
		}
		if word < 1 || word > w {
			return nil, fmt.Errorf("corpus: word id %d out of [1,%d]", word, w)
		}
		if count < 1 {
			return nil, fmt.Errorf("corpus: non-positive count %d", count)
		}
		for i := 0; i < count; i++ {
			c.Docs[doc-1] = append(c.Docs[doc-1], int32(word-1))
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if seen != nnz {
		return nil, fmt.Errorf("corpus: UCI header declares %d entries, found %d", nnz, seen)
	}
	return c, nil
}

func scanErr(sc *bufio.Scanner) error {
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// WriteUCI serializes the corpus in UCI bag-of-words format. Tokens are
// aggregated into (doc, word, count) triples; within a document, words
// are emitted in increasing id order.
func WriteUCI(w io.Writer, c *Corpus) error {
	bw := bufio.NewWriter(w)
	// First pass: count entries.
	nnz := 0
	counts := map[int32]int32{}
	for _, doc := range c.Docs {
		clear(counts)
		for _, word := range doc {
			counts[word]++
		}
		nnz += len(counts)
	}
	if _, err := fmt.Fprintf(bw, "%d\n%d\n%d\n", len(c.Docs), c.V, nnz); err != nil {
		return err
	}
	words := make([]int32, 0, 64)
	for d, doc := range c.Docs {
		clear(counts)
		words = words[:0]
		for _, word := range doc {
			if counts[word] == 0 {
				words = append(words, word)
			}
			counts[word]++
		}
		sortInt32(words)
		for _, word := range words {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", d+1, word+1, counts[word]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadVocab reads one word per line, in word-id order, as distributed
// alongside UCI bag-of-words files.
func ReadVocab(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var vocab []string
	for sc.Scan() {
		word := strings.TrimSpace(sc.Text())
		if word != "" {
			vocab = append(vocab, word)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return vocab, nil
}

func sortInt32(s []int32) {
	// insertion sort: per-document word lists are short
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
