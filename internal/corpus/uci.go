package corpus

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// uciHeader is the three-line UCI bag-of-words preamble.
type uciHeader struct {
	D, W, NNZ int
}

// splitFields parses up to 4 whitespace-separated non-negative integers
// directly from a line's bytes — the manual splitter that replaces the
// strings.TrimSpace + strings.Fields + strconv.Atoi pipeline, which
// allocated a []string and three substrings per entry line. Returns the
// values, how many fields were found (0 for a blank line; -1 on a
// malformed field or a fifth field), with zero allocations.
func splitFields(line []byte, out *[4]int) int {
	n := 0
	i := 0
	for {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) {
			return n
		}
		if n == len(out) {
			return -1 // too many fields
		}
		v := 0
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			c := line[i]
			if c < '0' || c > '9' || v > math.MaxInt/10 {
				return -1
			}
			v = v*10 + int(c-'0')
			i++
		}
		if i == start {
			return -1
		}
		out[n] = v
		n++
	}
}

// scanUCI drives a streaming parse of the UCI format: it validates the
// header, hands it to onHeader (which may veto the parse), then calls
// entry for every (doc, word, count) triple with 1-based ids already
// range-checked against the header and count >= 1. Memory is bounded by
// the scanner's line buffer; nothing is materialized. The entry count
// is checked against the declared NNZ.
func scanUCI(r io.Reader, onHeader func(uciHeader) error, entry func(doc, word, count int) error) (uciHeader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var hdr uciHeader
	var f [4]int
	for i := 0; i < 3; {
		if !sc.Scan() {
			return hdr, fmt.Errorf("corpus: truncated UCI header: %w", scanErr(sc))
		}
		switch n := splitFields(sc.Bytes(), &f); n {
		case 0:
			continue
		case 1:
			switch i {
			case 0:
				hdr.D = f[0]
			case 1:
				hdr.W = f[0]
			default:
				hdr.NNZ = f[0]
			}
			i++
		default:
			return hdr, fmt.Errorf("corpus: UCI header line %d: want one integer, got %q", i+1, sc.Text())
		}
	}
	if hdr.D < 0 || hdr.W <= 0 || hdr.NNZ < 0 {
		return hdr, fmt.Errorf("corpus: invalid UCI header D=%d W=%d NNZ=%d", hdr.D, hdr.W, hdr.NNZ)
	}
	if onHeader != nil {
		if err := onHeader(hdr); err != nil {
			return hdr, err
		}
	}

	seen := 0
	for sc.Scan() {
		n := splitFields(sc.Bytes(), &f)
		if n == 0 {
			continue
		}
		if n != 3 {
			return hdr, fmt.Errorf("corpus: UCI entry %q: want 3 integer fields", sc.Text())
		}
		doc, word, count := f[0], f[1], f[2]
		if doc < 1 || doc > hdr.D {
			return hdr, fmt.Errorf("corpus: doc id %d out of [1,%d]", doc, hdr.D)
		}
		if word < 1 || word > hdr.W {
			return hdr, fmt.Errorf("corpus: word id %d out of [1,%d]", word, hdr.W)
		}
		if count < 1 {
			return hdr, fmt.Errorf("corpus: non-positive count %d", count)
		}
		if err := entry(doc, word, count); err != nil {
			return hdr, err
		}
		seen++
	}
	if err := sc.Err(); err != nil {
		return hdr, err
	}
	if seen != hdr.NNZ {
		return hdr, fmt.Errorf("corpus: UCI header declares %d entries, found %d", hdr.NNZ, seen)
	}
	return hdr, nil
}

// ReadUCI parses the UCI machine-learning-repository bag-of-words format
// (the distribution format of the paper's NYTimes and PubMed datasets):
//
//	D
//	W
//	NNZ
//	docID wordID count        (NNZ lines, ids are 1-based)
//
// Each (doc, word, count) triple expands to count tokens. Blank lines are
// ignored. Word and document ids beyond the declared bounds are an error.
//
// The whole corpus is materialized in memory; for corpora near or beyond
// RAM use BuildCache + OpenMapped instead (the -stream path of
// cmd/warplda-train).
func ReadUCI(r io.Reader) (*Corpus, error) {
	var c *Corpus
	_, err := scanUCI(r,
		func(hdr uciHeader) error {
			c = &Corpus{V: hdr.W, Docs: make([][]int32, hdr.D)}
			return nil
		},
		func(doc, word, count int) error {
			for i := 0; i < count; i++ {
				c.Docs[doc-1] = append(c.Docs[doc-1], int32(word-1))
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return c, nil
}

func scanErr(sc *bufio.Scanner) error {
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// WriteUCI serializes the corpus in UCI bag-of-words format. Tokens are
// aggregated into (doc, word, count) triples; within a document, words
// are emitted in increasing id order. It shares docEntryWriter with the
// streaming generators (stream_gen.go), so WriteUCI over a materialized
// corpus and StreamLDAUCI/StreamZipfUCI over the same configuration
// produce identical bytes by construction.
func WriteUCI(w io.Writer, c *Corpus) error {
	e := newDocEntryWriter()
	// First pass: count entries.
	nnz := 0
	for _, doc := range c.Docs {
		nnz += e.distinct(doc)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n%d\n%d\n", len(c.Docs), c.V, nnz); err != nil {
		return err
	}
	for d, doc := range c.Docs {
		if err := e.emit(bw, d, doc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVocab reads one word per line, in word-id order, as distributed
// alongside UCI bag-of-words files.
func ReadVocab(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var vocab []string
	for sc.Scan() {
		word := strings.TrimSpace(sc.Text())
		if word != "" {
			vocab = append(vocab, word)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return vocab, nil
}

func sortInt32(s []int32) {
	// insertion sort: per-document word lists are short
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
