package corpus

import (
	"fmt"
	"math"

	"warplda/internal/alias"
	"warplda/internal/rng"
)

// SyntheticConfig parameterizes GenerateLDA. The generator draws a corpus
// from the LDA generative process itself, so samplers have real latent
// structure to recover — the stand-in for the paper's NYTimes / PubMed /
// ClueWeb12 corpora (see DESIGN.md, substitution 1).
type SyntheticConfig struct {
	D       int     // number of documents
	V       int     // vocabulary size
	K       int     // number of true topics
	MeanLen float64 // mean document length (Poisson)
	Alpha   float64 // document-topic Dirichlet parameter
	Beta    float64 // topic-word Dirichlet parameter
	Seed    uint64
}

// heapsV scales a vocabulary size sublinearly with the corpus scale
// factor (Heaps' law: V ∝ T^β with β ≈ 0.5), so scaled-down corpora keep
// a realistic type/token ratio instead of collapsing to a toy alphabet.
func heapsV(fullV int, scale float64) int {
	return imax(100, int(float64(fullV)*math.Sqrt(scale)))
}

// NYTimesLike returns a configuration whose shape statistics (T/D ≈ 332)
// follow the paper's NYTimes dataset, scaled by factor scale ∈ (0,1].
// scale=1 would be the full 300K-document corpus; D scales linearly, V
// by Heaps' law.
func NYTimesLike(scale float64) SyntheticConfig {
	return SyntheticConfig{
		D:       imax(50, int(300000*scale)),
		V:       heapsV(102000, scale),
		K:       50,
		MeanLen: 332,
		Alpha:   0.1,
		Beta:    0.01,
		Seed:    1,
	}
}

// PubMedLike returns a configuration following the paper's PubMed shape
// (short documents, T/D ≈ 90, large D).
func PubMedLike(scale float64) SyntheticConfig {
	return SyntheticConfig{
		D:       imax(50, int(8200000*scale)),
		V:       heapsV(141000, scale),
		K:       80,
		MeanLen: 90,
		Alpha:   0.1,
		Beta:    0.01,
		Seed:    2,
	}
}

// ClueWebLike returns a configuration following the paper's ClueWeb12
// shape (long web documents, T/D ≈ 378, V = 1M at full scale).
func ClueWebLike(scale float64) SyntheticConfig {
	return SyntheticConfig{
		D:       imax(50, int(639000000*scale)),
		V:       heapsV(1000000, scale),
		K:       100,
		MeanLen: 378,
		Alpha:   0.1,
		Beta:    0.01,
		Seed:    3,
	}
}

func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// visitLDADocs runs the LDA generative process — φk ~ Dir(β),
// θd ~ Dir(α), zdn ~ Mult(θd), wdn ~ Mult(φ_zdn) — calling visit with
// each document's tokens in order. The token buffer is reused between
// calls; visitors that keep a document must copy it. The process is
// fully determined by cfg (including Seed), so two walks with the same
// cfg visit identical documents — the property the streaming UCI
// generator's two-pass design relies on. Memory is O(K·V) for the
// topic alias tables plus one document.
func visitLDADocs(cfg SyntheticConfig, visit func(d int, doc []int32)) error {
	if cfg.D <= 0 || cfg.V <= 0 || cfg.K <= 0 || cfg.MeanLen <= 0 {
		return fmt.Errorf("corpus: invalid synthetic config %+v", cfg)
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 0.1
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.01
	}
	r := rng.New(cfg.Seed)

	// Topic-word distributions as alias tables for O(1) word draws.
	phi := make([]*alias.Table, cfg.K)
	buf := make([]float64, cfg.V)
	for k := 0; k < cfg.K; k++ {
		r.Dirichlet(cfg.Beta, buf)
		phi[k] = alias.New(buf)
	}

	theta := make([]float64, cfg.K)
	topicTab := &alias.Table{}
	var doc []int32
	for d := 0; d < cfg.D; d++ {
		r.Dirichlet(cfg.Alpha, theta)
		topicTab.Build(theta)
		n := poisson(r, cfg.MeanLen)
		if n < 1 {
			n = 1
		}
		if cap(doc) < n {
			doc = make([]int32, n)
		}
		doc = doc[:n]
		for i := 0; i < n; i++ {
			k := topicTab.Draw(r)
			doc[i] = int32(phi[k].Draw(r))
		}
		visit(d, doc)
	}
	return nil
}

// GenerateLDA draws a corpus from the LDA generative process.
// Memory is O(K·V + T); for corpora that should never be materialized
// use StreamLDAUCI.
func GenerateLDA(cfg SyntheticConfig) (*Corpus, error) {
	c := &Corpus{V: cfg.V, Docs: make([][]int32, imax(cfg.D, 0))}
	if err := visitLDADocs(cfg, func(d int, doc []int32) {
		c.Docs[d] = append([]int32(nil), doc...)
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// GenerateZipf draws a corpus whose word frequencies follow a Zipf law
// with exponent s (term frequency of rank-r word ∝ 1/r^s). Topics carry
// no semantics; this generator exists for the system-level experiments
// (partitioning, cache behaviour) where only the column-size power law
// matters — the property the paper's Sections 5.2–5.3 analyse.
func GenerateZipf(d, v int, meanLen float64, s float64, seed uint64) *Corpus {
	c := &Corpus{V: v, Docs: make([][]int32, d)}
	visitZipfDocs(d, v, meanLen, s, seed, func(i int, doc []int32) {
		c.Docs[i] = append([]int32(nil), doc...)
	})
	return c
}

// visitZipfDocs is the Zipf generative walk behind GenerateZipf and the
// streaming UCI generator; same reuse/determinism contract as
// visitLDADocs.
func visitZipfDocs(d, v int, meanLen, s float64, seed uint64, visit func(d int, doc []int32)) {
	r := rng.New(seed)
	w := make([]float64, v)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	tab := alias.New(w)
	var doc []int32
	for i := 0; i < d; i++ {
		n := poisson(r, meanLen)
		if n < 1 {
			n = 1
		}
		if cap(doc) < n {
			doc = make([]int32, n)
		}
		doc = doc[:n]
		for j := range doc {
			doc[j] = int32(tab.Draw(r))
		}
		visit(i, doc)
	}
}

// poisson draws a Poisson(mean) variate: Knuth's product method for small
// means, a normal approximation above 60 where Knuth's loop gets slow.
func poisson(r *rng.RNG, mean float64) int {
	if mean > 60 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.Normal()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
