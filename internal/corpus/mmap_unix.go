//go:build unix

package corpus

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned closer unmaps.
// An empty file maps to an empty slice (mmap of length 0 is an error on
// most kernels, and there is nothing to map).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("corpus: cache of %d bytes exceeds the address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus: mmap %s: %w", f.Name(), err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
