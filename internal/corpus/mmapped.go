package corpus

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"
)

// MappedCorpus is a read-only corpus view over a memory-mapped
// .warpcorpus cache file (see stream.go for the layout). The flattened
// token array and doc-boundary offsets live in page cache — the kernel
// pages them in on access and evicts them under pressure — so training
// memory no longer scales with corpus size for the corpus itself.
//
// It implements Provider (Doc returns a zero-copy slice into the
// mapping) and Fingerprinted (the identity hash checkpoints bind to is
// read from the header, computed once at BuildCache time). All
// validation — CRC32 trailer, section geometry, offset monotonicity,
// token bounds — happens in OpenMapped, so consumers can index freely.
//
// The typed views reinterpret the mapping in native byte order; the
// format is little-endian, matching every platform this repository
// targets (a big-endian host is rejected at open rather than silently
// mis-decoding).
type MappedCorpus struct {
	mapping []byte
	closer  func() error

	d, t        int
	v           int
	offsets     []int64 // D+1 token indices
	tokens      []int32 // T word ids, doc-major
	fingerprint uint32
	path        string
}

// OpenMapped maps a .warpcorpus cache read-only and fully validates it:
// magic and geometry, the CRC32 trailer (one sequential pass, which
// also warms the page cache), monotone doc offsets, and token word-id
// bounds. A file failing any check is unusable — the error says why.
func OpenMapped(path string) (*MappedCorpus, error) {
	if !littleEndianHost() {
		return nil, fmt.Errorf("corpus: %s: mapped corpora require a little-endian host", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := st.Size()
	if size < cacheHeaderSize+8+4 {
		f.Close()
		return nil, fmt.Errorf("corpus: %s: truncated cache (%d bytes)", path, size)
	}
	data, closer, err := mapFile(f, size)
	f.Close() // the mapping (or fallback copy) outlives the descriptor
	if err != nil {
		return nil, err
	}
	mc, err := newMapped(data, path)
	if err != nil {
		closer()
		return nil, err
	}
	mc.closer = closer
	return mc, nil
}

// newMapped validates a complete in-memory (or mapped) cache image and
// builds the typed views.
func newMapped(data []byte, path string) (*MappedCorpus, error) {
	fail := func(format string, args ...any) (*MappedCorpus, error) {
		return nil, fmt.Errorf("corpus: %s: %s", path, fmt.Sprintf(format, args...))
	}
	if len(data) < cacheHeaderSize+8+4 {
		return fail("truncated cache (%d bytes)", len(data))
	}
	if string(data[:8]) != cacheMagic {
		return fail("not a .warpcorpus cache (bad magic)")
	}
	d64 := binary.LittleEndian.Uint64(data[8:])
	v64 := binary.LittleEndian.Uint64(data[16:])
	t64 := binary.LittleEndian.Uint64(data[24:])
	fp64 := binary.LittleEndian.Uint64(data[32:])
	const maxDim = math.MaxInt64 / 8
	if d64 > maxDim || t64 > maxDim || v64 == 0 || v64 > math.MaxInt32 || fp64 > math.MaxUint32 {
		return fail("implausible header D=%d V=%d T=%d fp=%#x", d64, v64, t64, fp64)
	}
	d, v, t := int(d64), int(v64), int(t64)
	want := int64(cacheHeaderSize) + int64(d+1)*8 + int64(t)*4 + 4
	if int64(len(data)) != want {
		return fail("cache is %d bytes, header geometry wants %d (D=%d T=%d)", len(data), want, d, t)
	}

	// CRC trailer over everything after the magic.
	body := data[8 : len(data)-4]
	wantCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return fail("checksum mismatch (file %08x, computed %08x): torn or corrupt cache", wantCRC, got)
	}

	offBytes := data[cacheHeaderSize : cacheHeaderSize+(d+1)*8]
	tokBytes := data[cacheHeaderSize+(d+1)*8 : len(data)-4]
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&offBytes[0])), d+1)
	var tokens []int32
	if t > 0 {
		tokens = unsafe.Slice((*int32)(unsafe.Pointer(&tokBytes[0])), t)
	}

	if offsets[0] != 0 || offsets[d] != int64(t) {
		return fail("doc offsets do not span the token array ([%d,%d] vs T=%d)", offsets[0], offsets[d], t)
	}
	for i := 0; i < d; i++ {
		if offsets[i] > offsets[i+1] {
			return fail("doc offsets decrease at doc %d (%d > %d)", i, offsets[i], offsets[i+1])
		}
	}
	for i, w := range tokens {
		if w < 0 || int(w) >= v {
			return fail("token %d: word id %d out of [0,%d)", i, w, v)
		}
	}

	return &MappedCorpus{
		mapping: data, d: d, v: v, t: t,
		offsets: offsets, tokens: tokens,
		fingerprint: uint32(fp64), path: path,
	}, nil
}

// NumDocs implements Provider.
func (m *MappedCorpus) NumDocs() int { return m.d }

// NumTokens implements Provider.
func (m *MappedCorpus) NumTokens() int { return m.t }

// NumWords implements Provider.
func (m *MappedCorpus) NumWords() int { return m.v }

// Doc implements Provider: a zero-copy view into the mapping, invalid
// after Close.
func (m *MappedCorpus) Doc(d int) []int32 {
	return m.tokens[m.offsets[d]:m.offsets[d+1]]
}

// Vocabulary implements Provider; caches carry no vocabulary (load one
// separately with ReadVocab when needed).
func (m *MappedCorpus) Vocabulary() []string { return nil }

// CorpusFingerprint implements Fingerprinted: the checkpoint-binding
// identity hash, read from the validated header in O(1).
func (m *MappedCorpus) CorpusFingerprint() uint32 { return m.fingerprint }

// Validate implements the optional ValidateProvider fast path: every
// invariant was checked when the cache was opened.
func (m *MappedCorpus) Validate() error { return nil }

// Stats returns the Table-3 style summary.
func (m *MappedCorpus) Stats() Stats { return StatsOf(m) }

// Path returns the cache file the corpus is mapped from.
func (m *MappedCorpus) Path() string { return m.path }

// Info returns the cache metadata.
func (m *MappedCorpus) Info() CacheInfo {
	return CacheInfo{D: m.d, V: m.v, T: m.t, Fingerprint: m.fingerprint, Path: m.path}
}

// Close unmaps the cache. Doc views obtained earlier become invalid.
func (m *MappedCorpus) Close() error {
	if m.closer == nil {
		return nil
	}
	c := m.closer
	m.closer = nil
	m.mapping, m.offsets, m.tokens = nil, nil, nil
	return c()
}

// littleEndianHost reports whether the native integer layout matches
// the on-disk format, which the unsafe typed views require.
func littleEndianHost() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
