// Streaming out-of-core ingestion: BuildCache parses a UCI docword file
// in bounded memory and produces a .warpcorpus binary cache that
// OpenMapped (mmapped.go) maps read-only, so a corpus larger than RAM
// trains out of page cache instead of heap.
//
// The .warpcorpus layout (all integers little-endian):
//
//	offset 0   magic   "WARPCRP\x01"                    (8 bytes)
//	offset 8   header  u64 D, u64 V, u64 T, u64 fingerprint (32 bytes)
//	offset 40  offsets (D+1) × u64   token index of each doc's start
//	...        tokens  T × i32       flattened word ids, doc-major
//	trailer    u32 CRC32 (IEEE) over every byte after the magic
//
// The sections are 8-byte aligned so the mapped file can be viewed
// directly as []int64 / []int32. The fingerprint field is the exact
// corpus-identity hash checkpoints bind to (fingerprint.go), computed
// during ingestion — a training run resumed against the mapped cache
// validates this one header word instead of re-reading the source file.
package corpus

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"warplda/internal/fsio"
)

const (
	// cacheMagic versions the .warpcorpus layout.
	cacheMagic = "WARPCRP\x01"
	// cacheHeaderSize is magic + D + V + T + fingerprint.
	cacheHeaderSize = 8 + 4*8
	// CacheExt is the canonical cache file extension.
	CacheExt = ".warpcorpus"
)

// StreamOptions tunes BuildCache.
type StreamOptions struct {
	// MaxResidentBytes bounds the builder's buffer memory (spill-file
	// write buffers and the current-document token buffer). <= 0 means
	// 64 MiB. The bound is on buffers, not total process memory: the
	// parse additionally holds one document's tokens at a time, so the
	// effective floor is the longest document.
	MaxResidentBytes int64
	// TmpDir receives the spill files; "" means the cache file's
	// directory (keeping spills on the same filesystem as the result).
	TmpDir string
}

// CacheInfo summarizes a built or opened cache.
type CacheInfo struct {
	D, V, T     int
	Fingerprint uint32
	Path        string
}

// Stats returns the Table-3 style summary.
func (ci CacheInfo) Stats() Stats { return newStats(ci.D, ci.T, ci.V) }

// BuildCache streams a UCI docword file into a .warpcorpus cache at
// cachePath. Memory stays bounded (StreamOptions.MaxResidentBytes)
// regardless of corpus size: tokens and doc-boundary offsets are
// spilled to temporary files as they are parsed, then assembled into
// the final cache — header, offsets, tokens, CRC32 trailer — through
// fsio.AtomicWriteFile, so a crash mid-build can never leave a partial
// cache behind.
//
// The docword entries must carry non-decreasing document ids (the order
// UCI distributions ship in). That restriction is what makes one-pass
// bounded-memory ingestion possible — and it guarantees the flattened
// token order equals ReadUCI's in-memory order, so mapped and
// materialized training runs are bit-identical. A decreasing doc id is
// an error naming the offending line's doc pair.
func BuildCache(docword io.Reader, cachePath string, opts StreamOptions) (*CacheInfo, error) {
	budget := opts.MaxResidentBytes
	if budget <= 0 {
		budget = 64 << 20
	}
	// Two spill writers and one scanner line buffer share the budget.
	bufSize := int(budget / 4)
	if bufSize < 1<<16 {
		bufSize = 1 << 16
	}
	tmpDir := opts.TmpDir
	if tmpDir == "" {
		tmpDir = filepath.Dir(cachePath)
	}

	tokSpill, err := newSpill(tmpDir, "warpcorpus-tokens-*", bufSize)
	if err != nil {
		return nil, err
	}
	defer tokSpill.cleanup()
	offSpill, err := newSpill(tmpDir, "warpcorpus-offsets-*", bufSize)
	if err != nil {
		return nil, err
	}
	defer offSpill.cleanup()

	var (
		hasher  *FPHasher
		doc     []int32 // current document's tokens
		curDoc  int     // 1-based id of the document being accumulated
		nDocs   int
		nTokens int64
	)
	// closeDoc flushes the accumulated document (and any empty documents
	// before upto) into the spills and the fingerprint.
	closeDoc := func(upto int) error {
		for curDoc < upto {
			if err := offSpill.putU64(uint64(nTokens)); err != nil {
				return err
			}
			hasher.AddDoc(doc)
			for _, w := range doc {
				if err := tokSpill.putI32(w); err != nil {
					return err
				}
			}
			nTokens += int64(len(doc))
			doc = doc[:0]
			curDoc++
		}
		return nil
	}

	hdr, err := scanUCI(docword,
		func(h uciHeader) error {
			hasher = NewFPHasher(h.W, h.D)
			nDocs = h.D
			curDoc = 1
			return nil
		},
		func(d, word, count int) error {
			if d < curDoc {
				return fmt.Errorf("corpus: BuildCache needs non-decreasing doc ids, got %d after %d (sort the docword file or use the in-memory reader)", d, curDoc)
			}
			if d > curDoc {
				if err := closeDoc(d); err != nil {
					return err
				}
			}
			for i := 0; i < count; i++ {
				doc = append(doc, int32(word-1))
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	// Flush the final document and any trailing empty ones, then the
	// terminating offset.
	if err := closeDoc(nDocs + 1); err != nil {
		return nil, err
	}
	if err := offSpill.putU64(uint64(nTokens)); err != nil {
		return nil, err
	}
	if err := tokSpill.finish(); err != nil {
		return nil, err
	}
	if err := offSpill.finish(); err != nil {
		return nil, err
	}

	info := &CacheInfo{D: nDocs, V: hdr.W, T: int(nTokens), Fingerprint: hasher.Sum32(), Path: cachePath}

	// Assemble: header, offsets spill, tokens spill, CRC trailer — one
	// sequential copy into an atomically renamed file.
	_, err = fsio.AtomicWriteFile(cachePath, ".warpcorpus-*", func(w io.Writer) (int64, error) {
		return writeCacheFile(w, info, offSpill.path, tokSpill.path, bufSize)
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

// writeCacheFile emits the full .warpcorpus stream: magic, header,
// offsets section, tokens section, CRC trailer (hash over everything
// after the magic).
func writeCacheFile(w io.Writer, info *CacheInfo, offPath, tokPath string, bufSize int) (int64, error) {
	bw := bufio.NewWriterSize(w, bufSize)
	cw := fsio.NewCRCWriter(bw)
	if _, err := bw.WriteString(cacheMagic); err != nil {
		return 0, err
	}
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(info.D))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(info.V))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(info.T))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(info.Fingerprint))
	if _, err := cw.Write(hdr[:]); err != nil {
		return 0, err
	}
	wantOff := int64(info.D+1) * 8
	if err := copySpill(cw, offPath, wantOff); err != nil {
		return 0, err
	}
	wantTok := int64(info.T) * 4
	if err := copySpill(cw, tokPath, wantTok); err != nil {
		return 0, err
	}
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], cw.Sum32())
	if _, err := bw.Write(tr[:]); err != nil {
		return 0, err
	}
	n := int64(cacheHeaderSize) + wantOff + wantTok + 4
	return n, bw.Flush()
}

// copySpill streams a spill file into w, insisting on the expected size
// (a short spill would silently corrupt the section layout).
func copySpill(w io.Writer, path string, want int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := io.Copy(w, f)
	if err != nil {
		return err
	}
	if n != want {
		return fmt.Errorf("corpus: spill %s holds %d bytes, want %d", filepath.Base(path), n, want)
	}
	return nil
}

// spill is a buffered sequential writer over a temp file.
type spill struct {
	f    *os.File
	bw   *bufio.Writer
	path string
	buf  [8]byte
	done bool
}

func newSpill(dir, pattern string, bufSize int) (*spill, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &spill{f: f, bw: bufio.NewWriterSize(f, bufSize), path: f.Name()}, nil
}

func (s *spill) putI32(v int32) error {
	binary.LittleEndian.PutUint32(s.buf[:4], uint32(v))
	_, err := s.bw.Write(s.buf[:4])
	return err
}

func (s *spill) putU64(v uint64) error {
	binary.LittleEndian.PutUint64(s.buf[:], v)
	_, err := s.bw.Write(s.buf[:])
	return err
}

// finish flushes and closes the spill, keeping the file for assembly.
func (s *spill) finish() error {
	if s.done {
		return nil
	}
	s.done = true
	err := s.bw.Flush()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// cleanup closes (if needed) and deletes the spill file.
func (s *spill) cleanup() {
	if !s.done {
		s.done = true
		s.f.Close()
	}
	os.Remove(s.path)
}

// CachePathFor returns the conventional cache file path for a source
// docword file: <dir>/<base(source)>.warpcorpus, with dir defaulting to
// the source's own directory when cacheDir is empty.
func CachePathFor(sourcePath, cacheDir string) string {
	dir := cacheDir
	if dir == "" {
		dir = filepath.Dir(sourcePath)
	}
	return filepath.Join(dir, filepath.Base(sourcePath)+CacheExt)
}
