//go:build !unix

package corpus

import (
	"io"
	"os"
)

// mapFile on platforms without a usable mmap syscall falls back to
// reading the whole cache into heap: every .warpcorpus keeps working,
// just without the page-cache residency benefit (documented in the
// README's "Large corpora" section).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
