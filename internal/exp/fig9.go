package exp

import (
	"time"

	"warplda/internal/cluster"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
	"warplda/internal/sparse"
)

// Fig9a reproduces the single-machine multithreading scalability figure.
// On the paper's 24-core node the measured speedup is 17x at 24 cores;
// this host may have fewer cores, so the report shows both the measured
// wall-clock speedup (meaningful only up to the host's core count) and
// the modeled speedup from the work-partition balance with the paper's
// parallel efficiency (DESIGN.md substitution 3).
func Fig9a(o Options) (*Report, error) {
	r := &Report{ID: "fig9a", Title: "Multi-threading speedup (NYTimes-like)"}
	nyc := corpus.NYTimesLike(pick(o, 0.0015, 0.005))
	nyc.Seed = o.seed()
	c, err := corpus.GenerateLDA(nyc)
	if err != nil {
		return nil, err
	}
	k := pick(o, 64, 1000)
	iters := pick(o, 3, 8)
	tokens := c.NumTokens()

	// Work balance across n workers: contiguous doc/word splits, the same
	// scheme core.Warp uses internally.
	tf := c.TermFrequencies()
	dl := make([]int, c.NumDocs())
	for d, doc := range c.Docs {
		dl[d] = len(doc)
	}

	threads := []int{1, 2, 4}
	if !o.Quick {
		threads = append(threads, 6, 12, 24)
	}
	r.addf("%8s %14s %16s %16s", "threads", "Mtoken/s(wall)", "speedup(wall)", "speedup(model)")
	var baseline float64
	for _, n := range threads {
		cfg := sampler.PaperDefaults(k)
		cfg.M = 2
		cfg.Seed = o.seed()
		cfg.Threads = n
		w, err := core.New(c, cfg)
		if err != nil {
			return nil, err
		}
		w.Iterate() // warm-up
		start := time.Now()
		for i := 0; i < iters; i++ {
			w.Iterate()
		}
		el := time.Since(start).Seconds()
		mps := float64(tokens*iters) / el / 1e6
		if n == 1 {
			baseline = mps
		}
		// Modeled: balance-limited ideal × the paper's parallel
		// efficiency curve (17x/24 cores → per-thread overhead c≈0.018).
		balCol := balanceSpeedup(tf, n)
		balRow := balanceSpeedup(dl, n)
		bal := (balCol + balRow) / 2
		const cOverhead = 0.018
		model := bal / (1 + cOverhead*float64(n-1))
		r.addf("%8d %14.2f %16.2f %16.2f", n, mps, mps/baseline, model)
	}
	r.addf("paper: 17x at 24 cores, 1.96x from the second CPU socket")
	return r, nil
}

// balanceSpeedup returns total/max-part weight for a greedy n-way split —
// the speedup an n-worker phase achieves if compute is the only cost.
func balanceSpeedup(weights []int, n int) float64 {
	pt := sparse.GreedyPartition(weights, n)
	loads := pt.Loads(weights)
	var total, max int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if max == 0 {
		return 1
	}
	return float64(total) / float64(max)
}

// Fig9b reproduces the multi-machine speedup figure on the PubMed-like
// corpus: modeled throughput of the simulated cluster at 1..16 workers.
func Fig9b(o Options) (*Report, error) {
	r := &Report{ID: "fig9b", Title: "Distributed speedup (PubMed-like, modeled)"}
	pm := corpus.PubMedLike(pick(o, 0.00008, 0.0003))
	pm.Seed = o.seed()
	c, err := corpus.GenerateLDA(pm)
	if err != nil {
		return nil, err
	}
	k := pick(o, 64, 1024)
	workersList := []int{1, 2, 4, 8, 16}
	tokens := c.NumTokens()
	r.addf("%8s %18s %10s %12s", "workers", "Mtoken/s(model)", "speedup", "imbalance")
	var base float64
	for _, p := range workersList {
		cfg := sampler.PaperDefaults(k)
		cfg.M = 1
		cfg.Seed = o.seed()
		sim, err := cluster.New(c, cfg, cluster.Config{Workers: p})
		if err != nil {
			return nil, err
		}
		st := sim.IterateStats()
		thr := st.ModeledThroughput(tokens)
		if p == 1 {
			base = thr
		}
		r.addf("%8d %18.2f %10.2f %12.4f", p, thr/1e6, thr/base, st.Imbalance)
	}
	r.addf("paper: 13.5x at 16 machines")
	return r, nil
}

// Fig9cd reproduces the billion-scale run of Figures 9c and 9d on a
// scaled ClueWeb12-like corpus over 256 simulated workers: convergence
// against modeled time (9c) and modeled throughput per iteration (9d).
func Fig9cd(o Options) (*Report, error) {
	r := &Report{ID: "fig9cd", Title: "ClueWeb12-like on 256 simulated workers (K scaled)"}
	cw := corpus.ClueWebLike(pick(o, 0.0000006, 0.0000025))
	cw.Seed = o.seed()
	c, err := corpus.GenerateLDA(cw)
	if err != nil {
		return nil, err
	}
	k := pick(o, 128, 2048) // paper: 1M topics; scaled with the corpus
	iters := pick(o, 8, 30)
	every := pick(o, 2, 5)
	cfg := sampler.PaperDefaults(k)
	cfg.M = 1
	cfg.Beta = 0.001 // the paper's finer-grained-topics setting for this run
	cfg.Seed = o.seed()
	sim, err := cluster.New(c, cfg, cluster.Config{Workers: 256})
	if err != nil {
		return nil, err
	}
	tokens := c.NumTokens()
	r.addf("%6s %14s %16s %18s", "iter", "logLik", "modeled time(s)", "Gtoken/s(model)")
	var t float64
	for it := 1; it <= iters; it++ {
		st := sim.IterateStats()
		t += st.ModeledSeconds
		if it%every == 0 || it == iters {
			ll := eval.LogJoint(c, sim.Assignments(), k, cfg.Alpha, cfg.Beta)
			r.addf("%6d %14.4e %16.4f %18.4f", it, ll, t, st.ModeledThroughput(tokens)/1e9)
		}
	}
	r.addf("paper: 11 Gtoken/s on 256 machines, 1M topics in 5 hours")
	return r, nil
}
