package exp

import (
	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sparse"
)

// Fig4 reproduces Figure 4: the imbalance index of the greedy column
// partitioner against the static (random equal-count) and dynamic
// (contiguous) baselines, as the number of partitions grows, on a corpus
// with power-law term frequencies.
func Fig4(o Options) (*Report, error) {
	r := &Report{ID: "fig4", Title: "Partition imbalance vs number of partitions"}
	d := pick(o, 2000, 20000)
	v := pick(o, 5000, 50000)
	c := corpus.GenerateZipf(d, v, pick(o, 80.0, 200.0), 0.95, o.seed())
	tf := c.TermFrequencies()
	// Emulate stop-word removal as the paper does for ClueWeb12: drop the
	// heaviest ~0.1% of words, which would otherwise dominate any split.
	drop := v / 1000
	if drop < 3 {
		drop = 3
	}
	order := make([]int, len(tf))
	copy(order, tf)
	weights := make([]int, 0, len(tf))
	// Find the drop-th largest frequency with a simple selection.
	thresh := kthLargest(order, drop)
	removedBudget := drop
	for _, f := range tf {
		if f >= thresh && removedBudget > 0 {
			removedBudget--
			continue
		}
		weights = append(weights, f)
	}

	parts := []int{2, 4, 8, 16, 32, 64}
	if !o.Quick {
		parts = append(parts, 128, 256, 512)
	}
	rsrc := rng.New(o.seed())
	r.addf("%10s %14s %14s %14s", "partitions", "static", "dynamic", "greedy")
	for _, p := range parts {
		static := sparse.ImbalanceIndex(sparse.StaticPartition(weights, p, rsrc).Loads(weights))
		dynamic := sparse.ImbalanceIndex(sparse.DynamicPartition(weights, p).Loads(weights))
		greedy := sparse.ImbalanceIndex(sparse.GreedyPartition(weights, p).Loads(weights))
		r.addf("%10d %14.6g %14.6g %14.6g", p, static, dynamic, greedy)
	}
	r.addf("paper shape: greedy orders of magnitude below both baselines until P nears the head word count")
	return r, nil
}

// kthLargest returns the k-th largest value of s (1-based), mutating s.
func kthLargest(s []int, k int) int {
	if k < 1 {
		k = 1
	}
	if k > len(s) {
		k = len(s)
	}
	lo, hi := 0, len(s)-1
	want := k - 1 // index in descending order
	for lo < hi {
		pivot := s[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for s[i] > pivot {
				i++
			}
			for s[j] < pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		if want <= j {
			hi = j
		} else if want >= i {
			lo = i
		} else {
			break
		}
	}
	return s[want]
}
