package exp

import (
	"time"

	"warplda/internal/baselines"
	"warplda/internal/cachesim"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// Table2 reproduces the paper's Table 2 — the per-algorithm access
// complexity summary — and augments it with *measured* per-token
// throughput of this repository's implementations on a common corpus, so
// the analytical claims can be checked against running code.
func Table2(o Options) (*Report, error) {
	r := &Report{ID: "table2", Title: "Summary of LDA algorithms (analytical + measured)"}
	d := pick(o, 250, 2000)
	v := pick(o, 300, 3000)
	k := pick(o, 32, 256)
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: d, V: v, K: 8, MeanLen: pick(o, 40.0, 120.0), Seed: o.seed(),
	})
	if err != nil {
		return nil, err
	}
	cfg := sampler.PaperDefaults(k)
	cfg.M = 1
	cfg.Seed = o.seed()

	type row struct {
		name       string
		kind       string
		sequential string
		random     string
		size       string
		order      string
		s          sampler.Sampler
	}
	mk := func(s sampler.Sampler, err error) sampler.Sampler {
		if err != nil {
			panic(err)
		}
		return s
	}
	rows := []row{
		{"CGS", "-", "K", "-", "-", "doc", mk(baselines.NewCGS(c, cfg))},
		{"SparseLDA", "SA", "Kd+Kw", "Kd+Kw", "KV", "doc", mk(baselines.NewSparseLDA(c, cfg))},
		{"AliasLDA", "SA&MH", "Kd", "Kd", "KV", "doc", mk(baselines.NewAliasLDA(c, cfg))},
		{"F+LDA", "SA", "Kd", "Kd", "DK", "word", mk(baselines.NewFPlusLDA(c, cfg))},
		{"LightLDA", "MH", "-", "1", "KV", "doc", mk(baselines.NewLightLDA(c, cfg, baselines.LightLDAOptions{}))},
		{"WarpLDA", "MH", "-", "1", "K", "doc&word", mk(core.New(c, cfg))},
	}

	r.addf("%-10s %-6s %-12s %-10s %-8s %-9s %12s", "Algorithm", "Type",
		"Seq/token", "Rand/token", "RandMem", "Order", "Mtoken/s")
	iters := pick(o, 2, 5)
	tokens := c.NumTokens()
	for _, row := range rows {
		row.s.Iterate() // warm-up / burn-in
		start := time.Now()
		for i := 0; i < iters; i++ {
			row.s.Iterate()
		}
		el := time.Since(start).Seconds()
		mps := float64(tokens*iters) / el / 1e6
		r.addf("%-10s %-6s %-12s %-10s %-8s %-9s %12.2f", row.name, row.kind,
			row.sequential, row.random, row.size, row.order, mps)
	}
	r.addf("corpus: %s, K=%d, M=1", c.Stats(), k)
	return r, nil
}

// Table3 reproduces the dataset statistics table for the synthetic
// stand-in corpora (see DESIGN.md substitution 1), plus the power-law
// head share the paper quotes for ClueWeb12.
func Table3(o Options) (*Report, error) {
	r := &Report{ID: "table3", Title: "Statistics of datasets (synthetic stand-ins)"}
	scaleNYT := pick(o, 0.002, 0.01)
	scalePM := pick(o, 0.0001, 0.0005)
	scaleCW := pick(o, 0.0000008, 0.000004)
	configs := []struct {
		name string
		cfg  corpus.SyntheticConfig
	}{
		{"NYTimes-like", corpus.NYTimesLike(scaleNYT)},
		{"PubMed-like", corpus.PubMedLike(scalePM)},
		{"ClueWeb12-like", corpus.ClueWebLike(scaleCW)},
	}
	r.addf("%-15s %10s %12s %10s %8s %12s", "Dataset", "D", "T", "V", "T/D", "top1% share")
	for _, e := range configs {
		c, err := corpus.GenerateLDA(e.cfg)
		if err != nil {
			return nil, err
		}
		s := c.Stats()
		share := c.TopWordsShare(s.V / 100)
		r.addf("%-15s %10d %12d %10d %8.1f %11.1f%%", e.name, s.D, s.T, s.V, s.L, 100*share)
	}
	r.addf("paper shapes: NYTimes T/D=332, PubMed T/D=90, ClueWeb12 T/D=378")
	return r, nil
}

// Table4 reproduces the L3 cache miss-rate comparison with the software
// cache simulator (DESIGN.md substitution 2): the cache geometry is the
// paper's Ivy Bridge scaled down by the same factor as the corpora, so
// the ratio of count-matrix size to L3 size matches the paper's regime.
func Table4(o Options) (*Report, error) {
	r := &Report{ID: "table4", Title: "L3 cache miss rate, M=1 (simulated hierarchy)"}
	type setting struct {
		name string
		d, v int
		k    int
	}
	settings := []setting{
		{"NYTimes-like, small K", pick(o, 400, 1500), pick(o, 500, 2000), pick(o, 64, 256)},
		{"NYTimes-like, large K", pick(o, 400, 1500), pick(o, 500, 2000), pick(o, 256, 1024)},
		{"PubMed-like, small K", pick(o, 800, 3000), pick(o, 500, 2500), pick(o, 256, 1024)},
		{"PubMed-like, large K", pick(o, 800, 3000), pick(o, 500, 2500), pick(o, 512, 4096)},
	}
	algs := []string{cachesim.AlgLightLDA, cachesim.AlgFPlusLDA, cachesim.AlgWarpLDA}
	r.addf("%-24s %10s %10s %10s", "Setting", "LightLDA", "F+LDA", "WarpLDA")
	maxTokens := pick(o, 20000, 200000)
	for _, s := range settings {
		c := corpus.GenerateZipf(s.d, s.v, 60, 0.9, o.seed())
		var miss [3]float64
		for i, alg := range algs {
			// Scale caches so matrix:L3 ratio matches the paper's
			// tens-of-GB vs 30MB regime (factor ~1024).
			h := cachesim.New(cachesim.Scaled(1024))
			if err := cachesim.Replay(alg, c, h, cachesim.ReplayConfig{
				K: s.k, M: 1, MaxTokens: maxTokens, Seed: o.seed(),
			}); err != nil {
				return nil, err
			}
			l3, err := h.Level("L3")
			if err != nil {
				return nil, err
			}
			miss[i] = l3.MissRate()
		}
		r.addf("%-24s %9.1f%% %9.1f%% %9.1f%%", s.name, 100*miss[0], 100*miss[1], 100*miss[2])
	}
	r.addf("paper: LightLDA 33-38%%, F+LDA 17-77%%, WarpLDA 5-17%%")
	return r, nil
}
