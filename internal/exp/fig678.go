package exp

import (
	"time"

	"warplda/internal/baselines"
	"warplda/internal/cluster"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

// Fig6 reproduces the distributed convergence comparison of Figure 6:
// WarpLDA (M=4) against LightLDA (M=16) on a ClueWeb12-subset-like
// corpus over 32 simulated workers. WarpLDA's distributed time comes from
// the cluster cost model; LightLDA's from the same per-worker compute
// scaling plus a parameter-server synchronization term for its shared
// C_w matrix (the system design WarpLDA's Section 5 removes).
func Fig6(o Options) (*Report, error) {
	r := &Report{ID: "fig6", Title: "Distributed convergence, 32 workers: WarpLDA(M=4) vs LightLDA(M=16)"}
	cw := corpus.ClueWebLike(pick(o, 0.0000006, 0.0000025))
	cw.Seed = o.seed()
	c, err := corpus.GenerateLDA(cw)
	if err != nil {
		return nil, err
	}
	k := pick(o, 64, 1024)
	workers := 32
	iters := pick(o, 10, 40)
	every := pick(o, 2, 5)

	warpCfg := sampler.PaperDefaults(k)
	warpCfg.M = 4
	warpCfg.Seed = o.seed()
	sim, err := cluster.New(c, warpCfg, cluster.Config{Workers: workers})
	if err != nil {
		return nil, err
	}

	lightCfg := sampler.PaperDefaults(k)
	lightCfg.M = 16
	lightCfg.Seed = o.seed()
	light, err := baselines.NewLightLDA(c, lightCfg, baselines.LightLDAOptions{})
	if err != nil {
		return nil, err
	}

	r.addf("%-10s %6s %14s %14s", "sampler", "iter", "logLik", "modeled time(s)")
	var warpT float64
	for it := 1; it <= iters; it++ {
		st := sim.IterateStats()
		warpT += st.ModeledSeconds
		if it%every == 0 || it == iters {
			ll := eval.LogJoint(c, sim.Assignments(), k, warpCfg.Alpha, warpCfg.Beta)
			r.addf("%-10s %6d %14.4e %14.4f", "WarpLDA", it, ll, warpT)
		}
	}
	// LightLDA distributed model: compute = wall/P on the heaviest doc
	// shard; comm = parameter-server push+pull of word-topic deltas
	// (8 bytes per MH pair per token) at the same network bandwidth.
	net := cluster.InfiniBand()
	tokens := c.NumTokens()
	var lightT float64
	for it := 1; it <= iters; it++ {
		start := time.Now()
		light.Iterate()
		wall := time.Since(start).Seconds()
		compute := wall / float64(workers) * 1.05 // 5% shard imbalance
		psBytes := float64(tokens) / float64(workers) * 8 * float64(lightCfg.M)
		comm := psBytes / net.BandwidthBytesPerSec
		step := compute
		if comm > step {
			step = comm
		}
		lightT += step
		if it%every == 0 || it == iters {
			ll := eval.LogJoint(c, light.Assignments(), k, lightCfg.Alpha, lightCfg.Beta)
			r.addf("%-10s %6d %14.4e %14.4f", "LightLDA", it, ll, lightT)
		}
	}
	r.addf("paper shape: WarpLDA ~10x faster to the same log-likelihood")
	return r, nil
}

// Fig7 reproduces the ablation of Figure 7: bridging from stock LightLDA
// to WarpLDA one design decision at a time (delayed C_w, delayed C_d,
// simple word proposal), all at M=1, showing that none of the MCEM
// simplifications hurt per-iteration convergence.
func Fig7(o Options) (*Report, error) {
	r := &Report{ID: "fig7", Title: "MCEM vs CGS solution quality (LightLDA -> WarpLDA bridge), M=1"}
	nyc := corpus.NYTimesLike(pick(o, 0.0015, 0.005))
	nyc.Seed = o.seed()
	c, err := corpus.GenerateLDA(nyc)
	if err != nil {
		return nil, err
	}
	k := pick(o, 64, 1000)
	iters := pick(o, 30, 100)
	every := pick(o, 3, 10)
	cfg := sampler.PaperDefaults(k)
	cfg.M = 1
	cfg.Seed = o.seed()

	samplers := []sampler.Sampler{}
	for _, opt := range []baselines.LightLDAOptions{
		{},
		{DelayWordCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true},
		{DelayWordCounts: true, DelayDocCounts: true, SimpleProposal: true},
	} {
		l, err := baselines.NewLightLDA(c, cfg, opt)
		if err != nil {
			return nil, err
		}
		samplers = append(samplers, l)
	}
	w, err := core.New(c, cfg)
	if err != nil {
		return nil, err
	}
	samplers = append(samplers, w)

	r.addf("%-22s %6s %14s", "sampler", "iter", "logLik")
	finals := map[string]float64{}
	for _, s := range samplers {
		run := sampler.Train(s, c, cfg, iters, every)
		for _, p := range run.Points {
			r.addf("%-22s %6d %14.4e", run.Sampler, p.Iter, p.LogLik)
		}
		finals[run.Sampler] = run.Final().LogLik
	}
	r.addf("paper shape: all five curves need roughly the same iterations to a given logLik")
	return r, nil
}

// Fig8 reproduces Figure 8: the impact of the MH step count M on
// WarpLDA's convergence — larger M converges in fewer iterations (and,
// up to a point, less time).
func Fig8(o Options) (*Report, error) {
	r := &Report{ID: "fig8", Title: "Impact of M on WarpLDA convergence"}
	nyc := corpus.NYTimesLike(pick(o, 0.0015, 0.005))
	nyc.Seed = o.seed()
	c, err := corpus.GenerateLDA(nyc)
	if err != nil {
		return nil, err
	}
	k := pick(o, 64, 1000)
	iters := pick(o, 12, 60)
	every := pick(o, 3, 5)
	ms := []int{1, 2, 4}
	if !o.Quick {
		ms = append(ms, 8, 16)
	}
	r.addf("%4s %6s %14s %10s", "M", "iter", "logLik", "time(s)")
	for _, m := range ms {
		cfg := sampler.PaperDefaults(k)
		cfg.M = m
		cfg.Seed = o.seed()
		w, err := core.New(c, cfg)
		if err != nil {
			return nil, err
		}
		run := sampler.Train(w, c, cfg, iters, every)
		for _, p := range run.Points {
			r.addf("%4d %6d %14.4e %10.3f", m, p.Iter, p.LogLik, p.Elapsed.Seconds())
		}
	}
	r.addf("paper shape: larger M converges in fewer iterations; small M (1-4) best by wall clock")
	return r, nil
}
