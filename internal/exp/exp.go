// Package exp contains one runner per table and figure of the paper's
// evaluation (Section 6 plus the systems figures of Section 5). Each
// runner builds its workload, executes the relevant algorithms, and
// returns a Report whose rows mirror what the paper plots. The cmd/
// warplda-bench binary prints full-size reports; bench_test.go runs
// reduced ("quick") versions so the whole suite regenerates in minutes
// on one core.
//
// Scale substitutions relative to the paper are listed in DESIGN.md and
// recorded per experiment in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Report is the rendered result of one experiment.
type Report struct {
	ID    string // e.g. "table4", "fig5"
	Title string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// WriteTo renders the report.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	return b.String()
}

// Options control experiment sizing. Quick mode shrinks corpora, topic
// counts and iteration budgets so the full suite runs in minutes.
type Options struct {
	Quick bool
	Seed  uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// pick returns quick when o.Quick, else full.
func pick[T any](o Options, quick, full T) T {
	if o.Quick {
		return quick
	}
	return full
}
