package exp

import (
	"warplda/internal/baselines"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// Fig5 reproduces the single-machine convergence comparison of Figure 5:
// WarpLDA (M=2) vs LightLDA (best M) vs F+LDA on the NYTimes-like and
// PubMed-like corpora, reporting log-likelihood by iteration, by time,
// the iteration/time ratios to reach milestone likelihoods, and the
// token throughput — one block per (corpus, K) setting.
func Fig5(o Options) (*Report, error) {
	r := &Report{ID: "fig5", Title: "Convergence: WarpLDA vs LightLDA vs F+LDA"}
	type setting struct {
		name    string
		cfg     corpus.SyntheticConfig
		k       int
		lightM  int
		iters   int
		everyIt int
	}
	settings := []setting{
		{"NYTimes-like K=small", corpus.NYTimesLike(pick(o, 0.0015, 0.004)), pick(o, 32, 1000), 4, pick(o, 12, 50), pick(o, 2, 5)},
		{"NYTimes-like K=large", corpus.NYTimesLike(pick(o, 0.0015, 0.004)), pick(o, 128, 4096), 8, pick(o, 12, 50), pick(o, 2, 5)},
	}
	if !o.Quick {
		settings = append(settings,
			setting{"PubMed-like K=large", corpus.PubMedLike(0.0002), 2048, 8, 40, 5},
			setting{"PubMed-like K=huge", corpus.PubMedLike(0.0002), 8192, 16, 40, 5},
		)
	} else {
		settings = append(settings,
			setting{"PubMed-like K=large", corpus.PubMedLike(0.00008), 256, 8, 12, 2},
		)
	}

	for _, s := range settings {
		s.cfg.Seed = o.seed()
		c, err := corpus.GenerateLDA(s.cfg)
		if err != nil {
			return nil, err
		}
		base := sampler.PaperDefaults(s.k)
		base.Seed = o.seed()

		warpCfg := base
		warpCfg.M = 2
		warp, err := core.New(c, warpCfg)
		if err != nil {
			return nil, err
		}
		lightCfg := base
		lightCfg.M = s.lightM
		light, err := baselines.NewLightLDA(c, lightCfg, baselines.LightLDAOptions{})
		if err != nil {
			return nil, err
		}
		fldaCfg := base
		flda, err := baselines.NewFPlusLDA(c, fldaCfg)
		if err != nil {
			return nil, err
		}

		runs := []sampler.Run{
			sampler.Train(warp, c, warpCfg, s.iters, s.everyIt),
			sampler.Train(light, c, lightCfg, s.iters, s.everyIt),
			sampler.Train(flda, c, fldaCfg, s.iters, s.everyIt),
		}

		r.addf("--- %s (%s, K=%d, LightLDA M=%d) ---", s.name, c.Stats(), s.k, s.lightM)
		r.addf("%-12s %6s %14s %10s %12s", "sampler", "iter", "logLik", "time(s)", "Mtoken/s")
		for _, run := range runs {
			for _, p := range run.Points {
				r.addf("%-12s %6d %14.4e %10.3f %12.2f", run.Sampler, p.Iter,
					p.LogLik, p.Elapsed.Seconds(), p.TokensSec/1e6)
			}
		}

		// Milestones: the likelihood levels WarpLDA passes at 1/3 and 2/3
		// of its own trajectory (analogous to the paper's marked levels).
		warpRun := runs[0]
		if n := len(warpRun.Points); n >= 3 {
			for _, frac := range []int{n / 3, 2 * n / 3} {
				level := warpRun.Points[frac].LogLik
				r.addf("milestone logLik %.4e:", level)
				wIter, wTime := warpRun.IterToReach(level), warpRun.TimeToReach(level)
				for _, run := range runs[1:] {
					oIter, oTime := run.IterToReach(level), run.TimeToReach(level)
					iterRatio, timeRatio := -1.0, -1.0
					if oIter > 0 && wIter > 0 {
						iterRatio = float64(oIter) / float64(wIter)
					}
					if oTime > 0 && wTime > 0 {
						timeRatio = oTime.Seconds() / wTime.Seconds()
					}
					r.addf("  %-12s iter-ratio=%6.2f  time-ratio=%6.2f", run.Sampler, iterRatio, timeRatio)
				}
			}
		}
	}
	r.addf("paper shape: WarpLDA needs more iterations but 5-15x less time than LightLDA;")
	r.addf("faster than F+LDA for K<=1e4, F+LDA closes the gap at very large K")
	return r, nil
}
