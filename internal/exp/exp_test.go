package exp

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 7} }

// skipFullRegen gates the multi-second figure regenerations (full
// multi-sampler training runs even in quick mode) behind -short. CI's
// race lane runs -short; a separate full lane keeps the coverage.
func skipFullRegen(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping figure regeneration in -short mode")
	}
}

// run executes an experiment in quick mode and returns its report.
func run(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Run(id, quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id || len(r.Lines) == 0 {
		t.Fatalf("%s: empty or mislabeled report", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9cd",
		"table2", "table3", "table4"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// field extracts whitespace-delimited field i of a line.
func field(line string, i int) string {
	f := strings.Fields(line)
	if i >= len(f) {
		return ""
	}
	return f[i]
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTable2ReportsAllAlgorithms(t *testing.T) {
	r := run(t, "table2")
	text := r.String()
	for _, name := range []string{"CGS", "SparseLDA", "AliasLDA", "F+LDA", "LightLDA", "WarpLDA"} {
		if !strings.Contains(text, name) {
			t.Errorf("table2 missing %s", name)
		}
	}
}

func TestTable3ReportsThreeDatasets(t *testing.T) {
	r := run(t, "table3")
	text := r.String()
	for _, name := range []string{"NYTimes-like", "PubMed-like", "ClueWeb12-like"} {
		if !strings.Contains(text, name) {
			t.Errorf("table3 missing %s", name)
		}
	}
}

// The headline Table 4 shape must hold in the reproduction: WarpLDA's L3
// miss rate strictly below LightLDA's and F+LDA's in every setting.
func TestTable4Shape(t *testing.T) {
	r := run(t, "table4")
	rows := 0
	for _, line := range r.Lines {
		if !strings.Contains(line, "%") || strings.HasPrefix(line, "paper") || strings.Contains(line, "Setting") {
			continue
		}
		f := strings.Fields(line)
		n := len(f)
		warp := parseF(t, f[n-1])
		flda := parseF(t, f[n-2])
		light := parseF(t, f[n-3])
		if warp >= light || warp >= flda {
			t.Errorf("shape violated in %q: warp=%g light=%g flda=%g", line, warp, light, flda)
		}
		rows++
	}
	if rows < 3 {
		t.Fatalf("only %d data rows in table4", rows)
	}
}

// Fig 4 shape: greedy strictly more balanced than static and dynamic at
// every partition count.
func TestFig4Shape(t *testing.T) {
	r := run(t, "fig4")
	rows := 0
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] == "partitions" {
			continue
		}
		static := parseF(t, f[1])
		dynamic := parseF(t, f[2])
		greedy := parseF(t, f[3])
		if greedy > static || greedy > dynamic {
			t.Errorf("greedy %g not best in %q", greedy, line)
		}
		rows++
	}
	if rows < 4 {
		t.Fatalf("only %d partition rows", rows)
	}
}

// Fig 5 shape: all three samplers improve log-likelihood, and WarpLDA's
// throughput exceeds LightLDA's.
func TestFig5Shape(t *testing.T) {
	skipFullRegen(t)
	r := run(t, "fig5")
	type tr struct {
		firstLL, lastLL float64
		lastThr         float64
		seen            bool
	}
	cur := map[string]*tr{}
	flush := func() {
		for name, v := range cur {
			if !v.seen {
				continue
			}
			if v.lastLL <= v.firstLL {
				t.Errorf("%s did not improve: %.4g -> %.4g", name, v.firstLL, v.lastLL)
			}
		}
		// The WarpLDA-vs-LightLDA throughput ordering is the paper's
		// claim, but on tiny quick-mode corpora it is machine-dependent:
		// on starved 1-CPU CI containers the constant-factor noise of a
		// sub-second run can invert it. The log-likelihood improvement
		// checks above stay unconditional; the throughput comparison is
		// opt-in via WARPLDA_EXP_STRICT=1 (set it on dedicated perf
		// runners; tracked alongside the bench-regression lane, which
		// gates the same property with statistics instead of one sample).
		if os.Getenv("WARPLDA_EXP_STRICT") != "" {
			if w, l := cur["WarpLDA"], cur["LightLDA"]; w != nil && l != nil && w.seen && l.seen {
				if w.lastThr <= l.lastThr {
					t.Errorf("WarpLDA throughput %.2f not above LightLDA %.2f", w.lastThr, l.lastThr)
				}
			}
		}
		cur = map[string]*tr{}
	}
	for _, line := range r.Lines {
		if strings.HasPrefix(line, "---") {
			flush()
			continue
		}
		f := strings.Fields(line)
		if len(f) != 5 {
			continue
		}
		name := f[0]
		if name == "sampler" {
			continue
		}
		ll, err1 := strconv.ParseFloat(f[2], 64)
		thr, err2 := strconv.ParseFloat(f[4], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		v := cur[name]
		if v == nil {
			v = &tr{firstLL: ll}
			cur[name] = v
		}
		v.lastLL = ll
		v.lastThr = thr
		v.seen = true
	}
	flush()
}

// Fig 7 shape (the paper's phrasing): all five variants need *roughly the
// same number of iterations* to reach a given log-likelihood. Milestone =
// the weakest variant's final likelihood; every variant must reach it,
// and the worst/best iteration ratio must stay small.
func TestFig7Shape(t *testing.T) {
	skipFullRegen(t)
	r := run(t, "fig7")
	traces := map[string][][2]float64{} // (iter, ll) per sampler
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) != 3 || f[0] == "sampler" {
			continue
		}
		iter, err1 := strconv.ParseFloat(f[1], 64)
		ll, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		traces[f[0]] = append(traces[f[0]], [2]float64{iter, ll})
	}
	if len(traces) != 5 {
		t.Fatalf("fig7 traced %d samplers, want 5", len(traces))
	}
	milestone := 0.0
	firstIter := true
	for name, tr := range traces {
		finalLL := tr[len(tr)-1][1]
		if finalLL <= tr[0][1] {
			t.Errorf("%s did not improve", name)
		}
		if firstIter || finalLL < milestone {
			milestone = finalLL
		}
		firstIter = false
	}
	best, worst := -1.0, -1.0
	for name, tr := range traces {
		reached := -1.0
		for _, p := range tr {
			if p[1] >= milestone {
				reached = p[0]
				break
			}
		}
		if reached < 0 {
			t.Errorf("%s never reached milestone %.4g", name, milestone)
			continue
		}
		if best < 0 || reached < best {
			best = reached
		}
		if reached > worst {
			worst = reached
		}
	}
	if best > 0 && worst/best > 2.5 {
		t.Errorf("iteration ratio %0.2f between variants exceeds 2.5", worst/best)
	}
}

// Fig 8 shape: every M converges; larger M reaches a no-worse likelihood
// at the last iteration.
func TestFig8Shape(t *testing.T) {
	skipFullRegen(t)
	r := run(t, "fig8")
	last := map[string]float64{}
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] == "M" {
			continue
		}
		if ll, err := strconv.ParseFloat(f[2], 64); err == nil {
			last[f[0]] = ll
		}
	}
	if len(last) < 3 {
		t.Fatalf("fig8 traced %d M values", len(last))
	}
	if last["4"] < last["1"]-0.02*absF(last["1"]) {
		t.Errorf("M=4 final LL %.4g clearly below M=1 %.4g", last["4"], last["1"])
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestFig6Runs(t *testing.T) {
	skipFullRegen(t)
	r := run(t, "fig6")
	if !strings.Contains(r.String(), "WarpLDA") || !strings.Contains(r.String(), "LightLDA") {
		t.Fatal("fig6 missing samplers")
	}
}

// Fig 9b shape: modeled speedup grows with workers.
func TestFig9bShape(t *testing.T) {
	r := run(t, "fig9b")
	var speedups []float64
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] == "workers" {
			continue
		}
		if s, err := strconv.ParseFloat(f[2], 64); err == nil {
			speedups = append(speedups, s)
		}
	}
	if len(speedups) != 5 {
		t.Fatalf("fig9b rows = %d", len(speedups))
	}
	if speedups[len(speedups)-1] < 2 {
		t.Errorf("16-worker modeled speedup %.2f implausibly low", speedups[len(speedups)-1])
	}
	for i := 1; i < len(speedups); i++ {
		if speedups[i] < speedups[i-1]*0.9 {
			t.Errorf("speedup regressed: %v", speedups)
		}
	}
}

func TestFig9aRuns(t *testing.T) {
	r := run(t, "fig9a")
	if len(r.Lines) < 4 {
		t.Fatal("fig9a too short")
	}
}

func TestFig9cdRuns(t *testing.T) {
	r := run(t, "fig9cd")
	var lls []float64
	for _, line := range r.Lines {
		f := strings.Fields(line)
		if len(f) != 4 || f[0] == "iter" {
			continue
		}
		if ll, err := strconv.ParseFloat(f[1], 64); err == nil {
			lls = append(lls, ll)
		}
	}
	if len(lls) < 2 || lls[len(lls)-1] <= lls[0] {
		t.Fatalf("fig9cd did not converge: %v", lls)
	}
}
