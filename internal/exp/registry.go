package exp

import (
	"fmt"
	"sort"
)

// Runner executes one experiment.
type Runner func(Options) (*Report, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table2": Table2,
	"table3": Table3,
	"table4": Table4,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9a":  Fig9a,
	"fig9b":  Fig9b,
	"fig9cd": Fig9cd,
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, o Options) (*Report, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o)
}
