// Sampler state serialization. Every sampler implementation serializes
// its complete mutable state (assignments, proposals, derived caches,
// RNG streams) through the small binary codec below, so a training run
// checkpointed between two iterations resumes bit-identically to one
// that was never interrupted. The codec is deliberately dumb: fixed
// little-endian primitives with length prefixes, no compression, no
// reflection on hot paths beyond encoding/binary's slice fast paths.
//
// Robustness contract: decoders must validate everything they read
// (dimension prefixes, value ranges) and implementations must not
// commit any decoded state to the live sampler until the whole blob has
// been read and validated — a corrupt checkpoint must fail cleanly, not
// leave a half-restored sampler training on garbage. The Dec helpers
// support that style: decode into fresh buffers, check Err, then swap.
package sampler

import (
	"encoding/binary"
	"fmt"
	"io"

	"warplda/internal/rng"
)

// maxStateElems caps any single length prefix read by Dec. It exists so
// a corrupted prefix cannot trigger a multi-terabyte allocation before
// the checksum mismatch is noticed; 1<<31 entries is far above any
// corpus this in-memory implementation can hold anyway.
const maxStateElems = 1 << 31

// Enc writes binary sampler state. The first error sticks; check Err
// once at the end.
type Enc struct {
	w   io.Writer
	err error
}

// NewEnc returns an encoder writing to w.
func NewEnc(w io.Writer) *Enc { return &Enc{w: w} }

// Err returns the first error encountered, if any.
func (e *Enc) Err() error { return e.err }

func (e *Enc) write(v any) {
	if e.err == nil {
		e.err = binary.Write(e.w, binary.LittleEndian, v)
	}
}

// Tag writes a fixed marker string (an implementation's magic+version).
func (e *Enc) Tag(s string) {
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

// Int writes an int as int64.
func (e *Enc) Int(v int) { e.write(int64(v)) }

// U64 writes a uint64.
func (e *Enc) U64(v uint64) { e.write(v) }

// F64 writes a float64.
func (e *Enc) F64(v float64) { e.write(v) }

// Str writes a length-prefixed string.
func (e *Enc) Str(s string) {
	e.Int(len(s))
	e.Tag(s)
}

// I32s writes a length-prefixed []int32.
func (e *Enc) I32s(s []int32) {
	e.Int(len(s))
	e.write(s)
}

// RawI32s writes s with NO length prefix. It exists for encoders that
// emit an I32s-compatible section incrementally — write the total
// length with Int once, then stream the values in bounded chunks —
// so serializing a huge section never materializes it as one slice.
func (e *Enc) RawI32s(s []int32) { e.write(s) }

// F64s writes a length-prefixed []float64.
func (e *Enc) F64s(s []float64) {
	e.Int(len(s))
	e.write(s)
}

// F32s writes a length-prefixed []float32.
func (e *Enc) F32s(s []float32) {
	e.Int(len(s))
	e.write(s)
}

// I32Mat writes a length-prefixed slice of length-prefixed []int32 rows.
func (e *Enc) I32Mat(m [][]int32) {
	e.Int(len(m))
	for _, row := range m {
		e.I32s(row)
	}
}

// RNG writes the four state words of a generator.
func (e *Enc) RNG(r *rng.RNG) {
	s := r.State()
	for _, w := range s {
		e.U64(w)
	}
}

// Dec reads binary sampler state written by Enc. The first error
// sticks: all subsequent reads return zero values, so decode sequences
// can run to completion and check Err once.
type Dec struct {
	r   io.Reader
	err error
}

// NewDec returns a decoder reading from r.
func NewDec(r io.Reader) *Dec { return &Dec{r: r} }

// Err returns the first error encountered, if any.
func (d *Dec) Err() error { return d.err }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Failf lets decoders in sampler implementations record a validation
// error of their own (dimension or invariant mismatch); like read
// errors, the first one sticks and surfaces from Err.
func (d *Dec) Failf(format string, args ...any) { d.fail(format, args...) }

func (d *Dec) read(v any) {
	if d.err == nil {
		if err := binary.Read(d.r, binary.LittleEndian, v); err != nil {
			d.err = fmt.Errorf("sampler state: %w", err)
		}
	}
}

// Tag reads len(want) bytes and fails unless they equal want.
func (d *Dec) Tag(want string) {
	if d.err != nil {
		return
	}
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("sampler state: reading tag: %w", err)
		return
	}
	if string(buf) != want {
		d.err = fmt.Errorf("sampler state: tag %q, want %q (state saved by a different sampler or version)", buf, want)
	}
}

// Int reads an int64 as int.
func (d *Dec) Int() int {
	var v int64
	d.read(&v)
	return int(v)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	var v uint64
	d.read(&v)
	return v
}

// F64 reads a float64.
func (d *Dec) F64() float64 {
	var v float64
	d.read(&v)
	return v
}

// length reads and sanity-checks a slice length prefix.
func (d *Dec) length(what string) int {
	n := d.Int()
	if d.err == nil && (n < 0 || n > maxStateElems) {
		d.fail("sampler state: implausible %s length %d", what, n)
	}
	if d.err != nil {
		return 0
	}
	return n
}

// Str reads a length-prefixed string of at most max bytes.
func (d *Dec) Str(what string, max int) string {
	n := d.length(what)
	if d.err == nil && n > max {
		d.fail("sampler state: %s length %d exceeds %d", what, n, max)
	}
	if d.err != nil || n == 0 {
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("sampler state: reading %s: %w", what, err)
		return ""
	}
	return string(buf)
}

// I32s reads a length-prefixed []int32 of any length.
func (d *Dec) I32s(what string) []int32 {
	n := d.length(what)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int32, n)
	d.read(s)
	return s
}

// I32sLen reads a length-prefixed []int32 and fails unless its length
// is exactly want — the dimension check that catches a state blob saved
// under a different K, V, or corpus.
func (d *Dec) I32sLen(what string, want int) []int32 {
	n := d.length(what)
	if d.err == nil && n != want {
		d.fail("sampler state: %s has %d entries, want %d", what, n, want)
	}
	if d.err != nil {
		return nil
	}
	s := make([]int32, n)
	d.read(s)
	return s
}

// F64s reads a length-prefixed []float64.
func (d *Dec) F64s(what string) []float64 {
	n := d.length(what)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]float64, n)
	d.read(s)
	return s
}

// F64sLen reads a length-prefixed []float64 of exactly want entries —
// like I32sLen, the dimension check runs before the allocation.
func (d *Dec) F64sLen(what string, want int) []float64 {
	n := d.length(what)
	if d.err == nil && n != want {
		d.fail("sampler state: %s has %d entries, want %d", what, n, want)
	}
	if d.err != nil {
		return nil
	}
	s := make([]float64, n)
	d.read(s)
	return s
}

// F32sLen reads a length-prefixed []float32 of exactly want entries.
func (d *Dec) F32sLen(what string, want int) []float32 {
	n := d.length(what)
	if d.err == nil && n != want {
		d.fail("sampler state: %s has %d entries, want %d", what, n, want)
	}
	if d.err != nil {
		return nil
	}
	s := make([]float32, n)
	d.read(s)
	return s
}

// I32Mat reads a length-prefixed matrix written by Enc.I32Mat.
func (d *Dec) I32Mat(what string) [][]int32 {
	n := d.length(what)
	if d.err != nil {
		return nil
	}
	m := make([][]int32, n)
	for i := range m {
		m[i] = d.I32s(what)
		if d.err != nil {
			return nil
		}
	}
	return m
}

// RNGState reads four state words (to be committed with rng.SetState
// only after the whole blob validates).
func (d *Dec) RNGState() [4]uint64 {
	var s [4]uint64
	for i := range s {
		s[i] = d.U64()
	}
	return s
}

// CheckTopics fails unless every value of z lies in [0, k) — the guard
// every RestoreFrom runs over decoded assignments before committing.
func (d *Dec) CheckTopics(what string, z []int32, k int) {
	if d.err != nil {
		return
	}
	for i, t := range z {
		if t < 0 || int(t) >= k {
			d.fail("sampler state: %s[%d] = %d outside [0, %d)", what, i, t, k)
			return
		}
	}
}
