package sampler

import (
	"testing"
	"time"

	"warplda/internal/corpus"
)

// fakeSampler deterministically improves its assignment quality each
// iteration so trainer bookkeeping can be verified exactly.
type fakeSampler struct {
	c     *corpus.Corpus
	z     [][]int32
	iters int
}

func newFake(c *corpus.Corpus) *fakeSampler {
	z := make([][]int32, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([]int32, len(doc))
		for n := range doc {
			// Scattered start: each topic sees all words uniformly
			// ((n/2+d)%2 is independent of word identity n%4 across docs).
			z[d][n] = int32((n/2 + d) % 2)
		}
	}
	return &fakeSampler{c: c, z: z}
}

func (f *fakeSampler) Name() string { return "fake" }

func (f *fakeSampler) Iterate() {
	f.iters++
	// Move one more token position per iteration to the word-pure
	// clustering (topic = word parity): slow, monotone improvement.
	for d := range f.z {
		for n := range f.z[d] {
			if n < f.iters {
				f.z[d][n] = f.c.Docs[d][n] % 2
			}
		}
	}
}

func (f *fakeSampler) Assignments() [][]int32 { return f.z }

func fakeCorpus() *corpus.Corpus {
	c := &corpus.Corpus{V: 4, Docs: make([][]int32, 8)}
	for d := range c.Docs {
		doc := make([]int32, 30)
		for n := range doc {
			doc[n] = int32(n % 4)
		}
		c.Docs[d] = doc
	}
	return c
}

func TestValidate(t *testing.T) {
	good := PaperDefaults(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{K: 0, Alpha: 1, Beta: 1},
		{K: 5, Alpha: 0, Beta: 1},
		{K: 5, Alpha: 1, Beta: 0},
		{K: 5, Alpha: 1, Beta: 1, M: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	cfg := PaperDefaults(50)
	if cfg.Alpha != 1.0 || cfg.Beta != 0.01 || cfg.K != 50 {
		t.Fatalf("PaperDefaults(50) = %+v", cfg)
	}
	if cfg2 := PaperDefaults(1000); cfg2.Alpha != 0.05 {
		t.Fatalf("alpha for K=1000 = %g, want 50/K", cfg2.Alpha)
	}
}

func TestTrainRecordsPoints(t *testing.T) {
	c := fakeCorpus()
	cfg := PaperDefaults(2)
	run := Train(newFake(c), c, cfg, 7, 3)
	// Evaluations at iters 3, 6, 7.
	if len(run.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(run.Points))
	}
	wantIters := []int{3, 6, 7}
	for i, p := range run.Points {
		if p.Iter != wantIters[i] {
			t.Fatalf("point %d at iter %d, want %d", i, p.Iter, wantIters[i])
		}
		if p.LogLik >= 0 {
			t.Fatalf("logLik %g not negative", p.LogLik)
		}
		if i > 0 && p.Elapsed < run.Points[i-1].Elapsed {
			t.Fatal("elapsed time went backwards")
		}
	}
	if run.Sampler != "fake" {
		t.Fatalf("run.Sampler = %q", run.Sampler)
	}
}

func TestTrainEvalEveryDefaults(t *testing.T) {
	c := fakeCorpus()
	run := Train(newFake(c), c, PaperDefaults(2), 3, 0)
	if len(run.Points) != 3 {
		t.Fatalf("evalEvery=0 should evaluate every iteration, got %d points", len(run.Points))
	}
}

func TestReachHelpers(t *testing.T) {
	run := Run{Points: []Point{
		{Iter: 2, Elapsed: time.Second, LogLik: -100},
		{Iter: 4, Elapsed: 2 * time.Second, LogLik: -50},
		{Iter: 6, Elapsed: 3 * time.Second, LogLik: -20},
	}}
	if got := run.IterToReach(-60); got != 4 {
		t.Fatalf("IterToReach(-60) = %d, want 4", got)
	}
	if got := run.TimeToReach(-60); got != 2*time.Second {
		t.Fatalf("TimeToReach(-60) = %v", got)
	}
	if got := run.IterToReach(-1); got != -1 {
		t.Fatalf("unreachable level: %d", got)
	}
	if got := run.TimeToReach(-1); got != -1 {
		t.Fatalf("unreachable level time: %v", got)
	}
	if run.Final().Iter != 6 {
		t.Fatalf("Final() = %+v", run.Final())
	}
	if (Run{}).Final() != (Point{}) {
		t.Fatal("empty run Final not zero")
	}
}

func TestCopyAssignments(t *testing.T) {
	z := [][]int32{{1, 2}, {3}}
	cp := CopyAssignments(z)
	cp[0][0] = 99
	if z[0][0] != 1 {
		t.Fatal("copy aliases original")
	}
	if len(cp) != 2 || len(cp[1]) != 1 || cp[1][0] != 3 {
		t.Fatalf("bad copy %v", cp)
	}
}

func TestTrainImprovesOnFake(t *testing.T) {
	c := fakeCorpus()
	run := Train(newFake(c), c, PaperDefaults(2), 12, 4)
	first, last := run.Points[0].LogLik, run.Final().LogLik
	if last <= first {
		t.Fatalf("concentrating assignments did not raise LL: %g -> %g", first, last)
	}
}
