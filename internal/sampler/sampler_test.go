package sampler

import (
	"bytes"
	"io"
	"testing"
	"time"

	"warplda/internal/corpus"
)

// fakeSampler deterministically improves its assignment quality each
// iteration so trainer bookkeeping can be verified exactly.
type fakeSampler struct {
	c     *corpus.Corpus
	z     [][]int32
	iters int
}

func newFake(c *corpus.Corpus) *fakeSampler {
	z := make([][]int32, len(c.Docs))
	for d, doc := range c.Docs {
		z[d] = make([]int32, len(doc))
		for n := range doc {
			// Scattered start: each topic sees all words uniformly
			// ((n/2+d)%2 is independent of word identity n%4 across docs).
			z[d][n] = int32((n/2 + d) % 2)
		}
	}
	return &fakeSampler{c: c, z: z}
}

func (f *fakeSampler) Name() string { return "fake" }

func (f *fakeSampler) Iterate() {
	f.iters++
	// Move one more token position per iteration to the word-pure
	// clustering (topic = word parity): slow, monotone improvement.
	for d := range f.z {
		for n := range f.z[d] {
			if n < f.iters {
				f.z[d][n] = f.c.Docs[d][n] % 2
			}
		}
	}
}

func (f *fakeSampler) Assignments() [][]int32 { return f.z }

func (f *fakeSampler) StateTo(w io.Writer) error {
	e := NewEnc(w)
	e.Tag("fake\x01")
	e.Int(f.iters)
	e.I32Mat(f.z)
	return e.Err()
}

func (f *fakeSampler) RestoreFrom(r io.Reader) error {
	d := NewDec(r)
	d.Tag("fake\x01")
	iters := d.Int()
	z := d.I32Mat("z")
	if err := d.Err(); err != nil {
		return err
	}
	f.iters = iters
	f.z = z
	return nil
}

var _ Sampler = (*fakeSampler)(nil)

func fakeCorpus() *corpus.Corpus {
	c := &corpus.Corpus{V: 4, Docs: make([][]int32, 8)}
	for d := range c.Docs {
		doc := make([]int32, 30)
		for n := range doc {
			doc[n] = int32(n % 4)
		}
		c.Docs[d] = doc
	}
	return c
}

func TestValidate(t *testing.T) {
	good := PaperDefaults(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{K: 0, Alpha: 1, Beta: 1},
		{K: 5, Alpha: 0, Beta: 1},
		{K: 5, Alpha: 1, Beta: 0},
		{K: 5, Alpha: 1, Beta: 1, M: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	cfg := PaperDefaults(50)
	if cfg.Alpha != 1.0 || cfg.Beta != 0.01 || cfg.K != 50 {
		t.Fatalf("PaperDefaults(50) = %+v", cfg)
	}
	if cfg2 := PaperDefaults(1000); cfg2.Alpha != 0.05 {
		t.Fatalf("alpha for K=1000 = %g, want 50/K", cfg2.Alpha)
	}
}

func TestTrainRecordsPoints(t *testing.T) {
	c := fakeCorpus()
	cfg := PaperDefaults(2)
	run := Train(newFake(c), c, cfg, 7, 3)
	// Evaluations at iters 3, 6, 7.
	if len(run.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(run.Points))
	}
	wantIters := []int{3, 6, 7}
	for i, p := range run.Points {
		if p.Iter != wantIters[i] {
			t.Fatalf("point %d at iter %d, want %d", i, p.Iter, wantIters[i])
		}
		if p.LogLik >= 0 {
			t.Fatalf("logLik %g not negative", p.LogLik)
		}
		if i > 0 && p.Elapsed < run.Points[i-1].Elapsed {
			t.Fatal("elapsed time went backwards")
		}
	}
	if run.Sampler != "fake" {
		t.Fatalf("run.Sampler = %q", run.Sampler)
	}
}

func TestTrainEvalEveryDefaults(t *testing.T) {
	c := fakeCorpus()
	run := Train(newFake(c), c, PaperDefaults(2), 3, 0)
	if len(run.Points) != 3 {
		t.Fatalf("evalEvery=0 should evaluate every iteration, got %d points", len(run.Points))
	}
}

func TestReachHelpers(t *testing.T) {
	run := Run{Points: []Point{
		{Iter: 2, Elapsed: time.Second, LogLik: -100},
		{Iter: 4, Elapsed: 2 * time.Second, LogLik: -50},
		{Iter: 6, Elapsed: 3 * time.Second, LogLik: -20},
	}}
	if got := run.IterToReach(-60); got != 4 {
		t.Fatalf("IterToReach(-60) = %d, want 4", got)
	}
	if got := run.TimeToReach(-60); got != 2*time.Second {
		t.Fatalf("TimeToReach(-60) = %v", got)
	}
	if got := run.IterToReach(-1); got != -1 {
		t.Fatalf("unreachable level: %d", got)
	}
	if got := run.TimeToReach(-1); got != -1 {
		t.Fatalf("unreachable level time: %v", got)
	}
	if run.Final().Iter != 6 {
		t.Fatalf("Final() = %+v", run.Final())
	}
	if (Run{}).Final() != (Point{}) {
		t.Fatal("empty run Final not zero")
	}
}

func TestCopyAssignments(t *testing.T) {
	z := [][]int32{{1, 2}, {3}}
	cp := CopyAssignments(z)
	cp[0][0] = 99
	if z[0][0] != 1 {
		t.Fatal("copy aliases original")
	}
	if len(cp) != 2 || len(cp[1]) != 1 || cp[1][0] != 3 {
		t.Fatalf("bad copy %v", cp)
	}
}

func TestLoopResumeMatchesUninterrupted(t *testing.T) {
	c := fakeCorpus()
	cfg := PaperDefaults(2)

	full := Train(newFake(c), c, cfg, 10, 3)

	// Interrupted run: 5 iterations, snapshot, restore into a fresh
	// sampler, resume the loop for the remaining 5.
	half := NewLoop(newFake(c), c, cfg, 3)
	for half.Iter < 5 {
		half.Step()
		half.Eval(false)
	}
	var buf bytes.Buffer
	if err := half.Sampler.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := newFake(c)
	if err := fresh.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	resumed := NewLoop(fresh, c, cfg, 3)
	resumed.SetProgress(half.Iter, half.Elapsed, half.Trace)
	for resumed.Iter < 10 {
		resumed.Step()
		resumed.Eval(resumed.Iter == 10)
	}

	if len(resumed.Trace.Points) != len(full.Points) {
		t.Fatalf("resumed trace has %d points, want %d", len(resumed.Trace.Points), len(full.Points))
	}
	for i, p := range resumed.Trace.Points {
		if p.Iter != full.Points[i].Iter || p.LogLik != full.Points[i].LogLik {
			t.Fatalf("point %d: (iter %d, ll %v), want (iter %d, ll %v)",
				i, p.Iter, p.LogLik, full.Points[i].Iter, full.Points[i].LogLik)
		}
	}
}

func TestLoopEvalNeverDuplicates(t *testing.T) {
	c := fakeCorpus()
	l := NewLoop(newFake(c), c, PaperDefaults(2), 2)
	l.Step()
	l.Step()
	if _, ok := l.Eval(false); !ok {
		t.Fatal("eval due at iter 2 not recorded")
	}
	// Final flag on an already-evaluated iteration must not duplicate.
	if _, ok := l.Eval(true); ok {
		t.Fatal("iteration evaluated twice")
	}
	if len(l.Trace.Points) != 1 {
		t.Fatalf("trace has %d points, want 1", len(l.Trace.Points))
	}
}

func TestIntervalThroughputRecorded(t *testing.T) {
	c := fakeCorpus()
	run := Train(newFake(c), c, PaperDefaults(2), 6, 3)
	for i, p := range run.Points {
		if p.TokensSec <= 0 || p.IntervalTokensSec <= 0 {
			t.Fatalf("point %d: TokensSec %g IntervalTokensSec %g, want both > 0",
				i, p.TokensSec, p.IntervalTokensSec)
		}
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewEnc(&buf)
	e.Tag("test\x01")
	e.Int(42)
	e.U64(7)
	e.F64(3.5)
	e.I32s([]int32{1, 2, 3})
	e.F64s([]float64{0.5, -1})
	e.F32s([]float32{2.25})
	e.I32Mat([][]int32{{9}, nil, {8, 7}})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	d := NewDec(&buf)
	d.Tag("test\x01")
	if got := d.Int(); got != 42 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.U64(); got != 7 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Fatalf("F64 = %g", got)
	}
	if got := d.I32sLen("a", 3); len(got) != 3 || got[2] != 3 {
		t.Fatalf("I32sLen = %v", got)
	}
	if got := d.F64s("b"); len(got) != 2 || got[1] != -1 {
		t.Fatalf("F64s = %v", got)
	}
	if got := d.F32sLen("c", 1); len(got) != 1 || got[0] != 2.25 {
		t.Fatalf("F32sLen = %v", got)
	}
	if got := d.I32Mat("d"); len(got) != 3 || len(got[2]) != 2 || got[2][1] != 7 {
		t.Fatalf("I32Mat = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestStateCodecRejectsCorruption(t *testing.T) {
	encode := func() []byte {
		var buf bytes.Buffer
		e := NewEnc(&buf)
		e.Tag("test\x01")
		e.I32s([]int32{1, 2, 3})
		return buf.Bytes()
	}
	t.Run("wrong tag", func(t *testing.T) {
		d := NewDec(bytes.NewReader(encode()))
		d.Tag("oops\x01")
		if d.Err() == nil {
			t.Fatal("wrong tag accepted")
		}
	})
	t.Run("wrong length", func(t *testing.T) {
		d := NewDec(bytes.NewReader(encode()))
		d.Tag("test\x01")
		d.I32sLen("z", 4)
		if d.Err() == nil {
			t.Fatal("length mismatch accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		b := encode()
		d := NewDec(bytes.NewReader(b[:len(b)-2]))
		d.Tag("test\x01")
		d.I32sLen("z", 3)
		if d.Err() == nil {
			t.Fatal("truncated stream accepted")
		}
	})
	t.Run("topic range", func(t *testing.T) {
		d := NewDec(bytes.NewReader(encode()))
		d.Tag("test\x01")
		z := d.I32sLen("z", 3)
		d.CheckTopics("z", z, 3)
		if d.Err() == nil {
			t.Fatal("out-of-range topic accepted")
		}
	})
}

func TestTrainImprovesOnFake(t *testing.T) {
	c := fakeCorpus()
	run := Train(newFake(c), c, PaperDefaults(2), 12, 4)
	first, last := run.Points[0].LogLik, run.Final().LogLik
	if last <= first {
		t.Fatalf("concentrating assignments did not raise LL: %g -> %g", first, last)
	}
}
