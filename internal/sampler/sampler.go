// Package sampler defines the interface shared by every LDA inference
// algorithm in this repository and a trainer that runs iterations while
// recording the convergence metrics the paper's figures plot
// (log-likelihood per iteration, per wall-clock second, and token
// throughput).
package sampler

import (
	"fmt"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/eval"
)

// Config carries the hyper-parameters common to all samplers. The paper
// sets α = 50/K and β = 0.01 (Section 6.1).
type Config struct {
	K     int     // number of topics
	Alpha float64 // symmetric document-topic prior
	Beta  float64 // symmetric topic-word prior
	M     int     // MH steps per token (MH-based samplers; ignored otherwise)
	Seed  uint64
	// Threads is the number of worker goroutines for samplers that
	// support parallel phases (0 or 1 = serial).
	Threads int
	// AlphaVec, when non-nil, is an asymmetric document-topic prior of
	// length K, overriding Alpha. The paper's equations are written with
	// per-topic α_k; WarpLDA supports it natively (the smoothing part of
	// q_doc becomes an alias table over α instead of a uniform draw).
	AlphaVec []float64
}

// PaperDefaults returns the paper's hyper-parameter settings for k topics.
func PaperDefaults(k int) Config {
	return Config{K: k, Alpha: 50 / float64(k), Beta: 0.01, M: 1, Seed: 42}
}

// Validate reports configuration errors before a sampler is built.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("sampler: K = %d, want > 0", c.K)
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return fmt.Errorf("sampler: non-positive priors α=%g β=%g", c.Alpha, c.Beta)
	}
	if c.M < 0 {
		return fmt.Errorf("sampler: M = %d, want >= 0", c.M)
	}
	if c.AlphaVec != nil {
		if len(c.AlphaVec) != c.K {
			return fmt.Errorf("sampler: len(AlphaVec) = %d, want K = %d", len(c.AlphaVec), c.K)
		}
		for k, a := range c.AlphaVec {
			if a <= 0 {
				return fmt.Errorf("sampler: AlphaVec[%d] = %g, want > 0", k, a)
			}
		}
	}
	return nil
}

// Alphas returns the per-topic prior vector: AlphaVec when set, else the
// symmetric expansion of Alpha. The returned slice must not be mutated.
func (c Config) Alphas() []float64 {
	if c.AlphaVec != nil {
		return c.AlphaVec
	}
	v := make([]float64, c.K)
	for k := range v {
		v[k] = c.Alpha
	}
	return v
}

// AlphaBar returns Σ_k α_k.
func (c Config) AlphaBar() float64 {
	if c.AlphaVec == nil {
		return c.Alpha * float64(c.K)
	}
	var s float64
	for _, a := range c.AlphaVec {
		s += a
	}
	return s
}

// Sampler is one LDA inference algorithm bound to a corpus.
type Sampler interface {
	// Name identifies the algorithm (for reports).
	Name() string
	// Iterate performs one full pass over all tokens.
	Iterate()
	// Assignments returns the current topic of every token, shaped like
	// corpus.Docs. Implementations may return an internal buffer; callers
	// must not mutate it and must copy if they need it across Iterate calls.
	Assignments() [][]int32
}

// Point is one evaluation of a training run.
type Point struct {
	Iter      int
	Elapsed   time.Duration // cumulative sampling time, excluding evaluation
	LogLik    float64
	TokensSec float64 // mean throughput so far
}

// Run is the trace of a training run.
type Run struct {
	Sampler string
	Points  []Point
}

// Train runs iters iterations of s on c, evaluating the log joint
// likelihood every evalEvery iterations (and after the last). Evaluation
// time is excluded from Elapsed so convergence-by-time plots reflect
// sampling cost only, as in the paper.
func Train(s Sampler, c *corpus.Corpus, cfg Config, iters, evalEvery int) Run {
	if evalEvery <= 0 {
		evalEvery = 1
	}
	run := Run{Sampler: s.Name()}
	tokens := c.NumTokens()
	var elapsed time.Duration
	for it := 1; it <= iters; it++ {
		start := time.Now()
		s.Iterate()
		elapsed += time.Since(start)
		if it%evalEvery == 0 || it == iters {
			var ll float64
			if cfg.AlphaVec != nil {
				ll = eval.LogJointAsym(c, s.Assignments(), cfg.AlphaVec, cfg.Beta)
			} else {
				ll = eval.LogJoint(c, s.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			}
			tps := 0.0
			if sec := elapsed.Seconds(); sec > 0 {
				tps = float64(tokens*it) / sec
			}
			run.Points = append(run.Points, Point{Iter: it, Elapsed: elapsed, LogLik: ll, TokensSec: tps})
		}
	}
	return run
}

// Final returns the last recorded point of the run.
func (r Run) Final() Point {
	if len(r.Points) == 0 {
		return Point{}
	}
	return r.Points[len(r.Points)-1]
}

// IterToReach returns the first iteration whose log-likelihood is ≥ ll,
// or -1 if never reached. This backs the paper's "ratio of iteration"
// columns in Figure 5.
func (r Run) IterToReach(ll float64) int {
	for _, p := range r.Points {
		if p.LogLik >= ll {
			return p.Iter
		}
	}
	return -1
}

// TimeToReach returns the elapsed sampling time of the first point with
// log-likelihood ≥ ll, or -1 if never reached. Backs the "ratio of time"
// columns in Figure 5.
func (r Run) TimeToReach(ll float64) time.Duration {
	for _, p := range r.Points {
		if p.LogLik >= ll {
			return p.Elapsed
		}
	}
	return -1
}

// CopyAssignments deep-copies an assignment matrix (for tests that
// compare states across iterations).
func CopyAssignments(z [][]int32) [][]int32 {
	out := make([][]int32, len(z))
	for i, zi := range z {
		out[i] = append([]int32(nil), zi...)
	}
	return out
}
