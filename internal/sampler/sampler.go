// Package sampler defines the interface shared by every LDA inference
// algorithm in this repository and a trainer that runs iterations while
// recording the convergence metrics the paper's figures plot
// (log-likelihood per iteration, per wall-clock second, and token
// throughput).
package sampler

import (
	"fmt"
	"io"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/eval"
)

// Config carries the hyper-parameters common to all samplers. The paper
// sets α = 50/K and β = 0.01 (Section 6.1).
type Config struct {
	K     int     // number of topics
	Alpha float64 // symmetric document-topic prior
	Beta  float64 // symmetric topic-word prior
	M     int     // MH steps per token (MH-based samplers; ignored otherwise)
	Seed  uint64
	// Threads is the number of worker goroutines for samplers that
	// support parallel phases (0 or 1 = serial).
	Threads int
	// AlphaVec, when non-nil, is an asymmetric document-topic prior of
	// length K, overriding Alpha. The paper's equations are written with
	// per-topic α_k; WarpLDA supports it natively (the smoothing part of
	// q_doc becomes an alias table over α instead of a uniform draw).
	AlphaVec []float64
}

// PaperDefaults returns the paper's hyper-parameter settings for k topics.
func PaperDefaults(k int) Config {
	return Config{K: k, Alpha: 50 / float64(k), Beta: 0.01, M: 1, Seed: 42}
}

// Validate reports configuration errors before a sampler is built.
func (c Config) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("sampler: K = %d, want > 0", c.K)
	}
	if c.Alpha <= 0 || c.Beta <= 0 {
		return fmt.Errorf("sampler: non-positive priors α=%g β=%g", c.Alpha, c.Beta)
	}
	if c.M < 0 {
		return fmt.Errorf("sampler: M = %d, want >= 0", c.M)
	}
	if c.AlphaVec != nil {
		if len(c.AlphaVec) != c.K {
			return fmt.Errorf("sampler: len(AlphaVec) = %d, want K = %d", len(c.AlphaVec), c.K)
		}
		for k, a := range c.AlphaVec {
			if a <= 0 {
				return fmt.Errorf("sampler: AlphaVec[%d] = %g, want > 0", k, a)
			}
		}
	}
	return nil
}

// Alphas returns the per-topic prior vector: AlphaVec when set, else the
// symmetric expansion of Alpha. The returned slice must not be mutated.
func (c Config) Alphas() []float64 {
	if c.AlphaVec != nil {
		return c.AlphaVec
	}
	v := make([]float64, c.K)
	for k := range v {
		v[k] = c.Alpha
	}
	return v
}

// AlphaBar returns Σ_k α_k.
func (c Config) AlphaBar() float64 {
	if c.AlphaVec == nil {
		return c.Alpha * float64(c.K)
	}
	var s float64
	for _, a := range c.AlphaVec {
		s += a
	}
	return s
}

// Sampler is one LDA inference algorithm bound to a corpus.
type Sampler interface {
	// Name identifies the algorithm (for reports).
	Name() string
	// Iterate performs one full pass over all tokens.
	Iterate()
	// Assignments returns the current topic of every token, shaped like
	// corpus.Docs. Implementations may return an internal buffer; callers
	// must not mutate it and must copy if they need it across Iterate calls.
	Assignments() [][]int32
	// StateTo serializes the sampler's complete mutable state —
	// assignments, pending proposals, derived caches, RNG streams — so
	// that a sampler constructed over the same corpus and Config and
	// restored with RestoreFrom continues the run exactly where this one
	// stands. Must only be called between Iterate calls.
	StateTo(w io.Writer) error
	// RestoreFrom replaces the sampler's state with one written by
	// StateTo on a sampler of the same algorithm, corpus, and Config.
	// On error the sampler's prior state is left untouched (restores
	// validate fully before committing anything).
	RestoreFrom(r io.Reader) error
}

// Sharded is implemented by samplers whose mutable state is divided
// among workers — physically partitioned tokens in the distributed
// execution model, or per-worker row ranges of a shared token matrix
// in the threaded shared-memory sampler. It is what lets the
// checkpoint layer write one file per worker concurrently — instead
// of funnelling every shard through StateTo's single stream — and
// resume across topology changes (a different -threads).
//
// The shard streams written by ShardTo are a complete alternative
// encoding of the sampler's state: restoring all of them via
// RestoreShards is equivalent to RestoreFrom of a StateTo blob.
type Sharded interface {
	Sampler
	// NumShards returns the number of state shards (the worker count).
	NumShards() int
	// ShardTo serializes shard i's state (its tokens or rows plus the
	// owning worker's RNG stream). Like StateTo, it must only be called
	// between Iterate calls. Distinct shards may be written concurrently.
	ShardTo(i int, w io.Writer) error
	// RestoreShards replaces the sampler's state with the union of the
	// given shard streams, written by ShardTo on a sampler of the same
	// algorithm, corpus, and config over ANY worker count. When the
	// shard count equals NumShards, every worker adopts its saved RNG
	// stream and the restore is exact; otherwise the state is
	// repartitioned across the current topology and worker streams are
	// reseeded deterministically from (cfg.Seed, salt, worker) — see
	// rng.Derive — which the returned reseeded flag reports so callers
	// can surface the loss of bit-exactness. On error the sampler's
	// prior state is left untouched.
	RestoreShards(salt uint64, shards []io.Reader) (reseeded bool, err error)
}

// Point is one evaluation of a training run.
type Point struct {
	Iter    int
	Elapsed time.Duration // cumulative sampling time, excluding evaluation
	LogLik  float64
	// TokensSec is the mean throughput over the whole run so far
	// (tokens·iterations / total sampling time).
	TokensSec float64
	// IntervalTokensSec is the instantaneous throughput since the
	// previous evaluation point (or the run start). The cumulative mean
	// above hides late-run slowdowns; convergence-versus-time plots that
	// care about them should use this field.
	IntervalTokensSec float64
}

// Run is the trace of a training run.
type Run struct {
	Sampler string
	Points  []Point
}

// Loop is the resumable iterate/eval core shared by Train and the
// internal/train orchestrator: it times iterations (excluding
// evaluation cost, so convergence-by-time plots reflect sampling cost
// only, as in the paper), evaluates the log joint likelihood on
// schedule, and exposes its progress as plain fields a checkpoint can
// serialize and SetProgress can restore.
type Loop struct {
	Sampler   Sampler
	Corpus    corpus.Provider
	Cfg       Config
	EvalEvery int

	// Iter is the number of completed iterations; Elapsed the cumulative
	// sampling time; Trace the recorded evaluation points.
	Iter    int
	Elapsed time.Duration
	Trace   Run

	tokens          int
	lastEvalIter    int
	lastEvalElapsed time.Duration
}

// NewLoop builds a loop over s. evalEvery <= 0 means every iteration.
// c may be any corpus provider — in-memory or memory-mapped — and must
// be the one s was built over.
func NewLoop(s Sampler, c corpus.Provider, cfg Config, evalEvery int) *Loop {
	if evalEvery <= 0 {
		evalEvery = 1
	}
	return &Loop{
		Sampler:   s,
		Corpus:    c,
		Cfg:       cfg,
		EvalEvery: evalEvery,
		Trace:     Run{Sampler: s.Name()},
		tokens:    c.NumTokens(),
	}
}

// SetProgress primes the loop as if iter iterations had already run,
// taking elapsed sampling time and the recorded trace from a
// checkpoint. The evaluation schedule continues exactly as it would
// have in the uninterrupted run.
func (l *Loop) SetProgress(iter int, elapsed time.Duration, trace Run) {
	l.Iter = iter
	l.Elapsed = elapsed
	l.Trace = trace
	if l.Trace.Sampler == "" {
		l.Trace.Sampler = l.Sampler.Name()
	}
	l.lastEvalIter = 0
	l.lastEvalElapsed = 0
	if n := len(trace.Points); n > 0 {
		l.lastEvalIter = trace.Points[n-1].Iter
		l.lastEvalElapsed = trace.Points[n-1].Elapsed
	}
}

// Step runs one timed iteration.
func (l *Loop) Step() {
	start := time.Now()
	l.Sampler.Iterate()
	l.Elapsed += time.Since(start)
	l.Iter++
}

// Eval records an evaluation point if one is due after the current
// iteration — every EvalEvery iterations, plus (when final is true) the
// run's last iteration. It returns the point and whether one was
// recorded; an iteration already evaluated is never evaluated twice.
func (l *Loop) Eval(final bool) (Point, bool) {
	if l.Iter%l.EvalEvery != 0 && !final {
		return Point{}, false
	}
	if l.Iter == l.lastEvalIter {
		return Point{}, false
	}
	var ll float64
	if l.Cfg.AlphaVec != nil {
		ll = eval.LogJointAsym(l.Corpus, l.Sampler.Assignments(), l.Cfg.AlphaVec, l.Cfg.Beta)
	} else {
		ll = eval.LogJoint(l.Corpus, l.Sampler.Assignments(), l.Cfg.K, l.Cfg.Alpha, l.Cfg.Beta)
	}
	tps := 0.0
	if sec := l.Elapsed.Seconds(); sec > 0 {
		tps = float64(l.tokens*l.Iter) / sec
	}
	itps := 0.0
	if sec := (l.Elapsed - l.lastEvalElapsed).Seconds(); sec > 0 {
		itps = float64(l.tokens*(l.Iter-l.lastEvalIter)) / sec
	}
	p := Point{Iter: l.Iter, Elapsed: l.Elapsed, LogLik: ll, TokensSec: tps, IntervalTokensSec: itps}
	l.Trace.Points = append(l.Trace.Points, p)
	l.lastEvalIter = l.Iter
	l.lastEvalElapsed = l.Elapsed
	return p, true
}

// Train runs iters iterations of s on c, evaluating the log joint
// likelihood every evalEvery iterations (and after the last). It is a
// thin wrapper over Loop; checkpointed / budgeted / interruptible
// training lives in the internal/train orchestrator.
func Train(s Sampler, c corpus.Provider, cfg Config, iters, evalEvery int) Run {
	l := NewLoop(s, c, cfg, evalEvery)
	for l.Iter < iters {
		l.Step()
		l.Eval(l.Iter == iters)
	}
	return l.Trace
}

// Final returns the last recorded point of the run.
func (r Run) Final() Point {
	if len(r.Points) == 0 {
		return Point{}
	}
	return r.Points[len(r.Points)-1]
}

// IterToReach returns the first iteration whose log-likelihood is ≥ ll,
// or -1 if never reached. This backs the paper's "ratio of iteration"
// columns in Figure 5.
func (r Run) IterToReach(ll float64) int {
	for _, p := range r.Points {
		if p.LogLik >= ll {
			return p.Iter
		}
	}
	return -1
}

// TimeToReach returns the elapsed sampling time of the first point with
// log-likelihood ≥ ll, or -1 if never reached. Backs the "ratio of time"
// columns in Figure 5.
func (r Run) TimeToReach(ll float64) time.Duration {
	for _, p := range r.Points {
		if p.LogLik >= ll {
			return p.Elapsed
		}
	}
	return -1
}

// CopyAssignments deep-copies an assignment matrix (for tests that
// compare states across iterations).
func CopyAssignments(z [][]int32) [][]int32 {
	out := make([][]int32, len(z))
	for i, zi := range z {
		out[i] = append([]int32(nil), zi...)
	}
	return out
}
