// Per-worker shard serialization and elastic restore for Distributed.
//
// StateTo/RestoreFrom (distributed.go) funnel every worker's state
// through one stream and demand an identical worker count on resume.
// The methods here implement sampler.Sharded instead: each worker
// serializes its own token shard — so the checkpoint layer can write P
// files concurrently — and restore accepts ANY saved worker count,
// repartitioning the tokens across the current topology. Worker RNG
// streams survive bit-exactly when the count matches and are reseeded
// via the documented rng.Derive strategy when it does not.
package cluster

import (
	"fmt"
	"io"

	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// shardStateTag versions the per-shard stream layout written by ShardTo.
const shardStateTag = "dshd\x01"

// Compile-time check: Distributed supports sharded elastic checkpoints.
var _ sampler.Sharded = (*Distributed)(nil)

// NumShards implements sampler.Sharded: one shard per worker.
func (d *Distributed) NumShards() int { return d.p }

// ShardTo implements sampler.Sharded: worker i's token shard (cells and
// payloads as flat arrays, in shard order) plus its RNG stream. The
// stream deliberately carries the shard index and total worker count,
// so a shard file restored into the wrong slot — or mixed in from a
// checkpoint of a different topology — is rejected by RestoreShards
// even before the manifest-level checks run. Distinct shards may be
// written concurrently: ShardTo only reads worker i's state.
func (d *Distributed) ShardTo(i int, w io.Writer) error {
	if i < 0 || i >= d.p {
		return fmt.Errorf("cluster: shard %d of %d", i, d.p)
	}
	e := sampler.NewEnc(w)
	e.Tag(shardStateTag)
	e.Int(i)
	e.Int(d.p)
	e.Int(d.cfg.M)
	e.RNG(d.workers[i].r)
	shard := d.byCol[i]
	e.Int(len(shard))
	// The three flat sections (docs, words, payloads) are streamed in
	// bounded chunks rather than materialized: all P shards serialize
	// concurrently, so per-shard flat copies would cost a full extra
	// state-sized allocation exactly when checkpointing a state near
	// the memory ceiling.
	const chunk = 1 << 15
	buf := make([]int32, 0, chunk)
	flush := func() {
		if len(buf) > 0 {
			e.RawI32s(buf)
			buf = buf[:0]
		}
	}
	e.Int(len(shard)) // I32s-compatible length prefix of the docs section
	for _, t := range shard {
		if buf = append(buf, t.D); len(buf) == chunk {
			flush()
		}
	}
	flush()
	e.Int(len(shard))
	for _, t := range shard {
		if buf = append(buf, t.W); len(buf) == chunk {
			flush()
		}
	}
	flush()
	e.Int(len(shard) * (d.cfg.M + 1))
	for _, t := range shard {
		if len(buf)+len(t.Data) > chunk {
			flush()
		}
		buf = append(buf, t.Data...)
	}
	flush()
	return e.Err()
}

// RestoreShards implements sampler.Sharded. shards holds the saved
// per-worker streams in worker order; their count is the topology the
// checkpoint was written under and may differ from this sampler's.
// Tokens are validated (ranges, exact corpus multiset) and then
// repartitioned by the current column partition: with an unchanged
// worker count that reproduces the saved shards byte for byte (the
// greedy partition is deterministic in the corpus and worker count),
// with a changed count it is the rebalancing step. RNG streams are
// restored exactly when the count matches; otherwise every worker w
// reseeds from rng.Derive(cfg.Seed, salt, workers, w) and reseeded
// reports true so the caller can log the loss of bit-exactness. On any
// error the sampler's prior state is untouched.
func (d *Distributed) RestoreShards(salt uint64, shards []io.Reader) (reseeded bool, err error) {
	oldP := len(shards)
	if oldP < 1 {
		return false, fmt.Errorf("cluster: restore with %d shards", oldP)
	}
	stride := d.cfg.M + 1
	rngs := make([][4]uint64, oldP)
	all := make([][]Token, oldP)
	total := 0
	for i, r := range shards {
		dec := sampler.NewDec(r)
		dec.Tag(shardStateTag)
		idx := dec.Int()
		p := dec.Int()
		m := dec.Int()
		if dec.Err() == nil && idx != i {
			return false, fmt.Errorf("cluster: shard in position %d identifies as shard %d (foreign or reordered shard file)", i, idx)
		}
		if dec.Err() == nil && p != oldP {
			return false, fmt.Errorf("cluster: shard %d was written under %d workers, restore supplies %d shards", i, p, oldP)
		}
		if dec.Err() == nil && m != d.cfg.M {
			return false, fmt.Errorf("cluster: shard %d has M=%d, sampler has M=%d", i, m, d.cfg.M)
		}
		rngs[i] = dec.RNGState()
		n := dec.Int()
		if dec.Err() != nil {
			return false, dec.Err()
		}
		if n < 0 || total+n > d.c.NumTokens() {
			return false, fmt.Errorf("cluster: shard %d has implausible %d tokens", i, n)
		}
		total += n
		ds := dec.I32sLen("token docs", n)
		ws := dec.I32sLen("token words", n)
		payload := dec.I32sLen("token payloads", n*stride)
		dec.CheckTopics("token payloads", payload, d.cfg.K)
		if err := dec.Err(); err != nil {
			return false, err
		}
		toks := make([]Token, n)
		for j := 0; j < n; j++ {
			di, w := ds[j], ws[j]
			if di < 0 || int(di) >= d.c.NumDocs() || w < 0 || int(w) >= d.c.V {
				return false, fmt.Errorf("cluster: shard %d token at cell (%d,%d) outside corpus", i, di, w)
			}
			toks[j] = Token{D: di, W: w, Data: payload[j*stride : (j+1)*stride : (j+1)*stride]}
		}
		all[i] = toks
	}
	if total != d.c.NumTokens() {
		return false, fmt.Errorf("cluster: shards hold %d tokens, corpus has %d", total, d.c.NumTokens())
	}
	if err := d.validateTokenMultiset(all); err != nil {
		return false, err
	}

	// Rebalance: route every token to its owner under the CURRENT column
	// partition. Shard order is preserved within each new owner, so an
	// unchanged topology reproduces the saved shards exactly.
	byCol := make([][]Token, d.p)
	ck := make([]int32, d.cfg.K)
	for _, toks := range all {
		for _, t := range toks {
			owner := d.cols.Assign[t.W]
			byCol[owner] = append(byCol[owner], t)
			ck[t.Data[0]]++
		}
	}

	d.byCol = byCol
	copy(d.ck, ck)
	if oldP == d.p {
		for i, wk := range d.workers {
			wk.r.SetState(rngs[i])
		}
		return false, nil
	}
	for w, wk := range d.workers {
		wk.r = rng.Derive(d.cfg.Seed, salt, uint64(d.p), uint64(w))
	}
	return true, nil
}

// validateTokenMultiset checks that the tokens' (doc, word) multiset is
// exactly the corpus — per-cell range checks and the total alone would
// still accept a state that duplicates one cell's token and drops
// another's. Shared by RestoreFrom and RestoreShards.
func (d *Distributed) validateTokenMultiset(shards [][]Token) error {
	cells := make(map[int64]int32, d.c.NumTokens())
	for di, doc := range d.c.Docs {
		for _, w := range doc {
			cells[int64(di)<<32|int64(uint32(w))]++
		}
	}
	for _, shard := range shards {
		for _, t := range shard {
			key := int64(t.D)<<32 | int64(uint32(t.W))
			if cells[key] == 0 {
				return fmt.Errorf("cluster: state has extra token at cell (%d,%d)", t.D, t.W)
			}
			cells[key]--
		}
	}
	return nil
}
