// Per-worker shard serialization and elastic restore for Distributed.
//
// StateTo/RestoreFrom (distributed.go) funnel every worker's state
// through one stream and demand an identical worker count on resume.
// The methods here implement sampler.Sharded instead: each worker
// serializes its own token shard — so the checkpoint layer can write P
// files concurrently — and restore accepts ANY saved worker count,
// repartitioning the tokens across the current topology. Worker RNG
// streams survive bit-exactly when the count matches and are reseeded
// via the documented rng.Derive strategy when it does not.
//
// The stream itself is factored out as EncodeWorkerState and
// DecodeWorkerState so the live multi-process mode (internal/dist) can
// put the SAME bytes on the wire: a shard uploaded by a live worker is
// indistinguishable from one written by ShardTo, which is what lets the
// coordinator feed worker uploads straight into RestoreShards and the
// sharded checkpoint files straight back out to workers.
package cluster

import (
	"fmt"
	"io"

	"warplda/internal/rng"
	"warplda/internal/sampler"
)

// shardStateTag versions the per-shard stream layout written by ShardTo.
const shardStateTag = "dshd\x01"

// Compile-time check: Distributed supports sharded elastic checkpoints.
var _ sampler.Sharded = (*Distributed)(nil)

// NumShards implements sampler.Sharded: one shard per worker.
func (d *Distributed) NumShards() int { return d.p }

// WorkerState is one worker's complete mutable state in the sharded
// execution model: its position in the topology, its RNG stream, and
// the tokens it owns. It is the unit both of sharded checkpoints
// (ShardTo / RestoreShards) and of the live mode's shard transfer — the
// coordinator assigns a WorkerState to each joining worker and collects
// one back at every sync point.
type WorkerState struct {
	// Index is the shard's position; Workers the topology's worker count.
	// A shard restored into the wrong slot, or mixed in from a checkpoint
	// of a different topology, is rejected by these before any
	// manifest-level checks run.
	Index   int
	Workers int
	// M is the proposals-per-token count the payloads were written under.
	M int
	// RNGState is the owning worker's RNG stream.
	RNGState [4]uint64
	// Tokens is the shard body, in shard order.
	Tokens []Token
}

// EncodeWorkerState writes st as a dshd stream. The three flat sections
// (docs, words, payloads) are streamed in bounded chunks rather than
// materialized: all P shards serialize concurrently at checkpoint time,
// so per-shard flat copies would cost a full extra state-sized
// allocation exactly when checkpointing a state near the memory
// ceiling.
func EncodeWorkerState(w io.Writer, st *WorkerState) error {
	e := sampler.NewEnc(w)
	e.Tag(shardStateTag)
	e.Int(st.Index)
	e.Int(st.Workers)
	e.Int(st.M)
	for _, u := range st.RNGState {
		e.U64(u)
	}
	shard := st.Tokens
	e.Int(len(shard))
	const chunk = 1 << 15
	buf := make([]int32, 0, chunk)
	flush := func() {
		if len(buf) > 0 {
			e.RawI32s(buf)
			buf = buf[:0]
		}
	}
	e.Int(len(shard)) // I32s-compatible length prefix of the docs section
	for _, t := range shard {
		if buf = append(buf, t.D); len(buf) == chunk {
			flush()
		}
	}
	flush()
	e.Int(len(shard))
	for _, t := range shard {
		if buf = append(buf, t.W); len(buf) == chunk {
			flush()
		}
	}
	flush()
	e.Int(len(shard) * (st.M + 1))
	for _, t := range shard {
		if len(buf)+len(t.Data) > chunk {
			flush()
		}
		buf = append(buf, t.Data...)
	}
	flush()
	return e.Err()
}

// DecodeWorkerState reads one dshd stream and validates it structurally
// against the given corpus shape: M must match m, every payload topic
// must be in [0,k), every token cell must lie inside (numDocs, v), and
// the token count must not exceed maxTokens. Cross-shard invariants —
// index/topology agreement, the exact corpus token multiset — are the
// caller's job (RestoreShards, or the coordinator's sync point).
func DecodeWorkerState(r io.Reader, k, m, numDocs, v, maxTokens int) (*WorkerState, error) {
	dec := sampler.NewDec(r)
	dec.Tag(shardStateTag)
	st := &WorkerState{}
	st.Index = dec.Int()
	st.Workers = dec.Int()
	st.M = dec.Int()
	if dec.Err() == nil && st.M != m {
		return nil, fmt.Errorf("cluster: shard has M=%d, sampler has M=%d", st.M, m)
	}
	st.RNGState = dec.RNGState()
	n := dec.Int()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if n < 0 || n > maxTokens {
		return nil, fmt.Errorf("cluster: shard has implausible %d tokens", n)
	}
	stride := m + 1
	ds := dec.I32sLen("token docs", n)
	ws := dec.I32sLen("token words", n)
	payload := dec.I32sLen("token payloads", n*stride)
	dec.CheckTopics("token payloads", payload, k)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	toks := make([]Token, n)
	for j := 0; j < n; j++ {
		di, w := ds[j], ws[j]
		if di < 0 || int(di) >= numDocs || w < 0 || int(w) >= v {
			return nil, fmt.Errorf("cluster: shard token at cell (%d,%d) outside corpus", di, w)
		}
		toks[j] = Token{D: di, W: w, Data: payload[j*stride : (j+1)*stride : (j+1)*stride]}
	}
	st.Tokens = toks
	return st, nil
}

// ShardTo implements sampler.Sharded: worker i's token shard (cells and
// payloads as flat arrays, in shard order) plus its RNG stream. The
// stream deliberately carries the shard index and total worker count,
// so a shard file restored into the wrong slot — or mixed in from a
// checkpoint of a different topology — is rejected by RestoreShards
// even before the manifest-level checks run. Distinct shards may be
// written concurrently: ShardTo only reads worker i's state.
func (d *Distributed) ShardTo(i int, w io.Writer) error {
	if i < 0 || i >= d.p {
		return fmt.Errorf("cluster: shard %d of %d", i, d.p)
	}
	return EncodeWorkerState(w, &WorkerState{
		Index:    i,
		Workers:  d.p,
		M:        d.cfg.M,
		RNGState: d.workers[i].R.State(),
		Tokens:   d.byCol[i],
	})
}

// RestoreShards implements sampler.Sharded. shards holds the saved
// per-worker streams in worker order; their count is the topology the
// checkpoint was written under and may differ from this sampler's.
// Tokens are validated (ranges, exact corpus multiset) and then
// repartitioned by the current column partition: with an unchanged
// worker count that reproduces the saved shards byte for byte (the
// greedy partition is deterministic in the corpus and worker count),
// with a changed count it is the rebalancing step. RNG streams are
// restored exactly when the count matches; otherwise every worker w
// reseeds from rng.Derive(cfg.Seed, salt, workers, w) and reseeded
// reports true so the caller can log the loss of bit-exactness. On any
// error the sampler's prior state is untouched.
func (d *Distributed) RestoreShards(salt uint64, shards []io.Reader) (reseeded bool, err error) {
	oldP := len(shards)
	if oldP < 1 {
		return false, fmt.Errorf("cluster: restore with %d shards", oldP)
	}
	states := make([]*WorkerState, oldP)
	total := 0
	for i, r := range shards {
		st, err := DecodeWorkerState(r, d.cfg.K, d.cfg.M, d.c.NumDocs(), d.c.V, d.c.NumTokens()-total)
		if err != nil {
			return false, err
		}
		if st.Index != i {
			return false, fmt.Errorf("cluster: shard in position %d identifies as shard %d (foreign or reordered shard file)", i, st.Index)
		}
		if st.Workers != oldP {
			return false, fmt.Errorf("cluster: shard %d was written under %d workers, restore supplies %d shards", i, st.Workers, oldP)
		}
		total += len(st.Tokens)
		states[i] = st
	}
	if total != d.c.NumTokens() {
		return false, fmt.Errorf("cluster: shards hold %d tokens, corpus has %d", total, d.c.NumTokens())
	}
	all := make([][]Token, oldP)
	for i, st := range states {
		all[i] = st.Tokens
	}
	if err := d.validateTokenMultiset(all); err != nil {
		return false, err
	}

	// Rebalance: route every token to its owner under the CURRENT column
	// partition. Shard order is preserved within each new owner, so an
	// unchanged topology reproduces the saved shards exactly.
	byCol := make([][]Token, d.p)
	ck := make([]int32, d.cfg.K)
	for _, toks := range all {
		for _, t := range toks {
			owner := d.cols.Assign[t.W]
			byCol[owner] = append(byCol[owner], t)
			ck[t.Data[0]]++
		}
	}

	d.byCol = byCol
	copy(d.ck, ck)
	if oldP == d.p {
		for i, wk := range d.workers {
			wk.R.SetState(states[i].RNGState)
		}
		return false, nil
	}
	for w, wk := range d.workers {
		wk.R = rng.Derive(d.cfg.Seed, salt, uint64(d.p), uint64(w))
	}
	return true, nil
}

// validateTokenMultiset checks that the tokens' (doc, word) multiset is
// exactly the corpus — per-cell range checks and the total alone would
// still accept a state that duplicates one cell's token and drops
// another's. Shared by RestoreFrom and RestoreShards.
func (d *Distributed) validateTokenMultiset(shards [][]Token) error {
	cells := make(map[int64]int32, d.c.NumTokens())
	for di, doc := range d.c.Docs {
		for _, w := range doc {
			cells[int64(di)<<32|int64(uint32(w))]++
		}
	}
	for _, shard := range shards {
		for _, t := range shard {
			key := int64(t.D)<<32 | int64(uint32(t.W))
			if cells[key] == 0 {
				return fmt.Errorf("cluster: state has extra token at cell (%d,%d)", t.D, t.W)
			}
			cells[key]--
		}
	}
	return nil
}
