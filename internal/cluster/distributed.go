package cluster

import (
	"fmt"
	"io"
	"sync"

	"warplda/internal/alias"
	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sampler"
	"warplda/internal/sparse"
	"warplda/internal/tcount"
)

// Token is one token's record in the sharded representation: its cell in
// the D×V matrix plus the payload (assignment z followed by M proposals).
type Token struct {
	D, W int32
	Data []int32
}

// Distributed runs WarpLDA with *physically sharded* state, the actual
// execution model of Section 5.3: each of P workers owns a disjoint set
// of token entries; the word phase runs with entries partitioned by
// column owner, the doc phase with entries partitioned by row owner, and
// between unlike phases every off-diagonal block is shipped to its next
// owner over channels (the in-process MPI_Ialltoall). The only replicated
// state is the K-dim global count vector, allreduced once per iteration —
// exactly the paper's claim that nothing else is shared.
//
// Distributed and core.Warp implement the same algorithm; core.Warp is
// the optimized shared-memory path, Distributed the sharded path whose
// convergence the Figure 6 / 9 experiments rely on.
type Distributed struct {
	cfg  sampler.Config
	c    *corpus.Corpus
	p    int
	cols *sparse.Partition
	rows *sparse.Partition

	// byCol[i] holds worker i's tokens, grouped for the word phase.
	byCol [][]Token
	ck    []int32

	// blockTokens is the send-block granularity of the pipelined
	// exchange: Section 5.3.2 divides each partition into B×B blocks
	// (B ∈ [2,10]) so finished blocks ship while later ones compute.
	blockTokens int

	workers []*dworker
	asgBuf  [][]int32
}

type dworker struct {
	r       *rng.RNG
	counter tcount.Counter
	topics  []int32
	weights []float64
	tab     alias.SparseTable
	ckAcc   []int32
}

// NewDistributed builds the sharded sampler over p workers.
func NewDistributed(c *corpus.Corpus, cfg sampler.Config, p int) (*Distributed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("cluster: M = %d, want >= 1", cfg.M)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if p < 1 {
		return nil, fmt.Errorf("cluster: %d workers", p)
	}
	d := &Distributed{cfg: cfg, c: c, p: p, ck: make([]int32, cfg.K)}

	tf := c.TermFrequencies()
	d.cols = sparse.GreedyPartition(tf, p)
	dl := make([]int, c.NumDocs())
	for di, doc := range c.Docs {
		dl[di] = len(doc)
	}
	d.rows = sparse.GreedyPartition(dl, p)

	// Shard tokens by column owner with random initial assignments.
	r := rng.New(cfg.Seed)
	d.byCol = make([][]Token, p)
	for di, doc := range c.Docs {
		for _, w := range doc {
			z := int32(r.Intn(cfg.K))
			data := make([]int32, cfg.M+1)
			for j := range data {
				data[j] = z
			}
			d.ck[z]++
			owner := d.cols.Assign[w]
			d.byCol[owner] = append(d.byCol[owner], Token{D: int32(di), W: w, Data: data})
		}
	}

	// B = 5 blocks per partition side (the middle of the paper's [2,10]).
	const blocksPerSide = 5
	d.blockTokens = c.NumTokens()/(p*p*blocksPerSide) + 1

	d.workers = make([]*dworker, p)
	for i := range d.workers {
		wk := &dworker{r: r.Split(), ckAcc: make([]int32, cfg.K)}
		if cfg.K <= 1024 {
			wk.counter = tcount.NewDense(cfg.K)
		} else {
			wk.counter = tcount.NewHash(256)
		}
		d.workers[i] = wk
	}
	return d, nil
}

// Name implements sampler.Sampler. The name deliberately excludes the
// worker count: a checkpoint written at one topology must be
// recognizable as the same algorithm when resumed at another (elastic
// resume, shard.go). The count is observable via NumShards.
func (d *Distributed) Name() string { return "WarpLDA-sharded" }

// Iterate implements sampler.Sampler: a pipelined word phase streaming
// its finished blocks to the row owners, then a pipelined doc phase
// streaming back to the column owners, then the ck allreduce.
func (d *Distributed) Iterate() {
	// --- Word phase, overlapped with the col→row exchange ---
	byRow := d.phaseAndExchange(d.byCol, false,
		func(wk *dworker, group []Token) { d.wordGroup(wk, group) },
		func(t Token) int32 { return d.rows.Assign[t.D] })

	// --- Doc phase, overlapped with the row→col exchange ---
	for _, wk := range d.workers {
		clear(wk.ckAcc)
	}
	d.byCol = d.phaseAndExchange(byRow, true,
		func(wk *dworker, group []Token) { d.docGroup(wk, group) },
		func(t Token) int32 { return d.cols.Assign[t.W] })

	// --- Allreduce ck ---
	clear(d.ck)
	for _, wk := range d.workers {
		for k, v := range wk.ckAcc {
			d.ck[k] += v
		}
	}
}

// phaseAndExchange runs one phase with the Section 5.3.2 overlap: each
// worker processes its shard group by group and ships tokens to their
// next owner in blocks of blockTokens as soon as the block fills, while
// the remaining groups are still being computed. Receivers drain their
// channels concurrently; channels close when every sender is done.
func (d *Distributed) phaseAndExchange(shards [][]Token, byRow bool,
	process func(wk *dworker, group []Token), owner func(Token) int32) [][]Token {

	chans := make([]chan []Token, d.p)
	for i := range chans {
		chans[i] = make(chan []Token, 2*d.p)
	}

	var senders sync.WaitGroup
	for i, wk := range d.workers {
		senders.Add(1)
		go func(i int, wk *dworker) {
			defer senders.Done()
			groupSort(shards[i], byRow)
			buckets := make([][]Token, d.p)
			forGroups(shards[i], byRow, func(group []Token) {
				process(wk, group)
				// Route the finished group's tokens; full blocks ship now.
				for _, t := range group {
					o := owner(t)
					buckets[o] = append(buckets[o], t)
					if len(buckets[o]) >= d.blockTokens {
						chans[o] <- buckets[o]
						buckets[o] = nil
					}
				}
			})
			for o, b := range buckets {
				if len(b) > 0 {
					chans[o] <- b
				}
			}
		}(i, wk)
	}
	go func() {
		senders.Wait()
		for _, ch := range chans {
			close(ch)
		}
	}()

	out := make([][]Token, d.p)
	var receivers sync.WaitGroup
	for i := 0; i < d.p; i++ {
		receivers.Add(1)
		go func(i int) {
			defer receivers.Done()
			for b := range chans[i] {
				out[i] = append(out[i], b...)
			}
		}(i)
	}
	receivers.Wait()
	return out
}

// groupSort sorts tokens by doc (byRow) or word (byCol) with a simple
// in-place quicksort so same-key tokens are contiguous.
func groupSort(ts []Token, byRow bool) {
	key := func(t Token) int32 {
		if byRow {
			return t.D
		}
		return t.W
	}
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			pivot := key(ts[(lo+hi)/2])
			i, j := lo, hi
			for i <= j {
				for key(ts[i]) < pivot {
					i++
				}
				for key(ts[j]) > pivot {
					j--
				}
				if i <= j {
					ts[i], ts[j] = ts[j], ts[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
		for i := lo + 1; i <= hi; i++ {
			for j := i; j > lo && key(ts[j]) < key(ts[j-1]); j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
	}
	if len(ts) > 1 {
		qs(0, len(ts)-1)
	}
}

// forGroups calls fn on each maximal run of equal-key tokens.
func forGroups(ts []Token, byRow bool, fn func(group []Token)) {
	key := func(t Token) int32 {
		if byRow {
			return t.D
		}
		return t.W
	}
	for lo := 0; lo < len(ts); {
		hi := lo + 1
		for hi < len(ts) && key(ts[hi]) == key(ts[lo]) {
			hi++
		}
		fn(ts[lo:hi])
		lo = hi
	}
}

// wordGroup is the word-phase body for one word's tokens: finish the
// doc-proposal chains (π^doc), rebuild c_w, draw M word proposals.
func (d *Distributed) wordGroup(wk *dworker, group []Token) {
	k := d.cfg.K
	beta := d.cfg.Beta
	betaBar := beta * float64(d.c.V)
	lw := len(group)
	cw := wk.counter
	resetCounter(cw, k, lw)
	for _, t := range group {
		cw.Incr(t.Data[0])
	}
	for _, t := range group {
		s := t.Data[0]
		for j := 1; j < len(t.Data); j++ {
			prop := t.Data[j]
			if prop == s {
				continue
			}
			pi := (float64(cw.Get(prop)) + beta) / (float64(cw.Get(s)) + beta) *
				(float64(d.ck[s]) + betaBar) / (float64(d.ck[prop]) + betaBar)
			if pi >= 1 || wk.r.Float64() < pi {
				s = prop
			}
		}
		t.Data[0] = s
	}
	resetCounter(cw, k, lw)
	for _, t := range group {
		cw.Incr(t.Data[0])
	}
	wk.topics = wk.topics[:0]
	wk.weights = wk.weights[:0]
	cw.NonZero(func(kk, c int32) {
		wk.topics = append(wk.topics, kk)
		wk.weights = append(wk.weights, float64(c))
	})
	wk.tab.Build(wk.topics, wk.weights)
	pCount := float64(lw) / (float64(lw) + float64(k)*beta)
	for _, t := range group {
		for j := 1; j < len(t.Data); j++ {
			if wk.r.Float64() < pCount {
				t.Data[j] = wk.tab.Draw(wk.r)
			} else {
				t.Data[j] = int32(wk.r.Intn(k))
			}
		}
	}
}

// docGroup is the doc-phase body for one document's tokens: finish the
// word-proposal chains (π^word), draw M doc proposals by positioning,
// accumulate ck.
func (d *Distributed) docGroup(wk *dworker, group []Token) {
	k := d.cfg.K
	alpha := d.cfg.Alpha
	betaBar := d.cfg.Beta * float64(d.c.V)
	ld := len(group)
	cd := wk.counter
	resetCounter(cd, k, ld)
	for _, t := range group {
		cd.Incr(t.Data[0])
	}
	for _, t := range group {
		s := t.Data[0]
		for j := 1; j < len(t.Data); j++ {
			prop := t.Data[j]
			if prop == s {
				continue
			}
			pi := (float64(cd.Get(prop)) + alpha) / (float64(cd.Get(s)) + alpha) *
				(float64(d.ck[s]) + betaBar) / (float64(d.ck[prop]) + betaBar)
			if pi >= 1 || wk.r.Float64() < pi {
				s = prop
			}
		}
		t.Data[0] = s
	}
	pCount := float64(ld) / (float64(ld) + alpha*float64(k))
	for _, t := range group {
		for j := 1; j < len(t.Data); j++ {
			if wk.r.Float64() < pCount {
				t.Data[j] = group[wk.r.Intn(ld)].Data[0]
			} else {
				t.Data[j] = int32(wk.r.Intn(k))
			}
		}
		wk.ckAcc[t.Data[0]]++
	}
}

func resetCounter(c tcount.Counter, k, l int) {
	if h, ok := c.(*tcount.Hash); ok {
		h.ResetFor(k, l)
		return
	}
	c.Reset()
}

// GlobalCounts returns a copy of the replicated ck vector.
func (d *Distributed) GlobalCounts() []int32 { return append([]int32(nil), d.ck...) }

const distStateTag = "dist\x01"

// StateTo implements sampler.Sampler: each worker's token shard (cells
// plus payloads, in shard order), the replicated global counts, and the
// per-worker RNG streams. With one worker a restored sampler resumes
// bit-identically; with several, the channel-interleaved block exchange
// makes even an uninterrupted run's token ordering nondeterministic, so
// resume is exact in distribution but not in bits — same as two
// back-to-back runs of the live sampler.
func (d *Distributed) StateTo(out io.Writer) error {
	e := sampler.NewEnc(out)
	e.Tag(distStateTag)
	e.Int(d.p)
	e.Int(d.cfg.M)
	e.I32s(d.ck)
	for _, wk := range d.workers {
		e.RNG(wk.r)
	}
	// Each shard as three flat arrays (cells then payloads) rather than
	// per-token slices: at millions of tokens, per-token framing would
	// dominate both the allocation count and the file size.
	var ds, ws, payload []int32
	for _, shard := range d.byCol {
		e.Int(len(shard))
		ds, ws, payload = ds[:0], ws[:0], payload[:0]
		for _, t := range shard {
			ds = append(ds, t.D)
			ws = append(ws, t.W)
			payload = append(payload, t.Data...)
		}
		e.I32s(ds)
		e.I32s(ws)
		e.I32s(payload)
	}
	return e.Err()
}

// RestoreFrom implements sampler.Sampler. The state must come from a
// Distributed sampler with the same corpus, Config, and worker count.
func (d *Distributed) RestoreFrom(in io.Reader) error {
	dec := sampler.NewDec(in)
	dec.Tag(distStateTag)
	p := dec.Int()
	m := dec.Int()
	if dec.Err() == nil && p != d.p {
		return fmt.Errorf("cluster: state has %d workers, sampler has %d", p, d.p)
	}
	if dec.Err() == nil && m != d.cfg.M {
		return fmt.Errorf("cluster: state has M=%d, sampler has M=%d", m, d.cfg.M)
	}
	ck := dec.I32sLen("global counts", d.cfg.K)
	rngs := make([][4]uint64, d.p)
	for i := range rngs {
		rngs[i] = dec.RNGState()
	}
	byCol := make([][]Token, d.p)
	total := 0
	stride := d.cfg.M + 1
	for i := 0; i < d.p && dec.Err() == nil; i++ {
		n := dec.Int()
		if dec.Err() != nil {
			break
		}
		if n < 0 || total+n > d.c.NumTokens() {
			return fmt.Errorf("cluster: state shard %d has implausible %d tokens", i, n)
		}
		total += n
		ds := dec.I32sLen("token docs", n)
		ws := dec.I32sLen("token words", n)
		payload := dec.I32sLen("token payloads", n*stride)
		dec.CheckTopics("token payloads", payload, d.cfg.K)
		if dec.Err() != nil {
			break
		}
		shard := make([]Token, n)
		for j := 0; j < n; j++ {
			di, w := ds[j], ws[j]
			if di < 0 || int(di) >= d.c.NumDocs() || w < 0 || int(w) >= d.c.V {
				return fmt.Errorf("cluster: state token at cell (%d,%d) outside corpus", di, w)
			}
			if d.cols.Assign[w] != int32(i) {
				return fmt.Errorf("cluster: state token of word %d in shard %d, owner is %d", w, i, d.cols.Assign[w])
			}
			shard[j] = Token{D: di, W: w, Data: payload[j*stride : (j+1)*stride : (j+1)*stride]}
		}
		byCol[i] = shard
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if total != d.c.NumTokens() {
		return fmt.Errorf("cluster: state has %d tokens, corpus has %d", total, d.c.NumTokens())
	}
	// The state's (doc, word) multiset must be exactly the corpus —
	// per-cell in-range checks and the total alone would still accept a
	// blob that duplicates one cell's token and drops another's.
	if err := d.validateTokenMultiset(byCol); err != nil {
		return err
	}
	// ck must match the assignment histogram.
	count := make([]int32, d.cfg.K)
	for _, shard := range byCol {
		for _, t := range shard {
			count[t.Data[0]]++
		}
	}
	for k := range count {
		if count[k] != ck[k] {
			return fmt.Errorf("cluster: state global counts disagree with assignments at topic %d", k)
		}
	}
	d.byCol = byCol
	copy(d.ck, ck)
	for i, wk := range d.workers {
		wk.r.SetState(rngs[i])
	}
	return nil
}

// Assignments implements sampler.Sampler. Tokens are scrambled across
// shards, so assignments are regrouped per (doc, word) cell; within a
// cell topics are interchangeable, which keeps the log joint likelihood
// well defined.
func (d *Distributed) Assignments() [][]int32 {
	if d.asgBuf == nil {
		d.asgBuf = make([][]int32, len(d.c.Docs))
		for di, doc := range d.c.Docs {
			d.asgBuf[di] = make([]int32, len(doc))
		}
	}
	// Collect topics per (doc, word) cell.
	cell := make(map[int64][]int32)
	for _, shard := range d.byCol {
		for _, t := range shard {
			key := int64(t.D)<<32 | int64(uint32(t.W))
			cell[key] = append(cell[key], t.Data[0])
		}
	}
	for di, doc := range d.c.Docs {
		out := d.asgBuf[di]
		for n, w := range doc {
			key := int64(di)<<32 | int64(uint32(w))
			list := cell[key]
			out[n] = list[len(list)-1]
			cell[key] = list[:len(list)-1]
		}
	}
	return d.asgBuf
}
