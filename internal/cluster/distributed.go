package cluster

import (
	"fmt"
	"io"
	"sync"

	"warplda/internal/corpus"
	"warplda/internal/rng"
	"warplda/internal/sampler"
	"warplda/internal/sparse"
	"warplda/internal/tcount"
)

// Token is one token's record in the sharded representation: its cell in
// the D×V matrix plus the payload (assignment z followed by M proposals).
type Token struct {
	D, W int32
	Data []int32
}

// Distributed runs WarpLDA with *physically sharded* state, the actual
// execution model of Section 5.3: each of P workers owns a disjoint set
// of token entries; the word phase runs with entries partitioned by
// column owner, the doc phase with entries partitioned by row owner, and
// between unlike phases every off-diagonal block is shipped to its next
// owner over channels (the in-process MPI_Ialltoall). The only replicated
// state is the K-dim global count vector, allreduced once per iteration —
// exactly the paper's claim that nothing else is shared.
//
// Distributed and core.Warp implement the same algorithm; core.Warp is
// the optimized shared-memory path, Distributed the sharded path whose
// convergence the Figure 6 / 9 experiments rely on. The phase bodies
// themselves live in phase.go and are shared with the live multi-process
// mode (internal/dist), which replaces the channels with TCP.
type Distributed struct {
	cfg  sampler.Config
	c    *corpus.Corpus
	p    int
	cols *sparse.Partition
	rows *sparse.Partition

	// byCol[i] holds worker i's tokens, grouped for the word phase.
	byCol [][]Token
	ck    []int32

	// rowTokens/colTokens are the exact token counts each worker owns in
	// the doc and word phase respectively — known from the partition, and
	// used to pre-size the receive buffers of the block exchange.
	rowTokens []int64
	colTokens []int64

	// blockTokens is the send-block granularity of the pipelined
	// exchange: Section 5.3.2 divides each partition into B×B blocks
	// (B ∈ [2,10]) so finished blocks ship while later ones compute.
	blockTokens int

	workers []*PhaseWorker

	// Assignments regroup scratch, built lazily on first call and reused
	// by every later one (the eval loop calls Assignments every reporting
	// interval; rebuilding a tokens-sized map each time dominated eval).
	asgBuf   [][]int32
	docOff   []int     // cumulative doc offsets into the flat gather buffers
	docOrder [][]int32 // per doc, token positions ordered by word id
	gw, gz   []int32   // per-call (word, topic) gather buffers, len NumTokens
	fill     []int32   // per-doc gather fill counters
}

// NewDistributed builds the sharded sampler over p workers.
func NewDistributed(c *corpus.Corpus, cfg sampler.Config, p int) (*Distributed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("cluster: M = %d, want >= 1", cfg.M)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if p < 1 {
		return nil, fmt.Errorf("cluster: %d workers", p)
	}
	d := &Distributed{cfg: cfg, c: c, p: p, ck: make([]int32, cfg.K)}

	tf := c.TermFrequencies()
	d.cols = sparse.GreedyPartition(tf, p)
	dl := make([]int, c.NumDocs())
	for di, doc := range c.Docs {
		dl[di] = len(doc)
	}
	d.rows = sparse.GreedyPartition(dl, p)
	d.rowTokens = d.rows.Loads(dl)
	d.colTokens = d.cols.Loads(tf)

	// Shard tokens by column owner with random initial assignments.
	r := rng.New(cfg.Seed)
	d.byCol = make([][]Token, p)
	for i := range d.byCol {
		d.byCol[i] = make([]Token, 0, d.colTokens[i])
	}
	for di, doc := range c.Docs {
		for _, w := range doc {
			z := int32(r.Intn(cfg.K))
			data := make([]int32, cfg.M+1)
			for j := range data {
				data[j] = z
			}
			d.ck[z]++
			owner := d.cols.Assign[w]
			d.byCol[owner] = append(d.byCol[owner], Token{D: int32(di), W: w, Data: data})
		}
	}

	// B = 5 blocks per partition side (the middle of the paper's [2,10]).
	d.blockTokens = BlockTokens(c.NumTokens(), p)

	d.workers = make([]*PhaseWorker, p)
	for i := range d.workers {
		d.workers[i] = NewPhaseWorker(cfg.K, r.Split())
	}
	return d, nil
}

// BlockTokens returns the send-block granularity of the pipelined
// exchange for a corpus of the given token count over p workers: the
// per-block token count that divides each partition side into the
// paper's B=5 blocks (the middle of Section 5.3.2's [2,10] range). The
// live coordinator ships this value to its workers so both execution
// modes block identically.
func BlockTokens(numTokens, p int) int {
	const blocksPerSide = 5
	return numTokens/(p*p*blocksPerSide) + 1
}

// Name implements sampler.Sampler. The name deliberately excludes the
// worker count: a checkpoint written at one topology must be
// recognizable as the same algorithm when resumed at another (elastic
// resume, shard.go). The count is observable via NumShards.
func (d *Distributed) Name() string { return "WarpLDA-sharded" }

// Partitions returns the row (document) and column (word) owner maps of
// the current topology. The live coordinator ships them to its workers,
// which route finished tokens by the same owner lookup the in-process
// exchange uses. The returned slices are the sampler's own and must not
// be mutated.
func (d *Distributed) Partitions() (rows, cols []int32) {
	return d.rows.Assign, d.cols.Assign
}

// Iterate implements sampler.Sampler: a pipelined word phase streaming
// its finished blocks to the row owners, then a pipelined doc phase
// streaming back to the column owners, then the ck allreduce.
func (d *Distributed) Iterate() {
	env := &PhaseEnv{Cfg: d.cfg, V: d.c.V, CK: d.ck}

	// --- Word phase, overlapped with the col→row exchange ---
	byRow := d.phaseAndExchange(d.byCol, false, d.rowTokens,
		func(wk *PhaseWorker, group []Token) { env.WordGroup(wk, group) },
		func(t Token) int32 { return d.rows.Assign[t.D] })

	// --- Doc phase, overlapped with the row→col exchange ---
	for _, wk := range d.workers {
		clear(wk.CkAcc)
	}
	d.byCol = d.phaseAndExchange(byRow, true, d.colTokens,
		func(wk *PhaseWorker, group []Token) { env.DocGroup(wk, group) },
		func(t Token) int32 { return d.cols.Assign[t.W] })

	// --- Allreduce ck ---
	clear(d.ck)
	for _, wk := range d.workers {
		for k, v := range wk.CkAcc {
			d.ck[k] += v
		}
	}
}

// phaseAndExchange runs one phase with the Section 5.3.2 overlap: each
// worker processes its shard group by group and ships tokens to their
// next owner in blocks of blockTokens as soon as the block fills, while
// the remaining groups are still being computed. Receivers drain their
// channels concurrently into buffers pre-sized from the destination
// partition's known token counts; channels close when every sender is
// done.
func (d *Distributed) phaseAndExchange(shards [][]Token, byRow bool, recvTokens []int64,
	process func(wk *PhaseWorker, group []Token), owner func(Token) int32) [][]Token {

	chans := make([]chan []Token, d.p)
	for i := range chans {
		chans[i] = make(chan []Token, 2*d.p)
	}

	var senders sync.WaitGroup
	for i, wk := range d.workers {
		senders.Add(1)
		go func(i int, wk *PhaseWorker) {
			defer senders.Done()
			GroupSort(shards[i], byRow)
			buckets := make([][]Token, d.p)
			ForGroups(shards[i], byRow, func(group []Token) {
				process(wk, group)
				// Route the finished group's tokens; full blocks ship now.
				for _, t := range group {
					o := owner(t)
					buckets[o] = append(buckets[o], t)
					if len(buckets[o]) >= d.blockTokens {
						chans[o] <- buckets[o]
						buckets[o] = nil
					}
				}
			})
			for o, b := range buckets {
				if len(b) > 0 {
					chans[o] <- b
				}
			}
		}(i, wk)
	}
	go func() {
		senders.Wait()
		for _, ch := range chans {
			close(ch)
		}
	}()

	out := make([][]Token, d.p)
	var receivers sync.WaitGroup
	for i := 0; i < d.p; i++ {
		receivers.Add(1)
		go func(i int) {
			defer receivers.Done()
			out[i] = make([]Token, 0, recvTokens[i])
			for b := range chans[i] {
				out[i] = append(out[i], b...)
			}
		}(i)
	}
	receivers.Wait()
	return out
}

func resetCounter(c tcount.Counter, k, l int) {
	if h, ok := c.(*tcount.Hash); ok {
		h.ResetFor(k, l)
		return
	}
	c.Reset()
}

// GlobalCounts returns a copy of the replicated ck vector.
func (d *Distributed) GlobalCounts() []int32 { return append([]int32(nil), d.ck...) }

const distStateTag = "dist\x01"

// StateTo implements sampler.Sampler: each worker's token shard (cells
// plus payloads, in shard order), the replicated global counts, and the
// per-worker RNG streams. With one worker a restored sampler resumes
// bit-identically; with several, the channel-interleaved block exchange
// makes even an uninterrupted run's token ordering nondeterministic, so
// resume is exact in distribution but not in bits — same as two
// back-to-back runs of the live sampler.
func (d *Distributed) StateTo(out io.Writer) error {
	e := sampler.NewEnc(out)
	e.Tag(distStateTag)
	e.Int(d.p)
	e.Int(d.cfg.M)
	e.I32s(d.ck)
	for _, wk := range d.workers {
		e.RNG(wk.R)
	}
	// Each shard as three flat arrays (cells then payloads) rather than
	// per-token slices: at millions of tokens, per-token framing would
	// dominate both the allocation count and the file size.
	var ds, ws, payload []int32
	for _, shard := range d.byCol {
		e.Int(len(shard))
		ds, ws, payload = ds[:0], ws[:0], payload[:0]
		for _, t := range shard {
			ds = append(ds, t.D)
			ws = append(ws, t.W)
			payload = append(payload, t.Data...)
		}
		e.I32s(ds)
		e.I32s(ws)
		e.I32s(payload)
	}
	return e.Err()
}

// RestoreFrom implements sampler.Sampler. The state must come from a
// Distributed sampler with the same corpus, Config, and worker count.
func (d *Distributed) RestoreFrom(in io.Reader) error {
	dec := sampler.NewDec(in)
	dec.Tag(distStateTag)
	p := dec.Int()
	m := dec.Int()
	if dec.Err() == nil && p != d.p {
		return fmt.Errorf("cluster: state has %d workers, sampler has %d", p, d.p)
	}
	if dec.Err() == nil && m != d.cfg.M {
		return fmt.Errorf("cluster: state has M=%d, sampler has M=%d", m, d.cfg.M)
	}
	ck := dec.I32sLen("global counts", d.cfg.K)
	rngs := make([][4]uint64, d.p)
	for i := range rngs {
		rngs[i] = dec.RNGState()
	}
	byCol := make([][]Token, d.p)
	total := 0
	stride := d.cfg.M + 1
	for i := 0; i < d.p && dec.Err() == nil; i++ {
		n := dec.Int()
		if dec.Err() != nil {
			break
		}
		if n < 0 || total+n > d.c.NumTokens() {
			return fmt.Errorf("cluster: state shard %d has implausible %d tokens", i, n)
		}
		total += n
		ds := dec.I32sLen("token docs", n)
		ws := dec.I32sLen("token words", n)
		payload := dec.I32sLen("token payloads", n*stride)
		dec.CheckTopics("token payloads", payload, d.cfg.K)
		if dec.Err() != nil {
			break
		}
		shard := make([]Token, n)
		for j := 0; j < n; j++ {
			di, w := ds[j], ws[j]
			if di < 0 || int(di) >= d.c.NumDocs() || w < 0 || int(w) >= d.c.V {
				return fmt.Errorf("cluster: state token at cell (%d,%d) outside corpus", di, w)
			}
			if d.cols.Assign[w] != int32(i) {
				return fmt.Errorf("cluster: state token of word %d in shard %d, owner is %d", w, i, d.cols.Assign[w])
			}
			shard[j] = Token{D: di, W: w, Data: payload[j*stride : (j+1)*stride : (j+1)*stride]}
		}
		byCol[i] = shard
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if total != d.c.NumTokens() {
		return fmt.Errorf("cluster: state has %d tokens, corpus has %d", total, d.c.NumTokens())
	}
	// The state's (doc, word) multiset must be exactly the corpus —
	// per-cell in-range checks and the total alone would still accept a
	// blob that duplicates one cell's token and drops another's.
	if err := d.validateTokenMultiset(byCol); err != nil {
		return err
	}
	// ck must match the assignment histogram.
	count := make([]int32, d.cfg.K)
	for _, shard := range byCol {
		for _, t := range shard {
			count[t.Data[0]]++
		}
	}
	for k := range count {
		if count[k] != ck[k] {
			return fmt.Errorf("cluster: state global counts disagree with assignments at topic %d", k)
		}
	}
	d.byCol = byCol
	copy(d.ck, ck)
	for i, wk := range d.workers {
		wk.R.SetState(rngs[i])
	}
	return nil
}

// initAssignmentScratch builds the regroup scratch Assignments reuses
// across calls: the output buffer, the flat per-doc gather windows, and
// each document's token order sorted by word id (fixed by the corpus,
// so computed exactly once).
func (d *Distributed) initAssignmentScratch() {
	nd := len(d.c.Docs)
	d.asgBuf = make([][]int32, nd)
	d.docOrder = make([][]int32, nd)
	d.docOff = make([]int, nd+1)
	d.fill = make([]int32, nd)
	for di, doc := range d.c.Docs {
		d.asgBuf[di] = make([]int32, len(doc))
		d.docOff[di+1] = d.docOff[di] + len(doc)
		order := make([]int32, len(doc))
		words := append([]int32(nil), doc...)
		for n := range order {
			order[n] = int32(n)
		}
		sortByWord(words, order)
		d.docOrder[di] = order
	}
	total := d.docOff[nd]
	d.gw = make([]int32, total)
	d.gz = make([]int32, total)
}

// Assignments implements sampler.Sampler. Tokens are scrambled across
// shards, so assignments are regrouped per (doc, word) cell; within a
// cell topics are interchangeable, which keeps the log joint likelihood
// well defined. The regroup is a gather into flat per-doc windows plus
// a by-word sort against each document's precomputed word order — all
// scratch is allocated once and reused, so the eval loop's periodic
// calls cost no steady-state allocation.
func (d *Distributed) Assignments() [][]int32 {
	if d.asgBuf == nil {
		d.initAssignmentScratch()
	}
	clear(d.fill)
	for _, shard := range d.byCol {
		for _, t := range shard {
			slot := d.docOff[t.D] + int(d.fill[t.D])
			d.fill[t.D]++
			d.gw[slot], d.gz[slot] = t.W, t.Data[0]
		}
	}
	for di := range d.asgBuf {
		lo, hi := d.docOff[di], d.docOff[di+1]
		sortByWord(d.gw[lo:hi], d.gz[lo:hi])
		out, ord := d.asgBuf[di], d.docOrder[di]
		for j := range out {
			out[ord[j]] = d.gz[lo+j]
		}
	}
	return d.asgBuf
}
