package cluster

import (
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func simCorpus() *corpus.Corpus {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 200, V: 250, K: 6, MeanLen: 40, Alpha: 0.08, Beta: 0.05, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func TestAlltoallDeliversEverything(t *testing.T) {
	for _, p := range []int{2, 3, 8} {
		recv := Alltoall(p, func(i, j int) []int64 {
			return []int64{int64(i*100 + j)}
		})
		for j := 0; j < p; j++ {
			for i := 0; i < p; i++ {
				if i == j {
					if recv[j][i] != nil {
						t.Fatalf("p=%d: self message delivered", p)
					}
					continue
				}
				if len(recv[j][i]) != 1 || recv[j][i][0] != int64(i*100+j) {
					t.Fatalf("p=%d: recv[%d][%d] = %v", p, j, i, recv[j][i])
				}
			}
		}
	}
}

func TestAlltoallSingleWorker(t *testing.T) {
	recv := Alltoall(1, func(i, j int) []int64 { return []int64{9} })
	if len(recv) != 1 || recv[0][0] != nil {
		t.Fatal("single worker should exchange nothing")
	}
}

func TestSimConvergesLikeSingleMachine(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	sim, err := New(c, cfg, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, sim.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 15; i++ {
		sim.Iterate()
	}
	after := eval.LogJoint(c, sim.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("cluster sim did not converge: %.1f -> %.1f", before, after)
	}
}

func TestStatsSane(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	sim, err := New(c, cfg, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.IterateStats()
	if st.WallSeconds <= 0 || st.ComputeSeconds <= 0 || st.ModeledSeconds <= 0 {
		t.Fatalf("non-positive times: %+v", st)
	}
	if st.ModeledSeconds < st.ComputeSeconds && st.ModeledSeconds < st.CommSeconds {
		t.Fatalf("modeled time below both planes: %+v", st)
	}
	if st.BytesMoved <= 0 {
		t.Fatal("4-worker run moved no bytes")
	}
	if st.Imbalance < 0 || st.Imbalance > 1 {
		t.Fatalf("implausible imbalance %g for greedy partition", st.Imbalance)
	}
	if sim.ModeledSeconds() != st.ModeledSeconds {
		t.Fatal("cumulative modeled time mismatch after one iteration")
	}
}

func TestSingleWorkerMovesNoBytes(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	sim, err := New(c, cfg, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := sim.IterateStats()
	if st.BytesMoved != 0 {
		t.Fatalf("single worker moved %d bytes", st.BytesMoved)
	}
}

func TestMoreWorkersLessModeledCompute(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	s1, err := New(c, cfg, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s8, err := New(c, cfg, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.IterateStats()
	st8 := s8.IterateStats()
	// Normalize by wall time: compute share should shrink close to 1/8.
	r1 := st1.ComputeSeconds / st1.WallSeconds
	r8 := st8.ComputeSeconds / st8.WallSeconds
	if r8 > r1/4 {
		t.Fatalf("8-worker compute share %.3f not well below 1-worker %.3f", r8, r1)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	if _, err := New(c, cfg, Config{Workers: 0}); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := New(c, sampler.Config{}, Config{Workers: 2}); err == nil {
		t.Fatal("invalid sampler config accepted")
	}
}

func TestNetworkPresets(t *testing.T) {
	ib, ge := InfiniBand(), Gigabit()
	if ib.BandwidthBytesPerSec <= ge.BandwidthBytesPerSec {
		t.Fatal("InfiniBand not faster than gigabit")
	}
	if ib.LatencySec >= ge.LatencySec {
		t.Fatal("InfiniBand latency not below gigabit")
	}
}

func TestSlowNetworkRaisesCommTime(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	fast, err := New(c, cfg, Config{Workers: 4, Network: InfiniBand()})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(c, cfg, Config{Workers: 4, Network: Gigabit()})
	if err != nil {
		t.Fatal(err)
	}
	sf := fast.IterateStats()
	ss := slow.IterateStats()
	if ss.CommSeconds <= sf.CommSeconds {
		t.Fatalf("gigabit comm %.3g not above InfiniBand %.3g", ss.CommSeconds, sf.CommSeconds)
	}
}
