// Package cluster simulates the distributed runtime of Section 5.3: P
// workers over a D×V token matrix split into P×P partitions, with
// VisitByRow owning row slices, VisitByColumn owning column slices, and
// an alltoall block exchange between unlike phases.
//
// The paper runs on Tianhe-2 over MPI/InfiniBand; here the cluster is
// simulated in-process (DESIGN.md substitution 3): the sampling math is
// executed for real (so convergence traces are genuine), worker message
// exchange runs on goroutines and channels, and wall-clock speedups are
// replaced by a *modeled time* combining measured per-token compute cost,
// the partition's load balance, and a network model for the bytes each
// worker must move. Communication and computation overlap, as the 2-level
// blocking of Section 5.3.2 achieves.
package cluster

import (
	"fmt"
	"io"
	"sync"
	"time"

	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
	"warplda/internal/sparse"
)

// NetworkModel is the cost model for inter-worker communication.
type NetworkModel struct {
	BandwidthBytesPerSec float64 // per-worker bidirectional bandwidth
	LatencySec           float64 // per-message latency
}

// InfiniBand approximates the paper's FDR InfiniBand fabric.
func InfiniBand() NetworkModel {
	return NetworkModel{BandwidthBytesPerSec: 5e9, LatencySec: 2e-6}
}

// Gigabit approximates commodity 1GbE (for what-if comparisons).
func Gigabit() NetworkModel {
	return NetworkModel{BandwidthBytesPerSec: 1.25e8, LatencySec: 50e-6}
}

// Config configures a simulated cluster.
type Config struct {
	Workers int
	Network NetworkModel
}

// Stats describes one simulated iteration.
type Stats struct {
	// WallSeconds is the measured single-machine execution time of the
	// iteration's real sampling work.
	WallSeconds float64
	// ComputeSeconds is the modeled compute time: per-token cost derived
	// from WallSeconds, scaled by the heaviest worker's token share.
	ComputeSeconds float64
	// CommSeconds is the modeled alltoall + allreduce time of the
	// heaviest sender.
	CommSeconds float64
	// ModeledSeconds is the iteration's modeled distributed duration:
	// max(compute, comm) thanks to block overlap, plus latency residue.
	ModeledSeconds float64
	// BytesMoved is the total alltoall traffic of the iteration.
	BytesMoved int64
	// Imbalance is the token imbalance index of the heavier phase.
	Imbalance float64
}

// Sim runs WarpLDA on a simulated cluster.
type Sim struct {
	cfg     Config
	scfg    sampler.Config
	warp    *core.Warp
	c       *corpus.Corpus
	rowPart *sparse.Partition
	colPart *sparse.Partition

	tokens         int
	rowLoad        []int64 // tokens per worker in the doc phase
	colLoad        []int64 // tokens per worker in the word phase
	sendRowToCol   []int64 // bytes worker i ships at the row→col boundary
	sendColToRow   []int64 // bytes worker i ships at the col→row boundary
	entryBytes     int64
	modeledSeconds float64
}

// New builds a simulated cluster around a real WarpLDA sampler. Rows
// (documents) and columns (words) are partitioned with the paper's greedy
// strategy.
func New(c *corpus.Corpus, scfg sampler.Config, cfg Config) (*Sim, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("cluster: %d workers", cfg.Workers)
	}
	if cfg.Network.BandwidthBytesPerSec <= 0 {
		cfg.Network = InfiniBand()
	}
	w, err := core.New(c, scfg)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:        cfg,
		scfg:       scfg,
		warp:       w,
		c:          c,
		tokens:     c.NumTokens(),
		entryBytes: int64(4 * (scfg.M + 1)),
	}

	tf := c.TermFrequencies()
	s.colPart = sparse.GreedyPartition(tf, cfg.Workers)
	dl := make([]int, c.NumDocs())
	for d, doc := range c.Docs {
		dl[d] = len(doc)
	}
	s.rowPart = sparse.GreedyPartition(dl, cfg.Workers)
	s.rowLoad = s.rowPart.Loads(dl)
	s.colLoad = s.colPart.Loads(tf)

	// Block token counts: blocks[i][j] = tokens in partition (rowOwner i,
	// colOwner j). Off-diagonal blocks cross workers at phase boundaries.
	blocks := make([][]int64, cfg.Workers)
	for i := range blocks {
		blocks[i] = make([]int64, cfg.Workers)
	}
	for d, doc := range c.Docs {
		ri := s.rowPart.Assign[d]
		for _, w := range doc {
			blocks[ri][s.colPart.Assign[w]]++
		}
	}
	s.sendRowToCol = make([]int64, cfg.Workers)
	s.sendColToRow = make([]int64, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		for j := 0; j < cfg.Workers; j++ {
			if i == j {
				continue
			}
			s.sendRowToCol[i] += blocks[i][j] * s.entryBytes
			s.sendColToRow[j] += blocks[i][j] * s.entryBytes
		}
	}
	return s, nil
}

// Name implements sampler.Sampler.
func (s *Sim) Name() string { return fmt.Sprintf("WarpLDA[%dworkers]", s.cfg.Workers) }

// Assignments implements sampler.Sampler.
func (s *Sim) Assignments() [][]int32 { return s.warp.Assignments() }

const simStateTag = "sim \x01"

// StateTo implements sampler.Sampler: the wrapped WarpLDA sampler's
// state plus the accumulated modeled time, so a resumed simulation
// continues both the chain and its cost accounting.
func (s *Sim) StateTo(w io.Writer) error {
	e := sampler.NewEnc(w)
	e.Tag(simStateTag)
	e.F64(s.modeledSeconds)
	if err := e.Err(); err != nil {
		return err
	}
	return s.warp.StateTo(w)
}

// RestoreFrom implements sampler.Sampler.
func (s *Sim) RestoreFrom(r io.Reader) error {
	d := sampler.NewDec(r)
	d.Tag(simStateTag)
	modeled := d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := s.warp.RestoreFrom(r); err != nil {
		return err
	}
	s.modeledSeconds = modeled
	return nil
}

// Iterate implements sampler.Sampler: it executes the real sampling
// iteration, exchanges block descriptors between the worker goroutines
// (the in-process stand-in for MPI_Ialltoall), and accumulates modeled
// time. Use IterateStats to also receive the cost breakdown.
func (s *Sim) Iterate() { s.IterateStats() }

// IterateStats is Iterate returning the iteration's Stats.
func (s *Sim) IterateStats() Stats {
	start := time.Now()
	s.warp.Iterate()
	wall := time.Since(start).Seconds()

	// Exercise the message plane: each worker ships its off-diagonal
	// block descriptors to the peers that own them next phase.
	payload := func(i int) []int64 { return []int64{s.sendRowToCol[i]} }
	Alltoall(s.cfg.Workers, func(i, j int) []int64 {
		if i == j {
			return nil
		}
		return payload(i)
	})

	// One iteration touches every token twice (word phase + doc phase),
	// so the per-phase per-token cost is wall/(2T). Each phase's compute
	// is bounded by its heaviest worker.
	perPhaseToken := wall / (2 * float64(max64(1, int64(s.tokens))))
	maxCol := maxOf(s.colLoad)
	maxRow := maxOf(s.rowLoad)
	compute := (float64(maxCol) + float64(maxRow)) * perPhaseToken

	// Two boundaries per iteration (row→col, col→row) plus the c_k
	// allreduce (2·K·4 bytes per worker, log P rounds approximated flat).
	net := s.cfg.Network
	commRowCol := float64(maxOf(s.sendRowToCol))/net.BandwidthBytesPerSec +
		net.LatencySec*float64(s.cfg.Workers-1)
	commColRow := float64(maxOf(s.sendColToRow))/net.BandwidthBytesPerSec +
		net.LatencySec*float64(s.cfg.Workers-1)
	ckBytes := float64(8 * s.scfg.K)
	comm := commRowCol + commColRow + ckBytes/net.BandwidthBytesPerSec

	modeled := compute
	if comm > modeled {
		modeled = comm // fully overlapped: the slower plane dominates
	}
	modeled += net.LatencySec * 2 // phase-boundary barrier residue

	var bytes int64
	for i := range s.sendRowToCol {
		bytes += s.sendRowToCol[i] + s.sendColToRow[i]
	}
	st := Stats{
		WallSeconds:    wall,
		ComputeSeconds: compute,
		CommSeconds:    comm,
		ModeledSeconds: modeled,
		BytesMoved:     bytes,
		Imbalance:      maxImbalance(s.rowLoad, s.colLoad),
	}
	s.modeledSeconds += modeled
	return st
}

// ModeledSeconds returns cumulative modeled time over all iterations.
func (s *Sim) ModeledSeconds() float64 { return s.modeledSeconds }

// ModeledThroughput returns tokens/second under the model for one
// iteration's stats.
func (st Stats) ModeledThroughput(tokens int) float64 {
	if st.ModeledSeconds <= 0 {
		return 0
	}
	return float64(tokens) / st.ModeledSeconds
}

func maxImbalance(a, b []int64) float64 {
	x := sparse.ImbalanceIndex(a)
	if y := sparse.ImbalanceIndex(b); y > x {
		return y
	}
	return x
}

func maxOf(s []int64) int64 {
	var m int64
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Alltoall runs p goroutine workers that each send a payload to every
// other worker over channels and collect what the others sent to them —
// the in-process equivalent of MPI_Ialltoall. It returns recv[j][i] =
// payload(i, j). It is used by Sim each iteration and exported for tests
// and for building other simulated collectives.
func Alltoall(p int, payload func(i, j int) []int64) [][][]int64 {
	chans := make([]chan msg, p)
	for i := range chans {
		chans[i] = make(chan msg, p)
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < p; j++ {
				if i == j {
					continue
				}
				chans[j] <- msg{from: i, data: payload(i, j)}
			}
		}(i)
	}
	recv := make([][][]int64, p)
	for j := range recv {
		recv[j] = make([][]int64, p)
	}
	var rg sync.WaitGroup
	for j := 0; j < p; j++ {
		rg.Add(1)
		go func(j int) {
			defer rg.Done()
			for n := 0; n < p-1; n++ {
				m := <-chans[j]
				recv[j][m.from] = m.data
			}
		}(j)
	}
	wg.Wait()
	rg.Wait()
	return recv
}

type msg struct {
	from int
	data []int64
}
