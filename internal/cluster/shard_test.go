package cluster

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"warplda/internal/corpus"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

// shardBlobs serializes every shard of d, as the checkpoint layer does.
func shardBlobs(t *testing.T, d *Distributed) []*bytes.Buffer {
	t.Helper()
	out := make([]*bytes.Buffer, d.NumShards())
	for i := range out {
		out[i] = &bytes.Buffer{}
		if err := d.ShardTo(i, out[i]); err != nil {
			t.Fatalf("ShardTo(%d): %v", i, err)
		}
	}
	return out
}

func readers(bufs []*bytes.Buffer) []io.Reader {
	rs := make([]io.Reader, len(bufs))
	for i, b := range bufs {
		rs[i] = bytes.NewReader(b.Bytes())
	}
	return rs
}

// TestElasticRestoreAcrossWorkerCounts is the tentpole's core claim: a
// sharded state saved under one worker count restores into any other,
// with every invariant intact and convergence quality preserved. The
// corpus is larger than simCorpus: the quality comparison pits two
// independent chains against each other, and log-likelihood spread
// between converged chains shrinks with token count.
func TestElasticRestoreAcrossWorkerCounts(t *testing.T) {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 400, V: 300, K: 6, MeanLen: 60, Alpha: 0.08, Beta: 0.05, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	for _, tc := range []struct{ oldP, newP int }{
		{1, 3}, {3, 2}, {3, 3}, {2, 4}, {4, 1},
	} {
		t.Run(fmt.Sprintf("p%d_to_p%d", tc.oldP, tc.newP), func(t *testing.T) {
			src, err := NewDistributed(c, cfg, tc.oldP)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				src.Iterate()
			}
			wantCk := src.GlobalCounts()
			wantLL := eval.LogJoint(c, src.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)

			dst, err := NewDistributed(c, cfg, tc.newP)
			if err != nil {
				t.Fatal(err)
			}
			reseeded, err := dst.RestoreShards(4, readers(shardBlobs(t, src)))
			if err != nil {
				t.Fatal(err)
			}
			if want := tc.oldP != tc.newP; reseeded != want {
				t.Fatalf("reseeded = %v, want %v", reseeded, want)
			}
			if !reflect.DeepEqual(dst.GlobalCounts(), wantCk) {
				t.Fatal("restored global counts differ")
			}
			if got := eval.LogJoint(c, dst.Assignments(), cfg.K, cfg.Alpha, cfg.Beta); got != wantLL {
				t.Fatalf("restored log-likelihood %v, want %v", got, wantLL)
			}
			// Every token must land with its owner under the NEW partition.
			for i, shard := range dst.byCol {
				for _, tok := range shard {
					if dst.cols.Assign[tok.W] != int32(i) {
						t.Fatalf("token of word %d rebalanced into shard %d, owner is %d", tok.W, i, dst.cols.Assign[tok.W])
					}
				}
			}
			// The restored sampler must keep training soundly: token mass
			// conserved, and quality comparable to the uninterrupted run.
			// Run both chains to the converged plateau before comparing —
			// mid-burn-in, independent chains legitimately spread wider
			// than any sensible tolerance.
			for i := 0; i < 26; i++ {
				dst.Iterate()
				src.Iterate()
			}
			var mass int32
			for _, v := range dst.GlobalCounts() {
				mass += v
			}
			if mass != int32(c.NumTokens()) {
				t.Fatalf("token mass %d after elastic resume, want %d", mass, c.NumTokens())
			}
			llDst := eval.LogJoint(c, dst.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			llSrc := eval.LogJoint(c, src.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
			if llDst <= wantLL {
				t.Fatalf("elastic-resumed chain did not keep converging: LL %.1f from checkpoint-time %.1f", llDst, wantLL)
			}
			if diff := abs(llDst - llSrc); diff > 0.05*abs(llSrc) {
				t.Fatalf("elastic-resumed LL %.1f differs from uninterrupted %.1f by more than 5%%", llDst, llSrc)
			}
		})
	}
}

// Same worker count: the restore must be exact — shards byte-for-byte,
// RNG streams included — so a p→p resume continues precisely the saved
// trajectory (the live multi-worker exchange is itself
// channel-interleaved, so exactness is defined by state identity).
func TestSameTopologyRestoreIsExact(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	src, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src.Iterate()
	}
	dst, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded, err := dst.RestoreShards(3, readers(shardBlobs(t, src))); err != nil || reseeded {
		t.Fatalf("reseeded=%v err=%v, want false/nil", reseeded, err)
	}
	if !reflect.DeepEqual(dst.byCol, src.byCol) {
		t.Fatal("restored shards differ from saved shards")
	}
	for i := range src.workers {
		if dst.workers[i].R.State() != src.workers[i].R.State() {
			t.Fatalf("worker %d RNG stream not restored", i)
		}
	}
	// And single worker end to end: continuation is bit-identical.
	one, err := NewDistributed(c, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		one.Iterate()
	}
	re, err := NewDistributed(c, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.RestoreShards(3, readers(shardBlobs(t, one))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		one.Iterate()
		re.Iterate()
	}
	if !reflect.DeepEqual(one.Assignments(), re.Assignments()) {
		t.Fatal("single-worker shard-restored run diverged")
	}
}

func TestRestoreShardsRejectsBadInput(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 1
	src, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	src.Iterate()
	blobs := shardBlobs(t, src)

	fresh := func() *Distributed {
		d, err := NewDistributed(c, cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	t.Run("reordered shards", func(t *testing.T) {
		if _, err := fresh().RestoreShards(1, readers([]*bytes.Buffer{blobs[1], blobs[0]})); err == nil {
			t.Fatal("swapped shard order accepted")
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		if _, err := fresh().RestoreShards(1, readers(blobs[:1])); err == nil {
			t.Fatal("missing shard accepted (shard claims 2 workers)")
		}
	})
	t.Run("duplicated shard", func(t *testing.T) {
		if _, err := fresh().RestoreShards(1, readers([]*bytes.Buffer{blobs[0], blobs[0]})); err == nil {
			t.Fatal("duplicated shard accepted")
		}
	})
	t.Run("truncated shard", func(t *testing.T) {
		cut := bytes.NewBuffer(blobs[1].Bytes()[:blobs[1].Len()-9])
		if _, err := fresh().RestoreShards(1, readers([]*bytes.Buffer{blobs[0], cut})); err == nil {
			t.Fatal("truncated shard accepted")
		}
	})
	t.Run("wrong M", func(t *testing.T) {
		cfg2 := cfg
		cfg2.M = 2
		d2, err := NewDistributed(c, cfg2, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d2.RestoreShards(1, readers(blobs)); err == nil {
			t.Fatal("M mismatch accepted")
		}
	})
	t.Run("bad shard index", func(t *testing.T) {
		if err := src.ShardTo(2, io.Discard); err == nil {
			t.Fatal("out-of-range shard index accepted")
		}
	})
	// A failed restore must leave the target untouched and usable.
	t.Run("failure leaves sampler intact", func(t *testing.T) {
		d := fresh()
		before := sampler.CopyAssignments(d.Assignments())
		if _, err := d.RestoreShards(1, readers(blobs[:1])); err == nil {
			t.Fatal("partial restore accepted")
		}
		if !reflect.DeepEqual(before, d.Assignments()) {
			t.Fatal("failed restore mutated the sampler")
		}
		d.Iterate()
	})
}
