// Shared phase bodies of the Section 5.3 execution model. The
// in-process Distributed sampler (distributed.go) and the live
// multi-process worker (internal/dist) run the SAME sampling code: the
// word-phase and doc-phase group bodies below, over the same Token
// representation, grouped by the same sort. Distributed wires them to
// goroutines and channels; the live worker wires them to the TCP block
// exchange — so the convergence behavior proven by the in-process tests
// carries over to the wire protocol unchanged.
package cluster

import (
	"warplda/internal/alias"
	"warplda/internal/rng"
	"warplda/internal/sampler"
	"warplda/internal/tcount"
)

// PhaseWorker is one worker's scratch state for running phase bodies:
// its RNG stream, the per-group topic counter, alias-table build
// buffers, and the per-pass global-count accumulator. In the in-process
// sampler there are P of these behind channels; in the live mode each
// worker process owns exactly one.
type PhaseWorker struct {
	// R is the worker's RNG stream. It is part of the sampler's
	// checkpointed state: restore sets it, elastic resume re-derives it.
	R *rng.RNG
	// CkAcc accumulates the worker's contribution to the next global
	// topic-count vector during the doc phase; the per-pass allreduce
	// sums it across workers.
	CkAcc []int32

	counter tcount.Counter
	topics  []int32
	weights []float64
	tab     alias.SparseTable
}

// NewPhaseWorker builds a worker's scratch state for k topics with the
// given RNG stream. The group counter is dense for small K and hashed
// beyond 1024 topics, matching the shared-memory sampler's choice.
func NewPhaseWorker(k int, r *rng.RNG) *PhaseWorker {
	wk := &PhaseWorker{R: r, CkAcc: make([]int32, k)}
	if k <= 1024 {
		wk.counter = tcount.NewDense(k)
	} else {
		wk.counter = tcount.NewHash(256)
	}
	return wk
}

// PhaseEnv is the frozen per-pass context a phase body needs beyond the
// worker's own scratch: the hyper-parameters, the vocabulary size, and
// the pass's global topic-count vector (replicated, read-only during
// the pass — the paper's only shared state).
type PhaseEnv struct {
	Cfg sampler.Config
	V   int
	CK  []int32
}

// WordGroup is the word-phase body for one word's tokens: finish the
// doc-proposal chains (π^doc), rebuild c_w, draw M word proposals.
func (e *PhaseEnv) WordGroup(wk *PhaseWorker, group []Token) {
	k := e.Cfg.K
	beta := e.Cfg.Beta
	betaBar := beta * float64(e.V)
	lw := len(group)
	cw := wk.counter
	resetCounter(cw, k, lw)
	for _, t := range group {
		cw.Incr(t.Data[0])
	}
	for _, t := range group {
		s := t.Data[0]
		for j := 1; j < len(t.Data); j++ {
			prop := t.Data[j]
			if prop == s {
				continue
			}
			pi := (float64(cw.Get(prop)) + beta) / (float64(cw.Get(s)) + beta) *
				(float64(e.CK[s]) + betaBar) / (float64(e.CK[prop]) + betaBar)
			if pi >= 1 || wk.R.Float64() < pi {
				s = prop
			}
		}
		t.Data[0] = s
	}
	resetCounter(cw, k, lw)
	for _, t := range group {
		cw.Incr(t.Data[0])
	}
	wk.topics = wk.topics[:0]
	wk.weights = wk.weights[:0]
	cw.NonZero(func(kk, c int32) {
		wk.topics = append(wk.topics, kk)
		wk.weights = append(wk.weights, float64(c))
	})
	wk.tab.Build(wk.topics, wk.weights)
	pCount := float64(lw) / (float64(lw) + float64(k)*beta)
	for _, t := range group {
		for j := 1; j < len(t.Data); j++ {
			if wk.R.Float64() < pCount {
				t.Data[j] = wk.tab.Draw(wk.R)
			} else {
				t.Data[j] = int32(wk.R.Intn(k))
			}
		}
	}
}

// DocGroup is the doc-phase body for one document's tokens: finish the
// word-proposal chains (π^word), draw M doc proposals by positioning,
// accumulate the worker's ck contribution.
func (e *PhaseEnv) DocGroup(wk *PhaseWorker, group []Token) {
	k := e.Cfg.K
	alpha := e.Cfg.Alpha
	betaBar := e.Cfg.Beta * float64(e.V)
	ld := len(group)
	cd := wk.counter
	resetCounter(cd, k, ld)
	for _, t := range group {
		cd.Incr(t.Data[0])
	}
	for _, t := range group {
		s := t.Data[0]
		for j := 1; j < len(t.Data); j++ {
			prop := t.Data[j]
			if prop == s {
				continue
			}
			pi := (float64(cd.Get(prop)) + alpha) / (float64(cd.Get(s)) + alpha) *
				(float64(e.CK[s]) + betaBar) / (float64(e.CK[prop]) + betaBar)
			if pi >= 1 || wk.R.Float64() < pi {
				s = prop
			}
		}
		t.Data[0] = s
	}
	pCount := float64(ld) / (float64(ld) + alpha*float64(k))
	for _, t := range group {
		for j := 1; j < len(t.Data); j++ {
			if wk.R.Float64() < pCount {
				t.Data[j] = group[wk.R.Intn(ld)].Data[0]
			} else {
				t.Data[j] = int32(wk.R.Intn(k))
			}
		}
		wk.CkAcc[t.Data[0]]++
	}
}

// GroupSort sorts tokens by doc (byRow) or word (byCol) with a simple
// in-place quicksort so same-key tokens are contiguous — the grouping
// both phase bodies require of their input.
func GroupSort(ts []Token, byRow bool) {
	key := func(t Token) int32 {
		if byRow {
			return t.D
		}
		return t.W
	}
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			pivot := key(ts[(lo+hi)/2])
			i, j := lo, hi
			for i <= j {
				for key(ts[i]) < pivot {
					i++
				}
				for key(ts[j]) > pivot {
					j--
				}
				if i <= j {
					ts[i], ts[j] = ts[j], ts[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
		for i := lo + 1; i <= hi; i++ {
			for j := i; j > lo && key(ts[j]) < key(ts[j-1]); j-- {
				ts[j], ts[j-1] = ts[j-1], ts[j]
			}
		}
	}
	if len(ts) > 1 {
		qs(0, len(ts)-1)
	}
}

// ForGroups calls fn on each maximal run of equal-key tokens (equal doc
// when byRow, equal word otherwise). The input must be GroupSort-ed by
// the same key.
func ForGroups(ts []Token, byRow bool, fn func(group []Token)) {
	key := func(t Token) int32 {
		if byRow {
			return t.D
		}
		return t.W
	}
	for lo := 0; lo < len(ts); {
		hi := lo + 1
		for hi < len(ts) && key(ts[hi]) == key(ts[lo]) {
			hi++
		}
		fn(ts[lo:hi])
		lo = hi
	}
}

// sortByWord sorts the parallel (word, payload) pairs by (word, payload)
// lexicographically — the regroup pass behind Assignments. Ordering by
// the payload too makes the result canonical: a (doc, word) cell with
// duplicate tokens yields its topics in ascending order no matter which
// shards held them, so the regrouped assignment matrix is a pure
// function of the token multiset, not of the topology that produced it.
// Same quicksort shape as GroupSort, over two parallel slices.
func sortByWord(ws, zs []int32) {
	less := func(i, j int) bool {
		return ws[i] < ws[j] || (ws[i] == ws[j] && zs[i] < zs[j])
	}
	lessPair := func(i int, w, z int32) bool {
		return ws[i] < w || (ws[i] == w && zs[i] < z)
	}
	greaterPair := func(i int, w, z int32) bool {
		return ws[i] > w || (ws[i] == w && zs[i] > z)
	}
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for hi-lo > 12 {
			pw, pz := ws[(lo+hi)/2], zs[(lo+hi)/2]
			i, j := lo, hi
			for i <= j {
				for lessPair(i, pw, pz) {
					i++
				}
				for greaterPair(j, pw, pz) {
					j--
				}
				if i <= j {
					ws[i], ws[j] = ws[j], ws[i]
					zs[i], zs[j] = zs[j], zs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
		for i := lo + 1; i <= hi; i++ {
			for j := i; j > lo && less(j, j-1); j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
				zs[j], zs[j-1] = zs[j-1], zs[j]
			}
		}
	}
	if len(ws) > 1 {
		qs(0, len(ws)-1)
	}
}
