package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"warplda/internal/core"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func TestDistributedConverges(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		d.Iterate()
	}
	after := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("sharded sampler did not converge: %.1f -> %.1f", before, after)
	}
}

func TestDistributedConservesTokens(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 1
	d, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := int32(c.NumTokens())
	for i := 0; i < 5; i++ {
		d.Iterate()
		var sum int32
		for _, v := range d.GlobalCounts() {
			sum += v
		}
		if sum != total {
			t.Fatalf("iteration %d: ck sums to %d, want %d", i, sum, total)
		}
		// No token lost or duplicated across exchanges.
		n := 0
		for _, shard := range d.byCol {
			n += len(shard)
		}
		if n != int(total) {
			t.Fatalf("iteration %d: %d tokens in shards, want %d", i, n, total)
		}
	}
}

func TestDistributedCkMatchesAssignments(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Iterate()
	}
	z := d.Assignments()
	want := make([]int32, cfg.K)
	for _, zd := range z {
		for _, k := range zd {
			want[k]++
		}
	}
	got := d.GlobalCounts()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ck[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestDistributedAssignmentsShape(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Iterate()
	z := d.Assignments()
	if len(z) != len(c.Docs) {
		t.Fatal("wrong doc count")
	}
	for di := range z {
		if len(z[di]) != len(c.Docs[di]) {
			t.Fatalf("doc %d: %d topics for %d tokens", di, len(z[di]), len(c.Docs[di]))
		}
		for _, k := range z[di] {
			if k < 0 || int(k) >= cfg.K {
				t.Fatalf("topic %d out of range", k)
			}
		}
	}
}

// The sharded implementation must match the shared-memory sampler's
// converged quality (they are the same algorithm).
func TestDistributedMatchesSharedMemoryQuality(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.Iterate()
		w.Iterate()
	}
	llD := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	llW := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	diff := llD - llW
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.03*abs(llW) {
		t.Fatalf("sharded LL %.1f differs from shared-memory %.1f by more than 3%%", llD, llW)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDistributedSingleWorker(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 10; i++ {
		d.Iterate()
	}
	after := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatal("single-worker sharded run did not converge")
	}
}

func TestDistributedRejectsBadInput(t *testing.T) {
	c := simCorpus()
	if _, err := NewDistributed(c, sampler.Config{}, 2); err == nil {
		t.Error("invalid config accepted")
	}
	cfg := sampler.PaperDefaults(4)
	if _, err := NewDistributed(c, cfg, 0); err == nil {
		t.Error("0 workers accepted")
	}
	cfg.M = 0
	if _, err := NewDistributed(c, cfg, 2); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestGroupSortAndForGroups(t *testing.T) {
	ts := []Token{
		{D: 3, W: 9}, {D: 1, W: 5}, {D: 3, W: 2}, {D: 2, W: 7}, {D: 1, W: 1},
	}
	GroupSort(ts, true)
	var order []int32
	mixed := false
	ForGroups(ts, true, func(g []Token) {
		order = append(order, g[0].D)
		for _, tok := range g {
			if tok.D != g[0].D {
				mixed = true
			}
		}
	})
	if mixed {
		t.Fatal("group contains mixed keys")
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("group order %v", order)
	}
}

func TestDistributedResumeBitIdenticalSingleWorker(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	mk := func() *Distributed {
		d, err := NewDistributed(c, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	full, half, fresh := mk(), mk(), mk()
	const n = 3
	for i := 0; i < 2*n; i++ {
		full.Iterate()
	}
	for i := 0; i < n; i++ {
		half.Iterate()
	}
	var buf bytes.Buffer
	if err := half.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		fresh.Iterate()
	}
	if !reflect.DeepEqual(fresh.GlobalCounts(), full.GlobalCounts()) {
		t.Fatal("single-worker resumed run diverged (global counts)")
	}
	if !reflect.DeepEqual(fresh.Assignments(), full.Assignments()) {
		t.Fatal("single-worker resumed run diverged (assignments)")
	}
}

// With several workers the block exchange interleaves nondeterministically,
// so resume is exact in distribution rather than in bits; the state must
// still round-trip losslessly and keep every invariant.
func TestDistributedStateRoundTripMultiWorker(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	d, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Iterate()
	}
	var buf bytes.Buffer
	if err := d.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	wantCk := d.GlobalCounts()
	wantLL := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)

	fresh, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.GlobalCounts(), wantCk) {
		t.Fatal("restored global counts differ")
	}
	if got := eval.LogJoint(c, fresh.Assignments(), cfg.K, cfg.Alpha, cfg.Beta); got != wantLL {
		t.Fatalf("restored log-likelihood %v, want %v", got, wantLL)
	}
	for i := 0; i < 2; i++ {
		fresh.Iterate()
	}
	var sum int32
	for _, ck := range fresh.GlobalCounts() {
		sum += ck
	}
	if sum != int32(c.NumTokens()) {
		t.Fatalf("token mass %d after resumed iterations, want %d", sum, c.NumTokens())
	}
}

func TestDistributedRestoreRejectsCorruptState(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 1
	d, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Iterate()
	var buf bytes.Buffer
	if err := d.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	// Wrong worker count.
	if d3, err := NewDistributed(c, cfg, 3); err != nil {
		t.Fatal(err)
	} else if err := d3.RestoreFrom(bytes.NewReader(blob)); err == nil {
		t.Error("worker-count mismatch accepted")
	}
	// Wrong M.
	cfg2 := cfg
	cfg2.M = 2
	if dm, err := NewDistributed(c, cfg2, 2); err != nil {
		t.Fatal(err)
	} else if err := dm.RestoreFrom(bytes.NewReader(blob)); err == nil {
		t.Error("M mismatch accepted")
	}
	// Truncated.
	if dt, err := NewDistributed(c, cfg, 2); err != nil {
		t.Fatal(err)
	} else if err := dt.RestoreFrom(bytes.NewReader(blob[:len(blob)-11])); err == nil {
		t.Error("truncated state accepted")
	}
}

func TestSimStateRoundTrip(t *testing.T) {
	c := simCorpus()
	scfg := sampler.PaperDefaults(6)
	scfg.M = 1
	mk := func() *Sim {
		s, err := New(c, scfg, Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	full, half, fresh := mk(), mk(), mk()
	const n = 2
	for i := 0; i < 2*n; i++ {
		full.Iterate()
	}
	for i := 0; i < n; i++ {
		half.Iterate()
	}
	var buf bytes.Buffer
	if err := half.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if fresh.ModeledSeconds() != half.ModeledSeconds() {
		t.Fatal("modeled time not restored")
	}
	for i := 0; i < n; i++ {
		fresh.Iterate()
	}
	// The wrapped sampler is core.Warp with cfg.Threads workers (1 here):
	// the chain itself must resume bit-identically even though modeled
	// timing differs run to run.
	if !reflect.DeepEqual(fresh.Assignments(), full.Assignments()) {
		t.Fatal("resumed Sim diverged from uninterrupted run")
	}
}

// A state whose per-cell token multiset differs from the corpus must be
// rejected even when every cheaper invariant (ranges, shard ownership,
// totals, ck histogram) still holds.
func TestDistributedRestoreRejectsWrongTokenMultiset(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 1
	d, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Iterate()
	// Duplicate one cell and drop another within the same shard: topics
	// are untouched, so the ck histogram still matches.
	tampered := false
	for _, shard := range d.byCol {
		for j := 1; j < len(shard); j++ {
			if shard[j].D != shard[0].D || shard[j].W != shard[0].W {
				shard[j].D, shard[j].W = shard[0].D, shard[0].W
				tampered = true
				break
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		t.Fatal("could not tamper (degenerate corpus)")
	}
	var buf bytes.Buffer
	if err := d.StateTo(&buf); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreFrom(&buf); err == nil {
		t.Fatal("wrong token multiset accepted")
	}
}
