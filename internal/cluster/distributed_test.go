package cluster

import (
	"testing"

	"warplda/internal/core"
	"warplda/internal/eval"
	"warplda/internal/sampler"
)

func TestDistributedConverges(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 20; i++ {
		d.Iterate()
	}
	after := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatalf("sharded sampler did not converge: %.1f -> %.1f", before, after)
	}
}

func TestDistributedConservesTokens(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 1
	d, err := NewDistributed(c, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := int32(c.NumTokens())
	for i := 0; i < 5; i++ {
		d.Iterate()
		var sum int32
		for _, v := range d.GlobalCounts() {
			sum += v
		}
		if sum != total {
			t.Fatalf("iteration %d: ck sums to %d, want %d", i, sum, total)
		}
		// No token lost or duplicated across exchanges.
		n := 0
		for _, shard := range d.byCol {
			n += len(shard)
		}
		if n != int(total) {
			t.Fatalf("iteration %d: %d tokens in shards, want %d", i, n, total)
		}
	}
}

func TestDistributedCkMatchesAssignments(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d.Iterate()
	}
	z := d.Assignments()
	want := make([]int32, cfg.K)
	for _, zd := range z {
		for _, k := range zd {
			want[k]++
		}
	}
	got := d.GlobalCounts()
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ck[%d] = %d, want %d", k, got[k], want[k])
		}
	}
}

func TestDistributedAssignmentsShape(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Iterate()
	z := d.Assignments()
	if len(z) != len(c.Docs) {
		t.Fatal("wrong doc count")
	}
	for di := range z {
		if len(z[di]) != len(c.Docs[di]) {
			t.Fatalf("doc %d: %d topics for %d tokens", di, len(z[di]), len(c.Docs[di]))
		}
		for _, k := range z[di] {
			if k < 0 || int(k) >= cfg.K {
				t.Fatalf("topic %d out of range", k)
			}
		}
	}
}

// The sharded implementation must match the shared-memory sampler's
// converged quality (they are the same algorithm).
func TestDistributedMatchesSharedMemoryQuality(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	cfg.M = 2
	d, err := NewDistributed(c, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d.Iterate()
		w.Iterate()
	}
	llD := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	llW := eval.LogJoint(c, w.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	diff := llD - llW
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.03*abs(llW) {
		t.Fatalf("sharded LL %.1f differs from shared-memory %.1f by more than 3%%", llD, llW)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDistributedSingleWorker(t *testing.T) {
	c := simCorpus()
	cfg := sampler.PaperDefaults(6)
	d, err := NewDistributed(c, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	for i := 0; i < 10; i++ {
		d.Iterate()
	}
	after := eval.LogJoint(c, d.Assignments(), cfg.K, cfg.Alpha, cfg.Beta)
	if after <= before {
		t.Fatal("single-worker sharded run did not converge")
	}
}

func TestDistributedRejectsBadInput(t *testing.T) {
	c := simCorpus()
	if _, err := NewDistributed(c, sampler.Config{}, 2); err == nil {
		t.Error("invalid config accepted")
	}
	cfg := sampler.PaperDefaults(4)
	if _, err := NewDistributed(c, cfg, 0); err == nil {
		t.Error("0 workers accepted")
	}
	cfg.M = 0
	if _, err := NewDistributed(c, cfg, 2); err == nil {
		t.Error("M=0 accepted")
	}
}

func TestGroupSortAndForGroups(t *testing.T) {
	ts := []Token{
		{D: 3, W: 9}, {D: 1, W: 5}, {D: 3, W: 2}, {D: 2, W: 7}, {D: 1, W: 1},
	}
	groupSort(ts, true)
	var order []int32
	mixed := false
	forGroups(ts, true, func(g []Token) {
		order = append(order, g[0].D)
		for _, tok := range g {
			if tok.D != g[0].D {
				mixed = true
			}
		}
	})
	if mixed {
		t.Fatal("group contains mixed keys")
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("group order %v", order)
	}
}
