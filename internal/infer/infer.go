// Package infer is the query-side counterpart of internal/core: a
// fold-in engine that estimates the topic mixture θ̂ of unseen documents
// against a frozen, trained model.
//
// Training freezes Φ̂_wk = (C_wk+β)/(C_k+β̄); answering a query for
// document d means sampling from
//
//	p(z_n = k | rest) ∝ (c_dk + α) Φ̂_{w_n k}
//
// The naive collapsed-Gibbs fold-in evaluates all K topics per token.
// The engine instead runs the same cycle-proposal Metropolis–Hastings
// chain the training samplers use (LightLDA / WarpLDA, Section 4.3 of
// the paper), which is O(1) per token:
//
//   - word proposal  q_word(k) ∝ Φ̂_wk — because Φ̂ is frozen, this is
//     drawn from per-word sparse alias tables built ONCE per engine and
//     amortized across every request. And because the proposal equals
//     the word-dependent factor of the target exactly, its acceptance
//     ratio collapses to (c_dt+α)/(c_ds+α): no Φ̂ lookups at all.
//   - doc proposal   q_doc(k) ∝ c_dk + α — drawn by random positioning
//     over the document's current assignments (no table build), with
//     the standard LightLDA acceptance correction.
//
// Engines are safe for concurrent use: all shared state is read-only
// after construction, and InferBatch shards a batch of documents across
// a worker pool with per-worker RNG and scratch state, mirroring
// core.Warp.runPhase.
package infer

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"warplda/internal/alias"
	"warplda/internal/rng"
)

// Params are the frozen point estimates of a trained LDA model. The
// slices are retained (not copied) and must not be mutated while the
// engine is in use.
type Params struct {
	V, K  int
	Alpha float64 // symmetric document-topic prior
	Beta  float64 // symmetric topic-word prior
	Cw    []int32 // V×K word-topic counts, row-major by word
	Ck    []int64 // K global topic counts
}

// Options tune the engine. The zero value picks sensible defaults.
type Options struct {
	// MHSteps is the number of (doc, word) proposal pairs per token per
	// sweep. 0 means 2. Larger values track the exact Gibbs conditional
	// more closely at proportional cost.
	MHSteps int
	// Workers is the worker-pool size used by InferBatch. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// DefaultSweeps is the fold-in sweep count used when a caller passes
// sweeps < 1, matching Model.DocTopics' historical default.
const DefaultSweeps = 5

// wordTab is word w's half of the proposal mixture: a sparse alias
// table over the topics with C_wk > 0, weighted C_wk/(C_k+β̄), plus the
// count-part mass za. The smoothing part β/(C_k+β̄) is shared by all
// words (Engine.smooth).
type wordTab struct {
	tab alias.SparseTable
	za  float64
}

// Engine answers fold-in queries against one frozen model. Construction
// is O(V·K); queries are O(MHSteps) per token. Safe for concurrent use.
type Engine struct {
	p        Params
	alphaBar float64
	ckBar    []float64 // C_k + β̄
	words    []wordTab
	smooth   alias.Table
	zbSmooth float64
	mh       int
	workers  int

	// scratchPool recycles per-call chain state (assignment vector,
	// doc-topic counts, RNG) so the steady-state request path performs
	// no per-token allocation beyond the returned θ̂.
	scratchPool sync.Pool

	// Serving counters; see Stats.
	statDispatches atomic.Int64
	statDocs       atomic.Int64
}

// EngineStats are cumulative serving counters. Dispatches counts
// batch-entry invocations (InferBatch / InferBatchSweeps / Infer);
// Docs counts documents folded in. A request coalescer in front of the
// engine is observable here: N coalesced single-doc requests move Docs
// by N but Dispatches by fewer than N.
type EngineStats struct {
	Dispatches int64 `json:"dispatches"`
	Docs       int64 `json:"docs"`
}

// Stats returns the engine's cumulative serving counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{Dispatches: e.statDispatches.Load(), Docs: e.statDocs.Load()}
}

// NewEngine validates p and precomputes the per-word proposal tables.
func NewEngine(p Params, opts Options) (*Engine, error) {
	if p.V <= 0 || p.K <= 0 {
		return nil, fmt.Errorf("infer: dims V=%d K=%d, want > 0", p.V, p.K)
	}
	if p.Alpha <= 0 || p.Beta <= 0 {
		return nil, fmt.Errorf("infer: non-positive priors α=%g β=%g", p.Alpha, p.Beta)
	}
	if len(p.Cw) != p.V*p.K {
		return nil, fmt.Errorf("infer: len(Cw) = %d, want V·K = %d", len(p.Cw), p.V*p.K)
	}
	if len(p.Ck) != p.K {
		return nil, fmt.Errorf("infer: len(Ck) = %d, want K = %d", len(p.Ck), p.K)
	}
	e := &Engine{
		p:        p,
		alphaBar: p.Alpha * float64(p.K),
		ckBar:    make([]float64, p.K),
		words:    make([]wordTab, p.V),
		mh:       opts.MHSteps,
		workers:  opts.Workers,
	}
	if e.mh < 1 {
		e.mh = 2
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}

	betaBar := p.Beta * float64(p.V)
	smoothW := make([]float64, p.K)
	for k := 0; k < p.K; k++ {
		if p.Ck[k] < 0 {
			return nil, fmt.Errorf("infer: negative topic count Ck[%d] = %d", k, p.Ck[k])
		}
		e.ckBar[k] = float64(p.Ck[k]) + betaBar
		smoothW[k] = p.Beta / e.ckBar[k]
		e.zbSmooth += smoothW[k]
	}
	e.smooth.Build(smoothW)

	var topics []int32
	var weights []float64
	for w := 0; w < p.V; w++ {
		row := p.Cw[w*p.K : (w+1)*p.K]
		topics, weights = topics[:0], weights[:0]
		var za float64
		for k, c := range row {
			if c > 0 {
				q := float64(c) / e.ckBar[k]
				topics = append(topics, int32(k))
				weights = append(weights, q)
				za += q
			}
		}
		if len(topics) > 0 {
			e.words[w].tab.Build(topics, weights)
		}
		e.words[w].za = za
	}
	return e, nil
}

// K returns the engine's topic count.
func (e *Engine) K() int { return e.p.K }

// V returns the engine's vocabulary size.
func (e *Engine) V() int { return e.p.V }

// Alpha returns the engine's symmetric document-topic prior.
func (e *Engine) Alpha() float64 { return e.p.Alpha }

// Beta returns the engine's symmetric topic-word prior.
func (e *Engine) Beta() float64 { return e.p.Beta }

// Count returns the frozen word-topic count C_wk. It is the sparse
// structure analytics queries iterate: a topic's top words are the
// words with the largest counts in its column. Bounds are the caller's
// responsibility (0 <= w < V, 0 <= k < K).
func (e *Engine) Count(w, k int) int32 { return e.p.Cw[w*e.p.K+k] }

// TopicTokens returns the global token count C_k of topic k.
func (e *Engine) TopicTokens(k int) int64 { return e.p.Ck[k] }

// Phi evaluates the frozen point estimate Φ̂_wk = (C_wk+β)/(C_k+β̄).
func (e *Engine) Phi(w, k int) float64 { return e.phi(int32(w), int32(k)) }

// MemoryBytes estimates the engine's own resident memory: the shared
// smoothing table, C_k+β̄ row, and every per-word sparse alias table.
// It excludes the Params count slices, which the engine retains but
// does not own (Model.SizeBytes accounts for those). Multi-model
// serving layers use the sum of both to enforce an LRU byte budget.
func (e *Engine) MemoryBytes() int64 {
	// Per alias bin: prob float64 + first/second int32 (Table), and the
	// outcome id (SparseTable). The fixed per-table struct overhead is
	// folded into a small constant per word.
	const binBytes = 8 + 4 + 4
	n := int64(len(e.ckBar))*8 + int64(e.smooth.K())*binBytes
	for w := range e.words {
		wt := &e.words[w]
		n += 24 // wordTab struct: za + table headers, amortized
		n += int64(wt.tab.K()) * (binBytes + 4)
	}
	return n
}

// drawWord samples from q_word(k) ∝ Φ̂_wk in O(1).
func (e *Engine) drawWord(w int32, r *rng.RNG) int32 {
	wt := &e.words[w]
	if wt.za > 0 && r.Float64()*(wt.za+e.zbSmooth) < wt.za {
		return wt.tab.Draw(r)
	}
	return int32(e.smooth.Draw(r))
}

// phi evaluates Φ̂_wk.
func (e *Engine) phi(w, k int32) float64 {
	return (float64(e.p.Cw[int(w)*e.p.K+int(k)]) + e.p.Beta) / e.ckBar[k]
}

func (e *Engine) validateDoc(doc []int32) error {
	for n, w := range doc {
		if w < 0 || int(w) >= e.p.V {
			return fmt.Errorf("infer: token %d has word id %d outside [0,%d)", n, w, e.p.V)
		}
	}
	return nil
}

// scratch is the per-worker (or per-call) reusable state.
type scratch struct {
	z  []int32
	cd []int32
	r  *rng.RNG
}

func newScratch(k int) *scratch { return &scratch{cd: make([]int32, k), r: rng.New(0)} }

// getScratch takes a scratch from the engine's pool (allocating on
// first use); putScratch returns it. The contained RNG must be
// reseeded by the caller before every chain.
func (e *Engine) getScratch() *scratch {
	if sc, ok := e.scratchPool.Get().(*scratch); ok {
		return sc
	}
	return newScratch(e.p.K)
}

func (e *Engine) putScratch(sc *scratch) { e.scratchPool.Put(sc) }

// inferInto runs the fold-in chain for one document and writes θ̂ into
// theta (length K). doc must be pre-validated; r and sc must not be
// shared across concurrent calls.
func (e *Engine) inferInto(doc []int32, sweeps int, r *rng.RNG, sc *scratch, theta []float64) {
	k := e.p.K
	ld := len(doc)
	if ld == 0 {
		for t := range theta {
			theta[t] = 1 / float64(k)
		}
		return
	}
	e.runChain(doc, sweeps, r, sc)
	alpha := e.p.Alpha
	for t := 0; t < k; t++ {
		theta[t] = (float64(sc.cd[t]) + alpha) / (float64(ld) + e.alphaBar)
	}
}

// runChain runs the MH fold-in chain for one non-empty document,
// leaving the final doc-topic counts in sc.cd. It is the shared core of
// the dense (inferInto) and sparse (InferSparse) extraction paths.
func (e *Engine) runChain(doc []int32, sweeps int, r *rng.RNG, sc *scratch) {
	k := e.p.K
	ld := len(doc)
	if sweeps < 1 {
		sweeps = DefaultSweeps
	}
	alpha := e.p.Alpha
	if cap(sc.z) < ld {
		sc.z = make([]int32, ld)
	}
	z := sc.z[:ld]
	cd := sc.cd
	clear(cd)
	for n := range doc {
		z[n] = int32(r.Intn(k))
		cd[z[n]]++
	}
	pDocCount := float64(ld) / (float64(ld) + e.alphaBar)
	for s := 0; s < sweeps; s++ {
		for n, w := range doc {
			old := z[n]
			cd[old]-- // counts exclude the token being resampled
			cur := old
			for step := 0; step < e.mh; step++ {
				// --- Doc proposal: random positioning over z, which
				// still holds the removed token's old topic, so
				// q_doc(k) = c_dk + α + [k==old] (token included).
				var t int32
				if r.Float64() < pDocCount {
					t = z[r.Intn(ld)]
				} else {
					t = int32(r.Intn(k))
				}
				if t != cur {
					qdT := float64(cd[t]) + alpha
					qdCur := float64(cd[cur]) + alpha
					if t == old {
						qdT++
					}
					if cur == old {
						qdCur++
					}
					pi := (float64(cd[t]) + alpha) * e.phi(w, t) * qdCur /
						((float64(cd[cur]) + alpha) * e.phi(w, cur) * qdT)
					if pi >= 1 || r.Float64() < pi {
						cur = t
					}
				}
				// --- Word proposal: q_word ∝ Φ̂_wk exactly, so the Φ̂
				// factors cancel out of the acceptance ratio.
				t = e.drawWord(w, r)
				if t != cur {
					pi := (float64(cd[t]) + alpha) / (float64(cd[cur]) + alpha)
					if pi >= 1 || r.Float64() < pi {
						cur = t
					}
				}
			}
			z[n] = cur
			cd[cur]++
		}
	}
}

// Infer estimates the topic mixture of one document with the given
// number of sweeps (sweeps < 1 means DefaultSweeps). The result is
// deterministic in (doc, sweeps, seed).
func (e *Engine) Infer(doc []int32, sweeps int, seed uint64) ([]float64, error) {
	if err := e.validateDoc(doc); err != nil {
		return nil, err
	}
	e.statDispatches.Add(1)
	e.statDocs.Add(1)
	theta := make([]float64, e.p.K)
	sc := e.getScratch()
	sc.r.Seed(seed)
	e.inferInto(doc, sweeps, sc.r, sc, theta)
	e.putScratch(sc)
	return theta, nil
}

// ReferenceGibbs is the naive fold-in this engine replaces: collapsed
// Gibbs with an O(K) scan per token, the pre-engine Model.DocTopics.
// It is kept as the single authoritative baseline for correctness
// tests (the engine must agree with it within MCMC tolerance) and for
// throughput benchmarks; it performs no input validation.
func ReferenceGibbs(p Params, doc []int32, sweeps int, seed uint64) []float64 {
	k := p.K
	betaBar := p.Beta * float64(p.V)
	theta := make([]float64, k)
	if len(doc) == 0 {
		for i := range theta {
			theta[i] = 1 / float64(k)
		}
		return theta
	}
	if sweeps < 1 {
		sweeps = DefaultSweeps
	}
	r := rng.New(seed)
	z := make([]int32, len(doc))
	cd := make([]int32, k)
	for n := range doc {
		z[n] = int32(r.Intn(k))
		cd[z[n]]++
	}
	probs := make([]float64, k)
	for s := 0; s < sweeps; s++ {
		for n, w := range doc {
			cd[z[n]]--
			var sum float64
			for t := 0; t < k; t++ {
				phi := (float64(p.Cw[int(w)*k+t]) + p.Beta) / (float64(p.Ck[t]) + betaBar)
				sum += (float64(cd[t]) + p.Alpha) * phi
				probs[t] = sum
			}
			u := r.Float64() * sum
			nt := int32(k - 1)
			for t := 0; t < k; t++ {
				if u < probs[t] {
					nt = int32(t)
					break
				}
			}
			z[n] = nt
			cd[nt]++
		}
	}
	alphaBar := p.Alpha * float64(k)
	for t := 0; t < k; t++ {
		theta[t] = (float64(cd[t]) + p.Alpha) / (float64(len(doc)) + alphaBar)
	}
	return theta
}

// docSeed derives the per-document RNG seed for batched inference from
// the batch seed and the document's content (FNV-1a over the token
// ids). Seeding by content rather than by batch position makes each
// document's result independent of batch order, batch composition, and
// worker count — and gives identical documents identical results.
func docSeed(seed uint64, doc []int32) uint64 {
	h := uint64(14695981039346656037) ^ (seed * 0x9e3779b97f4a7c15)
	for _, w := range doc {
		h ^= uint64(uint32(w))
		h *= 1099511628211
	}
	return h
}

// InferBatch estimates the topic mixtures of a batch of documents
// concurrently: documents are sharded across the engine's worker pool,
// each worker holding its own RNG and scratch state. Result i always
// corresponds to docs[i], and every document's result is deterministic
// in (doc, sweeps, seed) alone — independent of batch order and worker
// count. An invalid document fails the whole batch before any work
// runs.
func (e *Engine) InferBatch(docs [][]int32, sweeps int, seed uint64) ([][]float64, error) {
	return e.inferBatch(docs, func(int) int { return sweeps }, seed)
}

// InferBatchSweeps is InferBatch with a per-document sweep count
// (len(sweeps) must equal len(docs)). It exists for request
// coalescers: concurrent requests that disagree on sweeps can still
// share one worker-pool dispatch, and each document's result is
// identical to what an uncoalesced InferBatch with its own sweep count
// would return — the per-document seed depends only on (seed, doc).
func (e *Engine) InferBatchSweeps(docs [][]int32, sweeps []int, seed uint64) ([][]float64, error) {
	if len(sweeps) != len(docs) {
		return nil, fmt.Errorf("infer: %d sweep counts for %d docs", len(sweeps), len(docs))
	}
	return e.inferBatch(docs, func(i int) int { return sweeps[i] }, seed)
}

func (e *Engine) inferBatch(docs [][]int32, sweepsFor func(int) int, seed uint64) ([][]float64, error) {
	for i, doc := range docs {
		if err := e.validateDoc(doc); err != nil {
			return nil, fmt.Errorf("doc %d: %w", i, err)
		}
	}
	e.statDispatches.Add(1)
	e.statDocs.Add(int64(len(docs)))
	out := make([][]float64, len(docs))
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		sc := e.getScratch()
		for i, doc := range docs {
			theta := make([]float64, e.p.K)
			sc.r.Seed(docSeed(seed, doc))
			e.inferInto(doc, sweepsFor(i), sc.r, sc, theta)
			out[i] = theta
		}
		e.putScratch(sc)
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := e.getScratch()
			defer e.putScratch(sc)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				theta := make([]float64, e.p.K)
				sc.r.Seed(docSeed(seed, docs[i]))
				e.inferInto(docs[i], sweepsFor(i), sc.r, sc, theta)
				out[i] = theta
			}
		}()
	}
	wg.Wait()
	return out, nil
}
