package infer

import (
	"errors"
	"testing"
	"time"
)

func TestGateFailsFastWithoutDeadline(t *testing.T) {
	g := NewGate(2)
	r1, err := g.Enter(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Enter(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Enter(time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full gate without deadline: err = %v, want ErrQueueFull", err)
	}
	st := g.Stats()
	if st.Admitted != 2 || st.Active != 2 || st.ShedQueueFull != 1 {
		t.Fatalf("stats = %+v", st)
	}
	r1()
	r1() // idempotent
	if _, err := g.Enter(time.Time{}); err != nil {
		t.Fatalf("slot freed but Enter failed: %v", err)
	}
	r2()
}

func TestGateWaitsUntilDeadline(t *testing.T) {
	g := NewGate(1)
	release, err := g.Enter(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Holder releases shortly; a waiter with a generous deadline should
	// get the slot instead of shedding.
	go func() {
		time.Sleep(20 * time.Millisecond)
		release()
	}()
	r2, err := g.Enter(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatalf("waiter shed despite slot freeing in time: %v", err)
	}
	r2()

	// A waiter whose deadline passes first sheds with ErrDeadlineExceeded.
	r3, err := g.Enter(time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	defer r3()
	start := time.Now()
	if _, err := g.Enter(time.Now().Add(30 * time.Millisecond)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline shed took far longer than the deadline")
	}
	if g.Stats().ShedDeadline == 0 {
		t.Fatal("ShedDeadline not counted")
	}
}

func TestGatePastDeadlineShedsImmediately(t *testing.T) {
	g := NewGate(4)
	if _, err := g.Enter(time.Now().Add(-time.Millisecond)); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded for an already-past deadline", err)
	}
	if st := g.Stats(); st.Admitted != 0 || st.ShedDeadline != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGateDefaultDepth(t *testing.T) {
	g := NewGate(0)
	var releases []func()
	for i := 0; i < 256; i++ {
		r, err := g.Enter(time.Time{})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		releases = append(releases, r)
	}
	if _, err := g.Enter(time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("257th admit: err = %v", err)
	}
	for _, r := range releases {
		r()
	}
	if g.Stats().Active != 0 {
		t.Fatalf("active = %d after releasing all", g.Stats().Active)
	}
}
