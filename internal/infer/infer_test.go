package infer_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/infer"
	"warplda/internal/sampler"
)

var trainCache struct {
	once sync.Once
	p    infer.Params
	c    *corpus.Corpus
	err  error
}

// trainedParams trains WarpLDA on a synthetic corpus (once per test
// binary) and extracts the frozen count matrices the way
// warplda.Snapshot does. All tests read the counts; none mutate them.
func trainedParams(t testing.TB, alpha float64) (infer.Params, *corpus.Corpus) {
	t.Helper()
	trainCache.once.Do(func() {
		c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
			D: 400, V: 500, K: 8, MeanLen: 100, Alpha: 0.1, Beta: 0.01, Seed: 3,
		})
		if err != nil {
			trainCache.err = err
			return
		}
		cfg := sampler.PaperDefaults(8)
		cfg.M = 2
		w, err := core.New(c, cfg)
		if err != nil {
			trainCache.err = err
			return
		}
		for i := 0; i < 60; i++ {
			w.Iterate()
		}
		p := infer.Params{
			V: c.V, K: cfg.K, Beta: cfg.Beta,
			Cw: make([]int32, c.V*cfg.K),
			Ck: make([]int64, cfg.K),
		}
		z := w.Assignments()
		for d, doc := range c.Docs {
			for n, word := range doc {
				p.Cw[int(word)*cfg.K+int(z[d][n])]++
				p.Ck[z[d][n]]++
			}
		}
		trainCache.p, trainCache.c = p, c
	})
	if trainCache.err != nil {
		t.Fatal(trainCache.err)
	}
	p := trainCache.p
	p.Alpha = alpha
	return p, trainCache.c
}

func l1(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// The MH engine and the naive Gibbs reference are both MCMC estimators
// of the same posterior; averaged over a few chains their θ̂ estimates
// must agree closely, and their MAP topics must almost always coincide.
func TestInferMatchesGibbsReference(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{MHSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		nDocs  = 25
		chains = 3
		sweeps = 40
	)
	var totalL1 float64
	argmaxAgree := 0
	for d := 0; d < nDocs; d++ {
		doc := c.Docs[d]
		ref := make([]float64, p.K)
		mh := make([]float64, p.K)
		for ch := 0; ch < chains; ch++ {
			seed := uint64(1000*d + ch)
			for i, v := range infer.ReferenceGibbs(p, doc, sweeps, seed) {
				ref[i] += v / chains
			}
			got, err := eng.Infer(doc, sweeps, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				mh[i] += v / chains
			}
		}
		totalL1 += l1(ref, mh)
		if argmax(ref) == argmax(mh) {
			argmaxAgree++
		}
	}
	if mean := totalL1 / nDocs; mean > 0.15 {
		t.Errorf("mean L1 distance to Gibbs reference %.4f exceeds 0.15", mean)
	}
	if argmaxAgree < nDocs*4/5 {
		t.Errorf("MAP topic agrees on only %d/%d docs", argmaxAgree, nDocs)
	}
}

func argmax(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

func TestInferDeterministicInSeed(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := c.Docs[0]
	a, err := eng.Infer(doc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Infer(doc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different θ̂")
	}
	var sum float64
	for _, v := range a {
		if v < 0 {
			t.Fatalf("negative θ̂ component %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("θ̂ sums to %g", sum)
	}
	c2, err := eng.Infer(doc, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c2) {
		t.Fatal("different seeds produced identical θ̂ (suspicious)")
	}
}

// Batched results must equal one another across worker counts and must
// follow their documents under batch permutation.
func TestInferBatchOrderAndWorkerIndependence(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	docs := c.Docs[:32]

	eng1, err := infer.NewEngine(p, infer.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng4, err := infer.NewEngine(p, infer.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng1.InferBatch(docs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng4.InferBatch(docs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed batch results")
	}

	// Reverse the batch: result i must follow docs[i].
	rev := make([][]int32, len(docs))
	for i := range docs {
		rev[i] = docs[len(docs)-1-i]
	}
	revOut, err := eng4.InferBatch(rev, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if !reflect.DeepEqual(serial[i], revOut[len(docs)-1-i]) {
			t.Fatalf("doc %d result changed under batch permutation", i)
		}
	}
}

func TestInferEmptyDocUniform(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	theta, err := eng.Infer(nil, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range theta {
		if math.Abs(v-1/float64(p.K)) > 1e-12 {
			t.Fatalf("empty doc θ̂ = %v, want uniform", theta)
		}
	}
	out, err := eng.InferBatch(nil, 5, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestInferRejectsInvalidInput(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer([]int32{0, int32(p.V)}, 5, 1); err == nil {
		t.Error("out-of-range word id accepted")
	}
	if _, err := eng.Infer([]int32{-1}, 5, 1); err == nil {
		t.Error("negative word id accepted")
	}
	if _, err := eng.InferBatch([][]int32{{0}, {int32(p.V)}}, 5, 1); err == nil {
		t.Error("batch with invalid doc accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	good := infer.Params{V: 2, K: 2, Alpha: 0.1, Beta: 0.01,
		Cw: make([]int32, 4), Ck: make([]int64, 2)}
	if _, err := infer.NewEngine(good, infer.Options{}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := map[string]func(p *infer.Params){
		"zero K":      func(p *infer.Params) { p.K = 0 },
		"zero V":      func(p *infer.Params) { p.V = 0 },
		"bad alpha":   func(p *infer.Params) { p.Alpha = 0 },
		"bad beta":    func(p *infer.Params) { p.Beta = -1 },
		"short Cw":    func(p *infer.Params) { p.Cw = p.Cw[:3] },
		"short Ck":    func(p *infer.Params) { p.Ck = p.Ck[:1] },
		"negative Ck": func(p *infer.Params) { p.Ck = []int64{-1, 0} },
	}
	for name, corrupt := range cases {
		p := good
		corrupt(&p)
		if _, err := infer.NewEngine(p, infer.Options{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
