package infer_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/infer"
	"warplda/internal/sampler"
)

var trainCache struct {
	once sync.Once
	p    infer.Params
	c    *corpus.Corpus
	err  error
}

// trainedParams trains WarpLDA on a synthetic corpus (once per test
// binary) and extracts the frozen count matrices the way
// warplda.Snapshot does. All tests read the counts; none mutate them.
func trainedParams(t testing.TB, alpha float64) (infer.Params, *corpus.Corpus) {
	t.Helper()
	trainCache.once.Do(func() {
		c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
			D: 400, V: 500, K: 8, MeanLen: 100, Alpha: 0.1, Beta: 0.01, Seed: 3,
		})
		if err != nil {
			trainCache.err = err
			return
		}
		cfg := sampler.PaperDefaults(8)
		cfg.M = 2
		w, err := core.New(c, cfg)
		if err != nil {
			trainCache.err = err
			return
		}
		for i := 0; i < 60; i++ {
			w.Iterate()
		}
		p := infer.Params{
			V: c.V, K: cfg.K, Beta: cfg.Beta,
			Cw: make([]int32, c.V*cfg.K),
			Ck: make([]int64, cfg.K),
		}
		z := w.Assignments()
		for d, doc := range c.Docs {
			for n, word := range doc {
				p.Cw[int(word)*cfg.K+int(z[d][n])]++
				p.Ck[z[d][n]]++
			}
		}
		trainCache.p, trainCache.c = p, c
	})
	if trainCache.err != nil {
		t.Fatal(trainCache.err)
	}
	p := trainCache.p
	p.Alpha = alpha
	return p, trainCache.c
}

func l1(a, b []float64) float64 {
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// The MH engine and the naive Gibbs reference are both MCMC estimators
// of the same posterior; averaged over a few chains their θ̂ estimates
// must agree closely, and their MAP topics must almost always coincide.
func TestInferMatchesGibbsReference(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{MHSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	const (
		nDocs  = 25
		chains = 3
		sweeps = 40
	)
	var totalL1 float64
	argmaxAgree := 0
	for d := 0; d < nDocs; d++ {
		doc := c.Docs[d]
		ref := make([]float64, p.K)
		mh := make([]float64, p.K)
		for ch := 0; ch < chains; ch++ {
			seed := uint64(1000*d + ch)
			for i, v := range infer.ReferenceGibbs(p, doc, sweeps, seed) {
				ref[i] += v / chains
			}
			got, err := eng.Infer(doc, sweeps, seed)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range got {
				mh[i] += v / chains
			}
		}
		totalL1 += l1(ref, mh)
		if argmax(ref) == argmax(mh) {
			argmaxAgree++
		}
	}
	if mean := totalL1 / nDocs; mean > 0.15 {
		t.Errorf("mean L1 distance to Gibbs reference %.4f exceeds 0.15", mean)
	}
	if argmaxAgree < nDocs*4/5 {
		t.Errorf("MAP topic agrees on only %d/%d docs", argmaxAgree, nDocs)
	}
}

func argmax(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

func TestInferDeterministicInSeed(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := c.Docs[0]
	a, err := eng.Infer(doc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Infer(doc, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different θ̂")
	}
	var sum float64
	for _, v := range a {
		if v < 0 {
			t.Fatalf("negative θ̂ component %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("θ̂ sums to %g", sum)
	}
	c2, err := eng.Infer(doc, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c2) {
		t.Fatal("different seeds produced identical θ̂ (suspicious)")
	}
}

// Batched results must equal one another across worker counts and must
// follow their documents under batch permutation.
func TestInferBatchOrderAndWorkerIndependence(t *testing.T) {
	p, c := trainedParams(t, 0.1)
	docs := c.Docs[:32]

	eng1, err := infer.NewEngine(p, infer.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng4, err := infer.NewEngine(p, infer.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := eng1.InferBatch(docs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng4.InferBatch(docs, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("worker count changed batch results")
	}

	// Reverse the batch: result i must follow docs[i].
	rev := make([][]int32, len(docs))
	for i := range docs {
		rev[i] = docs[len(docs)-1-i]
	}
	revOut, err := eng4.InferBatch(rev, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if !reflect.DeepEqual(serial[i], revOut[len(docs)-1-i]) {
			t.Fatalf("doc %d result changed under batch permutation", i)
		}
	}
}

func TestInferEmptyDocUniform(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	theta, err := eng.Infer(nil, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range theta {
		if math.Abs(v-1/float64(p.K)) > 1e-12 {
			t.Fatalf("empty doc θ̂ = %v, want uniform", theta)
		}
	}
	out, err := eng.InferBatch(nil, 5, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}

func TestInferRejectsInvalidInput(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer([]int32{0, int32(p.V)}, 5, 1); err == nil {
		t.Error("out-of-range word id accepted")
	}
	if _, err := eng.Infer([]int32{-1}, 5, 1); err == nil {
		t.Error("negative word id accepted")
	}
	if _, err := eng.InferBatch([][]int32{{0}, {int32(p.V)}}, 5, 1); err == nil {
		t.Error("batch with invalid doc accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	good := infer.Params{V: 2, K: 2, Alpha: 0.1, Beta: 0.01,
		Cw: make([]int32, 4), Ck: make([]int64, 2)}
	if _, err := infer.NewEngine(good, infer.Options{}); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	cases := map[string]func(p *infer.Params){
		"zero K":      func(p *infer.Params) { p.K = 0 },
		"zero V":      func(p *infer.Params) { p.V = 0 },
		"bad alpha":   func(p *infer.Params) { p.Alpha = 0 },
		"bad beta":    func(p *infer.Params) { p.Beta = -1 },
		"short Cw":    func(p *infer.Params) { p.Cw = p.Cw[:3] },
		"short Ck":    func(p *infer.Params) { p.Ck = p.Ck[:1] },
		"negative Ck": func(p *infer.Params) { p.Ck = []int64{-1, 0} },
	}
	for name, corrupt := range cases {
		p := good
		corrupt(&p)
		if _, err := infer.NewEngine(p, infer.Options{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestInferBatchSweepsMatchesUncoalesced pins the coalescing contract:
// a mixed-sweeps batch returns, for every document, exactly the result
// an uncoalesced single-doc InferBatch with that document's own sweep
// count would return — byte-identical, because the per-document seed
// depends only on (seed, doc).
func TestInferBatchSweepsMatchesUncoalesced(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]int32{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9, 10, 11}, {1, 1, 2}}
	sweeps := []int{3, 7, 5, 12}
	const seed = 99
	got, err := eng.InferBatchSweeps(docs, sweeps, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i, doc := range docs {
		want, err := eng.InferBatch([][]int32{doc}, sweeps[i], seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want[0]) {
			t.Errorf("doc %d: coalesced result differs from uncoalesced", i)
		}
	}
	if _, err := eng.InferBatchSweeps(docs, sweeps[:2], seed); err == nil {
		t.Error("mismatched sweeps length accepted")
	}
}

// TestEngineStatsCount pins the dispatch/doc counters the coalescing
// tests (and the serve /stats endpoint) observe.
func TestEngineStatsCount(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Dispatches != 0 || s.Docs != 0 {
		t.Fatalf("fresh engine stats %+v", s)
	}
	if _, err := eng.InferBatch([][]int32{{0, 1}, {2, 3}, {4}}, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Infer([]int32{0, 1}, 3, 1); err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Dispatches != 2 || s.Docs != 4 {
		t.Fatalf("stats %+v, want 2 dispatches / 4 docs", s)
	}
	// Failed validation must not count as a dispatch.
	if _, err := eng.InferBatch([][]int32{{-1}}, 3, 1); err == nil {
		t.Fatal("invalid doc accepted")
	}
	if s := eng.Stats(); s.Dispatches != 2 {
		t.Fatalf("failed batch counted as dispatch: %+v", s)
	}
}

// TestInferSteadyStateAllocs is the allocation gate for the serving
// hot path: after warm-up, a single-doc batch must allocate only the
// result slices (θ̂ and the out slice), with chain scratch and RNG
// coming from the engine's pool.
func TestInferSteadyStateAllocs(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	// Best of a few attempts: a GC (or a race-detector-induced P
	// migration) mid-measurement can empty the scratch pool and charge a
	// refill to one attempt; the gate is that steady state is
	// *achievable*, not that the collector never runs.
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.InferBatch([][]int32{doc}, 5, 7); err != nil {
			t.Fatal(err)
		}
	})
	for try := 0; allocs > 4 && try < 4; try++ {
		if a := testing.AllocsPerRun(200, func() {
			if _, err := eng.InferBatch([][]int32{doc}, 5, 7); err != nil {
				t.Fatal(err)
			}
		}); a < allocs {
			allocs = a
		}
	}
	// out slice + theta + rounding slack; the pre-pool path allocated
	// scratch (z + cd) and an RNG on every call on top of these.
	if allocs > 4 {
		t.Errorf("steady-state single-doc InferBatch does %.1f allocs/op, want <= 4", allocs)
	}
}

// BenchmarkInferSingleDoc tracks the coalescable unit of serve-path
// work (one single-doc dispatch) with allocation reporting. Named
// outside the BenchmarkSample gate family on purpose: sub-microsecond
// serve-path numbers would flap the 25% throughput gate.
func BenchmarkInferSingleDoc(b *testing.B) {
	p, _ := trainedParams(b, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	doc := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.InferBatch([][]int32{doc}, 5, 7); err != nil {
			b.Fatal(err)
		}
	}
}
