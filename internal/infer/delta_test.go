package infer

import (
	"math/rand"
	"reflect"
	"testing"

	"warplda/internal/fsio"
)

// randomCounts builds a V×K count matrix with column-sum-consistent Ck,
// seeded deterministically.
func randomCounts(r *rand.Rand, v, k int) ([]int32, []int64) {
	cw := make([]int32, v*k)
	ck := make([]int64, k)
	for w := 0; w < v; w++ {
		for t := 0; t < k; t++ {
			if r.Intn(3) == 0 {
				c := int32(r.Intn(20) + 1)
				cw[w*k+t] = c
				ck[t] += int64(c)
			}
		}
	}
	return cw, ck
}

// perturb mutates nMut random cells of a copy of cw (bounded at zero),
// returning the new counts with recomputed Ck — a stand-in for one
// training checkpoint interval.
func perturb(r *rand.Rand, v, k int, cw []int32, nMut int) ([]int32, []int64) {
	nc := append([]int32(nil), cw...)
	for i := 0; i < nMut; i++ {
		idx := r.Intn(v * k)
		d := int32(r.Intn(7) - 3)
		if nc[idx]+d < 0 {
			d = -nc[idx]
		}
		nc[idx] += d
	}
	ck := make([]int64, k)
	for w := 0; w < v; w++ {
		for t := 0; t < k; t++ {
			ck[t] += int64(nc[w*k+t])
		}
	}
	return nc, ck
}

func deltaBetween(v, k int, oldCw []int32, oldCk []int64, newCw []int32, newCk []int64, gen int64) *fsio.ModelDelta {
	d := &fsio.ModelDelta{
		V: v, K: k, Gen: gen,
		BaseFP: fsio.ModelFingerprint(v, k, oldCw, oldCk),
		Iter:   gen * 10, LogLik: -1000 - float64(gen),
		Cells: fsio.DiffCounts(v, k, oldCw, newCw),
		Ck:    newCk,
	}
	d.NewFP = fsio.ChainFingerprint(d.BaseFP, d.Gen, d.Cells, d.Ck)
	return d
}

// assertEngineIdentical asserts the two engines are byte-identical in
// every query-visible structure: params, denominators, smoothing table,
// and every per-word alias table. This is strictly stronger than
// comparing inference outputs — identical tables make every future draw
// sequence identical for any (doc, seed, sweeps).
func assertEngineIdentical(t *testing.T, got, want *Engine) {
	t.Helper()
	if !reflect.DeepEqual(got.p, want.p) {
		t.Fatalf("params differ:\n got %+v\nwant %+v", got.p, want.p)
	}
	if !reflect.DeepEqual(got.ckBar, want.ckBar) {
		t.Fatal("ckBar differs")
	}
	if got.zbSmooth != want.zbSmooth {
		t.Fatalf("zbSmooth %v != %v", got.zbSmooth, want.zbSmooth)
	}
	if !reflect.DeepEqual(got.smooth, want.smooth) {
		t.Fatal("smoothing alias table differs")
	}
	if !reflect.DeepEqual(got.words, want.words) {
		for w := range got.words {
			if !reflect.DeepEqual(got.words[w], want.words[w]) {
				t.Fatalf("word %d alias table differs:\n got %+v\nwant %+v", w, got.words[w], want.words[w])
			}
		}
		t.Fatal("word tables differ")
	}
}

func TestApplyDeltaMatchesFreshEngine(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const v, k = 60, 8
	opts := Options{MHSteps: 2, Workers: 1}
	cw0, ck0 := randomCounts(r, v, k)
	base, err := NewEngine(Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw0, Ck: ck0}, opts)
	if err != nil {
		t.Fatal(err)
	}
	cw1, ck1 := perturb(r, v, k, cw0, 40)
	d := deltaBetween(v, k, cw0, ck0, cw1, ck1, 1)

	folded, rebuilt, err := base.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	fresh, err := NewEngine(Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw1, Ck: ck1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertEngineIdentical(t, folded, fresh)

	// The fold must actually share: with 40 mutations on a 60×8 matrix
	// some words stay untouched on every changed topic.
	if rebuilt >= v {
		t.Fatalf("rebuilt %d/%d words — no sharing happened", rebuilt, v)
	}
	// And rebuilt must match the touched-set definition computed
	// independently: cell-changed ∪ support-on-changed-topic.
	want := 0
	for w := 0; w < v; w++ {
		touched := false
		for tt := 0; tt < k && !touched; tt++ {
			if cw0[w*k+tt] != cw1[w*k+tt] || (ck0[tt] != ck1[tt] && cw0[w*k+tt] > 0) {
				touched = true
			}
		}
		if touched {
			want++
		}
	}
	if rebuilt != want {
		t.Fatalf("rebuilt %d words, touched-set definition says %d", rebuilt, want)
	}

	// Inference outputs must agree bit-for-bit (implied by the identity
	// above, asserted end-to-end for good measure).
	docs := [][]int32{{0, 1, 2, 3}, {5, 5, 9, 30, 59}, {}}
	for _, doc := range docs {
		for seed := uint64(0); seed < 3; seed++ {
			a, err := folded.Infer(doc, 5, seed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.Infer(doc, 5, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("Infer(%v, seed %d): folded %v != fresh %v", doc, seed, a, b)
			}
		}
	}
}

func TestApplyDeltaChain(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const v, k = 40, 6
	opts := Options{Workers: 1}
	cw, ck := randomCounts(r, v, k)
	eng, err := NewEngine(Params{V: v, K: k, Alpha: 0.2, Beta: 0.05, Cw: cw, Ck: ck}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for gen := int64(1); gen <= 4; gen++ {
		nc, nk := perturb(r, v, k, cw, 25)
		d := deltaBetween(v, k, cw, ck, nc, nk, gen)
		next, _, err := eng.ApplyDelta(d)
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		eng, cw, ck = next, nc, nk
	}
	fresh, err := NewEngine(Params{V: v, K: k, Alpha: 0.2, Beta: 0.05, Cw: cw, Ck: ck}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertEngineIdentical(t, eng, fresh)
}

func TestApplyDeltaEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const v, k = 20, 4
	cw, ck := randomCounts(r, v, k)
	base, err := NewEngine(Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw, Ck: ck}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := deltaBetween(v, k, cw, ck, cw, ck, 1)
	folded, rebuilt, err := base.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt != 0 {
		t.Fatalf("empty delta rebuilt %d words", rebuilt)
	}
	assertEngineIdentical(t, folded, base)
}

func TestApplyDeltaRejectsAndLeavesEngineUntouched(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	const v, k = 10, 3
	cw, ck := randomCounts(r, v, k)
	base, err := NewEngine(Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw, Ck: ck}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc := []int32{0, 1, 2}
	before, err := base.Infer(doc, 5, 7)
	if err != nil {
		t.Fatal(err)
	}

	good := func() *fsio.ModelDelta {
		nc, nk := perturb(rand.New(rand.NewSource(5)), v, k, cw, 6)
		return deltaBetween(v, k, cw, ck, nc, nk, 1)
	}
	cases := []struct {
		name   string
		mutate func(*fsio.ModelDelta)
	}{
		{"dims mismatch", func(d *fsio.ModelDelta) { d.V = v + 1 }},
		{"short Ck", func(d *fsio.ModelDelta) { d.Ck = d.Ck[:k-1] }},
		{"cell out of range", func(d *fsio.ModelDelta) {
			d.Cells = append(d.Cells, fsio.DeltaCell{W: int32(v), T: 0, Add: 1})
		}},
		{"negative result", func(d *fsio.ModelDelta) {
			d.Cells = []fsio.DeltaCell{{W: 0, T: 0, Add: -(cw[0] + 1)}}
		}},
		{"inconsistent Ck", func(d *fsio.ModelDelta) { d.Ck[0]++ }},
		{"negative Ck", func(d *fsio.ModelDelta) {
			d.Ck = append([]int64(nil), d.Ck...)
			d.Ck[0] = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := good()
			tc.mutate(d)
			if ne, _, err := base.ApplyDelta(d); err == nil {
				t.Fatalf("ApplyDelta accepted %s (engine %v)", tc.name, ne != nil)
			}
			after, err := base.Infer(doc, 5, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("rejected delta mutated the engine: %v -> %v", before, after)
			}
		})
	}
}
