package infer

import (
	"sync/atomic"
	"time"
)

// Gate extends the serve path's admission-control contract to work
// that does not flow through a Batcher — analytics queries, whose unit
// of work is a whole streamed response rather than one document. It
// enforces the same two rules with the same sentinel errors: a bounded
// number of admitted-but-unfinished requests per model (beyond it,
// fail fast with ErrQueueFull rather than queueing unbounded work),
// and deadline shedding (a request whose X-Deadline-Ms budget passes
// before a slot frees is dropped with ErrDeadlineExceeded instead of
// consuming engine time the client has given up on).
type Gate struct {
	slots chan struct{}

	admitted     atomic.Int64
	shedFull     atomic.Int64
	shedDeadline atomic.Int64
}

// GateStats are a Gate's cumulative counters, exposed on GET /stats
// next to the per-model BatcherStats.
type GateStats struct {
	// Admitted counts requests that got a slot.
	Admitted int64 `json:"admitted"`
	// Active is the number of slots currently held.
	Active int `json:"active"`
	// ShedQueueFull counts requests refused because every slot was
	// held and the request carried no deadline to wait under;
	// ShedDeadline counts requests whose deadline passed first.
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
}

// NewGate builds a gate admitting at most depth concurrent requests.
// depth <= 0 means 256, matching BatcherOptions.QueueDepth's default.
func NewGate(depth int) *Gate {
	if depth <= 0 {
		depth = 256
	}
	return &Gate{slots: make(chan struct{}, depth)}
}

// Enter admits one request and returns its release function. A zero
// deadline means the caller will not wait: if every slot is held,
// Enter fails immediately with ErrQueueFull. With a deadline, Enter
// waits for a slot until the deadline and then sheds with
// ErrDeadlineExceeded. The release function must be called exactly
// once, after the request's work (including response streaming) is
// done.
func (g *Gate) Enter(deadline time.Time) (release func(), err error) {
	if !deadline.IsZero() && time.Now().After(deadline) {
		g.shedDeadline.Add(1)
		return nil, ErrDeadlineExceeded
	}
	select {
	case g.slots <- struct{}{}:
	default:
		if deadline.IsZero() {
			g.shedFull.Add(1)
			return nil, ErrQueueFull
		}
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		select {
		case g.slots <- struct{}{}:
		case <-timer.C:
			g.shedDeadline.Add(1)
			return nil, ErrDeadlineExceeded
		}
	}
	g.admitted.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			<-g.slots
		}
	}, nil
}

// Stats returns the gate's cumulative counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Admitted:      g.admitted.Load(),
		Active:        len(g.slots),
		ShedQueueFull: g.shedFull.Load(),
		ShedDeadline:  g.shedDeadline.Load(),
	}
}
