package infer

import (
	"math"
	"testing"
)

func sparseTestEngine(t testing.TB, v, k int) *Engine {
	t.Helper()
	cw := make([]int32, v*k)
	ck := make([]int64, k)
	for w := 0; w < v; w++ {
		for j := 0; j < k; j++ {
			c := int32((w*31+j*7)%5) * 20
			cw[w*k+j] = c
			ck[j] += int64(c)
		}
	}
	e, err := NewEngine(Params{V: v, K: k, Alpha: 0.1, Beta: 0.01, Cw: cw, Ck: ck}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInferSparseMatchesDense pins the contract internal/query relies
// on: a document's sparse mixture is the unsmoothed restriction of the
// same chain the dense path runs — same seed derivation, same final
// assignments — so sparse weight w_k equals (θ̂_k·(L+ᾱ) − α)/L for
// every occupied topic, and absent topics have exactly that dense
// smoothing floor.
func TestInferSparseMatchesDense(t *testing.T) {
	e := sparseTestEngine(t, 60, 8)
	doc := []int32{3, 17, 17, 42, 9, 33, 3, 55, 21, 8}
	const sweeps, seed = 7, 99

	sparse, err := e.InferSparse(doc, sweeps, seed)
	if err != nil {
		t.Fatal(err)
	}
	denseBatch, err := e.InferBatch([][]int32{doc}, sweeps, seed)
	if err != nil {
		t.Fatal(err)
	}
	dense := denseBatch[0]

	l := float64(len(doc))
	alphaBar := e.Alpha() * float64(e.K())
	fromDense := make(map[int32]float64)
	for k, th := range dense {
		// Invert the smoothing: count_k/L = (θ̂_k·(L+ᾱ) − α)/L.
		w := (th*(l+alphaBar) - e.Alpha()) / l
		if w > 1e-9 {
			fromDense[int32(k)] = w
		}
	}
	if len(sparse) != len(fromDense) {
		t.Fatalf("sparse has %d topics, dense implies %d", len(sparse), len(fromDense))
	}
	var sum float64
	for i, entry := range sparse {
		want, ok := fromDense[entry.Topic]
		if !ok {
			t.Fatalf("sparse topic %d absent from dense result", entry.Topic)
		}
		if math.Abs(entry.Weight-want) > 1e-9 {
			t.Fatalf("topic %d: sparse %g, dense-implied %g", entry.Topic, entry.Weight, want)
		}
		if i > 0 && sparse[i-1].Topic >= entry.Topic {
			t.Fatal("sparse entries not sorted by topic")
		}
		sum += entry.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sparse weights sum to %g", sum)
	}
}

func TestInferSparseDeterministic(t *testing.T) {
	e := sparseTestEngine(t, 40, 6)
	doc := []int32{1, 2, 3, 5, 8, 13, 21, 34}
	a, err := e.InferSparse(doc, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.InferSparse(doc, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestInferSparseValidation(t *testing.T) {
	e := sparseTestEngine(t, 20, 4)
	if _, err := e.InferSparse([]int32{20}, 3, 1); err == nil {
		t.Fatal("out-of-range token accepted")
	}
	if _, err := e.InferSparse([]int32{-1}, 3, 1); err == nil {
		t.Fatal("negative token accepted")
	}
	theta, err := e.InferSparse(nil, 3, 1)
	if err != nil || theta != nil {
		t.Fatalf("empty doc: theta=%v err=%v", theta, err)
	}
}

func TestSparseDotAndCosine(t *testing.T) {
	a := []ThetaEntry{{0, 0.5}, {2, 0.5}}
	b := []ThetaEntry{{1, 0.5}, {2, 0.5}}
	if got := SparseDot(a, b); got != 0.25 {
		t.Fatalf("dot = %g", got)
	}
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-cosine = %g", got)
	}
	if got := Cosine(a, nil); got != 0 {
		t.Fatalf("cosine vs empty = %g", got)
	}
	disjoint := []ThetaEntry{{5, 1}}
	if got := Cosine(a, disjoint); got != 0 {
		t.Fatalf("disjoint cosine = %g", got)
	}
}
