package infer_test

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"warplda/internal/infer"
)

// engineDispatch adapts an engine to the Batcher's Dispatch shape the
// way the serve layer does, tagging every batch with a fixed tag.
func engineDispatch(e *infer.Engine, seed uint64, tag any) infer.Dispatch {
	return func(docs [][]int32, sweeps []int) ([][]float64, any, error) {
		thetas, err := e.InferBatchSweeps(docs, sweeps, seed)
		return thetas, tag, err
	}
}

// TestBatcherCoalescesConcurrentRequests is the coalescing acceptance
// test: N concurrent single-doc requests through the batcher are
// answered from fewer than N engine dispatches (observable via engine
// stats), and every request's result is byte-identical to uncoalesced
// inference with the same seed. Run under -race in CI.
func TestBatcherCoalescesConcurrentRequests(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	const n = 8
	docs := make([][]int32, n)
	for i := range docs {
		docs[i] = []int32{int32(i), int32(i + 1), int32(i + 2), 0, 1}
	}
	// Uncoalesced golden answers first (counted separately).
	want := make([][]float64, n)
	for i, doc := range docs {
		out, err := eng.InferBatch([][]int32{doc}, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out[0]
	}
	base := eng.Stats()

	b := infer.NewBatcher(engineDispatch(eng, seed, "tag"), infer.BatcherOptions{
		MaxBatch: n, Linger: 100 * time.Millisecond,
	})
	defer b.Close()

	var wg sync.WaitGroup
	got := make([][]float64, n)
	tags := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], tags[i], errs[i] = b.Do(docs[i], 5, time.Time{})
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if tags[i] != "tag" {
			t.Fatalf("request %d: tag %v", i, tags[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("request %d: coalesced result differs from uncoalesced inference", i)
		}
	}
	dispatches := eng.Stats().Dispatches - base.Dispatches
	if dispatches >= n {
		t.Errorf("%d requests took %d engine dispatches; coalescing never happened", n, dispatches)
	}
	if docsRun := eng.Stats().Docs - base.Docs; docsRun != n {
		t.Errorf("engine ran %d docs, want %d", docsRun, n)
	}
	st := b.Stats()
	if st.Submitted != n || st.BatchedDocs != n || st.Batches >= n || st.MaxBatchSeen < 2 {
		t.Errorf("batcher stats %+v inconsistent with coalescing %d requests", st, n)
	}
	t.Logf("%d requests in %d dispatches (max batch %d)", n, dispatches, st.MaxBatchSeen)
}

// gatedDispatch blocks every dispatch until release is closed,
// signalling entry on entered.
func gatedDispatch(entered chan<- struct{}, release <-chan struct{}) infer.Dispatch {
	return func(docs [][]int32, sweeps []int) ([][]float64, any, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		out := make([][]float64, len(docs))
		for i := range out {
			out[i] = []float64{1}
		}
		return out, nil, nil
	}
}

// startBlockedBatcher builds a batcher whose first request is stuck in
// dispatch (collector busy), so subsequent requests queue.
func startBlockedBatcher(t *testing.T, opts infer.BatcherOptions) (b *infer.Batcher, release chan struct{}, firstDone chan error) {
	t.Helper()
	entered := make(chan struct{}, 1)
	release = make(chan struct{})
	b = infer.NewBatcher(gatedDispatch(entered, release), opts)
	firstDone = make(chan error, 1)
	go func() {
		_, _, err := b.Do([]int32{0}, 1, time.Time{})
		firstDone <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never entered")
	}
	return b, release, firstDone
}

// waitQueueLen polls until the admission queue holds n requests.
func waitQueueLen(t *testing.T, b *infer.Batcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.QueueLen() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, b.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBatcherQueueFullSheds(t *testing.T) {
	b, release, firstDone := startBlockedBatcher(t, infer.BatcherOptions{
		MaxBatch: 1, Linger: time.Millisecond, QueueDepth: 2,
	})
	defer b.Close()

	// Two requests fill the depth-2 queue behind the stuck dispatch.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := b.Do([]int32{1}, 1, time.Time{})
			results <- err
		}()
	}
	waitQueueLen(t, b, 2)

	// The third is refused at admission, immediately.
	if _, _, err := b.Do([]int32{2}, 1, time.Time{}); !errors.Is(err, infer.ErrQueueFull) {
		t.Fatalf("over-capacity request got %v, want ErrQueueFull", err)
	}
	if st := b.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}

	// Unblock: everything admitted completes.
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request: %v", err)
		}
	}
}

func TestBatcherDeadlineShedsQueuedWork(t *testing.T) {
	b, release, firstDone := startBlockedBatcher(t, infer.BatcherOptions{
		MaxBatch: 1, Linger: time.Millisecond, QueueDepth: 8,
	})
	defer b.Close()

	// One request with a short deadline queues behind the stuck
	// dispatch; its deadline passes before the collector reaches it.
	expired := make(chan error, 1)
	go func() {
		_, _, err := b.Do([]int32{1}, 1, time.Now().Add(20*time.Millisecond))
		expired <- err
	}()
	// One without a deadline must survive the same wait.
	patient := make(chan error, 1)
	go func() {
		_, _, err := b.Do([]int32{2}, 1, time.Time{})
		patient <- err
	}()
	waitQueueLen(t, b, 2)
	time.Sleep(40 * time.Millisecond)
	close(release)

	if err := <-expired; !errors.Is(err, infer.ErrDeadlineExceeded) {
		t.Fatalf("expired request got %v, want ErrDeadlineExceeded", err)
	}
	if err := <-patient; err != nil {
		t.Fatalf("patient request: %v", err)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	if st := b.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
	// A request already past deadline is shed at admission, before
	// queueing.
	if _, _, err := b.Do([]int32{3}, 1, time.Now().Add(-time.Second)); !errors.Is(err, infer.ErrDeadlineExceeded) {
		t.Fatalf("pre-expired request got %v", err)
	}
}

// TestBatcherCloseDrainsQueuedWork pins the drain contract: Close
// refuses new requests but completes everything already admitted.
func TestBatcherCloseDrainsQueuedWork(t *testing.T) {
	b, release, firstDone := startBlockedBatcher(t, infer.BatcherOptions{
		MaxBatch: 4, Linger: time.Millisecond, QueueDepth: 8,
	})
	const queued = 3
	results := make(chan error, queued)
	for i := 0; i < queued; i++ {
		go func() {
			_, _, err := b.Do([]int32{1}, 1, time.Time{})
			results <- err
		}()
	}
	waitQueueLen(t, b, queued)

	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	for i := 0; i < queued; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request errored during drain: %v", err)
		}
	}
	if _, _, err := b.Do([]int32{1}, 1, time.Time{}); !errors.Is(err, infer.ErrBatcherClosed) {
		t.Fatalf("post-close request got %v, want ErrBatcherClosed", err)
	}
	b.Close() // idempotent
}

// TestBatcherFallbackIsolatesBadDoc: one invalid document coalesced
// with valid ones fails alone; its neighbors still get answers.
func TestBatcherFallbackIsolatesBadDoc(t *testing.T) {
	p, _ := trainedParams(t, 0.1)
	eng, err := infer.NewEngine(p, infer.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := infer.NewBatcher(engineDispatch(eng, 7, nil), infer.BatcherOptions{
		MaxBatch: 4, Linger: 100 * time.Millisecond,
	})
	defer b.Close()

	var wg sync.WaitGroup
	var goodErr, badErr error
	var goodTheta []float64
	wg.Add(2)
	go func() {
		defer wg.Done()
		goodTheta, _, goodErr = b.Do([]int32{0, 1, 2}, 3, time.Time{})
	}()
	go func() {
		defer wg.Done()
		_, _, badErr = b.Do([]int32{int32(p.V) + 5}, 3, time.Time{})
	}()
	wg.Wait()

	if goodErr != nil || len(goodTheta) != p.K {
		t.Fatalf("good request: theta len %d, err %v", len(goodTheta), goodErr)
	}
	if badErr == nil {
		t.Fatal("invalid doc request succeeded")
	}
	if st := b.Stats(); st.Fallbacks == 0 {
		t.Log("requests did not coalesce (timing); fallback path not exercised")
	}
}

// TestBatcherUnderConcurrentLoad hammers a batcher from many
// goroutines (race coverage for the stats counters and the
// collect/drain machinery) and checks conservation: every submitted
// request is answered exactly once.
func TestBatcherUnderConcurrentLoad(t *testing.T) {
	var calls atomic.Int64
	dispatch := func(docs [][]int32, sweeps []int) ([][]float64, any, error) {
		calls.Add(1)
		out := make([][]float64, len(docs))
		for i := range out {
			out[i] = []float64{float64(len(docs))}
		}
		return out, nil, nil
	}
	b := infer.NewBatcher(dispatch, infer.BatcherOptions{MaxBatch: 8, Linger: 200 * time.Microsecond, QueueDepth: 64})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_, _, err := b.Do([]int32{0}, 1, time.Time{})
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, infer.ErrQueueFull):
					shed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	b.Close()
	if got := ok.Load() + shed.Load(); got != workers*per {
		t.Fatalf("answered %d of %d requests", got, workers*per)
	}
	st := b.Stats()
	if st.BatchedDocs != ok.Load() || st.Submitted != ok.Load() {
		t.Fatalf("stats %+v vs %d completed", st, ok.Load())
	}
	if calls.Load() != st.Batches {
		t.Fatalf("dispatch calls %d != batches %d", calls.Load(), st.Batches)
	}
}
