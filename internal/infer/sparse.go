package infer

import (
	"math"
	"sort"
)

// This file is the analytics-side view of the fold-in engine: instead
// of a dense θ̂ over all K topics, InferSparse returns only the topics
// the chain actually assigned tokens to — at most min(K, len(doc))
// entries. internal/query composes these into similar-document search
// (sparse dot products touch only the entries both documents share)
// and top-documents-per-topic ranking without ever allocating K floats
// per candidate document.

// ThetaEntry is one non-zero component of a sparse topic mixture:
// Weight is the fraction of the document's tokens assigned to Topic
// (unsmoothed, so absent topics are exactly zero and the weights of
// one document sum to 1). Entries are sorted by Topic.
type ThetaEntry struct {
	Topic  int32   `json:"topic"`
	Weight float64 `json:"weight"`
}

// SparseDot returns the dot product of two sparse mixtures, both
// sorted by topic, via a linear two-pointer merge.
func SparseDot(a, b []ThetaEntry) float64 {
	var dot float64
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i].Topic < b[j].Topic:
			i++
		case a[i].Topic > b[j].Topic:
			j++
		default:
			dot += a[i].Weight * b[j].Weight
			i++
			j++
		}
	}
	return dot
}

// Cosine returns the cosine similarity of two sparse mixtures (0 when
// either is empty).
func Cosine(a, b []ThetaEntry) float64 {
	var na, nb float64
	for _, e := range a {
		na += e.Weight * e.Weight
	}
	for _, e := range b {
		nb += e.Weight * e.Weight
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return SparseDot(a, b) / (math.Sqrt(na) * math.Sqrt(nb))
}

// InferSparse folds doc in and returns its sparse topic mixture: only
// the topics holding at least one assigned token after the final
// sweep, sorted by topic id. The per-document RNG seed is derived from
// (seed, doc content) exactly as the batched dense path derives it, so
// the result is deterministic in (doc, sweeps, seed) alone and
// consistent with InferBatch: a document's sparse mixture is the
// unsmoothed restriction of its dense θ̂ to its occupied topics. An
// empty document returns nil.
func (e *Engine) InferSparse(doc []int32, sweeps int, seed uint64) ([]ThetaEntry, error) {
	if err := e.validateDoc(doc); err != nil {
		return nil, err
	}
	e.statDispatches.Add(1)
	e.statDocs.Add(1)
	if len(doc) == 0 {
		return nil, nil
	}
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.r.Seed(docSeed(seed, doc))
	e.runChain(doc, sweeps, sc.r, sc)
	return sparseTheta(sc.cd, len(doc)), nil
}

// sparseTheta extracts the non-zero entries of the doc-topic counts.
func sparseTheta(cd []int32, ld int) []ThetaEntry {
	var out []ThetaEntry
	inv := 1 / float64(ld)
	for k, c := range cd {
		if c > 0 {
			out = append(out, ThetaEntry{Topic: int32(k), Weight: float64(c) * inv})
		}
	}
	// cd is scanned in topic order, so out is already sorted; the sort
	// is a no-op safeguard for future extraction paths.
	sort.Slice(out, func(i, j int) bool { return out[i].Topic < out[j].Topic })
	return out
}
