package infer

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the serve path's request coalescer: a Batcher collects
// concurrent single-document requests into one worker-pool dispatch
// (amortizing dispatch overhead and alias-table cache locality across
// requests) behind a bounded deadline-aware admission queue. It is
// deliberately generic over a Dispatch function rather than an *Engine
// so the HTTP layer can resolve the current model snapshot once per
// batch — a hot swap lands between batches, never inside one.

// Sentinel errors the admission queue sheds requests with. All three
// are retryable conditions the HTTP layer maps to 503 + Retry-After.
var (
	// ErrQueueFull rejects a request at admission: the per-model queue
	// is at capacity, so accepting more work would only grow memory and
	// worsen everyone's latency.
	ErrQueueFull = errors.New("infer: admission queue is full")
	// ErrDeadlineExceeded sheds a request whose deadline passed while
	// it waited in the queue: the client has given up, so inferring for
	// it would be pure waste under overload.
	ErrDeadlineExceeded = errors.New("infer: request deadline exceeded while queued")
	// ErrBatcherClosed refuses requests after Close.
	ErrBatcherClosed = errors.New("infer: batcher is closed")
)

// Dispatch runs one coalesced batch: one sweep count per document,
// one θ̂ per document in order. The returned tag is handed back to
// every request in the batch unchanged (the serve layer passes the
// model snapshot that answered, so responses can report the version).
type Dispatch func(docs [][]int32, sweeps []int) (thetas [][]float64, tag any, err error)

// BatcherOptions tune a Batcher. The zero value picks the defaults
// documented per field.
type BatcherOptions struct {
	// MaxBatch caps the documents per dispatch. 0 means 32.
	MaxBatch int
	// Linger is how long a forming batch waits for more requests after
	// its first before dispatching anyway. 0 means 1ms. The linger is
	// a latency floor only under light load — a full batch dispatches
	// immediately.
	Linger time.Duration
	// QueueDepth bounds the admission queue (requests admitted but not
	// yet dispatched). 0 means 256. Beyond it, Do fails fast with
	// ErrQueueFull.
	QueueDepth int
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Linger <= 0 {
		o.Linger = time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// BatcherStats are cumulative counters, exposed via the serve /stats
// endpoint and asserted on by the coalescing tests.
type BatcherStats struct {
	// Submitted counts requests admitted to the queue.
	Submitted int64 `json:"submitted"`
	// Batches counts dispatches issued; BatchedDocs the documents they
	// carried. BatchedDocs/Batches is the realized coalescing factor.
	Batches     int64 `json:"batches"`
	BatchedDocs int64 `json:"batched_docs"`
	// MaxBatchSeen is the largest single dispatch so far.
	MaxBatchSeen int64 `json:"max_batch_seen"`
	// ShedQueueFull counts requests refused at admission; ShedDeadline
	// counts requests dropped because their deadline passed in queue.
	ShedQueueFull int64 `json:"shed_queue_full"`
	ShedDeadline  int64 `json:"shed_deadline"`
	// Fallbacks counts per-request isolation dispatches after a failed
	// multi-doc batch (one bad document must not fail its neighbors).
	Fallbacks int64 `json:"fallbacks"`
}

type batchReq struct {
	doc      []int32
	sweeps   int
	deadline time.Time // zero = no deadline
	done     chan batchOut
}

type batchOut struct {
	theta []float64
	tag   any
	err   error
}

// Batcher coalesces concurrent single-document requests into batched
// dispatches. Safe for concurrent use; create with NewBatcher, stop
// with Close.
type Batcher struct {
	dispatch Dispatch
	opts     BatcherOptions
	queue    chan *batchReq
	stop     chan struct{}
	done     chan struct{}

	mu     sync.RWMutex // guards closed vs. in-flight enqueues
	closed bool

	submitted     atomic.Int64
	batches       atomic.Int64
	batchedDocs   atomic.Int64
	maxBatchSeen  atomic.Int64
	shedQueueFull atomic.Int64
	shedDeadline  atomic.Int64
	fallbacks     atomic.Int64
}

// NewBatcher starts a batcher over dispatch. The caller owns stopping
// it with Close.
func NewBatcher(dispatch Dispatch, opts BatcherOptions) *Batcher {
	b := &Batcher{
		dispatch: dispatch,
		opts:     opts.withDefaults(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	b.queue = make(chan *batchReq, b.opts.QueueDepth)
	go b.run()
	return b
}

// Do submits one document and blocks until its result. A zero
// deadline means none; a deadline in the past (at admission or by
// dispatch time) sheds the request with ErrDeadlineExceeded. When the
// queue is full Do fails immediately with ErrQueueFull instead of
// blocking — admission control, not backpressure.
func (b *Batcher) Do(doc []int32, sweeps int, deadline time.Time) ([]float64, any, error) {
	if !deadline.IsZero() && time.Now().After(deadline) {
		b.shedDeadline.Add(1)
		return nil, nil, ErrDeadlineExceeded
	}
	req := &batchReq{doc: doc, sweeps: sweeps, deadline: deadline, done: make(chan batchOut, 1)}
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, nil, ErrBatcherClosed
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.shedQueueFull.Add(1)
		return nil, nil, ErrQueueFull
	}
	b.submitted.Add(1)
	out := <-req.done
	return out.theta, out.tag, out.err
}

// QueueLen is the current admission-queue depth (requests admitted,
// not yet picked up by the collector).
func (b *Batcher) QueueLen() int { return len(b.queue) }

// Stats returns the cumulative counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Submitted:     b.submitted.Load(),
		Batches:       b.batches.Load(),
		BatchedDocs:   b.batchedDocs.Load(),
		MaxBatchSeen:  b.maxBatchSeen.Load(),
		ShedQueueFull: b.shedQueueFull.Load(),
		ShedDeadline:  b.shedDeadline.Load(),
		Fallbacks:     b.fallbacks.Load(),
	}
}

// Close stops admission (further Do calls fail with ErrBatcherClosed),
// completes every request already queued — a drain must answer
// admitted work, not drop it — and waits for the collector to exit.
// Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

// run is the collector goroutine: take one request, linger for more,
// dispatch, repeat. On stop it drains the queue (everything admitted
// before Close completes) and exits.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			b.drainQueue()
			return
		case r := <-b.queue:
			b.collectAndDispatch(r)
		}
	}
}

// collectAndDispatch forms a batch starting from first: up to MaxBatch
// requests, waiting at most Linger past the first. Stop cuts the
// linger short (the batch still dispatches; the queue drain follows in
// run).
func (b *Batcher) collectAndDispatch(first *batchReq) {
	reqs := make([]*batchReq, 1, b.opts.MaxBatch)
	reqs[0] = first
	timer := time.NewTimer(b.opts.Linger)
	defer timer.Stop()
collect:
	for len(reqs) < b.opts.MaxBatch {
		select {
		case r := <-b.queue:
			reqs = append(reqs, r)
		case <-timer.C:
			break collect
		case <-b.stop:
			break collect
		}
	}
	b.dispatchBatch(reqs)
}

// drainQueue dispatches whatever is still queued at Close time, in
// MaxBatch-sized groups with no linger.
func (b *Batcher) drainQueue() {
	for {
		select {
		case r := <-b.queue:
			reqs := make([]*batchReq, 1, b.opts.MaxBatch)
			reqs[0] = r
		fill:
			for len(reqs) < b.opts.MaxBatch {
				select {
				case r2 := <-b.queue:
					reqs = append(reqs, r2)
				default:
					break fill
				}
			}
			b.dispatchBatch(reqs)
		default:
			return
		}
	}
}

// dispatchBatch sheds queue-expired requests, dispatches the rest as
// one batch, and distributes the results. A failed multi-doc dispatch
// falls back to per-request dispatches so an invalid document (a
// caller error) cannot fail the requests coalesced next to it.
func (b *Batcher) dispatchBatch(reqs []*batchReq) {
	now := time.Now()
	live := reqs[:0]
	for _, r := range reqs {
		if !r.deadline.IsZero() && now.After(r.deadline) {
			b.shedDeadline.Add(1)
			r.done <- batchOut{err: ErrDeadlineExceeded}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	docs := make([][]int32, len(live))
	sweeps := make([]int, len(live))
	for i, r := range live {
		docs[i] = r.doc
		sweeps[i] = r.sweeps
	}
	b.batches.Add(1)
	b.batchedDocs.Add(int64(len(live)))
	for {
		m := b.maxBatchSeen.Load()
		if int64(len(live)) <= m || b.maxBatchSeen.CompareAndSwap(m, int64(len(live))) {
			break
		}
	}
	thetas, tag, err := b.dispatch(docs, sweeps)
	if err != nil || len(thetas) != len(live) {
		if len(live) == 1 {
			if err == nil {
				err = errors.New("infer: dispatch returned wrong result count")
			}
			live[0].done <- batchOut{err: err}
			return
		}
		for _, r := range live {
			b.fallbacks.Add(1)
			th, tg, e := b.dispatch([][]int32{r.doc}, []int{r.sweeps})
			if e == nil && len(th) != 1 {
				e = errors.New("infer: dispatch returned wrong result count")
			}
			if e != nil {
				r.done <- batchOut{err: e}
				continue
			}
			r.done <- batchOut{theta: th[0], tag: tg}
		}
		return
	}
	for i, r := range live {
		r.done <- batchOut{theta: thetas[i], tag: tag}
	}
}
