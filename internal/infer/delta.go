package infer

// Copy-on-write incremental refresh. ApplyDelta folds a WARPDLT delta
// (changed C_wk cells + new C_k vector) into a served engine by
// building a NEW engine that shares every untouched per-word alias
// table with the old one, so the ongoing requests against the old
// engine and the fold never observe each other. The serve layer swaps
// the returned engine in atomically, exactly like a warm-prefetch
// reload — the request path never pays a cold O(V·K) build.
//
// Which words must be rebuilt is subtler than "words with changed
// cells": the per-word proposal weights are C_wk/(C_k+β̄), so a word's
// table is stale whenever ANY topic it has support on changed its
// global count C_k — which continued training almost always does
// broadly. Byte-identical equivalence with a freshly built engine (the
// property the equivalence suite enforces) therefore requires
// rebuilding
//
//	touched(w) ⇔ some cell (w,·) changed ∨ ∃k: C_k changed ∧ C_wk > 0
//
// and sharing the rest. Untouched words see bit-identical inputs to
// alias.SparseTable.Build, and the build is deterministic, so sharing
// the old table IS the fresh table. The shared smoothing table and
// C_k+β̄ row are rebuilt unconditionally (O(K), trivial).

import (
	"fmt"

	"warplda/internal/fsio"
)

// Counts returns the engine's backing count slices (C_wk row-major by
// word, and C_k). They are the engine's own state: callers must treat
// them as read-only. The serving layer uses them to derive the model
// view of a freshly folded engine without duplicating the matrices.
func (e *Engine) Counts() ([]int32, []int64) { return e.p.Cw, e.p.Ck }

// ApplyDelta returns a new engine with d folded in, plus the number of
// per-word alias tables it had to rebuild. The receiver is not
// modified and remains fully usable; on error it is untouched and the
// returned engine is nil. The new engine inherits the receiver's
// MHSteps/Workers options and starts with fresh serving counters.
//
// d must target this engine's state: matching dims, in-range cells,
// non-negative folded counts, and a new C_k consistent with the cell
// adds per topic. Chain-level checks (fingerprints, generation
// contiguity) are the caller's job — the registry validates the chain
// before folding.
func (e *Engine) ApplyDelta(d *fsio.ModelDelta) (*Engine, int, error) {
	p := e.p
	if d.V != p.V || d.K != p.K {
		return nil, 0, fmt.Errorf("infer: delta dims %d×%d against a %d×%d engine", d.V, d.K, p.V, p.K)
	}
	if len(d.Ck) != p.K {
		return nil, 0, fmt.Errorf("infer: delta has %d topic counts, want %d", len(d.Ck), p.K)
	}

	// Fold the cells into a private copy of C_wk, tracking the per-topic
	// sum of adds so the redundant C_k vector can be cross-checked.
	newCw := make([]int32, len(p.Cw))
	copy(newCw, p.Cw)
	sumAdds := make([]int64, p.K)
	cellTouched := make([]bool, p.V)
	for i, c := range d.Cells {
		if c.W < 0 || int(c.W) >= p.V || c.T < 0 || int(c.T) >= p.K {
			return nil, 0, fmt.Errorf("infer: delta cell %d = (%d,%d) outside %d×%d", i, c.W, c.T, p.V, p.K)
		}
		idx := int(c.W)*p.K + int(c.T)
		nv := newCw[idx] + c.Add
		if nv < 0 {
			return nil, 0, fmt.Errorf("infer: delta cell %d drives C[%d,%d] negative (%d%+d)", i, c.W, c.T, newCw[idx], c.Add)
		}
		newCw[idx] = nv
		sumAdds[c.T] += int64(c.Add)
		cellTouched[c.W] = true
	}
	newCk := make([]int64, p.K)
	copy(newCk, d.Ck)
	var ckChanged []int
	for k := 0; k < p.K; k++ {
		if newCk[k] < 0 {
			return nil, 0, fmt.Errorf("infer: delta topic count Ck[%d] = %d, want >= 0", k, newCk[k])
		}
		if newCk[k] != p.Ck[k]+sumAdds[k] {
			return nil, 0, fmt.Errorf("infer: delta Ck[%d] = %d inconsistent with cell adds (%d%+d)", k, newCk[k], p.Ck[k], sumAdds[k])
		}
		if newCk[k] != p.Ck[k] {
			ckChanged = append(ckChanged, k)
		}
	}

	ne := &Engine{
		p:        Params{V: p.V, K: p.K, Alpha: p.Alpha, Beta: p.Beta, Cw: newCw, Ck: newCk},
		alphaBar: e.alphaBar,
		ckBar:    make([]float64, p.K),
		words:    make([]wordTab, p.V),
		mh:       e.mh,
		workers:  e.workers,
	}
	betaBar := p.Beta * float64(p.V)
	smoothW := make([]float64, p.K)
	for k := 0; k < p.K; k++ {
		ne.ckBar[k] = float64(newCk[k]) + betaBar
		smoothW[k] = p.Beta / ne.ckBar[k]
		ne.zbSmooth += smoothW[k]
	}
	ne.smooth.Build(smoothW)

	rebuilt := 0
	var topics []int32
	var weights []float64
	for w := 0; w < p.V; w++ {
		touched := cellTouched[w]
		if !touched {
			// The word's cells are unchanged; its table is stale only if
			// a topic it has support on changed its denominator C_k+β̄.
			row := p.Cw[w*p.K : (w+1)*p.K]
			for _, k := range ckChanged {
				if row[k] > 0 {
					touched = true
					break
				}
			}
		}
		if !touched {
			// Bit-identical inputs ⇒ the old table IS what a fresh build
			// would produce; share it (struct copy shares the backing
			// slices, which are read-only after construction).
			ne.words[w] = e.words[w]
			continue
		}
		rebuilt++
		row := newCw[w*p.K : (w+1)*p.K]
		topics, weights = topics[:0], weights[:0]
		var za float64
		for k, c := range row {
			if c > 0 {
				q := float64(c) / ne.ckBar[k]
				topics = append(topics, int32(k))
				weights = append(weights, q)
				za += q
			}
		}
		if len(topics) > 0 {
			ne.words[w].tab.Build(topics, weights)
		}
		ne.words[w].za = za
	}
	return ne, rebuilt, nil
}
