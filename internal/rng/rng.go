// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all samplers in this repository.
//
// LDA samplers draw billions of random numbers; math/rand's global source
// is locked and the default Source is slower than needed. RNG here is a
// xoshiro256** generator seeded via splitmix64, which passes BigCrush and
// costs a handful of arithmetic instructions per draw. Every component of
// the system takes an explicit *RNG so experiments are reproducible from a
// single seed.
package rng

import "math"

// RNG is a xoshiro256** pseudo-random number generator. The zero value is
// not a valid generator; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is the recommended seeding procedure for xoshiro generators: it
// guarantees the four state words are not all zero and are well mixed
// even for small consecutive seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if it had been created by New(seed).
func (r *RNG) Seed(seed uint64) {
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
	r.s2 = splitmix64(&seed)
	r.s3 = splitmix64(&seed)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// (Paper Alg 2 calls this Dice(n).)
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids the
	// modulo instruction on the fast path.
	v := uint64(uint32(n))
	x := uint64(r.Uint32()) * v
	if lo := uint32(x); lo < uint32(n) {
		thresh := uint32(-v) % uint32(v)
		for lo < thresh {
			x = uint64(r.Uint32()) * v
			lo = uint32(x)
		}
	}
	return int(x >> 32)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exponential returns an exponentially distributed value with rate 1.
func (r *RNG) Exponential() float64 {
	// -log(1-U) with U in [0,1); 1-U is in (0,1] so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Gamma returns a Gamma(shape, 1) distributed value using the
// Marsaglia–Tsang method (for shape >= 1) with the standard boost for
// shape < 1. Used by the synthetic corpus generator to draw Dirichlet
// vectors.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Normal returns a standard normal variate (polar Box–Muller without
// caching the spare, to keep the generator state a pure function of the
// draw count).
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Dirichlet fills out with a sample from Dirichlet(alpha, ..., alpha) of
// dimension len(out). out must be non-empty.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	var sum float64
	for i := range out {
		g := r.Gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Extremely small alpha can underflow every gamma draw; fall back
		// to a one-hot sample, which is the correct limit distribution.
		out[r.Intn(len(out))] = 1
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// Split returns a new generator seeded from this one's stream. Use it to
// hand independent streams to worker goroutines.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Derive returns a generator deterministically derived from seed and a
// sequence of salts. It is the documented reseeding strategy for
// *elastic* checkpoint resume: when a run restarts with a different
// worker count, the saved per-worker streams no longer map one-to-one
// onto workers, so each new worker w of p total resuming at iteration i
// draws its stream from Derive(seed, i, p, w). The derivation folds
// every salt through one splitmix64 step (the same mixer New uses), so
// streams for different (iteration, worker-count, worker) triples are
// statistically independent of each other and of every Split stream,
// while identical inputs always yield the identical stream — resuming
// the same checkpoint into the same topology twice is deterministic.
func Derive(seed uint64, salts ...uint64) *RNG {
	x := seed
	for _, s := range salts {
		x ^= s + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = splitmix64(&x)
	}
	return New(x)
}

// State returns the generator's four state words. Together with SetState
// it lets long-running samplers checkpoint and resume their random
// streams bit-identically: a generator restored from a saved state
// produces exactly the draws the original would have produced next.
func (r *RNG) State() [4]uint64 {
	return [4]uint64{r.s0, r.s1, r.s2, r.s3}
}

// SetState restores the generator to a state captured by State. An
// all-zero state is invalid for xoshiro256** (the generator would emit
// only zeros forever), so it is replaced by Seed(0)'s state — which can
// never be produced by State on a properly seeded generator.
func (r *RNG) SetState(s [4]uint64) {
	if s[0] == 0 && s[1] == 0 && s[2] == 0 && s[3] == 0 {
		r.Seed(0)
		return
	}
	r.s0, r.s1, r.s2, r.s3 = s[0], s[1], s[2], s[3]
}
