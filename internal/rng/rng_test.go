package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// Derive is the elastic-resume reseeding strategy: deterministic in
// (seed, salts...), and distinct for distinct inputs.
func TestDerive(t *testing.T) {
	a := Derive(42, 10, 3, 0)
	b := Derive(42, 10, 3, 0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive is not deterministic")
		}
	}
	seen := map[uint64]string{}
	for _, tc := range []struct {
		name  string
		salts []uint64
	}{
		{"iter10_p3_w0", []uint64{10, 3, 0}},
		{"iter10_p3_w1", []uint64{10, 3, 1}},
		{"iter10_p2_w0", []uint64{10, 2, 0}},
		{"iter11_p3_w0", []uint64{11, 3, 0}},
		{"no salts", nil},
	} {
		v := Derive(42, tc.salts...).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %s and %s collide on the first draw", tc.name, prev)
		}
		seen[v] = tc.name
	}
	if Derive(43, 10, 3, 0).Uint64() == Derive(42, 10, 3, 0).Uint64() {
		t.Fatal("seed does not separate derived streams")
	}
	// Salt order matters: (a, b) and (b, a) are different streams.
	if Derive(42, 1, 2).Uint64() == Derive(42, 2, 1).Uint64() {
		t.Fatal("salt order ignored")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed = %d, want %d", i, got, first[i])
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %g", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%g) empirical mean %g", p, got)
	}
}

func TestGammaMean(t *testing.T) {
	r := New(17)
	for _, shape := range []float64{0.1, 0.5, 1, 2.5, 10} {
		const draws = 50000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += r.Gamma(shape)
		}
		mean := sum / draws
		// Gamma(a,1) has mean a and variance a.
		tol := 5 * math.Sqrt(shape/draws)
		if math.Abs(mean-shape) > tol {
			t.Errorf("Gamma(%g) mean %g, want %g (tol %g)", shape, mean, shape, tol)
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(19)
	out := make([]float64, 50)
	for trial := 0; trial < 100; trial++ {
		r.Dirichlet(0.1, out)
		var sum float64
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative component %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sums to %g", sum)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const draws = 100000
	var sum, sumsq float64
	for i := 0; i < draws; i++ {
		x := r.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / draws
	variance := sumsq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %g", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(29)
	child := parent.Split()
	// The child stream must not be a shifted copy of the parent stream.
	a := make([]uint64, 64)
	for i := range a {
		a[i] = parent.Uint64()
	}
	for i := 0; i < 64; i++ {
		v := child.Uint64()
		for _, x := range a {
			if v == x {
				t.Fatalf("child draw %d equals a parent draw", i)
			}
		}
	}
}

// Property: Intn never escapes its range, for arbitrary seeds and sizes.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1024)
	}
	_ = sink
}

func TestStateRoundTrip(t *testing.T) {
	r := New(12345)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 8)
	for i := range want {
		want[i] = r.Uint64()
	}
	// Restore into a differently-seeded generator: it must replay the
	// exact stream.
	r2 := New(999)
	r2.SetState(st)
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("draw %d after restore: %d, want %d", i, got, w)
		}
	}
	// The all-zero state is invalid for xoshiro256**; SetState must not
	// produce a generator stuck at zero.
	r3 := New(1)
	r3.SetState([4]uint64{})
	if r3.Uint64() == 0 && r3.Uint64() == 0 && r3.Uint64() == 0 {
		t.Fatal("zero state produced a dead generator")
	}
}
