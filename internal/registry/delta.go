package registry

// Serve side of incremental model refresh. The poller discovers
// WARPDLT delta files the trainer publishes next to a served base
// (<name>.dlt.<gen>, internal/train's naming), validates each link of
// the chain — CRC (at read), dims, base fingerprint, contiguous
// generation — and folds it into the live engine with
// Engine.ApplyDelta: a copy-on-write rebuild of only the touched
// per-word alias tables, run entirely on the poller goroutine. The
// swap then installs the new snapshot atomically under the registry
// lock, exactly like a hot reload: in-flight requests finish on the
// engine they acquired, and the request path never pays an O(V·K)
// build.
//
// A delta that fails validation is rejected: the served model stays
// untouched, delta_rejected increments, the model's last_error names
// the reason, and the file's identity is negatively cached so an
// unchanged bad file costs one rejection, not one per poll tick. The
// chain stops at the first bad link — later generations cannot apply
// by construction.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"warplda"
	"warplda/internal/fsio"
)

// deltaPath is the poller-side twin of internal/train's DeltaPath
// naming: generation gen of model name lives at <dir>/<name>.dlt.<gen>.
// (Kept in sync by TestDeltaNamingMatchesTrain.)
func (r *Registry) deltaPath(name string, gen int64) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s.dlt.%d", name, gen))
}

// deltaScan folds every pending, valid delta of one resident base
// model, one generation at a time. Called from the poller goroutine
// without the lock held; each fold re-checks entry state under the
// lock before swapping, so a concurrent eviction or reload simply
// discards the fold.
func (r *Registry) deltaScan(name string) {
	for r.foldNext(name) {
	}
}

// foldNext attempts to fold generation gen+1 into the resident
// snapshot of name. It returns true only after a successful fold (the
// caller then tries the next generation).
func (r *Registry) foldNext(name string) bool {
	r.mu.Lock()
	e := r.entries[name]
	if e == nil || e.state != stateReady {
		r.mu.Unlock()
		return false
	}
	snap := e.snap
	gen := e.gen
	rejGen, rejSize, rejMtime, rejIno := e.rejGen, e.rejSize, e.rejMtime, e.rejIno
	r.mu.Unlock()

	next := gen + 1
	path := r.deltaPath(name, next)
	fi, err := os.Stat(path)
	if err != nil || !fi.Mode().IsRegular() {
		return false // no next delta: chain is drained
	}
	if rejGen == next && fi.Size() == rejSize && fi.ModTime().Equal(rejMtime) && fileIno(fi) == rejIno {
		return false // same bad file as last tick; already counted
	}

	d, err := readDeltaFile(path)
	if err != nil {
		r.rejectDelta(name, next, fi, fmt.Sprintf("delta %s: %v", filepath.Base(path), err))
		return false
	}
	if d.Gen != next {
		// File name and header disagree — a renamed or misplaced file.
		r.rejectDelta(name, next, fi, fmt.Sprintf(
			"delta %s: header generation %d under a .dlt.%d name", filepath.Base(path), d.Gen, next))
		return false
	}
	if d.BaseFP != snap.fp {
		// Foreign or stale base: the delta was diffed against a state
		// this registry is not serving (e.g. leftovers from before a
		// rebase that raced the poller).
		r.rejectDelta(name, next, fi, fmt.Sprintf(
			"delta %s: base fingerprint %016x does not match served state %016x",
			filepath.Base(path), d.BaseFP, snap.fp))
		return false
	}

	start := time.Now()
	eng, rebuilt, err := snap.Engine.ApplyDelta(d)
	if err != nil {
		r.rejectDelta(name, next, fi, fmt.Sprintf("delta %s: %v", filepath.Base(path), err))
		return false
	}
	cw, ck := eng.Counts()
	om := snap.Model
	nm := &warplda.Model{
		Cfg: om.Cfg, V: om.V, Vocab: om.Vocab,
		Cw: cw, Ck: ck, LogLik: d.LogLik,
	}
	ns := &Snapshot{
		Model:  nm,
		Engine: eng,
		Vocab:  snap.Vocab, // a delta never changes the vocabulary
		Bytes:  nm.SizeBytes() + eng.MemoryBytes(),
		fp:     d.NewFP,
	}
	dur := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	e = r.entries[name]
	if e == nil || e.state != stateReady || e.snap != snap {
		// Evicted, or reloaded from file while we were folding: the
		// fold targeted a state no longer serving. Discard silently —
		// the next tick folds against whatever is resident then.
		return false
	}
	if r.opts.MaxBytes > 0 && ns.Bytes > r.opts.MaxBytes {
		r.deltaRejected++
		e.lastErr = fmt.Sprintf("delta %s refused: folded model needs %d bytes, budget %d",
			filepath.Base(path), ns.Bytes, r.opts.MaxBytes)
		e.rejGen, e.rejSize, e.rejMtime, e.rejIno = next, fi.Size(), fi.ModTime(), fileIno(fi)
		return false
	}
	r.bytes += ns.Bytes - snap.Bytes
	e.loads++
	ns.Version = e.loads
	e.snap = ns
	e.gen = next
	e.loadedAt = time.Now()
	e.loadDur = dur
	e.lastErr = ""
	e.rejGen, e.rejSize, e.rejMtime, e.rejIno = 0, 0, time.Time{}, 0
	r.lru.MoveToFront(e.elem)
	r.deltasApplied++
	r.foldDur += dur
	r.wordsRebuilt += int64(rebuilt)
	r.evictFor(0, e)
	return true
}

// rejectDelta records one rejected delta file: counter, last_error on
// the model, and the negative cache that keeps an unchanged bad file
// from being re-read and re-counted every tick.
func (r *Registry) rejectDelta(name string, gen int64, fi os.FileInfo, msg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deltaRejected++
	if e := r.entries[name]; e != nil {
		e.lastErr = msg
		e.rejGen = gen
		e.rejSize, e.rejMtime, e.rejIno = fi.Size(), fi.ModTime(), fileIno(fi)
	}
}

// readDeltaFile opens and fully validates one WARPDLT file (magic,
// CRC trailer, internal invariants).
func readDeltaFile(path string) (*fsio.ModelDelta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fsio.ReadDelta(f)
}
