package registry

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"warplda"
	"warplda/internal/train"
)

// perturbModel returns a copy of m with n count cells bumped and Ck
// recomputed — a stand-in for one checkpoint interval of training.
func perturbModel(t *testing.T, m *warplda.Model, n int) *warplda.Model {
	t.Helper()
	k := m.Cfg.K
	nm := &warplda.Model{
		Cfg: m.Cfg, V: m.V, Vocab: m.Vocab,
		Cw:     append([]int32(nil), m.Cw...),
		Ck:     make([]int64, k),
		LogLik: m.LogLik + 1,
	}
	for i := 0; i < n; i++ {
		nm.Cw[(i*7)%len(nm.Cw)]++
	}
	for w := 0; w < nm.V; w++ {
		for tt := 0; tt < k; tt++ {
			nm.Ck[tt] += int64(nm.Cw[w*k+tt])
		}
	}
	return nm
}

// publishDelta writes the delta advancing prev→next as generation gen
// of model name in dir, using the production writer.
func publishDelta(t *testing.T, dir, name string, prev, next *warplda.Model, gen int64) string {
	t.Helper()
	dc, err := train.NewDeltaChain(filepath.Join(dir, name), prev.V, prev.Cfg.K, prev.Cw, prev.Ck)
	if err != nil {
		t.Fatal(err)
	}
	for g := int64(1); g < gen; g++ {
		// Advance the chain with no-op links so the file lands at gen.
		if _, err := dc.Publish(prev.Cw, prev.Ck, int64(g), prev.LogLik); err != nil {
			t.Fatal(err)
		}
	}
	r, err := dc.Publish(next.Cw, next.Ck, 100+gen, next.LogLik)
	if err != nil {
		t.Fatal(err)
	}
	return r.Path
}

func TestDeltaNamingMatchesTrain(t *testing.T) {
	r := &Registry{dir: "pub"}
	want, err := train.DeltaPath(filepath.Join("pub", "news"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.deltaPath("news", 7); got != want {
		t.Fatalf("registry delta path %q, train writes %q", got, want)
	}
}

func TestPollerFoldsDeltaChain(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	m0 := tinyModel(t, 3, 1)
	writeModel(t, filepath.Join(dir, "news.bin"), m0)

	s0, err := r.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	if s0.Version != 1 {
		t.Fatalf("base Version = %d", s0.Version)
	}

	// Two chained deltas; the poller folds both in one sweep.
	m1 := perturbModel(t, m0, 5)
	m2 := perturbModel(t, m1, 9)
	dc, err := train.NewDeltaChain(filepath.Join(dir, "news"), m0.V, m0.Cfg.K, m0.Cw, m0.Ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Publish(m1.Cw, m1.Ck, 20, m1.LogLik); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Publish(m2.Cw, m2.Ck, 30, m2.LogLik); err != nil {
		t.Fatal(err)
	}
	r.pollOnce()

	s2, err := r.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 3 {
		t.Fatalf("after 2 folds Version = %d, want 3", s2.Version)
	}
	if !reflect.DeepEqual(s2.Model.Cw, m2.Cw) || !reflect.DeepEqual(s2.Model.Ck, m2.Ck) {
		t.Fatal("folded model counts do not match the published state")
	}
	if s2.Model.LogLik != m2.LogLik {
		t.Fatalf("folded LogLik %v, want %v", s2.Model.LogLik, m2.LogLik)
	}

	// The folded engine answers identically to one built cold from the
	// full snapshot.
	fresh, err := warplda.NewInferEngine(m2, warplda.InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		doc := []int32{1, 5, 9, 30}
		a, err := s2.Engine.Infer(doc, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Infer(doc, 5, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: folded %v != fresh %v", seed, a, b)
		}
	}

	mi, ok := r.Info("news")
	if !ok || mi.Generation != 2 {
		t.Fatalf("Info generation = %d (ok=%v), want 2", mi.Generation, ok)
	}
	st := r.RegistryStats()
	if st.DeltasApplied != 2 || st.DeltaRejected != 0 {
		t.Fatalf("stats = %+v, want 2 applied / 0 rejected", st)
	}
	if st.WordsRebuilt <= 0 {
		t.Fatalf("WordsRebuilt = %d, want > 0", st.WordsRebuilt)
	}

	// Idle re-poll: nothing new, nothing re-folded.
	r.pollOnce()
	if st2 := r.RegistryStats(); st2.DeltasApplied != 2 {
		t.Fatalf("idle poll re-applied deltas: %+v", st2)
	}
}

func TestBaseReloadResetsChain(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	m0 := tinyModel(t, 3, 1)
	path := filepath.Join(dir, "news.bin")
	writeModel(t, path, m0)
	if _, err := r.Acquire("news"); err != nil {
		t.Fatal(err)
	}
	m1 := perturbModel(t, m0, 4)
	publishDelta(t, dir, "news", m0, m1, 1)
	r.pollOnce()
	if mi, _ := r.Info("news"); mi.Generation != 1 {
		t.Fatalf("generation = %d, want 1", mi.Generation)
	}

	// A rebase: deltas removed first, then a fresh base file.
	if _, err := train.RemoveDeltaFiles(filepath.Join(dir, "news")); err != nil {
		t.Fatal(err)
	}
	m2 := tinyModel(t, 3, 9)
	writeModel(t, path, m2)
	r.pollOnce()
	mi, _ := r.Info("news")
	if mi.Generation != 0 {
		t.Fatalf("post-rebase generation = %d, want 0", mi.Generation)
	}
	snap, err := r.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Model.Cw, m2.Cw) {
		t.Fatal("post-rebase snapshot is not the new base")
	}
}

// TestDeltaFaultInjection is the fault table of ISSUE 10: every broken
// delta file is rejected with the served model untouched, the
// delta_rejected stat incremented exactly once (negative cache), and
// last_error naming the failure.
func TestDeltaFaultInjection(t *testing.T) {
	m0 := tinyModel(t, 3, 1)
	m1 := perturbModel(t, m0, 5)

	cases := []struct {
		name    string
		install func(t *testing.T, dir string)
		wantErr string
	}{
		{
			name: "truncated",
			install: func(t *testing.T, dir string) {
				p := publishDelta(t, dir, "news", m0, m1, 1)
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "delta news.dlt.1",
		},
		{
			name: "bit-flipped",
			install: func(t *testing.T, dir string) {
				p := publishDelta(t, dir, "news", m0, m1, 1)
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				b[len(b)/2] ^= 0x20
				if err := os.WriteFile(p, b, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "checksum mismatch",
		},
		{
			name: "foreign fingerprint",
			install: func(t *testing.T, dir string) {
				// A delta diffed against a different base model entirely.
				foreign := tinyModel(t, 3, 42)
				publishDelta(t, dir, "news", foreign, perturbModel(t, foreign, 5), 1)
			},
			wantErr: "base fingerprint",
		},
		{
			name: "gap generation",
			install: func(t *testing.T, dir string) {
				// Generation 2 renamed to .dlt.1: header and name disagree.
				p2 := publishDelta(t, dir, "news", m0, m1, 2)
				p1 := filepath.Join(dir, "news.dlt.1")
				os.Remove(p1)
				if err := os.Rename(p2, p1); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "header generation 2",
		},
		{
			name: "stale base",
			install: func(t *testing.T, dir string) {
				// Leftover delta from before a rebase: diffed against a
				// previous base the registry no longer serves.
				old := tinyModel(t, 3, 7)
				publishDelta(t, dir, "news", old, perturbModel(t, old, 3), 1)
			},
			wantErr: "base fingerprint",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, r := openTestRegistry(t, Options{})
			writeModel(t, filepath.Join(dir, "news.bin"), m0)
			s0, err := r.Acquire("news")
			if err != nil {
				t.Fatal(err)
			}
			doc := []int32{1, 5, 9}
			before, err := s0.Engine.Infer(doc, 5, 3)
			if err != nil {
				t.Fatal(err)
			}

			tc.install(t, dir)
			r.pollOnce()

			st := r.RegistryStats()
			if st.DeltaRejected != 1 {
				t.Fatalf("DeltaRejected = %d, want 1", st.DeltaRejected)
			}
			if st.DeltasApplied != 0 {
				t.Fatalf("DeltasApplied = %d, want 0", st.DeltasApplied)
			}
			mi, _ := r.Info("news")
			if mi.Generation != 0 {
				t.Fatalf("generation = %d, want 0", mi.Generation)
			}
			if !strings.Contains(mi.LastError, tc.wantErr) {
				t.Fatalf("last_error %q does not mention %q", mi.LastError, tc.wantErr)
			}

			// Served model untouched: same snapshot, same answers.
			s1, err := r.Acquire("news")
			if err != nil {
				t.Fatal(err)
			}
			if s1 != s0 {
				t.Fatal("rejected delta swapped the snapshot")
			}
			after, err := s1.Engine.Infer(doc, 5, 3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(before, after) {
				t.Fatal("rejected delta changed inference results")
			}

			// Negative cache: the unchanged bad file costs ONE rejection,
			// not one per tick.
			r.pollOnce()
			r.pollOnce()
			if st := r.RegistryStats(); st.DeltaRejected != 1 {
				t.Fatalf("DeltaRejected grew to %d on idle re-polls", st.DeltaRejected)
			}
		})
	}
}

func TestRejectedDeltaRecoversWhenFileReplaced(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	m0 := tinyModel(t, 3, 1)
	writeModel(t, filepath.Join(dir, "news.bin"), m0)
	if _, err := r.Acquire("news"); err != nil {
		t.Fatal(err)
	}

	// Install garbage as generation 1; it is rejected.
	bad := filepath.Join(dir, "news.dlt.1")
	if err := os.WriteFile(bad, []byte("WARPDLT\x01junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r.pollOnce()
	if st := r.RegistryStats(); st.DeltaRejected != 1 {
		t.Fatalf("DeltaRejected = %d, want 1", st.DeltaRejected)
	}

	// The trainer replaces it with a valid delta: next poll folds it
	// and clears the error.
	m1 := perturbModel(t, m0, 5)
	os.Remove(bad)
	publishDelta(t, dir, "news", m0, m1, 1)
	r.pollOnce()
	mi, _ := r.Info("news")
	if mi.Generation != 1 {
		t.Fatalf("generation = %d, want 1 after recovery", mi.Generation)
	}
	if mi.LastError != "" {
		t.Fatalf("last_error survived recovery: %q", mi.LastError)
	}
	if st := r.RegistryStats(); st.DeltasApplied != 1 {
		t.Fatalf("DeltasApplied = %d, want 1", st.DeltasApplied)
	}
}
