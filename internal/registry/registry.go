// Package registry is the multi-tenant model lifecycle layer between
// the model files warplda-train -save writes and the inference engines
// cmd/warplda-serve queries: one process, many named models, bounded
// memory, zero-downtime swaps.
//
// A Registry is rooted at a directory; every model is either a
// `<name>.bin` file or a `<name>/model.bin` subdirectory. Models load
// lazily on first Acquire, each load building the model's O(V·K)
// inference engine and vocabulary index exactly once. Loaded models are
// kept under an LRU byte budget: acquiring a cold model evicts the
// least-recently-used resident models until the newcomer fits, and a
// model that cannot fit even alone is refused (ErrOverCapacity → 503 at
// the HTTP layer). A background poller watches each loaded model's file
// (mtime+size) and hot-reloads it on change with an atomic snapshot
// swap: in-flight requests finish on the engine they acquired, new
// requests get the new one, and a torn or corrupt file (caught by the
// format's CRC32 trailer) leaves the old snapshot serving while the
// error is surfaced in the model's stats.
//
// All methods are safe for concurrent use. Snapshots are immutable;
// holders never need to release them (eviction drops the registry's
// reference, the garbage collector reclaims the memory once the last
// in-flight request completes).
package registry

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"warplda"
	"warplda/internal/fsio"
)

// Sentinel errors, distinguishable with errors.Is. ErrLoading and
// ErrOverCapacity are retryable admission-control conditions (HTTP
// 503); ErrNotFound and ErrBadName are caller errors (404).
var (
	ErrNotFound     = errors.New("model not found")
	ErrBadName      = errors.New("invalid model name")
	ErrLoading      = errors.New("model is loading")
	ErrOverCapacity = errors.New("model exceeds the registry byte budget")
	ErrClosed       = errors.New("registry is closed")
)

// nameRE is the set of acceptable model names: path traversal and
// separators are structurally impossible, not merely rejected. '@' is
// admitted (beyond the first character) so the registry serves the
// versioned snapshots train-side publishing writes — <name>@<iter>
// pins one published iteration, while the bare <name> follows the
// atomically-swapped "latest" pointer.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9.@_-]{0,127}$`)

// Options configure a Registry. The zero value means: unlimited byte
// budget, no hot-reload polling, default engine options.
type Options struct {
	// MaxBytes is the LRU byte budget across all resident models
	// (model counts + engine tables, per Snapshot.Bytes). 0 means
	// unlimited.
	MaxBytes int64
	// ReloadInterval is the poll period for file-change detection on
	// loaded models. 0 disables hot reload.
	ReloadInterval time.Duration
	// Infer configures every model's inference engine.
	Infer warplda.InferOptions
	// Restrict, when non-empty, limits the registry to exactly these
	// model names: anything else in the directory is neither served nor
	// listed. Single-file serving mode (warplda-serve -model) uses it
	// so pointing at one file does not expose its sibling snapshots.
	Restrict []string
}

// Snapshot is one immutable loaded version of a model: the model, its
// prebuilt engine, its vocabulary index, and its byte accounting. A
// request handler acquires a snapshot once and uses it for the whole
// request, so a concurrent hot swap can never change the model
// mid-request.
type Snapshot struct {
	Model  *warplda.Model
	Engine *warplda.InferEngine
	// Vocab maps vocabulary words to token ids; nil when the model has
	// no vocabulary.
	Vocab map[string]int32
	// Bytes is the snapshot's accounted resident size.
	Bytes int64
	// Version counts loads of this model name: 1 on first load,
	// incremented by every hot reload, eviction-reload, and delta fold.
	Version int

	// fp is the chain fingerprint of the snapshot's count state
	// (fsio.ModelFingerprint for a file load, the delta's NewFP for a
	// folded snapshot) — the value the next delta's BaseFP must match.
	fp uint64
}

// entry states. An entry exists for every name ever acquired (plus
// failures), so stats survive eviction.
const (
	stateLoading = iota
	stateReady
	stateEvicted
	stateFailed
)

var stateNames = [...]string{"loading", "ready", "evicted", "failed"}

type entry struct {
	name string
	path string

	state int
	snap  *Snapshot // non-nil iff state == stateReady

	// File identity of the loaded snapshot, for change detection. The
	// inode leg catches atomic renames whose size and coarse mtime
	// collide with the loaded generation's.
	fileSize  int64
	fileMtime time.Time
	fileIno   uint64

	// Negative cache for stateFailed: the error and the identity of
	// the file that produced it. While the file is unchanged, Acquire
	// returns failErr without re-paying the read + O(V·K) engine build
	// (a client retry loop against a corrupt or over-budget model must
	// not become a load-build-discard loop).
	failErr   error
	failSize  int64
	failMtime time.Time
	failIno   uint64

	// Delta chain position of the resident snapshot: gen counts the
	// WARPDLT deltas folded since the snapshot's file load (0 = the
	// base itself); snap.fp holds the matching chain fingerprint. Reset
	// by every file (re)load.
	gen int64

	// Negative cache for a rejected delta file: while <name>.dlt.<gen+1>
	// keeps the identity that failed validation, the poller skips it
	// without re-reading or re-counting the rejection. Cleared by every
	// install and every successful fold.
	rejGen   int64
	rejSize  int64
	rejMtime time.Time
	rejIno   uint64

	loadedAt time.Time
	loadDur  time.Duration

	hits      int64
	loads     int // successful loads, == snap.Version when ready
	evictions int
	lastErr   string

	elem *list.Element // position in the LRU list when ready
}

// Registry serves named models out of a directory. See the package
// documentation for the lifecycle model.
type Registry struct {
	dir      string
	opts     Options
	restrict map[string]bool // nil = serve everything in dir

	mu      sync.Mutex
	entries map[string]*entry
	lru     list.List // of *entry; front = most recently used
	bytes   int64     // sum of resident snapshot bytes
	evicted int64     // total evictions, for stats
	closed  bool

	// Warm prefetch state: per base model name, at most one prebuilt
	// snapshot of the newest versioned sibling (<base>@<iter>.bin) the
	// poller has seen, keyed and matched by file identity. When the
	// "latest" pointer swap lands, the reload is answered from here
	// instead of paying the O(V·K) engine build. See prefetchScan.
	warm         map[string]*warmEntry
	prefetched   int64 // warm builds completed
	prefetchHits int64 // loads answered from a warm snapshot

	// Incremental-refresh accounting (see deltaScan): deltas folded
	// into live engines, deltas rejected by chain validation, total
	// fold wall time, and per-word alias tables rebuilt by folds.
	deltasApplied int64
	deltaRejected int64
	foldDur       time.Duration
	wordsRebuilt  int64

	stop chan struct{}
	done chan struct{}
}

// warmEntry is one prebuilt, not-yet-serving snapshot plus the
// identity of the file it was built from.
type warmEntry struct {
	path  string
	size  int64
	mtime time.Time
	ino   uint64
	iter  int
	snap  *Snapshot
}

// Open validates dir and returns a registry over it. No model is
// loaded yet; loading happens on first Acquire. When
// opts.ReloadInterval > 0 a background poller hot-reloads loaded models
// whose files change; Close stops it.
func Open(dir string, opts Options) (*Registry, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("registry: %s is not a directory", dir)
	}
	r := &Registry{
		dir:     dir,
		opts:    opts,
		entries: make(map[string]*entry),
		warm:    make(map[string]*warmEntry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if len(opts.Restrict) > 0 {
		r.restrict = make(map[string]bool, len(opts.Restrict))
		for _, name := range opts.Restrict {
			r.restrict[name] = true
		}
	}
	if opts.ReloadInterval > 0 {
		go r.pollLoop()
	} else {
		close(r.done)
	}
	return r, nil
}

// Close stops the reload poller and refuses further Acquires. It is
// idempotent. Snapshots already handed out remain valid.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	poller := r.opts.ReloadInterval > 0
	r.mu.Unlock()
	if poller {
		close(r.stop)
	}
	<-r.done
}

// resolvePath maps a model name to its file, preferring <dir>/<name>.bin
// over <dir>/<name>/model.bin.
func (r *Registry) resolvePath(name string) (string, os.FileInfo, error) {
	if !nameRE.MatchString(name) || name == "." || name == ".." {
		return "", nil, fmt.Errorf("registry: %w: %q", ErrBadName, name)
	}
	if r.restrict != nil && !r.restrict[name] {
		return "", nil, fmt.Errorf("registry: %w: %q", ErrNotFound, name)
	}
	for _, p := range []string{
		filepath.Join(r.dir, name+".bin"),
		filepath.Join(r.dir, name, "model.bin"),
	} {
		if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() {
			return p, fi, nil
		}
	}
	return "", nil, fmt.Errorf("registry: %w: %q", ErrNotFound, name)
}

// Acquire returns a snapshot of the named model, loading it first if it
// is not resident. The load runs synchronously on the calling
// goroutine; concurrent Acquires for a model mid-load fail fast with
// ErrLoading (admission control — the HTTP layer maps it to 503 +
// Retry-After) instead of queueing unbounded work behind an O(V·K)
// engine build.
func (r *Registry) Acquire(name string) (*Snapshot, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	e := r.entries[name]
	if e != nil {
		switch e.state {
		case stateReady:
			e.hits++
			r.lru.MoveToFront(e.elem)
			snap := e.snap
			r.mu.Unlock()
			return snap, nil
		case stateLoading:
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: %w: %q", ErrLoading, name)
		case stateFailed:
			// Negative cache: the same file produces the same failure;
			// don't re-pay the read + engine build for a client retry
			// loop against a corrupt or over-budget model.
			if e.failErr != nil && e.path != "" {
				if fi, serr := os.Stat(e.path); serr == nil && fi.Size() == e.failSize &&
					fi.ModTime().Equal(e.failMtime) && fileIno(fi) == e.failIno {
					err := e.failErr
					r.mu.Unlock()
					return nil, err
				}
			}
			// File changed (or identity unknown): retry the load.
		}
		// evicted, or failed with a changed file: this caller reloads.
	} else {
		e = &entry{name: name}
		r.entries[name] = e
	}
	e.state = stateLoading
	r.mu.Unlock()

	snap, path, fi, dur, err := r.admitAndLoad(name)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil && r.opts.MaxBytes > 0 && snap.Bytes > r.opts.MaxBytes {
		// The file fit but counts + engine tables do not (rare: the
		// admission check below catches most cases by file size).
		err = fmt.Errorf("registry: %w: %q needs %d bytes, budget %d",
			ErrOverCapacity, name, snap.Bytes, r.opts.MaxBytes)
	}
	if err != nil {
		e.state = stateFailed
		e.lastErr = err.Error()
		e.failErr = err
		e.path, e.failSize, e.failMtime, e.failIno = "", 0, time.Time{}, 0
		if fi != nil {
			// Remember which file failed so the negative cache holds
			// until it changes.
			e.path = path
			e.failSize = fi.Size()
			e.failMtime = fi.ModTime()
			e.failIno = fileIno(fi)
		}
		if errors.Is(err, ErrNotFound) || errors.Is(err, ErrBadName) {
			// Don't let stat failures accumulate forever for names that
			// never existed.
			delete(r.entries, name)
		}
		return nil, err
	}
	e.loads++
	snap.Version = e.loads
	r.evictFor(snap.Bytes, e)
	r.install(e, snap, path, fi, dur)
	e.hits++
	return snap, nil
}

// admitAndLoad resolves the model file, applies byte-budget admission
// control BEFORE the expensive read (the file size is a lower bound on
// the resident size), pre-evicts colder models so peak memory during
// the load stays near the budget instead of budget + the whole
// incoming model, then reads the file and builds the engine. On
// failure it still returns the file identity (when resolvable) so the
// caller can cache the failure against it.
func (r *Registry) admitAndLoad(name string) (*Snapshot, string, os.FileInfo, time.Duration, error) {
	path, fi, err := r.resolvePath(name)
	if err != nil {
		return nil, "", nil, 0, err
	}
	if r.opts.MaxBytes > 0 {
		if fi.Size() > r.opts.MaxBytes {
			return nil, path, fi, 0, fmt.Errorf("registry: %w: %q file is %d bytes, budget %d",
				ErrOverCapacity, name, fi.Size(), r.opts.MaxBytes)
		}
		r.mu.Lock()
		r.evictFor(fi.Size(), nil)
		r.mu.Unlock()
	}
	// A prefetched snapshot of this exact file (a versioned publish the
	// poller warmed) answers the load without the read + engine build.
	if snap := r.takeWarm(fi); snap != nil {
		return snap, path, fi, 0, nil
	}
	snap, dur, err := r.readAndBuild(name, path)
	if err != nil {
		return nil, path, fi, 0, err
	}
	return snap, path, fi, dur, nil
}

// readAndBuild reads and validates the model file and builds its
// engine and vocabulary index. Called without the registry lock held:
// engine construction is O(V·K) and must not block unrelated lookups.
func (r *Registry) readAndBuild(name, path string) (*Snapshot, time.Duration, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("registry: loading %q: %w", name, err)
	}
	m, err := warplda.ReadModel(f)
	f.Close()
	if err != nil {
		return nil, 0, fmt.Errorf("registry: loading %q: %w", name, err)
	}
	eng, err := warplda.NewInferEngine(m, r.opts.Infer)
	if err != nil {
		return nil, 0, fmt.Errorf("registry: loading %q: %w", name, err)
	}
	snap := &Snapshot{
		Model:  m,
		Engine: eng,
		Bytes:  m.SizeBytes() + eng.MemoryBytes(),
		// The chain fingerprint anchors delta folding: the first delta's
		// BaseFP must equal it. Computed here, off the registry lock.
		fp: fsio.ModelFingerprint(m.V, m.Cfg.K, m.Cw, m.Ck),
	}
	if m.Vocab != nil {
		snap.Vocab = make(map[string]int32, len(m.Vocab))
		for i, w := range m.Vocab {
			snap.Vocab[w] = int32(i)
		}
	}
	return snap, time.Since(start), nil
}

// install makes snap the entry's resident snapshot (first load or hot
// swap), updating byte accounting and LRU position. Caller holds r.mu.
func (r *Registry) install(e *entry, snap *Snapshot, path string, fi os.FileInfo, dur time.Duration) {
	if e.state == stateReady {
		r.bytes -= e.snap.Bytes
	}
	e.snap = snap
	e.path = path
	e.fileSize = fi.Size()
	e.fileMtime = fi.ModTime()
	e.fileIno = fileIno(fi)
	e.loadedAt = time.Now()
	e.loadDur = dur
	e.lastErr = ""
	e.failErr, e.failSize, e.failMtime, e.failIno = nil, 0, time.Time{}, 0
	// A file (re)load is a chain base: generation 0, fingerprint of the
	// loaded counts, no remembered delta rejection.
	e.gen = 0
	e.rejGen, e.rejSize, e.rejMtime, e.rejIno = 0, 0, time.Time{}, 0
	r.bytes += snap.Bytes
	if e.elem == nil {
		e.elem = r.lru.PushFront(e)
	} else {
		r.lru.MoveToFront(e.elem)
	}
	e.state = stateReady
}

// evictFor evicts least-recently-used resident models (never keep,
// which is the entry being installed) until incoming fits under the
// byte budget. Caller holds r.mu.
func (r *Registry) evictFor(incoming int64, keep *entry) {
	if r.opts.MaxBytes <= 0 {
		return
	}
	for r.bytes+incoming > r.opts.MaxBytes {
		el := r.lru.Back()
		for el != nil && el.Value.(*entry) == keep {
			el = el.Prev()
		}
		if el == nil {
			return
		}
		r.evict(el.Value.(*entry))
	}
}

// evict drops e's snapshot. Caller holds r.mu.
func (r *Registry) evict(e *entry) {
	r.bytes -= e.snap.Bytes
	r.lru.Remove(e.elem)
	e.elem = nil
	e.snap = nil
	e.state = stateEvicted
	e.evictions++
	r.evicted++
}

// pollLoop is the hot-reload watcher: every ReloadInterval it compares
// each resident model's file identity (size+mtime) against what was
// loaded and atomically swaps in a fresh snapshot on change. A failed
// reload (missing file, torn write caught by the CRC trailer, corrupt
// header) keeps the old snapshot serving and records the error; the
// next tick retries, so a writer that finishes its atomic rename gets
// picked up.
func (r *Registry) pollLoop() {
	defer close(r.done)
	t := time.NewTicker(r.opts.ReloadInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.pollOnce()
		}
	}
}

// pollOnce runs one reload sweep. Exposed to tests indirectly via the
// ticker; loads run without the lock so serving never stalls behind an
// engine build.
func (r *Registry) pollOnce() {
	type candidate struct {
		name  string
		path  string
		size  int64
		mtime time.Time
		ino   uint64
	}
	r.mu.Lock()
	var cands []candidate
	for _, e := range r.entries {
		if e.state == stateReady {
			cands = append(cands, candidate{e.name, e.path, e.fileSize, e.fileMtime, e.fileIno})
		}
	}
	r.mu.Unlock()

	// Drop warm snapshots whose base model is no longer resident (the
	// swap they were built for can't be observed anymore).
	ready := make(map[string]bool, len(cands))
	for _, c := range cands {
		ready[c.name] = true
	}
	r.mu.Lock()
	for base := range r.warm {
		if !ready[base] {
			delete(r.warm, base)
		}
	}
	r.mu.Unlock()

	// Warm prefetch BEFORE the reload sweep: a publish writes the
	// versioned <name>@<iter>.bin first and swaps the latest pointer
	// second, so building the newcomer's engine here means the swap —
	// often observed later in this very sweep — installs a prebuilt
	// snapshot instead of paying the cold O(V·K) build.
	for _, c := range cands {
		if !strings.Contains(c.name, "@") {
			r.prefetchScan(c.name, c.size, c.mtime, c.ino)
		}
	}

	for _, c := range cands {
		fi, err := os.Stat(c.path)
		if err != nil {
			r.recordReloadError(c.name, fmt.Sprintf("stat: %v", err))
			continue
		}
		// Size, mtime, AND inode: an atomic rename always changes the
		// inode, so a retrained same-dims model is detected even when
		// its size matches and a coarse (e.g. 1s NFS) mtime collides.
		if fi.Size() == c.size && fi.ModTime().Equal(c.mtime) && fileIno(fi) == c.ino {
			continue
		}
		path, pfi, err := r.resolvePath(c.name)
		if err != nil {
			r.recordReloadError(c.name, err.Error())
			continue
		}
		snap, dur, err := r.reloadSnapshot(c.name, path, pfi)
		if err != nil {
			r.recordReloadError(c.name, err.Error())
			continue
		}
		if r.opts.MaxBytes > 0 && snap.Bytes > r.opts.MaxBytes {
			// Refusing the swap keeps the budget invariant; the old
			// snapshot keeps serving.
			r.recordReloadError(c.name, fmt.Sprintf(
				"reload refused: model grew to %d bytes, budget is %d", snap.Bytes, r.opts.MaxBytes))
			continue
		}
		r.mu.Lock()
		e := r.entries[c.name]
		if e == nil || e.state != stateReady {
			// Evicted or dropped while we were loading: discard.
			r.mu.Unlock()
			continue
		}
		e.loads++
		snap.Version = e.loads
		r.install(e, snap, path, pfi, dur)
		// The swap may have grown the model past the budget; evict
		// colder models to get back under it.
		r.evictFor(0, e)
		r.mu.Unlock()
	}

	// Incremental refresh LAST: a base that was just (re)loaded above
	// starts a fresh chain, and any pending <name>.dlt.* files fold into
	// whatever is resident now. Deltas apply only to bare names — a
	// pinned <name>@<iter> is immutable by definition.
	for _, c := range cands {
		if !strings.Contains(c.name, "@") {
			r.deltaScan(c.name)
		}
	}
}

// reloadSnapshot produces the fresh snapshot for a changed model file:
// from the warm prefetch cache when the new file is one the poller
// already built (the hot-swap fast path — a publish never pays the
// engine build on the serving side of the swap), else by reading and
// building cold.
func (r *Registry) reloadSnapshot(name, path string, pfi os.FileInfo) (*Snapshot, time.Duration, error) {
	if snap := r.takeWarm(pfi); snap != nil {
		return snap, 0, nil
	}
	return r.readAndBuild(name, path)
}

// versionedIterRE extracts the <iter> of a <base>@<iter>.bin sibling.
var versionedIterRE = regexp.MustCompile(`^@(\d+)\.bin$`)

// prefetchScan looks for versioned siblings <base>@<iter>.bin of a
// resident base model and prebuilds the newest one's snapshot into the
// warm cache. curSize/curMtime/curIno identify the file the base model
// currently serves from: when the newest version IS that file (stat
// follows the latest symlink, so identities coincide in steady state),
// there is nothing to warm. The build runs on the poller goroutine,
// off every request path, while the old snapshot keeps serving.
func (r *Registry) prefetchScan(base string, curSize int64, curMtime time.Time, curIno uint64) {
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return
	}
	bestIter := -1
	var bestPath string
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), base+"@") {
			continue
		}
		m := versionedIterRE.FindStringSubmatch(de.Name()[len(base):])
		if m == nil {
			continue
		}
		iter, err := strconv.Atoi(m[1])
		if err != nil || iter <= bestIter {
			continue
		}
		bestIter, bestPath = iter, filepath.Join(r.dir, de.Name())
	}
	if bestIter < 0 {
		return
	}
	fi, err := os.Stat(bestPath)
	if err != nil || !fi.Mode().IsRegular() {
		return
	}
	ino := fileIno(fi)
	if fi.Size() == curSize && fi.ModTime().Equal(curMtime) && ino == curIno {
		// The newest version is what the base already serves: nothing
		// pending. Drop any stale warm leftover for this base.
		r.mu.Lock()
		delete(r.warm, base)
		r.mu.Unlock()
		return
	}
	r.mu.Lock()
	if w := r.warm[base]; w != nil && w.size == fi.Size() && w.mtime.Equal(fi.ModTime()) && w.ino == ino {
		r.mu.Unlock() // already warmed
		return
	}
	r.mu.Unlock()
	if r.opts.MaxBytes > 0 && fi.Size() > r.opts.MaxBytes {
		return // could never serve; don't build it
	}
	snap, _, err := r.readAndBuild(fmt.Sprintf("%s@%d", base, bestIter), bestPath)
	if err != nil {
		return // torn or mid-write; the next tick retries
	}
	if r.opts.MaxBytes > 0 && snap.Bytes > r.opts.MaxBytes {
		return
	}
	r.mu.Lock()
	r.warm[base] = &warmEntry{
		path: bestPath, size: fi.Size(), mtime: fi.ModTime(), ino: ino,
		iter: bestIter, snap: snap,
	}
	r.prefetched++
	r.mu.Unlock()
}

// takeWarm returns a warm snapshot built from exactly the file fi
// identifies, or nil. The identity match works across the latest
// symlink: stat of the swapped pointer resolves to the versioned
// target's inode, so the pointer swap consumes the snapshot prefetched
// from the target. The entry stays cached (the versioned name and the
// latest pointer may both load the same file); each consumer gets its
// own shallow copy, because install mutates Version while the
// underlying model and engine are immutable and shared. Stale entries
// are pruned by the poller (prefetchScan and the eviction sweep).
func (r *Registry) takeWarm(fi os.FileInfo) *Snapshot {
	ino := fileIno(fi)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.warm {
		if w.size == fi.Size() && w.mtime.Equal(fi.ModTime()) && w.ino == ino {
			r.prefetchHits++
			snap := *w.snap
			return &snap
		}
	}
	return nil
}

func (r *Registry) recordReloadError(name, msg string) {
	r.mu.Lock()
	if e := r.entries[name]; e != nil {
		e.lastErr = msg
	}
	r.mu.Unlock()
}
