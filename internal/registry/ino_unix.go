//go:build unix

package registry

import (
	"os"
	"syscall"
)

// fileIno returns the file's inode number. An atomic temp-file+rename
// deploy always allocates a fresh inode, so comparing inodes detects a
// swapped model even when the new file has the same size and a
// colliding coarse mtime (1s granularity on some network filesystems).
func fileIno(fi os.FileInfo) uint64 {
	if st, ok := fi.Sys().(*syscall.Stat_t); ok {
		return st.Ino
	}
	return 0
}
