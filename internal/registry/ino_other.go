//go:build !unix

package registry

import "os"

// fileIno has no portable meaning off unix; 0 disables the inode leg of
// change detection, leaving size+mtime.
func fileIno(fi os.FileInfo) uint64 { return 0 }
