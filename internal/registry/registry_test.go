package registry

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"warplda"
)

// tinyModel trains a small model with the given topic count. Different
// K gives different response dimensions AND different file sizes, so
// swaps are observable both semantically and by the size+mtime poll.
func tinyModel(t testing.TB, k int, seed uint64) *warplda.Model {
	t.Helper()
	c, err := warplda.GenerateLDA(warplda.SyntheticConfig{
		D: 30, V: 60, K: k, MeanLen: 20, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := warplda.Train(c, warplda.Defaults(k), 10)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// writeModel writes m to path atomically, the way warplda-train -save
// does in production (Model.WriteFile: temp + rename).
func writeModel(t testing.TB, path string, m *warplda.Model) {
	t.Helper()
	if _, err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func openTestRegistry(t *testing.T, opts Options) (string, *Registry) {
	t.Helper()
	dir := t.TempDir()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return dir, r
}

func TestAcquireLoadsFileAndSubdirLayouts(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	writeModel(t, filepath.Join(dir, "flat.bin"), tinyModel(t, 2, 1))
	if err := os.Mkdir(filepath.Join(dir, "nested"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeModel(t, filepath.Join(dir, "nested", "model.bin"), tinyModel(t, 3, 2))

	flat, err := r.Acquire("flat")
	if err != nil {
		t.Fatal(err)
	}
	if flat.Model.Cfg.K != 2 || flat.Engine.K() != 2 || flat.Version != 1 {
		t.Fatalf("flat: K=%d engine K=%d version=%d", flat.Model.Cfg.K, flat.Engine.K(), flat.Version)
	}
	nested, err := r.Acquire("nested")
	if err != nil {
		t.Fatal(err)
	}
	if nested.Model.Cfg.K != 3 {
		t.Fatalf("nested: K=%d", nested.Model.Cfg.K)
	}
	if flat.Bytes <= 0 || nested.Bytes <= 0 {
		t.Fatalf("unaccounted snapshots: %d, %d", flat.Bytes, nested.Bytes)
	}

	// Second acquire is a cache hit on the same snapshot.
	again, err := r.Acquire("flat")
	if err != nil {
		t.Fatal(err)
	}
	if again != flat {
		t.Fatal("cache hit returned a different snapshot")
	}
	mi, ok := r.Info("flat")
	if !ok || mi.State != "ready" || mi.Hits != 2 || mi.Loads != 1 {
		t.Fatalf("flat info = %+v", mi)
	}
	st := r.RegistryStats()
	if st.Ready != 2 || st.BytesResident != flat.Bytes+nested.Bytes {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAcquireRejectsUnknownAndBadNames(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	writeModel(t, filepath.Join(dir, "ok.bin"), tinyModel(t, 2, 1))

	if _, err := r.Acquire("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	for _, name := range []string{"..", "a/b", "../ok", ".hidden", "", "a b"} {
		if _, err := r.Acquire(name); !errors.Is(err, ErrBadName) {
			t.Fatalf("%q: %v, want ErrBadName", name, err)
		}
	}
	// Failed lookups must not leak entries.
	if _, ok := r.Info("missing"); ok {
		t.Fatal("missing name left an entry behind")
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	dir := t.TempDir()
	models := map[string]*warplda.Model{
		"a": tinyModel(t, 2, 1),
		"b": tinyModel(t, 2, 2),
		"c": tinyModel(t, 2, 3),
	}
	var one int64
	for name, m := range models {
		writeModel(t, filepath.Join(dir, name+".bin"), m)
		eng, err := warplda.NewInferEngine(m, warplda.InferOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if s := m.SizeBytes() + eng.MemoryBytes(); s > one {
			one = s
		}
	}
	// Budget for two models, not three.
	budget := one*2 + one/2
	r, err := Open(dir, Options{MaxBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.Acquire(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st := r.RegistryStats()
	if st.BytesResident > budget {
		t.Fatalf("resident %d bytes over budget %d", st.BytesResident, budget)
	}
	if st.Evictions != 1 || st.Ready != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 ready", st)
	}
	mi, _ := r.Info("a")
	if mi.State != "evicted" || mi.Evictions != 1 {
		t.Fatalf("a info = %+v, want evicted", mi)
	}

	// Re-acquiring the evicted model reloads it and evicts the new LRU
	// tail, which is b (c was used more recently).
	snap, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 {
		t.Fatalf("a version = %d, want 2 after reload", snap.Version)
	}
	if mi, _ := r.Info("b"); mi.State != "evicted" {
		t.Fatalf("b info = %+v, want evicted (LRU order)", mi)
	}
	if mi, _ := r.Info("c"); mi.State != "ready" {
		t.Fatalf("c info = %+v, want ready", mi)
	}
	if st := r.RegistryStats(); st.BytesResident > budget {
		t.Fatalf("resident %d bytes over budget %d", st.BytesResident, budget)
	}
}

func TestAcquireOverCapacityModel(t *testing.T) {
	dir, r := openTestRegistry(t, Options{MaxBytes: 128})
	writeModel(t, filepath.Join(dir, "big.bin"), tinyModel(t, 2, 1))
	if _, err := r.Acquire("big"); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("got %v, want ErrOverCapacity", err)
	}
	mi, ok := r.Info("big")
	if !ok || mi.State != "failed" || mi.LastError == "" {
		t.Fatalf("big info = %+v", mi)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestHotReloadSwapsModel(t *testing.T) {
	dir, r := openTestRegistry(t, Options{ReloadInterval: 2 * time.Millisecond})
	path := filepath.Join(dir, "m.bin")
	writeModel(t, path, tinyModel(t, 2, 1))

	old, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if old.Model.Cfg.K != 2 {
		t.Fatalf("K = %d", old.Model.Cfg.K)
	}

	writeModel(t, path, tinyModel(t, 4, 2))
	waitFor(t, 5*time.Second, "hot reload", func() bool {
		mi, _ := r.Info("m")
		return mi.Version >= 2
	})
	snap, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model.Cfg.K != 4 {
		t.Fatalf("post-swap K = %d, want 4", snap.Model.Cfg.K)
	}
	// The old snapshot is untouched — in-flight requests that acquired
	// it keep a consistent model+engine pair.
	if old.Model.Cfg.K != 2 || old.Engine.K() != 2 {
		t.Fatal("hot swap mutated the old snapshot")
	}
	mi, _ := r.Info("m")
	if mi.Loads != 2 || mi.State != "ready" {
		t.Fatalf("info = %+v", mi)
	}
}

func TestHotReloadRejectsCorruptFileAndRecovers(t *testing.T) {
	dir, r := openTestRegistry(t, Options{ReloadInterval: 2 * time.Millisecond})
	path := filepath.Join(dir, "m.bin")
	writeModel(t, path, tinyModel(t, 2, 1))
	if _, err := r.Acquire("m"); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: valid prefix, missing tail. The CRC/EOF
	// checks must reject it and the old snapshot must keep serving.
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "reload error", func() bool {
		mi, _ := r.Info("m")
		return mi.LastError != ""
	})
	snap, err := r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model.Cfg.K != 2 || snap.Version != 1 {
		t.Fatalf("torn file replaced the model: K=%d version=%d", snap.Model.Cfg.K, snap.Version)
	}

	// The writer finishes: the next poll picks the new model up and
	// clears the error.
	writeModel(t, path, tinyModel(t, 3, 9))
	waitFor(t, 5*time.Second, "recovery reload", func() bool {
		mi, _ := r.Info("m")
		return mi.Version >= 2 && mi.LastError == ""
	})
	snap, err = r.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model.Cfg.K != 3 {
		t.Fatalf("post-recovery K = %d, want 3", snap.Model.Cfg.K)
	}
}

func TestConcurrentColdAcquires(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	writeModel(t, filepath.Join(dir, "m.bin"), tinyModel(t, 2, 1))

	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, loading int
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snap, err := r.Acquire("m")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && snap != nil:
				ok++
			case errors.Is(err, ErrLoading):
				loading++
			default:
				t.Errorf("unexpected result: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no goroutine ever got the model")
	}
	if ok+loading != n {
		t.Fatalf("ok=%d loading=%d, want sum %d", ok, loading, n)
	}
	// Once resident, everyone hits.
	if _, err := r.Acquire("m"); err != nil {
		t.Fatal(err)
	}
}

func TestListMergesDiskAndResident(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	writeModel(t, filepath.Join(dir, "loaded.bin"), tinyModel(t, 2, 1))
	writeModel(t, filepath.Join(dir, "cold.bin"), tinyModel(t, 2, 2))
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("loaded"); err != nil {
		t.Fatal(err)
	}

	list := r.List()
	if len(list) != 2 {
		t.Fatalf("list = %+v, want 2 models", list)
	}
	if list[0].Name != "cold" || list[0].State != "available" {
		t.Fatalf("list[0] = %+v", list[0])
	}
	if list[1].Name != "loaded" || list[1].State != "ready" || list[1].Bytes <= 0 {
		t.Fatalf("list[1] = %+v", list[1])
	}
}

func TestRestrictHidesSiblings(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, filepath.Join(dir, "public.bin"), tinyModel(t, 2, 1))
	writeModel(t, filepath.Join(dir, "secret.bin"), tinyModel(t, 2, 2))
	r, err := Open(dir, Options{Restrict: []string{"public"}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if _, err := r.Acquire("public"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Acquire("secret"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restricted sibling served: %v", err)
	}
	list := r.List()
	if len(list) != 1 || list[0].Name != "public" {
		t.Fatalf("restricted list leaked siblings: %+v", list)
	}
	if _, ok := r.Info("secret"); ok {
		t.Fatal("Info leaked a restricted sibling")
	}
}

func TestFailedLoadIsNegativelyCached(t *testing.T) {
	dir, r := openTestRegistry(t, Options{})
	path := filepath.Join(dir, "bad.bin")
	if err := os.WriteFile(path, []byte("WARPLDA\x02garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err1 := r.Acquire("bad")
	if err1 == nil {
		t.Fatal("corrupt model accepted")
	}
	_, err2 := r.Acquire("bad")
	if err2 == nil {
		t.Fatal("corrupt model accepted on retry")
	}
	// The identical error VALUE proves the cache answered — the file
	// was not re-read and no engine build was attempted.
	if err1 != err2 {
		t.Fatalf("retry re-paid the load: %v vs %v", err1, err2)
	}
	mi, _ := r.Info("bad")
	if mi.State != "failed" || mi.LastError == "" {
		t.Fatalf("info = %+v", mi)
	}

	// Replacing the file invalidates the cache and recovers.
	writeModel(t, path, tinyModel(t, 3, 5))
	snap, err := r.Acquire("bad")
	if err != nil {
		t.Fatalf("fixed file still refused: %v", err)
	}
	if snap.Model.Cfg.K != 3 {
		t.Fatalf("K = %d", snap.Model.Cfg.K)
	}
}

func TestCloseStopsRegistry(t *testing.T) {
	dir, r := openTestRegistry(t, Options{ReloadInterval: time.Millisecond})
	writeModel(t, filepath.Join(dir, "m.bin"), tinyModel(t, 2, 1))
	if _, err := r.Acquire("m"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if _, err := r.Acquire("m"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// symlinkLatest atomically points <base>.bin at target (a sibling file
// name), the way train-side publishing swaps the latest pointer: temp
// symlink + rename.
func symlinkLatest(t *testing.T, dir, base, target string) {
	t.Helper()
	tmp := filepath.Join(dir, ".latest-tmp")
	os.Remove(tmp)
	if err := os.Symlink(target, tmp); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, base+".bin")); err != nil {
		t.Fatal(err)
	}
}

func TestWarmPrefetchServesPublishSwap(t *testing.T) {
	dir, r := openTestRegistry(t, Options{ReloadInterval: 2 * time.Millisecond})
	writeModel(t, filepath.Join(dir, "news@10.bin"), tinyModel(t, 2, 1))
	symlinkLatest(t, dir, "news", "news@10.bin")
	if _, err := r.Acquire("news"); err != nil {
		t.Fatal(err)
	}

	// Publish the versioned file only — the latest pointer still targets
	// @10. The poller must prebuild @20 without swapping anything.
	writeModel(t, filepath.Join(dir, "news@20.bin"), tinyModel(t, 4, 2))
	waitFor(t, 5*time.Second, "warm prefetch", func() bool {
		return r.RegistryStats().Prefetched >= 1
	})
	st := r.RegistryStats()
	if st.WarmReady != 1 {
		t.Fatalf("WarmReady = %d, want 1", st.WarmReady)
	}
	snap, err := r.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model.Cfg.K != 2 {
		t.Fatalf("prefetch leaked into serving: K = %d, want 2", snap.Model.Cfg.K)
	}

	// The versioned name loads from the warm entry too: the cache is
	// shared, not consumed, and each consumer gets its own Version.
	// (This must happen before the swap — once @20 is serving, the
	// poller prunes its warm entry as stale.)
	vsnap, err := r.Acquire("news@20")
	if err != nil {
		t.Fatal(err)
	}
	if vsnap.Model.Cfg.K != 4 || vsnap.Version != 1 {
		t.Fatalf("versioned acquire: K = %d Version = %d", vsnap.Model.Cfg.K, vsnap.Version)
	}
	if got := r.RegistryStats().PrefetchHits; got < 1 {
		t.Fatalf("PrefetchHits = %d, want >= 1", got)
	}

	// Swap the pointer. The reload must install the prebuilt snapshot:
	// PrefetchHits advances and the recorded load duration is zero (no
	// read, no engine build on the swap path).
	symlinkLatest(t, dir, "news", "news@20.bin")
	waitFor(t, 5*time.Second, "warm hot swap", func() bool {
		mi, _ := r.Info("news")
		return mi.Version >= 2
	})
	snap, err = r.Acquire("news")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Model.Cfg.K != 4 {
		t.Fatalf("post-swap K = %d, want 4", snap.Model.Cfg.K)
	}
	if got := r.RegistryStats().PrefetchHits; got < 2 {
		t.Fatalf("PrefetchHits = %d, want >= 2", got)
	}
	mi, _ := r.Info("news")
	if mi.LoadMs != 0 {
		t.Fatalf("swap paid a cold build: LoadMs = %v, want 0", mi.LoadMs)
	}
	if snap.Version != 2 || vsnap.Version != 1 {
		t.Fatalf("shared warm snapshot leaked Version across consumers: base %d pinned %d", snap.Version, vsnap.Version)
	}

	// With @20 serving, the warm entry is stale; the poller sweeps it.
	waitFor(t, 5*time.Second, "stale warm entry sweep", func() bool {
		return r.RegistryStats().WarmReady == 0
	})
}

func TestWarmPrefetchSteadyStateIsIdle(t *testing.T) {
	dir, r := openTestRegistry(t, Options{ReloadInterval: 2 * time.Millisecond})
	writeModel(t, filepath.Join(dir, "m@5.bin"), tinyModel(t, 2, 1))
	symlinkLatest(t, dir, "m", "m@5.bin")
	if _, err := r.Acquire("m"); err != nil {
		t.Fatal(err)
	}
	// The newest versioned file IS the serving file (the symlink
	// resolves to it), so nothing should ever be warmed.
	time.Sleep(30 * time.Millisecond)
	st := r.RegistryStats()
	if st.Prefetched != 0 || st.WarmReady != 0 {
		t.Fatalf("steady state warmed something: %+v", st)
	}
}
