package registry

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Introspection for the GET /models admin API: per-model lifecycle
// stats and registry-wide accounting. Everything here is a consistent
// point-in-time copy taken under the registry lock; the JSON tags are
// the wire format cmd/warplda-serve exposes.

// ModelInfo describes one model the registry knows about: resident
// ("ready"), mid-load ("loading"), dropped under memory pressure
// ("evicted"), broken ("failed"), or present on disk but never yet
// requested ("available").
type ModelInfo struct {
	Name  string `json:"name"`
	State string `json:"state"`

	// Dimensions and accounting of the resident snapshot; zero unless
	// State == "ready".
	V       int   `json:"v,omitempty"`
	K       int   `json:"k,omitempty"`
	Bytes   int64 `json:"bytes,omitempty"`
	Version int   `json:"version,omitempty"`

	// Generation is the resident snapshot's delta-chain position: 0
	// right after a file load, g after folding WARPDLT deltas 1..g.
	// Meaningful only when State == "ready".
	Generation int64 `json:"generation"`

	// Lifecycle counters. Hits counts Acquire calls answered from this
	// entry; Loads counts successful (re)loads; Evictions counts LRU
	// drops.
	Hits      int64 `json:"hits"`
	Loads     int   `json:"loads"`
	Evictions int   `json:"evictions"`

	// LoadMs is the duration of the last successful load (file read +
	// engine build).
	LoadMs float64 `json:"load_ms,omitempty"`
	// LoadedAt is the last successful load time, RFC 3339, empty if
	// never loaded.
	LoadedAt string `json:"loaded_at,omitempty"`
	// LastError is the most recent load/reload failure, empty when the
	// last operation succeeded.
	LastError string `json:"last_error,omitempty"`

	// Versions lists the published <name>@<iter>.bin siblings of a base
	// model, oldest first — the handles a drift query pins (only set by
	// Info, and only for base names).
	Versions []VersionInfo `json:"versions,omitempty"`
}

// VersionInfo identifies one published training iteration of a model:
// a <base>@<iter>.bin sibling servable under the name "<base>@<iter>".
type VersionInfo struct {
	Name string `json:"name"`
	Iter int    `json:"iter"`
}

// Stats is registry-wide accounting.
type Stats struct {
	// Dir is the model directory the registry serves.
	Dir string `json:"dir"`
	// BytesResident is the accounted size of all resident snapshots;
	// MaxBytes is the LRU budget (0 = unlimited).
	BytesResident int64 `json:"bytes_resident"`
	MaxBytes      int64 `json:"max_bytes"`
	// Ready is the number of resident models; Evictions the total LRU
	// drops over the registry's lifetime.
	Ready     int   `json:"ready"`
	Evictions int64 `json:"evictions"`
	// Prefetched counts versioned snapshots the poller prebuilt ahead
	// of a latest-pointer swap; PrefetchHits counts loads answered from
	// one (a hit means the swap paid no engine build). WarmReady is the
	// number of prebuilt snapshots currently waiting, at most one per
	// base model; their bytes are NOT in BytesResident until installed.
	Prefetched   int64 `json:"prefetched"`
	PrefetchHits int64 `json:"prefetch_hits"`
	WarmReady    int   `json:"warm_ready"`
	// Incremental refresh: DeltasApplied counts WARPDLT deltas folded
	// into live engines; DeltaRejected counts delta files refused by
	// chain validation (CRC, fingerprint, generation, dims, budget);
	// FoldMs is the cumulative fold wall time (validate + count patch +
	// touched-word alias rebuilds, all off the request path); and
	// WordsRebuilt counts the per-word alias tables those folds rebuilt
	// — the work a full reload would have paid V times per swap.
	DeltasApplied int64   `json:"deltas_applied"`
	DeltaRejected int64   `json:"delta_rejected"`
	FoldMs        float64 `json:"fold_ms"`
	WordsRebuilt  int64   `json:"words_rebuilt"`
}

func (e *entry) info() ModelInfo {
	mi := ModelInfo{
		Name:      e.name,
		State:     stateNames[e.state],
		Hits:      e.hits,
		Loads:     e.loads,
		Evictions: e.evictions,
		LastError: e.lastErr,
	}
	if e.state == stateReady {
		mi.V = e.snap.Model.V
		mi.K = e.snap.Model.Cfg.K
		mi.Bytes = e.snap.Bytes
		mi.Version = e.snap.Version
		mi.Generation = e.gen
	}
	if !e.loadedAt.IsZero() {
		mi.LoadMs = float64(e.loadDur.Microseconds()) / 1000
		mi.LoadedAt = e.loadedAt.UTC().Format("2006-01-02T15:04:05.000Z07:00")
	}
	return mi
}

// Info returns the stats of one known model. The second result is
// false when the registry has no entry for the name AND no file on disk
// offers one.
func (r *Registry) Info(name string) (ModelInfo, bool) {
	r.mu.Lock()
	e := r.entries[name]
	if e != nil {
		mi := e.info()
		r.mu.Unlock()
		mi.Versions = r.Versions(name) // disk scan, off the lock
		return mi, true
	}
	r.mu.Unlock()
	if _, _, err := r.resolvePath(name); err == nil {
		return ModelInfo{Name: name, State: "available", Versions: r.Versions(name)}, true
	}
	return ModelInfo{}, false
}

// Versions lists the published versioned siblings <base>@<iter>.bin of
// a base model, sorted oldest first. Each is servable (and therefore
// pinnable by a drift query) under the name "<base>@<iter>". Versioned
// names and unknown bases return nil.
func (r *Registry) Versions(base string) []VersionInfo {
	if strings.Contains(base, "@") {
		return nil
	}
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var out []VersionInfo
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), base+"@") {
			continue
		}
		m := versionedIterRE.FindStringSubmatch(de.Name()[len(base):])
		if m == nil {
			continue
		}
		iter, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		out = append(out, VersionInfo{Name: base + "@" + m[1], Iter: iter})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out
}

// List returns every model the registry knows about — resident,
// evicted, failed, and on-disk-but-unrequested — sorted by name.
func (r *Registry) List() []ModelInfo {
	seen := make(map[string]ModelInfo)
	r.mu.Lock()
	for name, e := range r.entries {
		seen[name] = e.info()
	}
	r.mu.Unlock()
	for _, name := range r.scan() {
		if _, ok := seen[name]; !ok {
			seen[name] = ModelInfo{Name: name, State: "available"}
		}
	}
	out := make([]ModelInfo, 0, len(seen))
	for _, mi := range seen {
		out = append(out, mi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// scan discovers model names on disk: <name>.bin files and <name>/
// subdirectories holding a model.bin. Names the registry would refuse
// to serve (nameRE, the Restrict allowlist) are skipped.
func (r *Registry) scan() []string {
	des, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, de := range des {
		name := de.Name()
		switch {
		case !de.IsDir() && strings.HasSuffix(name, ".bin"):
			name = strings.TrimSuffix(name, ".bin")
		case de.IsDir():
			if fi, err := os.Stat(filepath.Join(r.dir, name, "model.bin")); err != nil || !fi.Mode().IsRegular() {
				continue
			}
		default:
			continue
		}
		if nameRE.MatchString(name) && (r.restrict == nil || r.restrict[name]) {
			names = append(names, name)
		}
	}
	return names
}

// RegistryStats returns the registry-wide accounting snapshot.
func (r *Registry) RegistryStats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	ready := 0
	for _, e := range r.entries {
		if e.state == stateReady {
			ready++
		}
	}
	return Stats{
		Dir:           r.dir,
		BytesResident: r.bytes,
		MaxBytes:      r.opts.MaxBytes,
		Ready:         ready,
		Evictions:     r.evicted,
		Prefetched:    r.prefetched,
		PrefetchHits:  r.prefetchHits,
		WarmReady:     len(r.warm),
		DeltasApplied: r.deltasApplied,
		DeltaRejected: r.deltaRejected,
		FoldMs:        float64(r.foldDur.Microseconds()) / 1000,
		WordsRebuilt:  r.wordsRebuilt,
	}
}
