// Package cachesim provides a software model of a CPU cache hierarchy
// and replays the count-matrix access patterns of each LDA algorithm
// through it. It substitutes for the PAPI hardware counters the paper
// uses to produce Table 4 (L3 cache miss rates): the hardware is not
// available here, but the *mechanism* the paper measures — whether an
// algorithm's randomly accessed working set fits in the L3 cache — is
// architecture-independent and is what this simulator reproduces.
package cachesim

import "fmt"

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name string
	Size int // bytes
	Ways int // associativity
}

// Config describes a cache hierarchy, first level closest to the core.
type Config struct {
	LineSize int
	Levels   []LevelConfig
}

// IvyBridge is the paper's Table 1 machine: 32KB L1D, 256KB L2, 30MB L3,
// 64-byte lines.
func IvyBridge() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1D", Size: 32 << 10, Ways: 8},
			{Name: "L2", Size: 256 << 10, Ways: 8},
			{Name: "L3", Size: 30 << 20, Ways: 20},
		},
	}
}

// Scaled returns the Ivy Bridge geometry shrunk by factor (≥ 1): the
// experiments run on corpora thousands of times smaller than the paper's,
// so the caches are shrunk by a similar factor to preserve the ratio
// between matrix sizes and cache sizes. Associativity and line size are
// kept; sizes are rounded to a power-of-two set count.
func Scaled(factor int) Config {
	c := IvyBridge()
	for i := range c.Levels {
		s := c.Levels[i].Size / factor
		min := c.LineSize * c.Levels[i].Ways
		if s < min {
			s = min
		}
		c.Levels[i].Size = s
	}
	return c
}

// LevelStats counts accesses that reached a level and misses there.
type LevelStats struct {
	Name     string
	Accesses int64
	Misses   int64
}

// MissRate returns Misses/Accesses (0 when idle).
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// level is one set-associative LRU cache.
type level struct {
	sets    int
	ways    int
	shift   uint // line offset bits
	tags    []uint64
	lastUse []int64
	stats   LevelStats
}

func newLevel(cfg LevelConfig, lineSize int) *level {
	lines := cfg.Size / lineSize
	sets := lines / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two for mask indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}
	l := &level{
		sets:    sets,
		ways:    cfg.Ways,
		shift:   shift,
		tags:    make([]uint64, sets*cfg.Ways),
		lastUse: make([]int64, sets*cfg.Ways),
		stats:   LevelStats{Name: cfg.Name},
	}
	for i := range l.tags {
		l.tags[i] = ^uint64(0)
	}
	return l
}

// access looks up addr; on miss it installs the line (inclusive model).
// Returns true on hit.
func (l *level) access(addr uint64, clock int64) bool {
	line := addr >> l.shift
	set := int(line) & (l.sets - 1)
	base := set * l.ways
	l.stats.Accesses++
	victim, oldest := base, l.lastUse[base]
	for i := base; i < base+l.ways; i++ {
		if l.tags[i] == line {
			l.lastUse[i] = clock
			return true
		}
		if l.lastUse[i] < oldest {
			victim, oldest = i, l.lastUse[i]
		}
	}
	l.stats.Misses++
	l.tags[victim] = line
	l.lastUse[victim] = clock
	return false
}

// Hierarchy simulates an inclusive multi-level cache: an access probes
// L1; on miss it proceeds to L2, and so on. Misses at the last level go
// to main memory.
type Hierarchy struct {
	cfg    Config
	levels []*level
	clock  int64
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.LineSize <= 0 || len(cfg.Levels) == 0 {
		panic("cachesim: invalid config")
	}
	h := &Hierarchy{cfg: cfg}
	for _, lc := range cfg.Levels {
		h.levels = append(h.levels, newLevel(lc, cfg.LineSize))
	}
	return h
}

// Access simulates one memory access to byte address addr. It returns
// the index of the level that served it (len(levels) means main memory).
func (h *Hierarchy) Access(addr uint64) int {
	h.clock++
	for i, l := range h.levels {
		if l.access(addr, h.clock) {
			return i
		}
	}
	return len(h.levels)
}

// AccessRange simulates a sequential touch of size bytes starting at addr
// (one access per cache line).
func (h *Hierarchy) AccessRange(addr uint64, size int) {
	line := uint64(h.cfg.LineSize)
	end := addr + uint64(size)
	for a := addr &^ (line - 1); a < end; a += line {
		h.Access(a)
	}
}

// Stats returns per-level statistics, ordered from L1 outward.
func (h *Hierarchy) Stats() []LevelStats {
	out := make([]LevelStats, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.stats
	}
	return out
}

// Level returns the stats of the named level.
func (h *Hierarchy) Level(name string) (LevelStats, error) {
	for _, l := range h.levels {
		if l.stats.Name == name {
			return l.stats, nil
		}
	}
	return LevelStats{}, fmt.Errorf("cachesim: no level %q", name)
}

// Reset clears contents and statistics.
func (h *Hierarchy) Reset() {
	for i, l := range h.levels {
		nl := newLevel(h.cfg.Levels[i], h.cfg.LineSize)
		*l = *nl
	}
	h.clock = 0
}
