package cachesim

import (
	"fmt"
	"math"

	"warplda/internal/corpus"
	"warplda/internal/rng"
)

// Algorithm names accepted by Replay. They correspond to the rows of the
// paper's Table 2 / Table 4.
const (
	AlgCGS       = "cgs"
	AlgSparseLDA = "sparselda"
	AlgAliasLDA  = "aliaslda"
	AlgFPlusLDA  = "flda"
	AlgLightLDA  = "lightlda"
	AlgWarpLDA   = "warplda"
)

// Algorithms lists every replayable algorithm in Table 2 order.
var Algorithms = []string{AlgCGS, AlgSparseLDA, AlgAliasLDA, AlgFPlusLDA, AlgLightLDA, AlgWarpLDA}

// Disjoint virtual address regions for the data structures whose accesses
// the paper's analysis tracks. 1TB apart so they never alias.
const (
	baseCd    uint64 = 1 << 40 // D×K document-topic count matrix
	baseCw    uint64 = 2 << 40 // V×K word-topic count matrix
	baseRowCd uint64 = 3 << 40 // WarpLDA's single reused cd buffer
	baseRowCw uint64 = 4 << 40 // WarpLDA's single reused cw buffer
	baseTok   uint64 = 5 << 40 // token array (sequential)
	baseAlias uint64 = 6 << 40 // per-word alias tables
	baseCk    uint64 = 7 << 40 // global topic counts (K vector)
)

const elem = 4 // bytes per count

// ReplayConfig controls a pattern replay.
type ReplayConfig struct {
	K         int
	M         int    // MH steps per token (MH-based algorithms)
	MaxTokens int    // cap on replayed tokens (0 = all)
	Seed      uint64 // topic-draw randomness
}

// Replay streams the count-matrix access pattern of the named algorithm
// over corpus c through hierarchy h. It models exactly the accesses the
// paper's Section 3.3 analysis attributes to each algorithm: which of
// Cd / Cw is touched per token, at what granularity, and in which token
// order. Topic indices are drawn at random — the cache behaviour depends
// on *where* the accesses land (row vs whole matrix), not on which topic
// wins.
func Replay(alg string, c *corpus.Corpus, h *Hierarchy, cfg ReplayConfig) error {
	if cfg.K <= 0 {
		return fmt.Errorf("cachesim: K must be positive")
	}
	if cfg.M <= 0 {
		cfg.M = 1
	}
	r := rng.New(cfg.Seed)
	switch alg {
	case AlgCGS:
		replayDocOrder(c, h, cfg, func(d, w int, ld, lw int) {
			// O(K) sequential scan of both count rows.
			h.AccessRange(baseCw+uint64(w)*uint64(cfg.K)*elem, cfg.K*elem)
			h.AccessRange(baseCd+uint64(d)*uint64(cfg.K)*elem, cfg.K*elem)
		})
	case AlgSparseLDA:
		replayDocOrder(c, h, cfg, func(d, w int, ld, lw int) {
			// Kw random entries of word row + Kd random entries of doc row.
			kw := expectedDistinct(cfg.K, lw)
			for i := 0; i < kw; i++ {
				h.Access(baseCw + uint64(w)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			}
			kd := expectedDistinct(cfg.K, ld)
			for i := 0; i < kd; i++ {
				h.Access(baseCd + uint64(d)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			}
		})
	case AlgAliasLDA:
		replayDocOrder(c, h, cfg, func(d, w int, ld, lw int) {
			// Kd entries of the doc row; one stale alias-table draw and one
			// Cw probe for the MH correction.
			kd := expectedDistinct(cfg.K, ld)
			for i := 0; i < kd; i++ {
				h.Access(baseCd + uint64(d)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			}
			aliasSize := expectedDistinct(cfg.K, lw) * 16
			h.Access(baseAlias + uint64(w)*uint64(cfg.K)*16 + uint64(r.Intn(aliasSize/8+1))*8)
			h.Access(baseCw + uint64(w)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
		})
	case AlgFPlusLDA:
		return replayWordOrder(c, h, cfg, func(d, w int, ld, lw int) {
			// Word row is the current locality set; doc rows are random.
			h.Access(baseCw + uint64(w)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			kd := expectedDistinct(cfg.K, ld)
			for i := 0; i < kd; i++ {
				h.Access(baseCd + uint64(d)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			}
		})
	case AlgLightLDA:
		replayDocOrder(c, h, cfg, func(d, w int, ld, lw int) {
			for m := 0; m < cfg.M; m++ {
				// Doc proposal: doc row (current doc — cached) + Cw probe for
				// the acceptance rate; word proposal: alias draw + Cw probe.
				h.Access(baseCd + uint64(d)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
				h.Access(baseCw + uint64(w)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
				aliasSize := expectedDistinct(cfg.K, lw) * 16
				h.Access(baseAlias + uint64(w)*uint64(cfg.K)*16 + uint64(r.Intn(aliasSize/8+1))*8)
				h.Access(baseCw + uint64(w)*uint64(cfg.K)*elem + uint64(r.Intn(cfg.K))*elem)
			}
		})
	case AlgWarpLDA:
		// Doc phase: all random accesses land in one reused cd buffer.
		replayDocOrder(c, h, cfg, func(d, w int, ld, lw int) {
			buf := hashBytes(cfg.K, ld)
			for m := 0; m < cfg.M; m++ {
				h.Access(baseRowCd + uint64(r.Intn(buf/elem))*elem)
				h.Access(baseCk + uint64(r.Intn(cfg.K))*elem)
			}
		})
		// Word phase: one reused cw buffer.
		return replayWordOrder(c, h, cfg, func(d, w int, ld, lw int) {
			buf := hashBytes(cfg.K, lw)
			for m := 0; m < cfg.M; m++ {
				h.Access(baseRowCw + uint64(r.Intn(buf/elem))*elem)
				h.Access(baseCk + uint64(r.Intn(cfg.K))*elem)
			}
		})
	default:
		return fmt.Errorf("cachesim: unknown algorithm %q", alg)
	}
	return nil
}

// replayDocOrder visits tokens document-by-document. Each token also
// issues one sequential token-array read, as every algorithm streams the
// token data.
func replayDocOrder(c *corpus.Corpus, h *Hierarchy, cfg ReplayConfig, fn func(d, w, ld, lw int)) {
	tf := c.TermFrequencies()
	n := 0
	idx := 0
	for d, doc := range c.Docs {
		for _, w := range doc {
			if cfg.MaxTokens > 0 && n >= cfg.MaxTokens {
				return
			}
			h.Access(baseTok + uint64(idx)*8)
			fn(d, int(w), len(doc), tf[w])
			n++
			idx++
		}
	}
}

// replayWordOrder visits tokens word-by-word via the word-major view.
func replayWordOrder(c *corpus.Corpus, h *Hierarchy, cfg ReplayConfig, fn func(d, w, ld, lw int)) error {
	wm := corpus.BuildWordMajor(c)
	n := 0
	idx := 0
	for w := 0; w < c.V; w++ {
		col := wm.DocID[wm.Start[w]:wm.Start[w+1]]
		for _, d := range col {
			if cfg.MaxTokens > 0 && n >= cfg.MaxTokens {
				return nil
			}
			h.Access(baseTok + uint64(idx)*8)
			fn(int(d), w, len(c.Docs[d]), len(col))
			n++
			idx++
		}
	}
	return nil
}

// expectedDistinct approximates Kd (or Kw): the expected number of
// distinct topics among l draws from K, K·(1 − (1 − 1/K)^l), capped for
// replay speed.
func expectedDistinct(k, l int) int {
	e := float64(k) * (1 - math.Pow(1-1/float64(k), float64(l)))
	n := int(e + 0.5)
	if n < 1 {
		n = 1
	}
	if n > 64 { // cap: replay cost, not fidelity — the locality set is what matters
		n = 64
	}
	return n
}

// hashBytes is the byte size of WarpLDA's per-row hash table: capacity
// the minimum power of two > min(K, 2L), 8 bytes per slot (key+count).
func hashBytes(k, l int) int {
	n := k
	if 2*l < n {
		n = 2 * l
	}
	c := 8
	for c <= n {
		c <<= 1
	}
	return c * 8
}
