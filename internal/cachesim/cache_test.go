package cachesim

import (
	"testing"

	"warplda/internal/corpus"
)

func tinyConfig() Config {
	return Config{
		LineSize: 64,
		Levels: []LevelConfig{
			{Name: "L1D", Size: 1 << 10, Ways: 2},
			{Name: "L2", Size: 4 << 10, Ways: 4},
			{Name: "L3", Size: 16 << 10, Ways: 4},
		},
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(tinyConfig())
	if lvl := h.Access(0x1000); lvl != 3 {
		t.Fatalf("cold access served by level %d, want memory (3)", lvl)
	}
	if lvl := h.Access(0x1000); lvl != 0 {
		t.Fatalf("repeat access served by level %d, want L1 (0)", lvl)
	}
	// Same cache line.
	if lvl := h.Access(0x1030); lvl != 0 {
		t.Fatalf("same-line access served by level %d, want L1", lvl)
	}
}

func TestWorkingSetFitsInL3NotL1(t *testing.T) {
	h := New(tinyConfig())
	// 8KB working set: fits L3 (16KB) but not L1 (1KB).
	const size = 8 << 10
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < size; a += 64 {
			h.Access(a)
		}
	}
	l1, _ := h.Level("L1D")
	l3, _ := h.Level("L3")
	if l1.MissRate() < 0.9 {
		t.Errorf("L1 miss rate %.2f, want ~1 for 8x-oversized working set", l1.MissRate())
	}
	// After the cold pass, L3 should serve everything: overall misses
	// bounded by the cold pass (1/4 of L3-reaching accesses).
	if got := l3.MissRate(); got > 0.30 {
		t.Errorf("L3 miss rate %.2f, want <= cold-pass share", got)
	}
}

func TestWorkingSetExceedsL3(t *testing.T) {
	h := New(tinyConfig())
	const size = 256 << 10 // 16x the 16KB L3
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < size; a += 64 {
			h.Access(a)
		}
	}
	l3, _ := h.Level("L3")
	if got := l3.MissRate(); got < 0.99 {
		t.Errorf("L3 miss rate %.3f for sequential over-capacity sweep, want ~1", got)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// Direct test of LRU: 2-way L1, three lines mapping to the same set.
	cfg := Config{LineSize: 64, Levels: []LevelConfig{{Name: "L1", Size: 2 << 10, Ways: 2}}}
	h := New(cfg)
	sets := uint64((2 << 10) / 64 / 2) // 16 sets
	stride := sets * 64
	a, b, c := uint64(0), stride, 2*stride
	h.Access(a)
	h.Access(b)
	h.Access(a) // a is now MRU
	h.Access(c) // evicts b (LRU)
	if lvl := h.Access(a); lvl != 0 {
		t.Fatal("a evicted despite being MRU")
	}
	if lvl := h.Access(b); lvl == 0 {
		t.Fatal("b still resident despite being LRU victim")
	}
}

func TestAccessRange(t *testing.T) {
	h := New(tinyConfig())
	h.AccessRange(10, 200) // spans lines 0,64,128 → 4 lines (10..210 crosses 0,64,128,192)
	l1, _ := h.Level("L1D")
	if l1.Accesses != 4 {
		t.Fatalf("AccessRange issued %d accesses, want 4", l1.Accesses)
	}
}

func TestReset(t *testing.T) {
	h := New(tinyConfig())
	h.Access(0)
	h.Reset()
	l1, _ := h.Level("L1D")
	if l1.Accesses != 0 {
		t.Fatal("stats survived Reset")
	}
	if lvl := h.Access(0); lvl != 3 {
		t.Fatal("contents survived Reset")
	}
}

func TestLevelLookupError(t *testing.T) {
	h := New(tinyConfig())
	if _, err := h.Level("L9"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestIvyBridgeGeometry(t *testing.T) {
	cfg := IvyBridge()
	if cfg.Levels[2].Size != 30<<20 || cfg.LineSize != 64 {
		t.Fatalf("unexpected Ivy Bridge config %+v", cfg)
	}
	sc := Scaled(1024)
	if sc.Levels[2].Size >= cfg.Levels[2].Size/512 {
		t.Fatalf("Scaled did not shrink L3: %d", sc.Levels[2].Size)
	}
	for _, l := range sc.Levels {
		if l.Size < sc.LineSize*l.Ways {
			t.Fatalf("scaled level %s too small: %d", l.Name, l.Size)
		}
	}
}

func replayCorpus() *corpus.Corpus {
	return corpus.GenerateZipf(400, 800, 60, 0.9, 42)
}

func TestReplayAllAlgorithms(t *testing.T) {
	c := replayCorpus()
	for _, alg := range Algorithms {
		h := New(Scaled(256))
		if err := Replay(alg, c, h, ReplayConfig{K: 128, M: 1, MaxTokens: 5000, Seed: 1}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		l3, err := h.Level("L3")
		if err != nil {
			t.Fatal(err)
		}
		if l3.Accesses == 0 && alg != AlgWarpLDA {
			t.Errorf("%s: no accesses reached L3", alg)
		}
	}
}

func TestReplayUnknownAlgorithm(t *testing.T) {
	h := New(tinyConfig())
	if err := Replay("nope", replayCorpus(), h, ReplayConfig{K: 8}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestReplayRejectsZeroK(t *testing.T) {
	h := New(tinyConfig())
	if err := Replay(AlgWarpLDA, replayCorpus(), h, ReplayConfig{}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

// The headline Table 4 shape: WarpLDA's L3 miss rate is far below
// LightLDA's and F+LDA's, because its random accesses stay in a reused
// O(K) buffer while theirs spread over O(KV)/O(DK) matrices.
func TestWarpLDAMissesBelowBaselines(t *testing.T) {
	c := replayCorpus()
	miss := map[string]float64{}
	for _, alg := range []string{AlgWarpLDA, AlgLightLDA, AlgFPlusLDA} {
		h := New(Scaled(1024)) // L3 ≈ 30KB vs count matrices ≈ 400KB
		if err := Replay(alg, c, h, ReplayConfig{K: 128, M: 1, Seed: 2}); err != nil {
			t.Fatal(err)
		}
		l3, _ := h.Level("L3")
		miss[alg] = l3.MissRate()
	}
	if miss[AlgWarpLDA] >= miss[AlgLightLDA]/2 {
		t.Errorf("WarpLDA L3 miss %.3f not well below LightLDA %.3f", miss[AlgWarpLDA], miss[AlgLightLDA])
	}
	if miss[AlgWarpLDA] >= miss[AlgFPlusLDA]/2 {
		t.Errorf("WarpLDA L3 miss %.3f not well below F+LDA %.3f", miss[AlgWarpLDA], miss[AlgFPlusLDA])
	}
}

func TestExpectedDistinct(t *testing.T) {
	if got := expectedDistinct(1000, 1); got != 1 {
		t.Fatalf("one draw gives %d distinct", got)
	}
	if got := expectedDistinct(10, 10000); got != 10 {
		t.Fatalf("saturated draws give %d, want 10", got)
	}
	if got := expectedDistinct(1000000, 100); got < 90 || got > 64+36 {
		// ~100 expected, capped at 64
		if got != 64 {
			t.Fatalf("expectedDistinct(1e6,100) = %d", got)
		}
	}
}

func TestHashBytes(t *testing.T) {
	// min(K,2L)=6 → capacity 8 → 64 bytes.
	if got := hashBytes(1000000, 3); got != 64 {
		t.Fatalf("hashBytes = %d, want 64", got)
	}
	// min(K,2L)=1000 → capacity 1024 → 8KB.
	if got := hashBytes(1000, google); got != 1024*8 {
		t.Fatalf("hashBytes = %d, want 8192", got)
	}
}

const google = 100000 // large L so min(K,2L)=K

func BenchmarkAccess(b *testing.B) {
	h := New(IvyBridge())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64) % (64 << 20))
	}
}
