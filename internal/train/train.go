// Package train orchestrates long training runs. It owns the
// iterate/eval loop (sampler.Loop is the shared core; sampler.Train is
// the fire-and-forget thin wrapper), and adds what a multi-hour
// production job needs on top of it:
//
//   - periodic checkpoints — CRC-trailed, atomically renamed snapshots
//     of the sampler's complete state, so a crashed or killed run
//     resumes bit-identically to one that was never interrupted;
//   - cooperative interruption — a Stop channel (wired to SIGINT /
//     SIGTERM by cmd/warplda-train) that finishes the current
//     iteration, checkpoints, and returns instead of dying mid-pass;
//   - an optional wall-clock budget on sampling time;
//   - progress callbacks for operational observability.
package train

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/fsio"
	"warplda/internal/sampler"
)

// Options configures a training run. Iters is required; everything
// else is optional.
type Options struct {
	// Iters is the target number of completed iterations (counted from
	// the start of the run, including any iterations a resumed
	// checkpoint already completed).
	Iters int
	// EvalEvery is the log-likelihood evaluation interval in iterations;
	// <= 0 means every iteration. The final iteration is always
	// evaluated.
	EvalEvery int
	// CheckpointDir, when non-empty, is the directory that receives
	// checkpoint snapshots (as DefaultFileName, atomically replaced).
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in iterations. <= 0
	// with a CheckpointDir means checkpoints are written only at
	// interruption, budget exhaustion, and completion.
	CheckpointEvery int
	// CheckpointKeep is the keep-last-N retention bound on
	// iteration-stamped checkpoints in CheckpointDir: after every
	// successful checkpoint, older ones beyond the newest N are
	// deleted. <= 0 means 1 (only the newest survives — the disk bound
	// of the pre-retention single-file behavior, with a stamped name).
	CheckpointKeep int
	// Logf, when non-nil, receives operational notices that are not
	// errors but that an operator should see — most importantly the
	// elastic-resume notice that worker RNG streams were reseeded
	// because the worker count changed (the resumed run is then
	// statistically equivalent to, not bit-identical with, the
	// uninterrupted one).
	Logf func(format string, args ...any)
	// Budget, when > 0, bounds cumulative *sampling* time: the run stops
	// (and checkpoints) after the first iteration that crosses it.
	// Evaluation time is excluded, matching the trace's Elapsed.
	Budget time.Duration
	// Stop requests cooperative interruption: after it is closed (or
	// receives a value) the current iteration finishes, a checkpoint is
	// written, and Run returns with Interrupted set.
	Stop <-chan struct{}
	// Progress, when non-nil, is called after every iteration with the
	// loop position, the evaluation point if one was recorded, and the
	// checkpoint path if one was written.
	Progress func(Event)
	// ResumeFrom, when non-nil, is a checkpoint to continue from. It
	// must match the sampler's algorithm, the corpus, and cfg exactly
	// (Checkpoint.Verify); the sampler's state is replaced before the
	// first iteration.
	ResumeFrom *Checkpoint
}

// Event is one Progress callback's payload.
type Event struct {
	// Iter is the just-completed iteration; Iters the run target.
	Iter, Iters int
	// Eval is the evaluation recorded after this iteration, if any.
	Eval *sampler.Point
	// Checkpoint is the path of the checkpoint written after this
	// iteration, if any.
	Checkpoint string
}

// Result describes how a run ended.
type Result struct {
	// Run is the convergence trace (including points restored from a
	// resumed checkpoint, so an interrupted + resumed run's final trace
	// equals the uninterrupted run's).
	Run sampler.Run
	// Iter is the number of completed iterations.
	Iter int
	// Completed reports whether the Iters target was reached.
	Completed bool
	// Interrupted reports a cooperative stop via Options.Stop;
	// OverBudget a stop via Options.Budget.
	Interrupted bool
	OverBudget  bool
	// CheckpointPath is the last checkpoint written, if any.
	CheckpointPath string
}

// Run trains s on c until opts.Iters iterations complete, the budget is
// exhausted, or a stop is requested — checkpointing along the way when
// configured. c may be any corpus provider (in-memory, or the mapped
// out-of-core cache) and must be the corpus s was built over. The
// returned Result is valid (trace so far, stop reason) for every
// non-error return.
func Run(s sampler.Sampler, c corpus.Provider, cfg sampler.Config, opts Options) (Result, error) {
	if opts.Iters <= 0 {
		return Result{}, fmt.Errorf("train: Iters = %d, want > 0", opts.Iters)
	}
	loop := sampler.NewLoop(s, c, cfg, opts.EvalEvery)
	fingerprint := CorpusFingerprint(c)

	if ck := opts.ResumeFrom; ck != nil {
		if ck.Iter > opts.Iters {
			return Result{}, fmt.Errorf("train: checkpoint is at iteration %d, past the %d-iteration target", ck.Iter, opts.Iters)
		}
		if ck.IsSharded() {
			sh, ok := s.(sampler.Sharded)
			if !ok {
				return Result{}, fmt.Errorf("train: checkpoint is sharded (%d shards) but sampler %q does not support sharded state", len(ck.ShardFiles), s.Name())
			}
			if err := ck.VerifyElastic(s.Name(), fingerprint, cfg); err != nil {
				return Result{}, err
			}
			reseeded, err := ck.RestoreInto(sh)
			if err != nil {
				return Result{}, fmt.Errorf("train: restoring sharded state: %w", err)
			}
			if reseeded && opts.Logf != nil {
				opts.Logf("elastic resume: repartitioned %d-shard checkpoint across %d workers; worker RNG streams reseeded (run is statistically equivalent, not bit-identical, to an uninterrupted one)",
					len(ck.ShardFiles), sh.NumShards())
			}
		} else {
			if err := ck.Verify(s.Name(), fingerprint, cfg); err != nil {
				return Result{}, err
			}
			if err := s.RestoreFrom(bytes.NewReader(ck.State)); err != nil {
				return Result{}, fmt.Errorf("train: restoring sampler state: %w", err)
			}
		}
		loop.SetProgress(ck.Iter, ck.Elapsed, ck.Trace)
	}

	stopped := func() bool {
		select {
		case <-opts.Stop:
			return true
		default:
			return false
		}
	}

	res := Result{}
	save := func() (string, error) {
		if opts.CheckpointDir == "" {
			return "", nil
		}
		path, err := writeCheckpoint(loop, fingerprint, opts.CheckpointDir)
		if err != nil {
			res.Run, res.Iter = loop.Trace, loop.Iter
			return "", fmt.Errorf("train: writing checkpoint at iteration %d: %w", loop.Iter, err)
		}
		if err := pruneCheckpoints(opts.CheckpointDir, opts.CheckpointKeep, loop.Iter); err != nil && opts.Logf != nil {
			// The checkpoint itself committed; a failed rotation costs
			// disk, not progress.
			opts.Logf("checkpoint retention: %v", err)
		}
		res.CheckpointPath = path
		return path, nil
	}
	for loop.Iter < opts.Iters {
		// A stop that lands outside Step (during eval, checkpoint I/O, or
		// a progress callback) is noticed here: checkpoint what we have
		// and leave without starting another iteration.
		if stopped() {
			res.Interrupted = true
			if loop.Iter > 0 {
				if _, err := save(); err != nil {
					return res, err
				}
			}
			break
		}
		loop.Step()
		final := loop.Iter == opts.Iters

		var ev Event
		ev.Iter, ev.Iters = loop.Iter, opts.Iters
		if p, ok := loop.Eval(final); ok {
			ev.Eval = &p
		}

		if stopped() {
			res.Interrupted = true
		}
		if opts.Budget > 0 && loop.Elapsed >= opts.Budget {
			res.OverBudget = true
		}
		periodic := opts.CheckpointEvery > 0 && loop.Iter%opts.CheckpointEvery == 0
		if periodic || final || res.Interrupted || res.OverBudget {
			path, err := save()
			if err != nil {
				return res, err
			}
			ev.Checkpoint = path
		}
		if opts.Progress != nil {
			opts.Progress(ev)
		}
		if res.Interrupted || res.OverBudget {
			break
		}
	}
	res.Run = loop.Trace
	res.Iter = loop.Iter
	res.Completed = loop.Iter >= opts.Iters
	if res.Completed {
		res.Interrupted, res.OverBudget = false, false
	}
	return res, nil
}

// writeCheckpoint snapshots the loop into CheckpointDir under an
// iteration-stamped name. Samplers with sharded state write one file
// per worker concurrently plus a manifest (manifest.go); everything
// else streams its state straight into a single checksummed,
// atomically renamed file — either way checkpointing costs O(1) extra
// memory regardless of state size.
func writeCheckpoint(loop *sampler.Loop, fingerprint uint32, dir string) (string, error) {
	ck := &Checkpoint{
		Sampler:     loop.Sampler.Name(),
		Cfg:         loop.Cfg,
		Iter:        loop.Iter,
		Elapsed:     loop.Elapsed,
		Trace:       loop.Trace,
		Fingerprint: fingerprint,
	}
	if sh, ok := loop.Sampler.(sampler.Sharded); ok {
		return ck.writeSharded(dir, sh)
	}
	path := filepath.Join(dir, stampedName(loop.Iter))
	if _, err := ck.writeFileStreaming(path, loop.Sampler.StateTo); err != nil {
		return "", err
	}
	return path, nil
}

// publishNameRE is the set of *base* model names -publish accepts. It
// is the serving registry's name rule (internal/registry's nameRE;
// kept in sync by TestPublishNamesMatchRegistry) minus '@': the
// registry additionally serves '@'-versioned names, but '@' is exactly
// the separator versioned publishing appends (<name>@<iter>), so a
// base name may not contain it. Publishing a name the registry would
// 404 on forever must fail here, at train time, not in production.
var publishNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// PublishPath resolves the -publish flag's "<dir>/<name>" spec to the
// model file path the serving registry loads for model <name>: the
// registry maps a model name to <dir>/<name>.bin (or a <name>/model.bin
// subdirectory; the flat file is what publishing writes). The spec's
// final element must be a bare model name the registry will accept — no
// path separators, no .bin suffix of its own, and within the registry's
// name alphabet.
func PublishPath(spec string) (path, name string, err error) {
	dir, name := filepath.Split(filepath.Clean(spec))
	if dir == "" || name == "" || name == "." || name == ".." {
		return "", "", fmt.Errorf("train: -publish wants <model-dir>/<model-name>, got %q", spec)
	}
	if filepath.Ext(name) == ".bin" {
		return "", "", fmt.Errorf("train: -publish takes a model name, not a file name (drop the .bin from %q)", spec)
	}
	if !publishNameRE.MatchString(name) {
		return "", "", fmt.Errorf("train: -publish name %q is not servable (want %s)", name, publishNameRE)
	}
	return filepath.Join(dir, name+".bin"), name, nil
}

// VersionedPublishPath resolves a publish spec to the
// iteration-stamped snapshot path <dir>/<name>@<iter>.bin and the
// versioned registry name <name>@<iter>. Versioned snapshots are what
// make registry rollback possible: every publish leaves a pinned,
// independently-servable model behind, and the unversioned <name> is
// just a pointer to one of them (PublishLatest).
func VersionedPublishPath(spec string, iter int) (path, name string, err error) {
	if iter < 0 {
		return "", "", fmt.Errorf("train: publish iteration %d, want >= 0", iter)
	}
	basePath, base, err := PublishPath(spec)
	if err != nil {
		return "", "", err
	}
	name = fmt.Sprintf("%s@%d", base, iter)
	return filepath.Join(filepath.Dir(basePath), name+".bin"), name, nil
}

// PublishLatest atomically points the unversioned model <dir>/<name>.bin
// at the already-written versioned snapshot <name>@<iter>.bin — the
// "latest" pointer a serving registry loads under the bare name. The
// swap is a relative symlink renamed into place, so a watching
// registry observes either the old version or the new one, never a
// partial state, and its inode-aware change detection picks the swap
// up without a restart. On filesystems without symlink support the
// snapshot's bytes are copied into place with the same atomic-rename
// discipline instead (functionally identical; rollback then costs a
// re-publish rather than a pointer move). The path of the updated
// pointer is returned.
func PublishLatest(spec string, iter int) (string, error) {
	latest, name, err := PublishPath(spec)
	if err != nil {
		return "", err
	}
	target, _, err := VersionedPublishPath(spec, iter)
	if err != nil {
		return "", err
	}
	if _, err := os.Stat(target); err != nil {
		return "", fmt.Errorf("train: versioned snapshot missing: %w", err)
	}
	dir := filepath.Dir(latest)
	tmp := filepath.Join(dir, fmt.Sprintf(".warplda-latest-%s-%d", name, os.Getpid()))
	os.Remove(tmp)
	if err := os.Symlink(filepath.Base(target), tmp); err != nil {
		// No symlinks here (exotic filesystem): fall back to an atomic
		// byte copy of the versioned snapshot.
		if _, cerr := fsio.AtomicWriteFile(latest, ".warplda-latest-*", func(w io.Writer) (int64, error) {
			f, err := os.Open(target)
			if err != nil {
				return 0, err
			}
			defer f.Close()
			return io.Copy(w, f)
		}); cerr != nil {
			return "", fmt.Errorf("train: installing latest pointer: %w (symlink: %v)", cerr, err)
		}
		return latest, nil
	}
	if err := os.Rename(tmp, latest); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("train: installing latest pointer: %w", err)
	}
	return latest, nil
}

// publishedVersionRE extracts the <iter> suffix of a pinned snapshot
// file name, matched against the part after the base name.
var publishedVersionRE = regexp.MustCompile(`^@(\d+)\.bin$`)

// PrunePublishedVersions deletes the oldest pinned version snapshots
// (<name>@<iter>.bin) of a publish target, keeping the newest keep of
// them. The version the "latest" pointer currently targets survives
// regardless of age — pruning must never dangle the pointer a serving
// registry follows, even after a rollback re-pointed it at an old
// version. Returns the paths removed.
func PrunePublishedVersions(spec string, keep int) ([]string, error) {
	if keep < 1 {
		return nil, fmt.Errorf("train: -publish-keep %d, want >= 1", keep)
	}
	latest, name, err := PublishPath(spec)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(latest)
	protected := ""
	if target, err := os.Readlink(latest); err == nil {
		protected = filepath.Base(target)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("train: pruning versions: %w", err)
	}
	type version struct {
		iter int
		file string
	}
	var vers []version
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), name+"@") {
			continue
		}
		m := publishedVersionRE.FindStringSubmatch(de.Name()[len(name):])
		if m == nil {
			continue
		}
		iter, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		vers = append(vers, version{iter, de.Name()})
	}
	sort.Slice(vers, func(i, j int) bool { return vers[i].iter > vers[j].iter })
	if keep > len(vers) {
		keep = len(vers)
	}
	var pruned []string
	for _, v := range vers[keep:] {
		if v.file == protected {
			continue
		}
		p := filepath.Join(dir, v.file)
		if err := os.Remove(p); err != nil {
			return pruned, fmt.Errorf("train: pruning versions: %w", err)
		}
		pruned = append(pruned, p)
	}
	return pruned, nil
}
