// Package train orchestrates long training runs. It owns the
// iterate/eval loop (sampler.Loop is the shared core; sampler.Train is
// the fire-and-forget thin wrapper), and adds what a multi-hour
// production job needs on top of it:
//
//   - periodic checkpoints — CRC-trailed, atomically renamed snapshots
//     of the sampler's complete state, so a crashed or killed run
//     resumes bit-identically to one that was never interrupted;
//   - cooperative interruption — a Stop channel (wired to SIGINT /
//     SIGTERM by cmd/warplda-train) that finishes the current
//     iteration, checkpoints, and returns instead of dying mid-pass;
//   - an optional wall-clock budget on sampling time;
//   - progress callbacks for operational observability.
package train

import (
	"bytes"
	"fmt"
	"path/filepath"
	"regexp"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/sampler"
)

// Options configures a training run. Iters is required; everything
// else is optional.
type Options struct {
	// Iters is the target number of completed iterations (counted from
	// the start of the run, including any iterations a resumed
	// checkpoint already completed).
	Iters int
	// EvalEvery is the log-likelihood evaluation interval in iterations;
	// <= 0 means every iteration. The final iteration is always
	// evaluated.
	EvalEvery int
	// CheckpointDir, when non-empty, is the directory that receives
	// checkpoint snapshots (as DefaultFileName, atomically replaced).
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in iterations. <= 0
	// with a CheckpointDir means checkpoints are written only at
	// interruption, budget exhaustion, and completion.
	CheckpointEvery int
	// Budget, when > 0, bounds cumulative *sampling* time: the run stops
	// (and checkpoints) after the first iteration that crosses it.
	// Evaluation time is excluded, matching the trace's Elapsed.
	Budget time.Duration
	// Stop requests cooperative interruption: after it is closed (or
	// receives a value) the current iteration finishes, a checkpoint is
	// written, and Run returns with Interrupted set.
	Stop <-chan struct{}
	// Progress, when non-nil, is called after every iteration with the
	// loop position, the evaluation point if one was recorded, and the
	// checkpoint path if one was written.
	Progress func(Event)
	// ResumeFrom, when non-nil, is a checkpoint to continue from. It
	// must match the sampler's algorithm, the corpus, and cfg exactly
	// (Checkpoint.Verify); the sampler's state is replaced before the
	// first iteration.
	ResumeFrom *Checkpoint
}

// Event is one Progress callback's payload.
type Event struct {
	// Iter is the just-completed iteration; Iters the run target.
	Iter, Iters int
	// Eval is the evaluation recorded after this iteration, if any.
	Eval *sampler.Point
	// Checkpoint is the path of the checkpoint written after this
	// iteration, if any.
	Checkpoint string
}

// Result describes how a run ended.
type Result struct {
	// Run is the convergence trace (including points restored from a
	// resumed checkpoint, so an interrupted + resumed run's final trace
	// equals the uninterrupted run's).
	Run sampler.Run
	// Iter is the number of completed iterations.
	Iter int
	// Completed reports whether the Iters target was reached.
	Completed bool
	// Interrupted reports a cooperative stop via Options.Stop;
	// OverBudget a stop via Options.Budget.
	Interrupted bool
	OverBudget  bool
	// CheckpointPath is the last checkpoint written, if any.
	CheckpointPath string
}

// Run trains s on c until opts.Iters iterations complete, the budget is
// exhausted, or a stop is requested — checkpointing along the way when
// configured. c may be any corpus provider (in-memory, or the mapped
// out-of-core cache) and must be the corpus s was built over. The
// returned Result is valid (trace so far, stop reason) for every
// non-error return.
func Run(s sampler.Sampler, c corpus.Provider, cfg sampler.Config, opts Options) (Result, error) {
	if opts.Iters <= 0 {
		return Result{}, fmt.Errorf("train: Iters = %d, want > 0", opts.Iters)
	}
	loop := sampler.NewLoop(s, c, cfg, opts.EvalEvery)
	fingerprint := CorpusFingerprint(c)

	if ck := opts.ResumeFrom; ck != nil {
		if err := ck.Verify(s.Name(), fingerprint, cfg); err != nil {
			return Result{}, err
		}
		if ck.Iter > opts.Iters {
			return Result{}, fmt.Errorf("train: checkpoint is at iteration %d, past the %d-iteration target", ck.Iter, opts.Iters)
		}
		if err := s.RestoreFrom(bytes.NewReader(ck.State)); err != nil {
			return Result{}, fmt.Errorf("train: restoring sampler state: %w", err)
		}
		loop.SetProgress(ck.Iter, ck.Elapsed, ck.Trace)
	}

	stopped := func() bool {
		select {
		case <-opts.Stop:
			return true
		default:
			return false
		}
	}

	res := Result{}
	save := func() (string, error) {
		if opts.CheckpointDir == "" {
			return "", nil
		}
		path, err := writeCheckpoint(loop, fingerprint, opts.CheckpointDir)
		if err != nil {
			res.Run, res.Iter = loop.Trace, loop.Iter
			return "", fmt.Errorf("train: writing checkpoint at iteration %d: %w", loop.Iter, err)
		}
		res.CheckpointPath = path
		return path, nil
	}
	for loop.Iter < opts.Iters {
		// A stop that lands outside Step (during eval, checkpoint I/O, or
		// a progress callback) is noticed here: checkpoint what we have
		// and leave without starting another iteration.
		if stopped() {
			res.Interrupted = true
			if loop.Iter > 0 {
				if _, err := save(); err != nil {
					return res, err
				}
			}
			break
		}
		loop.Step()
		final := loop.Iter == opts.Iters

		var ev Event
		ev.Iter, ev.Iters = loop.Iter, opts.Iters
		if p, ok := loop.Eval(final); ok {
			ev.Eval = &p
		}

		if stopped() {
			res.Interrupted = true
		}
		if opts.Budget > 0 && loop.Elapsed >= opts.Budget {
			res.OverBudget = true
		}
		periodic := opts.CheckpointEvery > 0 && loop.Iter%opts.CheckpointEvery == 0
		if periodic || final || res.Interrupted || res.OverBudget {
			path, err := save()
			if err != nil {
				return res, err
			}
			ev.Checkpoint = path
		}
		if opts.Progress != nil {
			opts.Progress(ev)
		}
		if res.Interrupted || res.OverBudget {
			break
		}
	}
	res.Run = loop.Trace
	res.Iter = loop.Iter
	res.Completed = loop.Iter >= opts.Iters
	if res.Completed {
		res.Interrupted, res.OverBudget = false, false
	}
	return res, nil
}

// writeCheckpoint snapshots the loop into CheckpointDir, streaming the
// sampler state straight into the (checksummed, atomically renamed)
// file — checkpointing costs O(1) extra memory regardless of state
// size.
func writeCheckpoint(loop *sampler.Loop, fingerprint uint32, dir string) (string, error) {
	ck := &Checkpoint{
		Sampler:     loop.Sampler.Name(),
		Cfg:         loop.Cfg,
		Iter:        loop.Iter,
		Elapsed:     loop.Elapsed,
		Trace:       loop.Trace,
		Fingerprint: fingerprint,
	}
	path := filepath.Join(dir, DefaultFileName)
	if _, err := ck.writeFileStreaming(path, loop.Sampler.StateTo); err != nil {
		return "", err
	}
	return path, nil
}

// publishNameRE is the set of model names the serving registry agrees
// to load (internal/registry's nameRE; kept in sync by
// TestPublishNamesMatchRegistry). Publishing a name the registry would
// 404 on forever must fail here, at train time, not in production.
var publishNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// PublishPath resolves the -publish flag's "<dir>/<name>" spec to the
// model file path the serving registry loads for model <name>: the
// registry maps a model name to <dir>/<name>.bin (or a <name>/model.bin
// subdirectory; the flat file is what publishing writes). The spec's
// final element must be a bare model name the registry will accept — no
// path separators, no .bin suffix of its own, and within the registry's
// name alphabet.
func PublishPath(spec string) (path, name string, err error) {
	dir, name := filepath.Split(filepath.Clean(spec))
	if dir == "" || name == "" || name == "." || name == ".." {
		return "", "", fmt.Errorf("train: -publish wants <model-dir>/<model-name>, got %q", spec)
	}
	if filepath.Ext(name) == ".bin" {
		return "", "", fmt.Errorf("train: -publish takes a model name, not a file name (drop the .bin from %q)", spec)
	}
	if !publishNameRE.MatchString(name) {
		return "", "", fmt.Errorf("train: -publish name %q is not servable (want %s)", name, publishNameRE)
	}
	return filepath.Join(dir, name+".bin"), name, nil
}
