// Sharded checkpoint format. A sampler implementing sampler.Sharded
// (the distributed sampler) does not funnel its state through one
// writer: each worker's shard lands in its own WARPSHRD file, written
// concurrently, and a WARPMANI manifest — written last, atomically —
// binds them into one checkpoint. The manifest carries the same
// envelope as a WARPCKPT file plus a shard table (file name, size,
// CRC32 of every shard), so resume can validate every shard against
// the manifest before any state reaches the sampler: a truncated,
// bit-rotted, or foreign shard file (swapped in from another
// checkpoint, even a self-consistent one) is rejected by the table,
// not discovered mid-restore.
//
// On-disk layout of one sharded checkpoint at iteration I inside a
// checkpoint directory:
//
//	checkpoint-0000000I/
//	    shard-000.ckpt      WARPSHRD: shard 0's state, CRC-trailed
//	    ...
//	    shard-NNN.ckpt
//	    manifest.ckpt       WARPMANI: envelope + shard table, CRC-trailed
//
// The manifest's atomic rename is the checkpoint's commit point: a
// crash mid-write leaves a directory without a manifest, which Load
// ignores and the next retention sweep removes. Single-file samplers
// use iteration-stamped WARPCKPT files (checkpoint-0000000I.ckpt) in
// the same directory; both shapes rotate under the keep-last-N policy.
// Byte-level specifications live in docs/FORMATS.md.
package train

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"warplda/internal/fsio"
	"warplda/internal/sampler"
)

const (
	// manifestMagic versions the sharded-checkpoint manifest layout.
	manifestMagic = "WARPMANI\x01"
	// shardMagic versions the per-worker shard file layout.
	shardMagic = "WARPSHRD\x01"
	// ManifestFileName is the manifest's name inside a sharded
	// checkpoint directory; its presence is what marks the directory as
	// a complete checkpoint.
	ManifestFileName = "manifest.ckpt"
	// maxShards bounds the decoded shard count before the CRC trailer
	// has vouched for it (same rationale as maxTracePoints).
	maxShards = 1 << 16
)

// stampedPrefix + 8-digit zero-padded iteration is the naming scheme of
// retained checkpoints: checkpoint-00000042.ckpt (single file) and
// checkpoint-00000042/ (sharded directory).
const stampedPrefix = "checkpoint-"

var stampedRE = regexp.MustCompile(`^checkpoint-(\d{8,})(\.ckpt)?$`)

// stampedName returns the single-file checkpoint name for iteration i.
func stampedName(iter int) string { return fmt.Sprintf("%s%08d.ckpt", stampedPrefix, iter) }

// stampedDirName returns the sharded checkpoint directory name for
// iteration i.
func stampedDirName(iter int) string { return fmt.Sprintf("%s%08d", stampedPrefix, iter) }

// shardFileName returns shard i's file name inside a checkpoint
// directory.
func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.ckpt", i) }

// CheckpointEntry is one retained checkpoint found in a checkpoint
// directory.
type CheckpointEntry struct {
	// Iter is the iteration the checkpoint was written at.
	Iter int
	// Path is the checkpoint file (single-file) or directory (sharded).
	Path string
	// Sharded reports the directory shape.
	Sharded bool
}

// ListCheckpoints returns dir's iteration-stamped checkpoints sorted by
// iteration (oldest first). Sharded directories count only when their
// manifest exists — a directory without one is a torn write, not a
// checkpoint. The legacy unstamped DefaultFileName is not listed; Load
// falls back to it when nothing stamped exists.
func ListCheckpoints(dir string) ([]CheckpointEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []CheckpointEntry
	for _, de := range des {
		m := stampedRE.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		iter, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		path := filepath.Join(dir, de.Name())
		switch {
		case de.IsDir() && m[2] == "":
			if _, err := os.Stat(filepath.Join(path, ManifestFileName)); err != nil {
				continue // torn: no manifest
			}
			out = append(out, CheckpointEntry{Iter: iter, Path: path, Sharded: true})
		case !de.IsDir() && m[2] == ".ckpt":
			out = append(out, CheckpointEntry{Iter: iter, Path: path, Sharded: false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out, nil
}

// pruneCheckpoints enforces keep-last-N retention in dir after a
// successful checkpoint at iteration current: all but the newest keep
// stamped checkpoints are deleted, as are torn sharded directories
// (no manifest) other than the current iteration's. The checkpoint
// just written is never deleted. Removal failures are reported but the
// checkpoint itself already committed, so the caller may choose to
// continue training.
func pruneCheckpoints(dir string, keep, current int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := ListCheckpoints(dir)
	if err != nil {
		return err
	}
	var firstErr error
	rm := func(path string) {
		if err := os.RemoveAll(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i, e := range entries {
		if len(entries)-i <= keep || e.Iter == current {
			continue
		}
		rm(e.Path)
	}
	// Torn sharded directories: stamped dirs ListCheckpoints skipped.
	des, err := os.ReadDir(dir)
	if err != nil {
		return firstErr
	}
	for _, de := range des {
		m := stampedRE.FindStringSubmatch(de.Name())
		if m == nil || !de.IsDir() || m[2] != "" {
			continue
		}
		if iter, err := strconv.Atoi(m[1]); err != nil || iter == current {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, de.Name(), ManifestFileName)); os.IsNotExist(err) {
			rm(filepath.Join(dir, de.Name()))
		}
	}
	return firstErr
}

// writeSharded writes one complete sharded checkpoint for sh into
// <dir>/checkpoint-<iter>/: every shard concurrently through
// fsio.AtomicWriteFile, then the manifest, atomically, last. It
// returns the checkpoint directory path.
func (ck *Checkpoint) writeSharded(dir string, sh sampler.Sharded) (string, error) {
	ckDir := filepath.Join(dir, stampedDirName(ck.Iter))
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		return "", err
	}
	// The directory may already hold a COMPLETE checkpoint of this same
	// iteration (a resume interrupted before its first new iteration
	// re-checkpoints at the resume point). Retract its manifest before
	// touching any shard file: the directory is then properly "torn"
	// while shards are being replaced, so a crash mid-rewrite can never
	// leave an old manifest vouching for a mixed shard set.
	if err := os.Remove(filepath.Join(ckDir, ManifestFileName)); err != nil && !os.IsNotExist(err) {
		return "", err
	}
	p := sh.NumShards()
	sizes := make([]int64, p)
	crcs := make([]uint32, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sizes[i], crcs[i], errs[i] = writeShardFile(
				filepath.Join(ckDir, shardFileName(i)), ck, i, p, sh)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return "", fmt.Errorf("writing shard %d: %w", i, err)
		}
	}
	ck.Dir = ckDir
	ck.ShardFiles = make([]string, p)
	for i := range ck.ShardFiles {
		ck.ShardFiles[i] = shardFileName(i)
	}
	ck.ShardSizes = sizes
	ck.ShardCRCs = crcs
	if _, err := fsio.AtomicWriteFile(filepath.Join(ckDir, ManifestFileName),
		".warplda-manifest-*", ck.writeManifestTo); err != nil {
		return "", fmt.Errorf("writing manifest: %w", err)
	}
	return ckDir, nil
}

// writeShardFile writes one WARPSHRD file: magic, a CRC32-checksummed
// body (iteration, corpus fingerprint, shard index and count, then the
// sampler's shard stream), and the CRC trailer. It returns the file's
// total size and the trailer value — the identity the manifest records.
func writeShardFile(path string, ck *Checkpoint, i, p int, sh sampler.Sharded) (size int64, crc uint32, err error) {
	size, err = fsio.AtomicWriteFile(path, ".warplda-shard-*", func(w io.Writer) (int64, error) {
		if _, err := io.WriteString(w, shardMagic); err != nil {
			return 0, err
		}
		hw := fsio.NewCRCWriter(w)
		cw := &countWriter{w: hw}
		e := sampler.NewEnc(cw)
		e.Int(ck.Iter)
		e.U64(uint64(ck.Fingerprint))
		e.Int(i)
		e.Int(p)
		if err := e.Err(); err != nil {
			return 0, err
		}
		if err := sh.ShardTo(i, cw); err != nil {
			return 0, err
		}
		crc = hw.Sum32()
		if err := binary.Write(w, binary.LittleEndian, crc); err != nil {
			return 0, err
		}
		return int64(len(shardMagic)) + cw.n + 4, nil
	})
	return size, crc, err
}

// writeManifestTo serializes the WARPMANI manifest: magic, the shared
// checkpoint envelope, the shard table, CRC32 trailer.
func (ck *Checkpoint) writeManifestTo(w io.Writer) (int64, error) {
	if _, err := io.WriteString(w, manifestMagic); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	e := sampler.NewEnc(cw)
	encodeEnvelope(e, ck)
	e.Int(len(ck.ShardFiles))
	for i, name := range ck.ShardFiles {
		e.Str(name)
		e.Int(int(ck.ShardSizes[i]))
		e.U64(uint64(ck.ShardCRCs[i]))
	}
	if err := e.Err(); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return 0, err
	}
	return int64(len(manifestMagic)) + cw.n + 4, nil
}

// WriteManifestFile writes the checkpoint's manifest alone to path
// (atomically). The trainer writes manifests only through writeSharded
// — shards first, manifest as the commit point — but recovery tooling
// (and tests) may need to re-emit a manifest for an existing shard set.
func (ck *Checkpoint) WriteManifestFile(path string) error {
	_, err := fsio.AtomicWriteFile(path, ".warplda-manifest-*", ck.writeManifestTo)
	return err
}

// ReadManifest loads the sharded checkpoint rooted at dir: the
// manifest is read and CRC-verified, and every shard file in its table
// is confirmed to exist with the recorded size. Shard *contents* are
// verified against the table's CRCs at restore time (RestoreInto),
// when they are actually read.
func ReadManifest(dir string) (*Checkpoint, error) {
	path := filepath.Join(dir, ManifestFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+4 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%s: not a checkpoint manifest (bad magic)", path)
	}
	body := raw[len(manifestMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%s: manifest checksum mismatch (file %08x, computed %08x): torn or corrupt file", path, want, got)
	}
	d := sampler.NewDec(bytes.NewReader(body))
	ck := &Checkpoint{Dir: dir}
	decodeEnvelope(d, ck)
	n := d.Int()
	if d.Err() == nil && (n < 1 || n > maxShards) {
		d.Failf("implausible shard count %d", n)
	}
	if d.Err() == nil {
		ck.ShardFiles = make([]string, n)
		ck.ShardSizes = make([]int64, n)
		ck.ShardCRCs = make([]uint32, n)
		for i := 0; i < n; i++ {
			ck.ShardFiles[i] = d.Str("shard file name", 1<<10)
			ck.ShardSizes[i] = int64(d.Int())
			ck.ShardCRCs[i] = uint32(d.U64())
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%s: corrupt manifest: %w", path, err)
	}
	if err := validateCheckpoint(ck); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, name := range ck.ShardFiles {
		// The name must be a bare file name: a manifest must not be able
		// to point resume at files outside its own checkpoint directory.
		if name == "" || filepath.Base(name) != name {
			return nil, fmt.Errorf("%s: shard %d has invalid file name %q", path, i, name)
		}
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("%s: shard %d missing: %w", path, i, err)
		}
		if st.Size() != ck.ShardSizes[i] {
			return nil, fmt.Errorf("%s: shard %d (%s) is %d bytes, manifest records %d: truncated or foreign shard file",
				path, i, name, st.Size(), ck.ShardSizes[i])
		}
	}
	return ck, nil
}

// RestoreInto restores the sharded checkpoint's state into sh,
// rebalancing across a changed worker count. Every shard file is read
// and checked — magic, CRC trailer, the manifest's recorded CRC (which
// catches a self-consistent shard swapped in from a *different*
// checkpoint), and the header's iteration / corpus fingerprint / shard
// position — before any state reaches the sampler. It returns whether
// worker RNG streams were reseeded (worker count changed).
func (ck *Checkpoint) RestoreInto(sh sampler.Sharded) (reseeded bool, err error) {
	if !ck.IsSharded() {
		return false, fmt.Errorf("train: checkpoint is not sharded")
	}
	readers := make([]io.Reader, len(ck.ShardFiles))
	for i := range ck.ShardFiles {
		body, err := ck.readShardBody(i)
		if err != nil {
			return false, fmt.Errorf("train: shard %d (%s): %w", i, ck.ShardFiles[i], err)
		}
		readers[i] = bytes.NewReader(body)
	}
	return sh.RestoreShards(uint64(ck.Iter), readers)
}

// readShardBody reads, checksums, and envelope-validates shard i's
// file, returning the sampler-level shard stream (the body after the
// shard header, before the CRC trailer).
func (ck *Checkpoint) readShardBody(i int) ([]byte, error) {
	raw, err := os.ReadFile(filepath.Join(ck.Dir, ck.ShardFiles[i]))
	if err != nil {
		return nil, err
	}
	if int64(len(raw)) != ck.ShardSizes[i] {
		return nil, fmt.Errorf("%d bytes, manifest records %d: truncated or foreign shard file", len(raw), ck.ShardSizes[i])
	}
	if len(raw) < len(shardMagic)+4 || string(raw[:len(shardMagic)]) != shardMagic {
		return nil, fmt.Errorf("not a checkpoint shard file (bad magic)")
	}
	body := raw[len(shardMagic) : len(raw)-4]
	trailer := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	got := crc32.ChecksumIEEE(body)
	if got != trailer {
		return nil, fmt.Errorf("shard checksum mismatch (file %08x, computed %08x): torn or corrupt file", trailer, got)
	}
	if got != ck.ShardCRCs[i] {
		return nil, fmt.Errorf("shard checksum %08x does not match manifest's %08x: foreign shard file", got, ck.ShardCRCs[i])
	}
	d := sampler.NewDec(bytes.NewReader(body))
	iter := d.Int()
	fp := uint32(d.U64())
	idx := d.Int()
	count := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if iter != ck.Iter {
		return nil, fmt.Errorf("shard written at iteration %d, manifest says %d: foreign shard file", iter, ck.Iter)
	}
	if fp != ck.Fingerprint {
		return nil, fmt.Errorf("shard corpus fingerprint %08x does not match manifest's %08x: foreign shard file", fp, ck.Fingerprint)
	}
	if idx != i || count != len(ck.ShardFiles) {
		return nil, fmt.Errorf("shard identifies as %d of %d, manifest places it at %d of %d: foreign or reordered shard file",
			idx, count, i, len(ck.ShardFiles))
	}
	// The fixed-size shard header: 3 int64s + 1 uint64.
	return body[4*8:], nil
}
