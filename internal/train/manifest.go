// Sharded checkpoint format. A sampler implementing sampler.Sharded
// (the distributed sampler) does not funnel its state through one
// writer: each worker's shard lands in its own WARPSHRD file, written
// concurrently, and a WARPMANI manifest — written last, atomically —
// binds them into one checkpoint. The manifest carries the same
// envelope as a WARPCKPT file plus a shard table (file name, size,
// CRC32 of every shard), so resume can validate every shard against
// the manifest before any state reaches the sampler: a truncated,
// bit-rotted, or foreign shard file (swapped in from another
// checkpoint, even a self-consistent one) is rejected by the table,
// not discovered mid-restore.
//
// On-disk layout of one sharded checkpoint at iteration I inside a
// checkpoint directory:
//
//	checkpoint-0000000I/
//	    shard-000.ckpt      WARPSHRD: shard 0's state, CRC-trailed
//	    ...
//	    shard-NNN.ckpt
//	    manifest.ckpt       WARPMANI: envelope + shard table, CRC-trailed
//
// The manifest's atomic rename is the checkpoint's commit point: a
// crash mid-write leaves a directory without a manifest, which Load
// ignores and the next retention sweep removes. Single-file samplers
// use iteration-stamped WARPCKPT files (checkpoint-0000000I.ckpt) in
// the same directory; both shapes rotate under the keep-last-N policy.
// Byte-level specifications live in docs/FORMATS.md.
package train

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"

	"warplda/internal/fsio"
	"warplda/internal/sampler"
)

const (
	// manifestMagic versions the sharded-checkpoint manifest layout.
	manifestMagic = "WARPMANI\x01"
	// shardMagic versions the per-worker shard file layout.
	shardMagic = "WARPSHRD\x01"
	// ManifestFileName is the manifest's name inside a sharded
	// checkpoint directory; its presence is what marks the directory as
	// a complete checkpoint.
	ManifestFileName = "manifest.ckpt"
	// maxShards bounds the decoded shard count before the CRC trailer
	// has vouched for it (same rationale as maxTracePoints).
	maxShards = 1 << 16
)

// stampedPrefix + 8-digit zero-padded iteration is the naming scheme of
// retained checkpoints: checkpoint-00000042.ckpt (single file) and
// checkpoint-00000042/ (sharded directory).
const stampedPrefix = "checkpoint-"

var stampedRE = regexp.MustCompile(`^checkpoint-(\d{8,})(\.ckpt)?$`)

// stampedName returns the single-file checkpoint name for iteration i.
func stampedName(iter int) string { return fmt.Sprintf("%s%08d.ckpt", stampedPrefix, iter) }

// stampedDirName returns the sharded checkpoint directory name for
// iteration i.
func stampedDirName(iter int) string { return fmt.Sprintf("%s%08d", stampedPrefix, iter) }

// shardFileName returns shard i's file name inside a checkpoint
// directory.
func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.ckpt", i) }

// CheckpointEntry is one retained checkpoint found in a checkpoint
// directory.
type CheckpointEntry struct {
	// Iter is the iteration the checkpoint was written at.
	Iter int
	// Path is the checkpoint file (single-file) or directory (sharded).
	Path string
	// Sharded reports the directory shape.
	Sharded bool
}

// ListCheckpoints returns dir's iteration-stamped checkpoints sorted by
// iteration (oldest first). Sharded directories count only when their
// manifest exists — a directory without one is a torn write, not a
// checkpoint. The legacy unstamped DefaultFileName is not listed; Load
// falls back to it when nothing stamped exists.
func ListCheckpoints(dir string) ([]CheckpointEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []CheckpointEntry
	for _, de := range des {
		m := stampedRE.FindStringSubmatch(de.Name())
		if m == nil {
			continue
		}
		iter, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		path := filepath.Join(dir, de.Name())
		switch {
		case de.IsDir() && m[2] == "":
			if _, err := os.Stat(filepath.Join(path, ManifestFileName)); err != nil {
				continue // torn: no manifest
			}
			out = append(out, CheckpointEntry{Iter: iter, Path: path, Sharded: true})
		case !de.IsDir() && m[2] == ".ckpt":
			out = append(out, CheckpointEntry{Iter: iter, Path: path, Sharded: false})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iter < out[j].Iter })
	return out, nil
}

// pruneCheckpoints enforces keep-last-N retention in dir after a
// successful checkpoint at iteration current: all but the newest keep
// stamped checkpoints are deleted, as are torn sharded directories
// (no manifest) other than the current iteration's. The checkpoint
// just written is never deleted. Removal failures are reported but the
// checkpoint itself already committed, so the caller may choose to
// continue training.
func pruneCheckpoints(dir string, keep, current int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := ListCheckpoints(dir)
	if err != nil {
		return err
	}
	var firstErr error
	rm := func(path string) {
		if err := os.RemoveAll(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i, e := range entries {
		if len(entries)-i <= keep || e.Iter == current {
			continue
		}
		rm(e.Path)
	}
	// Torn sharded directories: stamped dirs ListCheckpoints skipped.
	des, err := os.ReadDir(dir)
	if err != nil {
		return firstErr
	}
	for _, de := range des {
		m := stampedRE.FindStringSubmatch(de.Name())
		if m == nil || !de.IsDir() || m[2] != "" {
			continue
		}
		if iter, err := strconv.Atoi(m[1]); err != nil || iter == current {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, de.Name(), ManifestFileName)); os.IsNotExist(err) {
			rm(filepath.Join(dir, de.Name()))
		}
	}
	return firstErr
}

// WriteSharded writes one complete sharded checkpoint for sh into
// <dir>/checkpoint-<iter>/ and returns the checkpoint directory path.
// It is the exported face of the trainer's own checkpoint step for
// external orchestrators (the live coordinator, recovery tooling): the
// caller fills the checkpoint's envelope — Sampler, Cfg, Iter, Elapsed,
// Trace, Fingerprint — and this writes every shard concurrently, then
// the manifest, atomically, last (the commit point).
func (ck *Checkpoint) WriteSharded(dir string, sh sampler.Sharded) (string, error) {
	return ck.writeSharded(dir, sh)
}

// PruneCheckpoints enforces keep-last-N retention in dir after a
// successful checkpoint at iteration current, exactly as the trainer
// does between iterations: all but the newest keep stamped checkpoints
// are deleted, as are torn sharded directories other than the current
// iteration's. The checkpoint just written is never deleted.
func PruneCheckpoints(dir string, keep, current int) error {
	return pruneCheckpoints(dir, keep, current)
}

// writeSharded writes one complete sharded checkpoint for sh into
// <dir>/checkpoint-<iter>/: every shard concurrently through
// fsio.AtomicWriteFile, then the manifest, atomically, last. It
// returns the checkpoint directory path.
func (ck *Checkpoint) writeSharded(dir string, sh sampler.Sharded) (string, error) {
	ckDir := filepath.Join(dir, stampedDirName(ck.Iter))
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		return "", err
	}
	// The directory may already hold a COMPLETE checkpoint of this same
	// iteration (a resume interrupted before its first new iteration
	// re-checkpoints at the resume point). Retract its manifest before
	// touching any shard file: the directory is then properly "torn"
	// while shards are being replaced, so a crash mid-rewrite can never
	// leave an old manifest vouching for a mixed shard set.
	if err := os.Remove(filepath.Join(ckDir, ManifestFileName)); err != nil && !os.IsNotExist(err) {
		return "", err
	}
	p := sh.NumShards()
	sizes := make([]int64, p)
	crcs := make([]uint32, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sizes[i], crcs[i], errs[i] = writeShardFile(
				filepath.Join(ckDir, shardFileName(i)), ck, i, p, sh)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return "", fmt.Errorf("writing shard %d: %w", i, err)
		}
	}
	ck.Dir = ckDir
	ck.ShardFiles = make([]string, p)
	for i := range ck.ShardFiles {
		ck.ShardFiles[i] = shardFileName(i)
	}
	ck.ShardSizes = sizes
	ck.ShardCRCs = crcs
	if _, err := fsio.AtomicWriteFile(filepath.Join(ckDir, ManifestFileName),
		".warplda-manifest-*", ck.writeManifestTo); err != nil {
		return "", fmt.Errorf("writing manifest: %w", err)
	}
	return ckDir, nil
}

// writeShardFile writes one WARPSHRD file: magic, a CRC32-checksummed
// body (iteration, corpus fingerprint, shard index and count, then the
// sampler's shard stream), and the CRC trailer. It returns the file's
// total size and the trailer value — the identity the manifest records.
func writeShardFile(path string, ck *Checkpoint, i, p int, sh sampler.Sharded) (size int64, crc uint32, err error) {
	size, err = fsio.AtomicWriteFile(path, ".warplda-shard-*", func(w io.Writer) (int64, error) {
		if _, err := io.WriteString(w, shardMagic); err != nil {
			return 0, err
		}
		hw := fsio.NewCRCWriter(w)
		cw := &countWriter{w: hw}
		e := sampler.NewEnc(cw)
		e.Int(ck.Iter)
		e.U64(uint64(ck.Fingerprint))
		e.Int(i)
		e.Int(p)
		if err := e.Err(); err != nil {
			return 0, err
		}
		if err := sh.ShardTo(i, cw); err != nil {
			return 0, err
		}
		crc = hw.Sum32()
		if err := binary.Write(w, binary.LittleEndian, crc); err != nil {
			return 0, err
		}
		return int64(len(shardMagic)) + cw.n + 4, nil
	})
	return size, crc, err
}

// writeManifestTo serializes the WARPMANI manifest: magic, the shared
// checkpoint envelope, the shard table, CRC32 trailer.
func (ck *Checkpoint) writeManifestTo(w io.Writer) (int64, error) {
	if _, err := io.WriteString(w, manifestMagic); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(w, crc)}
	e := sampler.NewEnc(cw)
	encodeEnvelope(e, ck)
	e.Int(len(ck.ShardFiles))
	for i, name := range ck.ShardFiles {
		e.Str(name)
		e.Int(int(ck.ShardSizes[i]))
		e.U64(uint64(ck.ShardCRCs[i]))
	}
	if err := e.Err(); err != nil {
		return 0, err
	}
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return 0, err
	}
	return int64(len(manifestMagic)) + cw.n + 4, nil
}

// WriteManifestFile writes the checkpoint's manifest alone to path
// (atomically). The trainer writes manifests only through writeSharded
// — shards first, manifest as the commit point — but recovery tooling
// (and tests) may need to re-emit a manifest for an existing shard set.
func (ck *Checkpoint) WriteManifestFile(path string) error {
	_, err := fsio.AtomicWriteFile(path, ".warplda-manifest-*", ck.writeManifestTo)
	return err
}

// ReadManifest loads the sharded checkpoint rooted at dir: the
// manifest is read and CRC-verified, and every shard file in its table
// is confirmed to exist with the recorded size. Shard *contents* are
// verified against the table's CRCs at restore time (RestoreInto),
// when they are actually read.
func ReadManifest(dir string) (*Checkpoint, error) {
	path := filepath.Join(dir, ManifestFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(manifestMagic)+4 || string(raw[:len(manifestMagic)]) != manifestMagic {
		return nil, fmt.Errorf("%s: not a checkpoint manifest (bad magic)", path)
	}
	body := raw[len(manifestMagic) : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%s: manifest checksum mismatch (file %08x, computed %08x): torn or corrupt file", path, want, got)
	}
	d := sampler.NewDec(bytes.NewReader(body))
	ck := &Checkpoint{Dir: dir}
	decodeEnvelope(d, ck)
	n := d.Int()
	if d.Err() == nil && (n < 1 || n > maxShards) {
		d.Failf("implausible shard count %d", n)
	}
	if d.Err() == nil {
		ck.ShardFiles = make([]string, n)
		ck.ShardSizes = make([]int64, n)
		ck.ShardCRCs = make([]uint32, n)
		for i := 0; i < n; i++ {
			ck.ShardFiles[i] = d.Str("shard file name", 1<<10)
			ck.ShardSizes[i] = int64(d.Int())
			ck.ShardCRCs[i] = uint32(d.U64())
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%s: corrupt manifest: %w", path, err)
	}
	if err := validateCheckpoint(ck); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, name := range ck.ShardFiles {
		// The name must be a bare file name: a manifest must not be able
		// to point resume at files outside its own checkpoint directory.
		if name == "" || filepath.Base(name) != name {
			return nil, fmt.Errorf("%s: shard %d has invalid file name %q", path, i, name)
		}
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("%s: shard %d missing: %w", path, i, err)
		}
		if st.Size() != ck.ShardSizes[i] {
			return nil, fmt.Errorf("%s: shard %d (%s) is %d bytes, manifest records %d: truncated or foreign shard file",
				path, i, name, st.Size(), ck.ShardSizes[i])
		}
	}
	return ck, nil
}

// RestoreInto restores the sharded checkpoint's state into sh,
// rebalancing across a changed worker count. Every shard file is read
// and checked — magic, CRC trailer, the manifest's recorded CRC (which
// catches a self-consistent shard swapped in from a *different*
// checkpoint), and the header's iteration / corpus fingerprint / shard
// position — before any state reaches the sampler. It returns whether
// worker RNG streams were reseeded (worker count changed).
//
// Shards are handed to RestoreShards as lazy readers that verify each
// file in a streaming pass when first read and only then serve its
// body: the sampler consumes shards one at a time, so at most one
// shard's file buffer is resident beyond the decoded state itself.
// (An earlier version materialized every raw shard body up front,
// holding ~2× the full sampler state at the worst moment.)
// Validate-then-commit is preserved: the file-level checks run before
// a shard's first byte reaches the decoder, and RestoreShards itself
// validates the union of all shards before committing any state.
func (ck *Checkpoint) RestoreInto(sh sampler.Sharded) (reseeded bool, err error) {
	if !ck.IsSharded() {
		return false, fmt.Errorf("train: checkpoint is not sharded")
	}
	readers := make([]io.Reader, len(ck.ShardFiles))
	shards := make([]*lazyShardReader, len(ck.ShardFiles))
	for i := range ck.ShardFiles {
		shards[i] = &lazyShardReader{ck: ck, i: i}
		readers[i] = shards[i]
	}
	defer func() {
		for _, s := range shards {
			s.close()
		}
	}()
	return sh.RestoreShards(uint64(ck.Iter), readers)
}

// lazyShardReader serves one shard file's sampler-level stream (the
// body after the shard header, before the CRC trailer) to RestoreShards
// without materializing it. The first Read triggers the verification
// pass: the whole file is streamed through CRC32 and checked — size,
// magic, trailer, the manifest's recorded CRC, header fields — with
// only a copy buffer resident; the file is then rewound and the body
// served through a buffered reader. A shard that fails any check never
// yields a byte to the decoder.
type lazyShardReader struct {
	ck   *Checkpoint
	i    int
	f    *os.File
	body io.Reader
	err  error
}

func (s *lazyShardReader) Read(p []byte) (int, error) {
	if s.err != nil {
		return 0, s.err
	}
	if s.body == nil {
		if err := s.open(); err != nil {
			s.err = fmt.Errorf("train: shard %d (%s): %w", s.i, s.ck.ShardFiles[s.i], err)
			return 0, s.err
		}
	}
	return s.body.Read(p)
}

func (s *lazyShardReader) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if s.err == nil {
		s.err = fmt.Errorf("train: shard %d: read after restore", s.i)
	}
}

// open runs the verification pass and positions the body reader.
func (s *lazyShardReader) open() error {
	ck, i := s.ck, s.i
	f, err := os.Open(filepath.Join(ck.Dir, ck.ShardFiles[i]))
	if err != nil {
		return err
	}
	s.f = f
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() != ck.ShardSizes[i] {
		return fmt.Errorf("%d bytes, manifest records %d: truncated or foreign shard file", st.Size(), ck.ShardSizes[i])
	}
	bodyLen := st.Size() - int64(len(shardMagic)) - 4
	if bodyLen < 4*8 {
		return fmt.Errorf("not a checkpoint shard file (too short)")
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(shardMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != shardMagic {
		return fmt.Errorf("not a checkpoint shard file (bad magic)")
	}
	// Stream the body through the checksum; keep the fixed-size shard
	// header (3 int64s + 1 uint64) aside for the envelope checks.
	crc := crc32.NewIEEE()
	header := make([]byte, 4*8)
	if _, err := io.ReadFull(br, header); err != nil {
		return err
	}
	crc.Write(header)
	if _, err := io.Copy(crc, io.LimitReader(br, bodyLen-4*8)); err != nil {
		return err
	}
	var trailerBuf [4]byte
	if _, err := io.ReadFull(br, trailerBuf[:]); err != nil {
		return err
	}
	trailer := binary.LittleEndian.Uint32(trailerBuf[:])
	got := crc.Sum32()
	if got != trailer {
		return fmt.Errorf("shard checksum mismatch (file %08x, computed %08x): torn or corrupt file", trailer, got)
	}
	if got != ck.ShardCRCs[i] {
		return fmt.Errorf("shard checksum %08x does not match manifest's %08x: foreign shard file", got, ck.ShardCRCs[i])
	}
	d := sampler.NewDec(bytes.NewReader(header))
	iter := d.Int()
	fp := uint32(d.U64())
	idx := d.Int()
	count := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if iter != ck.Iter {
		return fmt.Errorf("shard written at iteration %d, manifest says %d: foreign shard file", iter, ck.Iter)
	}
	if fp != ck.Fingerprint {
		return fmt.Errorf("shard corpus fingerprint %08x does not match manifest's %08x: foreign shard file", fp, ck.Fingerprint)
	}
	if idx != i || count != len(ck.ShardFiles) {
		return fmt.Errorf("shard identifies as %d of %d, manifest places it at %d of %d: foreign or reordered shard file",
			idx, count, i, len(ck.ShardFiles))
	}
	// Verified: rewind past magic and header and serve the stream.
	if _, err := f.Seek(int64(len(shardMagic))+4*8, io.SeekStart); err != nil {
		return err
	}
	s.body = bufio.NewReaderSize(io.LimitReader(f, bodyLen-4*8), 1<<16)
	return nil
}
