// Checkpoint file format. A checkpoint is everything a crashed or
// killed training run needs to continue as if nothing happened: the
// sampler's identity and configuration, the loop progress (iteration
// counter, elapsed sampling time, convergence trace), a fingerprint of
// the corpus it was training on, and the sampler's complete serialized
// state (assignments, pending proposals, caches, RNG streams).
//
// The on-disk layout mirrors the model snapshot format (model_io.go):
// a versioned magic, a little-endian body, and a CRC32 (IEEE) trailer
// over every body byte after the magic. Files land via temp file +
// fsync + atomic rename, so a run killed mid-checkpoint leaves the
// previous checkpoint intact and a torn write can never be resumed
// from — it fails the checksum instead.
package train

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"warplda/internal/corpus"
	"warplda/internal/fsio"
	"warplda/internal/sampler"
)

const (
	// ckptMagic versions the checkpoint layout; bumped on incompatible
	// changes.
	ckptMagic = "WARPCKPT\x01"
	// DefaultFileName is the checkpoint file written inside a checkpoint
	// directory. A single name (plus the atomic rename) means a run
	// always resumes from the newest complete checkpoint and disk usage
	// stays bounded at one snapshot.
	DefaultFileName = "checkpoint.ckpt"

	// maxTracePoints and maxTopics bound allocations driven by decoded
	// length fields that the CRC trailer has not yet vouched for (the
	// trailer is only checked after the body is read). Both are far
	// beyond any real run — the paper's largest K is 10^6 — while
	// keeping the worst-case corrupt-file allocation small.
	maxTracePoints = 1 << 20
	maxTopics      = 1 << 22
)

// Checkpoint is a resumable training snapshot. It comes in two on-disk
// shapes sharing one envelope (sampler identity, config, loop progress,
// corpus fingerprint): a single WARPCKPT file whose body ends with the
// sampler's full serialized state, or — for samplers implementing
// sampler.Sharded — a directory of per-worker WARPSHRD shard files
// bound together by a CRC-trailed WARPMANI manifest (see manifest.go
// and docs/FORMATS.md).
type Checkpoint struct {
	// Sampler is the algorithm name (sampler.Sampler.Name) the state
	// belongs to; resuming into a different algorithm is refused.
	Sampler string
	// Cfg is the full sampler configuration of the run.
	Cfg sampler.Config
	// Iter is the number of completed iterations; Elapsed the cumulative
	// sampling time; Trace the evaluation points recorded so far.
	Iter    int
	Elapsed time.Duration
	Trace   sampler.Run
	// Fingerprint identifies the corpus (see CorpusFingerprint); a
	// checkpoint resumed against a different corpus is refused.
	Fingerprint uint32
	// State is the sampler's opaque serialized state (StateTo output).
	// Nil for sharded checkpoints, whose state lives in the shard files.
	State []byte

	// Dir is the sharded checkpoint's directory; empty for single-file
	// checkpoints.
	Dir string
	// ShardFiles, ShardSizes and ShardCRCs are the manifest's shard
	// table: file name (relative to Dir), total byte size, and CRC32
	// trailer value of each per-worker shard, in worker order. A shard
	// whose on-disk identity disagrees with this table — truncated,
	// bit-rotted, or swapped in from another checkpoint — is rejected
	// before any state reaches the sampler.
	ShardFiles []string
	ShardSizes []int64
	ShardCRCs  []uint32
}

// IsSharded reports whether the checkpoint's state is split into
// per-worker shard files bound by a manifest.
func (ck *Checkpoint) IsSharded() bool { return len(ck.ShardFiles) > 0 }

// CorpusFingerprint hashes the corpus identity a checkpoint is bound
// to: dimensions, document lengths, and every token, so resuming
// against a reordered, truncated, or simply different corpus is caught
// before any state is restored. The canonical hash sequence lives in
// corpus.Fingerprint; an in-memory corpus costs an O(tokens) walk,
// while a memory-mapped cache answers from its validated header
// (corpus.Fingerprinted) — resuming against a mapped corpus validates
// the cache file, not a re-read of the source. Mapped and materialized
// views of the same corpus fingerprint identically, so checkpoints move
// freely between the -stream and in-memory paths.
func CorpusFingerprint(c corpus.Provider) uint32 {
	return corpus.FingerprintOf(c)
}

// writeTo serializes the checkpoint envelope — magic, header, then the
// sampler state emitted by state directly into the checksummed stream,
// then the CRC32 trailer. The state is the last body section and
// carries no length prefix (it runs to the trailer), precisely so it
// can be *streamed*: a periodic checkpoint of a billion-token sampler
// must not buffer a second copy of its state in memory.
func (ck *Checkpoint) writeTo(w io.Writer, state func(io.Writer) error) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	cw := &countWriter{w: io.MultiWriter(bw, crc)}
	e := sampler.NewEnc(cw)
	encodeEnvelope(e, ck)
	if err := e.Err(); err != nil {
		return int64(len(ckptMagic)) + cw.n, err
	}
	if err := state(cw); err != nil {
		return int64(len(ckptMagic)) + cw.n, err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return int64(len(ckptMagic)) + cw.n, err
	}
	return int64(len(ckptMagic)) + cw.n + 4, bw.Flush()
}

// WriteTo serializes the checkpoint with its in-memory State blob.
func (ck *Checkpoint) WriteTo(w io.Writer) (int64, error) {
	return ck.writeTo(w, func(sw io.Writer) error {
		_, err := sw.Write(ck.State)
		return err
	})
}

// WriteFile writes the checkpoint to path atomically (temp file in the
// target directory, fsync, rename) so an interrupted write can never
// clobber the previous good checkpoint.
func (ck *Checkpoint) WriteFile(path string) (int64, error) {
	return fsio.AtomicWriteFile(path, ".warplda-ckpt-*", ck.WriteTo)
}

// writeFileStreaming is WriteFile with the sampler state streamed by
// state instead of materialized in ck.State — the trainer's hot path.
func (ck *Checkpoint) writeFileStreaming(path string, state func(io.Writer) error) (int64, error) {
	return fsio.AtomicWriteFile(path, ".warplda-ckpt-*", func(w io.Writer) (int64, error) {
		return ck.writeTo(w, state)
	})
}

// Read deserializes a checkpoint, verifying the CRC32 trailer before
// returning: a torn or bit-rotted file is an error, never a resumable
// state.
func Read(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("train: reading checkpoint header: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("train: not a checkpoint file (bad magic)")
	}
	cr := fsio.NewCRCReader(br)
	d := sampler.NewDec(cr)
	ck := &Checkpoint{}
	decodeEnvelope(d, ck)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("train: corrupt checkpoint: %w", err)
	}
	// The sampler state is the rest of the body, up to the 4-byte CRC
	// trailer. It has no length prefix (the writer streams it), and
	// io.ReadAll grows with the data actually present, so a truncated
	// file costs only what it holds. Read from the plain reader — the
	// trailer must not be hashed — and feed the CRC afterwards.
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("train: reading checkpoint state: %w", err)
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("train: corrupt checkpoint: truncated before checksum trailer")
	}
	ck.State = rest[:len(rest)-4]
	cr.CRC.Write(ck.State)
	want := binary.LittleEndian.Uint32(rest[len(rest)-4:])
	if got := cr.Sum32(); got != want {
		return nil, fmt.Errorf("train: checkpoint checksum mismatch (file %08x, computed %08x): torn or corrupt file", want, got)
	}
	if err := validateCheckpoint(ck); err != nil {
		return nil, err
	}
	return ck, nil
}

// Load reads a checkpoint from path, which may be:
//
//   - a WARPCKPT file (including the legacy unstamped DefaultFileName);
//   - a sharded checkpoint directory (contains ManifestFileName) or its
//     manifest file directly;
//   - a checkpoint *collection* directory — what -checkpoint-dir
//     accumulates under keep-last-N retention — in which case the
//     newest iteration-stamped checkpoint (single-file or sharded) is
//     loaded, falling back to the legacy DefaultFileName.
func Load(path string) (*Checkpoint, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		if _, err := os.Stat(filepath.Join(path, ManifestFileName)); err == nil {
			return ReadManifest(path)
		}
		entries, err := ListCheckpoints(path)
		if err != nil {
			return nil, err
		}
		if len(entries) > 0 {
			newest := entries[len(entries)-1]
			if newest.Sharded {
				return ReadManifest(newest.Path)
			}
			path = newest.Path
		} else {
			path = filepath.Join(path, DefaultFileName)
		}
	}
	if filepath.Base(path) == ManifestFileName {
		return ReadManifest(filepath.Dir(path))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ck, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// Verify checks that the checkpoint belongs to this (sampler, corpus
// fingerprint, config) triple. It is the gate train.Run applies before
// restoring any state.
func (ck *Checkpoint) Verify(samplerName string, fingerprint uint32, cfg sampler.Config) error {
	return ck.verify(samplerName, fingerprint, cfg, false)
}

// VerifyElastic is Verify for elastic sharded resume: identical except
// that cfg.Threads may differ from the checkpoint's — the worker
// topology is exactly what an elastic resume is allowed to change. The
// shard files themselves still pin the topology they were written
// under; sampler.Sharded.RestoreShards owns the rebalancing.
func (ck *Checkpoint) VerifyElastic(samplerName string, fingerprint uint32, cfg sampler.Config) error {
	return ck.verify(samplerName, fingerprint, cfg, true)
}

// legacyShardedNameRE matches the distributed sampler's pre-elastic
// name, which embedded the worker count ("WarpLDA-sharded[3]"). The
// suffix was dropped so checkpoints survive topology changes; old
// checkpoints carrying it must stay resumable, so verification strips
// it before comparing (the state blob itself still pins the worker
// count — RestoreFrom rejects a mismatch).
var legacyShardedNameRE = regexp.MustCompile(`^(WarpLDA-sharded)\[\d+\]$`)

func (ck *Checkpoint) verify(samplerName string, fingerprint uint32, cfg sampler.Config, elastic bool) error {
	ckName := ck.Sampler
	if m := legacyShardedNameRE.FindStringSubmatch(ckName); m != nil {
		ckName = m[1]
	}
	if ckName != samplerName {
		return fmt.Errorf("train: checkpoint was written by sampler %q, resuming %q", ck.Sampler, samplerName)
	}
	if ck.Fingerprint != fingerprint {
		return fmt.Errorf("train: checkpoint corpus fingerprint %08x does not match training corpus %08x", ck.Fingerprint, fingerprint)
	}
	ckCfg := ck.Cfg
	if elastic {
		ckCfg.Threads = cfg.Threads
	}
	if !configsEqual(ckCfg, cfg) {
		return fmt.Errorf("train: checkpoint config %+v does not match run config %+v", ck.Cfg, cfg)
	}
	return nil
}

// validateCheckpoint sanity-checks the decoded fields beyond what the
// CRC can know (the CRC only proves the bytes are what was written).
func validateCheckpoint(ck *Checkpoint) error {
	if ck.Iter < 0 {
		return fmt.Errorf("train: corrupt checkpoint: negative iteration %d", ck.Iter)
	}
	if ck.Elapsed < 0 {
		return fmt.Errorf("train: corrupt checkpoint: negative elapsed time %v", ck.Elapsed)
	}
	if err := ck.Cfg.Validate(); err != nil {
		return fmt.Errorf("train: corrupt checkpoint: %w", err)
	}
	last := 0
	for _, p := range ck.Trace.Points {
		if p.Iter <= last || p.Iter > ck.Iter || math.IsNaN(p.LogLik) {
			return fmt.Errorf("train: corrupt checkpoint: bad trace point %+v", p)
		}
		last = p.Iter
	}
	return nil
}

// encodeEnvelope writes the fields shared by both checkpoint shapes —
// sampler identity, config, loop progress, trace, corpus fingerprint —
// in the WARPCKPT body order. The manifest (manifest.go) reuses it, so
// a sharded checkpoint's metadata reads identically to a single file's.
func encodeEnvelope(e *sampler.Enc, ck *Checkpoint) {
	e.Str(ck.Sampler)
	encodeConfig(e, ck.Cfg)
	e.Int(ck.Iter)
	e.Int(int(ck.Elapsed))
	e.Str(ck.Trace.Sampler)
	e.Int(len(ck.Trace.Points))
	for _, p := range ck.Trace.Points {
		e.Int(p.Iter)
		e.Int(int(p.Elapsed))
		e.F64(p.LogLik)
		e.F64(p.TokensSec)
		e.F64(p.IntervalTokensSec)
	}
	e.U64(uint64(ck.Fingerprint))
}

// decodeEnvelope reads what encodeEnvelope wrote. Errors land in d.
func decodeEnvelope(d *sampler.Dec, ck *Checkpoint) {
	ck.Sampler = d.Str("sampler name", 1<<10)
	ck.Cfg = decodeConfig(d)
	ck.Iter = d.Int()
	ck.Elapsed = time.Duration(d.Int())
	ck.Trace.Sampler = d.Str("trace sampler name", 1<<10)
	nPoints := d.Int()
	// ck.Iter is itself untrusted until the CRC verifies, so the
	// allocation bound must be a constant: a corrupt count fails here
	// instead of OOM-ing on make(). Consistency with Iter is re-checked
	// post-CRC in validateCheckpoint.
	if d.Err() == nil && (nPoints < 0 || nPoints > maxTracePoints) {
		d.Failf("implausible trace length %d", nPoints)
	}
	if d.Err() == nil {
		ck.Trace.Points = make([]sampler.Point, nPoints)
		for i := range ck.Trace.Points {
			p := &ck.Trace.Points[i]
			p.Iter = d.Int()
			p.Elapsed = time.Duration(d.Int())
			p.LogLik = d.F64()
			p.TokensSec = d.F64()
			p.IntervalTokensSec = d.F64()
		}
	}
	ck.Fingerprint = uint32(d.U64())
}

func encodeConfig(e *sampler.Enc, cfg sampler.Config) {
	e.Int(cfg.K)
	e.F64(cfg.Alpha)
	e.F64(cfg.Beta)
	e.Int(cfg.M)
	e.U64(cfg.Seed)
	e.Int(cfg.Threads)
	if cfg.AlphaVec == nil {
		e.Int(0)
	} else {
		e.Int(1)
		e.F64s(cfg.AlphaVec)
	}
}

func decodeConfig(d *sampler.Dec) sampler.Config {
	var cfg sampler.Config
	cfg.K = d.Int()
	cfg.Alpha = d.F64()
	cfg.Beta = d.F64()
	cfg.M = d.Int()
	cfg.Seed = d.U64()
	cfg.Threads = d.Int()
	switch has := d.Int(); has {
	case 0:
	case 1:
		// len(AlphaVec) must equal K, so bound-check K before letting it
		// size an allocation.
		if cfg.K <= 0 || cfg.K > maxTopics {
			d.Failf("train: corrupt checkpoint: alpha vector for implausible K=%d", cfg.K)
			break
		}
		cfg.AlphaVec = d.F64sLen("alpha vector", cfg.K)
	default:
		d.Failf("train: corrupt alpha-vector flag %d", has)
	}
	return cfg
}

// configsEqual compares two configs field by field (AlphaVec by value).
func configsEqual(a, b sampler.Config) bool {
	if a.K != b.K || a.Alpha != b.Alpha || a.Beta != b.Beta ||
		a.M != b.M || a.Seed != b.Seed || a.Threads != b.Threads {
		return false
	}
	if len(a.AlphaVec) != len(b.AlphaVec) || (a.AlphaVec == nil) != (b.AlphaVec == nil) {
		return false
	}
	for i := range a.AlphaVec {
		if a.AlphaVec[i] != b.AlphaVec[i] {
			return false
		}
	}
	return true
}

// countWriter counts bytes for WriteTo's return value.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
