package train_test

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/train"
)

// mappedOf streams c through the out-of-core path and returns the
// mapped view (closed at test cleanup) plus the in-memory read of the
// same UCI bytes.
func mappedOf(t *testing.T, c *corpus.Corpus) (*corpus.Corpus, *corpus.MappedCorpus) {
	t.Helper()
	var uci bytes.Buffer
	if err := corpus.WriteUCI(&uci, c); err != nil {
		t.Fatal(err)
	}
	mem, err := corpus.ReadUCI(bytes.NewReader(uci.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train"+corpus.CacheExt)
	if _, err := corpus.BuildCache(bytes.NewReader(uci.Bytes()), path, corpus.StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	mapped, err := corpus.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mapped.Close() })
	return mem, mapped
}

// TestMappedFingerprintMatchesInMemory pins the property resume
// depends on: the fingerprint stored in the cache header (O(1) to
// read) equals the O(T) walk of the materialized corpus, so
// checkpoints verify identically against either view.
func TestMappedFingerprintMatchesInMemory(t *testing.T) {
	mem, mapped := mappedOf(t, testCorpus(5))
	if got, want := train.CorpusFingerprint(mapped), train.CorpusFingerprint(mem); got != want {
		t.Fatalf("mapped fingerprint %08x, in-memory %08x", got, want)
	}
}

// TestResumeAgainstMappedCache checkpoints an in-memory run, then
// resumes it over the memory-mapped cache of the same corpus: the
// checkpoint's fingerprint validates against the cache header (no
// source re-read), and the continued run is bit-identical to an
// uninterrupted in-memory run.
func TestResumeAgainstMappedCache(t *testing.T) {
	mem, mapped := mappedOf(t, testCorpus(2))
	cfg := testCfg(8)
	const n, total = 6, 12

	full := newWarp(t, mem, cfg)
	fullRes, err := train.Run(full, mem, cfg, train.Options{Iters: total, EvalEvery: 3})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	halfRes, err := train.Run(newWarp(t, mem, cfg), mem, cfg, train.Options{
		Iters: n, EvalEvery: 3, CheckpointDir: dir, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(halfRes.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := core.New(mapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resRes, err := train.Run(resumed, mapped, cfg, train.Options{
		Iters: total, EvalEvery: 3, ResumeFrom: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resRes.Completed || resRes.Iter != total {
		t.Fatalf("resumed run: completed=%v iter=%d", resRes.Completed, resRes.Iter)
	}
	sameTrace(t, resRes.Run, fullRes.Run)
	if !reflect.DeepEqual(resumed.Assignments(), full.Assignments()) {
		t.Fatal("assignments of mapped-resumed run differ from uninterrupted in-memory run")
	}
}

// A checkpoint from one corpus must be refused against the mapped cache
// of a different corpus — same gate as the in-memory path.
func TestResumeRejectsForeignMappedCache(t *testing.T) {
	mem, _ := mappedOf(t, testCorpus(3))
	_, otherMapped := mappedOf(t, testCorpus(4))
	cfg := testCfg(8)

	dir := t.TempDir()
	res, err := train.Run(newWarp(t, mem, cfg), mem, cfg, train.Options{
		Iters: 3, CheckpointDir: dir, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(res.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.New(otherMapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(s, otherMapped, cfg, train.Options{Iters: 6, ResumeFrom: ck}); err == nil {
		t.Fatal("resume against a foreign mapped cache was not refused")
	}
}
