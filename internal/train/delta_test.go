package train

import (
	"os"
	"path/filepath"
	"testing"

	"warplda/internal/fsio"
)

func TestDeltaPath(t *testing.T) {
	p, err := DeltaPath(filepath.Join("pub", "news"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("pub", "news.dlt.3"); p != want {
		t.Fatalf("DeltaPath = %q, want %q", p, want)
	}
	if _, err := DeltaPath(filepath.Join("pub", "news"), 0); err == nil {
		t.Fatal("DeltaPath accepted generation 0")
	}
	if _, err := DeltaPath(filepath.Join("pub", "bad/name.bin"), 1); err == nil {
		t.Fatal("DeltaPath accepted an unservable spec")
	}
}

func TestDeltaChainPublishAndReplay(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "m")
	const v, k = 5, 3
	cw := []int32{
		1, 0, 2,
		0, 3, 0,
		4, 0, 0,
		0, 0, 5,
		1, 1, 1,
	}
	ck := []int64{6, 4, 8}
	dc, err := NewDeltaChain(spec, v, k, cw, ck)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Gen() != 0 {
		t.Fatalf("fresh chain Gen = %d", dc.Gen())
	}

	// Three intervals of simulated training, the middle one a no-op.
	states := [][]int32{
		append([]int32(nil), cw...),
	}
	cur := append([]int32(nil), cw...)
	cur[0*k+1] += 2
	cur[2*k+0] -= 1
	states = append(states, append([]int32(nil), cur...))
	states = append(states, append([]int32(nil), cur...)) // unchanged interval
	cur2 := append([]int32(nil), cur...)
	cur2[4*k+2] += 3
	states = append(states, cur2)

	ckOf := func(cw []int32) []int64 {
		out := make([]int64, k)
		for w := 0; w < v; w++ {
			for t := 0; t < k; t++ {
				out[t] += int64(cw[w*k+t])
			}
		}
		return out
	}
	wantCells := []int{2, 0, 1}
	for i, st := range states[1:] {
		r, err := dc.Publish(st, ckOf(st), int64(10*(i+1)), -100-float64(i))
		if err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		if r.Gen != int64(i+1) {
			t.Fatalf("publish %d: gen %d", i, r.Gen)
		}
		if r.Cells != wantCells[i] {
			t.Fatalf("publish %d: %d cells, want %d", i, r.Cells, wantCells[i])
		}
	}

	// Discover, verify the chain links, and replay onto the base.
	files, err := ListDeltaFiles(dir, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("found %d delta files, want 3", len(files))
	}
	fp := fsio.ModelFingerprint(v, k, cw, ck)
	replayed := append([]int32(nil), cw...)
	for i, f := range files {
		if f.Gen != int64(i+1) {
			t.Fatalf("delta %d has gen %d", i, f.Gen)
		}
		fh, err := os.Open(f.Path)
		if err != nil {
			t.Fatal(err)
		}
		d, err := fsio.ReadDelta(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("reading delta %d: %v", i, err)
		}
		if d.BaseFP != fp {
			t.Fatalf("delta %d baseFP %016x, chain fp %016x", i, d.BaseFP, fp)
		}
		if d.Gen != f.Gen {
			t.Fatalf("delta %d: header gen %d, file name gen %d", i, d.Gen, f.Gen)
		}
		for _, c := range d.Cells {
			replayed[int(c.W)*k+int(c.T)] += c.Add
		}
		fp = d.NewFP
	}
	for i := range replayed {
		if replayed[i] != states[3][i] {
			t.Fatalf("replayed counts diverge at %d: %d != %d", i, replayed[i], states[3][i])
		}
	}

	removed, err := RemoveDeltaFiles(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d delta files, want 3", len(removed))
	}
	if files, _ := ListDeltaFiles(dir, "m"); len(files) != 0 {
		t.Fatalf("deltas survive removal: %v", files)
	}
}

func TestListDeltaFilesIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"m.bin", "m@40.bin", "m.dlt.x", "m.dlt.", "m.dlt.0",
		"other.dlt.1", "m2.dlt.1",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "m.dlt.2"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := ListDeltaFiles(dir, "m")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].Gen != 2 {
		t.Fatalf("ListDeltaFiles = %+v, want just gen 2", files)
	}
}

func TestDeltaChainValidation(t *testing.T) {
	if _, err := NewDeltaChain(filepath.Join("d", "ok"), 2, 2, make([]int32, 3), make([]int64, 2)); err == nil {
		t.Fatal("NewDeltaChain accepted mismatched Cw length")
	}
	dc, err := NewDeltaChain(filepath.Join(t.TempDir(), "ok"), 2, 2, make([]int32, 4), make([]int64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Publish(make([]int32, 5), make([]int64, 2), 1, 0); err == nil {
		t.Fatal("Publish accepted mismatched dims")
	}
	if dc.Gen() != 0 {
		t.Fatal("failed publish advanced the chain")
	}
}
