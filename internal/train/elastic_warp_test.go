package train_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"warplda/internal/train"
)

// halfCheckpoint trains threads workers for 4 iterations and returns
// the loaded checkpoint, asserting it took the sharded form (core.Warp
// implements sampler.Sharded at every thread count, one included).
func halfCheckpoint(t *testing.T, threads int) *train.Checkpoint {
	t.Helper()
	c := testCorpus(9)
	cfg := testCfg(8)
	cfg.Threads = threads
	dir := t.TempDir()
	res, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: 4, EvalEvery: 2, CheckpointDir: dir, CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(res.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if !ck.IsSharded() {
		t.Fatal("warp checkpoint did not take the sharded form")
	}
	if len(ck.ShardFiles) != threads {
		t.Fatalf("checkpoint has %d shards, want %d", len(ck.ShardFiles), threads)
	}
	return ck
}

// TestWarpElasticThreadsResume pins the shared-memory elastic contract
// end to end through the trainer: a Warp checkpoint written under one
// -threads resumes under another, carrying the model over exactly and
// logging the one reseed notice; an unchanged thread count resumes
// bit-identically with no notice, matching the distributed semantics.
func TestWarpElasticThreadsResume(t *testing.T) {
	c := testCorpus(9)
	for _, tc := range []struct{ from, to int }{{1, 4}, {4, 2}} {
		t.Run(fmt.Sprintf("%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			ck := halfCheckpoint(t, tc.from)
			cfg := testCfg(8)
			cfg.Threads = tc.to
			var notices []string
			res, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
				Iters: 8, EvalEvery: 2, ResumeFrom: ck,
				Logf: func(format string, args ...any) {
					notices = append(notices, fmt.Sprintf(format, args...))
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed || res.Iter != 8 {
				t.Fatalf("elastic resume: completed=%v iter=%d", res.Completed, res.Iter)
			}
			if len(notices) != 1 || !strings.Contains(notices[0], "reseeded") {
				t.Fatalf("want exactly one reseed notice, got %q", notices)
			}
		})
	}

	t.Run("4_to_4_bit_exact", func(t *testing.T) {
		cfg := testCfg(8)
		cfg.Threads = 4
		full := newWarp(t, c, cfg)
		fullRes, err := train.Run(full, c, cfg, train.Options{Iters: 8, EvalEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		ck := halfCheckpoint(t, 4)
		resumed := newWarp(t, c, cfg)
		var notices []string
		resRes, err := train.Run(resumed, c, cfg, train.Options{
			Iters: 8, EvalEvery: 2, ResumeFrom: ck,
			Logf: func(format string, args ...any) {
				notices = append(notices, fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(notices) != 0 {
			t.Fatalf("same-count resume logged %q, want silence", notices)
		}
		sameTrace(t, resRes.Run, fullRes.Run)
		if !reflect.DeepEqual(resumed.Assignments(), full.Assignments()) {
			t.Fatal("same-count elastic resume diverged from uninterrupted run")
		}
	})
}
