package train_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warplda/internal/cluster"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

func newDist(t *testing.T, c *corpus.Corpus, cfg sampler.Config) *cluster.Distributed {
	t.Helper()
	p := cfg.Threads
	if p < 1 {
		p = 1
	}
	d, err := cluster.NewDistributed(c, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestShardedCheckpointElasticResume is the acceptance scenario: a
// distributed run checkpointed mid-training resumes under a smaller,
// larger, or identical worker count and reaches comparable quality.
func TestShardedCheckpointElasticResume(t *testing.T) {
	c := testCorpus(40)
	for _, tc := range []struct{ oldP, newP int }{
		{1, 3}, {3, 2}, {3, 3}, {3, 4},
	} {
		t.Run(fmt.Sprintf("p%d_to_p%d", tc.oldP, tc.newP), func(t *testing.T) {
			cfg := testCfg(6)
			cfg.Threads = tc.oldP
			// The checkpoint lands mid-burn-in; the quality comparison runs
			// at the converged plateau, where independent chains agree.
			const n, total = 4, 30

			full, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: total, EvalEvery: 4})
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			halfRes, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{
				Iters: n, EvalEvery: 4, CheckpointDir: dir, CheckpointEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			ck, err := train.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !ck.IsSharded() {
				t.Fatal("distributed checkpoint is not sharded")
			}
			if len(ck.ShardFiles) != tc.oldP {
				t.Fatalf("%d shard files, want %d", len(ck.ShardFiles), tc.oldP)
			}
			if ck.Iter != n {
				t.Fatalf("checkpoint at iteration %d, want %d", ck.Iter, n)
			}
			if halfRes.CheckpointPath != ck.Dir {
				t.Fatalf("result path %q, loaded dir %q", halfRes.CheckpointPath, ck.Dir)
			}

			cfg2 := cfg
			cfg2.Threads = tc.newP
			var logs []string
			resRes, err := train.Run(newDist(t, c, cfg2), c, cfg2, train.Options{
				Iters: total, EvalEvery: 4, ResumeFrom: ck,
				Logf: func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if !resRes.Completed || resRes.Iter != total {
				t.Fatalf("elastic resume: completed=%v iter=%d", resRes.Completed, resRes.Iter)
			}
			reseedLogged := false
			for _, l := range logs {
				if strings.Contains(l, "reseeded") {
					reseedLogged = true
				}
			}
			if want := tc.oldP != tc.newP; reseedLogged != want {
				t.Fatalf("reseed logged = %v, want %v (logs: %q)", reseedLogged, want, logs)
			}
			// Comparable quality: the elastic-resumed run's final
			// log-likelihood tracks the uninterrupted run's. Converged
			// independent chains on this small corpus still spread a few
			// percent, hence the loose band; the strict statements (exact
			// restore, invariants, rejection of damage) live in
			// internal/cluster's tests.
			got, want := resRes.Run.Final().LogLik, full.Run.Final().LogLik
			if math.Abs(got-want) > 0.05*math.Abs(want) {
				t.Fatalf("elastic-resumed final LL %.1f differs from uninterrupted %.1f by more than 5%%", got, want)
			}
		})
	}
}

// A sharded checkpoint resumed into a sampler without sharded state
// must fail cleanly, as must an elastic thread change against a
// single-file checkpoint.
func TestShardedCheckpointWrongSampler(t *testing.T) {
	c := testCorpus(41)
	cfg := testCfg(6)
	cfg.Threads = 2
	dir := t.TempDir()
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 2, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 4, ResumeFrom: ck}); err == nil {
		t.Fatal("sharded checkpoint accepted by a non-sharded sampler")
	}
}

// TestShardedCheckpointCorruption: every class of on-disk damage to a
// sharded checkpoint — manifest or shard — is rejected before any
// state reaches the sampler.
func TestShardedCheckpointCorruption(t *testing.T) {
	c := testCorpus(42)
	cfg := testCfg(6)
	cfg.Threads = 2

	// One run, two retained checkpoints (iterations 2 and 4): the older
	// one donates same-sized, self-consistent "foreign" shard files.
	dir := t.TempDir()
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{
		Iters: 4, CheckpointEvery: 2, CheckpointDir: dir, CheckpointKeep: 2,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := train.ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || !entries[0].Sharded || !entries[1].Sharded {
		t.Fatalf("retained %+v, want two sharded checkpoints", entries)
	}
	oldDir, newDir := entries[0].Path, entries[1].Path

	resume := func(t *testing.T, ckDir string) error {
		ck, err := train.ReadManifest(ckDir)
		if err != nil {
			return err
		}
		_, err = train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 8, ResumeFrom: ck})
		return err
	}
	// Pristine baseline: the newest checkpoint must resume.
	if err := resume(t, newDir); err != nil {
		t.Fatalf("pristine sharded checkpoint rejected: %v", err)
	}

	copyInto := func(t *testing.T, ckDir string) string {
		t.Helper()
		dst := t.TempDir()
		des, err := os.ReadDir(ckDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range des {
			b, err := os.ReadFile(filepath.Join(ckDir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}
	mutate := func(t *testing.T, path string, f func([]byte) []byte) {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, f(b), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("manifest CRC flip", func(t *testing.T) {
		d := copyInto(t, newDir)
		mutate(t, filepath.Join(d, train.ManifestFileName), func(b []byte) []byte {
			b[len(b)/2] ^= 0x20
			return b
		})
		if err := resume(t, d); err == nil {
			t.Fatal("corrupt manifest accepted")
		}
	})
	t.Run("manifest bad magic", func(t *testing.T) {
		d := copyInto(t, newDir)
		mutate(t, filepath.Join(d, train.ManifestFileName), func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		})
		if err := resume(t, d); err == nil {
			t.Fatal("bad manifest magic accepted")
		}
	})
	t.Run("manifest truncated", func(t *testing.T) {
		d := copyInto(t, newDir)
		mutate(t, filepath.Join(d, train.ManifestFileName), func(b []byte) []byte { return b[:len(b)-6] })
		if err := resume(t, d); err == nil {
			t.Fatal("truncated manifest accepted")
		}
	})
	t.Run("missing shard", func(t *testing.T) {
		d := copyInto(t, newDir)
		if err := os.Remove(filepath.Join(d, "shard-001.ckpt")); err != nil {
			t.Fatal(err)
		}
		if err := resume(t, d); err == nil {
			t.Fatal("missing shard accepted")
		}
	})
	t.Run("truncated shard", func(t *testing.T) {
		d := copyInto(t, newDir)
		mutate(t, filepath.Join(d, "shard-000.ckpt"), func(b []byte) []byte { return b[:len(b)-10] })
		if err := resume(t, d); err == nil {
			t.Fatal("truncated shard accepted")
		}
	})
	t.Run("shard bit flip", func(t *testing.T) {
		d := copyInto(t, newDir)
		mutate(t, filepath.Join(d, "shard-001.ckpt"), func(b []byte) []byte {
			b[len(b)/2] ^= 0x01
			return b
		})
		if err := resume(t, d); err == nil {
			t.Fatal("bit-flipped shard accepted")
		}
	})
	t.Run("foreign shard file", func(t *testing.T) {
		// A shard from the SAME run's older checkpoint: identical size,
		// valid magic, self-consistent CRC trailer — only the manifest's
		// recorded CRC (and the embedded iteration) can unmask it.
		d := copyInto(t, newDir)
		b, err := os.ReadFile(filepath.Join(oldDir, "shard-000.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(filepath.Join(d, "shard-000.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(b)) != st.Size() {
			t.Skipf("shard sizes differ (%d vs %d); size check covers this case", len(b), st.Size())
		}
		if err := os.WriteFile(filepath.Join(d, "shard-000.ckpt"), b, 0o644); err != nil {
			t.Fatal(err)
		}
		err = resume(t, d)
		if err == nil {
			t.Fatal("foreign shard accepted")
		}
		if !strings.Contains(err.Error(), "foreign") {
			t.Fatalf("foreign shard rejected with %v, want a foreign-shard diagnosis", err)
		}
	})
	t.Run("manifest escaping shard path", func(t *testing.T) {
		// Defense in depth: ReadManifest must refuse shard names that
		// point outside the checkpoint directory. Build such a manifest
		// by loading a good one and rewriting the table.
		ck, err := train.ReadManifest(newDir)
		if err != nil {
			t.Fatal(err)
		}
		ck.ShardFiles[0] = filepath.Join("..", "escape.ckpt")
		d := t.TempDir()
		sub := filepath.Join(d, "checkpoint-00000004")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := ck.WriteManifestFile(filepath.Join(sub, train.ManifestFileName)); err != nil {
			t.Fatal(err)
		}
		if _, err := train.ReadManifest(sub); err == nil {
			t.Fatal("manifest with path-escaping shard name accepted")
		}
	})
}

// TestCheckpointRotation: keep-last-N retention holds for both
// checkpoint shapes, including across an interrupt, and torn sharded
// directories are swept.
func TestCheckpointRotation(t *testing.T) {
	c := testCorpus(43)

	t.Run("single file", func(t *testing.T) {
		cfg := testCfg(6)
		dir := t.TempDir()
		if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
			Iters: 5, CheckpointEvery: 1, CheckpointDir: dir, CheckpointKeep: 2,
		}); err != nil {
			t.Fatal(err)
		}
		entries, err := train.ListCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 || entries[0].Iter != 4 || entries[1].Iter != 5 {
			t.Fatalf("retained %+v, want iterations 4 and 5", entries)
		}
	})

	t.Run("sharded with torn dir sweep", func(t *testing.T) {
		cfg := testCfg(6)
		cfg.Threads = 2
		dir := t.TempDir()
		// A torn checkpoint (no manifest) from a "previous crash".
		if err := os.MkdirAll(filepath.Join(dir, "checkpoint-00000001"), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{
			Iters: 4, CheckpointEvery: 1, CheckpointDir: dir, CheckpointKeep: 2,
		}); err != nil {
			t.Fatal(err)
		}
		entries, err := train.ListCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 || entries[0].Iter != 3 || entries[1].Iter != 4 {
			t.Fatalf("retained %+v, want sharded checkpoints 3 and 4", entries)
		}
		if _, err := os.Stat(filepath.Join(dir, "checkpoint-00000001")); !os.IsNotExist(err) {
			t.Fatal("torn checkpoint directory not swept")
		}
	})

	t.Run("interrupt keeps the newest", func(t *testing.T) {
		cfg := testCfg(6)
		dir := t.TempDir()
		stop := make(chan struct{})
		res, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
			Iters: 10, CheckpointEvery: 1, CheckpointDir: dir, CheckpointKeep: 1,
			Stop: stop,
			Progress: func(ev train.Event) {
				if ev.Iter == 3 {
					close(stop)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Interrupted {
			t.Fatal("not interrupted")
		}
		entries, err := train.ListCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Iter != res.Iter {
			t.Fatalf("retained %+v after interrupt at %d, want exactly that iteration", entries, res.Iter)
		}
		// And the retained checkpoint resumes.
		ck, err := train.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 10, ResumeFrom: ck}); err != nil {
			t.Fatal(err)
		}
	})
}

// A resume interrupted before its first new iteration re-checkpoints
// at the SAME iteration, rewriting an existing checkpoint directory.
// The rewrite must go through the torn-dir protocol (manifest
// retracted first, rewritten last) and leave a loadable checkpoint.
func TestShardedCheckpointRewriteSameIteration(t *testing.T) {
	c := testCorpus(45)
	cfg := testCfg(6)
	cfg.Threads = 2
	dir := t.TempDir()
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 3, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop) // stop already pending: no new iteration runs
	res, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{
		Iters: 8, CheckpointDir: dir, ResumeFrom: ck, Stop: stop,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted || res.Iter != ck.Iter {
		t.Fatalf("interrupted=%v iter=%d, want immediate stop at %d", res.Interrupted, res.Iter, ck.Iter)
	}
	ck2, err := train.Load(dir)
	if err != nil {
		t.Fatalf("rewritten checkpoint unreadable: %v", err)
	}
	if ck2.Iter != ck.Iter {
		t.Fatalf("rewritten checkpoint at iteration %d, want %d", ck2.Iter, ck.Iter)
	}
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 6, ResumeFrom: ck2}); err != nil {
		t.Fatalf("rewritten checkpoint does not resume: %v", err)
	}
}

// Checkpoints from releases where the distributed sampler's name
// embedded the worker count ("WarpLDA-sharded[2]") must still verify
// and resume at the same topology.
func TestLegacyShardedNameStillResumes(t *testing.T) {
	c := testCorpus(46)
	cfg := testCfg(6)
	cfg.Threads = 2
	d := newDist(t, c, cfg)
	d.Iterate()
	d.Iterate()
	var state bytes.Buffer
	if err := d.StateTo(&state); err != nil {
		t.Fatal(err)
	}
	ck := &train.Checkpoint{
		Sampler:     "WarpLDA-sharded[2]",
		Cfg:         cfg,
		Iter:        2,
		Fingerprint: train.CorpusFingerprint(c),
		State:       state.Bytes(),
	}
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 4, ResumeFrom: ck}); err != nil {
		t.Fatalf("legacy-named checkpoint rejected: %v", err)
	}
	// The legacy name must not be conflated with a different algorithm.
	ck.Sampler = "WarpLDA-sharded[2]x"
	if _, err := train.Run(newDist(t, c, cfg), c, cfg, train.Options{Iters: 4, ResumeFrom: ck}); err == nil {
		t.Fatal("malformed legacy name accepted")
	}
}

// The legacy unstamped checkpoint.ckpt written by earlier releases
// still loads — both directly and via its directory. (Live Warp runs
// now checkpoint as sharded directories, so the single-file fixture is
// built by writeTestCheckpoint.)
func TestLegacyCheckpointStillLoads(t *testing.T) {
	raw, env := writeTestCheckpoint(t)
	legacyDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(legacyDir, train.DefaultFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := train.Load(legacyDir)
	if err != nil {
		t.Fatalf("legacy checkpoint directory rejected: %v", err)
	}
	if _, err := train.Run(newWarp(t, env.c, env.cfg), env.c, env.cfg, train.Options{Iters: 6, ResumeFrom: ck2}); err != nil {
		t.Fatal(err)
	}
}
