package train_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"warplda"
	"warplda/internal/registry"
	"warplda/internal/train"
)

// TestPublishNamesMatchRegistry keeps PublishPath's name rule in sync
// with the registry's, behaviorally: every name PublishPath accepts
// must actually be servable, and names the registry refuses must be
// rejected at publish time.
func TestPublishNamesMatchRegistry(t *testing.T) {
	c := testCorpus(31)
	cfg := testCfg(4)
	s := newWarp(t, c, cfg)
	s.Iterate()
	model := warplda.Snapshot(c, s, cfg)

	for _, name := range []string{"news", "News-1.a", "a", "k100_nytimes"} {
		dir := t.TempDir()
		path, got, err := train.PublishPath(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("PublishPath accepts registry-servable name %q? %v", name, err)
		}
		if got != name {
			t.Fatalf("PublishPath(%q) name = %q", name, got)
		}
		if _, err := model.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		reg, err := registry.Open(dir, registry.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Acquire(name); err != nil {
			t.Errorf("PublishPath accepted %q but the registry refuses it: %v", name, err)
		}
		reg.Close()
	}
	for _, name := range []string{"_nightly", ".hidden", "-dash", "über", "a b"} {
		if _, _, err := train.PublishPath("models/" + name); err == nil {
			t.Errorf("PublishPath accepted %q, which the registry will never serve", name)
		}
	}
}

// TestPublishServesWithoutRestart walks the whole pipeline the PR
// closes: train (with a checkpoint interruption in the middle), publish
// the final model into a serving model directory, and have an
// already-open PR-2 registry pick it up and serve inference — no
// restart.
func TestPublishServesWithoutRestart(t *testing.T) {
	c := testCorpus(30)
	cfg := testCfg(8)

	// Train 4 iterations, "crash", resume to 8 — the published model
	// must come out of the resumed run.
	ckDir := t.TempDir()
	if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: 4, EvalEvery: 2, CheckpointDir: ckDir,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	s := newWarp(t, c, cfg)
	if _, err := train.Run(s, c, cfg, train.Options{Iters: 8, EvalEvery: 2, ResumeFrom: ck}); err != nil {
		t.Fatal(err)
	}
	model := warplda.Snapshot(c, s, cfg)

	// The serving side is already up, watching an (empty) model dir.
	modelDir := t.TempDir()
	reg, err := registry.Open(modelDir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Acquire("news"); err == nil {
		t.Fatal("unpublished model served")
	}

	path, name, err := train.PublishPath(modelDir + "/news")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	snap, err := reg.Acquire(name)
	if err != nil {
		t.Fatalf("published model not served: %v", err)
	}
	if snap.Model.Cfg.K != cfg.K || snap.Model.V != c.V {
		t.Fatalf("served model has K=%d V=%d, want K=%d V=%d", snap.Model.Cfg.K, snap.Model.V, cfg.K, c.V)
	}
	theta, err := snap.Engine.Infer(c.Docs[0], 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("served inference returned non-distribution (sum %g)", sum)
	}
}

// TestVersionedPublishPath pins the path/name scheme of versioned
// publishing and its guard rails.
func TestVersionedPublishPath(t *testing.T) {
	path, name, err := train.VersionedPublishPath("models/news", 120)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join("models", "news@120.bin"); path != want || name != "news@120" {
		t.Fatalf("VersionedPublishPath = (%q, %q), want (%q, %q)", path, name, want, "news@120")
	}
	for _, bad := range []struct {
		spec string
		iter int
	}{
		{"models/news", -1},
		{"models/news.bin", 5},
		{"news", 5},
		{"models/ne@ws", 5}, // '@' is the version separator, not a name character
	} {
		if _, _, err := train.VersionedPublishPath(bad.spec, bad.iter); err == nil {
			t.Errorf("VersionedPublishPath(%q, %d) accepted", bad.spec, bad.iter)
		}
	}
}

// TestVersionedPublishServesAndRollsBack walks the versioned publish
// lifecycle against a live registry: publish iteration 8 (pinned name
// + latest pointer), serve both, publish iteration 16, watch the bare
// name hot-swap to it without a restart, and roll back by serving the
// still-pinned older version.
func TestVersionedPublishServesAndRollsBack(t *testing.T) {
	c := testCorpus(32)
	cfg := testCfg(6)
	s := newWarp(t, c, cfg)
	for i := 0; i < 8; i++ {
		s.Iterate()
	}
	model8 := warplda.Snapshot(c, s, cfg)

	modelDir := t.TempDir()
	spec := filepath.Join(modelDir, "news")
	publish := func(m *warplda.Model, iter int) string {
		t.Helper()
		vPath, _, err := train.VersionedPublishPath(spec, iter)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.WriteFile(vPath); err != nil {
			t.Fatal(err)
		}
		latest, err := train.PublishLatest(spec, iter)
		if err != nil {
			t.Fatal(err)
		}
		return latest
	}
	publish(model8, 8)

	reg, err := registry.Open(modelDir, registry.Options{ReloadInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	latest, err := reg.Acquire("news")
	if err != nil {
		t.Fatalf("latest pointer not served: %v", err)
	}
	pinned, err := reg.Acquire("news@8")
	if err != nil {
		t.Fatalf("pinned version not served: %v", err)
	}
	if latest.Model.LogLik != pinned.Model.LogLik {
		t.Fatalf("latest (LL %v) is not version 8 (LL %v)", latest.Model.LogLik, pinned.Model.LogLik)
	}

	// Train further and publish iteration 16; the open registry must
	// swap the bare name to it via hot reload, no restart.
	for i := 0; i < 8; i++ {
		s.Iterate()
	}
	model16 := warplda.Snapshot(c, s, cfg)
	if model16.LogLik == model8.LogLik {
		t.Fatal("degenerate test: models 8 and 16 are identical")
	}
	publish(model16, 16)

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := reg.Acquire("news")
		if err == nil && snap.Model.LogLik == model16.LogLik {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("latest pointer swap not picked up by hot reload")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Rollback: the older pinned version is still there to serve, and
	// re-pointing latest at it rolls the bare name back.
	if _, err := reg.Acquire("news@8"); err != nil {
		t.Fatalf("pinned version lost after a newer publish: %v", err)
	}
	if _, err := train.PublishLatest(spec, 8); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		snap, err := reg.Acquire("news")
		if err == nil && snap.Model.LogLik == model8.LogLik {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rollback not picked up by hot reload")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// PublishLatest must refuse to install a pointer to a snapshot that
// was never written.
func TestPublishLatestRequiresSnapshot(t *testing.T) {
	if _, err := train.PublishLatest(filepath.Join(t.TempDir(), "news"), 7); err == nil {
		t.Fatal("latest pointer installed without its target")
	}
}

// TestPrunePublishedVersions pins the version-GC contract: keep the
// newest N pinned snapshots, never touch the latest pointer's target
// (even when a rollback re-pointed it at an old version), never touch
// files that are not this model's versions.
func TestPrunePublishedVersions(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "news")
	write := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{
		"news@10.bin", "news@20.bin", "news@30.bin", "news@40.bin",
		"news2@5.bin", // a different model's version
		"news@7b.bin", // not a version at all
	} {
		write(name)
	}
	// Roll back: latest points at the OLDEST version. Pruning must keep
	// it alive regardless of the keep window.
	if _, err := train.PublishLatest(spec, 10); err != nil {
		t.Fatal(err)
	}

	pruned, err := train.PrunePublishedVersions(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 || filepath.Base(pruned[0]) != "news@20.bin" {
		t.Fatalf("pruned = %v, want exactly news@20.bin", pruned)
	}
	for _, name := range []string{"news@10.bin", "news@30.bin", "news@40.bin", "news2@5.bin", "news@7b.bin"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s should have survived pruning: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "news@20.bin")); err == nil {
		t.Error("news@20.bin survived pruning")
	}
	// The latest pointer still resolves.
	if _, err := os.Stat(filepath.Join(dir, "news.bin")); err != nil {
		t.Errorf("latest pointer dangles: %v", err)
	}

	// A keep window wider than the history removes nothing.
	pruned, err = train.PrunePublishedVersions(spec, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 0 {
		t.Fatalf("pruned = %v, want none", pruned)
	}

	if _, err := train.PrunePublishedVersions(spec, 0); err == nil {
		t.Fatal("keep=0 accepted; it would delete every version")
	}
}
