package train_test

import (
	"math"
	"path/filepath"
	"testing"

	"warplda"
	"warplda/internal/registry"
	"warplda/internal/train"
)

// TestPublishNamesMatchRegistry keeps PublishPath's name rule in sync
// with the registry's, behaviorally: every name PublishPath accepts
// must actually be servable, and names the registry refuses must be
// rejected at publish time.
func TestPublishNamesMatchRegistry(t *testing.T) {
	c := testCorpus(31)
	cfg := testCfg(4)
	s := newWarp(t, c, cfg)
	s.Iterate()
	model := warplda.Snapshot(c, s, cfg)

	for _, name := range []string{"news", "News-1.a", "a", "k100_nytimes"} {
		dir := t.TempDir()
		path, got, err := train.PublishPath(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("PublishPath accepts registry-servable name %q? %v", name, err)
		}
		if got != name {
			t.Fatalf("PublishPath(%q) name = %q", name, got)
		}
		if _, err := model.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		reg, err := registry.Open(dir, registry.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Acquire(name); err != nil {
			t.Errorf("PublishPath accepted %q but the registry refuses it: %v", name, err)
		}
		reg.Close()
	}
	for _, name := range []string{"_nightly", ".hidden", "-dash", "über", "a b"} {
		if _, _, err := train.PublishPath("models/" + name); err == nil {
			t.Errorf("PublishPath accepted %q, which the registry will never serve", name)
		}
	}
}

// TestPublishServesWithoutRestart walks the whole pipeline the PR
// closes: train (with a checkpoint interruption in the middle), publish
// the final model into a serving model directory, and have an
// already-open PR-2 registry pick it up and serve inference — no
// restart.
func TestPublishServesWithoutRestart(t *testing.T) {
	c := testCorpus(30)
	cfg := testCfg(8)

	// Train 4 iterations, "crash", resume to 8 — the published model
	// must come out of the resumed run.
	ckDir := t.TempDir()
	if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: 4, EvalEvery: 2, CheckpointDir: ckDir,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	s := newWarp(t, c, cfg)
	if _, err := train.Run(s, c, cfg, train.Options{Iters: 8, EvalEvery: 2, ResumeFrom: ck}); err != nil {
		t.Fatal(err)
	}
	model := warplda.Snapshot(c, s, cfg)

	// The serving side is already up, watching an (empty) model dir.
	modelDir := t.TempDir()
	reg, err := registry.Open(modelDir, registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.Acquire("news"); err == nil {
		t.Fatal("unpublished model served")
	}

	path, name, err := train.PublishPath(modelDir + "/news")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	snap, err := reg.Acquire(name)
	if err != nil {
		t.Fatalf("published model not served: %v", err)
	}
	if snap.Model.Cfg.K != cfg.K || snap.Model.V != c.V {
		t.Fatalf("served model has K=%d V=%d, want K=%d V=%d", snap.Model.Cfg.K, snap.Model.V, cfg.K, c.V)
	}
	theta, err := snap.Engine.Infer(c.Docs[0], 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("served inference returned non-distribution (sum %g)", sum)
	}
}
