package train_test

import (
	"os"
	"reflect"
	"testing"
	"time"

	"warplda/internal/baselines"
	"warplda/internal/core"
	"warplda/internal/corpus"
	"warplda/internal/sampler"
	"warplda/internal/train"
)

func testCorpus(seed uint64) *corpus.Corpus {
	c, err := corpus.GenerateLDA(corpus.SyntheticConfig{
		D: 200, V: 300, K: 8, MeanLen: 40, Alpha: 0.08, Beta: 0.05, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return c
}

func testCfg(k int) sampler.Config {
	cfg := sampler.PaperDefaults(k)
	cfg.M = 2
	return cfg
}

func newWarp(t *testing.T, c *corpus.Corpus, cfg sampler.Config) *core.Warp {
	t.Helper()
	w, err := core.New(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sameTrace compares two traces point by point: iteration schedule and
// log-likelihood must match to the bit (timing fields are wall-clock
// and legitimately differ).
func sameTrace(t *testing.T, got, want sampler.Run) {
	t.Helper()
	if len(got.Points) != len(want.Points) {
		t.Fatalf("trace has %d points, want %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		g, w := got.Points[i], want.Points[i]
		if g.Iter != w.Iter || g.LogLik != w.LogLik {
			t.Fatalf("trace point %d: (iter %d, ll %v), want (iter %d, ll %v)",
				i, g.Iter, g.LogLik, w.Iter, w.LogLik)
		}
	}
}

// TestCheckpointResumeBitIdentical is the PR's acceptance criterion: a
// serial WarpLDA run checkpointed at iteration N and resumed produces
// bit-identical assignments and log-likelihood trace to an
// uninterrupted run of the same length.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	c := testCorpus(1)
	cfg := testCfg(8)
	// n is a multiple of EvalEvery so the half run's final evaluation
	// falls on the shared schedule; interruption at an arbitrary
	// iteration is covered by TestInterruptCheckpointsAndResumes.
	const n, total = 6, 12

	full := newWarp(t, c, cfg)
	fullRes, err := train.Run(full, c, cfg, train.Options{Iters: total, EvalEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !fullRes.Completed {
		t.Fatal("uninterrupted run not completed")
	}

	dir := t.TempDir()
	halfRes, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: n, EvalEvery: 3, CheckpointDir: dir, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if halfRes.CheckpointPath == "" {
		t.Fatal("no checkpoint written")
	}
	ck, err := train.Load(halfRes.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iter != n {
		t.Fatalf("checkpoint at iteration %d, want %d", ck.Iter, n)
	}

	resumed := newWarp(t, c, cfg)
	resRes, err := train.Run(resumed, c, cfg, train.Options{
		Iters: total, EvalEvery: 3, ResumeFrom: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resRes.Completed || resRes.Iter != total {
		t.Fatalf("resumed run: completed=%v iter=%d", resRes.Completed, resRes.Iter)
	}
	sameTrace(t, resRes.Run, fullRes.Run)
	if !reflect.DeepEqual(resumed.Assignments(), full.Assignments()) {
		t.Fatal("resumed assignments differ from uninterrupted run")
	}
}

// An interruption via Stop (the SIGTERM path) must finish the current
// iteration, checkpoint, and still resume bit-identically.
func TestInterruptCheckpointsAndResumes(t *testing.T) {
	c := testCorpus(2)
	cfg := testCfg(6)
	const total = 10

	full := newWarp(t, c, cfg)
	fullRes, err := train.Run(full, c, cfg, train.Options{Iters: total, EvalEvery: 3})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	stop := make(chan struct{})
	interrupted := newWarp(t, c, cfg)
	intRes, err := train.Run(interrupted, c, cfg, train.Options{
		Iters: total, EvalEvery: 3, CheckpointDir: dir,
		Stop: stop,
		Progress: func(ev train.Event) {
			if ev.Iter == 4 {
				close(stop) // "SIGTERM" lands while iteration 4's bookkeeping runs
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !intRes.Interrupted || intRes.Completed {
		t.Fatalf("interrupted=%v completed=%v, want true/false", intRes.Interrupted, intRes.Completed)
	}
	if intRes.CheckpointPath == "" {
		t.Fatal("interruption did not write a checkpoint")
	}

	ck, err := train.Load(dir) // a directory resolves to its checkpoint file
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iter != intRes.Iter {
		t.Fatalf("checkpoint at iteration %d, result says %d", ck.Iter, intRes.Iter)
	}
	resumed := newWarp(t, c, cfg)
	resRes, err := train.Run(resumed, c, cfg, train.Options{Iters: total, EvalEvery: 3, ResumeFrom: ck})
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, resRes.Run, fullRes.Run)
	if !reflect.DeepEqual(resumed.Assignments(), full.Assignments()) {
		t.Fatal("interrupt-resumed assignments differ from uninterrupted run")
	}
}

func TestBudgetStopsAndCheckpoints(t *testing.T) {
	c := testCorpus(3)
	cfg := testCfg(6)
	dir := t.TempDir()
	res, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: 1000, EvalEvery: 10, CheckpointDir: dir, Budget: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OverBudget || res.Completed {
		t.Fatalf("overBudget=%v completed=%v, want true/false", res.OverBudget, res.Completed)
	}
	if res.Iter != 1 {
		t.Fatalf("budget of 1ns ran %d iterations, want 1", res.Iter)
	}
	if res.CheckpointPath == "" {
		t.Fatal("no checkpoint after budget stop")
	}
	if _, err := os.Stat(res.CheckpointPath); err != nil {
		t.Fatalf("no checkpoint after budget stop: %v", err)
	}
	if _, err := train.Load(dir); err != nil {
		t.Fatalf("checkpoint directory does not resolve to the stamped checkpoint: %v", err)
	}
}

func TestProgressEvents(t *testing.T) {
	c := testCorpus(4)
	cfg := testCfg(6)
	dir := t.TempDir()
	var iters []int
	var evals, ckpts int
	_, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{
		Iters: 6, EvalEvery: 2, CheckpointDir: dir, CheckpointEvery: 3,
		Progress: func(ev train.Event) {
			iters = append(iters, ev.Iter)
			if ev.Eval != nil {
				evals++
				if ev.Eval.TokensSec <= 0 || ev.Eval.IntervalTokensSec <= 0 {
					t.Errorf("iter %d: throughputs %g / %g, want > 0", ev.Iter, ev.Eval.TokensSec, ev.Eval.IntervalTokensSec)
				}
			}
			if ev.Checkpoint != "" {
				ckpts++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(iters) != 6 {
		t.Fatalf("progress called %d times, want 6", len(iters))
	}
	if evals != 3 { // iters 2, 4, 6
		t.Fatalf("%d eval events, want 3", evals)
	}
	if ckpts != 2 { // iters 3 and 6
		t.Fatalf("%d checkpoint events, want 2", ckpts)
	}
}

func TestRunValidatesOptions(t *testing.T) {
	c := testCorpus(5)
	cfg := testCfg(6)
	if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 0}); err == nil {
		t.Fatal("Iters=0 accepted")
	}
}

func TestResumeVerifies(t *testing.T) {
	c := testCorpus(6)
	cfg := testCfg(6)
	dir := t.TempDir()
	if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 4, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	ck, err := train.Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong sampler", func(t *testing.T) {
		g, err := baselines.NewCGS(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := train.Run(g, c, cfg, train.Options{Iters: 8, ResumeFrom: ck}); err == nil {
			t.Fatal("WarpLDA checkpoint accepted by CGS")
		}
	})
	t.Run("wrong config", func(t *testing.T) {
		cfg2 := cfg
		cfg2.Seed++
		if _, err := train.Run(newWarp(t, c, cfg2), c, cfg2, train.Options{Iters: 8, ResumeFrom: ck}); err == nil {
			t.Fatal("checkpoint accepted under a different config")
		}
	})
	t.Run("wrong corpus", func(t *testing.T) {
		c2 := testCorpus(7)
		if _, err := train.Run(newWarp(t, c2, cfg), c2, cfg, train.Options{Iters: 8, ResumeFrom: ck}); err == nil {
			t.Fatal("checkpoint accepted against a different corpus")
		}
	})
	t.Run("past target", func(t *testing.T) {
		if _, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 2, ResumeFrom: ck}); err == nil {
			t.Fatal("checkpoint past the iteration target accepted")
		}
	})
	t.Run("exact target is a no-op", func(t *testing.T) {
		res, err := train.Run(newWarp(t, c, cfg), c, cfg, train.Options{Iters: 4, ResumeFrom: ck})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed || res.Iter != 4 {
			t.Fatalf("completed=%v iter=%d", res.Completed, res.Iter)
		}
	})
}
